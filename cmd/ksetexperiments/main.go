// Command ksetexperiments regenerates every table and figure reproduction
// indexed in DESIGN.md (E1–E17) and prints them as plain-text tables — the
// source of record for EXPERIMENTS.md.
//
// Usage:
//
//	ksetexperiments                 # run everything
//	ksetexperiments -only E1,E8     # run a subset
//	ksetexperiments -parallelism 8  # pin the worker-pool size
//
// Experiments fan out across the worker pool and their internal subset
// sweeps shard through the same engine; tables are printed in experiment
// order and are byte-identical for every -parallelism value (also settable
// via KSETTOP_PARALLELISM).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/dist"
	"ksettop/internal/experiments"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
)

func main() {
	if err := run(); err != nil {
		cli.Exit("ksetexperiments", err)
	}
}

func run() (err error) {
	only := flag.String("only", "", "comma-separated experiment IDs (default all)")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	engineFlag := flag.String("engine", "hybrid", cli.EngineFlagUsage)
	memoSnapshot := flag.String("memo-snapshot", "", cli.MemoSnapshotUsage)
	searchFlag := flag.String("search", "parallel", cli.SearchFlagUsage)
	solverBudget := flag.Int("solver-budget", 0, cli.SolverBudgetFlagUsage)
	clauseBudget := flag.Int("clause-budget", 0, cli.ClauseBudgetFlagUsage)
	workers := flag.String("workers", "", cli.WorkersFlagUsage)
	verifyFraction := flag.Float64("verify-fraction", 0, cli.VerifyFractionFlagUsage)
	quarantineThreshold := flag.Float64("quarantine-threshold", 0, cli.QuarantineThresholdFlagUsage)
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	checkpointPath := flag.String("checkpoint", "", cli.CheckpointFlagUsage)
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second, cli.CheckpointIntervalFlagUsage)
	resume := flag.Bool("resume", false, cli.ResumeFlagUsage)
	flag.Parse()
	obs.SetProcessName("ksetexperiments")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	defer func() {
		if err := flushTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "ksetexperiments: trace-out:", err)
		}
	}()
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	jobKey := cli.JobKey("ksetexperiments", *only, *engineFlag, *searchFlag,
		fmt.Sprint(*solverBudget), fmt.Sprint(*clauseBudget))
	ctx, ckpt := cli.StartCheckpoint(ctx, *checkpointPath, jobKey, *checkpointInterval, *resume)
	defer func() {
		if ferr := cli.FinishDurable(ckpt, *memoSnapshot, err); err == nil {
			err = ferr
		}
	}()
	par.SetParallelism(*parallelism)
	if list := cli.SplitWorkers(*workers); len(list) > 0 {
		coord := dist.NewCoordinator(dist.CoordConfig{
			Workers:             list,
			VerifyFraction:      *verifyFraction,
			QuarantineThreshold: *quarantineThreshold,
		})
		coord.Start(ctx)
		model.SetDistributor(coord)
		defer model.SetDistributor(nil)
	}
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.ApplyEngineFlag(*engineFlag); err != nil {
		return err
	}
	if err := cli.ApplySearchFlag(*searchFlag); err != nil {
		return err
	}
	if err := cli.ApplySolverBudgetFlag(*solverBudget); err != nil {
		return err
	}
	if err := cli.ApplyClauseBudgetFlag(*clauseBudget); err != nil {
		return err
	}
	if err := cli.LoadMemoSnapshot(*memoSnapshot); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	var selected []experiments.Runner
	for _, r := range experiments.All() {
		if len(want) == 0 || want[r.ID] {
			selected = append(selected, r)
		}
	}
	failures := 0
	for _, o := range experiments.RunAll(selected) {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.ID, o.Err)
		}
		text := o.Table.Render()
		fmt.Print(text)
		fmt.Printf("(%s in %v)\n\n", o.ID, o.Elapsed.Round(time.Millisecond))
		if strings.Contains(text, "MISMATCH") || strings.Contains(text, "FAIL") {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) had failing rows", failures)
	}
	return cli.SaveMemoSnapshot(*memoSnapshot)
}
