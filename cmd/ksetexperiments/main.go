// Command ksetexperiments regenerates every table and figure reproduction
// indexed in DESIGN.md (E1–E12) and prints them as plain-text tables — the
// source of record for EXPERIMENTS.md.
//
// Usage:
//
//	ksetexperiments             # run everything
//	ksetexperiments -only E1,E8 # run a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ksettop/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ksetexperiments:", err)
		os.Exit(1)
	}
}

func run() error {
	only := flag.String("only", "", "comma-separated experiment IDs (default all)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	failures := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		text := table.Render()
		fmt.Print(text)
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if strings.Contains(text, "MISMATCH") || strings.Contains(text, "FAIL") {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) had failing rows", failures)
	}
	return nil
}
