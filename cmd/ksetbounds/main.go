// Command ksetbounds computes the paper's k-set agreement bounds for a
// closed-above model.
//
// Usage:
//
//	ksetbounds -model stars:n=5,s=2 -rounds 3
//	ksetbounds -model adj:'0>1 2;1>2;2>0' -rounds 2 -verify
//
// With -verify, the best one-round bounds are additionally re-checked by
// exhaustive simulation (upper) and exhaustive decision-map search plus
// protocol-complex connectivity (lower) when the instance is small enough.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/core"
	"ksettop/internal/dist"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		cli.Exit("ksetbounds", err)
	}
}

func run() (err error) {
	spec := flag.String("model", "star:n=4", "model specification (see package doc)")
	rounds := flag.Int("rounds", 1, "analyze rounds 1..r")
	verify := flag.Bool("verify", false, "re-check the one-round bounds mechanically")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	searchFlag := flag.String("search", "parallel", cli.SearchFlagUsage)
	solverBudget := flag.Int("solver-budget", 0, cli.SolverBudgetFlagUsage)
	clauseBudget := flag.Int("clause-budget", 0, cli.ClauseBudgetFlagUsage)
	memoSnapshot := flag.String("memo-snapshot", "", cli.MemoSnapshotUsage)
	workers := flag.String("workers", "", cli.WorkersFlagUsage)
	verifyFraction := flag.Float64("verify-fraction", 0, cli.VerifyFractionFlagUsage)
	quarantineThreshold := flag.Float64("quarantine-threshold", 0, cli.QuarantineThresholdFlagUsage)
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	checkpointPath := flag.String("checkpoint", "", cli.CheckpointFlagUsage)
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second, cli.CheckpointIntervalFlagUsage)
	resume := flag.Bool("resume", false, cli.ResumeFlagUsage)
	flag.Parse()
	obs.SetProcessName("ksetbounds")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	defer func() {
		if err := flushTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "ksetbounds: trace-out:", err)
		}
	}()
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	jobKey := cli.JobKey("ksetbounds", *spec, fmt.Sprint(*rounds), fmt.Sprint(*verify),
		fmt.Sprint(*searchFlag), fmt.Sprint(*solverBudget), fmt.Sprint(*clauseBudget))
	ctx, ckpt := cli.StartCheckpoint(ctx, *checkpointPath, jobKey, *checkpointInterval, *resume)
	defer func() {
		if ferr := cli.FinishDurable(ckpt, *memoSnapshot, err); err == nil {
			err = ferr
		}
	}()
	par.SetParallelism(*parallelism)
	if list := cli.SplitWorkers(*workers); len(list) > 0 {
		coord := dist.NewCoordinator(dist.CoordConfig{
			Workers:             list,
			VerifyFraction:      *verifyFraction,
			QuarantineThreshold: *quarantineThreshold,
		})
		coord.Start(ctx)
		model.SetDistributor(coord)
		defer model.SetDistributor(nil)
	}
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.ApplySearchFlag(*searchFlag); err != nil {
		return err
	}
	if err := cli.ApplySolverBudgetFlag(*solverBudget); err != nil {
		return err
	}
	if err := cli.ApplyClauseBudgetFlag(*clauseBudget); err != nil {
		return err
	}
	if err := cli.LoadMemoSnapshot(*memoSnapshot); err != nil {
		return err
	}

	m, err := cli.ParseModel(*spec)
	if err != nil {
		return err
	}
	a, err := core.Analyze(m, *rounds)
	if err != nil {
		return err
	}
	fmt.Print(a.Render())

	if !*verify {
		return cli.SaveMemoSnapshot(*memoSnapshot)
	}
	up, err := core.BestUpperOneRound(m)
	if err != nil {
		return err
	}
	fmt.Printf("verify upper %d-set by simulation: ", up.K)
	if err := core.VerifyUpperBySimulation(m, up, 4_000_000); err != nil {
		fmt.Println("FAIL:", err)
	} else {
		fmt.Println("ok")
	}
	lo, err := core.BestLowerOneRound(m)
	if err != nil {
		return err
	}
	if lo.K < 1 {
		fmt.Println("verify lower: vacuous (k = 0), nothing to check")
		return cli.SaveMemoSnapshot(*memoSnapshot)
	}
	fmt.Printf("verify lower %d-set by decision-map search: ", lo.K)
	if m.N() <= 4 {
		if err := core.VerifyLowerBySolver(m, lo, protocol.DefaultNodeBudget()); err != nil {
			fmt.Println("FAIL:", err)
		} else {
			fmt.Println("ok")
		}
	} else {
		fmt.Println("skipped (n > 4)")
	}
	fmt.Printf("verify lower %d-set by protocol-complex connectivity: ", lo.K)
	if m.N() <= 3 {
		if err := core.VerifyLowerByTopology(m, lo); err != nil {
			fmt.Println("FAIL:", err)
		} else {
			fmt.Println("ok")
		}
	} else {
		fmt.Println("skipped (n > 3)")
	}
	return cli.SaveMemoSnapshot(*memoSnapshot)
}
