// Command ksetsweepd is the distributed-sweep worker daemon: it executes
// rank-shard enumeration ops on behalf of a ksetserved/ksetbounds/
// ksetexperiments coordinator and answers its heartbeat probes.
//
// Usage:
//
//	ksetsweepd -addr :9090
//	ksetsweepd -addr 127.0.0.1:0 -max-concurrent 4 -max-lease 30s
//	ksetsweepd -checkpoint shards.ckpt -memo-snapshot memo.snap
//	ksetsweepd -faults 'delay:dist.exec@1+3:200ms' -fault-seed 42
//
// Endpoints:
//
//	POST /dist/v1/exec       one shard grant: op + model + rank range + lease
//	GET  /dist/v1/heartbeat  failure-detector probe
//	GET  /healthz, /readyz   liveness (a worker has no warm boot: ready ⇔ live)
//	GET  /statz              exec/error/shed/heartbeat counters
//	GET  /metrics            Prometheus text exposition (engine + worker counters)
//	GET  /debug/pprof/       runtime profiles (only with -pprof)
//
// Every shard response is CRC-checksummed before it leaves the worker, so the
// coordinator detects corruption and re-dispatches; a worker that dies simply
// stops answering heartbeats and its leases expire. The -faults flag arms the
// same deterministic fault registry the chaos suite uses — crash, delay and
// corrupt-response schedules replay verbatim against a production worker.
// Byzantine drills use the dist.lie.* points (dist.lie.count,
// dist.lie.enum, dist.lie.replay): each corrupts the shard payload BEFORE
// the CRC is computed, turning the worker into a liar that checksums its own
// wrong bytes — only the coordinator's quorum cross-validation
// (-verify-fraction / -quarantine-threshold on the coordinator) catches it.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ksettop/internal/checkpoint"
	"ksettop/internal/cli"
	"ksettop/internal/dist"
	"ksettop/internal/faultinject"
	"ksettop/internal/obs"
	"ksettop/internal/par"
)

func main() {
	if err := run(); err != nil {
		cli.Exit("ksetsweepd", err)
	}
}

func run() error {
	addr := flag.String("addr", ":9090", "listen address")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	maxConcurrent := flag.Int("max-concurrent", 8, "concurrent shard executions admitted before shedding with 503")
	maxLease := flag.Duration("max-lease", time.Minute, "hard cap on any granted lease duration")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "shutdown grace for in-flight shard executions")
	memoSnapshot := flag.String("memo-snapshot", "", "memo snapshot file: loaded at startup, rewritten every -checkpoint-interval while serving and at drain, so a restarted worker keeps its warm closures (empty = off)")
	checkpointPath := flag.String("checkpoint", "", "checkpoint file for in-flight shard progress: saved every -checkpoint-interval and at drain, reloaded at startup so re-leased shards resume mid-range (empty = off)")
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second, "background save cadence for -checkpoint and -memo-snapshot")
	faults := flag.String("faults", "", "deterministic fault-injection rules, e.g. 'panic:dist.exec@3,corrupt:dist.result@2' (empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault-injection schedule")
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	obs.SetProcessName("ksetsweepd")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	par.SetParallelism(*parallelism)
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.LoadMemoSnapshot(*memoSnapshot); err != nil {
		return err
	}
	if *faults != "" {
		rules, err := faultinject.ParseRules(*faults)
		if err != nil {
			return err
		}
		faultinject.Enable(*faultSeed, rules...)
		defer faultinject.Disable()
	}

	// A daemon restart is the resume case by definition, so the checkpoint
	// is reloaded unconditionally — no -resume flag here.
	var ckpt *checkpoint.Runner
	if *checkpointPath != "" {
		ckpt = checkpoint.NewRunner(*checkpointPath, cli.JobKey("ksetsweepd"), *checkpointInterval)
		ckpt.LoadForResume()
		ckpt.Start()
	}
	w := dist.NewWorker(dist.WorkerConfig{
		MaxConcurrent: *maxConcurrent,
		MaxLease:      *maxLease,
		EnablePprof:   *pprofFlag,
		Checkpoint:    ckpt,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Background memo-snapshot saver: the worker's memoized closures are its
	// warm state, and waiting for a clean drain to persist them would lose
	// them to a SIGKILL. Cadence shared with -checkpoint.
	if *memoSnapshot != "" && *checkpointInterval > 0 {
		go func() {
			t := time.NewTicker(*checkpointInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := cli.SaveMemoSnapshot(*memoSnapshot); err != nil {
						obs.DefaultLogger().Warnf("memo: background snapshot: %v", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	err := w.Run(ctx, *addr, *drainGrace)
	// Drain-time durability: one final shard checkpoint and memo snapshot,
	// whatever the serve loop's outcome.
	if ckpt != nil {
		ckpt.Stop()
		if serr := ckpt.SaveNow(); serr != nil {
			obs.DefaultLogger().Warnf("checkpoint: drain save: %v", serr)
		}
	}
	if serr := cli.SaveMemoSnapshot(*memoSnapshot); serr != nil && err == nil {
		err = serr
	}
	if terr := flushTrace(); terr != nil && err == nil {
		err = terr
	}
	return err
}
