// Command ksetsim runs round-based executions of the paper's algorithms on
// a closed-above model and reports decisions.
//
// Usage:
//
//	ksetsim -model star:n=4 -rounds 1 -values 4 -mode worst
//	ksetsim -model simple-cycle:n=5 -rounds 3 -mode random -seed 7
//
// Modes:
//
//	worst    exhaustive sweep of assignments × generator sequences; prints
//	         the worst execution (most distinct decisions) with its trace.
//	random   one random execution sampled from the model.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ksettop/internal/cli"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		cli.Exit("ksetsim", err)
	}
}

func run() (err error) {
	spec := flag.String("model", "star:n=4", "model specification (see ksetbounds)")
	rounds := flag.Int("rounds", 1, "communication rounds")
	values := flag.Int("values", 0, "number of initial values (default n)")
	mode := flag.String("mode", "worst", "worst | random")
	seed := flag.Int64("seed", 1, "random seed for -mode random")
	limit := flag.Int("limit", 4_000_000, "execution budget for -mode worst")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	memoSnapshot := flag.String("memo-snapshot", "", cli.MemoSnapshotUsage)
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	flag.Parse()
	obs.SetProcessName("ksetsim")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	defer func() {
		if err := flushTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "ksetsim: trace-out:", err)
		}
	}()
	// No checkpointable engine here — a SIGINT/SIGTERM still cancels the
	// sweep promptly (via the runctx base), flushes trace + memo snapshot
	// through the deferred FinishDurable, and exits ExitInterrupted.
	_, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	defer func() {
		if ferr := cli.FinishDurable(nil, *memoSnapshot, err); err == nil {
			err = ferr
		}
	}()
	par.SetParallelism(*parallelism)
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.LoadMemoSnapshot(*memoSnapshot); err != nil {
		return err
	}

	m, err := cli.ParseModel(*spec)
	if err != nil {
		return err
	}
	numValues := *values
	if numValues == 0 {
		numValues = m.N()
	}
	algo := protocol.MinAlgorithm{R: *rounds}

	switch *mode {
	case "worst":
		res, err := protocol.WorstCase(m.Generators(), numValues, *rounds, algo, *limit)
		if err != nil {
			return err
		}
		fmt.Printf("%s, %d values, %d rounds, min algorithm\n", m, numValues, *rounds)
		fmt.Printf("executions swept: %d (generator adversary)\n", res.Executions)
		fmt.Printf("worst-case distinct decisions: %d\n", res.WorstDistinct)
		fmt.Println("worst execution:")
		if err := printExecution(res.Witness, algo); err != nil {
			return err
		}
		return cli.SaveMemoSnapshot(*memoSnapshot)
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		adv := &protocol.RandomAdversary{Gens: m.Generators(), ExtraProb: 0.3, Rng: rng}
		initial := make([]protocol.Value, m.N())
		for p := range initial {
			initial[p] = rng.Intn(numValues)
		}
		e, err := protocol.BuildExecution(adv, *rounds, initial)
		if err != nil {
			return err
		}
		if err := printExecution(e, algo); err != nil {
			return err
		}
		return cli.SaveMemoSnapshot(*memoSnapshot)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func printExecution(e protocol.Execution, algo protocol.Algorithm) error {
	res, err := protocol.Run(e, algo)
	if err != nil {
		return err
	}
	fmt.Printf("  initial values: %v\n", e.Initial)
	for r, g := range e.Graphs {
		fmt.Printf("  round %d graph:  %v\n", r+1, g)
	}
	for p, v := range res.Views {
		fmt.Printf("  p%d view %v decides %d\n", p, v, res.Decisions[p])
	}
	fmt.Printf("  distinct decisions: %d\n", res.DistinctCount())
	return nil
}
