// Command ksettopo explores the §4 topology of a closed-above model: the
// uninterpreted complex (Def 4.4), the one-round protocol complex
// (Def 4.14), their homology (GF(2) and integral), and the nerve structure
// of the pseudosphere cover.
//
// Usage:
//
//	ksettopo -model star:n=3 -values 3
//	ksettopo -model simple-cycle:n=4 -values 2 -maxdim 1
//	ksettopo -model stars:n=6,s=2 -engine packed        # seed oracle backend
//	ksettopo -model star:n=5 -memo-snapshot memo.snap   # warm-start closures
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/topology"
)

func main() {
	if err := run(); err != nil {
		cli.Exit("ksettopo", err)
	}
}

func run() (err error) {
	spec := flag.String("model", "star:n=3", "model specification (see ksetbounds)")
	values := flag.Int("values", 2, "input values for the protocol complex")
	maxDim := flag.Int("maxdim", -1, "homology dimension cap (default n−2)")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	engineFlag := flag.String("engine", "hybrid", cli.EngineFlagUsage)
	memoSnapshot := flag.String("memo-snapshot", "", cli.MemoSnapshotUsage)
	solverBudget := flag.Int("solver-budget", 0, cli.SolverBudgetFlagUsage)
	clauseBudget := flag.Int("clause-budget", 0, cli.ClauseBudgetFlagUsage)
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	checkpointPath := flag.String("checkpoint", "", cli.CheckpointFlagUsage)
	checkpointInterval := flag.Duration("checkpoint-interval", 30*time.Second, cli.CheckpointIntervalFlagUsage)
	resume := flag.Bool("resume", false, cli.ResumeFlagUsage)
	flag.Parse()
	obs.SetProcessName("ksettopo")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	jobKey := cli.JobKey("ksettopo", *spec, fmt.Sprint(*values), fmt.Sprint(*maxDim),
		*engineFlag, fmt.Sprint(*solverBudget), fmt.Sprint(*clauseBudget))
	_, ckpt := cli.StartCheckpoint(ctx, *checkpointPath, jobKey, *checkpointInterval, *resume)
	defer func() {
		if ferr := cli.FinishDurable(ckpt, *memoSnapshot, err); err == nil {
			err = ferr
		}
	}()
	par.SetParallelism(*parallelism)
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.ApplyEngineFlag(*engineFlag); err != nil {
		return err
	}
	if err := cli.ApplySolverBudgetFlag(*solverBudget); err != nil {
		return err
	}
	if err := cli.ApplyClauseBudgetFlag(*clauseBudget); err != nil {
		return err
	}
	if err := cli.LoadMemoSnapshot(*memoSnapshot); err != nil {
		return err
	}

	m, err := cli.ParseModel(*spec)
	if err != nil {
		return err
	}
	dim := *maxDim
	if dim < 0 {
		dim = m.N() - 2
	}
	fmt.Println(m)

	if err := reportUninterpreted(m, dim); err != nil {
		return err
	}
	if err := reportProtocol(m, *values, dim); err != nil {
		return err
	}
	if err := flushTrace(); err != nil {
		return err
	}
	return cli.SaveMemoSnapshot(*memoSnapshot)
}

func reportUninterpreted(m *model.ClosedAbove, dim int) error {
	cover, err := topology.UninterpretedCover(m.Generators())
	if err != nil {
		return err
	}
	fmt.Printf("\nuninterpreted complex C_A (Def 4.4):\n")
	totalFacets := 0
	for i, ps := range cover {
		totalFacets += ps.FacetCount()
		if i < 4 {
			fmt.Printf("  pseudosphere %d: %d facets, Lemma 4.7 bound: %d-connected\n",
				i, ps.FacetCount(), ps.ConnectivityBound())
		}
	}
	if len(cover) > 4 {
		fmt.Printf("  … %d more pseudospheres\n", len(cover)-4)
	}
	c, err := topology.UninterpretedComplex(m.Generators())
	if err != nil {
		return err
	}
	ac, _, err := c.ToAbstract()
	if err != nil {
		return err
	}
	fmt.Printf("  union: %d facets (%d before dedup), dim %d, pure=%v, χ=%d\n",
		ac.FacetCount(), totalFacets, ac.Dimension(), ac.IsPure(), ac.EulerCharacteristic())

	// One facet walk feeds the reduction; the facet-based entry would
	// re-derive the levels the report already enumerates.
	levels := ac.SimplexLevels(dim + 1)
	betti, err := topology.ReducedBettiNumbersFromLevels(ac, levels, dim)
	if err != nil {
		return err
	}
	fmt.Printf("  GF(2) reduced betti up to dim %d: %v\n", dim, betti)
	ih, err := topology.IntegerHomologyGroups(ac, dim)
	if err != nil {
		return err
	}
	fmt.Printf("  integral homology: %s\n", ih)
	ok, _, err := topology.IsIntegrallyKConnected(ac, m.N()-2)
	if err != nil {
		return err
	}
	fmt.Printf("  Thm 4.12 check ((n−2)-connected): %v\n", ok)
	return nil
}

func reportProtocol(m *model.ClosedAbove, values, dim int) error {
	inputs, err := topology.InputAssignments(m.N(), values)
	if err != nil {
		return err
	}
	pc, err := topology.ProtocolComplexOneRound(m.Generators(), inputs)
	if err != nil {
		return err
	}
	ac, verts, err := pc.ToAbstract()
	if err != nil {
		return err
	}
	fmt.Printf("\none-round protocol complex over %d values (Def 4.14):\n", values)
	fmt.Printf("  %d input facets × %d generators → %d facets, %d vertices\n",
		len(inputs), m.GeneratorCount(), ac.FacetCount(), len(verts))

	betti, err := topology.ReducedBettiNumbersFromLevels(ac, ac.SimplexLevels(dim+1), dim)
	if err != nil {
		return err
	}
	fmt.Printf("  GF(2) reduced betti up to dim %d: %v\n", dim, betti)
	for k := 0; k <= dim; k++ {
		if betti[k] != 0 {
			fmt.Printf("  verdict: NOT %d-connected → no obstruction to %d-set agreement at k=%d\n",
				k, k+1, k+1)
			return nil
		}
	}
	fmt.Printf("  verdict: %d-connected → (k ≤ %d)-set agreement impossible in one round\n",
		dim, dim+1)
	fmt.Printf("  ([HKR13] Thm 10.3.1 / paper Thm 5.4 premise)\n")
	return nil
}
