// Command ksetbench runs the core micro-benchmarks in-process and writes a
// machine-readable BENCH_<n>.json snapshot, so the performance trajectory of
// the hot paths (subset sweeps, solver, homology, closures) is recorded
// PR over PR and regressions are diffable.
//
// Usage:
//
//	ksetbench                       # writes BENCH_1.json
//	ksetbench -out BENCH_7.json     # explicit snapshot name
//	ksetbench -parallelism 8        # pin the worker-pool size
//	ksetbench -filter '^Homology'   # re-measure only the matching rows
//	ksetbench -out BENCH_ci.json -against BENCH_3.json
//	                                # also fail when any benchmark shared
//	                                # with the committed snapshot regresses
//	                                # more than -regress (default 25%)
//
// With -filter, only benchmarks whose name matches the regexp run; the
// snapshot then holds just those rows, and the -against gate compares just
// those rows (do not commit a filtered snapshot as the PR baseline).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ksettop/internal/bits"
	"ksettop/internal/checkpoint"
	"ksettop/internal/cli"
	"ksettop/internal/combinat"
	"ksettop/internal/dist"
	"ksettop/internal/experiments"
	"ksettop/internal/faultinject"
	"ksettop/internal/graph"
	"ksettop/internal/memo"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/protocol"
	"ksettop/internal/serve"
	"ksettop/internal/topology"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type snapshot struct {
	Timestamp   string        `json:"timestamp"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Parallelism int           `json:"parallelism"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ksetbench:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	against := flag.String("against", "", "previous snapshot to compare against (fails on regression)")
	regress := flag.Float64("regress", 0.25, "allowed fractional ns/op regression vs -against")
	filter := flag.String("filter", "", "regexp over benchmark names; only matches run (e.g. '^Homology')")
	searchFlag := flag.String("search", "parallel", cli.SearchFlagUsage)
	solverBudget := flag.Int("solver-budget", 0, cli.SolverBudgetFlagUsage)
	clauseBudget := flag.Int("clause-budget", 0, cli.ClauseBudgetFlagUsage)
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	flag.Parse()
	obs.SetProcessName("ksetbench")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	defer func() {
		if err := flushTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "ksetbench: trace-out:", err)
		}
	}()
	par.SetParallelism(*parallelism)
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.ApplySearchFlag(*searchFlag); err != nil {
		return err
	}
	if err := cli.ApplySolverBudgetFlag(*solverBudget); err != nil {
		return err
	}
	if err := cli.ApplyClauseBudgetFlag(*clauseBudget); err != nil {
		return err
	}

	var nameRe *regexp.Regexp
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			return fmt.Errorf("parsing -filter: %w", err)
		}
		nameRe = re
	}

	snap := snapshot{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Parallelism(),
	}
	for _, b := range benches() {
		if nameRe != nil && !nameRe.MatchString(b.name) {
			continue
		}
		r := testing.Benchmark(b.fn)
		snap.Benchmarks = append(snap.Benchmarks, benchResult{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
			b.name, snap.Benchmarks[len(snap.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	// The service rows measure request latency percentiles, not ns/op of a
	// loop body, so they bypass testing.Benchmark; both come from one load
	// run. -filter applies per row as usual.
	if nameRe == nil || nameRe.MatchString("ServeMixedP50") || nameRe.MatchString("ServeMixedP99") {
		rows, err := serveBench()
		if err != nil {
			return fmt.Errorf("service benchmark: %w", err)
		}
		for _, row := range rows {
			if nameRe != nil && !nameRe.MatchString(row.Name) {
				continue
			}
			snap.Benchmarks = append(snap.Benchmarks, row)
			fmt.Printf("%-24s %12.0f ns/op  (latency percentile over %d requests)\n",
				row.Name, row.NsPerOp, row.Iterations)
		}
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)

	if *against != "" {
		return compareAgainst(snap, *against, *regress)
	}
	return nil
}

// compareAgainst fails when any benchmark present in both snapshots got more
// than the allowed fraction slower — the CI regression gate for the
// perf-trajectory snapshots committed per PR. The baseline snapshot may be
// recorded on a different machine, so with ≥ 5 shared benchmarks every
// ratio is normalized by the suite-median slowdown (floored at 1, see
// below): a uniformly slower runner cancels out and only benchmarks that
// regressed relative to the rest of the suite trip the gate. New and
// removed benchmarks only inform.
func compareAgainst(snap snapshot, path string, allowed float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}
	type comparison struct {
		name  string
		prev  float64
		now   float64
		ratio float64
	}
	var shared []comparison
	for _, b := range snap.Benchmarks {
		prev, ok := baseNs[b.Name]
		if !ok || prev <= 0 {
			fmt.Printf("  %-24s new benchmark, no baseline\n", b.Name)
			continue
		}
		shared = append(shared, comparison{b.Name, prev, b.NsPerOp, b.NsPerOp / prev})
	}
	// speed is the suite-median ratio, floored at 1: a uniformly SLOWER
	// machine (CI runner vs the box that recorded the baseline) is divided
	// out, while a uniformly faster machine — or a broad-improvement PR —
	// never inflates unchanged benchmarks into false regressions. The dual
	// limitation is explicit: a regression uniform across the whole suite is
	// indistinguishable from slow hardware and passes; the committed
	// BENCH_<n>.json trajectory still records it in absolute terms.
	speed := 1.0
	if len(shared) >= 5 {
		ratios := make([]float64, len(shared))
		for i, c := range shared {
			ratios[i] = c.ratio
		}
		sort.Float64s(ratios)
		if med := ratios[len(ratios)/2]; med > 1 {
			speed = med
		}
	}
	fmt.Printf("\nregression check vs %s (threshold +%.0f%%, machine factor %.2fx):\n",
		path, allowed*100, speed)
	var failures []string
	for _, c := range shared {
		normalized := c.ratio / speed
		verdict := "ok"
		if normalized > 1+allowed {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s %.2fx", c.name, normalized))
		}
		fmt.Printf("  %-24s %.2fx normalized (%.0f → %.0f ns/op) %s\n",
			c.name, normalized, c.prev, c.now, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% relative to the suite median: %v",
			len(failures), allowed*100, failures)
	}
	return nil
}

// serveBench drives the bound-query service end to end — real HTTP over a
// loopback listener, four concurrent clients, a mixed solve/betti/bounds
// workload — and reports the p50/p99 request latencies as snapshot rows, so
// the service's tail behavior is tracked PR over PR alongside the engine
// micro-benchmarks. A warm-up pass issues each distinct query once first:
// the rows measure steady-state service overhead (routing, admission,
// singleflight, memoized engines), not one cold cache fill.
func serveBench() ([]benchResult, error) {
	s := serve.New(serve.Config{
		MaxConcurrent: 16,
		Logf:          func(string, ...any) {},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []struct{ path, body string }{
		{"/v1/solve", `{"model":"star:n=3","values":3,"k":2}`},
		{"/v1/betti", `{"model":"star:n=3","values":2,"max_dim":2}`},
		{"/v1/bounds", `{"model":"star:n=4","rounds":1}`},
		{"/v1/bounds", `{"model":"stars:n=5,s=2","rounds":1}`},
	}
	do := func(i int) error {
		rq := reqs[i%len(reqs)]
		resp, err := http.Post(ts.URL+rq.path, "application/json", strings.NewReader(rq.body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", rq.path, resp.StatusCode)
		}
		return nil
	}
	for i := range reqs {
		if err := do(i); err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
	}

	const total, clients = 400, 4
	latencies := make([]time.Duration, total)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	var next atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				start := time.Now()
				if err := do(i); err != nil {
					errs[c] = err
					return
				}
				latencies[i] = time.Since(start)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) float64 {
		idx := total * p / 100
		if idx >= total {
			idx = total - 1
		}
		return float64(latencies[idx].Nanoseconds())
	}
	return []benchResult{
		{Name: "ServeMixedP50", Iterations: total, NsPerOp: pct(50)},
		{Name: "ServeMixedP99", Iterations: total, NsPerOp: pct(99)},
	}, nil
}

type bench struct {
	name string
	fn   func(b *testing.B)
}

// benches mirrors the root bench_test.go micro-benchmarks that track the
// paper's hot paths; keep the two lists aligned when adding benchmarks.
func benches() []bench {
	return []bench{
		{"DominationNumber", func(b *testing.B) {
			g, err := graph.BidirectionalRing(12)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := combinat.DominationNumber(g); got != 4 {
					b.Fatalf("γ = %d, want 4", got)
				}
			}
		}},
		{"CoveringNumbers", func(b *testing.B) {
			g, err := graph.Cycle(14)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for idx := 1; idx <= 7; idx++ {
					if _, err := combinat.CoveringNumber(g, idx); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"DistributedDomination", func(b *testing.B) {
			m, err := model.UnionOfStarsModel(6, 2)
			if err != nil {
				b.Fatal(err)
			}
			gens := m.Generators()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := combinat.DistributedDominationNumber(gens); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SymClosure", func(b *testing.B) {
			// Memoization off: this tracks the n! sweep itself, not the cache.
			g, err := graph.UnionOfStars(6, []int{0, 1})
			if err != nil {
				b.Fatal(err)
			}
			defer memo.SetEnabled(memo.Enabled())
			memo.SetEnabled(false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				closure, err := graph.SymClosure([]graph.Digraph{g})
				if err != nil || len(closure) != 15 {
					b.Fatalf("closure %d graphs, err %v", len(closure), err)
				}
			}
		}},
		{"HomologyBetti", func(b *testing.B) {
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			c, err := topology.UninterpretedComplex(m.Generators())
			if err != nil {
				b.Fatal(err)
			}
			ac, _, err := c.ToAbstract()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topology.ReducedBettiNumbers(ac, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"HomologyBetti64k", func(b *testing.B) {
			// 9-color pseudosphere with 82943 distinct simplexes and
			// 9-vertex facets: past every packing width, sparse engine
			// only. Join of discrete sets ⇒ β̃_0..β̃_7 = 0.
			ac, err := topology.PseudosphereComplex([]int{3, 3, 3, 3, 3, 2, 2, 2, 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				betti, err := topology.ReducedBettiNumbers(ac, 7)
				if err != nil {
					b.Fatal(err)
				}
				for q, v := range betti {
					if v != 0 {
						b.Fatalf("β̃_%d = %d, want 0", q, v)
					}
				}
			}
		}},
		{"HomologyBetti512k", func(b *testing.B) {
			// 12 colors × 2 views: 531440 distinct simplexes (> 2^19) with
			// 12-vertex facets. The hybrid engine's packed level keys
			// (5-bit fields × 12 vertices) and apparent-pairs pass carry it
			// in seconds; the pure-sparse reduction can only grind through,
			// and the seed path rejects it outright. Join of 12 discrete
			// pairs ⇒ β̃_0..β̃_10 = 0.
			views := make([]int, 12)
			for i := range views {
				views[i] = 2
			}
			ac, err := topology.PseudosphereComplex(views)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				betti, err := topology.ReducedBettiNumbers(ac, 10)
				if err != nil {
					b.Fatal(err)
				}
				for q, v := range betti {
					if v != 0 {
						b.Fatalf("β̃_%d = %d, want 0", q, v)
					}
				}
			}
		}},
		{"DecisionMapSolver", func(b *testing.B) {
			m, err := model.NonEmptyKernelModel(3)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.SolveOneRound(all, 3, 2, protocol.DefaultNodeBudget())
				if err != nil || res.Solvable {
					b.Fatalf("solvable=%v err=%v, want impossibility", res.Solvable, err)
				}
			}
		}},
		{"SolveOneRoundParallel", func(b *testing.B) {
			// The n=4 star-closure impossibility with the probe limit
			// forced low: the full work-stealing pipeline (decomposition,
			// shared task deque, per-task conflict learning, rank-ordered
			// reduction) does the refutation.
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			protocol.SetSearchProbeLimit(16)
			defer protocol.SetSearchProbeLimit(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.SolveOneRound(all, 4, 3, protocol.DefaultNodeBudget())
				if err != nil || res.Solvable || res.Stats.Tasks == 0 {
					b.Fatalf("solvable=%v tasks=%d err=%v, want work-stealing impossibility run",
						res.Solvable, res.Stats.Tasks, err)
				}
			}
		}},
		{"SolveOneRoundSeqCapped", func(b *testing.B) {
			// The sequential-oracle baseline on the same instance, capped
			// at 100k nodes (always exhausted): tracks the oracle's
			// per-node cost and records the engine gap in the snapshot.
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.SolveOneRoundEngine(all, 4, 3, 100_000, protocol.SearchSeq)
				if err == nil || res.Solvable {
					b.Fatalf("want the oracle to exhaust its 100k-node cap, got solvable=%v err=%v", res.Solvable, err)
				}
			}
		}},
		{"CheckpointOverhead", func(b *testing.B) {
			// The SolveOneRoundParallel body with a live checkpoint runner
			// attached: frontier bookkeeping and capture registration during
			// the solve, plus one full checkpoint write per iteration.
			// Comparing this row against SolveOneRoundParallel bounds what
			// durability costs on the hot solve path — the acceptance budget
			// is < 5%.
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			protocol.SetSearchProbeLimit(16)
			defer protocol.SetSearchProbeLimit(0)
			dir, err := os.MkdirTemp("", "ksetbench-ckpt")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			path := filepath.Join(dir, "solver.ckpt")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := checkpoint.NewRunner(path, "bench", 0)
				ctx := checkpoint.WithRunner(context.Background(), r)
				res, err := protocol.SolveOneRoundCtx(ctx, all, 4, 3, protocol.DefaultNodeBudget())
				if err != nil || res.Solvable {
					b.Fatalf("solvable=%v err=%v, want impossibility", res.Solvable, err)
				}
				if err := r.SaveNow(); err != nil {
					b.Fatal(err)
				}
				if err := r.Remove(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ResumeWarm", func(b *testing.B) {
			// Warm-resume latency: a refutation killed at its first parallel
			// task leaves a checkpoint behind; only the resumed completion is
			// timed. The row tracks how much of a solve a crash actually
			// re-pays (restored frontier tasks are skipped, the rest
			// recomputed).
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			protocol.SetSearchProbeLimit(16)
			defer protocol.SetSearchProbeLimit(0)
			dir, err := os.MkdirTemp("", "ksetbench-resume")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			path := filepath.Join(dir, "solver.ckpt")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				os.Remove(path)
				r1 := checkpoint.NewRunner(path, "bench", 0)
				faultinject.Enable(42, faultinject.Rule{
					Point:  faultinject.PointSolverTask,
					Nth:    1,
					Action: faultinject.ActionError,
				})
				_, err := protocol.SolveOneRoundCtx(checkpoint.WithRunner(context.Background(), r1),
					all, 4, 3, protocol.DefaultNodeBudget())
				faultinject.Disable()
				if err == nil {
					b.Fatal("injected solver kill did not fire")
				}
				if err := r1.SaveNow(); err != nil {
					b.Fatal(err)
				}
				r2 := checkpoint.NewRunner(path, "bench", 0)
				if !r2.LoadForResume() {
					b.Fatal("checkpoint did not load")
				}
				b.StartTimer()
				res, err := protocol.SolveOneRoundCtx(checkpoint.WithRunner(context.Background(), r2),
					all, 4, 3, protocol.DefaultNodeBudget())
				if err != nil || res.Solvable {
					b.Fatalf("solvable=%v err=%v, want resumed impossibility", res.Solvable, err)
				}
			}
		}},
		{"SolveOneRoundClosure", func(b *testing.B) {
			// The n=4 star-closure impossibility: 1695 graphs × 256
			// assignments. The constraint sweep shards across the worker
			// pool; the PR-2 list dedup and flat tables carry the
			// single-core path.
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.SolveOneRound(all, 4, 3, protocol.DefaultNodeBudget())
				if err != nil || res.Solvable {
					b.Fatalf("solvable=%v err=%v, want impossibility", res.Solvable, err)
				}
			}
		}},
		{"ObsOverhead", func(b *testing.B) {
			// The SolveOneRoundClosure body with the observability layer's
			// gated paths (histogram timing; tracing is off by default)
			// switched off. Comparing this row against SolveOneRoundClosure,
			// which runs with the default-on instrumentation, bounds what
			// observability costs on the hot solve path — the acceptance
			// budget is ≲ 1%.
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			all, err := m.AllGraphs()
			if err != nil {
				b.Fatal(err)
			}
			obs.SetEnabled(false)
			defer obs.SetEnabled(true)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.SolveOneRound(all, 4, 3, protocol.DefaultNodeBudget())
				if err != nil || res.Solvable {
					b.Fatalf("solvable=%v err=%v, want impossibility", res.Solvable, err)
				}
			}
		}},
		{"EnumerateClosure", func(b *testing.B) {
			// Mask-level streaming sweep of the n=5 star closure (5·2^16
			// ranks): the fast path behind GraphCount and the sharded
			// collectors, no Digraph materialization.
			m, err := model.NonEmptyKernelModel(5)
			if err != nil {
				b.Fatal(err)
			}
			e, err := m.Enumeration()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				e.RangeMasks(0, e.Size(), func(bits.Words) bool {
					count++
					return true
				})
				_ = count
			}
		}},
		{"ModelConstructionMemo", func(b *testing.B) {
			// Repeat model construction through the canonical-key cache.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.UnionOfStarsModel(6, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ModelConstructionCold", func(b *testing.B) {
			// The same construction with the cache disabled: the cold
			// baseline the memo column is measured against.
			defer memo.SetEnabled(memo.Enabled())
			memo.SetEnabled(false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.UnionOfStarsModel(6, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"E10StarUnions", func(b *testing.B) {
			var runner experiments.Runner
			for _, r := range experiments.All() {
				if r.ID == "E10" {
					runner = r
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"E14StarUnions7", func(b *testing.B) {
			var runner experiments.Runner
			for _, r := range experiments.All() {
				if r.ID == "E14" {
					runner = r
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DistSweepCount", func(b *testing.B) {
			// A full coordinated count sweep over 3 in-process workers
			// (real HTTP on loopback): ring placement, leases, shard
			// dispatch, CRC verification and the ordered merge — the
			// steady-state cost of the distributed tier on the n=5 star
			// closure (5·2^16 ranks, 24 shards).
			workers, stop := benchWorkers(3)
			defer stop()
			job := dist.Job{Op: dist.OpCount, Model: "star:n=5"}
			want, err := dist.RunSequential(context.Background(), job)
			if err != nil {
				b.Fatal(err)
			}
			c := dist.NewCoordinator(dist.CoordConfig{
				Workers:        workers,
				Shards:         24,
				DisableHedging: true,
				Logf:           func(string, ...any) {},
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := c.Run(context.Background(), job)
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					b.Fatal("distributed sweep differs from sequential reference")
				}
			}
		}},
		{"DistQuorumVerify", func(b *testing.B) {
			// The Byzantine-defense overhead ceiling: the same coordinated
			// count sweep as DistSweepCount but with VerifyFraction 1 —
			// every committed shard re-executed on a distinct replica and
			// byte-compared before the merge. An honest fleet, so the row
			// prices pure cross-validation (second executions + vote
			// bookkeeping), not conviction or degraded serving.
			workers, stop := benchWorkers(3)
			defer stop()
			job := dist.Job{Op: dist.OpCount, Model: "star:n=5"}
			want, err := dist.RunSequential(context.Background(), job)
			if err != nil {
				b.Fatal(err)
			}
			c := dist.NewCoordinator(dist.CoordConfig{
				Workers:        workers,
				Shards:         24,
				DisableHedging: true,
				VerifyFraction: 1,
				Logf:           func(string, ...any) {},
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, err := c.Run(context.Background(), job)
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					b.Fatal("verified sweep differs from sequential reference")
				}
			}
		}},
		{"DistRecovery", func(b *testing.B) {
			// Warm-restart recovery: a coordinator killed after journaling
			// 11 of 24 shard commits restarts on the same journal and
			// finishes the sweep. Only the resumed run is timed — the row
			// tracks how much of the sweep a restart actually pays for
			// (journaled shards are skipped, the rest recomputed).
			workers, stop := benchWorkers(3)
			defer stop()
			dir, err := os.MkdirTemp("", "ksetbench-dist")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			cfg := dist.CoordConfig{
				Workers:        workers,
				Shards:         24,
				DisableHedging: true,
				JournalPath:    filepath.Join(dir, "sweep.journal"),
				Logf:           func(string, ...any) {},
			}
			job := dist.Job{Op: dist.OpEnum, Model: "star:n=4"}
			want, err := dist.RunSequential(context.Background(), job)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				os.Remove(cfg.JournalPath)
				faultinject.Enable(1, faultinject.Rule{
					Point:  faultinject.PointDistCommit,
					Nth:    12,
					Action: faultinject.ActionError,
				})
				if _, err := dist.NewCoordinator(cfg).Run(context.Background(), job); err == nil {
					faultinject.Disable()
					b.Fatal("injected coordinator kill did not fire")
				}
				faultinject.Disable()
				c := dist.NewCoordinator(cfg)
				b.StartTimer()
				got, err := c.Run(context.Background(), job)
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					b.Fatal("recovered sweep differs from sequential reference")
				}
			}
		}},
	}
}

// benchWorkers starts n in-process sweep workers on loopback listeners and
// returns their addresses plus a shutdown func.
func benchWorkers(n int) ([]string, func()) {
	addrs := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := range addrs {
		w := dist.NewWorker(dist.WorkerConfig{Logf: func(string, ...any) {}})
		servers[i] = httptest.NewServer(w.Handler())
		addrs[i] = strings.TrimPrefix(servers[i].URL, "http://")
	}
	return addrs, func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
}
