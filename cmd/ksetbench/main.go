// Command ksetbench runs the core micro-benchmarks in-process and writes a
// machine-readable BENCH_<n>.json snapshot, so the performance trajectory of
// the hot paths (subset sweeps, solver, homology, closures) is recorded
// PR over PR and regressions are diffable.
//
// Usage:
//
//	ksetbench                       # writes BENCH_1.json
//	ksetbench -out BENCH_7.json     # explicit snapshot name
//	ksetbench -parallelism 8        # pin the worker-pool size
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ksettop/internal/combinat"
	"ksettop/internal/experiments"
	"ksettop/internal/graph"
	"ksettop/internal/model"
	"ksettop/internal/par"
	"ksettop/internal/protocol"
	"ksettop/internal/topology"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type snapshot struct {
	Timestamp   string        `json:"timestamp"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Parallelism int           `json:"parallelism"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ksetbench:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	flag.Parse()
	par.SetParallelism(*parallelism)

	snap := snapshot{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: par.Parallelism(),
	}
	for _, b := range benches() {
		r := testing.Benchmark(b.fn)
		snap.Benchmarks = append(snap.Benchmarks, benchResult{
			Name:        b.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
			b.name, snap.Benchmarks[len(snap.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

type bench struct {
	name string
	fn   func(b *testing.B)
}

// benches mirrors the root bench_test.go micro-benchmarks that track the
// paper's hot paths; keep the two lists aligned when adding benchmarks.
func benches() []bench {
	return []bench{
		{"DominationNumber", func(b *testing.B) {
			g, err := graph.BidirectionalRing(12)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := combinat.DominationNumber(g); got != 4 {
					b.Fatalf("γ = %d, want 4", got)
				}
			}
		}},
		{"CoveringNumbers", func(b *testing.B) {
			g, err := graph.Cycle(14)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for idx := 1; idx <= 7; idx++ {
					if _, err := combinat.CoveringNumber(g, idx); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"DistributedDomination", func(b *testing.B) {
			m, err := model.UnionOfStarsModel(6, 2)
			if err != nil {
				b.Fatal(err)
			}
			gens := m.Generators()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := combinat.DistributedDominationNumber(gens); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SymClosure", func(b *testing.B) {
			g, err := graph.UnionOfStars(6, []int{0, 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				closure, err := graph.SymClosure([]graph.Digraph{g})
				if err != nil || len(closure) != 15 {
					b.Fatalf("closure %d graphs, err %v", len(closure), err)
				}
			}
		}},
		{"HomologyBetti", func(b *testing.B) {
			m, err := model.NonEmptyKernelModel(4)
			if err != nil {
				b.Fatal(err)
			}
			c, err := topology.UninterpretedComplex(m.Generators())
			if err != nil {
				b.Fatal(err)
			}
			ac, _, err := c.ToAbstract()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topology.ReducedBettiNumbers(ac, 2); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"DecisionMapSolver", func(b *testing.B) {
			m, err := model.NonEmptyKernelModel(3)
			if err != nil {
				b.Fatal(err)
			}
			var all []graph.Digraph
			if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
				all = append(all, g)
				return true
			}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.SolveOneRound(all, 3, 2, 50_000_000)
				if err != nil || res.Solvable {
					b.Fatalf("solvable=%v err=%v, want impossibility", res.Solvable, err)
				}
			}
		}},
		{"E10StarUnions", func(b *testing.B) {
			var runner experiments.Runner
			for _, r := range experiments.All() {
				if r.ID == "E10" {
					runner = r
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}
