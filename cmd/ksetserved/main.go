// Command ksetserved is the long-running bound-query daemon: an HTTP+JSON
// service answering solvability, homology and bound queries over closed-above
// models.
//
// Usage:
//
//	ksetserved -addr :8080 -memo-snapshot /var/lib/ksettop/memo.snap
//	ksetserved -addr 127.0.0.1:0 -max-concurrent 4 -request-timeout 10s
//	ksetserved -faults 'delay:serve.request@1+7:50ms' -fault-seed 42
//
// Endpoints:
//
//	POST /v1/solve   {"model","values","k","budget?","timeout_ms?"}
//	POST /v1/betti   {"model","values","max_dim","timeout_ms?"}
//	POST /v1/bounds  {"model","rounds","timeout_ms?"}
//	POST /v1/count   {"model","timeout_ms?"}
//	GET  /healthz    liveness
//	GET  /readyz     readiness: warm boot finished, and in coordinator mode ≥1 live worker
//	GET  /statz      request/panic/shed/timeout counters (+ dist counters in coordinator mode)
//	GET  /metrics    Prometheus text exposition (engine + server + coordinator counters)
//	GET  /debug/pprof/  runtime profiles (only with -pprof)
//
// With -workers host:port,... the daemon runs in coordinator mode: heavy
// closure-count sweeps are sharded across the named ksetsweepd workers
// (consistent-hash placement, lease/heartbeat failure detection, straggler
// hedging, optional crash-recovery journal via -dist-journal), falling back
// to the local engine when the fleet is unavailable. The fleet is not
// assumed honest: -verify-fraction re-executes a sample of committed shards
// on distinct replicas and settles disagreements by quorum majority with a
// local recompute as arbiter, and workers whose divergence score crosses
// -quarantine-threshold are quarantined from placement until a half-open
// known-answer probe re-admits them; when live trusted workers run out, the
// daemon degrades to local compute rather than serve untrusted bytes.
//
// The daemon admission-controls concurrency (503 on overload), enforces
// per-request deadlines (504), returns typed budget rejections (422),
// isolates worker panics (500, never a crash), coalesces identical
// in-flight queries, warm-boots from a checksummed memo snapshot
// (tolerating corruption by starting cold), checkpoints in the background,
// and drains gracefully on SIGINT/SIGTERM with a final snapshot save.
//
// The -faults flag arms the deterministic fault-injection registry inside
// the daemon itself — the chaos schedule that the test suite runs is
// available, verbatim, against a production binary.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/dist"
	"ksettop/internal/faultinject"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/serve"
)

func main() {
	if err := run(); err != nil {
		cli.Exit("ksetserved", err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	parallelism := flag.Int("parallelism", 0, "worker-pool size (0 = KSETTOP_PARALLELISM or GOMAXPROCS)")
	memoFlag := flag.String("memo", "on", cli.MemoFlagUsage)
	searchFlag := flag.String("search", "parallel", cli.SearchFlagUsage)
	engineFlag := flag.String("engine", "hybrid", cli.EngineFlagUsage)
	maxConcurrent := flag.Int("max-concurrent", 8, "concurrent requests admitted before shedding with 503")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "hard cap on any request deadline")
	solverBudget := flag.Int("solver-budget", 0, "per-request solver node budget cap (0 = stock 50M)")
	memoSnapshot := flag.String("memo-snapshot", "", "memo snapshot file: warm boot, background checkpoints, final save on drain (empty = off)")
	checkpointEvery := flag.Duration("checkpoint-every", time.Minute, "background checkpoint period")
	drainGrace := flag.Duration("drain-grace", 15*time.Second, "shutdown grace for in-flight requests")
	faults := flag.String("faults", "", "deterministic fault-injection rules, e.g. 'panic:serve.request@3,delay:par.task@1+100:1ms' (empty = off)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault-injection schedule")
	workers := flag.String("workers", "", "comma-separated ksetsweepd worker addresses; non-empty enables coordinator mode")
	distShards := flag.Int("dist-shards", 0, "shards per distributed sweep (0 = 8 × workers)")
	distLease := flag.Duration("dist-lease", 15*time.Second, "shard lease TTL before a grant is forfeited and re-dispatched")
	distJournal := flag.String("dist-journal", "", "shard-commit journal file for coordinator crash recovery (empty = off)")
	verifyFraction := flag.Float64("verify-fraction", 0, cli.VerifyFractionFlagUsage)
	quarantineThreshold := flag.Float64("quarantine-threshold", 0, cli.QuarantineThresholdFlagUsage)
	logLevel := flag.String("log-level", "info", cli.LogLevelFlagUsage)
	traceOut := flag.String("trace-out", "", cli.TraceOutFlagUsage)
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	obs.SetProcessName("ksetserved")
	if err := cli.ApplyLogLevelFlag(*logLevel); err != nil {
		return err
	}
	flushTrace := cli.StartTraceOut(*traceOut)
	par.SetParallelism(*parallelism)
	if err := cli.ApplyMemoFlag(*memoFlag); err != nil {
		return err
	}
	if err := cli.ApplySearchFlag(*searchFlag); err != nil {
		return err
	}
	if err := cli.ApplyEngineFlag(*engineFlag); err != nil {
		return err
	}
	if *faults != "" {
		rules, err := faultinject.ParseRules(*faults)
		if err != nil {
			return err
		}
		faultinject.Enable(*faultSeed, rules...)
		defer faultinject.Disable()
	}

	var coord *dist.Coordinator
	if list := cli.SplitWorkers(*workers); len(list) > 0 {
		coord = dist.NewCoordinator(dist.CoordConfig{
			Workers:             list,
			Shards:              *distShards,
			LeaseTTL:            *distLease,
			JournalPath:         *distJournal,
			VerifyFraction:      *verifyFraction,
			QuarantineThreshold: *quarantineThreshold,
		})
		model.SetDistributor(coord)
	}

	s := serve.New(serve.Config{
		MaxConcurrent:   *maxConcurrent,
		DefaultTimeout:  *requestTimeout,
		MaxTimeout:      *maxTimeout,
		MaxSolverBudget: *solverBudget,
		SnapshotPath:    *memoSnapshot,
		CheckpointEvery: *checkpointEvery,
		Coordinator:     coord,
		EnablePprof:     *pprofFlag,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := s.Run(ctx, *addr, *drainGrace)
	if terr := flushTrace(); terr != nil && err == nil {
		err = terr
	}
	return err
}
