package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Disable()
	if err := Hit("any.point"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	data := []byte{1, 2, 3}
	if Corrupt("any.point", data) {
		t.Fatal("disarmed Corrupt reported corruption")
	}
	if d := CompressDeadline("any.point", time.Second); d != time.Second {
		t.Fatalf("disarmed CompressDeadline changed %v", d)
	}
}

func TestErrorAtNthHit(t *testing.T) {
	Enable(1, Rule{Point: "p", Nth: 3, Action: ActionError})
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if i == 3 {
			if err == nil {
				t.Fatalf("hit %d: want error", i)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not match ErrInjected", i, err)
			}
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Nth != 3 || ie.Point != "p" {
				t.Fatalf("hit %d: bad InjectedError %+v", i, ie)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if got := Hits("p"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestEveryRepeats(t *testing.T) {
	Enable(1, Rule{Point: "p", Nth: 2, Every: 3, Action: ActionError})
	defer Disable()
	var fired []int
	for i := 1; i <= 10; i++ {
		if Hit("p") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 5, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestPanicRule(t *testing.T) {
	Enable(1, Rule{Point: "p", Nth: 1, Action: ActionPanic})
	defer Disable()
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
		}
		if ip.Point != "p" || ip.Nth != 1 {
			t.Fatalf("bad InjectedPanic %+v", ip)
		}
	}()
	Hit("p")
	t.Fatal("Hit did not panic")
}

func TestCorruptDeterministic(t *testing.T) {
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}

	run := func(seed uint64) []byte {
		Enable(seed, Rule{Point: "snap", Nth: 1, Action: ActionCorrupt, Flips: 4})
		defer Disable()
		data := append([]byte(nil), orig...)
		if !Corrupt("snap", data) {
			t.Fatal("Corrupt did not fire")
		}
		return data
	}

	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, orig) {
		t.Fatal("corruption changed nothing")
	}
	c := run(8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestCompressDeadline(t *testing.T) {
	Enable(1, Rule{Point: "req", Nth: 2, Action: ActionDeadline, Frac: 0.25})
	defer Disable()
	if d := CompressDeadline("req", time.Second); d != time.Second {
		t.Fatalf("hit 1 compressed to %v", d)
	}
	if d := CompressDeadline("req", time.Second); d != 250*time.Millisecond {
		t.Fatalf("hit 2 compressed to %v, want 250ms", d)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("panic:par.task@3,error:solver.task@5+7,delay:serve.request@1:5ms,corrupt:memo.snapshot:16,deadline:serve.request@2:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(rules))
	}
	want := []Rule{
		{Point: "par.task", Nth: 3, Action: ActionPanic},
		{Point: "solver.task", Nth: 5, Every: 7, Action: ActionError},
		{Point: "serve.request", Nth: 1, Action: ActionDelay, Delay: 5 * time.Millisecond},
		{Point: "memo.snapshot", Action: ActionCorrupt, Flips: 16},
		{Point: "serve.request", Nth: 2, Action: ActionDeadline, Frac: 0.25},
	}
	for i, w := range want {
		if rules[i] != w {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], w)
		}
	}

	for _, bad := range []string{
		"explode:par.task",
		"error:",
		"error:p@x",
		"delay:p@1:notaduration",
		"corrupt:p:-3",
		"deadline:p:1.5",
		"error:p@1:unexpected",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Fatalf("ParseRules(%q) accepted invalid spec", bad)
		}
	}
}
