// Package faultinject is a deterministic, seeded fault-injection registry
// used by the chaos test suite and the -faults flag of cmd/ksetserved.
//
// Injection sites across the codebase call Hit(point) (or Corrupt,
// CompressDeadline) at well-known named points — e.g. "par.task" before a
// work-stealing deque task runs, "memo.snapshot.load" on the snapshot byte
// stream. With no rules armed the hooks are a single atomic load, so the
// hot paths pay nothing in production. Arming rules is test/operator-only:
// Enable installs a rule set plus a seed, and every fault fires at a
// deterministic hit ordinal per point, so a chaos run with a fixed seed and
// parallelism replays the same fault schedule.
//
// The package deliberately has no build tags: the ROADMAP calls for
// production binaries whose failure paths are exercised by the same code
// that ships.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection point names used across the repo. Points are plain strings so
// packages can add sites without touching this list, but the well-known ones
// are collected here for discoverability and for ParseRules validation hints.
const (
	PointParShard     = "par.shard"     // before a pool worker scans a shard
	PointParTask      = "par.task"      // before a deque worker runs a task
	PointSolverTask   = "solver.task"   // before a solver subtree task runs
	PointSnapshotLoad = "memo.snapshot" // snapshot byte stream on load
	PointServeRequest = "serve.request" // before a service request is handled

	// Distributed sweep tier (internal/dist) injection sites. Worker-side
	// rules model crashed, stalled or lying workers; coordinator-side rules
	// model a coordinator killed mid-sweep and a journal rotting on disk.
	PointDistExec      = "dist.exec"      // worker: before a shard executes (error = shard failure, panic = worker crash, delay = straggler)
	PointDistResult    = "dist.result"    // worker: result payload AFTER checksumming (corrupt = transport corruption, caught by CRC)
	PointDistHeartbeat = "dist.heartbeat" // worker: heartbeat handler (error = network partition from the coordinator)
	PointDistCommit    = "dist.commit"    // coordinator: before a shard commit is journaled (error = coordinator killed at that commit point)
	PointDistJournal   = "dist.journal"   // coordinator: journal byte stream on warm-restart load

	// Byzantine lie sites in the worker: each mutates a shard result BEFORE
	// the response checksum is computed, so the wire payload is well-formed
	// and CRC-consistent but WRONG — invisible to the coordinator's
	// corruption check, catchable only by quorum cross-validation. Arm them
	// with error-action rules; the rule firing is the lie trigger (no error
	// ever escapes the worker, it just lies).
	PointDistLieCount  = "dist.lie.count"  // worker: off-by-one count payload
	PointDistLieEnum   = "dist.lie.enum"   // worker: truncated (odd hits) / rotated (even hits) enum payload
	PointDistLieReplay = "dist.lie.replay" // worker: replays its previous (stale) shard result

	// Durable-run checkpoint sites (internal/checkpoint). Write/fsync errors
	// model a full disk or a crash between write and rename; a corrupt rule
	// on the write point models a torn write that the CRCs must catch at the
	// next load; the load point models on-disk rot of an existing checkpoint.
	PointCheckpointWrite = "checkpoint.write" // before the encoded image is written (error = write failure, corrupt = torn write)
	PointCheckpointFsync = "checkpoint.fsync" // before the temp file is fsynced (error = fsync failure)
	PointCheckpointLoad  = "checkpoint.load"  // checkpoint byte stream on resume load (error = unreadable file, corrupt = rot)
)

// Action is what a rule does when it fires.
type Action int

const (
	// ActionError makes Hit return the rule's error.
	ActionError Action = iota
	// ActionPanic makes Hit panic with a descriptive value.
	ActionPanic
	// ActionDelay makes Hit sleep for the rule's Delay before returning nil.
	ActionDelay
	// ActionCorrupt makes Corrupt flip seeded bits in the payload. Hit
	// ignores corrupt rules; only Corrupt consumes them.
	ActionCorrupt
	// ActionDeadline makes CompressDeadline shrink a request deadline.
	ActionDeadline
)

func (a Action) String() string {
	switch a {
	case ActionError:
		return "error"
	case ActionPanic:
		return "panic"
	case ActionDelay:
		return "delay"
	case ActionCorrupt:
		return "corrupt"
	case ActionDeadline:
		return "deadline"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ErrInjected is the base error of every injected failure; injected errors
// match it under errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedError is the concrete error returned by an ActionError rule.
type InjectedError struct {
	Point string // injection point that fired
	Nth   uint64 // hit ordinal (1-based) at which the rule fired
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s (hit %d)", e.Point, e.Nth)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// InjectedPanic is the value an ActionPanic rule panics with.
type InjectedPanic struct {
	Point string
	Nth   uint64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Point, p.Nth)
}

// Rule arms one fault at one injection point.
type Rule struct {
	Point  string        // injection point name
	Nth    uint64        // fire at the Nth hit of the point (1-based; 0 means 1)
	Every  uint64        // if > 0, also fire at Nth+Every, Nth+2·Every, …
	Action Action        // what firing does
	Delay  time.Duration // ActionDelay sleep
	Frac   float64       // ActionDeadline: multiply remaining deadline by Frac (0 < Frac ≤ 1)
	Flips  int           // ActionCorrupt: number of bit flips (0 means 8)
}

// state is the armed configuration; swapped atomically so Hit's fast path is
// one atomic load of `armed`.
type state struct {
	seed  uint64
	rules map[string][]Rule // by point
}

var (
	armed atomic.Bool
	mu    sync.Mutex // guards cur and counters map layout
	cur   atomic.Pointer[state]

	countersMu sync.Mutex
	counters   map[string]*atomic.Uint64
)

// Enable arms the given rules with a deterministic seed, replacing any
// previously armed set and zeroing all hit counters. Enabling with no rules
// is valid (it just counts hits).
func Enable(seed uint64, rules ...Rule) {
	mu.Lock()
	defer mu.Unlock()
	st := &state{seed: seed, rules: make(map[string][]Rule)}
	for _, r := range rules {
		if r.Nth == 0 {
			r.Nth = 1
		}
		st.rules[r.Point] = append(st.rules[r.Point], r)
	}
	countersMu.Lock()
	counters = make(map[string]*atomic.Uint64)
	countersMu.Unlock()
	cur.Store(st)
	armed.Store(true)
}

// Disable disarms all rules. Hit reverts to a single atomic load.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
	cur.Store(nil)
}

// Enabled reports whether any rule set is armed.
func Enabled() bool { return armed.Load() }

// counter returns the hit counter for point, creating it on first use.
func counter(point string) *atomic.Uint64 {
	countersMu.Lock()
	defer countersMu.Unlock()
	if counters == nil {
		counters = make(map[string]*atomic.Uint64)
	}
	c := counters[point]
	if c == nil {
		c = new(atomic.Uint64)
		counters[point] = c
	}
	return c
}

// Hits reports how many times point has been hit since Enable.
func Hits(point string) uint64 {
	if !armed.Load() {
		return 0
	}
	return counter(point).Load()
}

// fires reports whether rule r fires at hit ordinal n.
func (r Rule) fires(n uint64) bool {
	if n == r.Nth {
		return true
	}
	return r.Every > 0 && n > r.Nth && (n-r.Nth)%r.Every == 0
}

// Hit records a hit at point and applies the first armed error/panic/delay
// rule whose ordinal matches. With nothing armed it is a single atomic load.
func Hit(point string) error {
	if !armed.Load() {
		return nil
	}
	st := cur.Load()
	if st == nil {
		return nil
	}
	n := counter(point).Add(1)
	for _, r := range st.rules[point] {
		if !r.fires(n) {
			continue
		}
		switch r.Action {
		case ActionError:
			return &InjectedError{Point: point, Nth: n}
		case ActionPanic:
			panic(InjectedPanic{Point: point, Nth: n})
		case ActionDelay:
			time.Sleep(r.Delay)
			return nil
		}
	}
	return nil
}

// splitmix64 is the deterministic PRNG behind Corrupt: tiny, seedable, and
// identical across runs for the same seed and hit ordinal.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Corrupt applies any armed ActionCorrupt rule at point to data in place,
// flipping Flips seeded bits, and reports whether it corrupted anything.
// With nothing armed (or no matching rule) the payload is untouched.
//
// Corrupt counts hit ordinals in its own namespace, separate from Hit's, so
// a site that calls both (or a point with mixed rules) keeps every rule's
// @NTH predictable: error/panic/delay ordinals count Hit calls, corrupt
// ordinals count Corrupt calls.
func Corrupt(point string, data []byte) bool {
	if !armed.Load() || len(data) == 0 {
		return false
	}
	st := cur.Load()
	if st == nil {
		return false
	}
	n := counter(point + "\x00corrupt").Add(1)
	for _, r := range st.rules[point] {
		if r.Action != ActionCorrupt || !r.fires(n) {
			continue
		}
		flips := r.Flips
		if flips <= 0 {
			flips = 8
		}
		x := st.seed ^ (n * 0x9e3779b97f4a7c15)
		for i := 0; i < flips; i++ {
			x = splitmix64(x)
			pos := x % uint64(len(data)*8)
			data[pos/8] ^= 1 << (pos % 8)
		}
		return true
	}
	return false
}

// CompressDeadline applies any armed ActionDeadline rule at point to a
// request timeout, returning the (possibly shrunk) duration. Deadline
// compression models a client or LB cutting the request budget short.
//
// Like Corrupt, it counts ordinals in its own namespace: a request handler
// that calls Hit and then CompressDeadline at the same point advances each
// rule family by exactly one per request.
func CompressDeadline(point string, d time.Duration) time.Duration {
	if !armed.Load() {
		return d
	}
	st := cur.Load()
	if st == nil {
		return d
	}
	n := counter(point + "\x00deadline").Add(1)
	for _, r := range st.rules[point] {
		if r.Action != ActionDeadline || !r.fires(n) {
			continue
		}
		frac := r.Frac
		if frac <= 0 || frac > 1 {
			frac = 0.1
		}
		return time.Duration(float64(d) * frac)
	}
	return d
}

// ParseRules parses a comma-separated rule spec, e.g.
//
//	panic:par.task@3,error:solver.task@5+7,delay:serve.request@1:5ms,corrupt:memo.snapshot@1:16,deadline:serve.request@2:0.25
//
// Grammar per rule: ACTION:POINT[@NTH[+EVERY]][:ARG] where ARG is a duration
// for delay, a bit-flip count for corrupt, and a fraction for deadline.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("faultinject: rule %q: want ACTION:POINT[@NTH][:ARG]", part)
		}
		var r Rule
		switch fields[0] {
		case "error":
			r.Action = ActionError
		case "panic":
			r.Action = ActionPanic
		case "delay":
			r.Action = ActionDelay
		case "corrupt":
			r.Action = ActionCorrupt
		case "deadline":
			r.Action = ActionDeadline
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown action %q (want error|panic|delay|corrupt|deadline)", part, fields[0])
		}
		point := fields[1]
		if at := strings.IndexByte(point, '@'); at >= 0 {
			ord := point[at+1:]
			point = point[:at]
			if plus := strings.IndexByte(ord, '+'); plus >= 0 {
				every, err := strconv.ParseUint(ord[plus+1:], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad EVERY %q", part, ord[plus+1:])
				}
				r.Every = every
				ord = ord[:plus]
			}
			nth, err := strconv.ParseUint(ord, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: bad NTH %q", part, ord)
			}
			r.Nth = nth
		}
		if point == "" {
			return nil, fmt.Errorf("faultinject: rule %q: empty point", part)
		}
		r.Point = point
		if len(fields) == 3 {
			arg := fields[2]
			switch r.Action {
			case ActionDelay:
				d, err := time.ParseDuration(arg)
				if err != nil {
					return nil, fmt.Errorf("faultinject: rule %q: bad duration %q", part, arg)
				}
				r.Delay = d
			case ActionCorrupt:
				flips, err := strconv.Atoi(arg)
				if err != nil || flips <= 0 {
					return nil, fmt.Errorf("faultinject: rule %q: bad flip count %q", part, arg)
				}
				r.Flips = flips
			case ActionDeadline:
				frac, err := strconv.ParseFloat(arg, 64)
				if err != nil || frac <= 0 || frac > 1 {
					return nil, fmt.Errorf("faultinject: rule %q: bad fraction %q", part, arg)
				}
				r.Frac = frac
			default:
				return nil, fmt.Errorf("faultinject: rule %q: action %s takes no ARG", part, r.Action)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}
