package protocol

import (
	"fmt"

	"ksettop/internal/bits"
)

// MinAlgorithm is the paper's basic upper-bound algorithm (§3, §6.2):
// exchange known values for R rounds, then decide the minimum value heard.
// Self-loops guarantee the view is never empty.
type MinAlgorithm struct {
	R int
}

var _ Algorithm = MinAlgorithm{}

// Name implements Algorithm.
func (a MinAlgorithm) Name() string { return fmt.Sprintf("min/%dr", a.R) }

// Rounds implements Algorithm.
func (a MinAlgorithm) Rounds() int { return a.R }

// Decide implements Algorithm: the minimum known value.
func (a MinAlgorithm) Decide(self int, v View) (Value, error) {
	d, ok := v.Min()
	if !ok {
		return NoValue, fmt.Errorf("empty view (missing self-loop?)")
	}
	return d, nil
}

// DominatingSetMin is the Thm 3.2 algorithm for simple closed-above models:
// a minimum dominating set D of the generator is fixed in advance; after one
// round every process has heard some member of D and decides the minimum
// value received from D.
type DominatingSetMin struct {
	// Dominating is the precomputed dominating set of the generator graph.
	Dominating bits.Set
}

var _ Algorithm = DominatingSetMin{}

// Name implements Algorithm.
func (a DominatingSetMin) Name() string {
	return fmt.Sprintf("domset-min%v", a.Dominating)
}

// Rounds implements Algorithm.
func (DominatingSetMin) Rounds() int { return 1 }

// Decide implements Algorithm: the minimum value received from the
// dominating set. Domination guarantees at least one such value in any graph
// of the model.
func (a DominatingSetMin) Decide(self int, v View) (Value, error) {
	d, ok := v.MinOver(a.Dominating)
	if !ok {
		return NoValue, fmt.Errorf("no value from dominating set %v; graph outside the model", a.Dominating)
	}
	return d, nil
}

// DecisionMap is an explicit oblivious one-round algorithm: a finite map
// from flattened views to decisions. The impossibility solver synthesizes
// or refutes these.
type DecisionMap struct {
	R int
	// Table maps the view key (see ViewKey) to the decision.
	Table map[string]Value
}

var _ Algorithm = DecisionMap{}

// Name implements Algorithm.
func (m DecisionMap) Name() string { return fmt.Sprintf("decision-map/%dr", m.R) }

// Rounds implements Algorithm.
func (m DecisionMap) Rounds() int { return m.R }

// Decide implements Algorithm by table lookup.
func (m DecisionMap) Decide(self int, v View) (Value, error) {
	d, ok := m.Table[ViewKey(v)]
	if !ok {
		return NoValue, fmt.Errorf("view %v not in decision table", v)
	}
	return d, nil
}

// ViewKey canonically encodes a flattened view. Oblivious algorithms decide
// identically on identical key strings — the key deliberately ignores which
// process is deciding.
func ViewKey(v View) string {
	b := make([]byte, 0, len(v)*2)
	for _, val := range v {
		b = append(b, byte(val+1), ';')
	}
	return string(b)
}
