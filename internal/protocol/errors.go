package protocol

import (
	"context"
	"errors"
	"fmt"

	"ksettop/internal/par"
)

// ErrBudgetExceeded is the sentinel every solver budget trip matches under
// errors.Is, so callers can branch on "budget exhausted" without string
// matching. The concrete error is always a *BudgetError carrying the
// deterministic accounting.
var ErrBudgetExceeded = errors.New("protocol: node budget exhausted")

// BudgetError reports a tripped solver node budget. Nodes is the
// deterministic node count charged at the trip — identical at every
// -parallelism setting (see solver_parallel.go's determinism argument), so
// the whole error string is part of the engine's reproducibility contract.
type BudgetError struct {
	Budget int // the configured node budget
	Nodes  int // deterministic nodes charged when the budget tripped
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("protocol: node budget %d exhausted (%d nodes charged)", e.Budget, e.Nodes)
}

// Is matches ErrBudgetExceeded.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

func errBudget(budget, nodes int) error {
	return &BudgetError{Budget: budget, Nodes: nodes}
}

// errSolveCancelled is the internal marker the search layers return when a
// stop hook fires; the entry layer replaces it with the sweep's actual
// cause (context cancellation, injected fault, worker panic).
var errSolveCancelled = errors.New("protocol: solve cancelled")

// cancelCause resolves the user-facing error of a cancelled solve: the
// sweep's recorded cause if any, else the context's, else plain
// cancellation.
func cancelCause(ctl *par.Ctl, ctx context.Context) error {
	var cause error
	if ctl != nil {
		cause = ctl.Cause()
	}
	if cause == nil && ctx != nil {
		cause = context.Cause(ctx)
	}
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("protocol: solve aborted: %w", cause)
}
