package protocol

import (
	"context"
	"fmt"

	"ksettop/internal/graph"
	"ksettop/internal/runctx"
)

// CheckResult summarizes an exhaustive worst-case sweep of an algorithm over
// a model fragment.
type CheckResult struct {
	// WorstDistinct is the maximum number of distinct decided values across
	// all executions; the algorithm solves WorstDistinct-set agreement on
	// the swept space.
	WorstDistinct int
	// Witness is an execution achieving WorstDistinct.
	Witness Execution
	// Executions is the number of runs performed.
	Executions int
}

// WorstCase runs algo on every combination of initial-value assignment
// (numValues^n) and per-round graph choice from roundGraphs
// (len(roundGraphs)^rounds) and reports the worst number of distinct
// decisions. It errors if any execution violates termination (a process
// cannot decide) or validity (a decision that is no process's initial
// value), or if the sweep would exceed limit executions.
//
// Passing the model's generators as roundGraphs checks the worst
// adversary-of-generators; passing the full closure (model.EnumerateGraphs)
// makes the sweep exhaustive over the model.
func WorstCase(roundGraphs []graph.Digraph, numValues, rounds int, algo Algorithm, limit int) (CheckResult, error) {
	if len(roundGraphs) == 0 {
		return CheckResult{}, fmt.Errorf("protocol: no graphs to sweep")
	}
	if numValues < 1 {
		return CheckResult{}, fmt.Errorf("protocol: numValues %d must be ≥ 1", numValues)
	}
	if rounds != algo.Rounds() {
		return CheckResult{}, fmt.Errorf("protocol: algorithm %s runs %d rounds, sweep asked %d",
			algo.Name(), algo.Rounds(), rounds)
	}
	n := roundGraphs[0].N()
	total := 1
	for i := 0; i < n; i++ {
		total *= numValues
		if total > limit {
			return CheckResult{}, fmt.Errorf("protocol: %d^%d assignments exceed limit %d", numValues, n, limit)
		}
	}
	seqs := 1
	for i := 0; i < rounds; i++ {
		seqs *= len(roundGraphs)
		if total*seqs > limit {
			return CheckResult{}, fmt.Errorf("protocol: sweep of %d executions exceeds limit %d", total*seqs, limit)
		}
	}

	res := CheckResult{}
	assignment := make([]Value, n)
	seq := make([]int, rounds)
	graphs := make([]graph.Digraph, rounds)
	for {
		// Sweep all graph sequences for this assignment.
		for i := range seq {
			seq[i] = 0
		}
		for {
			for i, gi := range seq {
				graphs[i] = roundGraphs[gi]
			}
			e := Execution{Graphs: graphs, Initial: assignment}
			r, err := Run(e, algo)
			if err != nil {
				return CheckResult{}, fmt.Errorf("termination/run failure: %w", err)
			}
			if err := checkValidity(assignment, r.Decisions); err != nil {
				return CheckResult{}, err
			}
			res.Executions++
			if res.Executions&0xfff == 0 {
				if ctx := runctx.Base(); ctx.Err() != nil {
					return CheckResult{}, fmt.Errorf("protocol: worst-case sweep aborted: %w", context.Cause(ctx))
				}
			}
			if d := r.DistinctCount(); d > res.WorstDistinct {
				res.WorstDistinct = d
				res.Witness = Execution{
					Graphs:  append([]graph.Digraph(nil), graphs...),
					Initial: append([]Value(nil), assignment...),
				}
			}
			if !incCounter(seq, len(roundGraphs)) {
				break
			}
		}
		if !incCounter(assignment, numValues) {
			break
		}
	}
	return res, nil
}

func checkValidity(initial, decisions []Value) error {
	valid := make(map[Value]bool, len(initial))
	for _, v := range initial {
		valid[v] = true
	}
	for p, d := range decisions {
		if !valid[d] {
			return fmt.Errorf("validity violation: process %d decided %d, not an initial value of %v",
				p, d, initial)
		}
	}
	return nil
}

// incCounter advances a base-`base` counter; it reports false on overflow.
func incCounter(digits []int, base int) bool {
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i]++
		if digits[i] < base {
			return true
		}
		digits[i] = 0
	}
	return false
}
