package protocol

import (
	"strings"
	"testing"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
)

func TestViewOps(t *testing.T) {
	v := NewView(4)
	if _, ok := v.Min(); ok {
		t.Errorf("fresh view should know nothing")
	}
	v[1] = 5
	v[3] = 2
	if v.Known() != bits.New(1, 3) {
		t.Errorf("Known() = %v", v.Known())
	}
	minV, ok := v.Min()
	if !ok || minV != 2 {
		t.Errorf("Min() = %d %v, want 2", minV, ok)
	}
	other := NewView(4)
	other[0] = 7
	other[1] = 9 // should overwrite? Merge takes other's known values
	v.Merge(other)
	if v[0] != 7 {
		t.Errorf("Merge missed value: %v", v)
	}
	mo, ok := v.MinOver(bits.New(0, 3))
	if !ok || mo != 2 {
		t.Errorf("MinOver = %d %v, want 2", mo, ok)
	}
	if _, ok := v.MinOver(bits.New(2)); ok {
		t.Errorf("MinOver unknown proc should be false")
	}
	// v = [7, 9, -1, 2] after merge: three distinct values.
	if dv := v.DistinctValues(); len(dv) != 3 {
		t.Errorf("DistinctValues = %v, want 3 values", dv)
	}
	clone := v.Clone()
	clone[0] = 0
	if v[0] == 0 {
		t.Errorf("Clone must not alias")
	}
}

func TestRunStarOneRound(t *testing.T) {
	star, _ := graph.Star(3, 0)
	e := Execution{Graphs: []graph.Digraph{star}, Initial: []Value{4, 1, 2}}
	res, err := Run(e, MinAlgorithm{R: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// p0 hears only itself; p1 hears {0,1}; p2 hears {0,2}.
	want := []Value{4, 1, 2}
	for p, w := range want {
		if res.Decisions[p] != w {
			t.Errorf("decision[%d] = %d, want %d", p, res.Decisions[p], w)
		}
	}
	if res.DistinctCount() != 3 {
		t.Errorf("distinct = %d, want 3", res.DistinctCount())
	}
}

func TestRunCycleMultipleRounds(t *testing.T) {
	cyc, _ := graph.Cycle(4)
	e := Execution{Graphs: []graph.Digraph{cyc, cyc, cyc}, Initial: []Value{3, 0, 9, 7}}
	res, err := Run(e, MinAlgorithm{R: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// After 3 rounds on the 4-cycle everyone has heard everyone: consensus 0.
	for p, d := range res.Decisions {
		if d != 0 {
			t.Errorf("decision[%d] = %d, want 0", p, d)
		}
	}
	// Views must know all processes.
	for p, v := range res.Views {
		if v.Known() != bits.Full(4) {
			t.Errorf("view[%d] incomplete: %v", p, v)
		}
	}
}

func TestRunErrors(t *testing.T) {
	star, _ := graph.Star(3, 0)
	if _, err := Run(Execution{Graphs: []graph.Digraph{star}, Initial: []Value{1, 2, 3}}, MinAlgorithm{R: 2}); err == nil {
		t.Errorf("round mismatch should fail")
	}
	if _, err := Run(Execution{Graphs: []graph.Digraph{star}, Initial: []Value{1, -2, 3}}, MinAlgorithm{R: 1}); err == nil {
		t.Errorf("negative initial value should fail")
	}
	g4 := graph.MustNew(4)
	if _, err := Run(Execution{Graphs: []graph.Digraph{g4}, Initial: []Value{1, 2, 3}}, MinAlgorithm{R: 1}); err == nil {
		t.Errorf("graph size mismatch should fail")
	}
	if _, err := Run(Execution{Initial: []Value{1}}, MinAlgorithm{R: 0}); err == nil {
		t.Errorf("zero rounds should fail")
	}
}

func TestDominatingSetMinSolvesGammaSet(t *testing.T) {
	// Thm 3.2 on ↑star: γ(star) = 1, dominating set {center}. Everyone
	// receives the center's value in any supergraph: consensus.
	star, _ := graph.Star(4, 1)
	algo := DominatingSetMin{Dominating: bits.New(1)}
	super := star.Clone()
	super.AddEdge(2, 3)
	for _, g := range []graph.Digraph{star, super} {
		res, err := Run(Execution{Graphs: []graph.Digraph{g}, Initial: []Value{4, 9, 2, 0}}, algo)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for p, d := range res.Decisions {
			if d != 9 {
				t.Errorf("decision[%d] = %d, want center value 9", p, d)
			}
		}
	}
	// Outside the model (no star contained) the algorithm may fail: that is
	// a run error, not a silent wrong decision.
	loops := graph.MustNew(4)
	if _, err := Run(Execution{Graphs: []graph.Digraph{loops}, Initial: []Value{4, 9, 2, 0}}, algo); err == nil {
		t.Errorf("graph outside model should surface as error")
	}
}

func TestDecisionMapLookup(t *testing.T) {
	v := NewView(2)
	v[0] = 1
	dm := DecisionMap{R: 1, Table: map[string]Value{ViewKey(v): 1}}
	d, err := dm.Decide(0, v)
	if err != nil || d != 1 {
		t.Errorf("Decide = %d %v", d, err)
	}
	missing := NewView(2)
	if _, err := dm.Decide(0, missing); err == nil {
		t.Errorf("missing view should fail")
	}
}

func TestViewKeyIgnoresDecider(t *testing.T) {
	a := NewView(3)
	a[0], a[2] = 4, 1
	b := a.Clone()
	if ViewKey(a) != ViewKey(b) {
		t.Errorf("equal views must share keys")
	}
	b[1] = 0
	if ViewKey(a) == ViewKey(b) {
		t.Errorf("different views must differ")
	}
}

func TestFullViewFlatten(t *testing.T) {
	// p0 hears p0 and p1 in round 1; p1 heard p1,p2 in... build manually:
	// round-0 views:
	v0 := InitialFullView(0, 7)
	v1 := InitialFullView(1, 3)
	v2 := InitialFullView(2, 5)
	// round 1: p0 hears {0,1}, p1 hears {1,2}.
	r1p0 := RoundFullView(0, []*FullView{v1, v0})
	r1p1 := RoundFullView(1, []*FullView{v1, v2})
	// round 2: p0 hears p0 and p1.
	r2p0 := RoundFullView(0, []*FullView{r1p0, r1p1})

	flat := r2p0.Flatten(3)
	want := View{7, 3, 5}
	for p := range want {
		if flat[p] != want[p] {
			t.Errorf("flatten[%d] = %d, want %d", p, flat[p], want[p])
		}
	}
	if r2p0.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", r2p0.Depth())
	}
	s := r2p0.String()
	if !strings.Contains(s, "p0⟨") || !strings.Contains(s, "p1:3") {
		t.Errorf("String() = %q", s)
	}
	// Heard lists are sorted by process.
	if r1p0.Heard[0].Proc != 0 || r1p0.Heard[1].Proc != 1 {
		t.Errorf("heard views not sorted: %v", r1p0)
	}
}

func TestAdversaries(t *testing.T) {
	s0, _ := graph.Star(3, 0)
	s1, _ := graph.Star(3, 1)

	fixed := FixedAdversary{Graphs: []graph.Digraph{s0, s1}}
	if !fixed.Pick(1).Equal(s0) || !fixed.Pick(2).Equal(s1) || !fixed.Pick(3).Equal(s0) {
		t.Errorf("fixed adversary cycles through its sequence")
	}
	cyc := CyclingAdversary{Gens: []graph.Digraph{s0, s1}}
	if !cyc.Pick(2).Equal(s1) {
		t.Errorf("cycling adversary wrong")
	}

	e, err := BuildExecution(cyc, 3, []Value{1, 2, 3})
	if err != nil {
		t.Fatalf("BuildExecution: %v", err)
	}
	if len(e.Graphs) != 3 {
		t.Errorf("rounds = %d, want 3", len(e.Graphs))
	}
	if _, err := BuildExecution(cyc, 0, []Value{1}); err == nil {
		t.Errorf("zero rounds should fail")
	}
}
