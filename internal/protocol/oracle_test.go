package protocol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ksettop/internal/graph"
)

// TestQuickExecutorMatchesProductOracle cross-validates the executor against
// an independent characterization: after rounds G_1 … G_r, the flattened
// view of process p is exactly {(q, v_q) | q ∈ In_{G_1⊗…⊗G_r}(p)} — the
// in-neighborhood of the graph path product (Def 6.1). The executor never
// computes products; agreement ties the two §6 formalisms together.
func TestQuickExecutorMatchesProductOracle(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(606))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(3)      // 3..5 processes
		rounds := 1 + r.Intn(3) // 1..3 rounds

		graphs := make([]graph.Digraph, rounds)
		for i := range graphs {
			g, err := graph.Random(n, r.Float64(), r)
			if err != nil {
				return false
			}
			graphs[i] = g
		}
		initial := make([]Value, n)
		for p := range initial {
			initial[p] = r.Intn(4)
		}

		res, err := Run(Execution{Graphs: graphs, Initial: initial}, MinAlgorithm{R: rounds})
		if err != nil {
			return false
		}

		product := graphs[0]
		for _, g := range graphs[1:] {
			product, err = graph.Product(product, g)
			if err != nil {
				return false
			}
		}
		for p := 0; p < n; p++ {
			want := product.In(p)
			if res.Views[p].Known() != want {
				t.Logf("seed %d: view[%d] knows %v, product In = %v", seed, p, res.Views[p].Known(), want)
				return false
			}
			want.ForEach(func(q int) {
				if res.Views[p][q] != initial[q] {
					t.Logf("seed %d: view[%d][%d] = %d, want %d", seed, p, q, res.Views[p][q], initial[q])
				}
			})
			// The min decision must equal the min over the product
			// in-neighborhood.
			min := initial[p]
			want.ForEach(func(q int) {
				if initial[q] < min {
					min = initial[q]
				}
			})
			if res.Decisions[p] != min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("executor/product oracle mismatch: %v", err)
	}
}

// TestQuickValidityAndTermination: on random closed-above executions the min
// algorithm always terminates with a decision that is some process's input.
func TestQuickValidityAndTermination(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(607))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		star, err := graph.Star(n, r.Intn(n))
		if err != nil {
			return false
		}
		rounds := 1 + r.Intn(3)
		adv := &RandomAdversary{Gens: []graph.Digraph{star}, ExtraProb: r.Float64(), Rng: r}
		initial := make([]Value, n)
		for p := range initial {
			initial[p] = r.Intn(3)
		}
		e, err := BuildExecution(adv, rounds, initial)
		if err != nil {
			return false
		}
		res, err := Run(e, MinAlgorithm{R: rounds})
		if err != nil {
			return false
		}
		valid := make(map[Value]bool, n)
		for _, v := range initial {
			valid[v] = true
		}
		for _, d := range res.Decisions {
			if !valid[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("validity/termination failed: %v", err)
	}
}
