package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"ksettop/internal/memo"
)

// This file is the durability layer of the parallel engine: it serializes
// the sweep's schedule-free progress — probe/decomposition node counters,
// the frozen shared clause store, the completed task records and the open
// frontier of value-branch prefixes — into a checkpoint section, and
// restores a later run from it.
//
// Why this is sufficient for byte-identical resume: every task's outcome is
// a pure function of the frozen store and its decision prefix (determinism
// point 3 in solver_parallel.go), so re-running the saved frontier against
// the restored store reproduces exactly the records the interrupted run
// would have produced, and the rank-ordered reduction then consumes an
// identical record sequence. Cancelled records are deliberately NOT saved —
// cancellation timing is schedule-dependent — their tasks stay on the
// frontier and re-run to their deterministic conclusion instead.

// kindSolverFrontier is the checkpoint section kind of the solver sweep.
const kindSolverFrontier = "solver.frontier"

const solverCkptVersion = 1

// solverFingerprint identifies the exact search workload: the flat tables'
// content plus every knob that participates in the deterministic node
// accounting. A checkpoint section only resumes into a run with an equal
// fingerprint; anything else recomputes cold.
func solverFingerprint(t *solveTables, budget int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "solver.frontier.v1")
	var b [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wu(uint64(t.k))
	wu(uint64(t.numValues))
	wu(uint64(len(t.views)))
	wu(uint64(len(t.execViews)))
	wu(uint64(budget))
	wu(uint64(probeLimit()))
	wu(uint64(CurrentClauseStoreBudget()))
	for _, d := range t.initDomains {
		binary.LittleEndian.PutUint16(b[:2], d)
		h.Write(b[:2])
	}
	for _, v := range t.valueOrder {
		wu(uint64(v))
	}
	hashInt32s(h, t.veStarts)
	hashInt32s(h, t.veData)
	return h.Sum64()
}

// hashInt32s streams an int32 slice into h in 1k-element chunks (the
// constraint transpose can run to millions of entries; per-element Write
// calls would dominate the fingerprint cost).
func hashInt32s(h io.Writer, xs []int32) {
	var buf [4096]byte
	for len(xs) > 0 {
		n := len(xs)
		if n > len(buf)/4 {
			n = len(buf) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(xs[i]))
		}
		h.Write(buf[:n*4])
		xs = xs[n:]
	}
}

// solverCkptState is a decoded solver checkpoint, ready to seed a sweep.
type solverCkptState struct {
	probeNodes  int
	prefixNodes int
	shared      *nogoodStore
	records     []taskRecord
	frontier    []searchTask
}

// encodeSharedStore serializes the frozen shared clause store as a flat
// clause list. The store's occurrence index and hasAny filter are derived
// structures, rebuilt clause-by-clause on restore.
func encodeSharedStore(ng *nogoodStore) []byte {
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, uint64(ng.count()))
	for c := int32(0); c < int32(ng.count()); c++ {
		keys := ng.clause(c)
		memo.WriteUvarint(&buf, uint64(len(keys)))
		for _, key := range keys {
			memo.WriteUvarint(&buf, uint64(key))
		}
	}
	return buf.Bytes()
}

// decodeSharedStore rebuilds the frozen store by replaying the clause list
// through add() against the active bounding policy; a clause the policy
// rejects means the checkpoint was written under different knobs than the
// fingerprint admitted — corrupt by construction.
func decodeSharedStore(r *bytes.Reader, numViews, numValues int) (*nogoodStore, error) {
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("clause count: %w", err)
	}
	ng := newSharedNogoodStore(numViews, numValues)
	maxKey := uint64(numViews) * uint64(numValues)
	keys := make([]int32, 0, maxNogoodLen)
	for c := uint64(0); c < count; c++ {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("clause %d length: %w", c, err)
		}
		if n == 0 || n > uint64(ng.maxLen) {
			return nil, fmt.Errorf("clause %d length %d out of range", c, n)
		}
		keys = keys[:0]
		for i := uint64(0); i < n; i++ {
			key, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("clause %d literal %d: %w", c, i, err)
			}
			if key >= maxKey {
				return nil, fmt.Errorf("clause %d literal %d out of range", c, key)
			}
			keys = append(keys, int32(key))
		}
		if !ng.add(keys) {
			return nil, fmt.Errorf("clause %d rejected by store policy", c)
		}
	}
	return ng, nil
}

// encodeCheckpoint captures the sweep's current durable state under pr.mu.
// sharedBytes is the (immutable, frozen) store serialized once up front so
// periodic captures don't re-encode it.
func (pr *parallelRun) encodeCheckpoint(probeNodes, prefixNodes int, sharedBytes []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(solverCkptVersion)
	memo.WriteUvarint(&buf, uint64(probeNodes))
	memo.WriteUvarint(&buf, uint64(prefixNodes))
	buf.Write(sharedBytes)

	pr.mu.Lock()
	defer pr.mu.Unlock()
	durable := 0
	for _, r := range pr.records {
		if r.status != taskCancelled {
			durable++
		}
	}
	memo.WriteUvarint(&buf, uint64(durable))
	for _, r := range pr.records {
		if r.status == taskCancelled {
			continue
		}
		memo.WriteUvarint(&buf, uint64(len(r.path)))
		buf.Write(r.path)
		buf.WriteByte(byte(r.status))
		memo.WriteUvarint(&buf, uint64(r.nodes))
		memo.WriteUvarint(&buf, uint64(r.learned))
		memo.WriteUvarint(&buf, uint64(len(r.decided)))
		for _, v := range r.decided {
			memo.WriteUvarint(&buf, uint64(v+1)) // NoValue (-1) -> 0
		}
	}
	memo.WriteUvarint(&buf, uint64(len(pr.frontier)))
	for _, task := range pr.frontierSorted() {
		memo.WriteUvarint(&buf, uint64(len(task.path)))
		buf.Write(task.path)
		memo.WriteUvarint(&buf, uint64(len(task.decisions)))
		for _, d := range task.decisions {
			memo.WriteUvarint(&buf, uint64(d))
		}
	}
	return buf.Bytes()
}

// decodeSolverCheckpoint parses a checkpoint section against the live
// tables, validating every index range so even a fingerprint-colliding
// foreign payload fails cleanly into a cold start.
func decodeSolverCheckpoint(payload []byte, t *solveTables) (*solverCkptState, error) {
	r := bytes.NewReader(payload)
	ver, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("version: %w", err)
	}
	if ver != solverCkptVersion {
		return nil, fmt.Errorf("version %d, want %d", ver, solverCkptVersion)
	}
	st := &solverCkptState{}
	probeNodes, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("probe nodes: %w", err)
	}
	prefixNodes, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("prefix nodes: %w", err)
	}
	st.probeNodes, st.prefixNodes = int(probeNodes), int(prefixNodes)
	st.shared, err = decodeSharedStore(r, len(t.views), t.numValues)
	if err != nil {
		return nil, err
	}
	readPath := func(label string, i uint64) ([]uint8, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("%s %d path length: %w", label, i, err)
		}
		if n > 4096 {
			return nil, fmt.Errorf("%s %d path length %d out of range", label, i, n)
		}
		path := make([]uint8, n)
		if _, err := io.ReadFull(r, path); err != nil {
			return nil, fmt.Errorf("%s %d path: %w", label, i, err)
		}
		for _, p := range path {
			if int(p) >= t.numValues {
				return nil, fmt.Errorf("%s %d path element %d out of range", label, i, p)
			}
		}
		return path, nil
	}
	recCount, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("record count: %w", err)
	}
	st.records = make([]taskRecord, 0, recCount)
	for i := uint64(0); i < recCount; i++ {
		var rec taskRecord
		if rec.path, err = readPath("record", i); err != nil {
			return nil, err
		}
		status, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("record %d status: %w", i, err)
		}
		rec.status = taskStatus(status)
		if rec.status != taskCompleted && rec.status != taskWitness && rec.status != taskBudget {
			return nil, fmt.Errorf("record %d status %d not durable", i, status)
		}
		nodes, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("record %d nodes: %w", i, err)
		}
		learned, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("record %d learned: %w", i, err)
		}
		rec.nodes, rec.learned = int(nodes), int(learned)
		decCount, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("record %d decided count: %w", i, err)
		}
		if decCount > 0 {
			if decCount != uint64(len(t.views)) {
				return nil, fmt.Errorf("record %d decided count %d, want %d", i, decCount, len(t.views))
			}
			rec.decided = make([]Value, decCount)
			for j := uint64(0); j < decCount; j++ {
				v, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, fmt.Errorf("record %d decided %d: %w", i, j, err)
				}
				if v > uint64(t.numValues) {
					return nil, fmt.Errorf("record %d decided value %d out of range", i, v)
				}
				rec.decided[j] = Value(v) - 1
			}
		}
		st.records = append(st.records, rec)
	}
	taskCount, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("frontier count: %w", err)
	}
	maxKey := uint64(len(t.views)) * uint64(t.numValues)
	st.frontier = make([]searchTask, 0, taskCount)
	for i := uint64(0); i < taskCount; i++ {
		var task searchTask
		if task.path, err = readPath("frontier task", i); err != nil {
			return nil, err
		}
		decCount, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("frontier task %d decision count: %w", i, err)
		}
		if decCount > 4096 {
			return nil, fmt.Errorf("frontier task %d decision count %d out of range", i, decCount)
		}
		task.decisions = make([]int32, decCount)
		for j := uint64(0); j < decCount; j++ {
			key, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, fmt.Errorf("frontier task %d decision %d: %w", i, j, err)
			}
			if key >= maxKey {
				return nil, fmt.Errorf("frontier task %d decision %d out of range", i, key)
			}
			task.decisions[j] = int32(key)
		}
		st.frontier = append(st.frontier, task)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", r.Len())
	}
	return st, nil
}
