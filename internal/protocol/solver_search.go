package protocol

// This file is the search layer of the decision-map solver: the seed-style
// sequential backtracking oracle (SearchSeq) and the conflict-driven
// backjumping (CBJ) search with nogood learning that the parallel engine's
// probe phase and subtree tasks run.
//
// Both searches branch identically — fail-first view selection
// (cspState.selectView) and the tables' static value order — so the first
// solution either one reaches is the same lexicographically-first witness.
// The CBJ search additionally resolves every dead end to the set of
// decision literals that caused it (conflict analysis over the
// firstSetter/removedBy reason chains), learns that set as a nogood, and
// jumps straight back to the deepest contributing decision. Skipped
// subtrees are covered by an implied clause, so they are solution-free:
// pruning can never change which witness is found first, only how many
// nodes the refutation costs.

// searchSeq is the sequential oracle: plain forward-checking backtracking,
// counting one node per branch point, with no learning, no backjumping and
// no fact pre-propagation. Kept as the -search=seq cross-check for the
// parallel engine. stop, when non-nil, is polled about every 128 nodes;
// returning true aborts with errSolveCancelled (the entry layer swaps in
// the actual cause).
func (s *cspState) searchSeq(nodes *int, budget int, stop func() bool) (bool, error) {
	best := s.selectView()
	if best == -1 {
		return true, nil // all views assigned
	}
	if *nodes >= budget {
		return false, errBudget(budget, *nodes)
	}
	if stop != nil && *nodes&127 == 0 && stop() {
		return false, errSolveCancelled
	}
	*nodes++
	dom := s.domains[best]
	for _, val := range s.t.valueOrder {
		if dom&(1<<uint(val)) == 0 {
			continue
		}
		mark := len(s.trail)
		if s.assign(best, val, true) {
			ok, err := s.searchSeq(nodes, budget, stop)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		s.unwind(mark)
	}
	return false, nil
}

// searchStatus is the outcome of one CBJ search (or subtree thereof).
type searchStatus int8

const (
	// statusRefuted: the subtree holds no solution (exhaustively shown,
	// modulo learned clauses, which are implied).
	statusRefuted searchStatus = iota
	// statusSolved: a full consistent assignment was reached; the state is
	// left ASSIGNED so the caller can read the witness.
	statusSolved
	// statusCapped: the node cap was hit; the frames are unwound.
	statusCapped
	// statusCancelled: the stop callback fired; the frames are unwound.
	statusCancelled
	// statusSplit: the root frame handed its untried values to the spawn
	// hook; the explored part is refuted and the frames are unwound.
	statusSplit
)

// cbjFrame is one open decision level of the CBJ search.
type cbjFrame struct {
	view    int
	dom     uint16 // domain snapshot at frame creation
	nextIdx int    // next valueOrder position to try
	mark    int    // trail length at frame creation
	curIdx  int    // valueOrder position currently decided at this level
	curKey  int32  // literal currently decided at this level
	// conf accumulates the conflict literals of every refuted child,
	// excluding this level's own literal, plus the reasons any value was
	// already missing from dom at creation. When the level exhausts, conf
	// IS the conflict set of the whole subtree.
	conf []int32
}

// cbjCtx carries the mutable context of one CBJ search.
type cbjCtx struct {
	s *cspState
	// nodes counts branch points (frames created) by THIS context —
	// deterministic given the state's frozen store and prefix.
	nodes int
	// cap aborts the search with statusCapped once nodes reaches it.
	cap int
	// stop, when non-nil, is polled about every 128 nodes with the current
	// node count; returning true aborts with statusCancelled. The count lets
	// the parallel engine's budget accounting watch a running task's
	// progress without touching the search state.
	stop func(nodes int) bool
	// spawn, when non-nil, enables work splitting: once nodes exceeds
	// splitThreshold and ≥2 value branches are still untried across the
	// open frames, the ENTIRE remaining frontier — every untried value of
	// every open frame, i.e. the spine of the depth-first search — is
	// handed out as value-branch prefix tasks (branch-index suffix plus
	// decision-literal keys, both relative to this search's own prefix)
	// and the search retires with statusSplit. Everything already explored
	// was exhaustively refuted, so the spawned prefixes partition exactly
	// the unexplored remainder.
	spawn          func(pathSuffix []uint8, decisions []int32)
	splitThreshold int
	frames         []cbjFrame
}

// splitSpine spawns every untried value branch of every open frame as a
// prefix task, reporting whether anything was actually handed out (it
// declines when fewer than two branches remain — not worth a split).
func (c *cbjCtx) splitSpine() bool {
	s := c.s
	total := 0
	for i := range c.frames {
		f := &c.frames[i]
		for idx := f.nextIdx; idx < s.numValues; idx++ {
			if f.dom&(1<<uint(s.t.valueOrder[idx])) != 0 {
				total++
			}
		}
	}
	if total < 2 {
		return false
	}
	var chainIdx []uint8
	var chainKey []int32
	for i := range c.frames {
		f := &c.frames[i]
		for idx := f.nextIdx; idx < s.numValues; idx++ {
			val := s.t.valueOrder[idx]
			if f.dom&(1<<uint(val)) == 0 {
				continue
			}
			suffix := append(append([]uint8(nil), chainIdx...), uint8(idx))
			keys := append(append([]int32(nil), chainKey...), litKey(f.view, val, s.numValues))
			c.spawn(suffix, keys)
		}
		chainIdx = append(chainIdx, uint8(f.curIdx))
		chainKey = append(chainKey, f.curKey)
	}
	return true
}

// popFrames unwinds every open frame (task prefix assumptions and
// pre-propagated facts below frame 0 stay assigned).
func (c *cbjCtx) popFrames() {
	if len(c.frames) == 0 {
		return
	}
	for i := range c.frames {
		c.s.frameOf[c.frames[i].view] = -1
	}
	c.s.unwind(c.frames[0].mark)
	c.frames = c.frames[:0]
}

// closeLevel retires the top frame, whose subtree is refuted with conflict
// set confSet (which does not involve the frame's own literal, or the frame
// exhausted all values). It learns the clause and backjumps to the deepest
// frame contributing to confSet; ok=false means no open frame contributes —
// the whole search (below the assumptions) is refuted.
func (c *cbjCtx) closeLevel(confSet []int32) bool {
	s := c.s
	s.learnNogood(confSet)
	top := len(c.frames) - 1
	s.frameOf[c.frames[top].view] = -1
	c.frames = c.frames[:top]
	target := -1
	for _, key := range confSet {
		if fo := s.frameOf[key/int32(s.numValues)]; int(fo) > target {
			target = int(fo)
		}
	}
	if target == -1 {
		c.popFrames()
		return false
	}
	for i := len(c.frames) - 1; i > target; i-- {
		s.frameOf[c.frames[i].view] = -1
	}
	c.frames = c.frames[:target+1]
	tf := &c.frames[target]
	s.unwind(tf.mark)
	mergeConf(&tf.conf, confSet, tf.curKey)
	return true
}

// run explores the state's remaining search space exhaustively. On
// statusSolved the state keeps the witness assignment; every other status
// leaves the state unwound to the pre-search trail (facts and assumptions
// intact).
func (c *cbjCtx) run() searchStatus {
	s := c.s
	for {
		// Descend: open a frame on the fail-first view.
		best := s.selectView()
		if best == -1 {
			return statusSolved
		}
		if c.nodes >= c.cap {
			c.popFrames()
			return statusCapped
		}
		if c.stop != nil && c.nodes&127 == 0 && c.stop(c.nodes) {
			c.popFrames()
			return statusCancelled
		}
		c.nodes++
		f := cbjFrame{view: best, dom: s.domains[best], mark: len(s.trail)}
		if s.t.initDomains[best] != f.dom {
			// Values already pruned from this view are refuted by their
			// removal reasons; fold those into the level's base conflict
			// set so exhaustion stays sound under backjumping.
			s.conflict, s.conflictID = conflictView, int32(best)
			f.conf = s.analyzeConflict()
			s.conflict = conflictNone
		}
		s.frameOf[best] = int32(len(c.frames))
		c.frames = append(c.frames, f)

	advance:
		for {
			fi := len(c.frames) - 1
			fr := &c.frames[fi]
			if c.spawn != nil && c.nodes > c.splitThreshold {
				if c.splitSpine() {
					c.popFrames()
					return statusSplit
				}
				// Too little left to split; back off deterministically.
				c.splitThreshold = c.nodes + 1024
			}
			vi := -1
			for idx := fr.nextIdx; idx < s.numValues; idx++ {
				if fr.dom&(1<<uint(s.t.valueOrder[idx])) != 0 {
					vi = idx
					break
				}
			}
			if vi == -1 {
				// Level exhausted: its accumulated conflict set refutes
				// the whole subtree.
				if !c.closeLevel(fr.conf) {
					return statusRefuted
				}
				continue advance
			}
			fr.nextIdx = vi + 1
			val := s.t.valueOrder[vi]
			fr.curIdx = vi
			fr.curKey = litKey(fr.view, val, s.numValues)
			if s.assign(fr.view, val, true) {
				break // descend deeper
			}
			confSet := s.analyzeConflict()
			if containsKey(confSet, fr.curKey) {
				// Learn BEFORE unwinding the failed assignment: the clause's
				// matched counter starts fully saturated, which is only true
				// while every conflict literal — including this level's own —
				// is still on the trail. (Learning after the unwind left the
				// counter permanently one high, so the clause fired with one
				// literal unassigned: unsound pruning.)
				s.learnNogood(confSet)
				s.unwind(fr.mark)
				mergeConf(&fr.conf, confSet, fr.curKey)
				continue advance
			}
			s.unwind(fr.mark)
			// The conflict does not involve this level's value at all:
			// every sibling value dies the same way, so close the level
			// with the child's conflict set directly.
			if !c.closeLevel(confSet) {
				return statusRefuted
			}
		}
	}
}

// containsKey reports whether sorted keys contains key.
func containsKey(keys []int32, key int32) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
		if k > key {
			return false
		}
	}
	return false
}

// mergeConf merges sorted src (minus exclude) into the sorted set *dst.
func mergeConf(dst *[]int32, src []int32, exclude int32) {
	a := *dst
	merged := make([]int32, 0, len(a)+len(src))
	i, j := 0, 0
	for i < len(a) || j < len(src) {
		var k int32
		switch {
		case j >= len(src) || (i < len(a) && a[i] <= src[j]):
			k = a[i]
			i++
		default:
			k = src[j]
			j++
		}
		if k == exclude {
			continue
		}
		if n := len(merged); n > 0 && merged[n-1] == k {
			continue
		}
		merged = append(merged, k)
	}
	*dst = merged
}
