package protocol

import (
	mathbits "math/bits"
	"slices"
	"sort"

	"ksettop/internal/bits"
)

// This file is the table-build layer of the decision-map solver: it turns
// the assignments × in-set-list rank space into the flat, read-only search
// tables (interned views, deduplicated execution constraints, CSR
// adjacency, initial domains, static value order) that both search engines
// consume. Everything here is deterministic in rank order, so the tables —
// and therefore the search — are identical for every parallelism setting.

// solveTables is the immutable context of one solve: shared read-only by
// the sequential oracle, the probe phase and every parallel subtree task.
type solveTables struct {
	k         int
	numValues int
	// views are the interned flattened views, in first-encounter rank order.
	views []View
	// execViews lists, per execution constraint, the distinct view ids it
	// touches (sorted ascending).
	execViews [][]int32
	// veStarts/veData is the transpose in CSR form: view v touches
	// constraints veData[veStarts[v]:veStarts[v+1]], ascending.
	veStarts []int32
	veData   []int32
	// initDomains holds, per view, the bitmask of values present in it —
	// the WLOG candidate decisions.
	initDomains []uint16
	// valueOrder is the static branch order of values: descending number of
	// supporting views, ties broken by ascending value. Both engines branch
	// in this order, which is what makes the "lexicographically-first
	// witness" well-defined and engine-independent.
	valueOrder []Value
}

// assembleTables builds the flat search tables from the interned views and
// constraints.
func assembleTables(k, numValues int, views *viewIntern, constraints *constraintIntern) *solveTables {
	numCons := constraints.count()
	execViews := make([][]int32, numCons)
	for c := range execViews {
		execViews[c] = constraints.get(int32(c))
	}
	veStarts := make([]int32, len(views.views)+1)
	for _, ids := range execViews {
		for _, id := range ids {
			veStarts[id+1]++
		}
	}
	for i := 1; i < len(veStarts); i++ {
		veStarts[i] += veStarts[i-1]
	}
	veData := make([]int32, veStarts[len(veStarts)-1])
	fill := make([]int32, len(views.views))
	for c, ids := range execViews {
		for _, id := range ids {
			veData[veStarts[id]+fill[id]] = int32(c)
			fill[id]++
		}
	}

	initDomains := make([]uint16, len(views.views))
	support := make([]int, numValues)
	for i, v := range views.views {
		var dom uint16
		for _, val := range v {
			if val != NoValue {
				dom |= 1 << uint(val)
			}
		}
		initDomains[i] = dom
		for t := dom; t != 0; t &= t - 1 {
			support[mathbits.TrailingZeros16(t)]++
		}
	}
	valueOrder := make([]Value, numValues)
	for i := range valueOrder {
		valueOrder[i] = i
	}
	sort.SliceStable(valueOrder, func(a, b int) bool {
		return support[valueOrder[a]] > support[valueOrder[b]]
	})

	return &solveTables{
		k:           k,
		numValues:   numValues,
		views:       views.views,
		execViews:   execViews,
		veStarts:    veStarts,
		veData:      veData,
		initDomains: initDomains,
		valueOrder:  valueOrder,
	}
}

// decisionMap materializes the solver's witness: the interned views mapped
// to their decided values.
func (t *solveTables) decisionMap(decided []Value) *DecisionMap {
	table := make(map[string]Value, len(t.views))
	for id, v := range t.views {
		table[ViewKey(v)] = decided[id]
	}
	return &DecisionMap{R: 1, Table: table}
}

// litKey packs the decision literal "view decides val" into one int32; the
// same key indexes the nogood occurrence lists.
func litKey(view int, val Value, numValues int) int32 {
	return int32(view*numValues + int(val))
}

// solveInput is the read-only context of one table-building sweep.
type solveInput struct {
	n         int
	numValues int
	inSets    []bits.Set
	execLists [][]int32
}

// buildSolveTables interns the views and execution constraints of the ranks
// in [from, to), where rank r denotes assignment r/len(execLists) applied to
// list r%len(execLists), scanning in ascending rank order. Each worker shard
// gets its own intern tables; mergeSolveTables stitches them together.
func buildSolveTables(in solveInput, from, to int64) (*viewIntern, *constraintIntern) {
	views := newViewIntern(in.n)
	constraints := newConstraintIntern()
	if from >= to {
		return views, constraints
	}
	L := int64(len(in.execLists))
	assignment := make([]Value, in.n)
	assignmentFromRank(from/L, in.numValues, assignment)
	viewOfInSet := make([]int32, len(in.inSets))
	refresh := func() {
		for s, inSet := range in.inSets {
			viewOfInSet[s] = views.intern(inSet, assignment)
		}
	}
	refresh()
	scratch := make([]int32, 0, in.n)
	li := from % L
	for r := from; r < to; r++ {
		ids := scratch[:0]
		for _, s := range in.execLists[li] {
			ids = append(ids, viewOfInSet[s])
		}
		constraints.insert(sortDedupInt32(ids))
		li++
		if li == L {
			li = 0
			if r+1 < to {
				incCounter(assignment, in.numValues)
				refresh()
			}
		}
	}
	return views, constraints
}

// assignmentFromRank writes the rank-th assignment in incCounter order
// (last index least significant) into assignment.
func assignmentFromRank(rank int64, numValues int, assignment []Value) {
	for i := len(assignment) - 1; i >= 0; i-- {
		assignment[i] = Value(rank % int64(numValues))
		rank /= int64(numValues)
	}
}

// mergeSolveTables folds the per-shard intern tables into one global pair,
// in shard order. Shards cover contiguous ascending rank ranges, so
// first-encounter order across the merged shards equals the first-encounter
// order of a sequential sweep — view ids, constraint ids, and therefore the
// whole search are byte-identical to the single-shard path.
func mergeSolveTables(n int, localViews []*viewIntern, localCons []*constraintIntern) (*viewIntern, *constraintIntern) {
	views := newViewIntern(n)
	constraints := newConstraintIntern()
	scratch := make([]int32, 0, n)
	for s := range localViews {
		lv, lc := localViews[s], localCons[s]
		remap := make([]int32, len(lv.views))
		for id, v := range lv.views {
			remap[id] = views.internView(v, lv.hashes[id])
		}
		for c := 0; c < lc.count(); c++ {
			ids := lc.get(int32(c))
			mapped := scratch[:0]
			for _, id := range ids {
				mapped = append(mapped, remap[id])
			}
			// Remapping is injective, so only the order needs restoring.
			constraints.insert(sortDedupInt32(mapped))
		}
	}
	return views, constraints
}

// viewIntern deduplicates flattened views through an open-addressed hash
// table. Probing compares full view contents, so hash collisions are
// harmless; a View is allocated only for each DISTINCT view.
type viewIntern struct {
	n       int
	mask    uint64  // table length − 1 (power of two)
	slots   []int32 // view id + 1, 0 = empty
	views   []View
	hashes  []uint64
	scratch View
}

func newViewIntern(n int) *viewIntern {
	const initial = 256
	return &viewIntern{
		n:       n,
		mask:    initial - 1,
		slots:   make([]int32, initial),
		scratch: make(View, n),
	}
}

// intern flattens (in, assignment) into the scratch view and returns the id
// of the equal interned view, inserting it first if new.
func (vi *viewIntern) intern(in bits.Set, assignment []Value) int32 {
	v := vi.scratch
	for i := range v {
		v[i] = NoValue
	}
	for t := uint64(in); t != 0; t &= t - 1 {
		q := mathbits.TrailingZeros64(t)
		v[q] = assignment[q]
	}
	h := bits.Hash64Seed()
	for _, val := range v {
		h = bits.Hash64Mix(h, uint64(val+1))
	}
	idx := h & vi.mask
	for {
		slot := vi.slots[idx]
		if slot == 0 {
			break
		}
		id := slot - 1
		if vi.hashes[id] == h && viewsEqual(vi.views[id], v) {
			return id
		}
		idx = (idx + 1) & vi.mask
	}
	return vi.insertAt(idx, v.Clone(), h)
}

// internView interns an already-flattened view with a precomputed hash,
// taking ownership of v (the merge path hands over shard-local views whose
// tables are then discarded).
func (vi *viewIntern) internView(v View, h uint64) int32 {
	idx := h & vi.mask
	for {
		slot := vi.slots[idx]
		if slot == 0 {
			break
		}
		id := slot - 1
		if vi.hashes[id] == h && viewsEqual(vi.views[id], v) {
			return id
		}
		idx = (idx + 1) & vi.mask
	}
	return vi.insertAt(idx, v, h)
}

func (vi *viewIntern) insertAt(idx uint64, v View, h uint64) int32 {
	id := int32(len(vi.views))
	vi.views = append(vi.views, v)
	vi.hashes = append(vi.hashes, h)
	vi.slots[idx] = id + 1
	if uint64(len(vi.views))*4 > (vi.mask+1)*3 {
		vi.grow()
	}
	return id
}

func (vi *viewIntern) grow() {
	vi.mask = (vi.mask+1)*2 - 1
	vi.slots = make([]int32, vi.mask+1)
	for id, h := range vi.hashes {
		idx := h & vi.mask
		for vi.slots[idx] != 0 {
			idx = (idx + 1) & vi.mask
		}
		vi.slots[idx] = int32(id) + 1
	}
}

// constraintIntern is a hash SET of sorted view-id lists, open-addressed
// like viewIntern, with contents stored in one flat arena.
type constraintIntern struct {
	mask   uint64
	slots  []int32 // constraint index + 1, 0 = empty
	hashes []uint64
	arena  []int32
	offs   []int32 // constraint c = arena[offs[c]:offs[c+1]]
}

func newConstraintIntern() *constraintIntern {
	const initial = 256
	return &constraintIntern{
		mask:  initial - 1,
		slots: make([]int32, initial),
		offs:  []int32{0},
	}
}

func (ci *constraintIntern) get(c int32) []int32 {
	return ci.arena[ci.offs[c]:ci.offs[c+1]]
}

// count returns the number of interned lists.
func (ci *constraintIntern) count() int { return len(ci.offs) - 1 }

// insert reports whether ids (sorted, unique) was absent, adding it if so.
func (ci *constraintIntern) insert(ids []int32) bool {
	h := bits.Hash64Seed()
	for _, id := range ids {
		h = bits.Hash64Mix(h, uint64(id))
	}
	idx := h & ci.mask
	for {
		slot := ci.slots[idx]
		if slot == 0 {
			break
		}
		c := slot - 1
		if ci.hashes[c] == h && slices.Equal(ci.get(c), ids) {
			return false
		}
		idx = (idx + 1) & ci.mask
	}
	c := int32(len(ci.offs) - 1)
	ci.arena = append(ci.arena, ids...)
	ci.offs = append(ci.offs, int32(len(ci.arena)))
	ci.hashes = append(ci.hashes, h)
	ci.slots[idx] = c + 1
	if uint64(len(ci.hashes))*4 > (ci.mask+1)*3 {
		ci.grow()
	}
	return true
}

func (ci *constraintIntern) grow() {
	ci.mask = (ci.mask+1)*2 - 1
	ci.slots = make([]int32, ci.mask+1)
	for c, h := range ci.hashes {
		idx := h & ci.mask
		for ci.slots[idx] != 0 {
			idx = (idx + 1) & ci.mask
		}
		ci.slots[idx] = int32(c) + 1
	}
}

// sortDedupInt32 sorts ids in place (insertion sort; callers pass at most
// one entry per process) and drops adjacent duplicates.
func sortDedupInt32(ids []int32) []int32 {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}
