package protocol

import (
	"testing"

	"ksettop/internal/graph"
	"ksettop/internal/model"
	"ksettop/internal/par"
)

const solverBudget = 5_000_000

func TestSolverCliqueConsensusSolvable(t *testing.T) {
	clique, _ := graph.Complete(3)
	res, err := SolveOneRound([]graph.Digraph{clique}, 2, 1, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound: %v", err)
	}
	if !res.Solvable {
		t.Fatalf("consensus on the clique model must be solvable in one round")
	}
	// The synthesized map must actually pass the exhaustive checker.
	check, err := WorstCase([]graph.Digraph{clique}, 2, 1, *res.Map, 1_000_000)
	if err != nil {
		t.Fatalf("WorstCase on synthesized map: %v", err)
	}
	if check.WorstDistinct > 1 {
		t.Errorf("synthesized map decides %d values, want 1", check.WorstDistinct)
	}
}

func TestSolverSymStarImpossibility(t *testing.T) {
	// Thm 6.13 with s=1 on n=3: 2-set agreement is impossible in the
	// non-empty-kernel model. Impossibility must be checked against the FULL
	// closure (restricting the adversary to generators weakens it enough
	// that an oblivious map exists — see the companion test below).
	m, err := model.NonEmptyKernelModel(3)
	if err != nil {
		t.Fatalf("NonEmptyKernelModel: %v", err)
	}
	var all []graph.Digraph
	if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
		all = append(all, g)
		return true
	}); err != nil {
		t.Fatalf("EnumerateGraphs: %v", err)
	}
	res, err := SolveOneRound(all, 3, 2, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound: %v", err)
	}
	if res.Solvable {
		t.Fatalf("2-set agreement on Sym(star), n=3, must be impossible (Thm 6.13)")
	}
	if res.Views == 0 || res.Executions != 27*37 {
		t.Errorf("unexpected problem size: %d views, %d executions", res.Views, res.Executions)
	}
}

func TestSolverGeneratorOnlyAdversaryIsWeaker(t *testing.T) {
	// Against the generator-only adversary (3 bare stars) an oblivious
	// 2-set map DOES exist on n=3 — demonstrating why impossibility
	// verification must sweep the whole closure.
	gens := symStars(t, 3)
	res, err := SolveOneRound(gens, 3, 2, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound: %v", err)
	}
	if !res.Solvable {
		t.Fatalf("restricted-adversary instance should be satisfiable")
	}
	check, err := WorstCase(gens, 3, 1, *res.Map, 1_000_000)
	if err != nil {
		t.Fatalf("WorstCase: %v", err)
	}
	if check.WorstDistinct > 2 {
		t.Errorf("map decides %d values on generators, want ≤ 2", check.WorstDistinct)
	}
}

func TestSolverSymStarTrivialKSolvable(t *testing.T) {
	// k = n = 3 is trivially solvable (decide own value). The solver must
	// find a map — over the FULL model closure for a genuine solvability
	// certificate.
	m, err := model.NonEmptyKernelModel(3)
	if err != nil {
		t.Fatalf("NonEmptyKernelModel: %v", err)
	}
	var all []graph.Digraph
	if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
		all = append(all, g)
		return true
	}); err != nil {
		t.Fatalf("EnumerateGraphs: %v", err)
	}
	res, err := SolveOneRound(all, 2, 3, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound: %v", err)
	}
	if !res.Solvable {
		t.Fatalf("3-set agreement with n=3 must be solvable")
	}
	check, err := WorstCase(all, 2, 1, *res.Map, 2_000_000)
	if err != nil {
		t.Fatalf("WorstCase: %v", err)
	}
	if check.WorstDistinct > 3 {
		t.Errorf("map decides %d values, want ≤ 3", check.WorstDistinct)
	}
}

func TestSolverCycleSimpleModel(t *testing.T) {
	// Simple ↑cycle on n=3: γ(cycle) = 2, so (Thm 3.2 / Thm 5.1) 2-set
	// agreement is solvable in one round but consensus is not.
	cyc, _ := graph.Cycle(3)
	m, _ := model.Simple(cyc)
	var all []graph.Digraph
	if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
		all = append(all, g)
		return true
	}); err != nil {
		t.Fatalf("EnumerateGraphs: %v", err)
	}

	imp, err := SolveOneRound(all, 2, 1, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound k=1: %v", err)
	}
	if imp.Solvable {
		t.Errorf("consensus on ↑cycle must be impossible in one round (γ = 2)")
	}

	sol, err := SolveOneRound(all, 3, 2, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound k=2: %v", err)
	}
	if !sol.Solvable {
		t.Errorf("2-set agreement on ↑cycle must be solvable in one round")
	}
	check, err := WorstCase(all, 3, 1, *sol.Map, 5_000_000)
	if err != nil {
		t.Fatalf("WorstCase: %v", err)
	}
	if check.WorstDistinct > 2 {
		t.Errorf("map decides %d values, want ≤ 2", check.WorstDistinct)
	}
}

func TestSolverMultiRoundViaProducts(t *testing.T) {
	// Thm 6.10 route: oblivious r-round impossibility on ↑G is one-round
	// impossibility on ↑(G^r)'s generators. For the 4-cycle, γ(cycle²) = 2,
	// so consensus is still impossible for oblivious algorithms in 2 rounds.
	cyc, _ := graph.Cycle(4)
	sq, err := graph.Power(cyc, 2)
	if err != nil {
		t.Fatalf("Power: %v", err)
	}
	res, err := SolveOneRound([]graph.Digraph{sq}, 2, 1, solverBudget)
	if err != nil {
		t.Fatalf("SolveOneRound: %v", err)
	}
	if res.Solvable {
		t.Errorf("consensus in 2 rounds on ↑cycle₄ must be impossible for oblivious algorithms")
	}
}

func TestSolverDeterministicAcrossParallelism(t *testing.T) {
	// The table-building sweep shards across the worker pool with per-shard
	// intern tables; the shard-order merge must reproduce the sequential
	// view/constraint universe exactly, so the whole SolveResult — including
	// the explored node count — is pinned across worker counts. The n=4 star
	// closure (1695 graphs, 256 assignments) is large enough that the
	// sharded path actually runs at every multi-worker setting.
	m, err := model.NonEmptyKernelModel(4)
	if err != nil {
		t.Fatalf("NonEmptyKernelModel: %v", err)
	}
	all, err := m.AllGraphs()
	if err != nil {
		t.Fatalf("AllGraphs: %v", err)
	}
	par.SetParallelism(1)
	want, err := SolveOneRound(all, 4, 3, 50_000_000)
	par.SetParallelism(0)
	if err != nil {
		t.Fatalf("sequential SolveOneRound: %v", err)
	}
	if want.Solvable {
		t.Fatalf("3-set agreement on Sym(star), n=4, must be impossible")
	}
	defer par.SetParallelism(0)
	for _, workers := range []int{2, 5, 8} {
		par.SetParallelism(workers)
		got, err := SolveOneRound(all, 4, 3, 50_000_000)
		par.SetParallelism(0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: SolveResult %+v differs from sequential %+v", workers, got, want)
		}
	}
}

func TestSolverGuards(t *testing.T) {
	star, _ := graph.Star(3, 0)
	if _, err := SolveOneRound(nil, 2, 1, 1000); err == nil {
		t.Errorf("no graphs should fail")
	}
	if _, err := SolveOneRound([]graph.Digraph{star}, 1, 1, 1000); err == nil {
		t.Errorf("numValues=1 should fail")
	}
	if _, err := SolveOneRound([]graph.Digraph{star}, 2, 0, 1000); err == nil {
		t.Errorf("k=0 should fail")
	}
	gens := symStars(t, 3)
	if _, err := SolveOneRound(gens, 3, 2, 1); err == nil {
		t.Errorf("tiny node budget should trip on an unsatisfiable instance")
	}
}
