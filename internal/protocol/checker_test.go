package protocol

import (
	"testing"

	"ksettop/internal/graph"
	"ksettop/internal/model"
)

func symStars(t *testing.T, n int) []graph.Digraph {
	t.Helper()
	star, err := graph.Star(n, 0)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	sym, err := graph.SymClosure([]graph.Digraph{star})
	if err != nil {
		t.Fatalf("SymClosure: %v", err)
	}
	return sym
}

func TestWorstCaseMinOnSymStar(t *testing.T) {
	// Upper bound (Cor 3.5): γ_eq = n on the star model, so the one-round
	// min algorithm achieves n-set agreement and no better against the
	// generator adversary: worst case = 3 distinct on n = 3.
	gens := symStars(t, 3)
	res, err := WorstCase(gens, 3, 1, MinAlgorithm{R: 1}, 1_000_000)
	if err != nil {
		t.Fatalf("WorstCase: %v", err)
	}
	if res.WorstDistinct != 3 {
		t.Errorf("worst distinct = %d, want 3", res.WorstDistinct)
	}
	if res.Executions != 27*3 {
		t.Errorf("executions = %d, want 81", res.Executions)
	}
	// The witness must reproduce the worst case.
	r, err := Run(res.Witness, MinAlgorithm{R: 1})
	if err != nil {
		t.Fatalf("witness run: %v", err)
	}
	if r.DistinctCount() != res.WorstDistinct {
		t.Errorf("witness reproduces %d, want %d", r.DistinctCount(), res.WorstDistinct)
	}
}

func TestWorstCaseFullModelEnumeration(t *testing.T) {
	// Sweeping the FULL closure ↑Sym(star) on n=3 must agree with the
	// generator sweep for the min algorithm (more edges only help).
	m, err := model.NonEmptyKernelModel(3)
	if err != nil {
		t.Fatalf("NonEmptyKernelModel: %v", err)
	}
	var all []graph.Digraph
	if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
		all = append(all, g)
		return true
	}); err != nil {
		t.Fatalf("EnumerateGraphs: %v", err)
	}
	res, err := WorstCase(all, 2, 1, MinAlgorithm{R: 1}, 1_000_000)
	if err != nil {
		t.Fatalf("WorstCase: %v", err)
	}
	gensOnly, err := WorstCase(m.Generators(), 2, 1, MinAlgorithm{R: 1}, 1_000_000)
	if err != nil {
		t.Fatalf("WorstCase(gens): %v", err)
	}
	if res.WorstDistinct != gensOnly.WorstDistinct {
		t.Errorf("full sweep %d vs generator sweep %d", res.WorstDistinct, gensOnly.WorstDistinct)
	}
}

func TestWorstCaseMultiRoundCycle(t *testing.T) {
	// Simple ↑cycle model on n = 4: γ(cycle²) = 2, and the covering
	// sequence reaches n in 3 rounds, so min over 3 rounds achieves
	// consensus... against the fixed-cycle adversary the spread after r
	// rounds is r+1 processes: after 1 round worst = 3-set, after 3 rounds
	// worst = 1 (everyone knows everyone).
	cyc, _ := graph.Cycle(4)
	for _, tc := range []struct {
		rounds int
		want   int
	}{
		{1, 3}, {3, 1},
	} {
		res, err := WorstCase([]graph.Digraph{cyc}, 4, tc.rounds, MinAlgorithm{R: tc.rounds}, 2_000_000)
		if err != nil {
			t.Fatalf("WorstCase r=%d: %v", tc.rounds, err)
		}
		if res.WorstDistinct != tc.want {
			t.Errorf("rounds=%d: worst = %d, want %d", tc.rounds, res.WorstDistinct, tc.want)
		}
	}
}

func TestWorstCaseGuards(t *testing.T) {
	star, _ := graph.Star(3, 0)
	if _, err := WorstCase(nil, 2, 1, MinAlgorithm{R: 1}, 1000); err == nil {
		t.Errorf("no graphs should fail")
	}
	if _, err := WorstCase([]graph.Digraph{star}, 0, 1, MinAlgorithm{R: 1}, 1000); err == nil {
		t.Errorf("numValues=0 should fail")
	}
	if _, err := WorstCase([]graph.Digraph{star}, 2, 2, MinAlgorithm{R: 1}, 1000); err == nil {
		t.Errorf("round mismatch should fail")
	}
	if _, err := WorstCase([]graph.Digraph{star}, 10, 1, MinAlgorithm{R: 1}, 10); err == nil {
		t.Errorf("limit should trip")
	}
}

func TestWorstCaseDetectsValidityViolation(t *testing.T) {
	// A constant decision map violating validity must be reported.
	star, _ := graph.Star(2, 0)
	table := make(map[string]Value)
	for _, views := range allOneRoundViews([]graph.Digraph{star}, 2) {
		table[views] = 1 // always decide 1, even when all inputs are 0
	}
	dm := DecisionMap{R: 1, Table: table}
	if _, err := WorstCase([]graph.Digraph{star}, 2, 1, dm, 1000); err == nil {
		t.Errorf("validity violation should be reported")
	}
}

// allOneRoundViews enumerates the view keys arising in one round.
func allOneRoundViews(gs []graph.Digraph, numValues int) []string {
	n := gs[0].N()
	seen := make(map[string]bool)
	var out []string
	assignment := make([]Value, n)
	for {
		for _, g := range gs {
			for p := 0; p < n; p++ {
				v := NewView(n)
				g.In(p).ForEach(func(q int) { v[q] = assignment[q] })
				key := ViewKey(v)
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		}
		if !incCounter(assignment, numValues) {
			break
		}
	}
	return out
}
