// Package protocol implements the round-based execution substrate: a
// Heard-Of–style executor for communication-closed rounds (§2.1), oblivious
// algorithms and full-information views with flattening (Def 2.5), the
// min-dissemination algorithms behind the paper's upper bounds (§3, §6.2),
// adversaries, a k-set agreement checker, and an exhaustive decision-map
// solver that verifies one-round impossibilities on small instances.
package protocol

import (
	"fmt"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
)

// Value is an initial or decided value. Values are totally ordered ints, as
// the paper's min-based algorithms require.
type Value = int

// NoValue marks an unknown entry in a view.
const NoValue Value = -1

// View is the oblivious state of a process (Def 2.5): for each process,
// either its initial value or NoValue. This is exactly the flattened
// full-information view.
type View []Value

// NewView returns a view of n processes knowing nothing.
func NewView(n int) View {
	v := make(View, n)
	for i := range v {
		v[i] = NoValue
	}
	return v
}

// Clone returns a copy of v.
func (v View) Clone() View {
	out := make(View, len(v))
	copy(out, v)
	return out
}

// Known returns the set of processes whose value is known.
func (v View) Known() bits.Set {
	var s bits.Set
	for p, val := range v {
		if val != NoValue {
			s = s.With(p)
		}
	}
	return s
}

// Merge adds every pair known by other to v.
func (v View) Merge(other View) {
	for p, val := range other {
		if val != NoValue {
			v[p] = val
		}
	}
}

// Min returns the smallest known value, and whether any value is known.
func (v View) Min() (Value, bool) {
	best, found := 0, false
	for _, val := range v {
		if val != NoValue && (!found || val < best) {
			best, found = val, true
		}
	}
	return best, found
}

// MinOver returns the smallest known value among the given processes.
func (v View) MinOver(procs bits.Set) (Value, bool) {
	best, found := 0, false
	procs.ForEach(func(p int) {
		if p < len(v) && v[p] != NoValue && (!found || v[p] < best) {
			best, found = v[p], true
		}
	})
	return best, found
}

// DistinctValues returns the distinct known values.
func (v View) DistinctValues() []Value {
	seen := make(map[Value]bool)
	var out []Value
	for _, val := range v {
		if val != NoValue && !seen[val] {
			seen[val] = true
			out = append(out, val)
		}
	}
	return out
}

// Algorithm is an oblivious algorithm (Def 2.5): it runs a fixed number of
// full-information rounds and then decides from the flattened view only.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Rounds is the number of communication rounds before deciding.
	Rounds() int
	// Decide maps the flattened view of a process to its decision.
	Decide(self int, v View) (Value, error)
}

// Execution is one deterministic run: a graph per round and an initial
// value per process.
type Execution struct {
	Graphs  []graph.Digraph
	Initial []Value
}

// Validate checks internal consistency.
func (e Execution) Validate() error {
	if len(e.Initial) == 0 {
		return fmt.Errorf("protocol: execution needs at least one process")
	}
	n := len(e.Initial)
	if len(e.Graphs) == 0 {
		return fmt.Errorf("protocol: execution needs at least one round")
	}
	for r, g := range e.Graphs {
		if g.N() != n {
			return fmt.Errorf("protocol: round %d graph has %d processes, want %d", r+1, g.N(), n)
		}
	}
	for p, val := range e.Initial {
		if val < 0 {
			return fmt.Errorf("protocol: process %d has negative initial value %d", p, val)
		}
	}
	return nil
}

// Result is the outcome of an execution: the final views and the decisions.
type Result struct {
	Views     []View
	Decisions []Value
}

// Run executes the algorithm under the given execution and returns the
// decisions. The executor also maintains full-information views and checks
// the Def 2.5 flattening invariant; a mismatch is an internal error.
func Run(e Execution, algo Algorithm) (Result, error) {
	if err := e.Validate(); err != nil {
		return Result{}, err
	}
	if len(e.Graphs) != algo.Rounds() {
		return Result{}, fmt.Errorf("protocol: %s needs %d rounds, execution has %d",
			algo.Name(), algo.Rounds(), len(e.Graphs))
	}
	n := len(e.Initial)

	// Oblivious knowledge.
	views := make([]View, n)
	full := make([]*FullView, n)
	for p := 0; p < n; p++ {
		views[p] = NewView(n)
		views[p][p] = e.Initial[p]
		full[p] = InitialFullView(p, e.Initial[p])
	}

	for _, g := range e.Graphs {
		next := make([]View, n)
		nextFull := make([]*FullView, n)
		for p := 0; p < n; p++ {
			nv := NewView(n)
			heard := make([]*FullView, 0, g.In(p).Count())
			g.In(p).ForEach(func(q int) {
				nv.Merge(views[q])
				heard = append(heard, full[q])
			})
			next[p] = nv
			nextFull[p] = RoundFullView(p, heard)
		}
		views, full = next, nextFull
	}

	res := Result{Views: views, Decisions: make([]Value, n)}
	for p := 0; p < n; p++ {
		// Def 2.5 invariant: the flattened full-information view equals the
		// oblivious knowledge.
		if flat := full[p].Flatten(n); !viewsEqual(flat, views[p]) {
			return Result{}, fmt.Errorf("protocol: flattening invariant broken at process %d: %v vs %v",
				p, flat, views[p])
		}
		d, err := algo.Decide(p, views[p])
		if err != nil {
			return Result{}, fmt.Errorf("protocol: %s at process %d: %w", algo.Name(), p, err)
		}
		res.Decisions[p] = d
	}
	return res, nil
}

func viewsEqual(a, b View) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DistinctCount returns the number of distinct decided values.
func (r Result) DistinctCount() int {
	seen := make(map[Value]bool)
	for _, d := range r.Decisions {
		seen[d] = true
	}
	return len(seen)
}
