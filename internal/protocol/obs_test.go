package protocol

import (
	"reflect"
	"testing"

	"ksettop/internal/obs"
)

// The observability layer must be invisible to results: the full corpus
// solved with obs enabled AND tracing on is deeply identical — verdict,
// witness map, node accounting, per-phase stats — to the same corpus solved
// with every gated path off. Instrumentation sits at shard/phase
// granularity and never inside the result computation.
func TestObsOnOffDeterminism(t *testing.T) {
	obs.ResetTrace(0)
	obs.SetTracingEnabled(true)
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetTracingEnabled(false)
		obs.SetEnabled(true)
		obs.ResetTrace(0)
	})

	type run struct {
		name string
		res  SolveResult
	}
	var on []run
	for _, inst := range corpusInstances(t) {
		res, err := SolveOneRound(inst.graphs, inst.vals, inst.k, DefaultNodeBudget())
		if err != nil {
			t.Fatalf("%s (obs on): %v", inst.name, err)
		}
		on = append(on, run{inst.name, res})
	}

	obs.SetTracingEnabled(false)
	obs.SetEnabled(false)
	for i, inst := range corpusInstances(t) {
		res, err := SolveOneRound(inst.graphs, inst.vals, inst.k, DefaultNodeBudget())
		if err != nil {
			t.Fatalf("%s (obs off): %v", inst.name, err)
		}
		if !reflect.DeepEqual(res, on[i].res) {
			t.Fatalf("%s: result differs with observability off:\n on: %+v\noff: %+v",
				inst.name, on[i].res, res)
		}
	}
}
