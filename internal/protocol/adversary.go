package protocol

import (
	"fmt"
	"math/rand"

	"ksettop/internal/graph"
)

// Adversary chooses the communication graph of each round. Oblivious models
// (Def 2.2) let the adversary pick independently per round, so adversaries
// here do not observe process state.
type Adversary interface {
	// Name identifies the adversary in reports.
	Name() string
	// Pick returns the graph for the given 1-based round.
	Pick(round int) graph.Digraph
}

// FixedAdversary plays a predetermined sequence of graphs.
type FixedAdversary struct {
	Graphs []graph.Digraph
}

var _ Adversary = FixedAdversary{}

// Name implements Adversary.
func (FixedAdversary) Name() string { return "fixed" }

// Pick implements Adversary.
func (a FixedAdversary) Pick(round int) graph.Digraph {
	return a.Graphs[(round-1)%len(a.Graphs)]
}

// CyclingAdversary cycles deterministically through the generators — the
// canonical "always play a minimal graph" adversary, which is worst-case for
// dissemination in closed-above models.
type CyclingAdversary struct {
	Gens []graph.Digraph
}

var _ Adversary = CyclingAdversary{}

// Name implements Adversary.
func (CyclingAdversary) Name() string { return "cycling-generators" }

// Pick implements Adversary.
func (a CyclingAdversary) Pick(round int) graph.Digraph {
	return a.Gens[(round-1)%len(a.Gens)]
}

// RandomAdversary plays a random generator each round with random extra
// edges — a random element of the model.
type RandomAdversary struct {
	Gens      []graph.Digraph
	ExtraProb float64
	Rng       *rand.Rand
}

var _ Adversary = &RandomAdversary{}

// Name implements Adversary.
func (*RandomAdversary) Name() string { return "random" }

// Pick implements Adversary.
func (a *RandomAdversary) Pick(round int) graph.Digraph {
	g := a.Gens[a.Rng.Intn(len(a.Gens))].Clone()
	n := g.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && !g.HasEdge(u, v) && a.Rng.Float64() < a.ExtraProb {
				_ = g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BuildExecution materializes rounds many adversary picks plus the initial
// values into an Execution.
func BuildExecution(adv Adversary, rounds int, initial []Value) (Execution, error) {
	if rounds < 1 {
		return Execution{}, fmt.Errorf("protocol: rounds %d must be ≥ 1", rounds)
	}
	graphs := make([]graph.Digraph, rounds)
	for r := 1; r <= rounds; r++ {
		graphs[r-1] = adv.Pick(r)
	}
	e := Execution{Graphs: graphs, Initial: initial}
	if err := e.Validate(); err != nil {
		return Execution{}, err
	}
	return e, nil
}
