package protocol

import (
	"fmt"
	"sort"
	"strings"
)

// FullView is a full-information protocol view: after round r, a process's
// view is the sequence of views (from round r−1) of the processes it heard
// from. Oblivious algorithms (Def 2.5) may only use its flattening.
type FullView struct {
	// Proc is the process holding the view.
	Proc int
	// Initial is the process's initial value when Heard is nil (round 0).
	Initial Value
	// Heard holds the previous-round views received, nil at round 0.
	Heard []*FullView
}

// InitialFullView is the round-0 view: the process's own initial value.
func InitialFullView(p int, initial Value) *FullView {
	return &FullView{Proc: p, Initial: initial}
}

// RoundFullView is the view after one more round: everything heard.
func RoundFullView(p int, heard []*FullView) *FullView {
	sorted := make([]*FullView, len(heard))
	copy(sorted, heard)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Proc < sorted[j].Proc })
	return &FullView{Proc: p, Heard: sorted}
}

// Depth returns the number of communication rounds recorded in the view.
func (f *FullView) Depth() int {
	if f.Heard == nil {
		return 0
	}
	max := 0
	for _, h := range f.Heard {
		if d := h.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Flatten implements flat(v) of Def 2.5: the set of (process, initial value)
// pairs occurring anywhere in the nested view, as an oblivious View.
func (f *FullView) Flatten(n int) View {
	out := NewView(n)
	f.flattenInto(out)
	return out
}

func (f *FullView) flattenInto(out View) {
	if f.Heard == nil {
		if f.Proc < len(out) {
			out[f.Proc] = f.Initial
		}
		return
	}
	for _, h := range f.Heard {
		h.flattenInto(out)
	}
}

// String renders the nested view, e.g. "p0⟨p0:1, p2⟨…⟩⟩".
func (f *FullView) String() string {
	var b strings.Builder
	f.render(&b)
	return b.String()
}

func (f *FullView) render(b *strings.Builder) {
	if f.Heard == nil {
		fmt.Fprintf(b, "p%d:%d", f.Proc, f.Initial)
		return
	}
	fmt.Fprintf(b, "p%d⟨", f.Proc)
	for i, h := range f.Heard {
		if i > 0 {
			b.WriteString(", ")
		}
		h.render(b)
	}
	b.WriteString("⟩")
}
