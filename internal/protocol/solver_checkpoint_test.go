package protocol

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"ksettop/internal/checkpoint"
	"ksettop/internal/faultinject"
	"ksettop/internal/graph"
	"ksettop/internal/par"
)

// solveWithRunner runs the refutation instance with a checkpoint runner on
// the context.
func solveWithRunner(r *checkpoint.Runner, all []graph.Digraph, numValues, k, budget int) (SolveResult, error) {
	ctx := checkpoint.WithRunner(context.Background(), r)
	return SolveOneRoundCtx(ctx, all, numValues, k, budget)
}

// TestSolverCheckpointKillResumeMatrix is the tentpole invariant for the
// solver: abort a refutation sweep at seeded task ordinals, resume it from
// the flushed checkpoint at several parallelism settings, and require the
// resumed SolveResult to be identical — including node accounting and stats
// — to an uninterrupted run.
func TestSolverCheckpointKillResumeMatrix(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(16) // force the parallel phase on this small instance
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)

	const budget = 50_000_000
	par.SetParallelism(1)
	want, err := SolveOneRound(all, 4, 3, budget)
	if err != nil {
		t.Fatal(err)
	}
	if want.Solvable {
		t.Fatal("matrix instance must be a refutation")
	}

	aborted := 0
	for _, parallelism := range []int{1, 2, 5, 8} {
		for _, killAt := range []uint64{1, 3, 7} {
			name := fmt.Sprintf("p%d-kill%d", parallelism, killAt)
			par.SetParallelism(parallelism)
			path := filepath.Join(t.TempDir(), "solver.ckpt")

			// Run 1: die at the killAt-th task execution.
			r1 := checkpoint.NewRunner(path, "job", 0)
			faultinject.Enable(42, faultinject.Rule{
				Point:  faultinject.PointSolverTask,
				Nth:    killAt,
				Action: faultinject.ActionError,
			})
			_, err := solveWithRunner(r1, all, 4, 3, budget)
			faultinject.Disable()
			if err == nil {
				// The sweep outran the injection ordinal; nothing to resume.
				continue
			}
			aborted++
			if err := r1.SaveNow(); err != nil {
				t.Fatalf("%s: final save: %v", name, err)
			}

			// Run 2: resume and finish.
			r2 := checkpoint.NewRunner(path, "job", 0)
			if !r2.LoadForResume() {
				t.Fatalf("%s: checkpoint did not load", name)
			}
			got, err := solveWithRunner(r2, all, 4, 3, budget)
			if err != nil {
				t.Fatalf("%s: resumed solve: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: resumed result differs from uninterrupted run:\ngot  %+v\nwant %+v", name, got, want)
			}
		}
	}
	if aborted == 0 {
		t.Fatal("no trial aborted — the kill matrix exercised nothing")
	}
}

// A second crash-and-resume on the SAME checkpoint file: progress must
// compose across two generations of interrupted runs.
func TestSolverCheckpointResumeTwice(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(16)
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)

	const budget = 50_000_000
	par.SetParallelism(2)
	want, err := SolveOneRound(all, 4, 3, budget)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "solver.ckpt")
	prev := checkpoint.NewRunner(path, "job", 0)
	for gen, killAt := range []uint64{1, 2} {
		r := checkpoint.NewRunner(path, "job", 0)
		if gen > 0 && !r.LoadForResume() {
			t.Fatalf("generation %d: checkpoint did not load", gen)
		}
		faultinject.Enable(7+uint64(gen), faultinject.Rule{
			Point:  faultinject.PointSolverTask,
			Nth:    killAt,
			Action: faultinject.ActionError,
		})
		_, err := solveWithRunner(r, all, 4, 3, budget)
		faultinject.Disable()
		if err == nil {
			t.Skipf("generation %d: sweep outran the injected kill", gen)
		}
		if err := r.SaveNow(); err != nil {
			t.Fatalf("generation %d: save: %v", gen, err)
		}
		prev = r
	}
	_ = prev
	final := checkpoint.NewRunner(path, "job", 0)
	if !final.LoadForResume() {
		t.Fatal("final checkpoint did not load")
	}
	got, err := solveWithRunner(final, all, 4, 3, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("twice-resumed result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// A checkpoint written under a different budget (hence fingerprint) must be
// ignored — cold recompute, correct result.
func TestSolverCheckpointFingerprintMismatchColdStarts(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(16)
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)
	par.SetParallelism(2)

	path := filepath.Join(t.TempDir(), "solver.ckpt")
	r1 := checkpoint.NewRunner(path, "job", 0)
	faultinject.Enable(42, faultinject.Rule{Point: faultinject.PointSolverTask, Nth: 1, Action: faultinject.ActionError})
	_, err := solveWithRunner(r1, all, 4, 3, 50_000_000)
	faultinject.Disable()
	if err == nil {
		t.Skip("sweep outran the injected kill")
	}
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}

	// Resume under a DIFFERENT node budget: the fingerprint differs, so the
	// section must not be consumed.
	const otherBudget = 40_000_000
	want, err := SolveOneRound(all, 4, 3, otherBudget)
	if err != nil {
		t.Fatal(err)
	}
	r2 := checkpoint.NewRunner(path, "job", 0)
	r2.LoadForResume()
	got, err := solveWithRunner(r2, all, 4, 3, otherBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cold start under foreign checkpoint differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// A rotted solver section (right fingerprint, garbage body) must warn and
// recompute, never skew the result.
func TestSolverCheckpointCorruptSectionRecomputes(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(16)
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)
	par.SetParallelism(2)

	const budget = 50_000_000
	want, err := SolveOneRound(all, 4, 3, budget)
	if err != nil {
		t.Fatal(err)
	}

	// Write a genuine checkpoint via an aborted run, then rot the section
	// body while preserving its 8-byte fingerprint prefix, so Resume matches
	// the section and the engine-level decoder has to reject it.
	path := filepath.Join(t.TempDir(), "solver.ckpt")
	r1 := checkpoint.NewRunner(path, "job", 0)
	faultinject.Enable(42, faultinject.Rule{Point: faultinject.PointSolverTask, Nth: 1, Action: faultinject.ActionError})
	_, err = solveWithRunner(r1, all, 4, 3, budget)
	faultinject.Disable()
	if err == nil {
		t.Skip("sweep outran the injected kill")
	}
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}
	secs, err := checkpoint.Load(path, "job")
	if err != nil {
		t.Fatal(err)
	}
	for i := range secs {
		body := secs[i].Payload
		for j := 8; j < len(body); j++ {
			body[j] ^= 0x5A
		}
	}
	if err := checkpoint.Save(path, "job", secs); err != nil {
		t.Fatal(err)
	}

	r := checkpoint.NewRunner(path, "job", 0)
	if !r.LoadForResume() {
		t.Fatal("forged checkpoint did not load")
	}
	got, err := solveWithRunner(r, all, 4, 3, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("corrupt-section recompute differs:\ngot  %+v\nwant %+v", got, want)
	}
}
