package protocol

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ksettop/internal/faultinject"
	"ksettop/internal/graph"
	"ksettop/internal/model"
	"ksettop/internal/par"
)

// midSweepInstance returns the n=4 star-closure instance whose refutation
// engages the decomposition + task sweep once the probe limit is forced
// down — the same configuration TestBudgetErrorsAgreeAcrossEnginesAndParallelism
// uses for its mid-sweep budget trips.
func midSweepInstance(t *testing.T) []graph.Digraph {
	t.Helper()
	m, err := model.NonEmptyKernelModel(4)
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	return all
}

// TestBudgetTypedError pins the typed budget error contract: errors.Is
// matches ErrBudgetExceeded, errors.As yields the budget and the
// deterministic node count, on both engines.
func TestBudgetTypedError(t *testing.T) {
	m, err := model.NonEmptyKernelModel(3)
	if err != nil {
		t.Fatal(err)
	}
	gens := m.Generators()
	for _, engine := range []SearchEngine{SearchSeq, SearchParallel} {
		res, err := SolveOneRoundEngine(gens, 3, 2, 1, engine)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("engine=%v: err %v does not match ErrBudgetExceeded", engine, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("engine=%v: err %v is not a *BudgetError", engine, err)
		}
		if be.Budget != 1 || be.Nodes != res.Nodes {
			t.Fatalf("engine=%v: BudgetError %+v, want Budget=1 Nodes=%d", engine, be, res.Nodes)
		}
	}
}

// TestBudgetOvershootBounded is the regression test for the tasks × budget
// overshoot: a mid-sweep budget trip must stop the sweep after roughly one
// task's worth of extra work, not after every task has burned its private
// cap. debugSweepNodes records the wall-clock nodes the sweep actually
// explored (cancelled tasks included), so the assertion is on real work
// done, not on the deterministic accounting.
func TestBudgetOvershootBounded(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(4) // force the parallel phase immediately
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)

	// Reference: the full refutation is far larger than the budget, so an
	// unbounded sweep would burn orders of magnitude more than budget nodes.
	par.SetParallelism(1)
	full, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 200 lands inside the task sweep on this instance (probe +
	// decomposition charge 67 nodes), so the trip exercises the live
	// accounting, not the pre-sweep checks.
	const budget = 200
	if full.Nodes < 20*budget {
		t.Fatalf("instance too small to witness overshoot: full refutation is %d nodes", full.Nodes)
	}

	for _, workers := range []int{1, 2, 8} {
		par.SetParallelism(workers)
		debugSweepNodes.Store(0)
		res, err := SolveOneRound(all, 4, 3, budget)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("workers=%d: want budget error, got %v (res %+v)", workers, err, res)
		}
		if res.Stats.Tasks == 0 {
			t.Fatalf("workers=%d: budget tripped before the sweep engaged: %+v", workers, res.Stats)
		}
		spent := debugSweepNodes.Load()
		// Bound: the charged prefix (≤ budget) + the crossing task running
		// to its private cap (≤ budget) + every in-flight worker winding
		// down within its 128-node polling granularity, plus slack for
		// tasks that were already mid-flight when the bound was published.
		limit := int64(2*budget + workers*256)
		if spent > limit {
			t.Errorf("workers=%d: sweep explored %d nodes on a %d-node budget (limit %d) — overshoot regression",
				workers, spent, budget, limit)
		}
		if int64(full.Nodes) <= limit {
			t.Fatalf("assertion vacuous: full refutation %d under limit %d", full.Nodes, limit)
		}
	}
}

// TestSolveCancellationDeterminism is the corpus regression for the
// cancellation backbone: cancelling a run mid-flight and rerunning it to
// completion must yield a SolveResult byte-identical to a never-cancelled
// run, at every parallelism setting.
func TestSolveCancellationDeterminism(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(16)
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)

	par.SetParallelism(1)
	want, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Tasks == 0 {
		t.Fatalf("parallel phase did not engage: %+v", want.Stats)
	}

	for _, workers := range []int{1, 2, 5, 8} {
		par.SetParallelism(workers)
		// Cancel mid-run: a deadline short enough to land inside the sweep
		// on most runs. Either outcome is legal — a cancellation error or a
		// clean finish if the run beat the deadline — but a cancelled run
		// must never return a partial result as if it were complete.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		res, err := SolveOneRoundCtx(ctx, all, 4, 3, 50_000_000)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("workers=%d: cancelled run returned %v, want a DeadlineExceeded chain", workers, err)
			}
		} else if res != want {
			t.Fatalf("workers=%d: run that beat the deadline differs: %+v vs %+v", workers, res, want)
		}
		// Rerun to completion: byte-identical to the uncancelled result.
		got, err := SolveOneRoundCtx(context.Background(), all, 4, 3, 50_000_000)
		if err != nil {
			t.Fatalf("workers=%d: rerun: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: rerun after cancellation differs: %+v vs %+v", workers, got, want)
		}
	}
}

// TestSolveExpiredDeadline pins that an already-expired deadline returns a
// typed context error without doing a shard's worth of work.
func TestSolveExpiredDeadline(t *testing.T) {
	all := midSweepInstance(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	for _, engine := range []SearchEngine{SearchSeq, SearchParallel} {
		_, err := SolveOneRoundEngineCtx(ctx, all, 4, 3, 50_000_000, engine)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("engine=%v: err = %v, want DeadlineExceeded chain", engine, err)
		}
	}
}

// TestSolveChaosInjectedFaults hammers the solver under injected faults:
// panics and errors at task boundaries must surface as clean errors (no
// process crash, no goroutine leak), and a fault-free rerun must match the
// clean result exactly.
func TestSolveChaosInjectedFaults(t *testing.T) {
	all := midSweepInstance(t)
	SetSearchProbeLimit(16)
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)
	par.SetParallelism(4)

	want, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	cases := []struct {
		name string
		rule faultinject.Rule
	}{
		{"panic at 3rd solver task", faultinject.Rule{Point: faultinject.PointSolverTask, Nth: 3, Action: faultinject.ActionPanic}},
		{"error at 2nd solver task", faultinject.Rule{Point: faultinject.PointSolverTask, Nth: 2, Action: faultinject.ActionError}},
		{"panic at 5th deque task", faultinject.Rule{Point: faultinject.PointParTask, Nth: 5, Action: faultinject.ActionPanic}},
		{"error at 1st deque task", faultinject.Rule{Point: faultinject.PointParTask, Nth: 1, Action: faultinject.ActionError}},
	}
	for _, tc := range cases {
		faultinject.Enable(42, tc.rule)
		_, err := SolveOneRound(all, 4, 3, 50_000_000)
		faultinject.Disable()
		if err == nil {
			// A panic rule may fire inside a task that was already
			// cancelled-for-rank and never reaches the injection point; but
			// with these small ordinals the fault must land.
			t.Fatalf("%s: fault did not surface as an error", tc.name)
		}
		var pe *par.PanicError
		switch tc.rule.Action {
		case faultinject.ActionPanic:
			if !errors.As(err, &pe) {
				t.Fatalf("%s: err %v does not carry *par.PanicError", tc.name, err)
			}
		case faultinject.ActionError:
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("%s: err %v does not match ErrInjected", tc.name, err)
			}
		}
	}

	// Fault-free rerun: byte-identical to the clean run.
	got, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("fault-free rerun differs: %+v vs %+v", got, want)
	}

	// No goroutine leaks from the faulted sweeps.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before chaos, %d after", before, n)
	}
}
