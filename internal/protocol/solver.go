package protocol

import (
	"fmt"
	mathbits "math/bits"
	"slices"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
	"ksettop/internal/par"
)

// SolveResult is the outcome of an exhaustive decision-map search.
type SolveResult struct {
	// Solvable reports whether some oblivious one-round decision map solves
	// k-set agreement over the swept executions.
	Solvable bool
	// Map holds a solving decision map when Solvable.
	Map *DecisionMap
	// Views is the number of distinct flattened views.
	Views int
	// Executions is the number of constraint executions.
	Executions int
	// Nodes is the number of search nodes explored.
	Nodes int
}

// SolveOneRound decides, by exhaustive search over all oblivious decision
// maps, whether k-set agreement is solvable in one round when the adversary
// plays graphs from roundGraphs and initial values range over
// [0, numValues).
//
// Soundness notes:
//   - If the search fails over a SUBSET of the model's graphs, it fails over
//     the model a fortiori, so passing just the generators proves
//     impossibility for the whole closed-above model. Since one-round
//     full-information protocols are oblivious (§5), the impossibility
//     applies to all algorithms.
//   - If the search succeeds, the map solves k-set agreement over exactly
//     the swept graphs; pass the full closure (model.EnumerateGraphs) to
//     certify solvability on the model.
//   - Restricting decisions to values present in the view is WLOG for
//     numValues ≥ 2: any value outside the view fails validity in some
//     execution extending the view.
//
// To verify multi-round *oblivious* impossibility (Thm 6.10/6.11), pass the
// round-r product graphs: after r rounds a flattened view is determined by
// the product graph's in-neighborhoods, so the r-round oblivious question is
// exactly this one-round question on S^r.
//
// The assignments × graphs constraint sweep is sharded across the par
// worker pool with per-shard intern tables, merged in shard order, so the
// view/constraint universe — and therefore the search result — is identical
// to a sequential sweep for every parallelism setting.
//
// The search is exponential; nodeBudget bounds explored nodes (error when
// exhausted).
func SolveOneRound(roundGraphs []graph.Digraph, numValues, k, nodeBudget int) (SolveResult, error) {
	if len(roundGraphs) == 0 {
		return SolveResult{}, fmt.Errorf("protocol: no graphs to solve over")
	}
	if numValues < 2 {
		return SolveResult{}, fmt.Errorf("protocol: solver needs ≥2 values, got %d", numValues)
	}
	if k < 1 {
		return SolveResult{}, fmt.Errorf("protocol: k %d must be ≥ 1", k)
	}
	n := roundGraphs[0].N()
	numAssignments := 1
	for i := 0; i < n; i++ {
		numAssignments *= numValues
		if numAssignments > 1<<20 {
			return SolveResult{}, fmt.Errorf("protocol: %d^%d assignments too many", numValues, n)
		}
	}

	// The view of process p under graph g depends only on In_g(p) and the
	// assignment, so the distinct in-neighborhoods across all graphs are
	// collected once up front: per assignment, each distinct in-set is
	// flattened and interned exactly once instead of n×|graphs| times.
	inSetID := make(map[bits.Set]int)
	var inSets []bits.Set
	graphIn := make([][]int32, len(roundGraphs))
	for gi, g := range roundGraphs {
		row := make([]int32, n)
		for p := 0; p < n; p++ {
			in := g.In(p)
			id, ok := inSetID[in]
			if !ok {
				id = len(inSets)
				inSetID[in] = id
				inSets = append(inSets, in)
			}
			row[p] = int32(id)
		}
		graphIn[gi] = row
	}

	// A graph enters a constraint only through its SET of in-neighborhoods:
	// two graphs with the same sorted-unique in-set-id list induce identical
	// constraints under every assignment. Closures are full of such
	// duplicates (e.g. the n=4 star closure has 1695 graphs but only 447
	// distinct lists), so the per-assignment sweep runs over the deduped
	// lists. Dedup preserves first-occurrence order, which keeps the
	// constraint numbering identical to a graph-by-graph sweep.
	lists := newConstraintIntern()
	idScratch := make([]int32, 0, n)
	for _, row := range graphIn {
		ids := idScratch[:0]
		for p := 0; p < n; p++ {
			ids = append(ids, row[p])
		}
		lists.insert(sortDedupInt32(ids))
	}
	execLists := make([][]int32, lists.count())
	for c := range execLists {
		execLists[c] = lists.get(int32(c))
	}

	// Build the view universe and the execution constraints over the rank
	// space assignments × lists. Distinct executions frequently induce
	// identical view SETS; since the constraint "≤ k distinct decisions"
	// depends only on the view set, constraints are deduplicated, which
	// shrinks hard instances by orders of magnitude. Both tables intern
	// through 64-bit hashes with full content comparison — no per-execution
	// key strings or view slices are allocated; memory grows only with the
	// number of DISTINCT views and constraints.
	in := solveInput{
		n:         n,
		numValues: numValues,
		inSets:    inSets,
		execLists: execLists,
	}
	total := int64(numAssignments) * int64(len(execLists))
	shards := par.NumShards(total)
	var views *viewIntern
	var constraints *constraintIntern
	if shards <= 1 {
		views, constraints = buildSolveTables(in, 0, total)
	} else {
		localViews := make([]*viewIntern, shards)
		localCons := make([]*constraintIntern, shards)
		par.ForEachShardN(total, shards, &par.Ctl{}, func(shard int, from, to int64, _ *par.Ctl) {
			localViews[shard], localCons[shard] = buildSolveTables(in, from, to)
		})
		views, constraints = mergeSolveTables(n, localViews, localCons)
	}

	res := SolveResult{Views: len(views.views), Executions: numAssignments * len(roundGraphs)}
	if numValues > 16 {
		return res, fmt.Errorf("protocol: solver supports ≤16 values, got %d", numValues)
	}

	// Flat, pointer-free search tables: execViews shares the constraint
	// arena, viewExecs is CSR over one backing array, and the per-execution
	// value counts live in a single flat slice — the search state stays off
	// the garbage collector's scan list.
	numCons := constraints.count()
	execViews := make([][]int32, numCons)
	for c := range execViews {
		execViews[c] = constraints.get(int32(c))
	}
	veStarts := make([]int32, len(views.views)+1)
	for _, ids := range execViews {
		for _, id := range ids {
			veStarts[id+1]++
		}
	}
	for i := 1; i < len(veStarts); i++ {
		veStarts[i] += veStarts[i-1]
	}
	veData := make([]int32, veStarts[len(veStarts)-1])
	fill := make([]int32, len(views.views))
	for c, ids := range execViews {
		for _, id := range ids {
			veData[veStarts[id]+fill[id]] = int32(c)
			fill[id]++
		}
	}

	s := &cspState{
		k:         k,
		numValues: numValues,
		execViews: execViews,
		decided:   make([]Value, len(views.views)),
		domains:   make([]uint16, len(views.views)),
		counts:    make([]int32, numCons*numValues),
		distinct:  make([]int32, numCons),
		valueMask: make([]uint16, numCons),
		veStarts:  veStarts,
		veData:    veData,
	}
	for i, v := range views.views {
		s.decided[i] = NoValue
		var dom uint16
		for _, val := range v {
			if val != NoValue {
				dom |= 1 << uint(val)
			}
		}
		s.domains[i] = dom
	}

	solved, err := s.search(&res.Nodes, nodeBudget)
	if err != nil {
		return res, err
	}
	if solved {
		table := make(map[string]Value, len(views.views))
		for id, v := range views.views {
			table[ViewKey(v)] = s.decided[id]
		}
		res.Solvable = true
		res.Map = &DecisionMap{R: 1, Table: table}
	}
	return res, nil
}

// solveInput is the read-only context of one table-building sweep.
type solveInput struct {
	n         int
	numValues int
	inSets    []bits.Set
	execLists [][]int32
}

// buildSolveTables interns the views and execution constraints of the ranks
// in [from, to), where rank r denotes assignment r/len(execLists) applied to
// list r%len(execLists), scanning in ascending rank order. Each worker shard
// gets its own intern tables; mergeSolveTables stitches them together.
func buildSolveTables(in solveInput, from, to int64) (*viewIntern, *constraintIntern) {
	views := newViewIntern(in.n)
	constraints := newConstraintIntern()
	if from >= to {
		return views, constraints
	}
	L := int64(len(in.execLists))
	assignment := make([]Value, in.n)
	assignmentFromRank(from/L, in.numValues, assignment)
	viewOfInSet := make([]int32, len(in.inSets))
	refresh := func() {
		for s, inSet := range in.inSets {
			viewOfInSet[s] = views.intern(inSet, assignment)
		}
	}
	refresh()
	scratch := make([]int32, 0, in.n)
	li := from % L
	for r := from; r < to; r++ {
		ids := scratch[:0]
		for _, s := range in.execLists[li] {
			ids = append(ids, viewOfInSet[s])
		}
		constraints.insert(sortDedupInt32(ids))
		li++
		if li == L {
			li = 0
			if r+1 < to {
				incCounter(assignment, in.numValues)
				refresh()
			}
		}
	}
	return views, constraints
}

// assignmentFromRank writes the rank-th assignment in incCounter order
// (last index least significant) into assignment.
func assignmentFromRank(rank int64, numValues int, assignment []Value) {
	for i := len(assignment) - 1; i >= 0; i-- {
		assignment[i] = Value(rank % int64(numValues))
		rank /= int64(numValues)
	}
}

// mergeSolveTables folds the per-shard intern tables into one global pair,
// in shard order. Shards cover contiguous ascending rank ranges, so
// first-encounter order across the merged shards equals the first-encounter
// order of a sequential sweep — view ids, constraint ids, and therefore the
// whole search are byte-identical to the single-shard path.
func mergeSolveTables(n int, localViews []*viewIntern, localCons []*constraintIntern) (*viewIntern, *constraintIntern) {
	views := newViewIntern(n)
	constraints := newConstraintIntern()
	scratch := make([]int32, 0, n)
	for s := range localViews {
		lv, lc := localViews[s], localCons[s]
		remap := make([]int32, len(lv.views))
		for id, v := range lv.views {
			remap[id] = views.internView(v, lv.hashes[id])
		}
		for c := 0; c < lc.count(); c++ {
			ids := lc.get(int32(c))
			mapped := scratch[:0]
			for _, id := range ids {
				mapped = append(mapped, remap[id])
			}
			// Remapping is injective, so only the order needs restoring.
			constraints.insert(sortDedupInt32(mapped))
		}
	}
	return views, constraints
}

// viewIntern deduplicates flattened views through an open-addressed hash
// table. Probing compares full view contents, so hash collisions are
// harmless; a View is allocated only for each DISTINCT view.
type viewIntern struct {
	n       int
	mask    uint64  // table length − 1 (power of two)
	slots   []int32 // view id + 1, 0 = empty
	views   []View
	hashes  []uint64
	scratch View
}

func newViewIntern(n int) *viewIntern {
	const initial = 256
	return &viewIntern{
		n:       n,
		mask:    initial - 1,
		slots:   make([]int32, initial),
		scratch: make(View, n),
	}
}

// intern flattens (in, assignment) into the scratch view and returns the id
// of the equal interned view, inserting it first if new.
func (vi *viewIntern) intern(in bits.Set, assignment []Value) int32 {
	v := vi.scratch
	for i := range v {
		v[i] = NoValue
	}
	for t := uint64(in); t != 0; t &= t - 1 {
		q := mathbits.TrailingZeros64(t)
		v[q] = assignment[q]
	}
	h := bits.Hash64Seed()
	for _, val := range v {
		h = bits.Hash64Mix(h, uint64(val+1))
	}
	idx := h & vi.mask
	for {
		slot := vi.slots[idx]
		if slot == 0 {
			break
		}
		id := slot - 1
		if vi.hashes[id] == h && viewsEqual(vi.views[id], v) {
			return id
		}
		idx = (idx + 1) & vi.mask
	}
	return vi.insertAt(idx, v.Clone(), h)
}

// internView interns an already-flattened view with a precomputed hash,
// taking ownership of v (the merge path hands over shard-local views whose
// tables are then discarded).
func (vi *viewIntern) internView(v View, h uint64) int32 {
	idx := h & vi.mask
	for {
		slot := vi.slots[idx]
		if slot == 0 {
			break
		}
		id := slot - 1
		if vi.hashes[id] == h && viewsEqual(vi.views[id], v) {
			return id
		}
		idx = (idx + 1) & vi.mask
	}
	return vi.insertAt(idx, v, h)
}

func (vi *viewIntern) insertAt(idx uint64, v View, h uint64) int32 {
	id := int32(len(vi.views))
	vi.views = append(vi.views, v)
	vi.hashes = append(vi.hashes, h)
	vi.slots[idx] = id + 1
	if uint64(len(vi.views))*4 > (vi.mask+1)*3 {
		vi.grow()
	}
	return id
}

func (vi *viewIntern) grow() {
	vi.mask = (vi.mask+1)*2 - 1
	vi.slots = make([]int32, vi.mask+1)
	for id, h := range vi.hashes {
		idx := h & vi.mask
		for vi.slots[idx] != 0 {
			idx = (idx + 1) & vi.mask
		}
		vi.slots[idx] = int32(id) + 1
	}
}

// constraintIntern is a hash SET of sorted view-id lists, open-addressed
// like viewIntern, with contents stored in one flat arena.
type constraintIntern struct {
	mask   uint64
	slots  []int32 // constraint index + 1, 0 = empty
	hashes []uint64
	arena  []int32
	offs   []int32 // constraint c = arena[offs[c]:offs[c+1]]
}

func newConstraintIntern() *constraintIntern {
	const initial = 256
	return &constraintIntern{
		mask:  initial - 1,
		slots: make([]int32, initial),
		offs:  []int32{0},
	}
}

func (ci *constraintIntern) get(c int32) []int32 {
	return ci.arena[ci.offs[c]:ci.offs[c+1]]
}

// count returns the number of interned lists.
func (ci *constraintIntern) count() int { return len(ci.offs) - 1 }

// insert reports whether ids (sorted, unique) was absent, adding it if so.
func (ci *constraintIntern) insert(ids []int32) bool {
	h := bits.Hash64Seed()
	for _, id := range ids {
		h = bits.Hash64Mix(h, uint64(id))
	}
	idx := h & ci.mask
	for {
		slot := ci.slots[idx]
		if slot == 0 {
			break
		}
		c := slot - 1
		if ci.hashes[c] == h && slices.Equal(ci.get(c), ids) {
			return false
		}
		idx = (idx + 1) & ci.mask
	}
	c := int32(len(ci.offs) - 1)
	ci.arena = append(ci.arena, ids...)
	ci.offs = append(ci.offs, int32(len(ci.arena)))
	ci.hashes = append(ci.hashes, h)
	ci.slots[idx] = c + 1
	if uint64(len(ci.hashes))*4 > (ci.mask+1)*3 {
		ci.grow()
	}
	return true
}

func (ci *constraintIntern) grow() {
	ci.mask = (ci.mask+1)*2 - 1
	ci.slots = make([]int32, ci.mask+1)
	for c, h := range ci.hashes {
		idx := h & ci.mask
		for ci.slots[idx] != 0 {
			idx = (idx + 1) & ci.mask
		}
		ci.slots[idx] = int32(c) + 1
	}
}

// sortDedupInt32 sorts ids in place (insertion sort; callers pass at most
// one entry per process) and drops adjacent duplicates.
func sortDedupInt32(ids []int32) []int32 {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// cspState is the forward-checking backtracking state of the decision-map
// search. The single inference rule: once an execution has k distinct
// decided values, every unassigned view in it must decide within that set
// (its domain intersects the execution's value mask); empty domains prune,
// singleton domains propagate.
type cspState struct {
	k         int
	numValues int
	execViews [][]int32
	decided   []Value
	domains   []uint16
	counts    []int32 // flat [execution][value] decision counts
	distinct  []int32
	valueMask []uint16 // per execution: values with count > 0
	// viewExecs in CSR form: view v touches constraint indices
	// veData[veStarts[v]:veStarts[v+1]], ascending.
	veStarts []int32
	veData   []int32
	trail    []trailEntry
}

type trailEntry struct {
	view      int
	oldDomain uint16
	assigned  bool // true: undo an assignment; false: restore oldDomain
}

// viewExecs returns the constraint indices touching view v.
func (s *cspState) viewExecs(v int) []int32 {
	return s.veData[s.veStarts[v]:s.veStarts[v+1]]
}

// assign commits view id to value d and runs propagation. It reports false
// on conflict; all state changes are recorded on the trail either way.
func (s *cspState) assign(id int, d Value) bool {
	queue := [][2]int{{id, int(d)}}
	for len(queue) > 0 {
		v, val := queue[0][0], Value(queue[0][1])
		queue = queue[1:]
		if s.decided[v] != NoValue {
			if s.decided[v] != val {
				return false
			}
			continue
		}
		if s.domains[v]&(1<<uint(val)) == 0 {
			return false
		}
		s.decided[v] = val
		s.trail = append(s.trail, trailEntry{view: v, assigned: true})
		for _, e := range s.viewExecs(v) {
			c := &s.counts[int(e)*s.numValues+int(val)]
			*c++
			if *c > 1 {
				continue
			}
			s.distinct[e]++
			s.valueMask[e] |= 1 << uint(val)
			if int(s.distinct[e]) > s.k {
				return false
			}
			if int(s.distinct[e]) < s.k {
				continue
			}
			// Execution e is saturated: restrict its unassigned views.
			for _, u := range s.execViews[e] {
				if s.decided[u] != NoValue {
					continue
				}
				nd := s.domains[u] & s.valueMask[e]
				if nd == s.domains[u] {
					continue
				}
				s.trail = append(s.trail, trailEntry{view: int(u), oldDomain: s.domains[u]})
				s.domains[u] = nd
				switch onesCount16(nd) {
				case 0:
					return false
				case 1:
					queue = append(queue, [2]int{int(u), trailingZeros16(nd)})
				}
			}
		}
	}
	return true
}

// unwind rolls the trail back to the given mark.
func (s *cspState) unwind(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		t := s.trail[i]
		if !t.assigned {
			s.domains[t.view] = t.oldDomain
			continue
		}
		val := s.decided[t.view]
		s.decided[t.view] = NoValue
		for _, e := range s.viewExecs(t.view) {
			c := &s.counts[int(e)*s.numValues+int(val)]
			*c--
			if *c == 0 {
				s.distinct[e]--
				s.valueMask[e] &^= 1 << uint(val)
			}
		}
	}
	s.trail = s.trail[:mark]
}

// search picks the unassigned view with the smallest domain (fail-first) and
// branches on its values.
func (s *cspState) search(nodes *int, budget int) (bool, error) {
	best, bestSize := -1, 17
	for v, d := range s.decided {
		if d != NoValue {
			continue
		}
		size := onesCount16(s.domains[v])
		if size < bestSize {
			best, bestSize = v, size
			if size <= 1 {
				break
			}
		}
	}
	if best == -1 {
		return true, nil // all views assigned
	}
	if *nodes >= budget {
		return false, fmt.Errorf("protocol: node budget %d exhausted", budget)
	}
	*nodes++
	dom := s.domains[best]
	for val := 0; val < s.numValues; val++ {
		if dom&(1<<uint(val)) == 0 {
			continue
		}
		mark := len(s.trail)
		if s.assign(best, Value(val)) {
			ok, err := s.search(nodes, budget)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		s.unwind(mark)
	}
	return false, nil
}

func onesCount16(x uint16) int { return mathbits.OnesCount16(x) }

func trailingZeros16(x uint16) int { return mathbits.TrailingZeros16(x) }
