package protocol

import (
	"fmt"
	mathbits "math/bits"
	"slices"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
)

// SolveResult is the outcome of an exhaustive decision-map search.
type SolveResult struct {
	// Solvable reports whether some oblivious one-round decision map solves
	// k-set agreement over the swept executions.
	Solvable bool
	// Map holds a solving decision map when Solvable.
	Map *DecisionMap
	// Views is the number of distinct flattened views.
	Views int
	// Executions is the number of constraint executions.
	Executions int
	// Nodes is the number of search nodes explored.
	Nodes int
}

// SolveOneRound decides, by exhaustive search over all oblivious decision
// maps, whether k-set agreement is solvable in one round when the adversary
// plays graphs from roundGraphs and initial values range over
// [0, numValues).
//
// Soundness notes:
//   - If the search fails over a SUBSET of the model's graphs, it fails over
//     the model a fortiori, so passing just the generators proves
//     impossibility for the whole closed-above model. Since one-round
//     full-information protocols are oblivious (§5), the impossibility
//     applies to all algorithms.
//   - If the search succeeds, the map solves k-set agreement over exactly
//     the swept graphs; pass the full closure (model.EnumerateGraphs) to
//     certify solvability on the model.
//   - Restricting decisions to values present in the view is WLOG for
//     numValues ≥ 2: any value outside the view fails validity in some
//     execution extending the view.
//
// To verify multi-round *oblivious* impossibility (Thm 6.10/6.11), pass the
// round-r product graphs: after r rounds a flattened view is determined by
// the product graph's in-neighborhoods, so the r-round oblivious question is
// exactly this one-round question on S^r.
//
// The search is exponential; nodeBudget bounds explored nodes (error when
// exhausted).
func SolveOneRound(roundGraphs []graph.Digraph, numValues, k, nodeBudget int) (SolveResult, error) {
	if len(roundGraphs) == 0 {
		return SolveResult{}, fmt.Errorf("protocol: no graphs to solve over")
	}
	if numValues < 2 {
		return SolveResult{}, fmt.Errorf("protocol: solver needs ≥2 values, got %d", numValues)
	}
	if k < 1 {
		return SolveResult{}, fmt.Errorf("protocol: k %d must be ≥ 1", k)
	}
	n := roundGraphs[0].N()
	numAssignments := 1
	for i := 0; i < n; i++ {
		numAssignments *= numValues
		if numAssignments > 1<<20 {
			return SolveResult{}, fmt.Errorf("protocol: %d^%d assignments too many", numValues, n)
		}
	}

	// The view of process p under graph g depends only on In_g(p) and the
	// assignment, so the distinct in-neighborhoods across all graphs are
	// collected once up front: per assignment, each distinct in-set is
	// flattened and interned exactly once instead of n×|graphs| times.
	inSetID := make(map[bits.Set]int)
	var inSets []bits.Set
	graphIn := make([][]int32, len(roundGraphs))
	for gi, g := range roundGraphs {
		row := make([]int32, n)
		for p := 0; p < n; p++ {
			in := g.In(p)
			id, ok := inSetID[in]
			if !ok {
				id = len(inSets)
				inSetID[in] = id
				inSets = append(inSets, in)
			}
			row[p] = int32(id)
		}
		graphIn[gi] = row
	}

	// Build the view universe and the execution constraints. Distinct
	// executions frequently induce identical view SETS (e.g. every graph of
	// a closure that leaves in-neighborhoods unchanged); since the
	// constraint "≤ k distinct decisions" depends only on the view set,
	// constraints are deduplicated, which shrinks hard instances by orders
	// of magnitude. Both tables intern through 64-bit hashes with full
	// content comparison — no per-execution key strings or view slices are
	// allocated; memory grows only with the number of DISTINCT views and
	// constraints.
	views := newViewIntern(n)
	constraints := newConstraintIntern()
	var execViews [][]int32 // per unique constraint, sorted unique view ids
	var viewExecs [][]int   // per view, ascending unique constraint indices
	totalExecs := 0

	assignment := make([]Value, n)
	viewOfInSet := make([]int32, len(inSets))
	scratchIDs := make([]int32, 0, n)
	for {
		for s, in := range inSets {
			viewOfInSet[s] = views.intern(in, assignment)
		}
		for id := len(viewExecs); id < len(views.views); id++ {
			viewExecs = append(viewExecs, nil)
		}
		for gi := range roundGraphs {
			totalExecs++
			row := graphIn[gi]
			ids := scratchIDs
			for p := 0; p < n; p++ {
				ids = append(ids, viewOfInSet[row[p]])
			}
			ids = sortDedupInt32(ids)
			if !constraints.insert(ids) {
				continue
			}
			e := len(execViews)
			cp := make([]int32, len(ids))
			copy(cp, ids)
			execViews = append(execViews, cp)
			for _, id := range ids {
				viewExecs[id] = append(viewExecs[id], e)
			}
		}
		if !incCounter(assignment, numValues) {
			break
		}
	}

	res := SolveResult{Views: len(views.views), Executions: totalExecs}
	if numValues > 16 {
		return res, fmt.Errorf("protocol: solver supports ≤16 values, got %d", numValues)
	}

	s := &cspState{
		k:         k,
		numValues: numValues,
		execViews: execViews,
		decided:   make([]Value, len(views.views)),
		domains:   make([]uint16, len(views.views)),
		counts:    make([][]int, len(execViews)),
		distinct:  make([]int, len(execViews)),
		valueMask: make([]uint16, len(execViews)),
		viewExecs: viewExecs,
	}
	for i, v := range views.views {
		s.decided[i] = NoValue
		var dom uint16
		for _, val := range v {
			if val != NoValue {
				dom |= 1 << uint(val)
			}
		}
		s.domains[i] = dom
	}
	for e := range execViews {
		s.counts[e] = make([]int, numValues)
	}

	solved, err := s.search(&res.Nodes, nodeBudget)
	if err != nil {
		return res, err
	}
	if solved {
		table := make(map[string]Value, len(views.views))
		for id, v := range views.views {
			table[ViewKey(v)] = s.decided[id]
		}
		res.Solvable = true
		res.Map = &DecisionMap{R: 1, Table: table}
	}
	return res, nil
}

// viewIntern deduplicates flattened views through an open-addressed hash
// table. Probing compares full view contents, so hash collisions are
// harmless; a View is allocated only for each DISTINCT view.
type viewIntern struct {
	n       int
	mask    uint64  // table length − 1 (power of two)
	slots   []int32 // view id + 1, 0 = empty
	views   []View
	hashes  []uint64
	scratch View
}

func newViewIntern(n int) *viewIntern {
	const initial = 256
	return &viewIntern{
		n:       n,
		mask:    initial - 1,
		slots:   make([]int32, initial),
		scratch: make(View, n),
	}
}

// intern flattens (in, assignment) into the scratch view and returns the id
// of the equal interned view, inserting it first if new.
func (vi *viewIntern) intern(in bits.Set, assignment []Value) int32 {
	v := vi.scratch
	for i := range v {
		v[i] = NoValue
	}
	for t := uint64(in); t != 0; t &= t - 1 {
		q := mathbits.TrailingZeros64(t)
		v[q] = assignment[q]
	}
	h := bits.Hash64Seed()
	for _, val := range v {
		h = bits.Hash64Mix(h, uint64(val+1))
	}
	idx := h & vi.mask
	for {
		slot := vi.slots[idx]
		if slot == 0 {
			break
		}
		id := slot - 1
		if vi.hashes[id] == h && viewsEqual(vi.views[id], v) {
			return id
		}
		idx = (idx + 1) & vi.mask
	}
	id := int32(len(vi.views))
	vi.views = append(vi.views, v.Clone())
	vi.hashes = append(vi.hashes, h)
	vi.slots[idx] = id + 1
	if uint64(len(vi.views))*4 > (vi.mask+1)*3 {
		vi.grow()
	}
	return id
}

func (vi *viewIntern) grow() {
	vi.mask = (vi.mask+1)*2 - 1
	vi.slots = make([]int32, vi.mask+1)
	for id, h := range vi.hashes {
		idx := h & vi.mask
		for vi.slots[idx] != 0 {
			idx = (idx + 1) & vi.mask
		}
		vi.slots[idx] = int32(id) + 1
	}
}

// constraintIntern is a hash SET of sorted view-id lists, open-addressed
// like viewIntern, with contents stored in one flat arena.
type constraintIntern struct {
	mask   uint64
	slots  []int32 // constraint index + 1, 0 = empty
	hashes []uint64
	arena  []int32
	offs   []int32 // constraint c = arena[offs[c]:offs[c+1]]
}

func newConstraintIntern() *constraintIntern {
	const initial = 256
	return &constraintIntern{
		mask:  initial - 1,
		slots: make([]int32, initial),
		offs:  []int32{0},
	}
}

func (ci *constraintIntern) get(c int32) []int32 {
	return ci.arena[ci.offs[c]:ci.offs[c+1]]
}

// insert reports whether ids (sorted, unique) was absent, adding it if so.
func (ci *constraintIntern) insert(ids []int32) bool {
	h := bits.Hash64Seed()
	for _, id := range ids {
		h = bits.Hash64Mix(h, uint64(id))
	}
	idx := h & ci.mask
	for {
		slot := ci.slots[idx]
		if slot == 0 {
			break
		}
		c := slot - 1
		if ci.hashes[c] == h && slices.Equal(ci.get(c), ids) {
			return false
		}
		idx = (idx + 1) & ci.mask
	}
	c := int32(len(ci.offs) - 1)
	ci.arena = append(ci.arena, ids...)
	ci.offs = append(ci.offs, int32(len(ci.arena)))
	ci.hashes = append(ci.hashes, h)
	ci.slots[idx] = c + 1
	if uint64(len(ci.hashes))*4 > (ci.mask+1)*3 {
		ci.grow()
	}
	return true
}

func (ci *constraintIntern) grow() {
	ci.mask = (ci.mask+1)*2 - 1
	ci.slots = make([]int32, ci.mask+1)
	for c, h := range ci.hashes {
		idx := h & ci.mask
		for ci.slots[idx] != 0 {
			idx = (idx + 1) & ci.mask
		}
		ci.slots[idx] = int32(c) + 1
	}
}

// sortDedupInt32 sorts ids in place (insertion sort; callers pass at most
// one entry per process) and drops adjacent duplicates.
func sortDedupInt32(ids []int32) []int32 {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// cspState is the forward-checking backtracking state of the decision-map
// search. The single inference rule: once an execution has k distinct
// decided values, every unassigned view in it must decide within that set
// (its domain intersects the execution's value mask); empty domains prune,
// singleton domains propagate.
type cspState struct {
	k         int
	numValues int
	execViews [][]int32
	decided   []Value
	domains   []uint16
	counts    [][]int
	distinct  []int
	valueMask []uint16 // per execution: values with count > 0
	viewExecs [][]int
	trail     []trailEntry
}

type trailEntry struct {
	view      int
	oldDomain uint16
	assigned  bool // true: undo an assignment; false: restore oldDomain
}

// assign commits view id to value d and runs propagation. It reports false
// on conflict; all state changes are recorded on the trail either way.
func (s *cspState) assign(id int, d Value) bool {
	queue := [][2]int{{id, int(d)}}
	for len(queue) > 0 {
		v, val := queue[0][0], Value(queue[0][1])
		queue = queue[1:]
		if s.decided[v] != NoValue {
			if s.decided[v] != val {
				return false
			}
			continue
		}
		if s.domains[v]&(1<<uint(val)) == 0 {
			return false
		}
		s.decided[v] = val
		s.trail = append(s.trail, trailEntry{view: v, assigned: true})
		for _, e := range s.viewExecs[v] {
			s.counts[e][val]++
			if s.counts[e][val] > 1 {
				continue
			}
			s.distinct[e]++
			s.valueMask[e] |= 1 << uint(val)
			if s.distinct[e] > s.k {
				return false
			}
			if s.distinct[e] < s.k {
				continue
			}
			// Execution e is saturated: restrict its unassigned views.
			for _, u := range s.execViews[e] {
				if s.decided[u] != NoValue {
					continue
				}
				nd := s.domains[u] & s.valueMask[e]
				if nd == s.domains[u] {
					continue
				}
				s.trail = append(s.trail, trailEntry{view: int(u), oldDomain: s.domains[u]})
				s.domains[u] = nd
				switch onesCount16(nd) {
				case 0:
					return false
				case 1:
					queue = append(queue, [2]int{int(u), trailingZeros16(nd)})
				}
			}
		}
	}
	return true
}

// unwind rolls the trail back to the given mark.
func (s *cspState) unwind(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		t := s.trail[i]
		if !t.assigned {
			s.domains[t.view] = t.oldDomain
			continue
		}
		val := s.decided[t.view]
		s.decided[t.view] = NoValue
		for _, e := range s.viewExecs[t.view] {
			s.counts[e][val]--
			if s.counts[e][val] == 0 {
				s.distinct[e]--
				s.valueMask[e] &^= 1 << uint(val)
			}
		}
	}
	s.trail = s.trail[:mark]
}

// search picks the unassigned view with the smallest domain (fail-first) and
// branches on its values.
func (s *cspState) search(nodes *int, budget int) (bool, error) {
	best, bestSize := -1, 17
	for v, d := range s.decided {
		if d != NoValue {
			continue
		}
		size := onesCount16(s.domains[v])
		if size < bestSize {
			best, bestSize = v, size
			if size <= 1 {
				break
			}
		}
	}
	if best == -1 {
		return true, nil // all views assigned
	}
	if *nodes >= budget {
		return false, fmt.Errorf("protocol: node budget %d exhausted", budget)
	}
	*nodes++
	dom := s.domains[best]
	for val := 0; val < s.numValues; val++ {
		if dom&(1<<uint(val)) == 0 {
			continue
		}
		mark := len(s.trail)
		if s.assign(best, Value(val)) {
			ok, err := s.search(nodes, budget)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		s.unwind(mark)
	}
	return false, nil
}

func onesCount16(x uint16) int { return mathbits.OnesCount16(x) }

func trailingZeros16(x uint16) int { return mathbits.TrailingZeros16(x) }
