package protocol

import (
	"context"
	"fmt"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/runctx"
)

var (
	obsSolves = obs.DefaultRegistry().Counter("kset_solver_solves_total",
		"SolveOneRound invocations")
	obsSolveNodes = obs.DefaultRegistry().Counter("kset_solver_nodes_total",
		"deterministic search nodes accounted across all solves")
)

// This file is the entry layer of the decision-map solver. The engine is
// layered across four files:
//
//	solver.go          input validation, table-build orchestration, engine
//	                   dispatch (SolveOneRound)
//	solver_tables.go   interning sweeps and flat search tables
//	solver_state.go    backtracking state + nogood store
//	solver_search.go   sequential oracle and learning DFS
//	solver_parallel.go probe / decompose / work-steal / reduce engine
//	                   and the SetSearchEngine / DefaultNodeBudget config

// SolveResult is the outcome of an exhaustive decision-map search.
type SolveResult struct {
	// Solvable reports whether some oblivious one-round decision map solves
	// k-set agreement over the swept executions.
	Solvable bool
	// Map holds a solving decision map when Solvable. Both engines return
	// the lexicographically-first witness under the shared branch order, so
	// the map is identical across engines and parallelism settings.
	Map *DecisionMap
	// Views is the number of distinct flattened views.
	Views int
	// Executions is the number of constraint executions.
	Executions int
	// Nodes is the number of search nodes explored, under the active
	// engine's deterministic accounting (identical for every -parallelism).
	Nodes int
	// Stats details the parallel engine's per-phase accounting.
	Stats SearchStats
}

// SolveOneRound decides, by exhaustive search over all oblivious decision
// maps, whether k-set agreement is solvable in one round when the adversary
// plays graphs from roundGraphs and initial values range over
// [0, numValues).
//
// Soundness notes:
//   - If the search fails over a SUBSET of the model's graphs, it fails over
//     the model a fortiori, so passing just the generators proves
//     impossibility for the whole closed-above model. Since one-round
//     full-information protocols are oblivious (§5), the impossibility
//     applies to all algorithms.
//   - If the search succeeds, the map solves k-set agreement over exactly
//     the swept graphs; pass the full closure (model.EnumerateGraphs) to
//     certify solvability on the model.
//   - Restricting decisions to values present in the view is WLOG for
//     numValues ≥ 2: any value outside the view fails validity in some
//     execution extending the view.
//
// To verify multi-round *oblivious* impossibility (Thm 6.10/6.11), pass the
// round-r product graphs: after r rounds a flattened view is determined by
// the product graph's in-neighborhoods, so the r-round oblivious question is
// exactly this one-round question on S^r.
//
// The assignments × graphs constraint sweep is sharded across the par
// worker pool with per-shard intern tables, merged in shard order, and the
// search phase runs on the engine selected by SetSearchEngine — by default
// the work-stealing learning engine, whose rank-ordered reduction keeps the
// whole SolveResult identical to a sequential run of the same engine for
// every parallelism setting (see solver_parallel.go).
//
// The search is exponential; nodeBudget bounds explored nodes (error when
// exhausted).
func SolveOneRound(roundGraphs []graph.Digraph, numValues, k, nodeBudget int) (SolveResult, error) {
	return SolveOneRoundEngineCtx(runctx.Base(), roundGraphs, numValues, k, nodeBudget, CurrentSearchEngine())
}

// SolveOneRoundCtx is SolveOneRound bound to a context: cancellation or
// deadline expiry aborts the search cooperatively (table build, probe, task
// sweep — all within one shard / ~128 nodes of polling granularity) and
// returns a wrapped context error. Runs that complete are byte-identical to
// uncancelled SolveOneRound calls.
func SolveOneRoundCtx(ctx context.Context, roundGraphs []graph.Digraph, numValues, k, nodeBudget int) (SolveResult, error) {
	return SolveOneRoundEngineCtx(ctx, roundGraphs, numValues, k, nodeBudget, CurrentSearchEngine())
}

// SolveOneRoundEngine is SolveOneRound pinned to an explicit search engine,
// for callers (cross-checks, experiments) that must not flip the
// process-wide SetSearchEngine state under concurrent solves.
func SolveOneRoundEngine(roundGraphs []graph.Digraph, numValues, k, nodeBudget int, engine SearchEngine) (SolveResult, error) {
	return SolveOneRoundEngineCtx(runctx.Base(), roundGraphs, numValues, k, nodeBudget, engine)
}

// SolveOneRoundEngineCtx is the context-aware engine-pinned entry the other
// three SolveOneRound variants delegate to.
func SolveOneRoundEngineCtx(ctx context.Context, roundGraphs []graph.Digraph, numValues, k, nodeBudget int, engine SearchEngine) (SolveResult, error) {
	if len(roundGraphs) == 0 {
		return SolveResult{}, fmt.Errorf("protocol: no graphs to solve over")
	}
	if numValues < 2 {
		return SolveResult{}, fmt.Errorf("protocol: solver needs ≥2 values, got %d", numValues)
	}
	if k < 1 {
		return SolveResult{}, fmt.Errorf("protocol: k %d must be ≥ 1", k)
	}
	n := roundGraphs[0].N()
	obsSolves.Inc()
	ctx, solveSpan := obs.StartSpan(ctx, "solver.solve")
	solveSpan.SetInt("graphs", int64(len(roundGraphs)))
	solveSpan.SetInt("values", int64(numValues))
	solveSpan.SetInt("k", int64(k))
	defer solveSpan.End()
	numAssignments := 1
	for i := 0; i < n; i++ {
		numAssignments *= numValues
		if numAssignments > 1<<20 {
			return SolveResult{}, fmt.Errorf("protocol: %d^%d assignments too many", numValues, n)
		}
	}

	// The view of process p under graph g depends only on In_g(p) and the
	// assignment, so the distinct in-neighborhoods across all graphs are
	// collected once up front: per assignment, each distinct in-set is
	// flattened and interned exactly once instead of n×|graphs| times.
	inSetID := make(map[bits.Set]int)
	var inSets []bits.Set
	graphIn := make([][]int32, len(roundGraphs))
	for gi, g := range roundGraphs {
		row := make([]int32, n)
		for p := 0; p < n; p++ {
			in := g.In(p)
			id, ok := inSetID[in]
			if !ok {
				id = len(inSets)
				inSetID[in] = id
				inSets = append(inSets, in)
			}
			row[p] = int32(id)
		}
		graphIn[gi] = row
	}

	// A graph enters a constraint only through its SET of in-neighborhoods:
	// two graphs with the same sorted-unique in-set-id list induce identical
	// constraints under every assignment. Closures are full of such
	// duplicates (e.g. the n=4 star closure has 1695 graphs but only 447
	// distinct lists), so the per-assignment sweep runs over the deduped
	// lists. Dedup preserves first-occurrence order, which keeps the
	// constraint numbering identical to a graph-by-graph sweep.
	lists := newConstraintIntern()
	idScratch := make([]int32, 0, n)
	for _, row := range graphIn {
		ids := idScratch[:0]
		for p := 0; p < n; p++ {
			ids = append(ids, row[p])
		}
		lists.insert(sortDedupInt32(ids))
	}
	execLists := make([][]int32, lists.count())
	for c := range execLists {
		execLists[c] = lists.get(int32(c))
	}

	// Build the view universe and the execution constraints over the rank
	// space assignments × lists. Distinct executions frequently induce
	// identical view SETS; since the constraint "≤ k distinct decisions"
	// depends only on the view set, constraints are deduplicated, which
	// shrinks hard instances by orders of magnitude. Both tables intern
	// through 64-bit hashes with full content comparison — no per-execution
	// key strings or view slices are allocated; memory grows only with the
	// number of DISTINCT views and constraints.
	in := solveInput{
		n:         n,
		numValues: numValues,
		inSets:    inSets,
		execLists: execLists,
	}
	total := int64(numAssignments) * int64(len(execLists))
	shards := par.NumShards(total)
	var views *viewIntern
	var constraints *constraintIntern
	tableCtx, tableSpan := obs.StartSpan(ctx, "solver.tables")
	defer tableSpan.End() // idempotent: records at the explicit End below
	tableCtl := &par.Ctl{}
	if shards <= 1 {
		if err := par.ForEachShardNCtx(tableCtx, total, 1, tableCtl, func(_ int, from, to int64, _ *par.Ctl) {
			views, constraints = buildSolveTables(in, from, to)
		}); err != nil {
			return SolveResult{}, cancelCause(tableCtl, ctx)
		}
	} else {
		localViews := make([]*viewIntern, shards)
		localCons := make([]*constraintIntern, shards)
		if err := par.ForEachShardNCtx(tableCtx, total, shards, tableCtl, func(shard int, from, to int64, _ *par.Ctl) {
			localViews[shard], localCons[shard] = buildSolveTables(in, from, to)
		}); err != nil {
			// Cancelled mid-build: some shard tables are missing, so the
			// merge (and everything after it) is off the table.
			return SolveResult{}, cancelCause(tableCtl, ctx)
		}
		if tableCtl.Stopped() {
			return SolveResult{}, cancelCause(tableCtl, ctx)
		}
		views, constraints = mergeSolveTables(n, localViews, localCons)
	}

	tableSpan.SetInt("views", int64(len(views.views)))
	tableSpan.SetInt("constraints", int64(constraints.count()))
	tableSpan.End()

	res := SolveResult{Views: len(views.views), Executions: numAssignments * len(roundGraphs)}
	if numValues > 16 {
		return res, fmt.Errorf("protocol: solver supports ≤16 values, got %d", numValues)
	}

	t := assembleTables(k, numValues, views, constraints)
	switch engine {
	case SearchSeq:
		s := newCSPState(t, nil, nil)
		var stop func() bool
		if ctx != nil && ctx.Done() != nil {
			seqCtl := &par.Ctl{}
			release := seqCtl.Bind(ctx)
			defer release()
			stop = seqCtl.Stopped
		}
		solved, err := s.searchSeq(&res.Nodes, nodeBudget, stop)
		if err != nil {
			if err == errSolveCancelled {
				return res, cancelCause(nil, ctx)
			}
			return res, err
		}
		if solved {
			res.Solvable = true
			res.Map = t.decisionMap(s.decided)
		}
	default:
		out, err := solveParallel(ctx, t, nodeBudget)
		res.Nodes = out.nodes
		res.Stats = out.stats
		if err != nil {
			return res, err
		}
		if out.solved {
			res.Solvable = true
			res.Map = t.decisionMap(out.decided)
		}
	}
	obsSolveNodes.Add(uint64(res.Nodes))
	solveSpan.SetInt("nodes", int64(res.Nodes))
	solveSpan.SetInt("solvable", boolInt(res.Solvable))
	return res, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
