package protocol

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"ksettop/internal/graph"
)

// SolveResult is the outcome of an exhaustive decision-map search.
type SolveResult struct {
	// Solvable reports whether some oblivious one-round decision map solves
	// k-set agreement over the swept executions.
	Solvable bool
	// Map holds a solving decision map when Solvable.
	Map *DecisionMap
	// Views is the number of distinct flattened views.
	Views int
	// Executions is the number of constraint executions.
	Executions int
	// Nodes is the number of search nodes explored.
	Nodes int
}

// SolveOneRound decides, by exhaustive search over all oblivious decision
// maps, whether k-set agreement is solvable in one round when the adversary
// plays graphs from roundGraphs and initial values range over
// [0, numValues).
//
// Soundness notes:
//   - If the search fails over a SUBSET of the model's graphs, it fails over
//     the model a fortiori, so passing just the generators proves
//     impossibility for the whole closed-above model. Since one-round
//     full-information protocols are oblivious (§5), the impossibility
//     applies to all algorithms.
//   - If the search succeeds, the map solves k-set agreement over exactly
//     the swept graphs; pass the full closure (model.EnumerateGraphs) to
//     certify solvability on the model.
//   - Restricting decisions to values present in the view is WLOG for
//     numValues ≥ 2: any value outside the view fails validity in some
//     execution extending the view.
//
// To verify multi-round *oblivious* impossibility (Thm 6.10/6.11), pass the
// round-r product graphs: after r rounds a flattened view is determined by
// the product graph's in-neighborhoods, so the r-round oblivious question is
// exactly this one-round question on S^r.
//
// The search is exponential; nodeBudget bounds explored nodes (error when
// exhausted).
func SolveOneRound(roundGraphs []graph.Digraph, numValues, k, nodeBudget int) (SolveResult, error) {
	if len(roundGraphs) == 0 {
		return SolveResult{}, fmt.Errorf("protocol: no graphs to solve over")
	}
	if numValues < 2 {
		return SolveResult{}, fmt.Errorf("protocol: solver needs ≥2 values, got %d", numValues)
	}
	if k < 1 {
		return SolveResult{}, fmt.Errorf("protocol: k %d must be ≥ 1", k)
	}
	n := roundGraphs[0].N()
	numAssignments := 1
	for i := 0; i < n; i++ {
		numAssignments *= numValues
		if numAssignments > 1<<20 {
			return SolveResult{}, fmt.Errorf("protocol: %d^%d assignments too many", numValues, n)
		}
	}

	// Build the view universe and the execution constraints. Distinct
	// executions frequently induce identical view SETS (e.g. every graph of
	// a closure that leaves in-neighborhoods unchanged); since the
	// constraint "≤ k distinct decisions" depends only on the view set,
	// constraints are deduplicated, which shrinks hard instances by orders
	// of magnitude.
	type viewInfo struct {
		id     int
		values []Value // distinct values present, ascending: the domain
		execs  []int
	}
	views := make(map[string]*viewInfo)
	var viewList []*viewInfo
	var execViews [][]int // per unique constraint, sorted unique view ids
	seenConstraint := make(map[string]bool)
	totalExecs := 0

	assignment := make([]Value, n)
	for {
		for _, g := range roundGraphs {
			totalExecs++
			ids := make([]int, 0, n)
			for p := 0; p < n; p++ {
				v := NewView(n)
				g.In(p).ForEach(func(q int) { v[q] = assignment[q] })
				key := ViewKey(v)
				info, ok := views[key]
				if !ok {
					info = &viewInfo{id: len(viewList), values: v.DistinctValues()}
					sort.Ints(info.values)
					views[key] = info
					viewList = append(viewList, info)
				}
				ids = append(ids, info.id)
			}
			sort.Ints(ids)
			ids = dedupInts(ids)
			ckey := constraintKey(ids)
			if seenConstraint[ckey] {
				continue
			}
			seenConstraint[ckey] = true
			e := len(execViews)
			execViews = append(execViews, ids)
			for _, id := range ids {
				info := viewList[id]
				if len(info.execs) == 0 || info.execs[len(info.execs)-1] != e {
					info.execs = append(info.execs, e)
				}
			}
		}
		if !incCounter(assignment, numValues) {
			break
		}
	}

	res := SolveResult{Views: len(viewList), Executions: totalExecs}
	if numValues > 16 {
		return res, fmt.Errorf("protocol: solver supports ≤16 values, got %d", numValues)
	}

	s := &cspState{
		k:         k,
		numValues: numValues,
		execViews: execViews,
		decided:   make([]Value, len(viewList)),
		domains:   make([]uint16, len(viewList)),
		counts:    make([][]int, len(execViews)),
		distinct:  make([]int, len(execViews)),
		valueMask: make([]uint16, len(execViews)),
		viewExecs: make([][]int, len(viewList)),
	}
	for i, info := range viewList {
		s.decided[i] = NoValue
		var dom uint16
		for _, v := range info.values {
			dom |= 1 << uint(v)
		}
		s.domains[i] = dom
		s.viewExecs[i] = info.execs
	}
	for e := range execViews {
		s.counts[e] = make([]int, numValues)
	}

	solved, err := s.search(&res.Nodes, nodeBudget)
	if err != nil {
		return res, err
	}
	if solved {
		table := make(map[string]Value, len(views))
		for key, info := range views {
			table[key] = s.decided[info.id]
		}
		res.Solvable = true
		res.Map = &DecisionMap{R: 1, Table: table}
	}
	return res, nil
}

// cspState is the forward-checking backtracking state of the decision-map
// search. The single inference rule: once an execution has k distinct
// decided values, every unassigned view in it must decide within that set
// (its domain intersects the execution's value mask); empty domains prune,
// singleton domains propagate.
type cspState struct {
	k         int
	numValues int
	execViews [][]int
	decided   []Value
	domains   []uint16
	counts    [][]int
	distinct  []int
	valueMask []uint16 // per execution: values with count > 0
	viewExecs [][]int
	trail     []trailEntry
}

type trailEntry struct {
	view      int
	oldDomain uint16
	assigned  bool // true: undo an assignment; false: restore oldDomain
}

// assign commits view id to value d and runs propagation. It reports false
// on conflict; all state changes are recorded on the trail either way.
func (s *cspState) assign(id int, d Value) bool {
	queue := [][2]int{{id, int(d)}}
	for len(queue) > 0 {
		v, val := queue[0][0], Value(queue[0][1])
		queue = queue[1:]
		if s.decided[v] != NoValue {
			if s.decided[v] != val {
				return false
			}
			continue
		}
		if s.domains[v]&(1<<uint(val)) == 0 {
			return false
		}
		s.decided[v] = val
		s.trail = append(s.trail, trailEntry{view: v, assigned: true})
		for _, e := range s.viewExecs[v] {
			s.counts[e][val]++
			if s.counts[e][val] > 1 {
				continue
			}
			s.distinct[e]++
			s.valueMask[e] |= 1 << uint(val)
			if s.distinct[e] > s.k {
				return false
			}
			if s.distinct[e] < s.k {
				continue
			}
			// Execution e is saturated: restrict its unassigned views.
			for _, u := range s.execViews[e] {
				if s.decided[u] != NoValue {
					continue
				}
				nd := s.domains[u] & s.valueMask[e]
				if nd == s.domains[u] {
					continue
				}
				s.trail = append(s.trail, trailEntry{view: u, oldDomain: s.domains[u]})
				s.domains[u] = nd
				switch onesCount16(nd) {
				case 0:
					return false
				case 1:
					queue = append(queue, [2]int{u, trailingZeros16(nd)})
				}
			}
		}
	}
	return true
}

// unwind rolls the trail back to the given mark.
func (s *cspState) unwind(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		t := s.trail[i]
		if !t.assigned {
			s.domains[t.view] = t.oldDomain
			continue
		}
		val := s.decided[t.view]
		s.decided[t.view] = NoValue
		for _, e := range s.viewExecs[t.view] {
			s.counts[e][val]--
			if s.counts[e][val] == 0 {
				s.distinct[e]--
				s.valueMask[e] &^= 1 << uint(val)
			}
		}
	}
	s.trail = s.trail[:mark]
}

// search picks the unassigned view with the smallest domain (fail-first) and
// branches on its values.
func (s *cspState) search(nodes *int, budget int) (bool, error) {
	best, bestSize := -1, 17
	for v, d := range s.decided {
		if d != NoValue {
			continue
		}
		size := onesCount16(s.domains[v])
		if size < bestSize {
			best, bestSize = v, size
			if size <= 1 {
				break
			}
		}
	}
	if best == -1 {
		return true, nil // all views assigned
	}
	if *nodes >= budget {
		return false, fmt.Errorf("protocol: node budget %d exhausted", budget)
	}
	*nodes++
	dom := s.domains[best]
	for val := 0; val < s.numValues; val++ {
		if dom&(1<<uint(val)) == 0 {
			continue
		}
		mark := len(s.trail)
		if s.assign(best, Value(val)) {
			ok, err := s.search(nodes, budget)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		s.unwind(mark)
	}
	return false, nil
}

func onesCount16(x uint16) int { return mathbits.OnesCount16(x) }

func trailingZeros16(x uint16) int { return mathbits.TrailingZeros16(x) }

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func constraintKey(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), ',')
	}
	return string(b)
}
