package protocol

import (
	"strings"
	"testing"

	"ksettop/internal/graph"
	"ksettop/internal/model"
	"ksettop/internal/par"
)

// corpusInstances builds a battery of small instances the sequential oracle
// can finish, spanning SAT and UNSAT, closures and generator subsets.
func corpusInstances(t *testing.T) []struct {
	name   string
	graphs []graph.Digraph
	vals   int
	k      int
} {
	t.Helper()
	var out []struct {
		name   string
		graphs []graph.Digraph
		vals   int
		k      int
	}
	add := func(name string, graphs []graph.Digraph, vals, k int) {
		out = append(out, struct {
			name   string
			graphs []graph.Digraph
			vals   int
			k      int
		}{name, graphs, vals, k})
	}

	clique, _ := graph.Complete(3)
	add("clique3-consensus", []graph.Digraph{clique}, 2, 1)

	star3, err := model.NonEmptyKernelModel(3)
	if err != nil {
		t.Fatal(err)
	}
	star3All, err := star3.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	add("star3-closure-k2", star3All, 3, 2)        // UNSAT (Thm 6.13)
	add("star3-closure-k3", star3All, 2, 3)        // SAT (trivial k=n)
	add("star3-gens-k2", star3.Generators(), 3, 2) // SAT (weak adversary)

	cyc3, _ := graph.Cycle(3)
	cyc3m, _ := model.Simple(cyc3)
	cycAll, err := cyc3m.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	add("cycle3-closure-k1", cycAll, 2, 1) // UNSAT (γ = 2)
	add("cycle3-closure-k2", cycAll, 3, 2) // SAT

	tour, err := model.TournamentModel(3)
	if err != nil {
		t.Fatal(err)
	}
	tourAll, err := tour.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	add("tournament3-k2", tourAll, 3, 2) // UNSAT (wait-free)
	add("tournament3-k3", tourAll, 2, 3) // SAT

	cyc4, _ := graph.Cycle(4)
	sq, err := graph.Power(cyc4, 2)
	if err != nil {
		t.Fatal(err)
	}
	add("cycle4-squared-k1", []graph.Digraph{sq}, 2, 1) // UNSAT (γ(C₄²) = 2)
	return out
}

// sameMap compares witness maps for byte-identical content.
func sameMap(a, b *DecisionMap) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.R != b.R || len(a.Table) != len(b.Table) {
		return false
	}
	for k, v := range a.Table {
		if bv, ok := b.Table[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TestEnginesAgreeOnCorpus is the engine cross-check: on every corpus
// instance the work-stealing learning engine must agree with the sequential
// oracle on Solvable AND return the byte-identical witness map — both
// engines share the branch order, and learned-clause pruning only removes
// solution-free subtrees, so the lexicographically-first witness is the
// same. Checked at several parallelism settings, with the probe limit
// lowered so the decomposition and work-stealing layers actually engage on
// these small instances.
func TestEnginesAgreeOnCorpus(t *testing.T) {
	defer SetSearchEngine(SearchParallel)
	defer par.SetParallelism(0)
	defer SetSearchProbeLimit(0)
	for _, inst := range corpusInstances(t) {
		SetSearchEngine(SearchSeq)
		par.SetParallelism(1)
		want, err := SolveOneRound(inst.graphs, inst.vals, inst.k, 50_000_000)
		if err != nil {
			t.Fatalf("%s: seq oracle: %v", inst.name, err)
		}
		SetSearchEngine(SearchParallel)
		for _, probeLim := range []int{0, 4} { // stock, and forced-parallel-phase
			SetSearchProbeLimit(probeLim)
			for _, workers := range []int{1, 2, 8} {
				par.SetParallelism(workers)
				got, err := SolveOneRound(inst.graphs, inst.vals, inst.k, 50_000_000)
				if err != nil {
					t.Fatalf("%s probe=%d workers=%d: %v", inst.name, probeLim, workers, err)
				}
				if got.Solvable != want.Solvable {
					t.Errorf("%s probe=%d workers=%d: Solvable=%v, oracle says %v",
						inst.name, probeLim, workers, got.Solvable, want.Solvable)
				}
				if !sameMap(got.Map, want.Map) {
					t.Errorf("%s probe=%d workers=%d: witness map differs from oracle's",
						inst.name, probeLim, workers)
				}
			}
		}
		SetSearchProbeLimit(0)
	}
}

// TestNogoodStoreCompactAged pins the eviction policy directly: a full
// store keeps its higher-scored half — shorter clauses first (the LBD
// proxy), younger on equal length — renumbered in original relative order,
// with the occurrence index rebuilt to match.
func TestNogoodStoreCompactAged(t *testing.T) {
	ng := newNogoodStore(8, 4, 4, 16)
	ng.evict = true
	// numValues = 4, so literal key k belongs to view k/4.
	clauses := [][]int32{
		{0, 21, 26}, // id 0: len 3 (views 0,5,6) → evicted
		{4, 25},     // id 1: len 2 (views 1,6) → kept
		{8, 22, 30}, // id 2: len 3 (views 2,5,7) → evicted
		{12},        // id 3: len 1 (view 3) → kept (best score)
	}
	for _, cl := range clauses {
		if !ng.add(cl) {
			t.Fatalf("add(%v) rejected", cl)
		}
	}
	if !ng.full() {
		t.Fatal("store should be full at 4 clauses")
	}
	ng.compactAged()
	if got := ng.count(); got != 2 {
		t.Fatalf("compacted count = %d, want 2", got)
	}
	// Kept in original relative order: id 1 ({4,25}) then id 3 ({12}).
	if got := ng.clause(0); len(got) != 2 || got[0] != 4 || got[1] != 25 {
		t.Errorf("clause 0 = %v, want [4 25]", got)
	}
	if got := ng.clause(1); len(got) != 1 || got[0] != 12 {
		t.Errorf("clause 1 = %v, want [12]", got)
	}
	if occ := ng.occ[25]; len(occ) != 1 || occ[0] != 0 {
		t.Errorf("occ[25] = %v, want [0]", occ)
	}
	if occ := ng.occ[21]; len(occ) != 0 {
		t.Errorf("occ[21] = %v, want empty (clause evicted)", occ)
	}
	if ng.hasAny[0] {
		t.Error("hasAny[0] should clear: view 0's only literal was evicted")
	}
	// The store keeps learning after compaction.
	if !ng.add([]int32{11, 12}) {
		t.Error("post-compaction add rejected")
	}
}

// TestClauseBudgetDeterminism pins the SetClauseStoreBudget knob: on every
// corpus instance Solvable and the witness map are invariant across
// budgets — eviction changes how much is pruned, never what is reachable
// first — and at any fixed budget the full SolveResult (nodes and per-phase
// stats included) stays byte-identical across parallelism.
func TestClauseBudgetDeterminism(t *testing.T) {
	defer SetClauseStoreBudget(0)
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)
	for _, inst := range corpusInstances(t) {
		SetClauseStoreBudget(0)
		want, err := SolveOneRound(inst.graphs, inst.vals, inst.k, 50_000_000)
		if err != nil {
			t.Fatalf("%s: stock: %v", inst.name, err)
		}
		for _, budget := range []int{8, 64, 1024} {
			SetClauseStoreBudget(budget)
			// Probe limit forced low so the task sweep (and its budgeted
			// private stores) genuinely engages on these small instances.
			SetSearchProbeLimit(4)
			for _, workers := range []int{1, 8} {
				par.SetParallelism(workers)
				got, err := SolveOneRound(inst.graphs, inst.vals, inst.k, 50_000_000)
				if err != nil {
					t.Fatalf("%s budget=%d workers=%d: %v", inst.name, budget, workers, err)
				}
				if got.Solvable != want.Solvable {
					t.Errorf("%s budget=%d workers=%d: Solvable=%v, stock says %v",
						inst.name, budget, workers, got.Solvable, want.Solvable)
				}
				if !sameMap(got.Map, want.Map) {
					t.Errorf("%s budget=%d workers=%d: witness map differs from stock", inst.name, budget, workers)
				}
			}
			SetSearchProbeLimit(0)
		}
	}

	// A budget that makes the n=4 star-closure task stores (512/4 = 128
	// clauses) fill and evict without crippling the refutation — budgets
	// small enough to strip most learning push this instance toward the
	// multi-million-node honest search across 64 full-cap tasks, which is
	// exactly the documented tasks × budget worst case, not a test-sized
	// workload. The whole SolveResult must be identical at every worker
	// count, and the eviction must have changed the accounting vs stock
	// (otherwise this section pins nothing).
	m, err := model.NonEmptyKernelModel(4)
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	SetClauseStoreBudget(0)
	SetSearchProbeLimit(16)
	par.SetParallelism(1)
	stock, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	SetClauseStoreBudget(512)
	want, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if want.Solvable {
		t.Fatal("3-set agreement on Sym(star), n=4, must be impossible")
	}
	if want.Nodes == stock.Nodes && want.Stats == stock.Stats {
		t.Fatal("budget=512 did not change the accounting; eviction never engaged")
	}
	for _, workers := range []int{2, 5, 8} {
		par.SetParallelism(workers)
		got, err := SolveOneRound(all, 4, 3, 50_000_000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("budget=512 workers=%d: SolveResult %+v differs from single-worker %+v", workers, got, want)
		}
	}
}

// TestParallelPhaseDeterministicAcrossParallelism forces the full
// probe → decompose → work-steal → reduce pipeline on the n=4 star-closure
// impossibility and requires the ENTIRE SolveResult (including Nodes and
// the per-phase Stats) to be identical at every worker count.
func TestParallelPhaseDeterministicAcrossParallelism(t *testing.T) {
	m, err := model.NonEmptyKernelModel(4)
	if err != nil {
		t.Fatal(err)
	}
	all, err := m.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	SetSearchProbeLimit(16) // force decomposition + task sweep
	defer SetSearchProbeLimit(0)
	defer par.SetParallelism(0)
	par.SetParallelism(1)
	want, err := SolveOneRound(all, 4, 3, 50_000_000)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if want.Solvable {
		t.Fatal("3-set agreement on Sym(star), n=4, must be impossible")
	}
	if want.Stats.Tasks == 0 || want.Stats.PrefixNodes == 0 {
		t.Fatalf("parallel phase did not engage: stats %+v", want.Stats)
	}
	for _, workers := range []int{2, 5, 8} {
		par.SetParallelism(workers)
		got, err := SolveOneRound(all, 4, 3, 50_000_000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: SolveResult %+v differs from single-worker %+v", workers, got, want)
		}
	}
}

// TestBudgetErrorsAgreeAcrossEnginesAndParallelism pins the node-budget
// error behavior: a tiny budget must fail identically on both engines and
// at every parallelism setting, and the error must name the budget.
func TestBudgetErrorsAgreeAcrossEnginesAndParallelism(t *testing.T) {
	// A SAT instance both engines need several decisions for: the 3 bare
	// stars (the weak-adversary instance). Budget 1 must trip identically.
	// (UNSAT closures are no use here — the learning engine legitimately
	// refutes the n=3 closure within a single branch point.)
	m, err := model.NonEmptyKernelModel(3)
	if err != nil {
		t.Fatal(err)
	}
	gens := m.Generators()
	defer SetSearchEngine(SearchParallel)
	defer par.SetParallelism(0)
	defer SetSearchProbeLimit(0)
	for _, engine := range []SearchEngine{SearchSeq, SearchParallel} {
		SetSearchEngine(engine)
		for _, workers := range []int{1, 8} {
			par.SetParallelism(workers)
			_, err := SolveOneRound(gens, 3, 2, 1)
			if err == nil || !strings.Contains(err.Error(), "node budget 1 exhausted") {
				t.Errorf("engine=%v workers=%d: want budget error, got %v", engine, workers, err)
			}
		}
	}
	// A budget that lands inside the task sweep must also fail identically
	// at every worker count (the rank-ordered reduction makes the trip
	// deterministic).
	SetSearchEngine(SearchParallel)
	SetSearchProbeLimit(4)
	m4, err := model.NonEmptyKernelModel(4)
	if err != nil {
		t.Fatal(err)
	}
	all4, err := m4.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	var firstErr string
	var firstNodes int
	for _, workers := range []int{1, 2, 8} {
		par.SetParallelism(workers)
		res, err := SolveOneRound(all4, 4, 3, 60)
		if err == nil {
			t.Fatalf("workers=%d: want a mid-sweep budget error, got %+v", workers, res)
		}
		if workers == 1 {
			firstErr, firstNodes = err.Error(), res.Nodes
			continue
		}
		if err.Error() != firstErr || res.Nodes != firstNodes {
			t.Errorf("workers=%d: budget trip (%q, %d nodes) differs from single-worker (%q, %d nodes)",
				workers, err.Error(), res.Nodes, firstErr, firstNodes)
		}
	}
}

// TestLearningEngineMatchesOracleNodesOnSATPath sanity-checks that the
// parallel engine's witness, run through the exhaustive checker, actually
// solves the instance (guards against unsound pruning in conflict
// analysis).
func TestLearningEngineWitnessSolvesInstance(t *testing.T) {
	for _, inst := range corpusInstances(t) {
		res, err := SolveOneRound(inst.graphs, inst.vals, inst.k, 50_000_000)
		if err != nil {
			t.Fatalf("%s: %v", inst.name, err)
		}
		if !res.Solvable {
			continue
		}
		check, err := WorstCase(inst.graphs, inst.vals, 1, *res.Map, 2_000_000)
		if err != nil {
			t.Fatalf("%s: WorstCase: %v", inst.name, err)
		}
		if check.WorstDistinct > inst.k {
			t.Errorf("%s: witness decides %d values, want ≤ %d", inst.name, check.WorstDistinct, inst.k)
		}
	}
}

// TestPooledStateCleanAfterWitnessTask is the regression test for a pooled
// cspState recycled after a SAT task: the witness path used to leave the
// CBJ frames open, so the released state carried stale frameOf entries
// into the next task and corrupted closeLevel's backjump target. runTask
// must release states with every frameOf cleared and the trail back at the
// facts mark.
func TestPooledStateCleanAfterWitnessTask(t *testing.T) {
	// A tiny hand-built SAT instance: three views sharing one execution,
	// two values, k=1 (consensus on the shared execution — satisfiable by
	// deciding one value everywhere).
	tables := &solveTables{
		k:         1,
		numValues: 2,
		views:     []View{{0}, {0, 1}, {1}},
		execViews: [][]int32{{0, 1, 2}},
		veStarts:  []int32{0, 1, 2, 3},
		veData:    []int32{0, 0, 0},
		initDomains: []uint16{
			0b11, 0b11, 0b11,
		},
		valueOrder: []Value{0, 1},
	}
	pr := &parallelRun{
		tables:   tables,
		shared:   newNogoodStore(len(tables.views), tables.numValues, maxSharedNogoods, maxNogoodLen),
		taskCap:  1000,
		budget:   1000,
		ctl:      &par.Ctl{},
		frontier: make(map[string]searchTask),
	}
	pr.addFrontier(searchTask{})
	pr.runTask(searchTask{}, nil)
	if len(pr.records) != 1 || pr.records[0].status != taskWitness {
		t.Fatalf("expected a witness record, got %+v", pr.records)
	}
	s := pr.statePool.Get().(*cspState)
	for v, f := range s.frameOf {
		if f != -1 {
			t.Errorf("released state has stale frameOf[%d] = %d", v, f)
		}
	}
	if len(s.trail) != s.factsMark {
		t.Errorf("released state trail length %d, want facts mark %d", len(s.trail), s.factsMark)
	}
	for v, d := range s.decided {
		if d != NoValue && onesCount16(tables.initDomains[v]) != 1 {
			t.Errorf("released state still has non-fact view %d decided", v)
		}
	}
}
