package protocol

import (
	mathbits "math/bits"
	"sort"
)

// This file is the state layer of the decision-map solver: the
// forward-checking backtracking state shared by both search engines, the
// reason bookkeeping that conflict analysis resolves into decision-literal
// nogoods, and the bounded nogood (conflict-clause) store.

// nogoodStore is a bounded set of learned conflict clauses. A clause is a
// set of decision literals (litKey-packed view/value pairs) that cannot all
// hold in any solution — the product of conflict analysis resolving a dead
// end back to the decisions that caused it. The stock bounding policy is
// append-only up to maxClauses (first-learned kept, deterministic); with
// evict set (the SetClauseStoreBudget knob) a full store instead ages out
// its lower-scored half — longest clauses first (length is the engine's
// LBD stand-in: fewer decision literals prune more), oldest among equals —
// and keeps learning. Occurrence lists index clauses by literal so
// assignment can maintain per-clause matched-literal counters.
//
// Sharing discipline: the probe phase writes the shared store; once the
// parallel phase starts it is frozen and read concurrently by every worker
// (read-mostly by construction — no synchronization needed). Each subtree
// task learns into its own private store on top. Eviction only ever runs
// while a store is private to one goroutine (probe or task), so it is as
// schedule-free as the appends.
type nogoodStore struct {
	numValues  int
	maxClauses int
	maxLen     int
	evict      bool
	lens       []int32           // literal count per clause
	litOffs    []int32           // clause c = lits[litOffs[c]:litOffs[c+1]]
	lits       []int32           // flat literal arena
	hasAny     []bool            // view -> appears in some clause (cheap filter)
	occ        map[int32][]int32 // literal key -> clause ids
}

func newNogoodStore(numViews, numValues, maxClauses, maxLen int) *nogoodStore {
	return &nogoodStore{
		numValues:  numValues,
		maxClauses: maxClauses,
		maxLen:     maxLen,
		litOffs:    []int32{0},
		hasAny:     make([]bool, numViews),
		occ:        make(map[int32][]int32),
	}
}

// full reports whether the store has reached its clause bound.
func (ng *nogoodStore) full() bool { return len(ng.lens) >= ng.maxClauses }

// compactAged evicts the store down to half its bound, keeping the
// higher-scored clauses: shorter first (the LBD proxy), younger on equal
// length. Kept clauses are renumbered in their original relative order, so
// the rebuild — and therefore every later occurrence-list walk — is a pure
// function of the learning history. The caller owns resynchronizing any
// matched counters (cspState.rebuildLearnMatched).
func (ng *nogoodStore) compactAged() {
	n := len(ng.lens)
	keep := ng.maxClauses / 2
	if keep < 1 {
		keep = 1
	}
	if keep >= n {
		return
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if ng.lens[a] != ng.lens[b] {
			return ng.lens[a] < ng.lens[b]
		}
		return a > b
	})
	ids = ids[:keep]
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	type span struct{ from, to int32 }
	spans := make([]span, keep)
	for k, c := range ids {
		spans[k] = span{ng.litOffs[c], ng.litOffs[c+1]}
	}
	lits := ng.lits[:0]
	lens := ng.lens[:0]
	litOffs := ng.litOffs[:1]
	for i := range ng.hasAny {
		ng.hasAny[i] = false
	}
	clear(ng.occ)
	for k, sp := range spans {
		keys := ng.lits[sp.from:sp.to]
		// In-place forward compaction: the write position never passes the
		// source span (ids are ascending and evictions only move data left).
		lits = append(lits, keys...)
		lens = append(lens, sp.to-sp.from)
		litOffs = append(litOffs, int32(len(lits)))
		for _, key := range lits[litOffs[k]:litOffs[k+1]] {
			ng.occ[key] = append(ng.occ[key], int32(k))
			ng.hasAny[int(key)/ng.numValues] = true
		}
	}
	ng.lits, ng.lens, ng.litOffs = lits, lens, litOffs
}

// count returns the number of recorded clauses.
func (ng *nogoodStore) count() int { return len(ng.lens) }

// clause returns the literal keys of clause c.
func (ng *nogoodStore) clause(c int32) []int32 {
	return ng.lits[ng.litOffs[c]:ng.litOffs[c+1]]
}

// add records keys as a clause, reporting whether it was stored (clauses
// beyond the store bound or length cap are dropped — the search stays
// sound, just prunes less).
func (ng *nogoodStore) add(keys []int32) bool {
	if len(keys) == 0 || len(keys) > ng.maxLen || len(ng.lens) >= ng.maxClauses {
		return false
	}
	c := int32(len(ng.lens))
	ng.lens = append(ng.lens, int32(len(keys)))
	ng.lits = append(ng.lits, keys...)
	ng.litOffs = append(ng.litOffs, int32(len(ng.lits)))
	for _, key := range keys {
		ng.occ[key] = append(ng.occ[key], c)
		ng.hasAny[int(key)/ng.numValues] = true
	}
	return true
}

// conflictKind tags what assign tripped over, so conflict analysis knows
// which reason chain to unwind.
type conflictKind int8

const (
	conflictNone conflictKind = iota
	// conflictExec: execution conflictID accumulated k+1 distinct values.
	conflictExec
	// conflictView: view conflictID lost its whole domain (or an implied
	// value was gone / contradicted by the time it was applied).
	conflictView
	// conflictClause: a learned clause became fully matched; conflictID is
	// the global clause index (frozen clauses first, then local).
	conflictClause
)

// cspState is the forward-checking backtracking state of the decision-map
// search. The single inference rule: once an execution has k distinct
// decided values, every unassigned view in it must decide within that set
// (its domain intersects the execution's value mask); empty domains prune,
// singleton domains propagate. On top of that, the matched-literal counters
// of the frozen and local nogood stores flag a conflict as soon as the
// current assignment covers a learned clause.
//
// Reason bookkeeping for conflict analysis:
//   - firstSetter[e·numValues+v] is the view whose assignment first put
//     value v into execution e's mask. Valid while the count is positive;
//     stale entries are never read (stack discipline: later setters unwind
//     first).
//   - removedBy[u·numValues+v] is the execution whose saturation removed
//     value v from view u's domain. Valid while the value is removed;
//     removals are monotone within a branch, so one live writer each.
//   - isDecision[u] marks branch decisions (and task prefix assumptions),
//     the literals conflict analysis resolves everything back to.
type cspState struct {
	t         *solveTables
	k         int
	numValues int
	execViews [][]int32
	decided   []Value
	domains   []uint16
	counts    []int32 // flat [execution][value] decision counts
	distinct  []int32
	valueMask []uint16 // per execution: values with count > 0
	// viewExecs in CSR form: view v touches constraint indices
	// veData[veStarts[v]:veStarts[v+1]], ascending.
	veStarts []int32
	veData   []int32
	trail    []trailEntry

	firstSetter []int32
	removedBy   []int32
	isDecision  []bool

	// frozen is the read-only shared clause store (nil for the oracle);
	// learn is this state's private, writable store (nil when learning is
	// off). ngMatched counts currently-assigned literals per clause, frozen
	// clauses first, then learned clauses offset by frozenCount.
	frozen      *nogoodStore
	learn       *nogoodStore
	frozenCount int
	ngMatched   []int32

	// conflict descriptor: the FIRST conflict the latest failing assign
	// detected.
	conflict   conflictKind
	conflictID int32

	// frameOf[u] is the search-frame index of decision view u (-1 for
	// implied views and task prefix assumptions); seen/seenEpoch dedup the
	// conflict-analysis worklist.
	frameOf   []int32
	seen      []int32
	seenEpoch int32

	// factsMark is the trail length right after propagateFacts — the reset
	// point for pooled task states.
	factsMark int
}

// newCSPState builds a fresh search state over the shared tables. frozen is
// consulted read-only; learn receives clauses recorded via learnNogood.
func newCSPState(t *solveTables, frozen, learn *nogoodStore) *cspState {
	numViews := len(t.views)
	s := &cspState{
		t:           t,
		k:           t.k,
		numValues:   t.numValues,
		execViews:   t.execViews,
		decided:     make([]Value, numViews),
		domains:     append([]uint16(nil), t.initDomains...),
		counts:      make([]int32, len(t.execViews)*t.numValues),
		distinct:    make([]int32, len(t.execViews)),
		valueMask:   make([]uint16, len(t.execViews)),
		veStarts:    t.veStarts,
		veData:      t.veData,
		firstSetter: make([]int32, len(t.execViews)*t.numValues),
		removedBy:   make([]int32, numViews*t.numValues),
		isDecision:  make([]bool, numViews),
		frozen:      frozen,
		learn:       learn,
		frameOf:     make([]int32, numViews),
		seen:        make([]int32, numViews),
	}
	for i := range s.decided {
		s.decided[i] = NoValue
		s.frameOf[i] = -1
	}
	if frozen != nil {
		s.frozenCount = frozen.count()
	}
	n := s.frozenCount
	if learn != nil {
		n += learn.count()
	}
	if n > 0 {
		s.ngMatched = make([]int32, n)
	}
	return s
}

// resetForTask returns a recycled state to its post-fact-propagation
// condition (mark = the trail length right after propagateFacts) with a
// fresh private clause store. The caller must have let the previous task
// finish normally (every search path unwinds fully except a found witness,
// which the task copies out before release), so unwinding to the facts
// mark restores domains, counts, masks and the frozen-store matched
// counters exactly; the facts themselves stay assigned — they are implied
// by the instance, identical for every task, and never appear as clause
// literals (a singleton-domain view is never picked as a decision), so
// keeping them costs nothing and saves re-propagating the whole constraint
// table per task. Only the private-store counters need truncating.
func (s *cspState) resetForTask(mark int, learn *nogoodStore) {
	s.unwind(mark)
	s.learn = learn
	s.ngMatched = s.ngMatched[:s.frozenCount]
	s.conflict, s.conflictID = conflictNone, 0
}

type trailEntry struct {
	view      int
	oldDomain uint16
	assigned  bool // true: undo an assignment; false: restore oldDomain
}

// viewExecs returns the constraint indices touching view v.
func (s *cspState) viewExecs(v int) []int32 {
	return s.veData[s.veStarts[v]:s.veStarts[v+1]]
}

// learnNogood records the decision-literal keys as a conflict clause in the
// local store. The caller guarantees every literal is currently assigned,
// so the new clause's matched counter starts fully saturated and unwinds
// symmetrically as the decisions roll back. Under a clause-store budget a
// full store first ages out its lower-scored half; the compaction renumbers
// the surviving clauses, so the private matched counters are rebuilt from
// the current assignment.
func (s *cspState) learnNogood(keys []int32) {
	if s.learn == nil || len(keys) == 0 {
		return
	}
	if s.learn.evict && s.learn.full() {
		s.learn.compactAged()
		s.rebuildLearnMatched()
	}
	if s.learn.add(keys) {
		s.ngMatched = append(s.ngMatched, int32(len(keys)))
	}
}

// rebuildLearnMatched recomputes the private-store matched counters from
// the current assignment after a compaction renumbered the clauses. A
// clause's counter is exactly the number of its literals the trail
// currently satisfies (assign/unwind maintain the same invariant
// incrementally), so recomputing from scratch cannot drift.
func (s *cspState) rebuildLearnMatched() {
	s.ngMatched = s.ngMatched[:s.frozenCount]
	for c := int32(0); c < int32(s.learn.count()); c++ {
		matched := int32(0)
		for _, key := range s.learn.clause(c) {
			v := int(key) / s.numValues
			if s.decided[v] != NoValue && litKey(v, s.decided[v], s.numValues) == key {
				matched++
			}
		}
		s.ngMatched = append(s.ngMatched, matched)
	}
}

// bumpNogoods adjusts the matched counters of every clause containing the
// literal (v, val) by delta and reports whether some clause became fully
// matched (a conflict), recording the first such clause in the conflict
// descriptor.
func (s *cspState) bumpNogoods(v int, val Value, delta int32) bool {
	conflict := false
	key := litKey(v, val, s.numValues)
	if s.frozen != nil && s.frozen.hasAny[v] {
		lens := s.frozen.lens
		for _, c := range s.frozen.occ[key] {
			s.ngMatched[c] += delta
			if delta > 0 && s.ngMatched[c] == lens[c] && !conflict {
				conflict = true
				s.noteConflict(conflictClause, c)
			}
		}
	}
	if s.learn != nil && s.learn.hasAny[v] {
		off := int32(s.frozenCount)
		lens := s.learn.lens
		for _, c := range s.learn.occ[key] {
			s.ngMatched[off+c] += delta
			if delta > 0 && s.ngMatched[off+c] == lens[c] && !conflict {
				conflict = true
				s.noteConflict(conflictClause, off+c)
			}
		}
	}
	return conflict
}

// noteConflict records the first conflict of the current assign.
func (s *cspState) noteConflict(kind conflictKind, id int32) {
	if s.conflict == conflictNone {
		s.conflict, s.conflictID = kind, id
	}
}

// assign commits view id to value d (asDecision marks it a branch decision
// or prefix assumption for conflict analysis) and runs propagation. It
// reports false on conflict, leaving the conflict descriptor set; all state
// changes are recorded on the trail either way.
//
// Bookkeeping is all-or-nothing per assignment: even after a conflict is
// detected, the per-execution count/distinct/mask updates and the nogood
// matched counters run to completion for the assignment being committed, so
// unwind's full-list decrements mirror them exactly. (The seed engine
// returned mid-loop here, leaving partially-incremented counts that unwind
// then fully decremented — counts went negative, later assignments
// double-counted distinct values, and the search pruned on phantom
// conflicts.)
func (s *cspState) assign(id int, d Value, asDecision bool) bool {
	s.conflict, s.conflictID = conflictNone, 0
	queue := [][2]int{{id, int(d)}}
	first := asDecision
	for len(queue) > 0 {
		v, val := queue[0][0], Value(queue[0][1])
		queue = queue[1:]
		if s.decided[v] != NoValue {
			if s.decided[v] != val {
				s.noteConflict(conflictView, int32(v))
				return false
			}
			continue
		}
		if s.domains[v]&(1<<uint(val)) == 0 {
			s.noteConflict(conflictView, int32(v))
			return false
		}
		s.decided[v] = val
		s.isDecision[v] = first
		first = false
		s.trail = append(s.trail, trailEntry{view: v, assigned: true})
		conflict := s.bumpNogoods(v, val, 1)
		for _, e := range s.viewExecs(v) {
			c := &s.counts[int(e)*s.numValues+int(val)]
			*c++
			if *c > 1 {
				continue
			}
			s.firstSetter[int(e)*s.numValues+int(val)] = int32(v)
			s.distinct[e]++
			s.valueMask[e] |= 1 << uint(val)
			if int(s.distinct[e]) > s.k {
				if !conflict {
					conflict = true
					s.noteConflict(conflictExec, e)
				}
				continue
			}
			if conflict || int(s.distinct[e]) < s.k {
				continue
			}
			// Execution e is saturated: restrict its unassigned views.
			for _, u := range s.execViews[e] {
				if s.decided[u] != NoValue {
					continue
				}
				nd := s.domains[u] & s.valueMask[e]
				if nd == s.domains[u] {
					continue
				}
				s.trail = append(s.trail, trailEntry{view: int(u), oldDomain: s.domains[u]})
				for rm := s.domains[u] &^ nd; rm != 0; rm &= rm - 1 {
					s.removedBy[int(u)*s.numValues+mathbits.TrailingZeros16(rm)] = e
				}
				s.domains[u] = nd
				switch onesCount16(nd) {
				case 0:
					conflict = true
					s.noteConflict(conflictView, u)
				case 1:
					queue = append(queue, [2]int{int(u), trailingZeros16(nd)})
				}
				if conflict {
					break
				}
			}
		}
		if conflict {
			return false
		}
	}
	return true
}

// unwind rolls the trail back to the given mark.
func (s *cspState) unwind(mark int) {
	for i := len(s.trail) - 1; i >= mark; i-- {
		t := s.trail[i]
		if !t.assigned {
			s.domains[t.view] = t.oldDomain
			continue
		}
		val := s.decided[t.view]
		s.decided[t.view] = NoValue
		s.isDecision[t.view] = false
		s.bumpNogoods(t.view, val, -1)
		for _, e := range s.viewExecs(t.view) {
			c := &s.counts[int(e)*s.numValues+int(val)]
			*c--
			if *c == 0 {
				s.distinct[e]--
				s.valueMask[e] &^= 1 << uint(val)
			}
		}
	}
	s.trail = s.trail[:mark]
}

// propagateFacts assigns every view whose initial domain is a singleton
// (views that see exactly one distinct value). These are implications of
// the instance itself — no decision involved, so conflict analysis resolves
// them to nothing — and committing them once up front keeps them out of
// every branch point. Returns false if the facts alone are contradictory
// (the instance is UNSAT outright).
func (s *cspState) propagateFacts() bool {
	for v, dom := range s.t.initDomains {
		if s.decided[v] != NoValue || onesCount16(dom) != 1 {
			continue
		}
		if !s.assign(v, trailingZeros16(dom), false) {
			return false
		}
	}
	return true
}

// Conflict analysis ----------------------------------------------------------

// analyzeConflict resolves the current conflict descriptor back to the set
// of decision literals that caused it, returned as sorted litKeys — a valid
// nogood. Implied assignments are expanded through their reasons: a forced
// view through the removals that emptied the rest of its domain, each
// removal through the saturated execution's k first-setter views, until
// only decisions (and instance facts, which resolve to nothing) remain.
func (s *cspState) analyzeConflict() []int32 {
	var out []int32
	var work []int32
	s.seenEpoch++
	push := func(w int32) {
		if s.seen[w] != s.seenEpoch {
			s.seen[w] = s.seenEpoch
			work = append(work, w)
		}
	}
	pushExec := func(e int32) {
		for m := s.valueMask[e]; m != 0; m &= m - 1 {
			push(s.firstSetter[int(e)*s.numValues+mathbits.TrailingZeros16(m)])
		}
	}
	// expandRemovals pushes the reasons every currently-removed value of
	// view u is gone.
	expandRemovals := func(u int32) {
		removed := s.t.initDomains[u] &^ s.domains[u]
		for m := removed; m != 0; m &= m - 1 {
			pushExec(s.removedBy[int(u)*s.numValues+mathbits.TrailingZeros16(m)])
		}
	}
	switch s.conflict {
	case conflictExec:
		pushExec(s.conflictID)
	case conflictView:
		u := s.conflictID
		if s.decided[u] != NoValue {
			push(u)
		}
		expandRemovals(u)
	case conflictClause:
		c := s.conflictID
		var keys []int32
		if int(c) < s.frozenCount {
			keys = s.frozen.clause(c)
		} else {
			keys = s.learn.clause(c - int32(s.frozenCount))
		}
		for _, key := range keys {
			push(key / int32(s.numValues))
		}
	default:
		return nil
	}
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		if s.isDecision[w] {
			out = append(out, litKey(int(w), s.decided[w], s.numValues))
			continue
		}
		// Implied: forced because every other initial-domain value was
		// removed (instance facts have no other values — they resolve to
		// nothing, ending the chain).
		expandRemovals(w)
	}
	return sortDedupInt32(out)
}

// selectView picks the unassigned view with the smallest domain
// (fail-first, lowest id on ties), or -1 when every view is decided. Both
// engines use this selector, which keeps their branch orders — and
// therefore the witness a SAT search finds first — identical.
func (s *cspState) selectView() int {
	best, bestSize := -1, 17
	for v, d := range s.decided {
		if d != NoValue {
			continue
		}
		size := onesCount16(s.domains[v])
		if size < bestSize {
			best, bestSize = v, size
			if size <= 1 {
				break
			}
		}
	}
	return best
}

func onesCount16(x uint16) int { return mathbits.OnesCount16(x) }

func trailingZeros16(x uint16) int { return mathbits.TrailingZeros16(x) }
