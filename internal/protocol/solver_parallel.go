package protocol

import (
	"sort"
	"sync"
	"sync/atomic"

	"ksettop/internal/par"
)

// This file is the parallel engine of the decision-map solver: a sequential
// learning probe with a restart ladder, a deterministic decomposition of
// the top of the search tree into value-branch prefixes, a work-stealing
// sweep of those prefixes over the shared par.Deque, and a rank-ordered
// reduction that makes the reported SolveResult — Solvable, witness Map,
// node statistics and budget errors — byte-identical at every parallelism
// setting.
//
// Determinism argument, in deduction order:
//  1. The probe is sequential and its ladder thresholds are fixed, so its
//     outcome, node count and learned-clause store are schedule-free.
//  2. The shared store is frozen before decomposition; decomposition replays
//     deterministic prefixes against it, so the task list (and prefixNodes)
//     is schedule-free.
//  3. Each task searches its subtree with the frozen store plus a PRIVATE
//     learned store, and splits off sibling prefixes based only on its own
//     node counter — so every task's node count, learned count, outcome and
//     spawned children are schedule-free, no matter which worker runs it or
//     when it is stolen.
//  4. The reduction consumes task records in lexicographic prefix order and
//     stops at the first terminal event (witness or budget trip). Tasks at
//     ranks beyond the current best event are cancelled; by construction
//     they sort after the chosen event, so cancellation timing can never
//     change what the reduction sees.

// Engine and budget configuration -------------------------------------------

// SearchEngine selects the backtracking engine behind SolveOneRound.
type SearchEngine int32

const (
	// SearchParallel is the work-stealing learning engine (the default).
	SearchParallel SearchEngine = iota
	// SearchSeq is the seed sequential backtracking oracle, kept as a
	// cross-check (-search=seq on the CLIs).
	SearchSeq
)

var searchEngine atomic.Int32

// SetSearchEngine switches the process-wide search engine.
func SetSearchEngine(e SearchEngine) { searchEngine.Store(int32(e)) }

// CurrentSearchEngine reports the process-wide search engine.
func CurrentSearchEngine() SearchEngine { return SearchEngine(searchEngine.Load()) }

// defaultNodeBudget is the stock search budget CLI tools and experiments
// use when no -solver-budget is given.
const defaultNodeBudget = 50_000_000

var nodeBudgetOverride atomic.Int64

// DefaultNodeBudget returns the process-wide default solver node budget
// (settable via SetDefaultNodeBudget / the -solver-budget flag).
func DefaultNodeBudget() int {
	if n := nodeBudgetOverride.Load(); n > 0 {
		return int(n)
	}
	return defaultNodeBudget
}

// SetDefaultNodeBudget overrides the default solver node budget; n ≤ 0
// restores the stock value.
func SetDefaultNodeBudget(n int) {
	if n < 0 {
		n = 0
	}
	nodeBudgetOverride.Store(int64(n))
}

// Tuning constants of the parallel engine. These are part of the node
// accounting: changing them changes Nodes/Stats (deterministically), so
// they are compile-time constants, with only the probe limit exposed as a
// knob for tests and benchmarks that need to force the parallel phase on
// small instances.
const (
	// stockProbeLimit bounds the sequential probe phase.
	stockProbeLimit = 1 << 15
	// probeLadderBase is the first restart threshold; each restart
	// quadruples it.
	probeLadderBase = 1 << 12
	// maxSharedNogoods bounds the probe's shared clause store.
	maxSharedNogoods = 1 << 13
	// maxTaskNogoods bounds each subtree task's private store.
	maxTaskNogoods = 1 << 11
	// maxNogoodLen drops clauses longer than this many decisions.
	maxNogoodLen = 16
	// targetTasks is how many value-branch prefixes decomposition aims
	// for. Fixed (NOT derived from Parallelism()) so the task tree — and
	// with it the node accounting — is identical at every worker count.
	targetTasks = 64
	// maxExpansions caps decomposition work when branching is degenerate.
	maxExpansions = 4 * targetTasks
	// splitNodeThreshold: a task that has already spent this many nodes
	// and still faces ≥2 untried value branches along its open frames
	// hands its whole remaining frontier (the depth-first spine) to the
	// deque as fresh prefix tasks.
	splitNodeThreshold = 1 << 10
)

var probeLimitOverride atomic.Int64

// SetSearchProbeLimit overrides the parallel engine's sequential probe
// limit (n ≤ 0 restores the stock value). Results remain deterministic
// across parallelism for any fixed value; node statistics are only
// comparable between runs using the same limit. Intended for tests and
// benchmarks that must force the work-stealing phase on small instances.
func SetSearchProbeLimit(n int) {
	if n < 0 {
		n = 0
	}
	probeLimitOverride.Store(int64(n))
}

func probeLimit() int {
	if n := probeLimitOverride.Load(); n > 0 {
		return int(n)
	}
	return stockProbeLimit
}

var clauseBudgetOverride atomic.Int64

// SetClauseStoreBudget bounds the learned-clause stores and switches them
// from the stock append-only truncation to deterministic aging/eviction: a
// full store drops its lower-scored half (longest clauses first — length is
// the LBD stand-in — oldest among equals) and keeps learning. n is the
// shared probe store's clause bound; each subtree task's private store gets
// max(n/4, 16). n ≤ 0 restores the stock policy (append-only at the
// compile-time bounds). Solvable and the witness map are invariant across
// budgets — learned clauses only prune solution-free subtrees and the
// branch order is fixed — while node statistics are comparable only between
// runs using the same budget (each is still byte-identical across
// -parallelism).
func SetClauseStoreBudget(n int) {
	if n < 0 {
		n = 0
	}
	clauseBudgetOverride.Store(int64(n))
}

// CurrentClauseStoreBudget reports the clause-store budget (0 = stock).
func CurrentClauseStoreBudget() int { return int(clauseBudgetOverride.Load()) }

// newSharedNogoodStore builds the probe's shared clause store under the
// active bounding policy.
func newSharedNogoodStore(numViews, numValues int) *nogoodStore {
	if n := clauseBudgetOverride.Load(); n > 0 {
		ng := newNogoodStore(numViews, numValues, int(n), maxNogoodLen)
		ng.evict = true
		return ng
	}
	return newNogoodStore(numViews, numValues, maxSharedNogoods, maxNogoodLen)
}

// newTaskNogoodStore builds one subtree task's private clause store under
// the active bounding policy.
func newTaskNogoodStore(numViews, numValues int) *nogoodStore {
	if n := clauseBudgetOverride.Load(); n > 0 {
		budget := int(n) / 4
		if budget < 16 {
			budget = 16
		}
		ng := newNogoodStore(numViews, numValues, budget, maxNogoodLen)
		ng.evict = true
		return ng
	}
	return newNogoodStore(numViews, numValues, maxTaskNogoods, maxNogoodLen)
}

// SearchStats breaks the engine's deterministic node accounting down by
// phase. All fields are identical for every parallelism setting; under
// SearchSeq they stay zero (SolveResult.Nodes carries the count).
type SearchStats struct {
	// ProbeNodes is the sequential learning probe's node count.
	ProbeNodes int
	// PrefixNodes is the decomposition's branch-point count.
	PrefixNodes int
	// TaskNodes sums the node counts of the task records the rank-ordered
	// reduction consumed (every task on an UNSAT instance; tasks up to the
	// witness on a SAT one).
	TaskNodes int
	// Tasks is the number of task records the reduction consumed.
	Tasks int
	// SharedNogoods is the frozen store's clause count after the probe.
	SharedNogoods int
	// TaskNogoods sums the private clauses learned by consumed tasks.
	TaskNogoods int
}

// Probe phase ----------------------------------------------------------------

type probeOutcome struct {
	status searchStatus // statusSolved | statusRefuted | statusCapped
	nodes  int
	state  *cspState // holds the witness assignment when solved
}

// probe runs the sequential CBJ search under a restart ladder: each
// attempt's node cap quadruples, conflict clauses persist across restarts
// in the shared store, and the phase ends when the instance is decided or
// the probe limit (or the budget, if smaller) is exhausted.
func probe(t *solveTables, shared *nogoodStore, budget int) probeOutcome {
	s := newCSPState(t, nil, shared)
	if !s.propagateFacts() {
		return probeOutcome{status: statusRefuted, state: s}
	}
	if s.selectView() == -1 {
		// The facts alone complete the assignment.
		return probeOutcome{status: statusSolved, state: s}
	}
	limit := probeLimit()
	if budget < limit {
		limit = budget
	}
	used := 0
	ladder := probeLadderBase
	for {
		attempt := ladder
		if rest := limit - used; attempt > rest {
			attempt = rest
		}
		ctx := &cbjCtx{s: s, cap: attempt}
		st := ctx.run()
		used += ctx.nodes
		if st == statusSolved || st == statusRefuted {
			return probeOutcome{status: st, nodes: used, state: s}
		}
		if used >= limit {
			return probeOutcome{status: statusCapped, nodes: used, state: s}
		}
		ladder *= 4
	}
}

// Decomposition --------------------------------------------------------------

// searchTask is one unexplored value-branch prefix of the search tree.
// path is the branch-index route from the root (positions in the static
// value order at each decision), decisions the corresponding litKeys.
type searchTask struct {
	path      []uint8
	decisions []int32
}

type taskStatus int8

const (
	taskCompleted taskStatus = iota // subtree exhaustively refuted
	taskWitness                     // found its lexicographically-first solution
	taskBudget                      // tripped the per-task node cap
	taskCancelled                   // aborted after observing a lower-ranked event
)

// taskRecord is one task's deterministic outcome.
type taskRecord struct {
	path    []uint8
	nodes   int
	learned int
	status  taskStatus
	decided []Value // witness assignment when status == taskWitness
}

// decompose splits the top of the search tree into at least targetTasks
// value-branch prefixes (branching permitting) by breadth-first expansion
// in branch order. Prefixes that complete the assignment during expansion
// become witness records directly. Returns the open prefixes, the records,
// and the number of branch points expanded.
func decompose(t *solveTables, shared *nogoodStore) ([]searchTask, []taskRecord, int) {
	queue := []searchTask{{}}
	var records []taskRecord
	prefixNodes := 0
	s := newCSPState(t, shared, nil)
	if !s.propagateFacts() {
		// Unreachable: the probe refutes fact-level contradictions before
		// the parallel phase starts.
		return nil, nil, 0
	}
	factsMark := len(s.trail)
	for exp := 0; len(queue) > 0 && len(queue) < targetTasks && exp < maxExpansions; exp++ {
		p := queue[0]
		queue = queue[1:]
		if !replayPrefix(s, p.decisions) {
			// Unreachable: the prefix assigned cleanly when it was created
			// and replay against the same frozen store is deterministic;
			// treat as a refuted prefix if it ever fires.
			s.unwind(factsMark)
			continue
		}
		best := s.selectView()
		if best == -1 {
			records = append(records, taskRecord{
				path:    p.path,
				status:  taskWitness,
				decided: append([]Value(nil), s.decided...),
			})
			s.unwind(factsMark)
			continue
		}
		prefixNodes++
		dom := s.domains[best]
		for i, val := range t.valueOrder {
			if dom&(1<<uint(val)) == 0 {
				continue
			}
			mark := len(s.trail)
			if s.assign(best, val, true) {
				child := searchTask{
					path:      append(append([]uint8(nil), p.path...), uint8(i)),
					decisions: append(append([]int32(nil), p.decisions...), litKey(best, val, t.numValues)),
				}
				queue = append(queue, child)
			}
			s.unwind(mark)
		}
		s.unwind(factsMark)
	}
	return queue, records, prefixNodes
}

// replayPrefix re-applies a task's decision prefix (as assumptions) onto a
// state holding only pre-propagated facts, reporting whether every
// assignment succeeded.
func replayPrefix(s *cspState, decisions []int32) bool {
	for _, key := range decisions {
		if !s.assign(int(key)/s.numValues, Value(int(key)%s.numValues), true) {
			return false
		}
	}
	return true
}

// pathLess is the lexicographic order on branch paths (a proper prefix
// sorts before its extensions).
func pathLess(a, b []uint8) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Work-stealing sweep --------------------------------------------------------

// parallelRun is the shared coordination state of one work-stealing sweep.
type parallelRun struct {
	tables  *solveTables
	shared  *nogoodStore
	taskCap int // per-task node cap (the budget minus probe and prefix nodes)

	// statePool recycles cspStates between tasks: the big flat arrays
	// (counts, firstSetter, matched counters) are identical after an
	// unwind to the post-facts mark, so a recycled state only needs a
	// fresh private clause store. Which worker reuses which state is
	// scheduling-dependent, but a reset state is indistinguishable from a
	// fresh one, so results stay deterministic.
	statePool sync.Pool

	mu      sync.Mutex
	records []taskRecord
	// bound is the lexicographically-smallest event path published so far;
	// tasks whose root path sorts after it abort. Stored behind an atomic
	// pointer so the hot cancellation poll is a single load.
	bound atomic.Pointer[[]uint8]
}

// cancelledFor reports whether a task rooted at path is dominated by an
// already-published event.
func (pr *parallelRun) cancelledFor(path []uint8) bool {
	b := pr.bound.Load()
	return b != nil && pathLess(*b, path)
}

// record stores a task outcome and publishes its path as the new bound when
// it is a terminal event ranked below the current one.
func (pr *parallelRun) record(r taskRecord) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.records = append(pr.records, r)
	if r.status != taskWitness && r.status != taskBudget {
		return
	}
	if cur := pr.bound.Load(); cur == nil || pathLess(r.path, *cur) {
		p := append([]uint8(nil), r.path...)
		pr.bound.Store(&p)
	}
}

// runTask searches one prefix's subtree. The root branch point handles
// work splitting: once the task has burned splitNodeThreshold nodes, every
// still-untried root value is spawned onto the deque as its own task and
// this task retires.
func (pr *parallelRun) runTask(task searchTask, d *par.Deque) {
	if pr.cancelledFor(task.path) {
		pr.record(taskRecord{path: task.path, status: taskCancelled})
		return
	}
	t := pr.tables
	local := newTaskNogoodStore(len(t.views), t.numValues)
	var s *cspState
	if pooled := pr.statePool.Get(); pooled != nil {
		s = pooled.(*cspState)
		s.resetForTask(s.factsMark, local)
	} else {
		s = newCSPState(t, pr.shared, local)
		if !s.propagateFacts() {
			// Unreachable: the probe refutes fact-level contradictions
			// before the parallel phase starts.
			pr.record(taskRecord{path: task.path, status: taskCompleted})
			return
		}
		s.factsMark = len(s.trail)
	}
	defer pr.statePool.Put(s)
	if !replayPrefix(s, task.decisions) {
		// A split-spawned sibling whose root value turns out inconsistent:
		// refuted without branching, zero nodes.
		pr.record(taskRecord{path: task.path, status: taskCompleted})
		return
	}
	ctx := &cbjCtx{
		s:              s,
		cap:            pr.taskCap,
		stop:           func() bool { return pr.cancelledFor(task.path) },
		splitThreshold: splitNodeThreshold,
	}
	ctx.spawn = func(pathSuffix []uint8, decisions []int32) {
		// Hand an untried value-branch prefix to the deque; whoever steals
		// it restarts from the (deterministic) extended prefix.
		child := searchTask{
			path:      append(append([]uint8(nil), task.path...), pathSuffix...),
			decisions: append(append([]int32(nil), task.decisions...), decisions...),
		}
		d.Spawn(func(dd *par.Deque) { pr.runTask(child, dd) })
	}
	rec := taskRecord{path: task.path}
	switch st := ctx.run(); st {
	case statusSolved:
		rec.status = taskWitness
		rec.decided = append([]Value(nil), s.decided...)
		// The witness path is the one exit that leaves frames open (the
		// caller reads the assignment); pop them now that the witness is
		// copied out, so the pooled state's frameOf entries are clean for
		// the next task that recycles it.
		ctx.popFrames()
	case statusRefuted, statusSplit:
		rec.status = taskCompleted
	case statusCapped:
		rec.status = taskBudget
	case statusCancelled:
		rec.status = taskCancelled
	}
	rec.nodes = ctx.nodes
	rec.learned = local.count()
	pr.record(rec)
}

// Engine entry ---------------------------------------------------------------

type parallelResult struct {
	solved  bool
	decided []Value
	nodes   int
	stats   SearchStats
}

// solveParallel runs the full parallel engine: probe, decomposition,
// work-stealing sweep, rank-ordered reduction.
func solveParallel(t *solveTables, budget int) (parallelResult, error) {
	shared := newSharedNogoodStore(len(t.views), t.numValues)
	po := probe(t, shared, budget)
	res := parallelResult{nodes: po.nodes}
	res.stats.ProbeNodes = po.nodes
	res.stats.SharedNogoods = shared.count()
	switch po.status {
	case statusSolved:
		res.solved = true
		res.decided = append([]Value(nil), po.state.decided...)
		return res, nil
	case statusRefuted:
		return res, nil
	}
	if po.nodes >= budget {
		return res, errBudget(budget)
	}

	// The probe hit its limit: freeze the shared store and go wide.
	tasks, records, prefixNodes := decompose(t, shared)
	res.stats.PrefixNodes = prefixNodes
	res.nodes += prefixNodes
	if res.nodes >= budget {
		return res, errBudget(budget)
	}
	// Budget semantics in the parallel phase: every task gets the full
	// remaining budget as its PRIVATE cap, and the rank-ordered reduction
	// enforces the aggregate deterministically afterwards. A sweep can
	// therefore explore up to taskCap × tasks nodes of wall-clock work in
	// the worst case before the budget error is reported — the price of
	// keeping budget trips byte-identical across worker counts (a shared
	// live counter would cancel tasks the deterministic reduction still
	// needs). Budgets bound per-task work exactly and the reported result
	// always reflects the deterministic accounting.
	pr := &parallelRun{
		tables:  t,
		shared:  shared,
		taskCap: budget - res.nodes,
		records: records,
	}
	// Witnesses found during decomposition bound the sweep from the start.
	for _, r := range records {
		if cur := pr.bound.Load(); cur == nil || pathLess(r.path, *cur) {
			p := append([]uint8(nil), r.path...)
			pr.bound.Store(&p)
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return pathLess(tasks[i].path, tasks[j].path) })
	deqTasks := make([]par.Task, len(tasks))
	for i, task := range tasks {
		task := task
		deqTasks[i] = func(d *par.Deque) { pr.runTask(task, d) }
	}
	par.RunDeque(deqTasks, nil)

	// Rank-ordered reduction: consume records in lexicographic path order,
	// stopping at the first terminal event. Every record before that event
	// is a fully-refuted subtree whose deterministic node count joins the
	// aggregate; records past it (including any cancelled ones) never
	// influence the result.
	sort.Slice(pr.records, func(i, j int) bool { return pathLess(pr.records[i].path, pr.records[j].path) })
	for _, r := range pr.records {
		if r.status == taskCancelled {
			break
		}
		res.nodes += r.nodes
		res.stats.TaskNodes += r.nodes
		res.stats.TaskNogoods += r.learned
		res.stats.Tasks++
		if r.status == taskWitness {
			if res.nodes > budget {
				return res, errBudget(budget)
			}
			res.solved = true
			res.decided = r.decided
			return res, nil
		}
		if r.status == taskBudget || res.nodes > budget {
			return res, errBudget(budget)
		}
	}
	return res, nil
}
