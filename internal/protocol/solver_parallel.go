package protocol

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ksettop/internal/checkpoint"
	"ksettop/internal/faultinject"
	"ksettop/internal/obs"
	"ksettop/internal/par"
)

// This file is the parallel engine of the decision-map solver: a sequential
// learning probe with a restart ladder, a deterministic decomposition of
// the top of the search tree into value-branch prefixes, a work-stealing
// sweep of those prefixes over the shared par.Deque, and a rank-ordered
// reduction that makes the reported SolveResult — Solvable, witness Map,
// node statistics and budget errors — byte-identical at every parallelism
// setting.
//
// Determinism argument, in deduction order:
//  1. The probe is sequential and its ladder thresholds are fixed, so its
//     outcome, node count and learned-clause store are schedule-free.
//  2. The shared store is frozen before decomposition; decomposition replays
//     deterministic prefixes against it, so the task list (and prefixNodes)
//     is schedule-free.
//  3. Each task searches its subtree with the frozen store plus a PRIVATE
//     learned store, and splits off sibling prefixes based only on its own
//     node counter — so every task's node count, learned count, outcome and
//     spawned children are schedule-free, no matter which worker runs it or
//     when it is stolen.
//  4. The reduction consumes task records in lexicographic prefix order and
//     stops at the first terminal event (witness or budget trip). Tasks at
//     ranks beyond the current best event are cancelled; by construction
//     they sort after the chosen event, so cancellation timing can never
//     change what the reduction sees.

// Engine and budget configuration -------------------------------------------

// SearchEngine selects the backtracking engine behind SolveOneRound.
type SearchEngine int32

const (
	// SearchParallel is the work-stealing learning engine (the default).
	SearchParallel SearchEngine = iota
	// SearchSeq is the seed sequential backtracking oracle, kept as a
	// cross-check (-search=seq on the CLIs).
	SearchSeq
)

var searchEngine atomic.Int32

// SetSearchEngine switches the process-wide search engine.
func SetSearchEngine(e SearchEngine) { searchEngine.Store(int32(e)) }

// CurrentSearchEngine reports the process-wide search engine.
func CurrentSearchEngine() SearchEngine { return SearchEngine(searchEngine.Load()) }

// defaultNodeBudget is the stock search budget CLI tools and experiments
// use when no -solver-budget is given.
const defaultNodeBudget = 50_000_000

var nodeBudgetOverride atomic.Int64

// DefaultNodeBudget returns the process-wide default solver node budget
// (settable via SetDefaultNodeBudget / the -solver-budget flag).
func DefaultNodeBudget() int {
	if n := nodeBudgetOverride.Load(); n > 0 {
		return int(n)
	}
	return defaultNodeBudget
}

// SetDefaultNodeBudget overrides the default solver node budget; n ≤ 0
// restores the stock value.
func SetDefaultNodeBudget(n int) {
	if n < 0 {
		n = 0
	}
	nodeBudgetOverride.Store(int64(n))
}

// Tuning constants of the parallel engine. These are part of the node
// accounting: changing them changes Nodes/Stats (deterministically), so
// they are compile-time constants, with only the probe limit exposed as a
// knob for tests and benchmarks that need to force the parallel phase on
// small instances.
const (
	// stockProbeLimit bounds the sequential probe phase.
	stockProbeLimit = 1 << 15
	// probeLadderBase is the first restart threshold; each restart
	// quadruples it.
	probeLadderBase = 1 << 12
	// maxSharedNogoods bounds the probe's shared clause store.
	maxSharedNogoods = 1 << 13
	// maxTaskNogoods bounds each subtree task's private store.
	maxTaskNogoods = 1 << 11
	// maxNogoodLen drops clauses longer than this many decisions.
	maxNogoodLen = 16
	// targetTasks is how many value-branch prefixes decomposition aims
	// for. Fixed (NOT derived from Parallelism()) so the task tree — and
	// with it the node accounting — is identical at every worker count.
	targetTasks = 64
	// maxExpansions caps decomposition work when branching is degenerate.
	maxExpansions = 4 * targetTasks
	// splitNodeThreshold: a task that has already spent this many nodes
	// and still faces ≥2 untried value branches along its open frames
	// hands its whole remaining frontier (the depth-first spine) to the
	// deque as fresh prefix tasks.
	splitNodeThreshold = 1 << 10
)

var probeLimitOverride atomic.Int64

// SetSearchProbeLimit overrides the parallel engine's sequential probe
// limit (n ≤ 0 restores the stock value). Results remain deterministic
// across parallelism for any fixed value; node statistics are only
// comparable between runs using the same limit. Intended for tests and
// benchmarks that must force the work-stealing phase on small instances.
func SetSearchProbeLimit(n int) {
	if n < 0 {
		n = 0
	}
	probeLimitOverride.Store(int64(n))
}

func probeLimit() int {
	if n := probeLimitOverride.Load(); n > 0 {
		return int(n)
	}
	return stockProbeLimit
}

var clauseBudgetOverride atomic.Int64

// SetClauseStoreBudget bounds the learned-clause stores and switches them
// from the stock append-only truncation to deterministic aging/eviction: a
// full store drops its lower-scored half (longest clauses first — length is
// the LBD stand-in — oldest among equals) and keeps learning. n is the
// shared probe store's clause bound; each subtree task's private store gets
// max(n/4, 16). n ≤ 0 restores the stock policy (append-only at the
// compile-time bounds). Solvable and the witness map are invariant across
// budgets — learned clauses only prune solution-free subtrees and the
// branch order is fixed — while node statistics are comparable only between
// runs using the same budget (each is still byte-identical across
// -parallelism).
func SetClauseStoreBudget(n int) {
	if n < 0 {
		n = 0
	}
	clauseBudgetOverride.Store(int64(n))
}

// CurrentClauseStoreBudget reports the clause-store budget (0 = stock).
func CurrentClauseStoreBudget() int { return int(clauseBudgetOverride.Load()) }

// newSharedNogoodStore builds the probe's shared clause store under the
// active bounding policy.
func newSharedNogoodStore(numViews, numValues int) *nogoodStore {
	if n := clauseBudgetOverride.Load(); n > 0 {
		ng := newNogoodStore(numViews, numValues, int(n), maxNogoodLen)
		ng.evict = true
		return ng
	}
	return newNogoodStore(numViews, numValues, maxSharedNogoods, maxNogoodLen)
}

// newTaskNogoodStore builds one subtree task's private clause store under
// the active bounding policy.
func newTaskNogoodStore(numViews, numValues int) *nogoodStore {
	if n := clauseBudgetOverride.Load(); n > 0 {
		budget := int(n) / 4
		if budget < 16 {
			budget = 16
		}
		ng := newNogoodStore(numViews, numValues, budget, maxNogoodLen)
		ng.evict = true
		return ng
	}
	return newNogoodStore(numViews, numValues, maxTaskNogoods, maxNogoodLen)
}

// SearchStats breaks the engine's deterministic node accounting down by
// phase. All fields are identical for every parallelism setting; under
// SearchSeq they stay zero (SolveResult.Nodes carries the count).
type SearchStats struct {
	// ProbeNodes is the sequential learning probe's node count.
	ProbeNodes int
	// PrefixNodes is the decomposition's branch-point count.
	PrefixNodes int
	// TaskNodes sums the node counts of the task records the rank-ordered
	// reduction consumed (every task on an UNSAT instance; tasks up to the
	// witness on a SAT one).
	TaskNodes int
	// Tasks is the number of task records the reduction consumed.
	Tasks int
	// SharedNogoods is the frozen store's clause count after the probe.
	SharedNogoods int
	// TaskNogoods sums the private clauses learned by consumed tasks.
	TaskNogoods int
}

// Probe phase ----------------------------------------------------------------

type probeOutcome struct {
	status searchStatus // statusSolved | statusRefuted | statusCapped | statusCancelled
	nodes  int
	state  *cspState // holds the witness assignment when solved
}

// probe runs the sequential CBJ search under a restart ladder: each
// attempt's node cap quadruples, conflict clauses persist across restarts
// in the shared store, and the phase ends when the instance is decided or
// the probe limit (or the budget, if smaller) is exhausted. stop, when
// non-nil, aborts the phase with statusCancelled (external cancellation
// only — it never participates in the deterministic accounting of runs
// that complete).
func probe(t *solveTables, shared *nogoodStore, budget int, stop func(nodes int) bool) probeOutcome {
	s := newCSPState(t, nil, shared)
	if !s.propagateFacts() {
		return probeOutcome{status: statusRefuted, state: s}
	}
	if s.selectView() == -1 {
		// The facts alone complete the assignment.
		return probeOutcome{status: statusSolved, state: s}
	}
	limit := probeLimit()
	if budget < limit {
		limit = budget
	}
	used := 0
	ladder := probeLadderBase
	for {
		attempt := ladder
		if rest := limit - used; attempt > rest {
			attempt = rest
		}
		ctx := &cbjCtx{s: s, cap: attempt, stop: stop}
		st := ctx.run()
		used += ctx.nodes
		if st == statusSolved || st == statusRefuted || st == statusCancelled {
			return probeOutcome{status: st, nodes: used, state: s}
		}
		if used >= limit {
			return probeOutcome{status: statusCapped, nodes: used, state: s}
		}
		ladder *= 4
	}
}

// Decomposition --------------------------------------------------------------

// searchTask is one unexplored value-branch prefix of the search tree.
// path is the branch-index route from the root (positions in the static
// value order at each decision), decisions the corresponding litKeys.
type searchTask struct {
	path      []uint8
	decisions []int32
}

type taskStatus int8

const (
	taskCompleted taskStatus = iota // subtree exhaustively refuted
	taskWitness                     // found its lexicographically-first solution
	taskBudget                      // tripped the per-task node cap
	taskCancelled                   // aborted after observing a lower-ranked event
)

// taskRecord is one task's deterministic outcome.
type taskRecord struct {
	path    []uint8
	nodes   int
	learned int
	status  taskStatus
	decided []Value // witness assignment when status == taskWitness
}

// decompose splits the top of the search tree into at least targetTasks
// value-branch prefixes (branching permitting) by breadth-first expansion
// in branch order. Prefixes that complete the assignment during expansion
// become witness records directly. Returns the open prefixes, the records,
// and the number of branch points expanded.
func decompose(t *solveTables, shared *nogoodStore) ([]searchTask, []taskRecord, int) {
	queue := []searchTask{{}}
	var records []taskRecord
	prefixNodes := 0
	s := newCSPState(t, shared, nil)
	if !s.propagateFacts() {
		// Unreachable: the probe refutes fact-level contradictions before
		// the parallel phase starts.
		return nil, nil, 0
	}
	factsMark := len(s.trail)
	for exp := 0; len(queue) > 0 && len(queue) < targetTasks && exp < maxExpansions; exp++ {
		p := queue[0]
		queue = queue[1:]
		if !replayPrefix(s, p.decisions) {
			// Unreachable: the prefix assigned cleanly when it was created
			// and replay against the same frozen store is deterministic;
			// treat as a refuted prefix if it ever fires.
			s.unwind(factsMark)
			continue
		}
		best := s.selectView()
		if best == -1 {
			records = append(records, taskRecord{
				path:    p.path,
				status:  taskWitness,
				decided: append([]Value(nil), s.decided...),
			})
			s.unwind(factsMark)
			continue
		}
		prefixNodes++
		dom := s.domains[best]
		for i, val := range t.valueOrder {
			if dom&(1<<uint(val)) == 0 {
				continue
			}
			mark := len(s.trail)
			if s.assign(best, val, true) {
				child := searchTask{
					path:      append(append([]uint8(nil), p.path...), uint8(i)),
					decisions: append(append([]int32(nil), p.decisions...), litKey(best, val, t.numValues)),
				}
				queue = append(queue, child)
			}
			s.unwind(mark)
		}
		s.unwind(factsMark)
	}
	return queue, records, prefixNodes
}

// replayPrefix re-applies a task's decision prefix (as assumptions) onto a
// state holding only pre-propagated facts, reporting whether every
// assignment succeeded.
func replayPrefix(s *cspState, decisions []int32) bool {
	for _, key := range decisions {
		if !s.assign(int(key)/s.numValues, Value(int(key)%s.numValues), true) {
			return false
		}
	}
	return true
}

// pathLess is the lexicographic order on branch paths (a proper prefix
// sorts before its extensions).
func pathLess(a, b []uint8) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Work-stealing sweep --------------------------------------------------------

// parallelRun is the shared coordination state of one work-stealing sweep.
type parallelRun struct {
	tables  *solveTables
	shared  *nogoodStore
	taskCap int // per-task node cap (the budget minus probe and prefix nodes)
	budget  int // the full node budget the rank-ordered reduction enforces
	ctl     *par.Ctl

	// statePool recycles cspStates between tasks: the big flat arrays
	// (counts, firstSetter, matched counters) are identical after an
	// unwind to the post-facts mark, so a recycled state only needs a
	// fresh private clause store. Which worker reuses which state is
	// scheduling-dependent, but a reset state is indistinguishable from a
	// fresh one, so results stay deterministic.
	statePool sync.Pool

	mu      sync.Mutex
	records []taskRecord
	// bound is the lexicographically-smallest event path published so far;
	// tasks whose root path sorts after it abort. Stored behind an atomic
	// pointer so the hot cancellation poll is a single load.
	bound atomic.Pointer[[]uint8]

	// Live budget accounting (all under mu). The rank-ordered reduction
	// charges nodes in lexicographic path order, so the sweep can mirror
	// that sum INCREMENTALLY: pending holds the sorted paths of every task
	// queued or running, stash the finished records not yet chargeable, and
	// prefixSum the charged prefix (seeded with probe + decomposition
	// nodes). A record becomes chargeable once no pending task sorts below
	// it — exactly when its position in the final reduction order is
	// settled. The moment the charged prefix crosses the budget, the
	// crossing path is published as the bound, cancelling every
	// strictly-later task: the reduction provably stops at (or before) the
	// crossing record, so those tasks' records were never going to be
	// consumed. This is what fixes the tasks × budget overshoot — the old
	// sweep only detected the aggregate trip after EVERY task had burned
	// its private cap — without touching the deterministic reduction.
	pending   [][]uint8
	stash     []taskRecord
	prefixSum int
	acctDone  bool

	// Checkpoint bookkeeping (under mu). frontier holds every queued or
	// running task by path — exactly the prefixes a resumed run must
	// re-execute; record() retires an entry when its task reaches a
	// deterministic conclusion, but a CANCELLED task stays on the frontier
	// (its outcome is schedule-dependent, so resume re-runs it). known is
	// only set on a resumed sweep: the restored record and frontier paths,
	// consulted by the spawn hook so a re-executed parent does not re-spawn
	// a child the checkpoint already accounted for.
	frontier map[string]searchTask
	known    map[string]bool
}

// addFrontier registers a task as pending (sorted insert for the budget
// accounting) and tracks it on the checkpoint frontier.
func (pr *parallelRun) addFrontier(task searchTask) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	i := sort.Search(len(pr.pending), func(i int) bool { return !pathLess(pr.pending[i], task.path) })
	pr.pending = append(pr.pending, nil)
	copy(pr.pending[i+1:], pr.pending[i:])
	pr.pending[i] = task.path
	pr.frontier[string(task.path)] = task
}

// frontierSorted returns the open frontier in lexicographic path order for
// deterministic checkpoint encoding. Caller holds pr.mu.
func (pr *parallelRun) frontierSorted() []searchTask {
	out := make([]searchTask, 0, len(pr.frontier))
	for _, task := range pr.frontier {
		out = append(out, task)
	}
	sort.Slice(out, func(i, j int) bool { return pathLess(out[i].path, out[j].path) })
	return out
}

// cancelledFor reports whether a task rooted at path is dominated by an
// already-published event.
func (pr *parallelRun) cancelledFor(path []uint8) bool {
	b := pr.bound.Load()
	return b != nil && pathLess(*b, path)
}

// publishBoundLocked lowers the shared event bound to path (caller holds
// pr.mu or is in single-threaded setup).
func (pr *parallelRun) publishBoundLocked(path []uint8) {
	if cur := pr.bound.Load(); cur == nil || pathLess(path, *cur) {
		p := append([]uint8(nil), path...)
		pr.bound.Store(&p)
	}
}

// record stores a task outcome, removes it from the pending set, publishes
// its path as the new bound when it is a terminal event ranked below the
// current one, and folds newly-chargeable records into the live budget
// accounting.
func (pr *parallelRun) record(r taskRecord) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.records = append(pr.records, r)
	i := sort.Search(len(pr.pending), func(i int) bool { return !pathLess(pr.pending[i], r.path) })
	if i < len(pr.pending) && !pathLess(r.path, pr.pending[i]) {
		pr.pending = append(pr.pending[:i], pr.pending[i+1:]...)
	}
	if r.status != taskCancelled {
		// Deterministic conclusion reached: the task leaves the checkpoint
		// frontier. Cancelled tasks stay — a resumed run re-executes them.
		delete(pr.frontier, string(r.path))
	}
	if r.status == taskWitness || r.status == taskBudget {
		pr.publishBoundLocked(r.path)
	}
	j := sort.Search(len(pr.stash), func(j int) bool { return !pathLess(pr.stash[j].path, r.path) })
	pr.stash = append(pr.stash, taskRecord{})
	copy(pr.stash[j+1:], pr.stash[j:])
	pr.stash[j] = r
	pr.foldLocked()
}

// foldLocked advances the live budget accounting over every record whose
// reduction position is settled (no pending task sorts below it). It stops
// permanently at the first terminal or cancelled record — the reduction
// stops there too — and publishes the crossing path as the event bound the
// moment the charged prefix exceeds the budget.
func (pr *parallelRun) foldLocked() {
	for !pr.acctDone && len(pr.stash) > 0 {
		r := pr.stash[0]
		if len(pr.pending) > 0 && pathLess(pr.pending[0], r.path) {
			return // a lower-ranked task is still in flight
		}
		pr.stash = pr.stash[1:]
		if r.status != taskCompleted {
			pr.acctDone = true // reduction stops at this record
			return
		}
		pr.prefixSum += r.nodes
		if pr.prefixSum > pr.budget {
			pr.publishBoundLocked(r.path)
			pr.acctDone = true
			return
		}
	}
}

// budgetCrossed is the running-task side of the live accounting, polled
// from a task's stop hook: if the task at path is the LOWEST pending path —
// so the charged prefix below it is final — and its own progress pushes the
// sum past the budget, the task's path becomes the event bound. That
// cancels everything strictly after it; the task itself keeps running to
// its deterministic conclusion (cancelledFor is strict), so the node count
// the reduction charges at the trip is schedule-free. Overshoot is thereby
// bounded by ONE task's private cap instead of tasks × cap.
func (pr *parallelRun) budgetCrossed(path []uint8, nodes int) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if pr.acctDone || len(pr.pending) == 0 {
		return
	}
	min := pr.pending[0]
	if pathLess(min, path) || pathLess(path, min) {
		return // not the lowest pending task
	}
	if pr.prefixSum+nodes > pr.budget {
		pr.publishBoundLocked(path)
		pr.acctDone = true
	}
}

// runTask searches one prefix's subtree. The root branch point handles
// work splitting: once the task has burned splitNodeThreshold nodes, every
// still-untried root value is spawned onto the deque as its own task and
// this task retires.
func (pr *parallelRun) runTask(task searchTask, d *par.Deque) {
	if pr.cancelledFor(task.path) || pr.ctl.Stopped() {
		pr.record(taskRecord{path: task.path, status: taskCancelled})
		return
	}
	if err := faultinject.Hit(faultinject.PointSolverTask); err != nil {
		pr.ctl.StopCause(err)
		pr.record(taskRecord{path: task.path, status: taskCancelled})
		return
	}
	t := pr.tables
	local := newTaskNogoodStore(len(t.views), t.numValues)
	var s *cspState
	if pooled := pr.statePool.Get(); pooled != nil {
		s = pooled.(*cspState)
		s.resetForTask(s.factsMark, local)
	} else {
		s = newCSPState(t, pr.shared, local)
		if !s.propagateFacts() {
			// Unreachable: the probe refutes fact-level contradictions
			// before the parallel phase starts.
			pr.record(taskRecord{path: task.path, status: taskCompleted})
			return
		}
		s.factsMark = len(s.trail)
	}
	defer pr.statePool.Put(s)
	if !replayPrefix(s, task.decisions) {
		// A split-spawned sibling whose root value turns out inconsistent:
		// refuted without branching, zero nodes.
		pr.record(taskRecord{path: task.path, status: taskCompleted})
		return
	}
	ctx := &cbjCtx{
		s:   s,
		cap: pr.taskCap,
		stop: func(nodes int) bool {
			if pr.cancelledFor(task.path) || pr.ctl.Stopped() {
				return true
			}
			pr.budgetCrossed(task.path, nodes)
			return false
		},
		splitThreshold: splitNodeThreshold,
	}
	ctx.spawn = func(pathSuffix []uint8, decisions []int32) {
		// Hand an untried value-branch prefix to the deque; whoever steals
		// it restarts from the (deterministic) extended prefix. Register it
		// pending FIRST so the budget accounting sees it before any worker
		// can record it.
		child := searchTask{
			path:      append(append([]uint8(nil), task.path...), pathSuffix...),
			decisions: append(append([]int32(nil), task.decisions...), decisions...),
		}
		if pr.known[string(child.path)] {
			// Resumed sweep: the checkpoint already carries this child as a
			// restored record or frontier task, so re-spawning it would
			// double-count its deterministic outcome.
			return
		}
		pr.addFrontier(child)
		d.Spawn(func(dd *par.Deque) { pr.runTask(child, dd) })
	}
	rec := taskRecord{path: task.path}
	switch st := ctx.run(); st {
	case statusSolved:
		rec.status = taskWitness
		rec.decided = append([]Value(nil), s.decided...)
		// The witness path is the one exit that leaves frames open (the
		// caller reads the assignment); pop them now that the witness is
		// copied out, so the pooled state's frameOf entries are clean for
		// the next task that recycles it.
		ctx.popFrames()
	case statusRefuted, statusSplit:
		rec.status = taskCompleted
	case statusCapped:
		rec.status = taskBudget
	case statusCancelled:
		rec.status = taskCancelled
	}
	rec.nodes = ctx.nodes
	rec.learned = local.count()
	pr.record(rec)
}

// Engine entry ---------------------------------------------------------------

type parallelResult struct {
	solved  bool
	decided []Value
	nodes   int
	stats   SearchStats
}

// debugSweepNodes records the total nodes actually explored by the last
// parallel sweep across ALL task records, cancelled ones included. This is
// wall-clock work, schedule-dependent by nature; it exists so the budget
// regression tests can assert the overshoot stays near one task's cap
// instead of tasks × cap. Not part of the public deterministic accounting.
var debugSweepNodes atomic.Int64

// solveParallel runs the full parallel engine: probe, decomposition,
// work-stealing sweep, rank-ordered reduction. ctx cancellation (and
// injected faults or contained worker panics) abort the sweep promptly with
// an error; runs that complete are byte-identical at every parallelism.
func solveParallel(ctx context.Context, t *solveTables, budget int) (parallelResult, error) {
	ctl := &par.Ctl{}
	release := ctl.Bind(ctx)
	defer release()
	res := parallelResult{}
	if ctx != nil && ctx.Err() != nil {
		ctl.StopCause(context.Cause(ctx))
		return res, cancelCause(ctl, ctx)
	}
	// A checkpoint runner on the context arms durable sweeps: a staged
	// section with this workload's fingerprint resumes the frozen store,
	// finished records and open frontier; otherwise the sweep registers a
	// capture so periodic (and final) saves persist its progress.
	runner := checkpoint.FromContext(ctx)
	var ckptFP uint64
	var resumed *solverCkptState
	if runner != nil {
		ckptFP = solverFingerprint(t, budget)
		if payload, ok := runner.Resume(kindSolverFrontier, ckptFP); ok {
			st, err := decodeSolverCheckpoint(payload, t)
			if err != nil {
				obs.DefaultLogger().Warnf("checkpoint: solver section unusable (%v); recomputing", err)
			} else {
				resumed = st
			}
		}
	}

	var shared *nogoodStore
	var tasks []searchTask
	var records []taskRecord
	var prefixNodes int
	if resumed != nil {
		// The probe and decomposition are already paid for: their node
		// counters, the frozen store and the open frontier all come from the
		// checkpoint, and the restored frontier tasks re-run to the same
		// deterministic outcomes the interrupted sweep would have produced.
		shared = resumed.shared
		tasks = resumed.frontier
		records = resumed.records
		prefixNodes = resumed.prefixNodes
		res.nodes = resumed.probeNodes + prefixNodes
		res.stats.ProbeNodes = resumed.probeNodes
		res.stats.PrefixNodes = prefixNodes
		res.stats.SharedNogoods = shared.count()
	} else {
		shared = newSharedNogoodStore(len(t.views), t.numValues)
		var probeStop func(int) bool
		if ctx != nil && ctx.Done() != nil {
			probeStop = func(int) bool { return ctl.Stopped() }
		}
		_, probeSpan := obs.StartSpan(ctx, "solver.probe")
		po := probe(t, shared, budget, probeStop)
		res.nodes = po.nodes
		res.stats.ProbeNodes = po.nodes
		res.stats.SharedNogoods = shared.count()
		probeSpan.SetInt("nodes", int64(po.nodes))
		probeSpan.SetInt("shared_nogoods", int64(res.stats.SharedNogoods))
		probeSpan.End()
		switch po.status {
		case statusSolved:
			res.solved = true
			res.decided = append([]Value(nil), po.state.decided...)
			return res, nil
		case statusRefuted:
			return res, nil
		case statusCancelled:
			return res, cancelCause(ctl, ctx)
		}
		if po.nodes >= budget {
			return res, errBudget(budget, res.nodes)
		}

		// The probe hit its limit: freeze the shared store and go wide.
		_, decompSpan := obs.StartSpan(ctx, "solver.decompose")
		tasks, records, prefixNodes = decompose(t, shared)
		decompSpan.SetInt("tasks", int64(len(tasks)))
		decompSpan.SetInt("prefix_nodes", int64(prefixNodes))
		decompSpan.End()
		res.stats.PrefixNodes = prefixNodes
		res.nodes += prefixNodes
		if res.nodes >= budget {
			return res, errBudget(budget, res.nodes)
		}
	}
	// Budget semantics in the parallel phase: every task gets the full
	// remaining budget as its PRIVATE cap, and the rank-ordered reduction
	// enforces the aggregate deterministically afterwards. The live
	// accounting in parallelRun (prefixSum / pending / budgetCrossed)
	// mirrors the reduction incrementally and cancels everything ranked
	// past the first budget crossing, so the sweep's overshoot is bounded
	// by one task's private cap — not taskCap × tasks — while the records
	// the reduction consumes stay byte-identical across worker counts (a
	// plain shared live counter would cancel tasks the deterministic
	// reduction still needs).
	pr := &parallelRun{
		tables:    t,
		shared:    shared,
		taskCap:   budget - res.nodes,
		budget:    budget,
		ctl:       ctl,
		records:   records,
		prefixSum: res.nodes,
		frontier:  make(map[string]searchTask, len(tasks)),
	}
	// Witnesses found during decomposition — and, on resume, every restored
	// terminal record — bound the sweep from the start and seed the
	// accounting stash (they are settled records).
	for _, r := range records {
		if r.status == taskWitness || r.status == taskBudget {
			pr.publishBoundLocked(r.path)
		}
		pr.stash = append(pr.stash, r)
	}
	if resumed != nil {
		pr.known = make(map[string]bool, len(records)+len(tasks))
		for _, r := range records {
			pr.known[string(r.path)] = true
		}
		for _, task := range tasks {
			pr.known[string(task.path)] = true
		}
	}
	sort.Slice(pr.stash, func(i, j int) bool { return pathLess(pr.stash[i].path, pr.stash[j].path) })
	sort.Slice(tasks, func(i, j int) bool { return pathLess(tasks[i].path, tasks[j].path) })
	deqTasks := make([]par.Task, len(tasks))
	for i, task := range tasks {
		task := task
		pr.addFrontier(task)
		deqTasks[i] = func(d *par.Deque) { pr.runTask(task, d) }
	}
	if runner != nil {
		// The frozen store never changes during the sweep, so it is encoded
		// once; each capture only re-encodes records and frontier. The
		// unregister retains the final capture, so the CLI's last SaveNow on
		// an interrupt persists the exact state the sweep stopped in.
		sharedBytes := encodeSharedStore(shared)
		probeNodes := res.stats.ProbeNodes
		unregister := runner.Register(kindSolverFrontier, ckptFP, func() ([]byte, error) {
			return pr.encodeCheckpoint(probeNodes, prefixNodes, sharedBytes), nil
		})
		defer unregister()
	}
	sweepCtx, sweepSpan := obs.StartSpan(ctx, "solver.sweep")
	sweepSpan.SetInt("tasks", int64(len(deqTasks)))
	err := par.RunDequeCtx(sweepCtx, deqTasks, ctl)
	sweepSpan.End()
	if err != nil {
		return res, cancelCause(ctl, ctx)
	}
	if cause := ctl.Cause(); cause != nil {
		// External cancellation (context, injected fault) observed by a
		// task rather than the deque itself.
		return res, cancelCause(ctl, ctx)
	}

	// Rank-ordered reduction: consume records in lexicographic path order,
	// stopping at the first terminal event. Every record before that event
	// is a fully-refuted subtree whose deterministic node count joins the
	// aggregate; records past it (including any cancelled ones) never
	// influence the result.
	sort.Slice(pr.records, func(i, j int) bool { return pathLess(pr.records[i].path, pr.records[j].path) })
	sweepNodes := int64(res.nodes)
	for _, r := range pr.records {
		sweepNodes += int64(r.nodes)
	}
	debugSweepNodes.Store(sweepNodes)
	for _, r := range pr.records {
		if r.status == taskCancelled {
			break
		}
		res.nodes += r.nodes
		res.stats.TaskNodes += r.nodes
		res.stats.TaskNogoods += r.learned
		res.stats.Tasks++
		if r.status == taskWitness {
			if res.nodes > budget {
				return res, errBudget(budget, res.nodes)
			}
			res.solved = true
			res.decided = r.decided
			return res, nil
		}
		if r.status == taskBudget || res.nodes > budget {
			return res, errBudget(budget, res.nodes)
		}
	}
	return res, nil
}
