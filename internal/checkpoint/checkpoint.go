// Package checkpoint persists the progress of long engine runs — solver
// refutations, homology reductions, distributed shard executions — so a
// crashed or signalled process resumes instead of recomputing.
//
// The file format reuses the memo snapshot design (PR 3/6): a magic+version
// header, a job key identifying the run the checkpoint belongs to, and a
// registry of named sections, each CRC32-checksummed (IEEE, over name and
// payload) so torn writes and bit rot are detected at load. Writers go
// through an atomic temp-file + fsync + rename, so the file on disk is
// always either the previous checkpoint or the new one, never a mix.
//
// The durability contract, pinned by the kill-and-restart chaos tests:
// a run resumed from ANY checkpoint produces results byte-identical to an
// uninterrupted run, and a corrupt, truncated or foreign checkpoint file
// cold-starts cleanly (warn-level log, full recompute) — it never wedges a
// tool or skews a result. Sections carry an engine fingerprint of the exact
// workload, so a checkpoint from a different model, budget or flag set is
// ignored rather than resumed.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"ksettop/internal/faultinject"
	"ksettop/internal/memo"
)

// fileMagic identifies the checkpoint format; the trailing version byte
// bumps on incompatible changes. Loaders reject other magics outright.
var fileMagic = []byte("ksetckpt\x01")

// ErrCorrupt is the sentinel every checkpoint integrity failure —
// truncation, checksum mismatch, foreign bytes — matches under errors.Is.
// Callers treat it as "warn and start cold", never as fatal.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

// CorruptError reports a checkpoint file that failed validation.
type CorruptError struct {
	Path    string // the file that failed
	Section string // the section being read, if the failure was localized
	Reason  string // what failed
}

func (e *CorruptError) Error() string {
	if e.Section != "" {
		return fmt.Sprintf("checkpoint: corrupt file %s (section %q): %s", e.Path, e.Section, e.Reason)
	}
	return fmt.Sprintf("checkpoint: corrupt file %s: %s", e.Path, e.Reason)
}

// Is matches ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

func corruptf(path, section, format string, args ...any) error {
	return &CorruptError{Path: path, Section: section, Reason: fmt.Sprintf(format, args...)}
}

// ErrJobMismatch is the sentinel a JobMismatchError matches: the file is a
// valid checkpoint, but of a DIFFERENT job (other tool, model or flag set).
// Like corruption, it means cold start — resuming someone else's frontier
// would skew results.
var ErrJobMismatch = errors.New("checkpoint: job key mismatch")

// JobMismatchError reports a structurally valid checkpoint of another job.
type JobMismatchError struct {
	Path string
	Want string
	Got  string
}

func (e *JobMismatchError) Error() string {
	return fmt.Sprintf("checkpoint: %s belongs to job %q, want %q", e.Path, e.Got, e.Want)
}

// Is matches ErrJobMismatch.
func (e *JobMismatchError) Is(target error) bool { return target == ErrJobMismatch }

// Section is one named progress payload inside a checkpoint file.
type Section struct {
	Name    string
	Payload []byte
}

// sectionCRC is the integrity checksum of one section: IEEE CRC32 over the
// section name followed by its payload (same scheme as memo snapshots).
func sectionCRC(name string, payload []byte) uint32 {
	crc := crc32.NewIEEE()
	io.WriteString(crc, name)
	crc.Write(payload)
	return crc.Sum32()
}

// Encode serializes a checkpoint image: header, job key, section registry.
func Encode(jobKey string, secs []Section) []byte {
	var buf bytes.Buffer
	buf.Write(fileMagic)
	memo.WriteUvarint(&buf, uint64(len(jobKey)))
	buf.WriteString(jobKey)
	memo.WriteUvarint(&buf, uint64(len(secs)))
	for _, s := range secs {
		memo.WriteUvarint(&buf, uint64(len(s.Name)))
		buf.WriteString(s.Name)
		memo.WriteUvarint(&buf, uint64(len(s.Payload)))
		buf.Write(s.Payload)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], sectionCRC(s.Name, s.Payload))
		buf.Write(crc[:])
	}
	return buf.Bytes()
}

// Decode parses a checkpoint image, verifying every section checksum BEFORE
// returning anything, so a torn or rotted file never half-resumes. path only
// labels errors.
func Decode(path string, data []byte) (string, []Section, error) {
	if !bytes.HasPrefix(data, fileMagic) {
		return "", nil, corruptf(path, "", "not a kset checkpoint")
	}
	r := bytes.NewReader(data[len(fileMagic):])
	jobKey, err := memo.ReadLengthPrefixed(r)
	if err != nil {
		return "", nil, corruptf(path, "", "job key: %v", err)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, corruptf(path, "", "section count: %v", err)
	}
	// Each section occupies ≥ 6 bytes (two length prefixes + 4-byte CRC), so
	// a count beyond that bound is corruption — reject it before it sizes an
	// allocation.
	if count > uint64(r.Len())/6 {
		return "", nil, corruptf(path, "", "section count %d exceeds remaining %d bytes", count, r.Len())
	}
	secs := make([]Section, 0, count)
	for i := uint64(0); i < count; i++ {
		name, err := memo.ReadLengthPrefixed(r)
		if err != nil {
			return "", nil, corruptf(path, "", "section %d name: %v", i, err)
		}
		payload, err := memo.ReadLengthPrefixed(r)
		if err != nil {
			return "", nil, corruptf(path, string(name), "payload: %v", err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return "", nil, corruptf(path, string(name), "checksum: %v", err)
		}
		if got, want := sectionCRC(string(name), payload), binary.LittleEndian.Uint32(crc[:]); got != want {
			return "", nil, corruptf(path, string(name), "checksum mismatch (computed %08x, stored %08x)", got, want)
		}
		secs = append(secs, Section{Name: string(name), Payload: payload})
	}
	if r.Len() != 0 {
		return "", nil, corruptf(path, "", "%d trailing bytes", r.Len())
	}
	return string(jobKey), secs, nil
}

// Save atomically writes a checkpoint: encode, temp file in the target
// directory, fsync, rename. The faultinject points let the chaos suite and
// the production -faults flag model a write error, a failed fsync, and a
// torn write (bytes corrupted between encode and disk — caught by the CRCs
// at the next load).
func Save(path, jobKey string, secs []Section) error {
	data := Encode(jobKey, secs)
	if err := faultinject.Hit(faultinject.PointCheckpointWrite); err != nil {
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	faultinject.Corrupt(faultinject.PointCheckpointWrite, data)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".kset-checkpoint-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := faultinject.Hit(faultinject.PointCheckpointFsync); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: fsync %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and validates a checkpoint file, returning its sections. A
// job-key mismatch returns a JobMismatchError (matching ErrJobMismatch);
// integrity failures return a CorruptError (matching ErrCorrupt). The
// faultinject load point models on-disk rot and unreadable files for the
// chaos suite and -faults.
func Load(path, wantJob string) ([]Section, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := faultinject.Hit(faultinject.PointCheckpointLoad); err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	faultinject.Corrupt(faultinject.PointCheckpointLoad, data)
	job, secs, err := Decode(path, data)
	if err != nil {
		return nil, err
	}
	if job != wantJob {
		return nil, &JobMismatchError{Path: path, Want: wantJob, Got: job}
	}
	return secs, nil
}
