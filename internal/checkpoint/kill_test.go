package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

const killChildEnv = "KSET_CHECKPOINT_KILL_CHILD"

// TestCheckpointKillHelperProcess is not a test: re-executed as a child of
// TestCheckpointSIGKILLDuringSaveNeverTears, it saves checkpoints in a tight
// loop until the parent SIGKILLs it mid-write.
func TestCheckpointKillHelperProcess(t *testing.T) {
	path := os.Getenv(killChildEnv)
	if path == "" {
		t.Skip("helper process for the SIGKILL test")
	}
	payload := bytes.Repeat([]byte{0xC7}, 1<<16)
	for i := 0; ; i++ {
		secs := []Section{
			{Name: "solver.frontier#1", Payload: payload[:1+(i*977)%len(payload)]},
			{Name: "homology.reduction#2", Payload: payload[:1+(i*313)%len(payload)]},
		}
		if err := Save(path, "kill-test-job", secs); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
}

// TestCheckpointSIGKILLDuringSaveNeverTears is the torn-write half of the
// durability contract under a REAL kill: a subprocess saving checkpoints as
// fast as it can is SIGKILLed at arbitrary points, and the file it leaves
// behind must always be either absent or a fully valid checkpoint — the
// atomic temp+fsync+rename protocol means a reader never sees a torn image.
func TestCheckpointSIGKILLDuringSaveNeverTears(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill matrix; skipped with -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "victim.ckpt")

	loaded := 0
	for round := 0; round < 8; round++ {
		cmd := exec.Command(exe, "-test.run=TestCheckpointKillHelperProcess$")
		cmd.Env = append(os.Environ(), killChildEnv+"="+path)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Vary the kill point: an almost-immediate kill lands mid-first-save,
		// later kills land between or inside subsequent saves.
		time.Sleep(time.Duration(5+round*7) * time.Millisecond)
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()

		secs, err := Load(path, "kill-test-job")
		switch {
		case err == nil:
			if len(secs) != 2 {
				t.Fatalf("round %d: valid checkpoint with %d sections, want 2", round, len(secs))
			}
			loaded++
		case errors.Is(err, os.ErrNotExist):
			// Killed before the first rename landed — a cold start.
		default:
			t.Fatalf("round %d: SIGKILL left a file that is neither valid nor absent: %v", round, err)
		}
	}
	if loaded == 0 {
		t.Skip("every kill landed before the first save; atomicity not exercised")
	}
}
