package checkpoint

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ksettop/internal/obs"
)

// Metrics exported by the default registry; the daemons' /metrics endpoints
// pick these up automatically.
var (
	mSaves      = obs.DefaultRegistry().Counter("kset_checkpoint_saves_total", "Checkpoint files written")
	mSaveErrors = obs.DefaultRegistry().Counter("kset_checkpoint_save_errors_total", "Checkpoint writes that failed")
	mSaveBytes  = obs.DefaultRegistry().Counter("kset_checkpoint_save_bytes_total", "Bytes written across checkpoint saves")
	mResumes    = obs.DefaultRegistry().Counter("kset_checkpoint_resumes_total", "Engine states restored from a checkpoint")
	mColdStarts = obs.DefaultRegistry().Counter("kset_checkpoint_cold_starts_total", "Resume attempts that fell back to a cold start (missing, corrupt or foreign file)")
)

// A Runner owns one checkpoint file for the duration of a run. Engines
// (solver, homology, dist worker) find the runner on their context, Register
// a capture callback keyed by a workload fingerprint, and query Resume for a
// previously saved state with the same fingerprint. The runner periodically
// collects every registered capture into one atomic file write; a final
// SaveNow on abort preserves the frontier the run died with.
//
// A nil *Runner is valid everywhere and does nothing, so engine code calls
// methods unconditionally.
type Runner struct {
	path     string
	jobKey   string
	interval time.Duration

	mu       sync.Mutex
	seq      int               // section-name allocator
	captures map[string]func() ([]byte, error)
	retained map[string][]byte // last capture of unregistered sections
	pending  map[string][]byte // loaded sections not yet consumed by Resume

	stop chan struct{}
	done chan struct{}
}

// NewRunner creates a runner for one checkpoint file. jobKey identifies the
// run (tool + model + flags); a file holding another job's key is ignored at
// LoadForResume. interval is the background save cadence (≤ 0 disables the
// ticker; explicit SaveNow calls still work).
func NewRunner(path, jobKey string, interval time.Duration) *Runner {
	return &Runner{
		path:     path,
		jobKey:   jobKey,
		interval: interval,
		captures: make(map[string]func() ([]byte, error)),
		retained: make(map[string][]byte),
		pending:  make(map[string][]byte),
	}
}

// Path returns the checkpoint file path (empty on a nil runner).
func (r *Runner) Path() string {
	if r == nil {
		return ""
	}
	return r.path
}

// LoadForResume loads the checkpoint file and stages its sections for Resume
// calls. It returns true when a valid checkpoint of this job was loaded. A
// missing file is a normal cold start; a corrupt, truncated or foreign-job
// file logs at warn level and cold-starts — it never fails the run.
func (r *Runner) LoadForResume() bool {
	if r == nil {
		return false
	}
	secs, err := Load(r.path, r.jobKey)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			obs.DefaultLogger().Warnf("checkpoint: cannot resume from %s: %v; starting cold", r.path, err)
			mColdStarts.Inc()
		}
		return false
	}
	r.mu.Lock()
	for _, s := range secs {
		r.pending[s.Name] = s.Payload
	}
	r.mu.Unlock()
	return true
}

// sectionName derives the `kind#N` registry name. The counter keeps names
// unique when several engine instances of the same kind run concurrently
// (e.g. parallel homology dims); the fingerprint in the payload, not the
// name, is what Resume matches on.
func (r *Runner) sectionName(kind string) string {
	r.seq++
	return fmt.Sprintf("%s#%d", kind, r.seq)
}

// Register adds a capture callback for one engine state. kind groups the
// section ("solver.frontier", "homology.reduction", …); fp fingerprints the
// exact workload so only a matching run resumes it. The callback is invoked
// on the runner's save goroutine and must synchronize with the engine (take
// the engine's lock, copy, return). The returned func unregisters the
// capture; the last captured bytes are retained so a final save after the
// engine exits does not lose its progress.
func (r *Runner) Register(kind string, fp uint64, capture func() ([]byte, error)) (unregister func()) {
	if r == nil {
		return func() {}
	}
	r.mu.Lock()
	name := r.sectionName(kind)
	r.captures[name] = func() ([]byte, error) {
		payload, err := capture()
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 8, 8+len(payload))
		binary.LittleEndian.PutUint64(buf, fp)
		return append(buf, payload...), nil
	}
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		if capture, ok := r.captures[name]; ok {
			if data, err := capture(); err == nil {
				r.retained[name] = data
			}
			delete(r.captures, name)
		}
		r.mu.Unlock()
	}
}

// Resume returns (and consumes) a previously loaded section of the given
// kind whose fingerprint matches fp. The 8-byte fingerprint prefix is
// stripped. ok is false when no staged section matches — cold start.
func (r *Runner) Resume(kind string, fp uint64) (payload []byte, ok bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Deterministic scan order so concurrent same-kind engines pair with
	// staged sections stably.
	names := make([]string, 0, len(r.pending))
	for name := range r.pending {
		if strings.HasPrefix(name, kind+"#") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data := r.pending[name]
		if len(data) < 8 || binary.LittleEndian.Uint64(data) != fp {
			continue
		}
		delete(r.pending, name)
		mResumes.Inc()
		return data[8:], true
	}
	return nil, false
}

// SaveNow captures every registered section and atomically rewrites the
// checkpoint file. Unconsumed staged sections and retained sections of
// finished engines are carried over, so progress of a phase the resumed run
// has not re-reached yet survives a second crash. Capture errors skip the
// save (the previous file stays intact).
func (r *Runner) SaveNow() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	secs := make([]Section, 0, len(r.captures)+len(r.retained)+len(r.pending))
	seen := make(map[string]bool)
	var capErr error
	for name, capture := range r.captures {
		data, err := capture()
		if err != nil {
			capErr = fmt.Errorf("checkpoint: capture %s: %w", name, err)
			break
		}
		secs = append(secs, Section{Name: name, Payload: data})
		seen[name] = true
	}
	if capErr == nil {
		for name, data := range r.retained {
			if !seen[name] {
				secs = append(secs, Section{Name: name, Payload: data})
				seen[name] = true
			}
		}
		for name, data := range r.pending {
			if !seen[name] {
				secs = append(secs, Section{Name: name, Payload: data})
			}
		}
	}
	r.mu.Unlock()
	if capErr != nil {
		mSaveErrors.Inc()
		return capErr
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i].Name < secs[j].Name })
	if err := Save(r.path, r.jobKey, secs); err != nil {
		mSaveErrors.Inc()
		return err
	}
	mSaves.Inc()
	for _, s := range secs {
		mSaveBytes.Add(uint64(len(s.Payload)))
	}
	return nil
}

// Start launches the background save ticker. Safe to call on a nil runner or
// with a non-positive interval (both no-ops). Save errors are logged at warn
// level and counted; the run itself keeps going.
func (r *Runner) Start() {
	if r == nil || r.interval <= 0 || r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				if err := r.SaveNow(); err != nil {
					obs.DefaultLogger().Warnf("checkpoint: periodic save: %v", err)
				}
			}
		}
	}()
}

// Stop halts the background ticker and waits for an in-flight save.
func (r *Runner) Stop() {
	if r == nil || r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
}

// Remove deletes the checkpoint file — called after a successful run so a
// later invocation does not resume a finished job.
func (r *Runner) Remove() error {
	if r == nil {
		return nil
	}
	if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// ctxKey carries the runner on a context; engines never import the CLI
// layer, so the context is the only channel.
type ctxKey struct{}

// WithRunner returns a context carrying r.
func WithRunner(ctx context.Context, r *Runner) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the runner on ctx, or nil (every method of which is a
// no-op).
func FromContext(ctx context.Context) *Runner {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Runner)
	return r
}
