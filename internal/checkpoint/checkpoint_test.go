package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ksettop/internal/faultinject"
)

func armFaults(t *testing.T, seed uint64, spec string) {
	t.Helper()
	rules, err := faultinject.ParseRules(spec)
	if err != nil {
		t.Fatalf("bad fault spec %q: %v", spec, err)
	}
	faultinject.Enable(seed, rules...)
	t.Cleanup(faultinject.Disable)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	secs := []Section{
		{Name: "solver.frontier#1", Payload: []byte("alpha")},
		{Name: "homology.reduction#2", Payload: []byte{0, 1, 2, 3, 255}},
		{Name: "empty#3", Payload: nil},
	}
	if err := Save(path, "toolX|star:n=4", secs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "toolX|star:n=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(secs) {
		t.Fatalf("got %d sections, want %d", len(got), len(secs))
	}
	for i, s := range secs {
		if got[i].Name != s.Name || !bytes.Equal(got[i].Payload, s.Payload) {
			t.Fatalf("section %d: got %q/%x, want %q/%x", i, got[i].Name, got[i].Payload, s.Name, s.Payload)
		}
	}
}

func TestLoadJobMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, "toolX|star:n=4", []Section{{Name: "a#1", Payload: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path, "toolY|star:n=4")
	if !errors.Is(err, ErrJobMismatch) {
		t.Fatalf("want ErrJobMismatch, got %v", err)
	}
	var jm *JobMismatchError
	if !errors.As(err, &jm) || jm.Got != "toolX|star:n=4" {
		t.Fatalf("mismatch detail: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), "job")
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("a missing file is a cold start, not corruption")
	}
}

// Every truncation prefix of a valid checkpoint must be rejected as corrupt
// (or as not-a-checkpoint), never half-loaded.
func TestLoadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	secs := []Section{
		{Name: "a#1", Payload: []byte("payload-one")},
		{Name: "b#2", Payload: []byte("payload-two")},
	}
	if err := Save(path, "job", secs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path, "job"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d bytes: want ErrCorrupt, got %v", n, len(data), err)
		}
	}
}

// Flipping any single bit of the file must never load silently-wrong
// sections: the loader reports corruption or a job mismatch (bit landed in
// the job key — caught by the key comparison before any payload is used).
func TestLoadBitFlips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: []byte("some payload bytes")}}); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), orig...)
			mut[i] ^= 1 << bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(path, "job")
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d loaded successfully", i, bit)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrJobMismatch) {
				t.Fatalf("bit flip at byte %d bit %d: unexpected error class: %v", i, bit, err)
			}
		}
	}
}

// An atomic save means a failed write leaves the previous checkpoint intact
// and no temp litter behind.
func TestSaveWriteFaultKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	armFaults(t, 1, "error:checkpoint.write@1")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: []byte("v2")}}); err == nil {
		t.Fatal("want injected write failure")
	}
	secs, err := Load(path, "job")
	if err != nil || string(secs[0].Payload) != "v1" {
		t.Fatalf("previous checkpoint lost after failed save: %v %v", secs, err)
	}
	assertNoTempLitter(t, dir)
}

func TestSaveFsyncFaultKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: []byte("v1")}}); err != nil {
		t.Fatal(err)
	}
	armFaults(t, 1, "error:checkpoint.fsync@1")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: []byte("v2")}}); err == nil {
		t.Fatal("want injected fsync failure")
	}
	secs, err := Load(path, "job")
	if err != nil || string(secs[0].Payload) != "v1" {
		t.Fatalf("previous checkpoint lost after failed fsync: %v %v", secs, err)
	}
	assertNoTempLitter(t, dir)
}

// A torn write (bytes corrupted on their way to disk) must be caught by the
// section CRCs at the next load.
func TestSaveTornWriteCaughtAtLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	armFaults(t, 7, "corrupt:checkpoint.write@1:8")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: bytes.Repeat([]byte("x"), 256)}}); err != nil {
		t.Fatalf("torn write still completes: %v", err)
	}
	faultinject.Disable()
	if _, err := Load(path, "job"); err == nil {
		t.Fatal("torn write loaded cleanly — CRC should have caught it")
	}
}

// On-disk rot injected at load must surface as an error, not as sections.
func TestLoadRotFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, "job", []Section{{Name: "a#1", Payload: bytes.Repeat([]byte("y"), 256)}}); err != nil {
		t.Fatal(err)
	}
	armFaults(t, 3, "corrupt:checkpoint.load@1:8")
	if _, err := Load(path, "job"); err == nil {
		t.Fatal("rotted load should fail")
	}
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".kset-checkpoint-") {
			t.Fatalf("temp file litter: %s", e.Name())
		}
	}
}

func TestNilRunnerIsNoOp(t *testing.T) {
	var r *Runner
	if r.LoadForResume() {
		t.Fatal("nil runner resumed")
	}
	r.Register("k", 1, func() ([]byte, error) { return nil, nil })()
	if _, ok := r.Resume("k", 1); ok {
		t.Fatal("nil runner returned a section")
	}
	if err := r.SaveNow(); err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Stop()
	if err := r.Remove(); err != nil {
		t.Fatal(err)
	}
	if r.Path() != "" {
		t.Fatal("nil runner path")
	}
	if FromContext(WithRunner(nil, nil)) != nil {
		t.Fatal("nil-runner context must stay empty")
	}
}

func TestRunnerSaveResumeCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	r1 := NewRunner(path, "job", 0)
	state := []byte("frontier-state")
	unreg := r1.Register("solver.frontier", 0xABCD, func() ([]byte, error) {
		return state, nil
	})
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}
	unreg()

	r2 := NewRunner(path, "job", 0)
	if !r2.LoadForResume() {
		t.Fatal("valid checkpoint did not load")
	}
	if _, ok := r2.Resume("solver.frontier", 0x1234); ok {
		t.Fatal("fingerprint mismatch must not resume")
	}
	payload, ok := r2.Resume("solver.frontier", 0xABCD)
	if !ok || !bytes.Equal(payload, state) {
		t.Fatalf("resume: got %q ok=%v", payload, ok)
	}
	if _, ok := r2.Resume("solver.frontier", 0xABCD); ok {
		t.Fatal("a consumed section must not resume twice")
	}
}

// A section loaded but not consumed (the resumed run has not re-reached that
// phase yet) must survive the next SaveNow, so a second crash before the
// phase re-runs does not lose its progress.
func TestRunnerCarriesUnconsumedSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	r1 := NewRunner(path, "job", 0)
	u1 := r1.Register("phaseA", 1, func() ([]byte, error) { return []byte("A"), nil })
	u2 := r1.Register("phaseB", 2, func() ([]byte, error) { return []byte("B"), nil })
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}
	u1()
	u2()

	r2 := NewRunner(path, "job", 0)
	r2.LoadForResume()
	if payload, ok := r2.Resume("phaseA", 1); !ok || string(payload) != "A" {
		t.Fatalf("phaseA resume: %q %v", payload, ok)
	}
	// phaseB not consumed; save only a new phaseA state.
	r2.Register("phaseA", 1, func() ([]byte, error) { return []byte("A2"), nil })
	if err := r2.SaveNow(); err != nil {
		t.Fatal(err)
	}

	r3 := NewRunner(path, "job", 0)
	r3.LoadForResume()
	if payload, ok := r3.Resume("phaseB", 2); !ok || string(payload) != "B" {
		t.Fatalf("unconsumed phaseB lost across a second save: %q %v", payload, ok)
	}
	if payload, ok := r3.Resume("phaseA", 1); !ok || string(payload) != "A2" {
		t.Fatalf("phaseA second-generation state: %q %v", payload, ok)
	}
}

// Unregister retains the engine's final bytes, so a SaveNow after the engine
// exited (the interrupt path) still persists its last progress.
func TestRunnerRetainsUnregisteredState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	r := NewRunner(path, "job", 0)
	state := []byte("v1")
	unreg := r.Register("solver.frontier", 9, func() ([]byte, error) { return state, nil })
	state = []byte("final")
	unreg()
	if err := r.SaveNow(); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(path, "job", 0)
	r2.LoadForResume()
	if payload, ok := r2.Resume("solver.frontier", 9); !ok || string(payload) != "final" {
		t.Fatalf("retained state: %q %v", payload, ok)
	}
}

// A capture error aborts the save and leaves the previous file intact.
func TestRunnerCaptureErrorKeepsPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	r := NewRunner(path, "job", 0)
	u := r.Register("k", 1, func() ([]byte, error) { return []byte("good"), nil })
	if err := r.SaveNow(); err != nil {
		t.Fatal(err)
	}
	u()
	r2 := NewRunner(path, "job", 0)
	r2.LoadForResume()
	r2.Register("k", 1, func() ([]byte, error) { return nil, errors.New("capture boom") })
	if err := r2.SaveNow(); err == nil {
		t.Fatal("capture error must fail the save")
	}
	r3 := NewRunner(path, "job", 0)
	r3.LoadForResume()
	if payload, ok := r3.Resume("k", 1); !ok || string(payload) != "good" {
		t.Fatalf("previous file damaged by failed save: %q %v", payload, ok)
	}
}

// Corrupt and foreign files cold-start a runner instead of failing it.
func TestRunnerColdStartOnBadFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]func(path string){
		"corrupt": func(path string) {
			os.WriteFile(path, []byte("ksetckpt\x01garbage-bytes"), 0o644)
		},
		"foreign-job": func(path string) {
			Save(path, "other-job", []Section{{Name: "k#1", Payload: []byte("x")}})
		},
		"not-a-checkpoint": func(path string) {
			os.WriteFile(path, []byte("#!/bin/sh\necho no\n"), 0o644)
		},
		"empty": func(path string) {
			os.WriteFile(path, nil, 0o644)
		},
	}
	for name, write := range cases {
		path := filepath.Join(dir, name+".ckpt")
		write(path)
		r := NewRunner(path, "job", 0)
		if r.LoadForResume() {
			t.Fatalf("%s: bad file reported as resumed", name)
		}
		if _, ok := r.Resume("k", 1); ok {
			t.Fatalf("%s: bad file staged sections", name)
		}
		// The runner must still be able to write fresh checkpoints.
		r.Register("k", 1, func() ([]byte, error) { return []byte("fresh"), nil })
		if err := r.SaveNow(); err != nil {
			t.Fatalf("%s: save after cold start: %v", name, err)
		}
	}
}

func TestRunnerRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	r := NewRunner(path, "job", 0)
	r.Register("k", 1, func() ([]byte, error) { return []byte("x"), nil })
	if err := r.SaveNow(); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("checkpoint file survives Remove")
	}
	if err := r.Remove(); err != nil {
		t.Fatalf("double remove must be clean: %v", err)
	}
}
