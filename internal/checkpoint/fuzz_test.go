package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the loader with arbitrary bytes: it must never panic,
// and whenever it does accept an image, re-encoding the parsed sections must
// reproduce an image that parses to the same job and sections (the format is
// canonical). Seeds cover valid images, truncations and bit flips — the
// crash shapes the durability contract promises to survive.
func FuzzDecode(f *testing.F) {
	valid := Encode("ksetbounds|star:n=4|1", []Section{
		{Name: "solver.frontier#1", Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{Name: "homology.reduction#2", Payload: bytes.Repeat([]byte{0xAB}, 64)},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(fileMagic)])
	f.Add([]byte{})
	f.Add([]byte("ksetckpt\x01"))
	f.Add([]byte("not a checkpoint at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	huge := Encode("job", []Section{{Name: "n#1", Payload: nil}})
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		job, secs, err := Decode("fuzz.ckpt", data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		re := Encode(job, secs)
		job2, secs2, err := Decode("fuzz.ckpt", re)
		if err != nil {
			t.Fatalf("re-encoded image rejected: %v", err)
		}
		if job2 != job || len(secs2) != len(secs) {
			t.Fatalf("re-encode drift: job %q→%q, %d→%d sections", job, job2, len(secs), len(secs2))
		}
		for i := range secs {
			if secs2[i].Name != secs[i].Name || !bytes.Equal(secs2[i].Payload, secs[i].Payload) {
				t.Fatalf("section %d drift", i)
			}
		}
	})
}
