// Package runctx holds the process-wide base context of the batch CLIs.
//
// The engines all have context-aware entry points, but a lot of existing
// surface (core.Analyze, experiments.RunAll, the non-Ctx wrappers) predates
// them and would need a signature sweep to thread a context everywhere. The
// tools instead install their signal-cancelled root context here at startup;
// the non-Ctx engine wrappers use Base() instead of context.Background(), so
// SIGINT/SIGTERM cancellation and the checkpoint runner reach every engine
// call in the process without touching those signatures.
//
// Library/test use never installs anything, so Base() is context.Background()
// and behavior is unchanged.
package runctx

import (
	"context"
	"sync/atomic"
)

var base atomic.Pointer[context.Context]

// SetBase installs ctx as the process-wide base context. Passing nil resets
// to context.Background(). Called once at tool startup, before any engine
// work; not intended for concurrent reinstallation mid-run.
func SetBase(ctx context.Context) {
	if ctx == nil {
		base.Store(nil)
		return
	}
	base.Store(&ctx)
}

// Base returns the installed base context, or context.Background() when no
// tool installed one.
func Base() context.Context {
	if p := base.Load(); p != nil {
		return *p
	}
	return context.Background()
}
