package memo

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Memo snapshots persist cache contents across process runs: the CLI tools
// rebuild the same symmetric closures on every invocation, and a disk
// snapshot (canonical key → closure, length-prefixed binary) turns the cold
// start into a file read. Caches opt in by registering a named section with
// an export/import pair; the value encoding lives with the cache owner
// (e.g. internal/graph encodes digraph slices), so this package stays free
// of domain types.

// snapshotMagic identifies the file format; bump the trailing version byte
// on incompatible changes. Loaders reject other magics outright and skip
// sections they have no importer for, so adding sections stays
// backward-compatible.
var snapshotMagic = []byte("ksetmemo\x01")

type snapshotSection struct {
	name    string
	export  func() ([]byte, error)
	restore func([]byte) error
}

var (
	sectionMu sync.Mutex
	sections  []snapshotSection
)

// RegisterSnapshot adds a named snapshot section. export serializes the
// owner's cache contents; restore restores them (typically via Cache.Put,
// so restoring is additive and thread-safe). Registration normally happens
// in the owner package's init.
func RegisterSnapshot(name string, export func() ([]byte, error), restore func([]byte) error) {
	sectionMu.Lock()
	defer sectionMu.Unlock()
	for _, s := range sections {
		if s.name == name {
			panic(fmt.Sprintf("memo: duplicate snapshot section %q", name))
		}
	}
	sections = append(sections, snapshotSection{name: name, export: export, restore: restore})
}

// SaveSnapshot writes every registered section to path (atomically: a temp
// file in the same directory is renamed over the target).
func SaveSnapshot(path string) error {
	sectionMu.Lock()
	secs := append([]snapshotSection(nil), sections...)
	sectionMu.Unlock()

	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	WriteUvarint(&buf, uint64(len(secs)))
	for _, s := range secs {
		payload, err := s.export()
		if err != nil {
			return fmt.Errorf("memo: exporting section %q: %w", s.name, err)
		}
		WriteUvarint(&buf, uint64(len(s.name)))
		buf.WriteString(s.name)
		WriteUvarint(&buf, uint64(len(payload)))
		buf.Write(payload)
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".memo-snapshot-*")
	if err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	return nil
}

// LoadSnapshot restores every section of the file that has a registered
// importer; sections without one are skipped, so snapshots survive the
// removal of a cache. Loading is additive — it Puts entries into live
// caches and never clears anything.
func LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	if !bytes.HasPrefix(data, snapshotMagic) {
		return fmt.Errorf("memo: %s is not a memo snapshot", path)
	}
	r := bytes.NewReader(data[len(snapshotMagic):])
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("memo: corrupt snapshot %s: %w", path, err)
	}
	sectionMu.Lock()
	importers := make(map[string]func([]byte) error, len(sections))
	for _, s := range sections {
		importers[s.name] = s.restore
	}
	sectionMu.Unlock()
	for i := uint64(0); i < count; i++ {
		name, err := ReadLengthPrefixed(r)
		if err != nil {
			return fmt.Errorf("memo: corrupt snapshot %s: %w", path, err)
		}
		payload, err := ReadLengthPrefixed(r)
		if err != nil {
			return fmt.Errorf("memo: corrupt snapshot %s: %w", path, err)
		}
		imp, ok := importers[string(name)]
		if !ok {
			continue
		}
		if err := imp(payload); err != nil {
			return fmt.Errorf("memo: importing section %q: %w", name, err)
		}
	}
	return nil
}

// WriteUvarint appends v to buf as a varint — the framing primitive shared
// by the snapshot file and the section codecs (e.g. internal/graph).
func WriteUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// ReadLengthPrefixed reads a varint length followed by that many bytes,
// rejecting lengths beyond the remaining input before allocating.
func ReadLengthPrefixed(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, r.Len())
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SnapshotEntries returns the cache's keys and values aligned, least
// recently used first — the order Restore should replay them in so that
// recency survives a round-trip.
func (c *Cache[V]) SnapshotEntries() ([]string, []V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	vals := make([]V, 0, len(c.entries))
	for e := c.tail; e != nil; e = e.prev {
		keys = append(keys, e.key)
		vals = append(vals, e.value)
	}
	return keys, vals
}

// Restore Puts the entries back in order (pair i of keys and vals).
// Replaying a SnapshotEntries dump LRU-first reproduces the recency order.
func (c *Cache[V]) Restore(keys []string, vals []V) {
	for i := range keys {
		c.Put(keys[i], vals[i])
	}
}

// Clear drops every entry (counters are kept; they are lifetime totals).
func (c *Cache[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry[V], c.capacity)
	c.head, c.tail = nil, nil
}
