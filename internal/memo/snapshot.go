package memo

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"ksettop/internal/faultinject"
)

// Memo snapshots persist cache contents across process runs: the CLI tools
// rebuild the same symmetric closures on every invocation, and a disk
// snapshot (canonical key → closure, length-prefixed binary) turns the cold
// start into a file read. Caches opt in by registering a named section with
// an export/import pair; the value encoding lives with the cache owner
// (e.g. internal/graph encodes digraph slices), so this package stays free
// of domain types.

// snapshotMagic identifies the file format; the trailing version byte bumps
// on incompatible changes. Version 2 appends a CRC32 (IEEE, over the section
// name and payload) to every section so that torn writes and bit rot are
// detected at load instead of deserialized into live caches; version 1
// snapshots (no checksums) are still accepted. Loaders reject other magics
// outright and skip sections they have no importer for, so adding sections
// stays backward-compatible.
var (
	snapshotMagic   = []byte("ksetmemo\x02")
	snapshotMagicV1 = []byte("ksetmemo\x01")
)

// ErrCorruptSnapshot is the sentinel every snapshot integrity failure —
// truncation, checksum mismatch, foreign bytes — matches under errors.Is.
// Callers treat it as "warn and start cold", never as fatal.
var ErrCorruptSnapshot = errors.New("memo: corrupt snapshot")

// CorruptSnapshotError reports a snapshot file that failed validation.
type CorruptSnapshotError struct {
	Path    string // the file that failed
	Section string // the section being read, if the failure was localized
	Reason  string // what failed
}

func (e *CorruptSnapshotError) Error() string {
	if e.Section != "" {
		return fmt.Sprintf("memo: corrupt snapshot %s (section %q): %s", e.Path, e.Section, e.Reason)
	}
	return fmt.Sprintf("memo: corrupt snapshot %s: %s", e.Path, e.Reason)
}

// Is matches ErrCorruptSnapshot.
func (e *CorruptSnapshotError) Is(target error) bool { return target == ErrCorruptSnapshot }

func corruptf(path, section, format string, args ...any) error {
	return &CorruptSnapshotError{Path: path, Section: section, Reason: fmt.Sprintf(format, args...)}
}

// sectionCRC is the integrity checksum of one v2 section: IEEE CRC32 over
// the section name followed by its payload.
func sectionCRC(name string, payload []byte) uint32 {
	crc := crc32.NewIEEE()
	io.WriteString(crc, name)
	crc.Write(payload)
	return crc.Sum32()
}

type snapshotSection struct {
	name    string
	export  func() ([]byte, error)
	restore func([]byte) error
}

var (
	sectionMu sync.Mutex
	sections  []snapshotSection
)

// RegisterSnapshot adds a named snapshot section. export serializes the
// owner's cache contents; restore restores them (typically via Cache.Put,
// so restoring is additive and thread-safe). Registration normally happens
// in the owner package's init.
func RegisterSnapshot(name string, export func() ([]byte, error), restore func([]byte) error) {
	sectionMu.Lock()
	defer sectionMu.Unlock()
	for _, s := range sections {
		if s.name == name {
			panic(fmt.Sprintf("memo: duplicate snapshot section %q", name))
		}
	}
	sections = append(sections, snapshotSection{name: name, export: export, restore: restore})
}

// SaveSnapshot writes every registered section to path (atomically: a temp
// file in the same directory is renamed over the target).
func SaveSnapshot(path string) error {
	sectionMu.Lock()
	secs := append([]snapshotSection(nil), sections...)
	sectionMu.Unlock()

	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	WriteUvarint(&buf, uint64(len(secs)))
	for _, s := range secs {
		payload, err := s.export()
		if err != nil {
			return fmt.Errorf("memo: exporting section %q: %w", s.name, err)
		}
		WriteUvarint(&buf, uint64(len(s.name)))
		buf.WriteString(s.name)
		WriteUvarint(&buf, uint64(len(payload)))
		buf.Write(payload)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], sectionCRC(s.name, payload))
		buf.Write(crc[:])
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), ".memo-snapshot-*")
	if err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("memo: %w", err)
	}
	return nil
}

// LoadSnapshot restores every section of the file that has a registered
// importer; sections without one are skipped, so snapshots survive the
// removal of a cache. Loading is additive — it Puts entries into live
// caches and never clears anything. Integrity failures (truncation, CRC
// mismatch, foreign bytes) return a *CorruptSnapshotError matching
// ErrCorruptSnapshot, and checksums are verified BEFORE any section is
// imported, so a corrupt file never half-populates the caches.
func LoadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("memo: %w", err)
	}
	faultinject.Corrupt(faultinject.PointSnapshotLoad, data)
	checked := true
	switch {
	case bytes.HasPrefix(data, snapshotMagic):
	case bytes.HasPrefix(data, snapshotMagicV1):
		checked = false // v1 predates checksums
	default:
		return corruptf(path, "", "not a memo snapshot")
	}
	r := bytes.NewReader(data[len(snapshotMagic):])
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return corruptf(path, "", "section count: %v", err)
	}
	type section struct {
		name    string
		payload []byte
	}
	secs := make([]section, 0, count)
	for i := uint64(0); i < count; i++ {
		name, err := ReadLengthPrefixed(r)
		if err != nil {
			return corruptf(path, "", "section %d name: %v", i, err)
		}
		payload, err := ReadLengthPrefixed(r)
		if err != nil {
			return corruptf(path, string(name), "payload: %v", err)
		}
		if checked {
			var crc [4]byte
			if _, err := io.ReadFull(r, crc[:]); err != nil {
				return corruptf(path, string(name), "checksum: %v", err)
			}
			if got, want := sectionCRC(string(name), payload), binary.LittleEndian.Uint32(crc[:]); got != want {
				return corruptf(path, string(name), "checksum mismatch (computed %08x, stored %08x)", got, want)
			}
		}
		secs = append(secs, section{name: string(name), payload: payload})
	}
	sectionMu.Lock()
	importers := make(map[string]func([]byte) error, len(sections))
	for _, s := range sections {
		importers[s.name] = s.restore
	}
	sectionMu.Unlock()
	for _, s := range secs {
		imp, ok := importers[s.name]
		if !ok {
			continue
		}
		if err := imp(s.payload); err != nil {
			return fmt.Errorf("memo: importing section %q: %w", s.name, err)
		}
	}
	return nil
}

// WriteUvarint appends v to buf as a varint — the framing primitive shared
// by the snapshot file and the section codecs (e.g. internal/graph).
func WriteUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// ReadLengthPrefixed reads a varint length followed by that many bytes,
// rejecting lengths beyond the remaining input before allocating.
func ReadLengthPrefixed(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, r.Len())
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SnapshotEntries returns the cache's keys and values aligned, least
// recently used first — the order Restore should replay them in so that
// recency survives a round-trip.
func (c *Cache[V]) SnapshotEntries() ([]string, []V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	vals := make([]V, 0, len(c.entries))
	for e := c.tail; e != nil; e = e.prev {
		keys = append(keys, e.key)
		vals = append(vals, e.value)
	}
	return keys, vals
}

// Restore Puts the entries back in order (pair i of keys and vals).
// Replaying a SnapshotEntries dump LRU-first reproduces the recency order.
func (c *Cache[V]) Restore(keys []string, vals []V) {
	for i := range keys {
		c.Put(keys[i], vals[i])
	}
}

// Clear drops every entry (counters are kept; they are lifetime totals).
func (c *Cache[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry[V], c.capacity)
	c.head, c.tail = nil, nil
}
