package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := NewCache[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("overwrite: got %d, want 10", v)
	}
	s := c.Stats()
	if s.Entries != 2 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a most recently used
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestDo(t *testing.T) {
	c := NewCache[string](4)
	calls := 0
	compute := func() (string, error) { calls++; return "v", nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", compute)
		if err != nil || v != "v" {
			t.Fatalf("Do: %q, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	_, err := c.Do("bad", func() (string, error) { return "", fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("Do should propagate errors")
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("errors must not be cached")
	}
}

func TestDisabled(t *testing.T) {
	defer SetEnabled(true)
	c := NewCache[int](4)
	c.Put("a", 1)
	SetEnabled(false)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must miss")
	}
	c.Put("b", 2)
	SetEnabled(true)
	if _, ok := c.Get("b"); ok {
		t.Fatal("disabled Put must be a no-op")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("re-enabling must restore the warm cache")
	}
}

func TestConcurrent(t *testing.T) {
	c := NewCache[int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%64)
				c.Put(key, i)
				c.Get(key)
				c.Do(key, func() (int, error) { return i, nil })
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("cache exceeded capacity: %d", n)
	}
}
