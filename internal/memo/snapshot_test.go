package memo

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ksettop/internal/faultinject"
)

func TestSnapshotEntriesRoundTrip(t *testing.T) {
	c := NewCache[int](8)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // bump recency: LRU order is now b, c, a

	keys, vals := c.SnapshotEntries()
	if len(keys) != 3 || keys[0] != "b" || keys[1] != "c" || keys[2] != "a" {
		t.Fatalf("LRU-first keys = %v, want [b c a]", keys)
	}

	fresh := NewCache[int](8)
	fresh.Restore(keys, vals)
	for key, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		if got, ok := fresh.Get(key); !ok || got != want {
			t.Errorf("restored %q = %d (ok=%v), want %d", key, got, ok, want)
		}
	}
	// Recency must survive: with capacity 2 the next Put should evict "b".
	tiny := NewCache[int](2)
	tiny.Restore(keys[1:], vals[1:]) // c, a
	tiny.Put("d", 4)
	if _, ok := tiny.Get("c"); ok {
		t.Error("LRU entry should have been evicted after restore+put")
	}
	if _, ok := tiny.Get("a"); !ok {
		t.Error("MRU entry should have survived restore+put")
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache[string](4)
	c.Put("x", "y")
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear", c.Len())
	}
	if _, ok := c.Get("x"); ok {
		t.Error("entry survived Clear")
	}
	c.Put("x", "z") // the list must still be consistent
	if got, ok := c.Get("x"); !ok || got != "z" {
		t.Errorf("post-Clear Put/Get = %q, %v", got, ok)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	cache := NewCache[string](8)
	RegisterSnapshot("test.section",
		func() ([]byte, error) {
			keys, vals := cache.SnapshotEntries()
			var out []byte
			for i := range keys {
				out = append(out, byte(len(keys[i])))
				out = append(out, keys[i]...)
				out = append(out, byte(len(vals[i])))
				out = append(out, vals[i]...)
			}
			return out, nil
		},
		func(payload []byte) error {
			for len(payload) > 0 {
				kn := int(payload[0])
				key := string(payload[1 : 1+kn])
				payload = payload[1+kn:]
				vn := int(payload[0])
				cache.Put(key, string(payload[1:1+vn]))
				payload = payload[1+vn:]
			}
			return nil
		})

	cache.Put("alpha", "1")
	cache.Put("beta", "22")
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	cache.Clear()
	if err := LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"alpha": "1", "beta": "22"} {
		if got, ok := cache.Get(key); !ok || got != want {
			t.Errorf("after load, %q = %q (ok=%v), want %q", key, got, ok, want)
		}
	}
}

// registerStringCache registers a length-prefixed string-cache section under
// name and returns the backing cache (sections cannot be unregistered, so
// every test uses a unique name).
func registerStringCache(name string) *Cache[string] {
	cache := NewCache[string](16)
	RegisterSnapshot(name,
		func() ([]byte, error) {
			keys, vals := cache.SnapshotEntries()
			var out []byte
			for i := range keys {
				out = append(out, byte(len(keys[i])))
				out = append(out, keys[i]...)
				out = append(out, byte(len(vals[i])))
				out = append(out, vals[i]...)
			}
			return out, nil
		},
		func(payload []byte) error {
			for len(payload) > 0 {
				kn := int(payload[0])
				key := string(payload[1 : 1+kn])
				payload = payload[1+kn:]
				vn := int(payload[0])
				cache.Put(key, string(payload[1:1+vn]))
				payload = payload[1+vn:]
			}
			return nil
		})
	return cache
}

// TestSnapshotBitFlipDetected flips every single bit of a v2 snapshot in
// turn and asserts the loader either rejects the file as corrupt or — when
// the flip lands in a section without an importer or in framing slack —
// never imports damaged bytes into the cache silently as a success with
// wrong contents.
func TestSnapshotBitFlipDetected(t *testing.T) {
	cache := registerStringCache("crc.section")
	cache.Put("alpha", "1")
	cache.Put("beta", "22")
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for bit := 0; bit < len(data)*8; bit++ {
		flipped := append([]byte(nil), data...)
		flipped[bit/8] ^= 1 << (bit % 8)
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		cache.Clear()
		err := LoadSnapshot(path)
		if err == nil {
			// The only single-bit flips a CRC over name+payload cannot see
			// are in the framing outside any section (e.g. the section count
			// collapsing to 0): the load must then be a no-op, never an
			// import of damaged bytes.
			if n := cache.Len(); n != 0 {
				t.Fatalf("bit %d: flipped snapshot loaded cleanly with %d entries", bit, n)
			}
			continue
		}
		if errors.Is(err, ErrCorruptSnapshot) {
			rejected++
			var ce *CorruptSnapshotError
			if !errors.As(err, &ce) {
				t.Fatalf("bit %d: err %v is not a *CorruptSnapshotError", bit, err)
			}
		}
		if n := cache.Len(); n != 0 {
			t.Fatalf("bit %d: corrupt load half-populated the cache (%d entries)", bit, n)
		}
	}
	if rejected == 0 {
		t.Fatal("no flip was detected by the checksum")
	}
}

// TestSnapshotTruncationDetected cuts a v2 snapshot short at every length
// and asserts the loader reports corruption instead of importing a prefix.
func TestSnapshotTruncationDetected(t *testing.T) {
	cache := registerStringCache("trunc.section")
	cache.Put("gamma", "333")
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cache.Clear()
		if err := LoadSnapshot(path); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("cut at %d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
		if n := cache.Len(); n != 0 {
			t.Fatalf("cut at %d: truncated load half-populated the cache (%d entries)", cut, n)
		}
	}
}

// TestSnapshotV1StillLoads pins backward compatibility: a version-1 file
// (no checksums) still restores.
func TestSnapshotV1StillLoads(t *testing.T) {
	cache := registerStringCache("v1.section")
	var buf bytes.Buffer
	buf.Write(snapshotMagicV1)
	WriteUvarint(&buf, 1)
	name := "v1.section"
	payload := []byte("\x01k\x01v") // key "k" → value "v" in the test codec
	WriteUvarint(&buf, uint64(len(name)))
	buf.WriteString(name)
	WriteUvarint(&buf, uint64(len(payload)))
	buf.Write(payload)
	path := filepath.Join(t.TempDir(), "snap-v1.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadSnapshot(path); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if got, ok := cache.Get("k"); !ok || got != "v" {
		t.Errorf("restored k = %q (ok=%v), want v", got, ok)
	}
}

// TestSnapshotFaultInjectedCorruption drives the memo.snapshot injection
// point: an armed corrupt rule flips seeded bits in the loaded bytes, and
// the checksums catch it.
func TestSnapshotFaultInjectedCorruption(t *testing.T) {
	cache := registerStringCache("fault.section")
	cache.Put("delta", "4444")
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(7, faultinject.Rule{
		Point:  faultinject.PointSnapshotLoad,
		Action: faultinject.ActionCorrupt,
		Every:  1, // every load
		Flips:  4,
	})
	defer faultinject.Disable()
	cache.Clear()
	if err := LoadSnapshot(path); err == nil {
		t.Fatal("fault-injected corruption loaded cleanly")
	}
	faultinject.Disable()
	if err := LoadSnapshot(path); err != nil {
		t.Fatalf("clean reload after disarm: %v", err)
	}
	if got, ok := cache.Get("delta"); !ok || got != "4444" {
		t.Errorf("restored delta = %q (ok=%v)", got, ok)
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadSnapshot(path); err == nil {
		t.Error("garbage file should be rejected")
	}
	if err := LoadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error (callers decide whether that is fatal)")
	}
}
