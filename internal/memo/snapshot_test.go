package memo

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotEntriesRoundTrip(t *testing.T) {
	c := NewCache[int](8)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // bump recency: LRU order is now b, c, a

	keys, vals := c.SnapshotEntries()
	if len(keys) != 3 || keys[0] != "b" || keys[1] != "c" || keys[2] != "a" {
		t.Fatalf("LRU-first keys = %v, want [b c a]", keys)
	}

	fresh := NewCache[int](8)
	fresh.Restore(keys, vals)
	for key, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		if got, ok := fresh.Get(key); !ok || got != want {
			t.Errorf("restored %q = %d (ok=%v), want %d", key, got, ok, want)
		}
	}
	// Recency must survive: with capacity 2 the next Put should evict "b".
	tiny := NewCache[int](2)
	tiny.Restore(keys[1:], vals[1:]) // c, a
	tiny.Put("d", 4)
	if _, ok := tiny.Get("c"); ok {
		t.Error("LRU entry should have been evicted after restore+put")
	}
	if _, ok := tiny.Get("a"); !ok {
		t.Error("MRU entry should have survived restore+put")
	}
}

func TestCacheClear(t *testing.T) {
	c := NewCache[string](4)
	c.Put("x", "y")
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear", c.Len())
	}
	if _, ok := c.Get("x"); ok {
		t.Error("entry survived Clear")
	}
	c.Put("x", "z") // the list must still be consistent
	if got, ok := c.Get("x"); !ok || got != "z" {
		t.Errorf("post-Clear Put/Get = %q, %v", got, ok)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	cache := NewCache[string](8)
	RegisterSnapshot("test.section",
		func() ([]byte, error) {
			keys, vals := cache.SnapshotEntries()
			var out []byte
			for i := range keys {
				out = append(out, byte(len(keys[i])))
				out = append(out, keys[i]...)
				out = append(out, byte(len(vals[i])))
				out = append(out, vals[i]...)
			}
			return out, nil
		},
		func(payload []byte) error {
			for len(payload) > 0 {
				kn := int(payload[0])
				key := string(payload[1 : 1+kn])
				payload = payload[1+kn:]
				vn := int(payload[0])
				cache.Put(key, string(payload[1:1+vn]))
				payload = payload[1+vn:]
			}
			return nil
		})

	cache.Put("alpha", "1")
	cache.Put("beta", "22")
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	cache.Clear()
	if err := LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"alpha": "1", "beta": "22"} {
		if got, ok := cache.Get(key); !ok || got != want {
			t.Errorf("after load, %q = %q (ok=%v), want %q", key, got, ok, want)
		}
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadSnapshot(path); err == nil {
		t.Error("garbage file should be rejected")
	}
	if err := LoadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error (callers decide whether that is fatal)")
	}
}
