package memo

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFlightDeduplicates(t *testing.T) {
	var f Flight[int]
	var calls atomic.Int32
	gate := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	results := make([]int, waiters)
	sharedCount := atomic.Int32{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := f.Do("key", func() (int, error) {
				calls.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Wait until a leader is inside fn, then release everyone. Goroutines
	// that arrive while the leader is in flight share its result; stragglers
	// that arrive after retirement become leaders of their own (the gate is
	// closed by then, so they return immediately). The invariant is exact:
	// every caller is either a leader or shared a leader's flight.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	leaders := calls.Load()
	if leaders < 1 || leaders > waiters {
		t.Errorf("fn ran %d times, want within [1, %d]", leaders, waiters)
	}
	if got := sharedCount.Load(); got != waiters-leaders {
		t.Errorf("%d shared results with %d leaders, want %d", got, leaders, waiters-leaders)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
	// The flight must be fully retired: a later call runs fn again.
	_, _, shared := f.Do("key", func() (int, error) { return 1, nil })
	if shared {
		t.Error("retired flight still shared")
	}
}

func TestFlightSharesErrors(t *testing.T) {
	var f Flight[int]
	sentinel := errors.New("boom")
	_, err, _ := f.Do("k", func() (int, error) { return 0, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Errors are not cached beyond the flight.
	v, err, _ := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v", v, err)
	}
}

func TestFlightLeaderPanicReleasesFollowers(t *testing.T) {
	var f Flight[int]
	entered := make(chan struct{})
	release := make(chan struct{})
	var followerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err, _ := f.Do("k", func() (int, error) {
			close(entered)
			<-release
			panic("injected")
		})
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("leader err = %v, want panic-derived error", err)
		}
	}()
	go func() {
		defer wg.Done()
		<-entered
		_, followerErr, _ = f.Do("k", func() (int, error) { return 9, nil })
	}()
	<-entered
	close(release)
	wg.Wait()
	// The follower either joined the panicked flight (panic-derived error)
	// or arrived after retirement and ran its own fn (9, nil) — both are
	// legal; hanging forever is not, and wg.Wait has already ruled that out.
	if followerErr != nil && !strings.Contains(followerErr.Error(), "panicked") {
		t.Errorf("follower err = %v", followerErr)
	}
}
