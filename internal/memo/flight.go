package memo

import (
	"fmt"
	"sync"

	"ksettop/internal/obs"
)

var (
	obsFlightLeaders = obs.DefaultRegistry().Counter("kset_flight_leaders_total",
		"singleflight calls that ran the computation")
	obsFlightShared = obs.DefaultRegistry().Counter("kset_flight_shared_total",
		"singleflight calls that joined an in-flight computation")
)

// Flight deduplicates concurrent computations of the same key: the first
// caller runs fn, later callers with the same key block and share the
// result. Unlike Cache, nothing is retained after the last caller returns —
// Flight collapses a thundering herd, Cache remembers. The bound-query
// service stacks one in front of its memo caches so that N identical
// in-flight requests cost one solve.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do runs fn for key, unless a call for key is already in flight, in which
// case it waits for that call and returns its result. shared reports whether
// the result was produced by another caller. Errors are shared like values;
// they are never cached beyond the flight.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		obsFlightShared.Inc()
		<-c.done
		return c.val, c.err, true
	}
	obsFlightLeaders.Inc()
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	// A panicking fn must not strand the followers: the deferred cleanup
	// converts the panic into the flight's shared error and releases them.
	// The leader gets the same error instead of a crash — Flight callers
	// (the service request path) treat leader and follower uniformly.
	finished := false
	defer func() {
		if !finished {
			c.err = fmt.Errorf("memo: flight leader panicked: %v", recover())
			err = c.err
		}
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, c.err, false
}
