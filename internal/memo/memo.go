// Package memo is the canonical-key result cache behind the repeated
// closure computations.
//
// The exponential objects this repository derives from a generator set —
// symmetric closures, minimal generator sets, whole models, closure counts —
// are pure functions of a canonical key (the sorted adjacency encoding of
// the set). Experiments E1–E14 and the CLI tools construct the same handful
// of models over and over; a bounded cache keyed by that canonical key turns
// every repeat construction into a map lookup.
//
// Caches are safe for concurrent use (experiments fan out across the par
// worker pool) and bounded: each cache holds at most its capacity entries
// and evicts least-recently-used ones. The package-level switch
// (SetEnabled(false) / the cmds' -memo=off flag) turns every cache into a
// pass-through, which pins that memoization never changes results.
package memo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ksettop/internal/obs"
)

// Process-wide memo metrics, aggregated across every Cache instance (the
// per-cache atomics behind Stats() remain the per-cache view).
var (
	obsHits = obs.DefaultRegistry().Counter("kset_memo_hits_total",
		"memo cache hits across all caches")
	obsMisses = obs.DefaultRegistry().Counter("kset_memo_misses_total",
		"memo cache misses across all caches")
	obsEvictions = obs.DefaultRegistry().Counter("kset_memo_evictions_total",
		"LRU evictions across all caches")
)

// Key builds the canonical cache key of a set of objects: the sorted
// per-object keys concatenated under a kind:n: prefix. Object keys must be
// fixed-width for a given n (graph.Digraph.Key is 8·n bytes), which makes
// the concatenation unambiguous. Shared by every generator-set cache so the
// keyspaces cannot drift apart.
func Key(kind string, n int, keys []string) string {
	sorted := make([]string, len(keys))
	copy(sorted, keys)
	sort.Strings(sorted)
	var b strings.Builder
	width := 0
	if len(sorted) > 0 {
		width = len(sorted[0])
	}
	b.Grow(len(kind) + 8 + len(sorted)*width)
	fmt.Fprintf(&b, "%s:%d:", kind, n)
	for _, k := range sorted {
		b.WriteString(k)
	}
	return b.String()
}

// enabled gates every cache in the process. On by default.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether memoization is active.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches memoization on or off process-wide. Turning it off
// does not drop existing entries; Get simply stops returning them, so
// re-enabling restores the warm cache.
func SetEnabled(on bool) { enabled.Store(on) }

// Stats is a point-in-time snapshot of one cache's effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Cache is a bounded, thread-safe, LRU-evicting memo table from canonical
// string keys to values of type V.
//
// Values are returned as stored: callers share them across lookups, so only
// immutable results (or results the convention treats as read-only, like
// generator slices) belong in a cache.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*entry[V]
	head     *entry[V] // most recently used
	tail     *entry[V] // least recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type entry[V any] struct {
	key        string
	value      V
	prev, next *entry[V]
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		entries:  make(map[string]*entry[V], capacity),
	}
}

// Get returns the cached value for key. When memoization is disabled it
// always misses.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if !Enabled() {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		obsMisses.Inc()
		return zero, false
	}
	c.moveToFront(e)
	c.hits.Add(1)
	obsHits.Inc()
	return e.value, true
}

// Put stores value under key, evicting the least-recently-used entry when
// the cache is full. A no-op while memoization is disabled.
func (c *Cache[V]) Put(key string, value V) {
	if !Enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.value = value
		c.moveToFront(e)
		return
	}
	if len(c.entries) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions.Add(1)
		obsEvictions.Inc()
	}
	e := &entry[V]{key: key, value: value}
	c.entries[key] = e
	c.pushFront(e)
}

// Do returns the cached value for key, computing and caching it on a miss.
// Concurrent misses on the same key may compute redundantly (computations
// here are pure, so the duplicate work is harmless and lock-free); errors are
// returned without caching.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(key, v)
	return v, nil
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// moveToFront marks e most recently used. Caller holds c.mu.
func (c *Cache[V]) moveToFront(e *entry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[V]) pushFront(e *entry[V]) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
