package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"ksettop/internal/bits"
	"ksettop/internal/memo"
	"ksettop/internal/model"
	"ksettop/internal/par"
)

// A sweep job names an op, a model (in the cli wire grammar, see
// cli.FormatModel) and an optional shared work budget in ranks. The op
// defines what one worker computes over a rank shard [lo, hi) of the
// model's closure enumeration and how shard payloads merge; both sides are
// deterministic, so the merged result is byte-identical to running the op
// sequentially over [0, Size()).
type Job struct {
	// Op names a registered op ("count", "enum").
	Op string `json:"op"`
	// Model is the cli-grammar model spec (FormatModel output round-trips
	// any model).
	Model string `json:"model"`
	// Budget, when > 0, bounds the total ranks the sweep may scan before a
	// typed budget error surfaces (see Budget).
	Budget int64 `json:"budget,omitempty"`
}

// Registered op names.
const (
	// OpCount counts the closure elements in a rank shard; the merge sums
	// shard counts. Payload: uvarint(count).
	OpCount = "count"
	// OpEnum serializes the closure elements of a rank shard in ascending
	// rank order; the merge concatenates shards in shard order, so the
	// result is the byte-identical serialization of the full sequential
	// enumeration. Payload per element: uvarint(set bits), then uvarint
	// deltas of the edge-bit positions.
	OpEnum = "enum"
)

// Op is one distributable sweep kind: Run computes a shard payload, Merge
// folds the per-shard payloads (indexed by shard, ascending) into the final
// result. Both must be deterministic functions of their inputs. Resume,
// when set, is Run with durable progress: it initializes from st (a rank
// position + op-specific partial accumulator recorded by an earlier
// interrupted execution of the same shard) and writes progress back through
// it, producing a payload byte-identical to a cold Run. Ops without Resume
// simply recompute from lo on a checkpointing worker.
type Op struct {
	Run    func(ctx context.Context, m *model.ClosedAbove, lo, hi int64) ([]byte, error)
	Resume func(ctx context.Context, m *model.ClosedAbove, lo, hi int64, st *ShardState) ([]byte, error)
	Merge  func(parts [][]byte) ([]byte, error)
}

var (
	opMu  sync.RWMutex
	opSet = map[string]Op{}
)

// RegisterOp adds a named op. Registering a duplicate name panics — op
// names are wire identifiers and must be unambiguous.
func RegisterOp(name string, op Op) {
	opMu.Lock()
	defer opMu.Unlock()
	if _, ok := opSet[name]; ok {
		panic(fmt.Sprintf("dist: duplicate op %q", name))
	}
	opSet[name] = op
}

func errUnknownOp(name string) error { return fmt.Errorf("dist: unknown op %q", name) }

// LookupOp resolves a registered op by name.
func LookupOp(name string) (Op, bool) {
	opMu.RLock()
	defer opMu.RUnlock()
	op, ok := opSet[name]
	return op, ok
}

func init() {
	RegisterOp(OpCount, Op{Run: runCount, Resume: runCountDurable, Merge: mergeCount})
	RegisterOp(OpEnum, Op{Run: runEnum, Resume: runEnumDurable, Merge: mergeEnum})
}

// rangeMasksCtx drives e.RangeMasks over [lo, hi) with cooperative
// cancellation: the yield wrapper polls every ~1k ranks, so a cancelled
// lease or tripped budget stops a worker well within one shard.
func rangeMasksCtx(ctx context.Context, e *model.Enumeration, lo, hi int64, yield func(mask bits.Words) bool) error {
	if ctx != nil && ctx.Err() != nil {
		return context.Cause(ctx)
	}
	ctl := &par.Ctl{}
	release := ctl.Bind(ctx)
	defer release()
	const pollMask = 1023
	seen := int64(0)
	cancelled := false
	e.RangeMasks(lo, hi, func(mask bits.Words) bool {
		if seen&pollMask == 0 && ctl.Stopped() {
			cancelled = true
			return false
		}
		seen++
		return yield(mask)
	})
	if cancelled || ctl.Stopped() {
		return fmt.Errorf("dist: shard aborted: %w", context.Cause(ctx))
	}
	return nil
}

func runCount(ctx context.Context, m *model.ClosedAbove, lo, hi int64) ([]byte, error) {
	e, err := m.Enumeration()
	if err != nil {
		return nil, err
	}
	var count uint64
	if err := rangeMasksCtx(ctx, e, lo, hi, func(bits.Words) bool {
		count++
		return true
	}); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, count)
	return buf.Bytes(), nil
}

func mergeCount(parts [][]byte) ([]byte, error) {
	var total uint64
	for i, p := range parts {
		n, err := binary.ReadUvarint(bytes.NewReader(p))
		if err != nil {
			return nil, fmt.Errorf("dist: count shard %d payload: %w", i, err)
		}
		total += n
	}
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, total)
	return buf.Bytes(), nil
}

// DecodeCount unpacks a merged OpCount result.
func DecodeCount(payload []byte) (int64, error) {
	n, err := binary.ReadUvarint(bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("dist: count payload: %w", err)
	}
	return int64(n), nil
}

func runEnum(ctx context.Context, m *model.ClosedAbove, lo, hi int64) ([]byte, error) {
	e, err := m.Enumeration()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var positions []int
	if err := rangeMasksCtx(ctx, e, lo, hi, func(mask bits.Words) bool {
		positions = positions[:0]
		mask.ForEachBit(func(bit int) { positions = append(positions, bit) })
		sort.Ints(positions)
		memo.WriteUvarint(&buf, uint64(len(positions)))
		prev := 0
		for _, p := range positions {
			memo.WriteUvarint(&buf, uint64(p-prev))
			prev = p
		}
		return true
	}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func mergeEnum(parts [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	for _, p := range parts {
		buf.Write(p)
	}
	return buf.Bytes(), nil
}

// jobKey is the canonical identity of one sweep: op, canonical generator
// keys, rank-space size, shard count and budget. The journal header stores
// it so a warm restart only ever resumes the SAME sweep — same op, same
// model, same sharding.
func jobKey(job Job, m *model.ClosedAbove, total int64, shards int) string {
	gens := m.Generators()
	keys := make([]string, len(gens))
	for i, g := range gens {
		keys[i] = g.Key()
	}
	return fmt.Sprintf("%s|%s|%d|%d|%d", job.Op, memo.Key("dist", m.N(), keys), total, shards, job.Budget)
}
