package dist

import (
	"fmt"
	"reflect"
	"testing"
)

// The ring's whole value is determinism: identical membership must produce
// identical placement on every process, or coordinator and journal disagree
// about who owned what.
func TestRingDeterministicPlacement(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		// Insertion order must not matter.
		for _, n := range []string{"c:3", "a:1", "b:2"} {
			r.Add(n)
		}
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("shard/%d", i)
		s1, s2 := r1.Sequence(key, 3), r2.Sequence(key, 3)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("key %q: sequences differ: %v vs %v", key, s1, s2)
		}
		if len(s1) != 3 {
			t.Fatalf("key %q: want 3 distinct nodes, got %v", key, s1)
		}
		seen := map[string]bool{}
		for _, n := range s1 {
			if seen[n] {
				t.Fatalf("key %q: duplicate node in sequence %v", key, s1)
			}
			seen[n] = true
		}
	}
}

// Removing a node must move ONLY the keys it owned, each to its old
// second-in-sequence — the deterministic replica handoff.
func TestRingHandoffMinimalDisruption(t *testing.T) {
	nodes := []string{"a:1", "b:2", "c:3", "d:4"}
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	type placement struct{ owner, next string }
	before := map[string]placement{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("shard/%d", i)
		seq := r.Sequence(key, 2)
		before[key] = placement{owner: seq[0], next: seq[1]}
	}
	const victim = "c:3"
	r.Remove(victim)
	moved := 0
	for key, p := range before {
		owner := r.Sequence(key, 1)[0]
		if p.owner != victim {
			if owner != p.owner {
				t.Fatalf("key %q: owner changed %s → %s though %s left", key, p.owner, owner, victim)
			}
			continue
		}
		moved++
		if owner != p.next {
			t.Fatalf("key %q: want handoff to old replica %s, got %s", key, p.next, owner)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; test vacuous")
	}
}

// With virtual nodes, placement should be roughly balanced.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	workers := []string{"a:1", "b:2", "c:3"}
	for _, n := range workers {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Sequence(fmt.Sprintf("shard/%d", i), 1)[0]]++
	}
	for _, n := range workers {
		if frac := float64(counts[n]) / keys; frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys; want a rough third", n, 100*frac)
		}
	}
}

func TestRingSequenceClamps(t *testing.T) {
	r := NewRing(4)
	if got := r.Sequence("x", 2); got != nil {
		t.Fatalf("empty ring: want nil, got %v", got)
	}
	r.Add("only:1")
	if got := r.Sequence("x", 5); len(got) != 1 || got[0] != "only:1" {
		t.Fatalf("want [only:1], got %v", got)
	}
}
