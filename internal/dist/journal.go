package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ksettop/internal/faultinject"
	"ksettop/internal/memo"
)

// The shard journal is the coordinator's crash-recovery log: an append-only
// file of committed shard results, each record CRC-checksummed, extending
// the internal/memo snapshot framing (varint length prefixes + IEEE CRC32).
// A coordinator killed mid-sweep reopens the journal on restart, replays the
// committed prefix, and resumes dispatching only the missing shards — the
// merged output is byte-identical to an uninterrupted run because the merge
// consumes results in shard-index order regardless of commit order.
//
// Torn writes are the expected failure mode of a killed coordinator, so
// loading is forgiving by construction: the committed prefix up to the first
// damaged record is kept and the file is truncated back to the last good
// byte, while a journal whose header names a DIFFERENT job (or a foreign
// file) is reset — resuming someone else's sweep would corrupt results.

// journalMagic identifies the journal format (trailing version byte).
var journalMagic = []byte("ksetdistj\x01")

// recordCRC is the integrity checksum of one journal record: IEEE CRC32
// over the shard index (as a varint) followed by the payload.
func recordCRC(shard uint64, payload []byte) uint32 {
	var tmp [binary.MaxVarintLen64]byte
	crc := crc32.NewIEEE()
	crc.Write(tmp[:binary.PutUvarint(tmp[:], shard)])
	crc.Write(payload)
	return crc.Sum32()
}

// Journal is an open shard journal positioned for appends.
type Journal struct {
	path string
	f    *os.File
}

// OpenJournal opens (or creates) the journal at path for the job identified
// by jobKey and returns the shard results already committed. A missing or
// empty file starts a fresh journal; a journal for a different job or with
// an unreadable header is reset to fresh (reported via resumed=false); a
// journal with a torn or corrupt tail keeps its good prefix and truncates
// the damage away. resumed reports whether any committed shards were
// recovered.
func OpenJournal(path, jobKey string) (j *Journal, commits map[int][]byte, resumed bool, err error) {
	commits = make(map[int][]byte)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, false, fmt.Errorf("dist: journal: %w", err)
	}
	faultinject.Corrupt(faultinject.PointDistJournal, data)

	goodEnd, fresh := 0, true
	if len(data) > 0 {
		end, ok := parseJournal(data, jobKey, commits)
		if ok {
			goodEnd, fresh = end, false
		} else {
			// Foreign file or another job's sweep: reset. Never resume it.
			commits = make(map[int][]byte)
		}
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("dist: journal: %w", err)
	}
	if fresh {
		var buf bytes.Buffer
		buf.Write(journalMagic)
		memo.WriteUvarint(&buf, uint64(len(jobKey)))
		buf.WriteString(jobKey)
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(buf.Bytes(), 0)
		}
		if err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("dist: journal: %w", err)
		}
		goodEnd = buf.Len()
	} else if goodEnd < len(data) {
		// Torn tail from the previous crash: drop it so appends stay framed.
		if err := f.Truncate(int64(goodEnd)); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("dist: journal: %w", err)
		}
	}
	if _, err := f.Seek(int64(goodEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("dist: journal: %w", err)
	}
	return &Journal{path: path, f: f}, commits, len(commits) > 0, nil
}

// parseJournal validates the header against jobKey and reads records into
// commits, returning the byte offset after the last intact record and
// whether the header matched. A damaged record stops the scan (its offset is
// the truncation point); a damaged header reports ok=false.
func parseJournal(data []byte, jobKey string, commits map[int][]byte) (end int, ok bool) {
	if !bytes.HasPrefix(data, journalMagic) {
		return 0, false
	}
	r := bytes.NewReader(data[len(journalMagic):])
	key, err := memo.ReadLengthPrefixed(r)
	if err != nil || string(key) != jobKey {
		return 0, false
	}
	total := len(data)
	end = total - r.Len()
	for r.Len() > 0 {
		shard, err := binary.ReadUvarint(r)
		if err != nil {
			return end, true
		}
		payload, err := memo.ReadLengthPrefixed(r)
		if err != nil {
			return end, true
		}
		var crc [4]byte
		if _, err := io.ReadFull(r, crc[:]); err != nil {
			return end, true
		}
		if recordCRC(shard, payload) != binary.LittleEndian.Uint32(crc[:]) {
			return end, true
		}
		commits[int(shard)] = payload
		end = total - r.Len()
	}
	return end, true
}

// Append durably commits one shard result: a single buffered write followed
// by fsync, so a record is either wholly present or (after a crash)
// truncated away on the next open.
func (j *Journal) Append(shard int, payload []byte) error {
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, uint64(shard))
	memo.WriteUvarint(&buf, uint64(len(payload)))
	buf.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], recordCRC(uint64(shard), payload))
	buf.Write(crc[:])
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("dist: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// Remove deletes the journal from disk — called after a sweep completes and
// its result has been handed to the caller; the next sweep starts fresh.
func (j *Journal) Remove() error {
	j.f.Close()
	return os.Remove(j.path)
}
