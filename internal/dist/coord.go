package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/faultinject"
	"ksettop/internal/model"
	"ksettop/internal/par"
)

// CoordConfig tunes one Coordinator. Zero values select the defaults.
type CoordConfig struct {
	// Workers are the worker addresses (host:port). Empty means no
	// distribution: Run falls back to the local in-process engine.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring.
	// Default 64.
	VNodes int
	// Shards overrides the shard count of a sweep (0 = 8 × workers,
	// clamped to the rank-space size). The shard count is part of the job
	// identity: a journal resume requires the same sharding.
	Shards int
	// LeaseTTL bounds one shard grant; an expired lease is a forfeited
	// shard. Default 15s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the failure-detector probe period. Default 500ms.
	HeartbeatEvery time.Duration
	// HeartbeatMisses consecutive failed probes declare a worker dead (its
	// leases are revoked and re-dispatched). Default 3.
	HeartbeatMisses int
	// MaxAttempts bounds grants per shard (hedges included). Default 6.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential re-dispatch backoff
	// (deterministic jitter on top). Defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Straggler hedging: a shard outstanding longer than
	// HedgeFactor × (HedgeQuantile of committed-shard durations) — never
	// below HedgeMin, and only once ≥ 3 samples exist — is speculatively
	// re-dispatched to the next replica. Defaults 0.95 / 2.0 / 200ms.
	HedgeQuantile  float64
	HedgeFactor    float64
	HedgeMin       time.Duration
	DisableHedging bool
	// MinRanks is the rank-space size below which CountClosure declines
	// distribution (HTTP overhead dominates tiny sweeps). Default 4096.
	MinRanks int64
	// SweepBudget is the shared work budget (ranks) applied to
	// distributor-initiated sweeps; 0 = unlimited.
	SweepBudget int64
	// NoWorkerGrace is how long a sweep waits with zero live workers before
	// failing. Default 10s.
	NoWorkerGrace time.Duration
	// Seed drives the deterministic retry jitter. Default 1.
	Seed uint64
	// JournalPath, when set, journals shard commits so a killed coordinator
	// warm-restarts the sweep without recomputing committed shards.
	JournalPath string
	// Client is the HTTP client for grants and heartbeats. Default: plain
	// client (per-request contexts carry the deadlines).
	Client *http.Client
	// Logf receives operational log lines. Default log.Printf.
	Logf func(format string, args ...any)
}

func (c CoordConfig) withDefaults() CoordConfig {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 2.0
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 200 * time.Millisecond
	}
	if c.MinRanks <= 0 {
		c.MinRanks = 4096
	}
	if c.NoWorkerGrace <= 0 {
		c.NoWorkerGrace = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// CoordStats is a point-in-time snapshot of the coordinator counters,
// merged into /statz by ksetserved.
type CoordStats struct {
	Workers              int    `json:"workers"`                // configured workers
	LiveWorkers          int    `json:"live_workers"`           // passing the failure detector now
	Sweeps               uint64 `json:"sweeps"`                 // sweeps completed
	SweepsFailed         uint64 `json:"sweeps_failed"`          // sweeps that returned an error
	ShardsCommitted      uint64 `json:"shards_committed"`       // shard results accepted
	LeasesGranted        uint64 `json:"leases_granted"`         // shard grants dispatched (retries + hedges included)
	LeaseExpiries        uint64 `json:"lease_expiries"`         // grants that timed out or were revoked
	Retries              uint64 `json:"retries"`                // failed grants scheduled for re-dispatch
	Hedges               uint64 `json:"hedges"`                 // speculative straggler re-dispatches
	HedgeWins            uint64 `json:"hedge_wins"`             // hedged grants that committed first
	CorruptResponses     uint64 `json:"corrupt_responses"`      // payloads failing their checksum
	DuplicateResults     uint64 `json:"duplicate_results"`      // completions for already-committed shards
	CrossCheckMismatches uint64 `json:"cross_check_mismatches"` // duplicate results that disagreed byte-wise
	WorkerDeaths         uint64 `json:"worker_deaths"`          // failure-detector death declarations
	WorkerRejoins        uint64 `json:"worker_rejoins"`         // dead workers that came back
	JournalResumes       uint64 `json:"journal_resumes"`        // sweeps warm-restarted from a journal
	JournalSkips         uint64 `json:"journal_skips"`          // shards recovered from the journal (not recomputed)
	BudgetTrips          uint64 `json:"budget_trips"`           // sweeps stopped by the shared budget
}

// Coordinator drives distributed sweeps over a fixed worker set, detecting
// failures by lease expiry and heartbeats and recovering by deterministic
// ring re-dispatch. It implements model.Distributor, so installing it with
// model.SetDistributor routes the engines' heavy closure counts through the
// worker fleet transparently.
type Coordinator struct {
	cfg    CoordConfig
	ring   *Ring
	client *http.Client

	mu      sync.Mutex
	live    map[string]bool
	started bool

	runMu sync.Mutex // one sweep at a time: the journal is per-sweep state

	sweeps, sweepsFailed, shardsCommitted       atomic.Uint64
	leasesGranted, leaseExpiries, retries       atomic.Uint64
	hedges, hedgeWins                           atomic.Uint64
	corruptResponses, duplicateResults          atomic.Uint64
	crossCheckMismatches                        atomic.Uint64
	workerDeaths, workerRejoins                 atomic.Uint64
	journalResumes, journalSkips, budgetTrips   atomic.Uint64
}

// NewCoordinator builds a Coordinator over cfg.Workers. All workers start
// presumed live; call Start to run the heartbeat failure detector (lease
// expiry alone still guarantees progress without it).
func NewCoordinator(cfg CoordConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		client: cfg.Client,
		live:   make(map[string]bool, len(cfg.Workers)),
	}
	for _, w := range cfg.Workers {
		c.ring.Add(w)
		c.live[w] = true
	}
	return c
}

// Start launches one heartbeat monitor per worker; they run until ctx is
// cancelled. Calling Start more than once is a no-op.
func (c *Coordinator) Start(ctx context.Context) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	for _, w := range c.cfg.Workers {
		go c.monitor(ctx, w)
	}
}

// monitor is one worker's failure detector: HeartbeatMisses consecutive
// failed probes declare it dead (revoking its leases), one success revives
// it.
func (c *Coordinator) monitor(ctx context.Context, worker string) {
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if c.probe(ctx, worker) {
			misses = 0
			c.setLive(worker, true)
			continue
		}
		misses++
		if misses >= c.cfg.HeartbeatMisses {
			c.setLive(worker, false)
		}
	}
}

func (c *Coordinator) probe(ctx context.Context, worker string) bool {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.HeartbeatEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+worker+"/dist/v1/heartbeat", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Coordinator) setLive(worker string, live bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live[worker] == live {
		return
	}
	c.live[worker] = live
	if live {
		c.workerRejoins.Add(1)
		c.cfg.Logf("dist: worker %s rejoined", worker)
	} else {
		c.workerDeaths.Add(1)
		c.cfg.Logf("dist: worker %s declared dead (%d missed heartbeats)", worker, c.cfg.HeartbeatMisses)
	}
}

func (c *Coordinator) isLive(worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live[worker]
}

// LiveWorkers reports how many workers currently pass the failure detector.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ok := range c.live {
		if ok {
			n++
		}
	}
	return n
}

// Stats returns the current counters.
func (c *Coordinator) Stats() CoordStats {
	return CoordStats{
		Workers:              len(c.cfg.Workers),
		LiveWorkers:          c.LiveWorkers(),
		Sweeps:               c.sweeps.Load(),
		SweepsFailed:         c.sweepsFailed.Load(),
		ShardsCommitted:      c.shardsCommitted.Load(),
		LeasesGranted:        c.leasesGranted.Load(),
		LeaseExpiries:        c.leaseExpiries.Load(),
		Retries:              c.retries.Load(),
		Hedges:               c.hedges.Load(),
		HedgeWins:            c.hedgeWins.Load(),
		CorruptResponses:     c.corruptResponses.Load(),
		DuplicateResults:     c.duplicateResults.Load(),
		CrossCheckMismatches: c.crossCheckMismatches.Load(),
		WorkerDeaths:         c.workerDeaths.Load(),
		WorkerRejoins:        c.workerRejoins.Load(),
		JournalResumes:       c.journalResumes.Load(),
		JournalSkips:         c.journalSkips.Load(),
		BudgetTrips:          c.budgetTrips.Load(),
	}
}

// splitmix64 drives the deterministic retry jitter (same PRNG family the
// fault injector uses, so chaos schedules replay exactly).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff returns the re-dispatch delay after `attempt` failed grants of
// shard: RetryBase × 2^(attempt−1), capped at RetryMax, plus a deterministic
// jitter in [0, RetryBase) so synchronized failures do not re-dispatch in
// lockstep.
func (c *Coordinator) backoff(shard, attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt-1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	j := splitmix64(c.cfg.Seed ^ uint64(shard)<<32 ^ uint64(attempt))
	return d + time.Duration(j%uint64(c.cfg.RetryBase))
}

// grant is one outstanding shard lease.
type grant struct {
	worker  string
	started time.Time
	cancel  context.CancelFunc
	hedge   bool
}

// shardState is the coordinator-side life of one rank shard.
type shardState struct {
	idx       int
	from, to  int64
	key       string
	committed bool
	result    []byte
	attempts  int
	grants    []*grant
	nextTry   time.Time
	lastErr   error
}

// completion is one grant's outcome, posted by its sender goroutine.
type completion struct {
	shard   int
	g       *grant
	payload []byte
	err     error
	elapsed time.Duration
}

// errCorruptResponse marks a payload failing its checksum.
var errCorruptResponse = errors.New("dist: corrupt shard response (checksum mismatch)")

// Run executes job across the configured workers and returns the merged
// result — byte-identical to the sequential engine's output for the same
// job, whatever crashes, expiries, retries or hedges happened on the way.
// With no workers configured it falls back to the local in-process engine.
func (c *Coordinator) Run(ctx context.Context, job Job) ([]byte, error) {
	out, err := c.run(ctx, job)
	if err != nil {
		c.sweepsFailed.Add(1)
		return nil, err
	}
	c.sweeps.Add(1)
	return out, nil
}

func (c *Coordinator) run(ctx context.Context, job Job) ([]byte, error) {
	if len(c.cfg.Workers) == 0 {
		return RunLocal(ctx, job, c.cfg.Shards)
	}
	op, ok := LookupOp(job.Op)
	if !ok {
		return nil, fmt.Errorf("dist: unknown op %q", job.Op)
	}
	m, err := cli.ParseModel(job.Model)
	if err != nil {
		return nil, err
	}
	total, err := m.EnumerationSize()
	if err != nil {
		return nil, err
	}
	if total <= 0 {
		return op.Merge(nil)
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = 8 * len(c.cfg.Workers)
	}
	if int64(shards) > total {
		shards = int(total)
	}

	c.runMu.Lock()
	defer c.runMu.Unlock()

	var jr *Journal
	commits := map[int][]byte{}
	if c.cfg.JournalPath != "" {
		var resumed bool
		jr, commits, resumed, err = OpenJournal(c.cfg.JournalPath, jobKey(job, m, total, shards))
		if err != nil {
			return nil, err
		}
		if resumed {
			c.journalResumes.Add(1)
			c.journalSkips.Add(uint64(len(commits)))
			c.cfg.Logf("dist: resumed sweep from journal, %d/%d shards already committed", len(commits), shards)
		}
	}
	closeJournal := true
	defer func() {
		if jr != nil && closeJournal {
			jr.Close()
		}
	}()

	budget := NewBudget(job.Budget)
	states := make([]*shardState, shards)
	remaining := 0
	for i := 0; i < shards; i++ {
		from, to := par.ShardBounds(total, shards, i)
		st := &shardState{idx: i, from: from, to: to, key: "shard/" + strconv.Itoa(i)}
		if p, ok := commits[i]; ok {
			st.committed = true
			st.result = p
		} else {
			remaining++
		}
		states[i] = st
	}

	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	done := make(chan completion, 64)
	var samples []time.Duration // committed-grant durations, for the hedge threshold
	var noWorkerSince time.Time

	tick := c.cfg.LeaseTTL / 20
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	fail := func(err error) ([]byte, error) {
		cancelAll()
		return nil, err
	}

	for remaining > 0 {
		now := time.Now()

		// Revoke leases held by workers the failure detector declared dead:
		// cancelling the grant context fails the send immediately, which
		// re-dispatches the shard to the next ring replica.
		for _, st := range states {
			if st.committed {
				continue
			}
			for _, g := range st.grants {
				if !c.isLive(g.worker) {
					g.cancel()
				}
			}
		}

		// Dispatch: fresh grants, backoff retries, straggler hedges.
		threshold := hedgeThreshold(samples, c.cfg)
		for _, st := range states {
			if st.committed || budget.Tripped() {
				continue
			}
			if len(st.grants) == 0 {
				if st.attempts >= c.cfg.MaxAttempts {
					return fail(fmt.Errorf("dist: shard %d failed after %d attempts: %w", st.idx, st.attempts, st.lastErr))
				}
				if now.Before(st.nextTry) {
					continue
				}
				target, ok := c.pickWorker(st.key, st.attempts)
				if !ok {
					if noWorkerSince.IsZero() {
						noWorkerSince = now
					} else if now.Sub(noWorkerSince) > c.cfg.NoWorkerGrace {
						return fail(fmt.Errorf("dist: no live workers for %s", c.cfg.NoWorkerGrace))
					}
					continue
				}
				noWorkerSince = time.Time{}
				c.launch(runCtx, job, st, target, false, done)
				continue
			}
			// Straggler hedge: exactly one grant outstanding, past the
			// percentile threshold, attempts left, and a distinct replica
			// available.
			if c.cfg.DisableHedging || len(st.grants) != 1 || threshold <= 0 || st.attempts >= c.cfg.MaxAttempts {
				continue
			}
			if now.Sub(st.grants[0].started) < threshold {
				continue
			}
			target, ok := c.pickWorker(st.key, st.attempts)
			if !ok || target == st.grants[0].worker {
				continue
			}
			c.hedges.Add(1)
			c.launch(runCtx, job, st, target, true, done)
		}

		select {
		case <-runCtx.Done():
			return fail(fmt.Errorf("dist: sweep aborted: %w", context.Cause(runCtx)))
		case <-ticker.C:
		case comp := <-done:
			st := states[comp.shard]
			for i, g := range st.grants {
				if g == comp.g {
					st.grants = append(st.grants[:i], st.grants[i+1:]...)
					break
				}
			}
			if st.committed {
				// First-committed wins; a duplicate completion (hedge or
				// retry racing the winner) only cross-checks.
				if comp.err == nil {
					c.duplicateResults.Add(1)
					if !bytes.Equal(comp.payload, st.result) {
						c.crossCheckMismatches.Add(1)
						c.cfg.Logf("dist: shard %d: duplicate result from %s DISAGREES with committed result", st.idx, comp.g.worker)
					}
				}
				continue
			}
			if comp.err != nil {
				st.lastErr = fmt.Errorf("worker %s: %w", comp.g.worker, comp.err)
				if errors.Is(comp.err, errCorruptResponse) {
					c.corruptResponses.Add(1)
				}
				if errors.Is(comp.err, context.DeadlineExceeded) || errors.Is(comp.err, context.Canceled) {
					c.leaseExpiries.Add(1)
				}
				c.retries.Add(1)
				st.nextTry = now.Add(c.backoff(st.idx, st.attempts))
				continue
			}
			// Commit. The fault hook models the coordinator being killed at
			// this exact commit point: the shard is NOT journaled and the
			// sweep dies; a restart resumes from the journaled prefix.
			if err := faultinject.Hit(faultinject.PointDistCommit); err != nil {
				return fail(fmt.Errorf("dist: coordinator killed at commit of shard %d: %w", st.idx, err))
			}
			if jr != nil {
				if err := jr.Append(st.idx, comp.payload); err != nil {
					return fail(err)
				}
			}
			st.committed = true
			st.result = comp.payload
			remaining--
			c.shardsCommitted.Add(1)
			samples = append(samples, comp.elapsed)
			if comp.g.hedge {
				c.hedgeWins.Add(1)
			}
			if err := budget.Charge(st.to - st.from); err != nil {
				c.budgetTrips.Add(1)
				return fail(err)
			}
		}
	}

	parts := make([][]byte, shards)
	for i, st := range states {
		parts[i] = st.result
	}
	out, err := op.Merge(parts)
	if err != nil {
		return nil, err
	}
	if jr != nil {
		closeJournal = false
		if err := jr.Remove(); err != nil {
			c.cfg.Logf("dist: removing completed journal: %v", err)
		}
	}
	return out, nil
}

// pickWorker resolves attempt number `attempt` of a shard to a live worker:
// the shard's ring sequence (owner first, then the deterministic handoff
// order) filtered to live members, indexed cyclically by attempt.
func (c *Coordinator) pickWorker(key string, attempt int) (string, bool) {
	seq := c.ring.Sequence(key, len(c.cfg.Workers))
	c.mu.Lock()
	liveSeq := seq[:0:0]
	for _, w := range seq {
		if c.live[w] {
			liveSeq = append(liveSeq, w)
		}
	}
	c.mu.Unlock()
	if len(liveSeq) == 0 {
		return "", false
	}
	return liveSeq[attempt%len(liveSeq)], true
}

// launch grants shard st to worker: a lease-bounded exec request whose
// outcome lands on done.
func (c *Coordinator) launch(runCtx context.Context, job Job, st *shardState, worker string, hedge bool, done chan completion) {
	gctx, cancel := context.WithTimeout(runCtx, c.cfg.LeaseTTL)
	g := &grant{worker: worker, started: time.Now(), cancel: cancel, hedge: hedge}
	st.grants = append(st.grants, g)
	st.attempts++
	c.leasesGranted.Add(1)
	req := ExecRequest{
		Op:      job.Op,
		Model:   job.Model,
		Shard:   st.idx,
		From:    st.from,
		To:      st.to,
		LeaseMs: c.cfg.LeaseTTL.Milliseconds(),
	}
	shard := st.idx
	go func() {
		defer cancel()
		payload, err := c.exec(gctx, worker, req)
		comp := completion{shard: shard, g: g, payload: payload, err: err, elapsed: time.Since(g.started)}
		select {
		case done <- comp:
		case <-runCtx.Done():
		}
	}()
}

// exec performs one grant's HTTP round-trip and verifies the payload
// checksum.
func (c *Coordinator) exec(ctx context.Context, worker string, req ExecRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+worker+"/dist/v1/exec", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Normalize transport-wrapped cancellations so the event loop's
			// lease-expiry classification sees the context sentinel.
			return nil, fmt.Errorf("lease: %w", ctxErr)
		}
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(data, 200))
	}
	var er ExecResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(er.Payload) != er.CRC {
		return nil, errCorruptResponse
	}
	return er.Payload, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// hedgeThreshold computes the straggler cutoff from committed-grant
// durations: HedgeFactor × the HedgeQuantile percentile, floored at
// HedgeMin; 0 (no hedging) until 3 samples exist.
func hedgeThreshold(samples []time.Duration, cfg CoordConfig) time.Duration {
	if len(samples) < 3 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := int(cfg.HedgeQuantile * float64(len(sorted)-1))
	th := time.Duration(cfg.HedgeFactor * float64(sorted[q]))
	if th < cfg.HedgeMin {
		th = cfg.HedgeMin
	}
	return th
}

// CountClosure implements model.Distributor: heavy closure counts are
// distributed across the worker fleet; tiny rank spaces, a dead fleet, or a
// failed sweep (budget trips excepted — those are the caller's answer)
// decline, so the caller's local engine still completes the count.
func (c *Coordinator) CountClosure(ctx context.Context, m *model.ClosedAbove) (int64, bool, error) {
	if c == nil || len(c.cfg.Workers) == 0 {
		return 0, false, nil
	}
	size, err := m.EnumerationSize()
	if err != nil || size < c.cfg.MinRanks {
		return 0, false, nil
	}
	if c.LiveWorkers() == 0 {
		return 0, false, nil
	}
	out, err := c.Run(ctx, Job{Op: OpCount, Model: cli.FormatModel(m), Budget: c.cfg.SweepBudget})
	if err != nil {
		if errors.Is(err, model.ErrEnumerationBudget) {
			return 0, true, err
		}
		c.cfg.Logf("dist: distributed count failed (%v); falling back to local engine", err)
		return 0, false, nil
	}
	count, err := DecodeCount(out)
	if err != nil {
		return 0, true, err
	}
	return count, true, nil
}
