package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/faultinject"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
)

// CoordConfig tunes one Coordinator. Zero values select the defaults.
type CoordConfig struct {
	// Workers are the worker addresses (host:port). Empty means no
	// distribution: Run falls back to the local in-process engine.
	Workers []string
	// VNodes is the virtual-node count per worker on the hash ring.
	// Default 64.
	VNodes int
	// Shards overrides the shard count of a sweep (0 = 8 × workers,
	// clamped to the rank-space size). The shard count is part of the job
	// identity: a journal resume requires the same sharding.
	Shards int
	// LeaseTTL bounds one shard grant; an expired lease is a forfeited
	// shard. Default 15s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the failure-detector probe period. Default 500ms.
	HeartbeatEvery time.Duration
	// HeartbeatMisses consecutive failed probes declare a worker dead (its
	// leases are revoked and re-dispatched). Default 3.
	HeartbeatMisses int
	// MaxAttempts bounds grants per shard (hedges included). Default 6.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential re-dispatch backoff
	// (deterministic jitter on top). Defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Straggler hedging: a shard outstanding longer than
	// HedgeFactor × (HedgeQuantile of committed-shard durations) — never
	// below HedgeMin, and only once ≥ 3 samples exist — is speculatively
	// re-dispatched to the next replica. Defaults 0.95 / 2.0 / 200ms.
	HedgeQuantile  float64
	HedgeFactor    float64
	HedgeMin       time.Duration
	DisableHedging bool
	// MinRanks is the rank-space size below which CountClosure declines
	// distribution (HTTP overhead dominates tiny sweeps). Default 4096.
	MinRanks int64
	// SweepBudget is the shared work budget (ranks) applied to
	// distributor-initiated sweeps; 0 = unlimited.
	SweepBudget int64
	// NoWorkerGrace is how long a sweep waits with zero live workers before
	// degrading to local compute (or failing, with DisableDegrade). Default
	// 10s.
	NoWorkerGrace time.Duration
	// VerifyFraction ∈ [0, 1] is the deterministic fraction of committed
	// shards re-executed on a distinct ring replica before the merge, the
	// Byzantine cross-validation a CRC check cannot provide. 0 disables
	// verification (shards flagged by a disagreeing duplicate are still
	// verified).
	VerifyFraction float64
	// QuorumReplicas is how many distinct per-worker results a divergence
	// majority vote needs before it can decide; short of replicas, a local
	// recompute arbitrates. Default 3.
	QuorumReplicas int
	// QuarantineThreshold is the per-worker divergence score that trips
	// quarantine (divergences count 1.0, corrupt responses 1.0, transport
	// failures 0.25, successes decay 0.5). 0 selects the default 3;
	// negative disables quarantine entirely.
	QuarantineThreshold float64
	// QuarantineBackoff/QuarantineBackoffMax shape the half-open probe
	// schedule of a quarantined worker: base × 2^(trips−1), capped.
	// Defaults 1s / 5m.
	QuarantineBackoff    time.Duration
	QuarantineBackoffMax time.Duration
	// DegradeFloor is the minimum live-and-trusted worker count below which
	// a sweep degrades to local compute. Default 1.
	DegradeFloor int
	// DisableDegrade makes a sweep fail instead of degrading to local
	// compute when the trusted fleet falls below the floor.
	DisableDegrade bool
	// Seed drives the deterministic retry jitter. Default 1.
	Seed uint64
	// JournalPath, when set, journals shard commits so a killed coordinator
	// warm-restarts the sweep without recomputing committed shards.
	JournalPath string
	// Client is the HTTP client for grants and heartbeats. Default: plain
	// client (per-request contexts carry the deadlines).
	Client *http.Client
	// Log receives operational log lines. Default obs.DefaultLogger()
	// (leveled JSON on stderr).
	Log *obs.Logger
	// Logf, when set and Log is nil, receives every log line
	// pre-formatted — the pre-obs hook, kept so embedders and tests that
	// silence or capture logs keep working.
	Logf func(format string, args ...any)
}

func (c CoordConfig) withDefaults() CoordConfig {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 2.0
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 200 * time.Millisecond
	}
	if c.MinRanks <= 0 {
		c.MinRanks = 4096
	}
	if c.NoWorkerGrace <= 0 {
		c.NoWorkerGrace = 10 * time.Second
	}
	if c.VerifyFraction < 0 {
		c.VerifyFraction = 0
	}
	if c.VerifyFraction > 1 {
		c.VerifyFraction = 1
	}
	if c.QuorumReplicas <= 0 {
		c.QuorumReplicas = 3
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.QuarantineBackoff <= 0 {
		c.QuarantineBackoff = time.Second
	}
	if c.QuarantineBackoffMax <= 0 {
		c.QuarantineBackoffMax = 5 * time.Minute
	}
	if c.DegradeFloor <= 0 {
		c.DegradeFloor = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Log == nil {
		if c.Logf != nil {
			c.Log = obs.NewFuncLogger(c.Logf)
		} else {
			c.Log = obs.DefaultLogger()
		}
	}
	return c
}

// CoordStats is a point-in-time snapshot of the coordinator counters,
// merged into /statz by ksetserved.
type CoordStats struct {
	Workers              int    `json:"workers"`                // configured workers
	LiveWorkers          int    `json:"live_workers"`           // passing the failure detector now
	Sweeps               uint64 `json:"sweeps"`                 // sweeps completed
	SweepsFailed         uint64 `json:"sweeps_failed"`          // sweeps that returned an error
	ShardsCommitted      uint64 `json:"shards_committed"`       // shard results accepted
	LeasesGranted        uint64 `json:"leases_granted"`         // shard grants dispatched (retries + hedges included)
	LeaseExpiries        uint64 `json:"lease_expiries"`         // grants that timed out or were revoked
	Retries              uint64 `json:"retries"`                // failed grants scheduled for re-dispatch
	Hedges               uint64 `json:"hedges"`                 // speculative straggler re-dispatches
	HedgeWins            uint64 `json:"hedge_wins"`             // hedged grants that committed first
	CorruptResponses     uint64 `json:"corrupt_responses"`      // payloads failing their checksum
	DuplicateResults     uint64 `json:"duplicate_results"`      // completions for already-committed shards
	CrossCheckMismatches uint64 `json:"cross_check_mismatches"` // duplicate results that disagreed byte-wise
	WorkerDeaths         uint64 `json:"worker_deaths"`          // failure-detector death declarations
	WorkerRejoins        uint64 `json:"worker_rejoins"`         // dead workers that came back
	JournalResumes       uint64 `json:"journal_resumes"`        // sweeps warm-restarted from a journal
	JournalSkips         uint64 `json:"journal_skips"`          // shards recovered from the journal (not recomputed)
	BudgetTrips          uint64 `json:"budget_trips"`           // sweeps stopped by the shared budget

	// Byzantine trust layer.
	VerifySelected         uint64 `json:"verify_selected"`         // shards flagged for cross-validation
	VerifyOK               uint64 `json:"verify_ok"`               // verifications settled by an agreeing replica
	VerifyMismatches       uint64 `json:"verify_mismatches"`       // verification replicas disagreeing with the commit
	VerifyQuorumVotes      uint64 `json:"verify_quorum_votes"`     // verification replica votes collected
	VerifyLocalArbiter     uint64 `json:"verify_local_arbiter"`    // verifications arbitrated by local recompute
	VerifyOverturned       uint64 `json:"verify_overturned"`       // committed shard results replaced by the decided truth
	DivergenceEvents       uint64 `json:"divergence_events"`       // byte-divergence events observed (duplicates + verification)
	QuarantineTrips        uint64 `json:"quarantine_trips"`        // workers tripped into quarantine
	QuarantineProbes       uint64 `json:"quarantine_probes"`       // half-open re-admission probes sent
	QuarantineReadmissions uint64 `json:"quarantine_readmissions"` // quarantined workers re-admitted
	QuarantinedWorkers     int    `json:"quarantined_workers"`     // workers quarantined now
	DegradedSweeps         uint64 `json:"degraded_sweeps"`         // sweeps (or counts) served by local compute below the trust floor
}

// Coordinator drives distributed sweeps over a fixed worker set, detecting
// failures by lease expiry and heartbeats and recovering by deterministic
// ring re-dispatch. It implements model.Distributor, so installing it with
// model.SetDistributor routes the engines' heavy closure counts through the
// worker fleet transparently.
type Coordinator struct {
	cfg    CoordConfig
	ring   *Ring
	client *http.Client
	log    *obs.Logger
	met    coordMetrics

	mu      sync.Mutex
	live    map[string]bool
	health  map[string]*workerHealth
	started bool

	runMu sync.Mutex // one sweep at a time: the journal is per-sweep state
}

// coordMetrics is the coordinator's event counters, held in a
// per-instance obs.Registry so tests can spin up many coordinators
// in-process without sharing state, /statz snapshots them in one pass,
// and ksetserved exposes them on /metrics.
type coordMetrics struct {
	reg                                        *obs.Registry
	sweeps, sweepsFailed, shardsCommitted      *obs.Counter
	leasesGranted, leaseExpiries, retries      *obs.Counter
	hedges, hedgeWins                          *obs.Counter
	corruptResponses, duplicateResults         *obs.Counter
	crossCheckMismatches                       *obs.Counter
	workerDeaths, workerRejoins                *obs.Counter
	journalResumes, journalSkips, budgetTrips  *obs.Counter
	verifySelected, verifyOK, verifyMismatches *obs.Counter
	verifyQuorumVotes, verifyLocalArbiter      *obs.Counter
	verifyOverturned, divergenceEvents         *obs.Counter
	quarantineTrips, quarantineProbes          *obs.Counter
	quarantineReadmissions, degraded           *obs.Counter
	liveWorkers, quarantinedWorkers            *obs.Gauge
}

func newCoordMetrics() coordMetrics {
	r := obs.NewRegistry()
	return coordMetrics{
		reg:             r,
		sweeps:          r.Counter("kset_dist_coord_sweeps_total", "sweeps completed"),
		sweepsFailed:    r.Counter("kset_dist_coord_sweeps_failed_total", "sweeps that returned an error"),
		shardsCommitted: r.Counter("kset_dist_coord_shards_committed_total", "shard results accepted"),
		leasesGranted:   r.Counter("kset_dist_coord_leases_granted_total", "shard grants dispatched (retries + hedges included)"),
		leaseExpiries:   r.Counter("kset_dist_coord_lease_expiries_total", "grants that timed out or were revoked"),
		retries:         r.Counter("kset_dist_coord_retries_total", "failed grants scheduled for re-dispatch"),
		hedges:          r.Counter("kset_dist_coord_hedges_total", "speculative straggler re-dispatches"),
		hedgeWins:       r.Counter("kset_dist_coord_hedge_wins_total", "hedged grants that committed first"),
		corruptResponses: r.Counter("kset_dist_coord_corrupt_responses_total",
			"payloads failing their checksum"),
		duplicateResults: r.Counter("kset_dist_coord_duplicate_results_total",
			"completions for already-committed shards"),
		crossCheckMismatches: r.Counter("kset_dist_coord_cross_check_mismatches_total",
			"duplicate results that disagreed byte-wise"),
		workerDeaths:   r.Counter("kset_dist_coord_worker_deaths_total", "failure-detector death declarations"),
		workerRejoins:  r.Counter("kset_dist_coord_worker_rejoins_total", "dead workers that came back"),
		journalResumes: r.Counter("kset_dist_coord_journal_resumes_total", "sweeps warm-restarted from a journal"),
		journalSkips: r.Counter("kset_dist_coord_journal_skips_total",
			"shards recovered from the journal (not recomputed)"),
		budgetTrips: r.Counter("kset_dist_coord_budget_trips_total", "sweeps stopped by the shared budget"),
		verifySelected: r.Counter("kset_dist_coord_verify_selected_total",
			"shards flagged for Byzantine cross-validation"),
		verifyOK: r.Counter("kset_dist_coord_verify_ok_total",
			"verifications settled by an agreeing replica"),
		verifyMismatches: r.Counter("kset_dist_coord_verify_mismatches_total",
			"verification replicas disagreeing with the committed result"),
		verifyQuorumVotes: r.Counter("kset_dist_coord_verify_quorum_votes_total",
			"verification replica votes collected"),
		verifyLocalArbiter: r.Counter("kset_dist_coord_verify_local_arbiter_total",
			"verifications arbitrated by deterministic local recompute"),
		verifyOverturned: r.Counter("kset_dist_coord_verify_overturned_total",
			"committed shard results replaced by the decided truth"),
		divergenceEvents: r.Counter("kset_dist_coord_divergence_events_total",
			"byte-divergence events observed (duplicate cross-checks + verification)"),
		quarantineTrips: r.Counter("kset_dist_coord_quarantine_trips_total",
			"workers tripped into quarantine by their divergence score"),
		quarantineProbes: r.Counter("kset_dist_coord_quarantine_probes_total",
			"half-open re-admission probes sent to quarantined workers"),
		quarantineReadmissions: r.Counter("kset_dist_coord_quarantine_readmissions_total",
			"quarantined workers re-admitted after a passing probe"),
		degraded: r.Counter("kset_dist_coord_degraded_sweeps_total",
			"sweeps or counts served by local compute below the trust floor"),
		liveWorkers:        r.Gauge("kset_dist_coord_live_workers", "workers passing the failure detector"),
		quarantinedWorkers: r.Gauge("kset_dist_coord_quarantined_workers", "workers quarantined now"),
	}
}

// NewCoordinator builds a Coordinator over cfg.Workers. All workers start
// presumed live; call Start to run the heartbeat failure detector (lease
// expiry alone still guarantees progress without it).
func NewCoordinator(cfg CoordConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		client: cfg.Client,
		log:    cfg.Log,
		met:    newCoordMetrics(),
		live:   make(map[string]bool, len(cfg.Workers)),
		health: make(map[string]*workerHealth, len(cfg.Workers)),
	}
	for _, w := range cfg.Workers {
		c.ring.Add(w)
		c.live[w] = true
		c.health[w] = &workerHealth{}
	}
	c.met.liveWorkers.Set(int64(len(c.live)))
	return c
}

// MetricsRegistry exposes the coordinator's per-instance metric
// registry (ksetserved merges it into /metrics).
func (c *Coordinator) MetricsRegistry() *obs.Registry {
	if c == nil {
		return nil
	}
	return c.met.reg
}

// Start launches one heartbeat monitor per worker; they run until ctx is
// cancelled. Calling Start more than once is a no-op.
func (c *Coordinator) Start(ctx context.Context) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	for _, w := range c.cfg.Workers {
		go c.monitor(ctx, w)
	}
}

// monitor is one worker's failure detector: HeartbeatMisses consecutive
// failed probes declare it dead (revoking its leases), one success revives
// it. Each probe interval carries seeded ±20% jitter so several
// coordinators watching the same fleet never synchronize probe bursts, and
// each tick also gives due half-open quarantine probes a chance to run.
func (c *Coordinator) monitor(ctx context.Context, worker string) {
	wh := ringHash(worker)
	var tick uint64
	t := time.NewTimer(c.probeInterval(wh, tick))
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		tick++
		t.Reset(c.probeInterval(wh, tick))
		if c.probe(ctx, worker) {
			misses = 0
			c.setLive(worker, true)
		} else {
			misses++
			if misses >= c.cfg.HeartbeatMisses {
				c.setLive(worker, false)
			}
		}
		c.maybeProbeQuarantined(ctx)
	}
}

// probeInterval is HeartbeatEvery × [0.8, 1.2), deterministic in (seed,
// worker, tick).
func (c *Coordinator) probeInterval(workerHash, tick uint64) time.Duration {
	base := c.cfg.HeartbeatEvery
	span := uint64(base) * 2 / 5
	if span == 0 {
		return base
	}
	j := splitmix64(c.cfg.Seed ^ workerHash ^ (tick * 0x9e3779b97f4a7c15))
	return base*4/5 + time.Duration(j%span)
}

func (c *Coordinator) probe(ctx context.Context, worker string) bool {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.HeartbeatEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, "http://"+worker+"/dist/v1/heartbeat", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *Coordinator) setLive(worker string, live bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.live[worker] == live {
		return
	}
	c.live[worker] = live
	n := int64(0)
	for _, ok := range c.live {
		if ok {
			n++
		}
	}
	c.met.liveWorkers.Set(n)
	if live {
		c.met.workerRejoins.Inc()
		c.log.Infof("dist: worker %s rejoined", worker)
	} else {
		c.met.workerDeaths.Inc()
		c.log.Warnf("dist: worker %s declared dead (%d missed heartbeats)", worker, c.cfg.HeartbeatMisses)
	}
}

func (c *Coordinator) isLive(worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live[worker]
}

// LiveWorkers reports how many workers currently pass the failure detector.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ok := range c.live {
		if ok {
			n++
		}
	}
	return n
}

// Stats returns the current counters, snapshotted through the registry
// in a single pass (one lock acquisition) rather than field-by-field
// loads, so the struct is one coherent point-in-time view.
func (c *Coordinator) Stats() CoordStats {
	v := c.met.reg.Values()
	u := func(name string) uint64 { return uint64(v[name]) }
	return CoordStats{
		Workers:              len(c.cfg.Workers),
		LiveWorkers:          int(v["kset_dist_coord_live_workers"]),
		Sweeps:               u("kset_dist_coord_sweeps_total"),
		SweepsFailed:         u("kset_dist_coord_sweeps_failed_total"),
		ShardsCommitted:      u("kset_dist_coord_shards_committed_total"),
		LeasesGranted:        u("kset_dist_coord_leases_granted_total"),
		LeaseExpiries:        u("kset_dist_coord_lease_expiries_total"),
		Retries:              u("kset_dist_coord_retries_total"),
		Hedges:               u("kset_dist_coord_hedges_total"),
		HedgeWins:            u("kset_dist_coord_hedge_wins_total"),
		CorruptResponses:     u("kset_dist_coord_corrupt_responses_total"),
		DuplicateResults:     u("kset_dist_coord_duplicate_results_total"),
		CrossCheckMismatches: u("kset_dist_coord_cross_check_mismatches_total"),
		WorkerDeaths:         u("kset_dist_coord_worker_deaths_total"),
		WorkerRejoins:        u("kset_dist_coord_worker_rejoins_total"),
		JournalResumes:       u("kset_dist_coord_journal_resumes_total"),
		JournalSkips:         u("kset_dist_coord_journal_skips_total"),
		BudgetTrips:          u("kset_dist_coord_budget_trips_total"),

		VerifySelected:         u("kset_dist_coord_verify_selected_total"),
		VerifyOK:               u("kset_dist_coord_verify_ok_total"),
		VerifyMismatches:       u("kset_dist_coord_verify_mismatches_total"),
		VerifyQuorumVotes:      u("kset_dist_coord_verify_quorum_votes_total"),
		VerifyLocalArbiter:     u("kset_dist_coord_verify_local_arbiter_total"),
		VerifyOverturned:       u("kset_dist_coord_verify_overturned_total"),
		DivergenceEvents:       u("kset_dist_coord_divergence_events_total"),
		QuarantineTrips:        u("kset_dist_coord_quarantine_trips_total"),
		QuarantineProbes:       u("kset_dist_coord_quarantine_probes_total"),
		QuarantineReadmissions: u("kset_dist_coord_quarantine_readmissions_total"),
		QuarantinedWorkers:     int(v["kset_dist_coord_quarantined_workers"]),
		DegradedSweeps:         u("kset_dist_coord_degraded_sweeps_total"),
	}
}

// splitmix64 drives the deterministic retry jitter (same PRNG family the
// fault injector uses, so chaos schedules replay exactly).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff returns the re-dispatch delay after `attempt` failed grants of
// shard: RetryBase × 2^(attempt−1), capped at RetryMax, plus a deterministic
// jitter in [0, RetryBase) so synchronized failures do not re-dispatch in
// lockstep.
func (c *Coordinator) backoff(shard, attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt-1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	j := splitmix64(c.cfg.Seed ^ uint64(shard)<<32 ^ uint64(attempt))
	return d + time.Duration(j%uint64(c.cfg.RetryBase))
}

// grant is one outstanding shard lease.
type grant struct {
	worker  string
	started time.Time
	cancel  context.CancelFunc
	hedge   bool
	verify  bool // a verification re-execution, not a placement grant
}

// shardState is the coordinator-side life of one rank shard.
type shardState struct {
	idx       int
	from, to  int64
	key       string
	committed bool
	result    []byte
	attempts  int
	grants    []*grant
	nextTry   time.Time
	lastErr   error

	// Byzantine cross-validation state.
	committedBy   string            // worker whose bytes committed ("(local)" for degraded compute)
	journaled     bool              // commit (or correction) written to the journal
	needVerify    bool              // selected for (or forced into) verification
	verified      bool              // verification settled
	arbiter       bool              // local-recompute arbiter in flight
	votes         map[string][]byte // per-worker result bytes, committer included
	verifyTried   map[string]bool   // workers already asked to verify (failures included)
	verifyNextTry time.Time         // backoff after a failed verification attempt
}

// completion is one grant's outcome, posted by its sender goroutine.
type completion struct {
	shard   int
	g       *grant
	payload []byte
	spans   []obs.SpanData // worker-side spans for the traced request
	err     error
	elapsed time.Duration
}

// errCorruptResponse marks a payload failing its checksum.
var errCorruptResponse = errors.New("dist: corrupt shard response (checksum mismatch)")

// Run executes job across the configured workers and returns the merged
// result — byte-identical to the sequential engine's output for the same
// job, whatever crashes, expiries, retries or hedges happened on the way.
// With no workers configured it falls back to the local in-process engine.
func (c *Coordinator) Run(ctx context.Context, job Job) ([]byte, error) {
	ctx, span := obs.StartSpan(ctx, "dist.sweep")
	span.SetAttr("op", job.Op)
	span.SetAttr("model", job.Model)
	defer span.End()
	out, err := c.run(ctx, job)
	if err != nil {
		c.met.sweepsFailed.Inc()
		span.SetAttr("error", err.Error())
		return nil, err
	}
	c.met.sweeps.Inc()
	return out, nil
}

func (c *Coordinator) run(ctx context.Context, job Job) ([]byte, error) {
	if len(c.cfg.Workers) == 0 {
		return RunLocal(ctx, job, c.cfg.Shards)
	}
	op, ok := LookupOp(job.Op)
	if !ok {
		return nil, fmt.Errorf("dist: unknown op %q", job.Op)
	}
	m, err := cli.ParseModel(job.Model)
	if err != nil {
		return nil, err
	}
	total, err := m.EnumerationSize()
	if err != nil {
		return nil, err
	}
	if total <= 0 {
		return op.Merge(nil)
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = 8 * len(c.cfg.Workers)
	}
	if int64(shards) > total {
		shards = int(total)
	}

	c.runMu.Lock()
	defer c.runMu.Unlock()

	var jr *Journal
	commits := map[int][]byte{}
	if c.cfg.JournalPath != "" {
		var resumed bool
		jr, commits, resumed, err = OpenJournal(c.cfg.JournalPath, jobKey(job, m, total, shards))
		if err != nil {
			return nil, err
		}
		if resumed {
			c.met.journalResumes.Inc()
			c.met.journalSkips.Add(uint64(len(commits)))
			c.log.Infof("dist: resumed sweep from journal, %d/%d shards already committed", len(commits), shards)
		}
	}
	closeJournal := true
	defer func() {
		if jr != nil && closeJournal {
			jr.Close()
		}
	}()

	budget := NewBudget(job.Budget)
	v := c.newVerifier(job, op, m, jr)
	states := make([]*shardState, shards)
	remaining := 0
	for i := 0; i < shards; i++ {
		from, to := par.ShardBounds(total, shards, i)
		st := &shardState{
			idx: i, from: from, to: to, key: "shard/" + strconv.Itoa(i),
			votes:       map[string][]byte{},
			verifyTried: map[string]bool{},
		}
		if p, ok := commits[i]; ok {
			// Journal-recovered shards were verified (or accepted) by the
			// previous incarnation; they are not re-verified.
			st.committed = true
			st.result = p
			st.journaled = true
			st.verified = true
		} else {
			remaining++
			if v.selected(i) {
				st.needVerify = true
				v.pending++
				c.met.verifySelected.Inc()
			}
		}
		states[i] = st
	}

	runCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	done := make(chan completion, 64)
	var samples []time.Duration // committed-grant durations, for the hedge threshold
	var noWorkerSince time.Time

	tick := c.cfg.LeaseTTL / 20
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	fail := func(err error) ([]byte, error) {
		cancelAll()
		return nil, err
	}

	for remaining > 0 || v.pending > 0 {
		now := time.Now()

		// Revoke leases held by workers the failure detector declared dead
		// or the trust layer quarantined: cancelling the grant context fails
		// the send immediately, which re-dispatches the shard (or its
		// verification) to the next ring replica.
		for _, st := range states {
			for _, g := range st.grants {
				if !c.eligible(g.worker) {
					g.cancel()
				}
			}
		}

		// Trust floor: with live-and-trusted workers below the degrade
		// floor, serve the rest of the sweep from local compute instead of
		// stalling — immediately if quarantine shrank the fleet, after
		// NoWorkerGrace if workers are merely dead.
		if eligible := c.EligibleWorkers(); eligible < c.cfg.DegradeFloor {
			reason := ""
			if q := c.QuarantinedWorkers(); q > 0 {
				reason = fmt.Sprintf("%d live trusted workers (floor %d, %d quarantined)", eligible, c.cfg.DegradeFloor, q)
			} else if noWorkerSince.IsZero() {
				noWorkerSince = now
			} else if now.Sub(noWorkerSince) > c.cfg.NoWorkerGrace {
				reason = fmt.Sprintf("no live workers for %s", c.cfg.NoWorkerGrace)
			}
			if reason != "" {
				if c.cfg.DisableDegrade {
					return fail(fmt.Errorf("dist: %s", reason))
				}
				c.met.degraded.Inc()
				c.log.Warnf("dist: degrading sweep to local compute: %s", reason)
				cancelAll()
				if err := c.finishLocal(ctx, v, states, total, budget); err != nil {
					return nil, err
				}
				break
			}
		} else {
			noWorkerSince = time.Time{}
		}

		// Dispatch: fresh grants, backoff retries, straggler hedges.
		threshold := hedgeThreshold(samples, c.cfg)
		for _, st := range states {
			if st.committed || budget.Tripped() {
				continue
			}
			if len(st.grants) == 0 {
				if st.attempts >= c.cfg.MaxAttempts {
					return fail(fmt.Errorf("dist: shard %d failed after %d attempts: %w", st.idx, st.attempts, st.lastErr))
				}
				if now.Before(st.nextTry) {
					continue
				}
				target, ok := c.pickWorker(st.key, st.attempts)
				if !ok {
					continue
				}
				c.launch(runCtx, job, st, target, false, done)
				continue
			}
			// Straggler hedge: exactly one grant outstanding, past the
			// percentile threshold, attempts left, and a distinct replica
			// available.
			if c.cfg.DisableHedging || len(st.grants) != 1 || threshold <= 0 || st.attempts >= c.cfg.MaxAttempts {
				continue
			}
			if now.Sub(st.grants[0].started) < threshold {
				continue
			}
			target, ok := c.pickWorker(st.key, st.attempts)
			if !ok || target == st.grants[0].worker {
				continue
			}
			c.met.hedges.Inc()
			c.launch(runCtx, job, st, target, true, done)
		}

		// Verification probes for committed-but-unsettled shards, and
		// half-open re-admission probes for quarantined workers.
		v.dispatch(runCtx, states, done, now)
		c.maybeProbeQuarantined(runCtx)

		select {
		case <-runCtx.Done():
			return fail(fmt.Errorf("dist: sweep aborted: %w", context.Cause(runCtx)))
		case <-ticker.C:
		case comp := <-done:
			st := states[comp.shard]
			for i, g := range st.grants {
				if g == comp.g {
					st.grants = append(st.grants[:i], st.grants[i+1:]...)
					break
				}
			}
			if comp.g.verify {
				if err := v.onCompletion(st, comp); err != nil {
					return fail(err)
				}
				continue
			}
			if st.committed {
				// First-committed wins; a duplicate completion (hedge or
				// retry racing the winner) cross-checks — an agreeing one is
				// a free confirming vote, a disagreeing one is a recorded
				// divergence event forcing the shard into verification.
				if comp.err == nil {
					if err := v.onDuplicate(st, comp); err != nil {
						return fail(err)
					}
				}
				continue
			}
			if comp.err != nil {
				st.lastErr = fmt.Errorf("worker %s: %w", comp.g.worker, comp.err)
				if errors.Is(comp.err, errCorruptResponse) {
					c.met.corruptResponses.Inc()
				}
				if errors.Is(comp.err, context.DeadlineExceeded) || errors.Is(comp.err, context.Canceled) {
					c.met.leaseExpiries.Inc()
				}
				c.recordFailure(comp.g.worker, failureWeight(comp.err))
				c.met.retries.Inc()
				st.nextTry = now.Add(c.backoff(st.idx, st.attempts))
				continue
			}
			// Commit. The fault hook models the coordinator being killed at
			// this exact commit point: the shard is NOT journaled and the
			// sweep dies; a restart resumes from the journaled prefix.
			// Verify-selected shards journal at verification settlement
			// instead, so a warm restart never trusts unverified bytes.
			if err := faultinject.Hit(faultinject.PointDistCommit); err != nil {
				return fail(fmt.Errorf("dist: coordinator killed at commit of shard %d: %w", st.idx, err))
			}
			if jr != nil && !st.needVerify {
				if err := jr.Append(st.idx, comp.payload); err != nil {
					return fail(err)
				}
				st.journaled = true
			}
			st.committed = true
			st.committedBy = comp.g.worker
			st.result = comp.payload
			st.votes[comp.g.worker] = comp.payload
			remaining--
			c.met.shardsCommitted.Inc()
			c.recordSuccess(comp.g.worker)
			obs.ImportSpans(comp.spans)
			samples = append(samples, comp.elapsed)
			if comp.g.hedge {
				c.met.hedgeWins.Inc()
			}
			if err := budget.Charge(st.to - st.from); err != nil {
				c.met.budgetTrips.Inc()
				return fail(err)
			}
		}
	}

	parts := make([][]byte, shards)
	for i, st := range states {
		parts[i] = st.result
	}
	out, err := op.Merge(parts)
	if err != nil {
		return nil, err
	}
	if jr != nil {
		closeJournal = false
		if err := jr.Remove(); err != nil {
			c.log.Warnf("dist: removing completed journal: %v", err)
		}
	}
	return out, nil
}

// pickWorker resolves attempt number `attempt` of a shard to an eligible
// worker: the shard's ring sequence (owner first, then the deterministic
// handoff order) filtered to live, non-quarantined members, indexed
// cyclically by attempt. Quarantined workers are skipped entirely — their
// vnodes never appear in the candidate set, so attempts are never burned
// against them.
func (c *Coordinator) pickWorker(key string, attempt int) (string, bool) {
	seq := c.ring.Sequence(key, len(c.cfg.Workers))
	c.mu.Lock()
	liveSeq := seq[:0:0]
	for _, w := range seq {
		if h := c.health[w]; c.live[w] && (h == nil || !h.quarantined) {
			liveSeq = append(liveSeq, w)
		}
	}
	c.mu.Unlock()
	if len(liveSeq) == 0 {
		return "", false
	}
	return liveSeq[attempt%len(liveSeq)], true
}

// launch grants shard st to worker: a lease-bounded exec request whose
// outcome lands on done.
func (c *Coordinator) launch(runCtx context.Context, job Job, st *shardState, worker string, hedge bool, done chan completion) {
	// The grant span parents the worker-side spans: its scope rides the
	// X-Kset-Trace header, and the worker's collected spans come back in
	// the ExecResponse, stitching one cross-process tree.
	spanCtx, span := obs.StartSpan(runCtx, "dist.grant")
	span.SetInt("shard", int64(st.idx))
	span.SetAttr("worker", worker)
	if hedge {
		span.SetAttr("hedge", "true")
	}
	gctx, cancel := context.WithTimeout(spanCtx, c.cfg.LeaseTTL)
	g := &grant{worker: worker, started: time.Now(), cancel: cancel, hedge: hedge}
	st.grants = append(st.grants, g)
	st.attempts++
	c.met.leasesGranted.Inc()
	req := ExecRequest{
		Op:      job.Op,
		Model:   job.Model,
		Shard:   st.idx,
		From:    st.from,
		To:      st.to,
		LeaseMs: c.cfg.LeaseTTL.Milliseconds(),
	}
	shard := st.idx
	go func() {
		defer cancel()
		payload, spans, err := c.exec(gctx, worker, req)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		comp := completion{shard: shard, g: g, payload: payload, spans: spans, err: err, elapsed: time.Since(g.started)}
		select {
		case done <- comp:
		case <-runCtx.Done():
		}
	}()
}

// exec performs one grant's HTTP round-trip and verifies the payload
// checksum.
func (c *Coordinator) exec(ctx context.Context, worker string, req ExecRequest) ([]byte, []obs.SpanData, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+worker+"/dist/v1/exec", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if h := obs.TraceHeader(ctx); h != "" {
		hreq.Header.Set(obs.TraceHeaderName, h)
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Normalize transport-wrapped cancellations so the event loop's
			// lease-expiry classification sees the context sentinel.
			return nil, nil, fmt.Errorf("lease: %w", ctxErr)
		}
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, truncate(data, 200))
	}
	var er ExecResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return nil, nil, err
	}
	if crc32.ChecksumIEEE(er.Payload) != er.CRC {
		return nil, er.Spans, errCorruptResponse
	}
	return er.Payload, er.Spans, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// hedgeThreshold computes the straggler cutoff from committed-grant
// durations: HedgeFactor × the HedgeQuantile percentile, floored at
// HedgeMin; 0 (no hedging) until 3 samples exist.
func hedgeThreshold(samples []time.Duration, cfg CoordConfig) time.Duration {
	if len(samples) < 3 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := int(cfg.HedgeQuantile * float64(len(sorted)-1))
	th := time.Duration(cfg.HedgeFactor * float64(sorted[q]))
	if th < cfg.HedgeMin {
		th = cfg.HedgeMin
	}
	return th
}

// CountClosure implements model.Distributor: heavy closure counts are
// distributed across the worker fleet; tiny rank spaces, a dead fleet, or a
// failed sweep (budget trips excepted — those are the caller's answer)
// decline, so the caller's local engine still completes the count.
func (c *Coordinator) CountClosure(ctx context.Context, m *model.ClosedAbove) (int64, bool, error) {
	if c == nil || len(c.cfg.Workers) == 0 {
		return 0, false, nil
	}
	size, err := m.EnumerationSize()
	if err != nil || size < c.cfg.MinRanks {
		return 0, false, nil
	}
	if c.EligibleWorkers() == 0 {
		if q := c.QuarantinedWorkers(); q > 0 {
			// Degraded serving: the fleet is up but untrusted, so the
			// caller's local engine answers.
			c.met.degraded.Inc()
			c.log.Warnf("dist: no live trusted workers (%d quarantined); serving count from the local engine", q)
		}
		return 0, false, nil
	}
	out, err := c.Run(ctx, Job{Op: OpCount, Model: cli.FormatModel(m), Budget: c.cfg.SweepBudget})
	if err != nil {
		if errors.Is(err, model.ErrEnumerationBudget) {
			return 0, true, err
		}
		c.log.Warnf("dist: distributed count failed (%v); falling back to local engine", err)
		return 0, false, nil
	}
	count, err := DecodeCount(out)
	if err != nil {
		return 0, true, err
	}
	return count, true, nil
}
