package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ksettop/internal/memo"
)

// lieMode selects how a liarProxy mutates shard payloads.
type lieMode int

const (
	lieCount  lieMode = iota // re-encode a uvarint count as count+1
	lieTrunc                 // drop the payload's last byte
	lieRotate                // rotate the payload left by one byte
	lieReplay                // replay the previous shard's payload
)

// liarProxy wraps a worker's HTTP handler and — while lying is set —
// rewrites /dist/v1/exec responses with a wrong-but-well-formed payload,
// recomputing the CRC over the lie. This is exactly the adversary the CRC
// cannot catch: transport-clean bytes that are simply not the answer.
type liarProxy struct {
	inner  http.Handler
	mode   lieMode
	lying  atomic.Bool
	delay  time.Duration // optional: lose hedge races on purpose
	mu     sync.Mutex
	last   []byte // previous payload, for lieReplay
	lies   atomic.Int64
	honest atomic.Int64
}

func (p *liarProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/dist/v1/exec" || !p.lying.Load() {
		p.inner.ServeHTTP(w, r)
		return
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	rec := httptest.NewRecorder()
	p.inner.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
		return
	}
	var resp ExecResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	truth := resp.Payload
	switch p.mode {
	case lieCount:
		resp.Payload = lieCountOffByOne(truth)
	case lieTrunc:
		resp.Payload = lieEnumBytes(truth, true)
	case lieRotate:
		resp.Payload = lieEnumBytes(truth, false)
	case lieReplay:
		p.mu.Lock()
		if len(p.last) > 0 && !bytes.Equal(p.last, truth) {
			resp.Payload = append([]byte(nil), p.last...)
		}
		p.last = append(p.last[:0], truth...)
		p.mu.Unlock()
	}
	if bytes.Equal(resp.Payload, truth) {
		p.honest.Add(1) // nothing to lie about (first replay, empty shard)
	} else {
		p.lies.Add(1)
	}
	resp.CRC = crc32.ChecksumIEEE(resp.Payload)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

// delayProxy adds fixed latency to every request of an honest worker.
type delayProxy struct {
	inner http.Handler
	d     time.Duration
}

func (p *delayProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/dist/v1/exec" {
		time.Sleep(p.d)
	}
	p.inner.ServeHTTP(w, r)
}

// startLiarFleet returns n worker addresses where worker 0 sits behind a
// liarProxy in the given mode, plus the proxy handle for honesty toggling.
// honestDelay > 0 slows the honest workers' exec path.
func startLiarFleet(t *testing.T, n int, mode lieMode, delay, honestDelay time.Duration) ([]string, *liarProxy) {
	t.Helper()
	wcfg := WorkerConfig{Logf: func(string, ...any) {}}
	proxy := &liarProxy{inner: NewWorker(wcfg).Handler(), mode: mode, delay: delay}
	proxy.lying.Store(true)
	addrs := make([]string, n)
	for i := range addrs {
		var h http.Handler = NewWorker(wcfg).Handler()
		if i == 0 {
			h = proxy
		} else if honestDelay > 0 {
			h = &delayProxy{inner: h, d: honestDelay}
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	return addrs, proxy
}

// The acceptance scenario: a 3-worker fleet with one Byzantine liar, swept
// under every lie mode with full verification. The merged output must be
// byte-identical to the sequential engine, the liar must end up
// quarantined, and — once it turns honest — a half-open probe must
// re-admit it, with every transition visible in the stats.
func TestDistByzantineChaosMatrix(t *testing.T) {
	cases := []struct {
		name string
		mode lieMode
		job  Job
	}{
		{"count-off-by-one", lieCount, Job{Op: OpCount, Model: "star:n=4"}},
		{"enum-truncated", lieTrunc, Job{Op: OpEnum, Model: "star:n=4"}},
		{"enum-rotated", lieRotate, Job{Op: OpEnum, Model: "star:n=4"}},
		{"stale-replay", lieReplay, Job{Op: OpEnum, Model: "star:n=4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunSequential(context.Background(), tc.job)
			if err != nil {
				t.Fatal(err)
			}
			workers, proxy := startLiarFleet(t, 3, tc.mode, 0, 0)
			cfg := testCoordConfig(workers)
			cfg.VerifyFraction = 1
			cfg.MaxAttempts = 10
			cfg.QuarantineBackoff = 30 * time.Millisecond
			c := NewCoordinator(cfg)

			got, err := c.Run(context.Background(), tc.job)
			if err != nil {
				t.Fatalf("byzantine sweep failed: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("byzantine sweep differs from sequential reference")
			}
			if proxy.lies.Load() == 0 {
				t.Fatal("the liar never actually lied; test proves nothing")
			}
			st := c.Stats()
			if st.DivergenceEvents == 0 || st.QuarantineTrips == 0 {
				t.Fatalf("liar not convicted: stats %+v", st)
			}
			if st.QuarantinedWorkers != 1 {
				t.Fatalf("want exactly the liar quarantined, stats %+v", st)
			}

			// Redemption: the worker turns honest, and the half-open probe
			// (driven by the heartbeat monitors) re-admits it.
			proxy.lying.Store(false)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			c.Start(ctx)
			waitFor(t, 5*time.Second, "liar re-admission", func() bool {
				return c.Stats().QuarantineReadmissions >= 1
			})
			if c.EligibleWorkers() != 3 {
				t.Fatalf("re-admitted fleet should be 3 eligible, got %d", c.EligibleWorkers())
			}
			if st := c.Stats(); st.QuarantinedWorkers != 0 || st.QuarantineProbes == 0 {
				t.Fatalf("re-admission not visible in stats: %+v", st)
			}
		})
	}
}

// The production lie points: with faultinject arming the worker's own
// Byzantine sites (process-global, so a single-worker fleet), every lie is
// overturned by the local arbiter, the worker is quarantined, and the sweep
// degrades to local compute — still byte-identical to sequential.
func TestDistLiePointsArbiterOverturns(t *testing.T) {
	cases := []struct {
		name string
		spec string
		job  Job
	}{
		{"lie-count", "error:dist.lie.count@1+1", Job{Op: OpCount, Model: "star:n=4"}},
		{"lie-enum", "error:dist.lie.enum@1+1", Job{Op: OpEnum, Model: "star:n=4"}},
		{"lie-replay", "error:dist.lie.replay@1+1", Job{Op: OpEnum, Model: "star:n=4"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunSequential(context.Background(), tc.job)
			if err != nil {
				t.Fatal(err)
			}
			workers := startWorkers(t, 1, WorkerConfig{Logf: func(string, ...any) {}})
			cfg := testCoordConfig(workers)
			cfg.VerifyFraction = 1
			cfg.MaxAttempts = 10
			c := NewCoordinator(cfg)
			armFaults(t, 42, tc.spec)
			got, err := c.Run(context.Background(), tc.job)
			disarmFaults(t)
			if err != nil {
				t.Fatalf("sweep with lying worker failed: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("lying worker corrupted the merge")
			}
			st := c.Stats()
			if st.VerifyOverturned == 0 {
				t.Fatalf("%s: no commit was overturned — the lie point never fired? stats %+v", tc.name, st)
			}
			if st.QuarantineTrips != 1 || st.DegradedSweeps != 1 {
				t.Fatalf("%s: want the lone worker quarantined and the sweep degraded; stats %+v", tc.name, st)
			}
		})
	}
}

// The lies must be well-formed: still CRC-consistent (by construction) and
// still decodable, or the transport layer would catch them and the whole
// Byzantine tier would be untested.
func TestDistLiePayloadsWellFormed(t *testing.T) {
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, 41)
	lied := lieCountOffByOne(buf.Bytes())
	n, err := DecodeCount(lied)
	if err != nil {
		t.Fatalf("count lie is not a valid uvarint: %v", err)
	}
	if n != 42 {
		t.Fatalf("count lie: want 42, got %d", n)
	}

	enum := []byte{1, 2, 3, 4}
	if got := lieEnumBytes(enum, true); len(got) != 3 || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("truncate lie: got %v", got)
	}
	if got := lieEnumBytes(enum, false); !bytes.Equal(got, []byte{2, 3, 4, 1}) {
		t.Fatalf("rotate lie: got %v", got)
	}
}

// Satellite: a hedge loser that disagrees with the committed result is a
// recorded divergence event that forces verification and feeds the
// quarantine score — even with VerifyFraction 0.
func TestDistHedgeLoserMismatchConvicts(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// The liar answers in 45 ms — after the 30 ms hedge threshold, before
	// the honest hedge's 30 ms exec completes. Every liar-owned shard is
	// therefore hedged, commits the lie first, and then receives the honest
	// hedge loser's contradicting bytes as a late duplicate. Full
	// verification keeps the sweep loop open until every shard settles, so
	// each of those duplicates is observed, recorded as divergence, and the
	// committed lie overturned.
	workers, proxy := startLiarFleet(t, 3, lieRotate, 45*time.Millisecond, 30*time.Millisecond)
	cfg := testCoordConfig(workers)
	cfg.DisableHedging = false
	cfg.LeaseTTL = 400 * time.Millisecond // event-loop tick = TTL/20 = 20ms
	cfg.HedgeMin = 30 * time.Millisecond
	cfg.HedgeQuantile = 0.01 // pin the threshold to the fastest sample…
	cfg.HedgeFactor = 1      // …so slow-but-honest samples can't outgrow the liar
	cfg.MaxAttempts = 20
	cfg.VerifyFraction = 1
	c := NewCoordinator(cfg)
	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("hedged sweep with lying straggler failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hedged sweep differs from sequential reference")
	}
	if proxy.lies.Load() == 0 {
		t.Fatal("the liar never actually lied; test proves nothing")
	}
	st := c.Stats()
	if st.Hedges == 0 {
		t.Fatalf("the lying straggler was never hedged: %+v", st)
	}
	if st.CrossCheckMismatches == 0 || st.DivergenceEvents == 0 {
		t.Fatalf("hedge-loser lies were not recorded as divergence: %+v", st)
	}
	if st.VerifyOverturned == 0 {
		t.Fatalf("committed lies must be overturned before the merge: %+v", st)
	}
}

// Honest fleet under full verification: every shard is confirmed, nothing
// diverges, nothing is overturned, nobody is quarantined — verification is
// pure overhead, not false positives.
func TestDistVerifyCleanOnHonestFleet(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.VerifyFraction = 1
	c := NewCoordinator(cfg)
	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("verified sweep differs from sequential reference")
	}
	st := c.Stats()
	if st.VerifySelected != uint64(cfg.Shards) {
		t.Fatalf("VerifyFraction 1 must select every shard: %+v", st)
	}
	if st.VerifyOK != uint64(cfg.Shards) {
		t.Fatalf("every shard should settle by agreement: %+v", st)
	}
	if st.VerifyMismatches != 0 || st.DivergenceEvents != 0 || st.VerifyOverturned != 0 || st.QuarantineTrips != 0 {
		t.Fatalf("honest fleet produced Byzantine evidence: %+v", st)
	}
}
