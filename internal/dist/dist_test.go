package dist

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/faultinject"
	"ksettop/internal/model"
)

// startWorkers launches n in-process workers and returns their addresses.
func startWorkers(t *testing.T, n int, cfg WorkerConfig) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ts := httptest.NewServer(NewWorker(cfg).Handler())
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	return addrs
}

// testCoordConfig is a fast-timing base config for coordinator tests.
func testCoordConfig(workers []string) CoordConfig {
	return CoordConfig{
		Workers:        workers,
		Shards:         24,
		LeaseTTL:       2 * time.Second,
		HeartbeatEvery: 50 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryMax:       100 * time.Millisecond,
		NoWorkerGrace:  3 * time.Second,
		DisableHedging: true, // hedging has its own tests; keep others deterministic
		MinRanks:       1,
		Seed:           7,
		Logf:           func(string, ...any) {},
	}
}

// The tentpole guarantee: a sweep distributed over 3 workers returns exactly
// the bytes of the sequential engine, for every registered op.
func TestDistByteIdentity(t *testing.T) {
	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	c := NewCoordinator(testCoordConfig(workers))
	for _, op := range []string{OpCount, OpEnum} {
		job := Job{Op: op, Model: "star:n=4"}
		want, err := RunSequential(context.Background(), job)
		if err != nil {
			t.Fatalf("%s sequential: %v", op, err)
		}
		got, err := c.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("%s distributed: %v", op, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: distributed result differs from sequential reference (%d vs %d bytes)", op, len(got), len(want))
		}
		local, err := RunLocal(context.Background(), job, 16)
		if err != nil {
			t.Fatalf("%s local: %v", op, err)
		}
		if !bytes.Equal(local, want) {
			t.Fatalf("%s: local fallback differs from sequential reference", op)
		}
	}
	if st := c.Stats(); st.Sweeps != 2 || st.ShardsCommitted == 0 {
		t.Fatalf("stats after 2 sweeps: %+v", st)
	}
	// The count op must agree with the model engine's own count.
	out, err := c.Run(context.Background(), Job{Op: OpCount, Model: "star:n=4"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := DecodeCount(out)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cli.ParseModel("star:n=4")
	wantN, err := m.GraphCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(wantN) {
		t.Fatalf("distributed count %d, engine count %d", n, wantN)
	}
}

// A worker that is dead from the start (connection refused) forfeits every
// grant immediately; the ring re-dispatches its shards to the survivors and
// the result is unchanged.
func TestDistDeadWorkerRedispatch(t *testing.T) {
	workers := startWorkers(t, 2, WorkerConfig{Logf: func(string, ...any) {}})
	// A third address nobody listens on.
	dead := httptest.NewServer(nil)
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()
	c := NewCoordinator(testCoordConfig(append(workers, deadAddr)))

	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("sweep with dead worker: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result with dead worker differs from sequential reference")
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatalf("expected re-dispatches off the dead worker, stats %+v", st)
	}
}

// The heartbeat failure detector: a partitioned worker (healthy, but probes
// fail) is declared dead after the configured misses and revived when the
// partition heals.
func TestDistHeartbeatDetection(t *testing.T) {
	workers := startWorkers(t, 1, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.HeartbeatMisses = 3
	c := NewCoordinator(cfg)
	if c.LiveWorkers() != 1 {
		t.Fatal("workers start presumed live")
	}

	armFaults(t, 7, "error:dist.heartbeat@1+1") // every probe fails: full partition
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)

	waitFor(t, 5*time.Second, "worker declared dead", func() bool { return c.LiveWorkers() == 0 })
	if st := c.Stats(); st.WorkerDeaths != 1 {
		t.Fatalf("want 1 worker death, stats %+v", st)
	}

	disarmFaults(t) // heal the partition
	waitFor(t, 5*time.Second, "worker rejoined", func() bool { return c.LiveWorkers() == 1 })
	if st := c.Stats(); st.WorkerRejoins != 1 {
		t.Fatalf("want 1 rejoin, stats %+v", st)
	}
}

// Installing the coordinator as the process distributor routes
// model.GraphCountCtx through the fleet — and the answer matches the local
// engine exactly.
func TestDistModelDistributorIntegration(t *testing.T) {
	const spec = "adj:0>1;1>2;2>3;3>" // unlikely to be memo-warmed by other tests
	m, err := cli.ParseModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.GraphCount()
	if err != nil {
		t.Fatal(err)
	}

	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	c := NewCoordinator(testCoordConfig(workers))
	model.SetDistributor(c)
	defer model.SetDistributor(nil)

	// A distinct *ClosedAbove of the same spec, so the memoized count entry
	// from the local run above is keyed identically… which exercises the memo
	// vs distributor interplay: a warm cache may answer without a sweep, a
	// cold one must sweep. Either way the answer must be `want`.
	m2, err := cli.ParseModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.GraphCountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("distributed count %d, local %d", got, want)
	}
}

// CountClosure declines tiny rank spaces and dead fleets instead of failing
// the caller.
func TestDistCountClosureDeclines(t *testing.T) {
	m, err := cli.ParseModel("star:n=3")
	if err != nil {
		t.Fatal(err)
	}
	// No workers at all.
	var nilCoord *Coordinator
	if _, handled, _ := nilCoord.CountClosure(context.Background(), m); handled {
		t.Fatal("nil coordinator must decline")
	}
	// Rank space below MinRanks.
	workers := startWorkers(t, 1, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.MinRanks = 1 << 20
	c := NewCoordinator(cfg)
	if _, handled, _ := c.CountClosure(context.Background(), m); handled {
		t.Fatal("sub-threshold sweep must decline")
	}
	// Fleet entirely dead (declared by the detector).
	c.setLive(workers[0], false)
	if _, handled, _ := c.CountClosure(context.Background(), m); handled {
		t.Fatal("dead fleet must decline")
	}
}

// Straggler hedging: with one worker armed to delay every second execution
// well past the percentile threshold, the coordinator speculatively
// re-dispatches and the sweep still returns reference bytes.
func TestDistHedging(t *testing.T) {
	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.DisableHedging = false
	cfg.HedgeMin = 30 * time.Millisecond
	cfg.HedgeQuantile = 0.5
	cfg.HedgeFactor = 1.5
	armFaults(t, 11, "delay:dist.exec@4+4:400ms")
	c := NewCoordinator(cfg)

	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("hedged sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hedged sweep differs from sequential reference")
	}
	if st := c.Stats(); st.Hedges == 0 {
		t.Fatalf("expected at least one hedge, stats %+v", st)
	}
}

// armFaults enables a deterministic fault schedule for the test and disarms
// it on cleanup. The registry is process-global: tests arming it must not
// run in parallel.
func armFaults(t *testing.T, seed uint64, spec string) {
	t.Helper()
	rules, err := faultinject.ParseRules(spec)
	if err != nil {
		t.Fatalf("ParseRules(%q): %v", spec, err)
	}
	faultinject.Enable(seed, rules...)
	t.Cleanup(faultinject.Disable)
}

func disarmFaults(t *testing.T) {
	t.Helper()
	faultinject.Disable()
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
