package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ksettop/internal/faultinject"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/par"
)

// This file is the coordinator's quorum cross-validation: a CRC check
// catches corrupted bytes but not a lying worker that checksums its own
// wrong result, so a deterministic VerifyFraction of committed shards (plus
// every shard whose hedge-loser bytes disagree) is re-executed on distinct
// ring replicas before the merge. An agreeing replica settles the shard; a
// disagreeing one escalates to a majority vote over ≥ QuorumReplicas
// distinct results, with a local recompute as the tie-breaking arbiter —
// ops are deterministic, so local bytes are ground truth. Every vote that
// loses to the decided truth is a recorded divergence feeding the
// quarantine score, and an overturned commit is corrected in place (and in
// the journal: replay is last-record-wins) before the merge, keeping the
// sweep byte-identical to the sequential engine.

// localWorker is the pseudo-worker name of coordinator-side local compute
// (the verification arbiter and degraded-mode serving). Never scored.
const localWorker = "(local)"

// verifySalt decorrelates the shard-selection hash from the retry jitter.
const verifySalt = 0xb12a47e5c0ffee11

// verifier tracks the cross-validation state of one sweep.
type verifier struct {
	c       *Coordinator
	job     Job
	op      Op
	m       *model.ClosedAbove
	jr      *Journal
	pending int // shards flagged for verification and not yet settled
}

func (c *Coordinator) newVerifier(job Job, op Op, m *model.ClosedAbove, jr *Journal) *verifier {
	return &verifier{c: c, job: job, op: op, m: m, jr: jr}
}

// selected reports whether shard is in the deterministic VerifyFraction
// sample for this sweep's seed.
func (v *verifier) selected(shard int) bool {
	f := v.c.cfg.VerifyFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	return splitmix64(v.c.cfg.Seed^verifySalt^uint64(shard))%10000 < uint64(f*10000)
}

// dispatch launches at most one verification probe per unsettled shard: the
// next untried eligible ring replica, or the local arbiter once replicas
// are exhausted.
func (v *verifier) dispatch(runCtx context.Context, states []*shardState, done chan completion, now time.Time) {
	if v.pending <= 0 {
		return
	}
	for _, st := range states {
		if !st.committed || !st.needVerify || st.verified {
			continue
		}
		// One probe at a time; an outstanding hedge loser also counts — its
		// completion is a free vote.
		if len(st.grants) > 0 || st.arbiter {
			continue
		}
		if now.Before(st.verifyNextTry) {
			continue
		}
		if target, ok := v.c.pickVerifier(st); ok {
			v.c.launchVerify(runCtx, v.job, st, target, done)
		} else {
			v.launchArbiter(runCtx, st, done)
		}
	}
}

// pickVerifier walks the shard's ring sequence for an eligible replica that
// has neither voted nor failed a verification attempt.
func (c *Coordinator) pickVerifier(st *shardState) (string, bool) {
	for _, w := range c.ring.Sequence(st.key, len(c.cfg.Workers)) {
		if st.verifyTried[w] {
			continue
		}
		if _, voted := st.votes[w]; voted {
			continue
		}
		if !c.eligible(w) {
			continue
		}
		return w, true
	}
	return "", false
}

// launchVerify grants a verification re-execution of shard st to worker.
func (c *Coordinator) launchVerify(runCtx context.Context, job Job, st *shardState, worker string, done chan completion) {
	spanCtx, span := obs.StartSpan(runCtx, "dist.verify")
	span.SetInt("shard", int64(st.idx))
	span.SetAttr("worker", worker)
	gctx, cancel := context.WithTimeout(spanCtx, c.cfg.LeaseTTL)
	g := &grant{worker: worker, started: time.Now(), cancel: cancel, verify: true}
	st.grants = append(st.grants, g)
	st.verifyTried[worker] = true
	c.met.leasesGranted.Inc()
	req := ExecRequest{
		Op:      job.Op,
		Model:   job.Model,
		Shard:   st.idx,
		From:    st.from,
		To:      st.to,
		LeaseMs: c.cfg.LeaseTTL.Milliseconds(),
	}
	shard := st.idx
	go func() {
		defer cancel()
		payload, spans, err := c.exec(gctx, worker, req)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		comp := completion{shard: shard, g: g, payload: payload, spans: spans, err: err, elapsed: time.Since(g.started)}
		select {
		case done <- comp:
		case <-runCtx.Done():
		}
	}()
}

// launchArbiter recomputes shard st locally — the deterministic tie-breaker
// once distinct replicas are exhausted or the quorum is unreachable.
func (v *verifier) launchArbiter(runCtx context.Context, st *shardState, done chan completion) {
	st.arbiter = true
	v.c.met.verifyLocalArbiter.Inc()
	g := &grant{worker: localWorker, started: time.Now(), cancel: func() {}, verify: true}
	shard, from, to := st.idx, st.from, st.to
	op, m := v.op, v.m
	go func() {
		payload, err := op.Run(runCtx, m, from, to)
		comp := completion{shard: shard, g: g, payload: payload, err: err, elapsed: time.Since(g.started)}
		select {
		case done <- comp:
		case <-runCtx.Done():
		}
	}()
}

// onCompletion folds one verification result into st's vote set and settles
// the shard when the vote is conclusive.
func (v *verifier) onCompletion(st *shardState, comp completion) error {
	if comp.g.worker == localWorker {
		st.arbiter = false
	}
	if st.verified || !st.needVerify {
		return nil
	}
	if comp.err != nil {
		if comp.g.worker == localWorker {
			return fmt.Errorf("dist: shard %d: local verification recompute: %w", st.idx, comp.err)
		}
		v.c.recordFailure(comp.g.worker, failureWeight(comp.err))
		st.verifyNextTry = time.Now().Add(v.c.backoff(st.idx, len(st.verifyTried)))
		return nil
	}
	if comp.g.worker == localWorker {
		// Local bytes are ground truth by determinism.
		return v.settle(st, comp.payload, "local recompute")
	}
	v.c.met.verifyQuorumVotes.Inc()
	st.votes[comp.g.worker] = comp.payload
	if len(st.votes) == 2 {
		// First independent replica: agreement settles the shard outright.
		if bytes.Equal(comp.payload, st.result) {
			v.c.met.verifyOK.Inc()
			return v.settle(st, st.result, "replica "+comp.g.worker)
		}
		v.c.met.verifyMismatches.Inc()
		v.c.met.divergenceEvents.Inc()
		v.c.log.Warnf("dist: shard %d: verification replica %s disagrees with committed result from worker %s; escalating to quorum",
			st.idx, comp.g.worker, st.committedBy)
		return nil
	}
	if truth, ok := majorityVote(st.votes, v.c.cfg.QuorumReplicas); ok {
		return v.settle(st, truth, "quorum majority")
	}
	return nil
}

// onDuplicate cross-checks a completion for an already-committed shard. An
// agreeing duplicate (hedge loser, late retry) is a free confirming vote; a
// disagreeing one is a recorded divergence event that forces the shard into
// verification — or, if its truth is already settled, convicts the loser
// directly.
func (v *verifier) onDuplicate(st *shardState, comp completion) error {
	c := v.c
	c.met.duplicateResults.Inc()
	if bytes.Equal(comp.payload, st.result) {
		c.recordSuccess(comp.g.worker)
		if st.needVerify && !st.verified && comp.g.worker != st.committedBy {
			st.votes[comp.g.worker] = comp.payload
			c.met.verifyOK.Inc()
			return v.settle(st, st.result, "agreeing duplicate "+comp.g.worker)
		}
		return nil
	}
	c.met.crossCheckMismatches.Inc()
	c.met.divergenceEvents.Inc()
	c.log.Warnf("dist: shard %d: duplicate result from worker %s disagrees with committed result from worker %s",
		st.idx, comp.g.worker, st.committedBy)
	if st.verified {
		c.recordDivergence(comp.g.worker, st.idx)
		return nil
	}
	if comp.g.worker != st.committedBy {
		st.votes[comp.g.worker] = comp.payload
	}
	if !st.needVerify {
		st.needVerify = true
		v.pending++
		c.met.verifySelected.Inc()
	}
	return nil
}

// settle decides st's truth: every recorded vote that disagrees is a
// divergence against its worker, an overturned commit is corrected in place
// (plus a journal correction record — replay is last-record-wins), and an
// unjournaled verified shard is journaled now.
func (v *verifier) settle(st *shardState, truth []byte, source string) error {
	for w, vote := range st.votes {
		if !bytes.Equal(vote, truth) {
			v.c.recordDivergence(w, st.idx)
		}
	}
	if !bytes.Equal(st.result, truth) {
		v.c.met.verifyOverturned.Inc()
		v.c.log.Warnf("dist: shard %d: committed result from worker %s overturned by %s", st.idx, st.committedBy, source)
		st.result = append([]byte(nil), truth...)
		if st.journaled && v.jr != nil {
			if err := v.jr.Append(st.idx, st.result); err != nil {
				return err
			}
		}
	}
	if !st.journaled && v.jr != nil {
		if err := v.jr.Append(st.idx, st.result); err != nil {
			return err
		}
		st.journaled = true
	}
	if st.needVerify && !st.verified {
		st.verified = true
		v.pending--
	}
	return nil
}

// majorityVote decides truth once at least quorum distinct workers have
// voted and one byte-string holds a strict majority.
func majorityVote(votes map[string][]byte, quorum int) ([]byte, bool) {
	if len(votes) < quorum {
		return nil, false
	}
	counts := make(map[string]int, len(votes))
	var best []byte
	bestN := 0
	for _, p := range votes {
		counts[string(p)]++
		if n := counts[string(p)]; n > bestN {
			bestN, best = n, p
		}
	}
	if bestN*2 > len(votes) {
		return best, true
	}
	return nil, false
}

// failureWeight maps a grant error to quarantine evidence: a corrupt
// response is near-Byzantine, everything else is crash-fault noise.
func failureWeight(err error) float64 {
	if errors.Is(err, errCorruptResponse) {
		return corruptScore
	}
	return transportScore
}

// finishLocal is degraded-mode serving: with the live-and-trusted fleet
// below the floor, the remaining shards are computed by the local engine
// (same sharding, same ops, so the merge stays byte-identical) and pending
// verifications are settled by local recompute.
func (c *Coordinator) finishLocal(ctx context.Context, v *verifier, states []*shardState, total int64, budget *Budget) error {
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var mu sync.Mutex // serializes state/journal/verifier mutation across pool workers
	ctl := &par.Ctl{}
	return par.ForEachShardNCtx(runCtx, total, len(states), ctl, func(s int, from, to int64, ctl *par.Ctl) {
		st := states[s]
		if st.committed && (!st.needVerify || st.verified) {
			return
		}
		payload, err := v.op.Run(runCtx, v.m, from, to)
		if err != nil {
			ctl.StopCause(err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if st.committed {
			if err := v.settle(st, payload, "degraded local recompute"); err != nil {
				ctl.StopCause(err)
			}
			return
		}
		if err := faultinject.Hit(faultinject.PointDistCommit); err != nil {
			ctl.StopCause(fmt.Errorf("dist: coordinator killed at commit of shard %d: %w", st.idx, err))
			return
		}
		st.committed = true
		st.committedBy = localWorker
		st.result = payload
		c.met.shardsCommitted.Inc()
		if st.needVerify && !st.verified {
			st.verified = true
			v.pending--
		}
		if v.jr != nil {
			if err := v.jr.Append(st.idx, payload); err != nil {
				ctl.StopCause(err)
				return
			}
			st.journaled = true
		}
		if err := budget.Charge(to - from); err != nil {
			c.met.budgetTrips.Inc()
			ctl.StopCause(err)
			cancel(err)
		}
	})
}
