package dist

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"ksettop/internal/obs"
)

// httpGet fetches url and returns the body, failing the test on any error.
func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// A traced distributed sweep must stitch into ONE trace tree: the
// coordinator's dist.sweep span at the root, one dist.grant child per
// committed shard, and each worker's dist.exec span — recorded in the worker
// process's request-scoped collector, shipped back in the ExecResponse and
// imported at commit — parenting into the grant that dispatched it. All
// spans share the sweep's trace ID across both "processes".
func TestDistTracePropagation(t *testing.T) {
	obs.ResetTrace(0)
	obs.SetTracingEnabled(true)
	t.Cleanup(func() {
		obs.SetTracingEnabled(false)
		obs.ResetTrace(0)
	})

	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	c := NewCoordinator(testCoordConfig(workers))
	if _, err := c.Run(context.Background(), Job{Op: OpCount, Model: "star:n=4"}); err != nil {
		t.Fatal(err)
	}

	spans := obs.TraceSpans()
	var sweep *obs.SpanData
	grants := map[uint64]bool{}
	execs := 0
	procs := map[string]bool{}
	for i := range spans {
		procs[spans[i].Proc] = true
		switch spans[i].Name {
		case "dist.sweep":
			sweep = &spans[i]
		case "dist.grant":
			grants[spans[i].SpanID] = true
		}
	}
	if sweep == nil {
		t.Fatalf("no dist.sweep span recorded (got %d spans)", len(spans))
	}
	for _, sd := range spans {
		if sd.TraceID != sweep.TraceID {
			t.Fatalf("span %s has trace %016x, want the sweep's %016x — the tree is split",
				sd.Name, sd.TraceID, sweep.TraceID)
		}
		switch sd.Name {
		case "dist.grant":
			if sd.Parent != sweep.SpanID {
				t.Fatalf("dist.grant parent %016x, want sweep span %016x", sd.Parent, sweep.SpanID)
			}
		case "dist.exec":
			execs++
			if !grants[sd.Parent] {
				t.Fatalf("dist.exec parent %016x is not a recorded grant span", sd.Parent)
			}
			if !strings.HasPrefix(sd.Proc, "ksetsweepd") {
				t.Fatalf("dist.exec proc %q, want a ksetsweepd process label", sd.Proc)
			}
		}
	}
	if execs == 0 {
		t.Fatal("no worker dist.exec spans imported")
	}
	if len(procs) < 2 {
		t.Fatalf("trace spans only one process label %v, want coordinator + worker", procs)
	}
}

// With tracing globally off and no inbound trace header, the distributed
// tier must record nothing — spans are nil no-ops end to end.
func TestDistNoSpansWhenTracingOff(t *testing.T) {
	obs.ResetTrace(0)
	t.Cleanup(func() { obs.ResetTrace(0) })
	workers := startWorkers(t, 2, WorkerConfig{Logf: func(string, ...any) {}})
	c := NewCoordinator(testCoordConfig(workers))
	if _, err := c.Run(context.Background(), Job{Op: OpCount, Model: "star:n=4"}); err != nil {
		t.Fatal(err)
	}
	if spans := obs.TraceSpans(); len(spans) != 0 {
		t.Fatalf("recorded %d spans with tracing off", len(spans))
	}
}

// A clean sweep over a healthy fleet is the happy path: the structured logs
// it emits must stay below ERROR, because the chaos CI gate treats any
// ERROR line on a fault-free run as a bug.
func TestDistHappyPathNoErrorLogs(t *testing.T) {
	var coordBuf, workerBuf bytes.Buffer
	wcfg := WorkerConfig{Log: obs.NewLogger(&workerBuf, obs.LevelDebug)}
	workers := startWorkers(t, 3, wcfg)
	cfg := testCoordConfig(workers)
	cfg.Logf = nil
	cfg.Log = obs.NewLogger(&coordBuf, obs.LevelDebug)
	c := NewCoordinator(cfg)
	if _, err := c.Run(context.Background(), Job{Op: OpEnum, Model: "star:n=4"}); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"coordinator": &coordBuf, "worker": &workerBuf} {
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, `"level":"error"`) {
				t.Fatalf("%s emitted ERROR on the happy path: %s", name, line)
			}
		}
	}
}

// /metrics on a worker serves Prometheus text exposition covering both the
// engine-wide default registry and the worker's own counters.
func TestWorkerMetricsEndpoint(t *testing.T) {
	workers := startWorkers(t, 1, WorkerConfig{Logf: func(string, ...any) {}})
	c := NewCoordinator(testCoordConfig(workers[:1]))
	if _, err := c.Run(context.Background(), Job{Op: OpCount, Model: "star:n=4"}); err != nil {
		t.Fatal(err)
	}
	body := httpGet(t, "http://"+workers[0]+"/metrics")
	for _, want := range []string{
		"# TYPE kset_dist_worker_execs_total counter",
		"# TYPE kset_par_sweeps_total counter",
		"kset_dist_worker_in_flight 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
