package dist

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ksettop/internal/faultinject"
)

// The acceptance scenario: a sweep across 3 workers under a seeded fault
// matrix — a worker crash mid-shard (panic), recurring 2×-straggler delays,
// and corrupt responses — completes byte-identical to the sequential engine.
func TestDistChaosMatrix(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}

	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.DisableHedging = false
	cfg.HedgeMin = 50 * time.Millisecond
	cfg.MaxAttempts = 10
	c := NewCoordinator(cfg)

	armFaults(t, 42,
		"panic:dist.exec@2,"+ // a worker crashes mid-shard
			"delay:dist.exec@5+9:300ms,"+ // recurring stragglers
			"corrupt:dist.result@3") // one lying worker response

	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("chaos sweep failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chaos sweep differs from sequential reference")
	}
	st := c.Stats()
	if st.CorruptResponses == 0 {
		t.Fatalf("the corrupt response was not detected; stats %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("crash and corruption should have forced re-dispatches; stats %+v", st)
	}
}

// A corrupt response must NEVER reach the merge. With the trust layer
// disabled (legacy semantics), a fully corrupt fleet exhausts attempts and
// the sweep fails rather than return wrong bytes.
func TestDistCorruptionNeverMerges(t *testing.T) {
	workers := startWorkers(t, 2, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.Shards = 4
	cfg.MaxAttempts = 3
	cfg.QuarantineThreshold = -1 // legacy: no quarantine, no degrade path
	cfg.DisableDegrade = true
	c := NewCoordinator(cfg)
	armFaults(t, 42, "corrupt:dist.result@1+1") // every response lies
	_, err := c.Run(context.Background(), Job{Op: OpEnum, Model: "star:n=4"})
	if err == nil {
		t.Fatal("sweep with fully corrupt fleet must fail, not merge garbage")
	}
	if st := c.Stats(); st.CorruptResponses == 0 {
		t.Fatalf("corruption undetected; stats %+v", st)
	}
}

// With the trust layer on (the default), the same fully corrupt fleet is
// quarantined worker by worker and the sweep degrades to local compute —
// reference bytes instead of an error.
func TestDistCorruptFleetQuarantinedAndDegrades(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 2, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.Shards = 4
	cfg.MaxAttempts = 40 // quarantine must trip long before attempts exhaust
	c := NewCoordinator(cfg)
	armFaults(t, 42, "corrupt:dist.result@1+1") // every response lies
	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded sweep differs from sequential reference")
	}
	st := c.Stats()
	if st.CorruptResponses == 0 || st.QuarantineTrips != 2 || st.DegradedSweeps != 1 {
		t.Fatalf("expected both workers quarantined and one degraded sweep; stats %+v", st)
	}
}

// Coordinator crash-recovery: kill the coordinator at a (seeded) random
// commit ordinal, restart it on the same journal, and require (a) the
// resumed sweep returns reference bytes, (b) exactly the journaled prefix is
// skipped — committed shards are never recomputed.
func TestDistJournalRecoveryRandomKill(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	path := filepath.Join(t.TempDir(), "sweep.journal")

	for trial := uint64(0); trial < 4; trial++ {
		// Seeded-random kill point among the first 20 of 24 commits.
		kill := 1 + splitmix64(0xC0FFEE+trial)%20
		os.Remove(path)

		cfg := testCoordConfig(workers)
		cfg.JournalPath = path
		faultinject.Enable(42, faultinject.Rule{
			Point:  faultinject.PointDistCommit,
			Nth:    kill,
			Action: faultinject.ActionError,
		})
		c1 := NewCoordinator(cfg)
		if _, err := c1.Run(context.Background(), job); err == nil {
			faultinject.Disable()
			t.Fatalf("trial %d: coordinator should have been killed at commit %d", trial, kill)
		}
		faultinject.Disable()

		c2 := NewCoordinator(cfg)
		got, err := c2.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("trial %d: resumed sweep: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: resumed sweep differs from sequential reference", trial)
		}
		st := c2.Stats()
		// A kill at the very first commit leaves an empty journal: the
		// restart legitimately starts fresh rather than "resuming".
		wantResumes := uint64(1)
		if kill == 1 {
			wantResumes = 0
		}
		if st.JournalResumes != wantResumes {
			t.Fatalf("trial %d (kill %d): want %d journal resumes, stats %+v", trial, kill, wantResumes, st)
		}
		// The kill fired BEFORE the kill-th commit was journaled, so exactly
		// kill−1 shards were recovered and the rest recomputed.
		if st.JournalSkips != kill-1 {
			t.Fatalf("trial %d: recovered %d shards from journal, want %d", trial, st.JournalSkips, kill-1)
		}
		if wantRecompute := uint64(24) - (kill - 1); st.ShardsCommitted != wantRecompute {
			t.Fatalf("trial %d: recomputed %d shards, want %d", trial, st.ShardsCommitted, wantRecompute)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("trial %d: journal should be removed after a completed sweep", trial)
		}
	}
}

// A journal rotting on disk between runs (bit flips injected on load) must
// degrade to recomputation, never to wrong bytes.
func TestDistJournalRotRecomputes(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	path := filepath.Join(t.TempDir(), "sweep.journal")
	cfg := testCoordConfig(workers)
	cfg.JournalPath = path

	// Kill mid-sweep to leave a journal behind.
	faultinject.Enable(42, faultinject.Rule{Point: faultinject.PointDistCommit, Nth: 10, Action: faultinject.ActionError})
	c1 := NewCoordinator(cfg)
	if _, err := c1.Run(context.Background(), job); err == nil {
		faultinject.Disable()
		t.Fatal("expected injected coordinator kill")
	}
	faultinject.Disable()

	// Restart with the journal byte stream corrupted on load.
	armFaults(t, 99, "corrupt:dist.journal@1:64")
	c2 := NewCoordinator(cfg)
	got, err := c2.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("sweep over rotten journal: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rotten journal produced non-reference bytes")
	}
}

// The distributed budget trip: the shared counter stops the sweep with the
// typed budget error and without dispatching the whole rank space many times
// over.
func TestDistBudgetTrip(t *testing.T) {
	workers := startWorkers(t, 3, WorkerConfig{Logf: func(string, ...any) {}})
	c := NewCoordinator(testCoordConfig(workers))
	_, err := c.Run(context.Background(), Job{Op: OpCount, Model: "star:n=4", Budget: 500})
	if err == nil {
		t.Fatal("want distributed budget trip")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	// 24 shards of ~85 ranks: the crossing charge lands within one shard of
	// the 500-rank limit, not at workers × budget.
	if be.Spent > 500+2048/24+1 {
		t.Fatalf("budget overshoot: spent %d against limit 500", be.Spent)
	}
	if st := c.Stats(); st.BudgetTrips != 1 {
		t.Fatalf("want 1 budget trip, stats %+v", st)
	}
}
