package dist

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ksettop/internal/cli"
)

// forceQuarantine opens worker's circuit directly, as if its divergence
// score had just tripped; since=now so no half-open probe is due yet.
func forceQuarantine(c *Coordinator, worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(worker)
	h.quarantined = true
	h.since = time.Now()
	h.trips = 1
	c.quarantinedGaugeLocked()
}

// Unit test of the hedge-loser promotion path: a disagreeing duplicate on a
// committed shard is a divergence event that forces verification even with
// VerifyFraction 0, and the loser is charged when the shard settles.
func TestDistDuplicateMismatchForcesVerification(t *testing.T) {
	c := NewCoordinator(testCoordConfig([]string{"w1:0", "w2:0", "w3:0"}))
	v := c.newVerifier(Job{Op: OpEnum, Model: "star:n=4"}, Op{}, nil, nil)
	truth, lie := []byte{1, 2, 3}, []byte{3, 2, 1}
	st := &shardState{
		idx: 3, committed: true, committedBy: "w1:0", result: truth,
		votes:       map[string][]byte{"w1:0": truth},
		verifyTried: map[string]bool{},
	}

	// The hedge loser disagrees: recorded, and the shard flips to needVerify.
	if err := v.onDuplicate(st, completion{g: &grant{worker: "w2:0"}, payload: lie}); err != nil {
		t.Fatal(err)
	}
	if !st.needVerify || v.pending != 1 {
		t.Fatalf("mismatching duplicate must force verification: %+v", st)
	}
	if s := c.Stats(); s.CrossCheckMismatches != 1 || s.DivergenceEvents != 1 || s.VerifySelected != 1 {
		t.Fatalf("mismatch not recorded: %+v", s)
	}

	// A second, agreeing duplicate is a free confirming vote: the shard
	// settles on the committed bytes and the loser is charged.
	if err := v.onDuplicate(st, completion{g: &grant{worker: "w3:0"}, payload: truth}); err != nil {
		t.Fatal(err)
	}
	if !st.verified || v.pending != 0 || !bytes.Equal(st.result, truth) {
		t.Fatalf("agreeing duplicate must settle the shard: %+v", st)
	}
	c.mu.Lock()
	score := c.healthLocked("w2:0").score
	c.mu.Unlock()
	if score != divergenceScore {
		t.Fatalf("hedge loser not charged with divergence: score %v", score)
	}
}

// pickWorker must never resolve to a quarantined worker, no matter the
// attempt number — attempts are not burned spinning on a poisoned replica
// sequence — and must report exhaustion once everyone is quarantined.
func TestPickWorkerQuarantineExhaustion(t *testing.T) {
	workers := []string{"w1:0", "w2:0", "w3:0"}
	c := NewCoordinator(testCoordConfig(workers))
	forceQuarantine(c, "w1:0")
	forceQuarantine(c, "w3:0")
	for attempt := 0; attempt < 12; attempt++ {
		w, ok := c.pickWorker("shard-key-7", attempt)
		if !ok {
			t.Fatalf("attempt %d: one eligible worker left, pick must succeed", attempt)
		}
		if w != "w2:0" {
			t.Fatalf("attempt %d: picked quarantined worker %s", attempt, w)
		}
	}
	forceQuarantine(c, "w2:0")
	if w, ok := c.pickWorker("shard-key-7", 0); ok {
		t.Fatalf("all workers quarantined, yet picked %s", w)
	}
}

// With the whole fleet quarantined a sweep must not spin MaxAttempts
// against poisoned workers: it degrades to local compute immediately,
// granting zero leases, and still returns reference bytes.
func TestDistAllQuarantinedDegradesWithoutLeases(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses are never dialed: no servers behind them.
	workers := []string{"127.0.0.1:1", "127.0.0.1:2"}
	c := NewCoordinator(testCoordConfig(workers))
	forceQuarantine(c, workers[0])
	forceQuarantine(c, workers[1])
	got, err := c.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("degraded sweep failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded sweep differs from sequential reference")
	}
	st := c.Stats()
	if st.LeasesGranted != 0 {
		t.Fatalf("no lease may reach a quarantined worker: %+v", st)
	}
	if st.DegradedSweeps != 1 {
		t.Fatalf("want exactly one degraded sweep: %+v", st)
	}
	// CountClosure must likewise decline (local engine serves) rather than
	// trust the poisoned fleet.
	m, err := cli.ParseModel("star:n=6")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.CountClosure(context.Background(), m); ok || err != nil {
		t.Fatalf("CountClosure on a quarantined fleet must decline: ok=%v err=%v", ok, err)
	}
}

// The half-open probe is itself Byzantine-checked: a worker that lies on
// the known-answer probe stays quarantined with doubled backoff; once it
// answers honestly it is re-admitted and its score reset.
func TestDistQuarantineProbeLiesExtendReadmitsWhenHonest(t *testing.T) {
	workers := startWorkers(t, 1, WorkerConfig{Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.QuarantineBackoff = 20 * time.Millisecond
	c := NewCoordinator(cfg)
	forceQuarantine(c, workers[0])
	backdate := func() {
		c.mu.Lock()
		c.health[workers[0]].since = time.Now().Add(-time.Minute)
		c.mu.Unlock()
	}

	// Probe while the worker still lies (the production lie point corrupts
	// the count payload before the CRC): quarantine must be extended.
	armFaults(t, 42, "error:dist.lie.count@1+1")
	backdate()
	c.maybeProbeQuarantined(context.Background())
	waitFor(t, 5*time.Second, "failed probe to finish", func() bool {
		return c.Stats().QuarantineProbes == 1
	})
	c.mu.Lock()
	trips, stillQuarantined := c.health[workers[0]].trips, c.health[workers[0]].quarantined
	c.mu.Unlock()
	if !stillQuarantined || trips != 2 {
		t.Fatalf("lying probe must extend quarantine: trips=%d quarantined=%v", trips, stillQuarantined)
	}
	if c.Stats().QuarantineReadmissions != 0 {
		t.Fatal("lying worker was re-admitted")
	}

	// Honest again: the next due probe closes the circuit.
	disarmFaults(t)
	backdate()
	c.maybeProbeQuarantined(context.Background())
	waitFor(t, 5*time.Second, "re-admission", func() bool {
		return c.Stats().QuarantineReadmissions == 1
	})
	if c.EligibleWorkers() != 1 || c.Stats().QuarantinedWorkers != 0 {
		t.Fatalf("worker not restored to placement: %+v", c.Stats())
	}
	c.mu.Lock()
	score := c.health[workers[0]].score
	c.mu.Unlock()
	if score != 0 {
		t.Fatalf("re-admission must reset the score, got %v", score)
	}
}

// Satellite: heartbeat probe intervals carry seeded ±20%% jitter —
// deterministic in (seed, worker, tick), always within [0.8, 1.2)× the
// configured period, and actually varying across ticks.
func TestProbeIntervalJitter(t *testing.T) {
	cfg := testCoordConfig([]string{"w1:0", "w2:0"})
	cfg.HeartbeatEvery = 100 * time.Millisecond
	c := NewCoordinator(cfg)
	lo, hi := 80*time.Millisecond, 120*time.Millisecond
	wh := ringHash("w1:0")
	distinct := map[time.Duration]bool{}
	for tick := uint64(0); tick < 1000; tick++ {
		d := c.probeInterval(wh, tick)
		if d < lo || d >= hi {
			t.Fatalf("tick %d: interval %v outside [%v, %v)", tick, d, lo, hi)
		}
		if d != c.probeInterval(wh, tick) {
			t.Fatalf("tick %d: jitter is not deterministic", tick)
		}
		distinct[d] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("jitter barely varies: %d distinct intervals in 1000 ticks", len(distinct))
	}
	if c.probeInterval(ringHash("w2:0"), 0) == c.probeInterval(wh, 0) {
		t.Log("workers share tick-0 jitter (possible but unlikely); check decorrelation")
	}
}
