package dist

import (
	"fmt"
	"sync/atomic"

	"ksettop/internal/model"
)

// Budget is the shared work counter of one sweep, in enumeration ranks.
// Every executor — the coordinator committing remote shards, each local
// fallback worker finishing a shard — charges the SAME atomic counter, so a
// tripped budget surfaces within roughly one shard of work: the crossing
// charge cancels the sweep, in-flight shards observe the cancellation
// within ~1k ranks, and queued shards are never dispatched. (The old
// per-worker accounting let every worker burn its full budget before the
// aggregate trip was noticed — up to workers × budget of wasted work.)
type Budget struct {
	limit int64
	spent atomic.Int64
}

// NewBudget builds a budget of limit ranks; limit ≤ 0 means unlimited and
// returns nil (a nil *Budget accepts any charge).
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Charge adds n ranks of completed work and returns a *BudgetError when the
// running total crosses the limit. Nil-safe.
func (b *Budget) Charge(n int64) error {
	if b == nil {
		return nil
	}
	if spent := b.spent.Add(n); spent > b.limit {
		return &BudgetError{Limit: b.limit, Spent: spent}
	}
	return nil
}

// Tripped reports whether the budget has been exceeded. Nil-safe.
func (b *Budget) Tripped() bool {
	return b != nil && b.spent.Load() > b.limit
}

// Spent reports the ranks charged so far. Nil-safe.
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.spent.Load()
}

// BudgetError reports a tripped sweep budget. It matches
// model.ErrEnumerationBudget under errors.Is — a distributed sweep budget
// IS an enumeration-work budget — so the CLIs' typed budget handling (exit
// code 2) and the service's 422 mapping apply unchanged.
type BudgetError struct {
	Limit int64 // the configured budget, in ranks
	Spent int64 // ranks charged when the trip surfaced
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("dist: sweep budget %d ranks exhausted (%d charged)", e.Limit, e.Spent)
}

// Is matches model.ErrEnumerationBudget.
func (e *BudgetError) Is(target error) bool { return target == model.ErrEnumerationBudget }
