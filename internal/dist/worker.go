package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ksettop/internal/checkpoint"
	"ksettop/internal/cli"
	"ksettop/internal/faultinject"
	"ksettop/internal/memo"
	"ksettop/internal/model"
	"ksettop/internal/obs"
)

// WorkerConfig tunes one Worker. Zero values select the defaults.
type WorkerConfig struct {
	// MaxConcurrent caps shard executions computing at once; excess load is
	// shed with 503 so the coordinator re-dispatches elsewhere. Default 8.
	MaxConcurrent int
	// MaxLease caps any granted lease duration. Default 1m.
	MaxLease time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// flag on ksetsweepd).
	EnablePprof bool
	// Checkpoint, when set, makes shard executions durable: in-flight
	// progress is recorded into this runner's file on its cadence and on
	// shutdown, and a restarted worker that is re-leased one of those
	// shards resumes it mid-range instead of recomputing (the -checkpoint
	// flag on ksetsweepd). Payloads are byte-identical either way.
	Checkpoint *checkpoint.Runner
	// Log receives operational log lines. Default obs.DefaultLogger().
	Log *obs.Logger
	// Logf, when set and Log is nil, receives every log line
	// pre-formatted (the pre-obs hook; tests silence logs through it).
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxLease <= 0 {
		c.MaxLease = time.Minute
	}
	if c.Log == nil {
		if c.Logf != nil {
			c.Log = obs.NewFuncLogger(c.Logf)
		} else {
			c.Log = obs.DefaultLogger()
		}
	}
	return c
}

// WorkerStats is the /statz counter snapshot of one worker.
type WorkerStats struct {
	Execs         uint64 `json:"execs"`       // shard executions completed successfully
	ExecErrors    uint64 `json:"exec_errors"` // shard executions that failed (injected faults included)
	Panics        uint64 `json:"panics"`      // recovered handler panics
	Overloaded    uint64 `json:"overloaded"`  // shed at admission (503)
	Heartbeats    uint64 `json:"heartbeats"`  // heartbeat probes answered
	InFlight      int64  `json:"in_flight"`   // shards computing now
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// Worker is one sweep worker process: it executes rank-shard ops on behalf
// of a coordinator, under the lease deadline the grant carries, and answers
// the heartbeat probes the coordinator's failure detector sends.
type Worker struct {
	cfg   WorkerConfig
	log   *obs.Logger
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	ckpt   *checkpoint.Runner
	shards *shardTable

	boundAddr atomic.Pointer[string]
	// lastPayload is the previous shard result, kept only while the fault
	// registry is armed: it is the stale bytes a dist.lie.replay rule makes
	// the worker serve in place of a fresh result.
	lastPayload atomic.Pointer[[]byte]

	reg        *obs.Registry
	execs      *obs.Counter
	execErrors *obs.Counter
	panics     *obs.Counter
	overloaded *obs.Counter
	heartbeats *obs.Counter
	inFlight   *obs.Gauge
}

// NewWorker builds a Worker from cfg (zero value: all defaults).
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	w := &Worker{
		cfg:   cfg,
		log:   cfg.Log,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		start: time.Now(),
		reg:   reg,
		execs: reg.Counter("kset_dist_worker_execs_total",
			"shard executions completed successfully"),
		execErrors: reg.Counter("kset_dist_worker_exec_errors_total",
			"shard executions that failed (injected faults included)"),
		panics: reg.Counter("kset_dist_worker_panics_total",
			"recovered handler panics"),
		overloaded: reg.Counter("kset_dist_worker_overloaded_total",
			"shed at admission (503)"),
		heartbeats: reg.Counter("kset_dist_worker_heartbeats_total",
			"heartbeat probes answered"),
		inFlight: reg.Gauge("kset_dist_worker_in_flight", "shards computing now"),
	}
	if cfg.Checkpoint != nil {
		w.ckpt = cfg.Checkpoint
		w.shards = newShardTable()
		if payload, ok := w.ckpt.Resume(kindDistShards, distShardsFP()); ok {
			if err := w.shards.restore(payload); err != nil {
				w.log.Warnf("dist: shard checkpoint section unusable (%v); starting cold", err)
			} else {
				w.log.Infof("dist: restored in-flight shard progress from checkpoint")
			}
		}
		w.ckpt.Register(kindDistShards, distShardsFP(), w.shards.encode)
	}
	w.mux.HandleFunc("/dist/v1/exec", w.handleExec)
	w.mux.HandleFunc("/dist/v1/heartbeat", w.handleHeartbeat)
	w.mux.HandleFunc("/healthz", w.handleHealthz)
	w.mux.HandleFunc("/readyz", w.handleHealthz) // no warm boot: ready ⇔ live
	w.mux.HandleFunc("/statz", w.handleStatz)
	w.mux.HandleFunc("/metrics", w.handleMetrics)
	if cfg.EnablePprof {
		obs.RegisterPprof(w.mux)
	}
	return w
}

// Handler returns the worker's HTTP handler (for tests and embedding).
func (w *Worker) Handler() http.Handler { return w.mux }

// MetricsRegistry exposes the worker's per-instance metric registry.
func (w *Worker) MetricsRegistry() *obs.Registry { return w.reg }

// Stats returns the current counters, snapshotted through the registry
// in one pass.
func (w *Worker) Stats() WorkerStats {
	v := w.reg.Values()
	return WorkerStats{
		Execs:         uint64(v["kset_dist_worker_execs_total"]),
		ExecErrors:    uint64(v["kset_dist_worker_exec_errors_total"]),
		Panics:        uint64(v["kset_dist_worker_panics_total"]),
		Overloaded:    uint64(v["kset_dist_worker_overloaded_total"]),
		Heartbeats:    uint64(v["kset_dist_worker_heartbeats_total"]),
		InFlight:      int64(v["kset_dist_worker_in_flight"]),
		UptimeSeconds: int64(time.Since(w.start) / time.Second),
	}
}

// ExecRequest is one shard grant: op + model + rank range + lease.
type ExecRequest struct {
	Op      string `json:"op"`
	Model   string `json:"model"`
	Shard   int    `json:"shard"`
	From    int64  `json:"from"`
	To      int64  `json:"to"`
	LeaseMs int64  `json:"lease_ms"`
}

// ExecResponse carries one computed shard payload. CRC is the IEEE CRC32 of
// Payload computed BEFORE the response leaves the worker, so any corruption
// between computation and the coordinator's checksum — injected, network,
// or a lying worker — is detected and the shard re-dispatched.
type ExecResponse struct {
	Payload []byte `json:"payload"`
	CRC     uint32 `json:"crc"`
	Ranks   int64  `json:"ranks"`
	// Spans are the worker-side trace spans of this request, returned
	// only when the request carried an X-Kset-Trace header. They are
	// NOT covered by CRC (corrupting a span must not fail a valid
	// payload); the coordinator imports them at commit, stitching the
	// cross-process trace tree.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

type workerError struct {
	Kind    string `json:"kind"` // bad_request, overloaded, budget, deadline, internal
	Message string `json:"message"`
}

func writeWorkerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeWorkerError(w http.ResponseWriter, status int, kind, msg string) {
	writeWorkerJSON(w, status, map[string]workerError{"error": {Kind: kind, Message: msg}})
}

func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			w.panics.Inc()
			w.execErrors.Inc()
			w.log.Errorf("dist: worker recovered exec panic: %v\n%s", rec, debug.Stack())
			writeWorkerError(rw, http.StatusInternalServerError, "internal", fmt.Sprintf("panic: %v", rec))
		}
	}()
	if r.Method != http.MethodPost {
		writeWorkerError(rw, http.StatusMethodNotAllowed, "bad_request", "POST only")
		return
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	default:
		w.overloaded.Inc()
		writeWorkerError(rw, http.StatusServiceUnavailable, "overloaded", "concurrency limit reached")
		return
	}
	w.inFlight.Add(1)
	defer w.inFlight.Add(-1)

	var req ExecRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWorkerError(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// A traced request (X-Kset-Trace from the coordinator's grant span)
	// collects this worker's spans request-scoped and ships them back in
	// the response — cross-process stitching without a trace collector
	// service. Untraced requests skip all of this.
	rctx := r.Context()
	var collector *obs.Collector
	if h := r.Header.Get(obs.TraceHeaderName); h != "" {
		proc := "ksetsweepd"
		if addr := w.Addr(); addr != "" {
			proc += ":" + addr
		}
		collector = obs.NewCollector(proc)
		rctx, _ = obs.WithRemoteParent(rctx, h, collector)
	}
	execCtx, execSpan := obs.StartSpan(rctx, "dist.exec")
	execSpan.SetInt("shard", int64(req.Shard))
	execSpan.SetInt("ranks", req.To-req.From)
	execSpan.SetAttr("op", req.Op)
	defer execSpan.End()

	// The fault hook models a crashed (panic), failing (error) or straggling
	// (delay) worker while the grant holds its admission slot.
	if err := faultinject.Hit(faultinject.PointDistExec); err != nil {
		w.execErrors.Inc()
		writeWorkerError(rw, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	op, ok := LookupOp(req.Op)
	if !ok {
		writeWorkerError(rw, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown op %q", req.Op))
		return
	}
	m, err := cli.ParseModel(req.Model)
	if err != nil {
		writeWorkerError(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	lease := w.cfg.MaxLease
	if req.LeaseMs > 0 {
		if d := time.Duration(req.LeaseMs) * time.Millisecond; d < lease {
			lease = d
		}
	}
	ctx, cancel := context.WithTimeout(execCtx, lease)
	defer cancel()

	var payload []byte
	if w.shards != nil && op.Resume != nil {
		key := shardKey(req)
		st := w.shards.claim(key, req.From)
		payload, err = op.Resume(ctx, m, req.From, req.To, st)
		if st != nil {
			w.shards.release(key, err == nil)
		}
	} else {
		payload, err = op.Run(ctx, m, req.From, req.To)
	}
	if err != nil {
		w.execErrors.Inc()
		execSpan.SetAttr("error", err.Error())
		switch {
		case errors.Is(err, model.ErrEnumerationBudget):
			writeWorkerError(rw, http.StatusUnprocessableEntity, "budget", err.Error())
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeWorkerError(rw, http.StatusGatewayTimeout, "deadline", err.Error())
		default:
			writeWorkerError(rw, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	// Byzantine lies are applied BEFORE checksumming: the response stays
	// well-formed and CRC-consistent, so only the coordinator's quorum
	// cross-validation can catch it.
	payload = w.applyLies(payload)
	resp := ExecResponse{CRC: crc32.ChecksumIEEE(payload), Ranks: req.To - req.From}
	// Transport corruption is injected AFTER checksumming: the bytes no
	// longer match their own checksum, which is exactly what the
	// coordinator's CRC check must catch.
	faultinject.Corrupt(faultinject.PointDistResult, payload)
	resp.Payload = payload
	w.execs.Inc()
	if collector != nil {
		execSpan.End() // record before the snapshot so the exec span ships too
		resp.Spans = collector.Spans()
	}
	writeWorkerJSON(rw, http.StatusOK, resp)
}

// applyLies gives the armed fault registry its chance to turn this worker
// into a liar (the dist.lie.* points): each mutation keeps the payload
// well-formed — a plausible count, a shorter or reordered enum, a stale
// replay — and runs before the response CRC is computed, so the checksum
// vouches for the lie. With nothing armed this is one atomic load.
func (w *Worker) applyLies(payload []byte) []byte {
	if !faultinject.Enabled() {
		return payload
	}
	if faultinject.Hit(faultinject.PointDistLieCount) != nil {
		payload = lieCountOffByOne(payload)
	}
	if err := faultinject.Hit(faultinject.PointDistLieEnum); err != nil {
		var ie *faultinject.InjectedError
		odd := errors.As(err, &ie) && ie.Nth%2 == 1
		payload = lieEnumBytes(payload, odd)
	}
	if faultinject.Hit(faultinject.PointDistLieReplay) != nil {
		if prev := w.lastPayload.Load(); prev != nil && len(*prev) > 0 {
			payload = append([]byte(nil), *prev...)
		}
	}
	stale := append([]byte(nil), payload...)
	w.lastPayload.Store(&stale)
	return payload
}

// lieCountOffByOne re-encodes a uvarint count payload as count+1. A payload
// that is not a bare uvarint gets a trailing zero byte instead — still a
// plausible-looking, CRC-consistent divergence.
func lieCountOffByOne(payload []byte) []byte {
	br := bytes.NewReader(payload)
	n, err := binary.ReadUvarint(br)
	if err != nil || br.Len() != 0 {
		return append(append([]byte(nil), payload...), 0)
	}
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, n+1)
	return buf.Bytes()
}

// lieEnumBytes drops the last byte (truncate) or rotates the payload left by
// one (permute) — both CRC-consistent, both wrong.
func lieEnumBytes(payload []byte, truncate bool) []byte {
	if len(payload) == 0 {
		return []byte{0}
	}
	if truncate {
		return append([]byte(nil), payload[:len(payload)-1]...)
	}
	out := append([]byte(nil), payload[1:]...)
	return append(out, payload[0])
}

func (w *Worker) handleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	// An injected heartbeat fault models a network partition: the worker is
	// healthy but the coordinator's failure detector cannot see it.
	if err := faultinject.Hit(faultinject.PointDistHeartbeat); err != nil {
		writeWorkerError(rw, http.StatusServiceUnavailable, "internal", err.Error())
		return
	}
	w.heartbeats.Inc()
	writeWorkerJSON(rw, http.StatusOK, map[string]any{"ok": true, "in_flight": w.inFlight.Value()})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	writeWorkerJSON(rw, http.StatusOK, map[string]any{"ok": true, "uptime_seconds": int64(time.Since(w.start) / time.Second)})
}

func (w *Worker) handleStatz(rw http.ResponseWriter, r *http.Request) {
	writeWorkerJSON(rw, http.StatusOK, w.Stats())
}

// handleMetrics serves the Prometheus text exposition: the process-wide
// engine metrics plus this worker instance's counters.
func (w *Worker) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheusTo(rw, obs.DefaultRegistry(), w.reg)
}

// Addr returns the bound listen address once Run has opened its listener.
func (w *Worker) Addr() string {
	if v := w.boundAddr.Load(); v != nil {
		return *v
	}
	return ""
}

// Run serves on addr until ctx is cancelled, then drains gracefully:
// in-flight shard executions get drainGrace to finish (their coordinators
// re-dispatch anything cut off).
func (w *Worker) Run(ctx context.Context, addr string, drainGrace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	w.boundAddr.Store(&bound)
	w.log.Infof("dist: worker listening on %s", bound)
	srv := &http.Server{Handler: w.Handler()}

	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		w.log.Infof("dist: worker draining (grace %s)", drainGrace)
		sctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		shutdownErr <- srv.Shutdown(sctx)
	}()

	err = srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}
