package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/faultinject"
	"ksettop/internal/model"
)

// WorkerConfig tunes one Worker. Zero values select the defaults.
type WorkerConfig struct {
	// MaxConcurrent caps shard executions computing at once; excess load is
	// shed with 503 so the coordinator re-dispatches elsewhere. Default 8.
	MaxConcurrent int
	// MaxLease caps any granted lease duration. Default 1m.
	MaxLease time.Duration
	// Logf receives operational log lines. Default log.Printf.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxLease <= 0 {
		c.MaxLease = time.Minute
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// WorkerStats is the /statz counter snapshot of one worker.
type WorkerStats struct {
	Execs         uint64 `json:"execs"`          // shard executions completed successfully
	ExecErrors    uint64 `json:"exec_errors"`    // shard executions that failed (injected faults included)
	Panics        uint64 `json:"panics"`         // recovered handler panics
	Overloaded    uint64 `json:"overloaded"`     // shed at admission (503)
	Heartbeats    uint64 `json:"heartbeats"`     // heartbeat probes answered
	InFlight      int64  `json:"in_flight"`      // shards computing now
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// Worker is one sweep worker process: it executes rank-shard ops on behalf
// of a coordinator, under the lease deadline the grant carries, and answers
// the heartbeat probes the coordinator's failure detector sends.
type Worker struct {
	cfg   WorkerConfig
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	boundAddr atomic.Pointer[string]

	execs      atomic.Uint64
	execErrors atomic.Uint64
	panics     atomic.Uint64
	overloaded atomic.Uint64
	heartbeats atomic.Uint64
	inFlight   atomic.Int64
}

// NewWorker builds a Worker from cfg (zero value: all defaults).
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	w := &Worker{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		start: time.Now(),
	}
	w.mux.HandleFunc("/dist/v1/exec", w.handleExec)
	w.mux.HandleFunc("/dist/v1/heartbeat", w.handleHeartbeat)
	w.mux.HandleFunc("/healthz", w.handleHealthz)
	w.mux.HandleFunc("/readyz", w.handleHealthz) // no warm boot: ready ⇔ live
	w.mux.HandleFunc("/statz", w.handleStatz)
	return w
}

// Handler returns the worker's HTTP handler (for tests and embedding).
func (w *Worker) Handler() http.Handler { return w.mux }

// Stats returns the current counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		Execs:         w.execs.Load(),
		ExecErrors:    w.execErrors.Load(),
		Panics:        w.panics.Load(),
		Overloaded:    w.overloaded.Load(),
		Heartbeats:    w.heartbeats.Load(),
		InFlight:      w.inFlight.Load(),
		UptimeSeconds: int64(time.Since(w.start) / time.Second),
	}
}

// ExecRequest is one shard grant: op + model + rank range + lease.
type ExecRequest struct {
	Op      string `json:"op"`
	Model   string `json:"model"`
	Shard   int    `json:"shard"`
	From    int64  `json:"from"`
	To      int64  `json:"to"`
	LeaseMs int64  `json:"lease_ms"`
}

// ExecResponse carries one computed shard payload. CRC is the IEEE CRC32 of
// Payload computed BEFORE the response leaves the worker, so any corruption
// between computation and the coordinator's checksum — injected, network,
// or a lying worker — is detected and the shard re-dispatched.
type ExecResponse struct {
	Payload []byte `json:"payload"`
	CRC     uint32 `json:"crc"`
	Ranks   int64  `json:"ranks"`
}

type workerError struct {
	Kind    string `json:"kind"` // bad_request, overloaded, budget, deadline, internal
	Message string `json:"message"`
}

func writeWorkerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeWorkerError(w http.ResponseWriter, status int, kind, msg string) {
	writeWorkerJSON(w, status, map[string]workerError{"error": {Kind: kind, Message: msg}})
}

func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			w.panics.Add(1)
			w.execErrors.Add(1)
			w.cfg.Logf("dist: worker recovered exec panic: %v\n%s", rec, debug.Stack())
			writeWorkerError(rw, http.StatusInternalServerError, "internal", fmt.Sprintf("panic: %v", rec))
		}
	}()
	if r.Method != http.MethodPost {
		writeWorkerError(rw, http.StatusMethodNotAllowed, "bad_request", "POST only")
		return
	}
	select {
	case w.sem <- struct{}{}:
		defer func() { <-w.sem }()
	default:
		w.overloaded.Add(1)
		writeWorkerError(rw, http.StatusServiceUnavailable, "overloaded", "concurrency limit reached")
		return
	}
	w.inFlight.Add(1)
	defer w.inFlight.Add(-1)

	var req ExecRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWorkerError(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// The fault hook models a crashed (panic), failing (error) or straggling
	// (delay) worker while the grant holds its admission slot.
	if err := faultinject.Hit(faultinject.PointDistExec); err != nil {
		w.execErrors.Add(1)
		writeWorkerError(rw, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	op, ok := LookupOp(req.Op)
	if !ok {
		writeWorkerError(rw, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown op %q", req.Op))
		return
	}
	m, err := cli.ParseModel(req.Model)
	if err != nil {
		writeWorkerError(rw, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	lease := w.cfg.MaxLease
	if req.LeaseMs > 0 {
		if d := time.Duration(req.LeaseMs) * time.Millisecond; d < lease {
			lease = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), lease)
	defer cancel()

	payload, err := op.Run(ctx, m, req.From, req.To)
	if err != nil {
		w.execErrors.Add(1)
		switch {
		case errors.Is(err, model.ErrEnumerationBudget):
			writeWorkerError(rw, http.StatusUnprocessableEntity, "budget", err.Error())
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeWorkerError(rw, http.StatusGatewayTimeout, "deadline", err.Error())
		default:
			writeWorkerError(rw, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	resp := ExecResponse{CRC: crc32.ChecksumIEEE(payload), Ranks: req.To - req.From}
	// Corruption is injected AFTER checksumming: a lying worker's bytes do
	// not match its own checksum, which is exactly what the coordinator's
	// verification path must catch.
	faultinject.Corrupt(faultinject.PointDistResult, payload)
	resp.Payload = payload
	w.execs.Add(1)
	writeWorkerJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleHeartbeat(rw http.ResponseWriter, r *http.Request) {
	// An injected heartbeat fault models a network partition: the worker is
	// healthy but the coordinator's failure detector cannot see it.
	if err := faultinject.Hit(faultinject.PointDistHeartbeat); err != nil {
		writeWorkerError(rw, http.StatusServiceUnavailable, "internal", err.Error())
		return
	}
	w.heartbeats.Add(1)
	writeWorkerJSON(rw, http.StatusOK, map[string]any{"ok": true, "in_flight": w.inFlight.Load()})
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	writeWorkerJSON(rw, http.StatusOK, map[string]any{"ok": true, "uptime_seconds": int64(time.Since(w.start) / time.Second)})
}

func (w *Worker) handleStatz(rw http.ResponseWriter, r *http.Request) {
	writeWorkerJSON(rw, http.StatusOK, w.Stats())
}

// Addr returns the bound listen address once Run has opened its listener.
func (w *Worker) Addr() string {
	if v := w.boundAddr.Load(); v != nil {
		return *v
	}
	return ""
}

// Run serves on addr until ctx is cancelled, then drains gracefully:
// in-flight shard executions get drainGrace to finish (their coordinators
// re-dispatch anything cut off).
func (w *Worker) Run(ctx context.Context, addr string, drainGrace time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	w.boundAddr.Store(&bound)
	w.cfg.Logf("dist: worker listening on %s", bound)
	srv := &http.Server{Handler: w.Handler()}

	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		w.cfg.Logf("dist: worker draining (grace %s)", drainGrace)
		sctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		shutdownErr <- srv.Shutdown(sctx)
	}()

	err = srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}
