package dist

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

var errDiverged = errors.New("sweep diverged from sequential reference")

// TestDistRaceLeaseExpiryDuplicates hammers the coordinator's event loop
// under -race: tiny leases so grants expire while workers still compute,
// aggressive hedging so duplicate completions race the first commit, and
// live heartbeat monitors mutating the liveness map concurrently. The
// invariants: the sweep completes, the bytes are the sequential reference,
// and no duplicate ever disagreed with its committed counterpart.
func TestDistRaceLeaseExpiryDuplicates(t *testing.T) {
	job := Job{Op: OpEnum, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}

	workers := startWorkers(t, 3, WorkerConfig{MaxConcurrent: 16, Logf: func(string, ...any) {}})
	// Two interleaved straggler populations: one past the lease (expiry +
	// re-dispatch), one within it (slow enough to lose races against hedges).
	armFaults(t, 5, "delay:dist.exec@1+5:250ms,delay:dist.exec@3+5:40ms")

	cfg := testCoordConfig(workers)
	cfg.LeaseTTL = 120 * time.Millisecond
	cfg.DisableHedging = false
	cfg.HedgeMin = 15 * time.Millisecond
	cfg.HedgeQuantile = 0.5
	cfg.HedgeFactor = 1.2
	cfg.MaxAttempts = 30
	cfg.RetryBase = 5 * time.Millisecond
	cfg.RetryMax = 40 * time.Millisecond
	c := NewCoordinator(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx) // heartbeat monitors run throughout

	for round := 0; round < 3; round++ {
		got, err := c.Run(ctx, job)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: sweep under lease/hedge churn differs from sequential reference", round)
		}
	}
	st := c.Stats()
	if st.CrossCheckMismatches != 0 {
		t.Fatalf("duplicate completions disagreed with committed results: %+v", st)
	}
	if st.LeaseExpiries == 0 && st.Hedges == 0 {
		t.Logf("warning: churn config produced no expiries or hedges (stats %+v)", st)
	}
}

// Concurrent sweeps through one coordinator must serialize on the journal
// and still each return reference bytes.
func TestDistRaceConcurrentSweeps(t *testing.T) {
	job := Job{Op: OpCount, Model: "star:n=4"}
	want, err := RunSequential(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	workers := startWorkers(t, 2, WorkerConfig{MaxConcurrent: 16, Logf: func(string, ...any) {}})
	cfg := testCoordConfig(workers)
	cfg.Shards = 8
	c := NewCoordinator(cfg)

	const sweeps = 4
	errs := make(chan error, sweeps)
	for i := 0; i < sweeps; i++ {
		go func() {
			got, err := c.Run(context.Background(), job)
			if err == nil && !bytes.Equal(got, want) {
				err = errDiverged
			}
			errs <- err
		}()
	}
	for i := 0; i < sweeps; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent sweep: %v", err)
		}
	}
	if st := c.Stats(); st.Sweeps != sweeps {
		t.Fatalf("want %d sweeps, stats %+v", sweeps, st)
	}
}
