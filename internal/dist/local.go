package dist

import (
	"context"

	"ksettop/internal/cli"
	"ksettop/internal/par"
)

// RunLocal executes job in-process: the same rank sharding, ops and merge as
// the distributed path, driven by the par work-stealing pool instead of
// remote workers. It is the fallback when no workers are configured and the
// reference the chaos tests compare the distributed path against. shards ≤ 0
// picks 4 × the pool parallelism.
//
// The shared Budget is charged at shard completion by every pool worker, so
// a trip cancels the sweep context and surfaces within roughly one shard of
// extra work (in-flight shards poll cancellation every ~1k ranks).
func RunLocal(ctx context.Context, job Job, shards int) ([]byte, error) {
	op, ok := LookupOp(job.Op)
	if !ok {
		return nil, errUnknownOp(job.Op)
	}
	m, err := cli.ParseModel(job.Model)
	if err != nil {
		return nil, err
	}
	total, err := m.EnumerationSize()
	if err != nil {
		return nil, err
	}
	if total <= 0 {
		return op.Merge(nil)
	}
	if shards <= 0 {
		shards = 4 * par.Parallelism()
	}
	if int64(shards) > total {
		shards = int(total)
	}
	budget := NewBudget(job.Budget)
	parts := make([][]byte, shards)
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	ctl := &par.Ctl{}
	if err := par.ForEachShardNCtx(runCtx, total, shards, ctl, func(s int, from, to int64, ctl *par.Ctl) {
		payload, err := op.Run(runCtx, m, from, to)
		if err != nil {
			ctl.StopCause(err)
			return
		}
		parts[s] = payload
		if err := budget.Charge(to - from); err != nil {
			ctl.StopCause(err)
			cancel(err) // in-flight shards observe this within ~1k ranks
		}
	}); err != nil {
		return nil, err
	}
	return op.Merge(parts)
}

// RunSequential executes job as a single shard over the whole rank space —
// the canonical reference output every distributed or local sweep must match
// byte for byte. The budget, if any, is charged once at the end (a
// sequential sweep has no early-surface opportunity).
func RunSequential(ctx context.Context, job Job) ([]byte, error) {
	op, ok := LookupOp(job.Op)
	if !ok {
		return nil, errUnknownOp(job.Op)
	}
	m, err := cli.ParseModel(job.Model)
	if err != nil {
		return nil, err
	}
	total, err := m.EnumerationSize()
	if err != nil {
		return nil, err
	}
	if total <= 0 {
		return op.Merge(nil)
	}
	part, err := op.Run(ctx, m, 0, total)
	if err != nil {
		return nil, err
	}
	if err := NewBudget(job.Budget).Charge(total); err != nil {
		return nil, err
	}
	return op.Merge([][]byte{part})
}
