// Package dist is the fault-tolerant distributed sweep tier: a
// coordinator/worker layer that spreads rank-shard ranges of the heavy
// sweeps (closure enumeration, counts) across worker processes over
// HTTP+JSON, designed around failure as the normal case.
//
// Placement is a consistent-hash ring with virtual nodes (Ring), so shard →
// worker assignment is deterministic and a worker leaving moves only its own
// shards, each to the next distinct node clockwise. Every shard grant is a
// lease: a worker that crashes, stalls past its lease, partitions away from
// the heartbeat monitor, or returns a payload failing its checksum simply
// forfeits the shard, which is re-dispatched to the next ring replica with
// exponential backoff + deterministic jitter. Shards outstanding past a
// percentile-based straggler threshold are speculatively hedged rather than
// quorum-waited. Committed shard results go to a CRC-checksummed append-only
// journal so a killed coordinator warm-restarts and resumes the sweep
// without recomputing committed shards. The final merge consumes results in
// shard-index order, so the distributed output is byte-identical to the
// sequential engine regardless of worker count, crashes, retries or hedges.
package dist

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is the virtual-node count per worker: enough that the
// keyspace splits evenly across a handful of workers, small enough that ring
// construction stays trivial.
const defaultVNodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes mapping shard keys to
// worker nodes. It is deterministic: the same member set and vnode count
// always produce the same placement, on every process. Ring is not
// goroutine-safe; the coordinator builds it once per membership view.
type Ring struct {
	vnodes int
	points []ringPoint
	nodes  map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per node
// (≤ 0 selects the default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// ringHash is FNV-64a finalized by a splitmix64 mix. The finalizer matters:
// raw FNV of "node#0" … "node#63" differs only in its low-order bytes, which
// leaves every node's virtual nodes in one tight cluster on the ring —
// virtual nodes without the spread they exist for (observed: an 84/13/3%
// split across three nodes). The mixer avalanches those near-collisions
// across the full 64-bit ring.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return splitmix64(h.Sum64())
}

// Add places node's virtual nodes on the ring (no-op when already present).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual nodes. Keys owned by the node move to the
// next distinct node clockwise — the deterministic replica handoff — and
// every other key keeps its owner.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Sequence returns the first n distinct nodes clockwise from key's hash:
// Sequence(key, n)[0] is the key's owner and [1:] its replica handoff order.
// n is clamped to the member count. The sequence is the coordinator's
// re-dispatch chain: attempt i of a shard goes to Sequence(key, …)[i mod
// live members], so ownership and failover are deterministic for a given
// membership view.
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}
