package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ksettop/internal/checkpoint"
	"ksettop/internal/cli"
	"ksettop/internal/model"
)

func testModel(t *testing.T, spec string) *model.ClosedAbove {
	t.Helper()
	m, err := cli.ParseModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// countAcc computes the genuine durable accumulator of OpCount over
// [lo, pos): the 8-byte LE running count.
func countAcc(t *testing.T, m *model.ClosedAbove, lo, pos int64) []byte {
	t.Helper()
	op, _ := LookupOp(OpCount)
	payload, err := op.Run(context.Background(), m, lo, pos)
	if err != nil {
		t.Fatal(err)
	}
	n, err := DecodeCount(payload)
	if err != nil {
		t.Fatal(err)
	}
	acc := make([]byte, 8)
	binary.LittleEndian.PutUint64(acc, uint64(n))
	return acc
}

// enumAcc computes the genuine durable accumulator of OpEnum over [lo, pos):
// the payload prefix emitted for those ranks.
func enumAcc(t *testing.T, m *model.ClosedAbove, lo, pos int64) []byte {
	t.Helper()
	op, _ := LookupOp(OpEnum)
	payload, err := op.Run(context.Background(), m, lo, pos)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestDistShardResumeByteIdentity pins the op-level durability contract: a
// durable op resumed from a mid-shard accumulator produces exactly the bytes
// of a cold run, for every registered op and at every split point.
func TestDistShardResumeByteIdentity(t *testing.T) {
	m := testModel(t, "star:n=4")
	e, err := m.Enumeration()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(0), e.Size() // 2048 ranks
	ctx := context.Background()

	for _, opName := range []string{OpCount, OpEnum} {
		op, ok := LookupOp(opName)
		if !ok || op.Resume == nil {
			t.Fatalf("%s: no durable variant registered", opName)
		}
		want, err := op.Run(ctx, m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}

		// nil state: identical to a cold run.
		got, err := op.Resume(ctx, m, lo, hi, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: nil-state durable run differs from cold run", opName)
		}

		for _, pos := range []int64{lo + 1, lo + 100, 1024, hi - 1, hi} {
			var acc []byte
			if opName == OpCount {
				acc = countAcc(t, m, lo, pos)
			} else {
				acc = enumAcc(t, m, lo, pos)
			}
			st := &ShardState{}
			st.Set(pos, acc)
			got, err := op.Resume(ctx, m, lo, hi, st)
			if err != nil {
				t.Fatalf("%s resume@%d: %v", opName, pos, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s resume@%d: payload differs from cold run (%d vs %d bytes)",
					opName, pos, len(got), len(want))
			}
		}

		// Stale or malformed states must be ignored, never trusted: position
		// at/below lo, beyond hi, and (for count) a wrong-length accumulator.
		for _, bad := range []struct {
			name string
			pos  int64
			acc  []byte
		}{
			{"pos=lo", lo, []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{"pos>hi", hi + 1, []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{"short-acc", 1024, []byte{9}},
		} {
			if opName == OpEnum && bad.name == "short-acc" {
				continue // any byte prefix is structurally valid for enum
			}
			st := &ShardState{}
			st.Set(bad.pos, bad.acc)
			got, err := op.Resume(ctx, m, lo, hi, st)
			if err != nil {
				t.Fatalf("%s %s: %v", opName, bad.name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: %s state skewed the payload", opName, bad.name)
			}
		}
	}
}

// TestDistShardTableCheckpointRoundTrip: the shard-progress table encodes to
// a checkpoint section and restores losslessly; live executions are never
// overwritten; garbage payloads are rejected whole.
func TestDistShardTableCheckpointRoundTrip(t *testing.T) {
	t1 := newShardTable()
	a := t1.claim("count|star:n=4|0|1024", 0)
	a.Set(512, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	t1.release("count|star:n=4|0|1024", false)
	b := t1.claim("enum|star:n=4|1024|2048", 1024)
	b.Set(1500, []byte("partial-enum-bytes"))
	t1.release("enum|star:n=4|1024|2048", false)

	payload, err := t1.encode()
	if err != nil {
		t.Fatal(err)
	}
	t2 := newShardTable()
	if err := t2.restore(payload); err != nil {
		t.Fatal(err)
	}
	payload2, err := t2.encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("restore→encode is not the identity")
	}
	if pos, acc := t2.states["enum|star:n=4|1024|2048"].Snapshot(); pos != 1500 || string(acc) != "partial-enum-bytes" {
		t.Fatalf("restored state pos=%d acc=%q", pos, acc)
	}

	// A key executing RIGHT NOW must not be clobbered by a stale checkpoint.
	live := t2.claim("enum|star:n=4|1024|2048", 1024)
	live.Set(2000, []byte("live"))
	if err := t2.restore(payload); err != nil {
		t.Fatal(err)
	}
	if pos, _ := live.Snapshot(); pos != 2000 {
		t.Fatalf("restore overwrote a live execution (pos %d)", pos)
	}

	// Garbage payloads: rejected with an error, table untouched.
	for _, garbage := range [][]byte{
		{},
		{99},                              // wrong version
		{1, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // absurd entry count
		append(payload, 0xAA),             // trailing bytes
	} {
		if err := newShardTable().restore(garbage); err == nil {
			t.Fatalf("garbage payload %v accepted", garbage)
		}
	}
}

// execShard POSTs one shard grant to a worker and returns the payload.
func execShard(t *testing.T, url string, req ExecRequest) ([]byte, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/dist/v1/exec", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er ExecResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return er.Payload, resp.StatusCode
}

// TestDistWorkerKillRestartResumeByteIdentity is the worker-level durability
// contract: a worker restarted over the checkpoint of a crashed predecessor
// resumes the in-flight shard mid-range, and the payload it delivers is
// byte-identical to one computed cold.
func TestDistWorkerKillRestartResumeByteIdentity(t *testing.T) {
	m := testModel(t, "star:n=4")
	e, err := m.Enumeration()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(0), e.Size()
	path := filepath.Join(t.TempDir(), "worker.ckpt")

	// "Crash" a worker mid-shard: record genuine partial progress for both
	// ops into a checkpoint file, the way the runner's cadence would have.
	crashed := newShardTable()
	for _, opName := range []string{OpCount, OpEnum} {
		key := fmt.Sprintf("%s|star:n=4|%d|%d", opName, lo, hi)
		st := crashed.claim(key, lo)
		if opName == OpCount {
			st.Set(1000, countAcc(t, m, lo, 1000))
		} else {
			st.Set(1000, enumAcc(t, m, lo, 1000))
		}
		crashed.release(key, false) // crash: execution ended, payload never delivered
	}
	r1 := checkpoint.NewRunner(path, "job", 0)
	r1.Register(kindDistShards, distShardsFP(), crashed.encode)
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh worker over the same checkpoint file.
	r2 := checkpoint.NewRunner(path, "job", 0)
	if !r2.LoadForResume() {
		t.Fatal("worker checkpoint did not load")
	}
	w2 := NewWorker(WorkerConfig{Checkpoint: r2, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(w2.Handler())
	defer ts.Close()

	for _, opName := range []string{OpCount, OpEnum} {
		op, _ := LookupOp(opName)
		want, err := op.Run(context.Background(), m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, status := execShard(t, ts.URL, ExecRequest{Op: opName, Model: "star:n=4", From: lo, To: hi})
		if status != http.StatusOK {
			t.Fatalf("%s: exec status %d", opName, status)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: resumed worker payload differs from cold run (%d vs %d bytes)",
				opName, len(got), len(want))
		}
		// Delivery drops the durable entry — resuming a committed shard
		// again would be wasted work.
		key := fmt.Sprintf("%s|star:n=4|%d|%d", opName, lo, hi)
		w2.shards.mu.Lock()
		_, still := w2.shards.states[key]
		w2.shards.mu.Unlock()
		if still {
			t.Fatalf("%s: shard entry survived successful delivery", opName)
		}
	}
}

// TestDistWorkerCheckpointLeaseExpiryRecordsProgress aborts a real shard
// execution mid-range (lease deadline on a 327k-rank shard) and checks the
// interrupted progress lands in the checkpoint file, then finishes the shard
// on a restarted worker and requires the cold-run bytes.
func TestDistWorkerCheckpointLeaseExpiryRecordsProgress(t *testing.T) {
	m := testModel(t, "star:n=5")
	e, err := m.Enumeration()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(0), e.Size() // 327680 ranks
	path := filepath.Join(t.TempDir(), "worker.ckpt")

	r1 := checkpoint.NewRunner(path, "job", 0)
	w1 := NewWorker(WorkerConfig{Checkpoint: r1, Logf: func(string, ...any) {}})
	ts1 := httptest.NewServer(w1.Handler())
	defer ts1.Close()

	// A lease far too short for 327k ranks of enum serialization: the worker
	// must give up at the deadline, leaving its progress in the shard table.
	req := ExecRequest{Op: OpEnum, Model: "star:n=5", From: lo, To: hi, LeaseMs: 5}
	deadline := time.Now().Add(10 * time.Second)
	aborted := false
	for time.Now().Before(deadline) {
		if _, status := execShard(t, ts1.URL, req); status == http.StatusGatewayTimeout {
			aborted = true
			break
		}
	}
	if !aborted {
		t.Skip("machine finished a 327k-rank shard inside a 5ms lease; nothing to resume")
	}
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}

	r2 := checkpoint.NewRunner(path, "job", 0)
	if !r2.LoadForResume() {
		t.Fatal("checkpoint did not load after lease expiry")
	}
	w2 := NewWorker(WorkerConfig{Checkpoint: r2, Logf: func(string, ...any) {}})
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()

	op, _ := LookupOp(OpEnum)
	want, err := op.Run(context.Background(), m, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, status := execShard(t, ts2.URL, ExecRequest{Op: OpEnum, Model: "star:n=5", From: lo, To: hi})
	if status != http.StatusOK {
		t.Fatalf("resume exec status %d", status)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart payload differs from cold run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDistSweepWithCheckpointingWorkersByteIdentity runs a full distributed
// sweep on checkpointing workers: durable execution must be invisible in the
// merged result.
func TestDistSweepWithCheckpointingWorkersByteIdentity(t *testing.T) {
	dir := t.TempDir()
	addrs := make([]string, 2)
	for i := range addrs {
		r := checkpoint.NewRunner(filepath.Join(dir, fmt.Sprintf("w%d.ckpt", i)), "job", 0)
		ts := httptest.NewServer(NewWorker(WorkerConfig{Checkpoint: r, Logf: func(string, ...any) {}}).Handler())
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	c := NewCoordinator(testCoordConfig(addrs))
	for _, opName := range []string{OpCount, OpEnum} {
		job := Job{Op: opName, Model: "star:n=4"}
		want, err := RunSequential(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: sweep over checkpointing workers differs from sequential", opName)
		}
	}
}
