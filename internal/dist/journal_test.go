package dist

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func openForTest(t *testing.T, path, key string) (*Journal, map[int][]byte, bool) {
	t.Helper()
	j, commits, resumed, err := OpenJournal(path, key)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, commits, resumed
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, commits, resumed := openForTest(t, path, "job-A")
	if resumed || len(commits) != 0 {
		t.Fatalf("fresh journal: resumed=%v commits=%d", resumed, len(commits))
	}
	want := map[int][]byte{0: []byte("alpha"), 3: []byte("delta"), 1: {}}
	for shard, p := range want {
		if err := j.Append(shard, p); err != nil {
			t.Fatalf("Append(%d): %v", shard, err)
		}
	}
	j.Close()

	j2, commits, resumed := openForTest(t, path, "job-A")
	defer j2.Close()
	if !resumed {
		t.Fatal("want resumed=true")
	}
	if len(commits) != len(want) {
		t.Fatalf("recovered %d commits, want %d", len(commits), len(want))
	}
	for shard, p := range want {
		if !bytes.Equal(commits[shard], p) {
			t.Fatalf("shard %d: got %q want %q", shard, commits[shard], p)
		}
	}
}

// A torn tail — the expected artifact of a coordinator killed mid-append —
// must cost only the torn record: the good prefix survives and the file is
// truncated so later appends stay framed.
func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, _ := openForTest(t, path, "job-A")
	j.Append(0, []byte("first"))
	j.Append(1, []byte("second"))
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-10; cut-- {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, commits, resumed := openForTest(t, path, "job-A")
		if !resumed || len(commits) != 1 || !bytes.Equal(commits[0], []byte("first")) {
			t.Fatalf("cut=%d: want shard 0 only, got resumed=%v commits=%v", cut, resumed, commits)
		}
		// Appends after the truncation must stay parseable.
		if err := j2.Append(1, []byte("second-again")); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		j3, commits, _ := openForTest(t, path, "job-A")
		if len(commits) != 2 || !bytes.Equal(commits[1], []byte("second-again")) {
			t.Fatalf("cut=%d: after re-append got %v", cut, commits)
		}
		j3.Close()
		os.WriteFile(path, data, 0o644) // restore for the next cut
	}
}

// A corrupted record mid-file keeps the prefix before it and drops the rest.
func TestJournalCorruptRecordKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, _ := openForTest(t, path, "job-A")
	j.Append(0, []byte("first"))
	off, err := j.f.Seek(0, io.SeekCurrent)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(1, []byte("second"))
	j.Close()

	data, _ := os.ReadFile(path)
	data[int(off)+3] ^= 0xff // damage shard 1's record body
	os.WriteFile(path, data, 0o644)

	j2, commits, resumed := openForTest(t, path, "job-A")
	defer j2.Close()
	if !resumed || len(commits) != 1 || !bytes.Equal(commits[0], []byte("first")) {
		t.Fatalf("want shard 0 only, got resumed=%v commits=%v", resumed, commits)
	}
}

// A journal for a DIFFERENT job must never be resumed — it is reset.
func TestJournalForeignJobReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, _ := openForTest(t, path, "job-A")
	j.Append(0, []byte("payload"))
	j.Close()

	j2, commits, resumed := openForTest(t, path, "job-B")
	if resumed || len(commits) != 0 {
		t.Fatalf("foreign job resumed: resumed=%v commits=%v", resumed, commits)
	}
	j2.Append(0, []byte("fresh"))
	j2.Close()

	j3, commits, resumed := openForTest(t, path, "job-B")
	defer j3.Close()
	if !resumed || !bytes.Equal(commits[0], []byte("fresh")) {
		t.Fatalf("want job-B's own commit back, got resumed=%v commits=%v", resumed, commits)
	}
}

// A file that is not a journal at all starts fresh instead of erroring —
// recovery must never be blocked by garbage on disk.
func TestJournalGarbageFileReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, commits, resumed := openForTest(t, path, "job-A")
	defer j.Close()
	if resumed || len(commits) != 0 {
		t.Fatalf("garbage file: resumed=%v commits=%v", resumed, commits)
	}
}

func TestJournalRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, _, _ := openForTest(t, path, "job-A")
	j.Append(0, []byte("payload"))
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("journal still on disk: %v", err)
	}
}
