package dist

import (
	"bytes"
	"context"
	"sync"
	"time"

	"ksettop/internal/cli"
)

// This file is the coordinator's trust ledger: per-worker health scores fed
// by divergence and transport evidence, a circuit breaker that quarantines a
// worker whose score crosses the threshold (its leases are revoked, its ring
// vnodes are skipped in placement, its in-flight shards re-dispatch), and a
// half-open probe that re-admits it after exponential backoff by re-running
// a known-answer job and comparing bytes.

// Evidence weights. A byte divergence (losing a quorum vote, a hedge-loser
// mismatch) is the Byzantine signal and counts full; a corrupt response is
// nearly as damning (the worker checksummed garbage); plain transport
// failures — timeouts, refused connections, 5xx — are crash-fault noise and
// count a quarter, decayed by successes so a slow-but-honest worker never
// trips.
const (
	divergenceScore = 1.0
	corruptScore    = 1.0
	transportScore  = 0.25
	successDecay    = 0.5
)

// probeModel is the known-answer job a half-open probe re-executes on a
// quarantined worker; the reference bytes are computed locally once and
// cached. Tiny on purpose: a probe must be cheap enough to repeat forever.
const probeModel = "star:n=3"

// workerHealth is one worker's trust state, guarded by Coordinator.mu.
type workerHealth struct {
	score       float64   // accumulated divergence/transport evidence
	quarantined bool      // circuit open: excluded from placement
	since       time.Time // when the current quarantine (or extension) began
	trips       int       // consecutive failed probes + the original trip, drives backoff
	probing     bool      // a half-open probe is in flight
}

func (c *Coordinator) quarantineEnabled() bool { return c.cfg.QuarantineThreshold >= 0 }

// healthLocked returns worker's health record, creating it on first use.
// Callers hold c.mu.
func (c *Coordinator) healthLocked(worker string) *workerHealth {
	h := c.health[worker]
	if h == nil {
		h = &workerHealth{}
		c.health[worker] = h
	}
	return h
}

// eligible reports whether worker may receive leases: alive per the failure
// detector and not quarantined.
func (c *Coordinator) eligible(worker string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[worker]
	return c.live[worker] && (h == nil || !h.quarantined)
}

// EligibleWorkers reports how many workers are live AND trusted — the
// placement candidate set. Falling below the degrade floor switches sweeps
// to local compute.
func (c *Coordinator) EligibleWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for w, ok := range c.live {
		if h := c.health[w]; ok && (h == nil || !h.quarantined) {
			n++
		}
	}
	return n
}

// QuarantinedWorkers reports how many workers are currently quarantined.
func (c *Coordinator) QuarantinedWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, h := range c.health {
		if h.quarantined {
			n++
		}
	}
	return n
}

func (c *Coordinator) quarantinedGaugeLocked() {
	n := int64(0)
	for _, h := range c.health {
		if h.quarantined {
			n++
		}
	}
	c.met.quarantinedWorkers.Set(n)
}

// recordDivergence charges worker with one byte-divergence event on shard
// and trips quarantine at the threshold.
func (c *Coordinator) recordDivergence(worker string, shard int) {
	if worker == localWorker {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(worker)
	h.score += divergenceScore
	c.log.Warnf("dist: worker %s diverged on shard %d (score %.2f)", worker, shard, h.score)
	c.maybeQuarantineLocked(worker, h)
}

// recordFailure charges worker with transport-class evidence (weight
// transportScore or corruptScore).
func (c *Coordinator) recordFailure(worker string, weight float64) {
	if worker == localWorker {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(worker)
	h.score += weight
	c.maybeQuarantineLocked(worker, h)
}

// recordSuccess decays worker's score on a committed result, so transient
// transport noise never accumulates into a trip.
func (c *Coordinator) recordSuccess(worker string) {
	if worker == localWorker {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.healthLocked(worker)
	if h.score > 0 {
		h.score -= successDecay
		if h.score < 0 {
			h.score = 0
		}
	}
}

func (c *Coordinator) maybeQuarantineLocked(worker string, h *workerHealth) {
	if !c.quarantineEnabled() || h.quarantined || h.score < c.cfg.QuarantineThreshold {
		return
	}
	h.quarantined = true
	h.since = time.Now()
	h.trips++
	c.met.quarantineTrips.Inc()
	c.quarantinedGaugeLocked()
	c.log.Warnf("dist: worker %s quarantined (score %.2f ≥ %.2f): leases revoked, placement skipped, half-open probe in %s",
		worker, h.score, c.cfg.QuarantineThreshold, c.quarantineBackoffLocked(h))
}

// quarantineBackoffLocked is the half-open probe delay after h.trips
// consecutive trips: QuarantineBackoff × 2^(trips−1), capped at
// QuarantineBackoffMax.
func (c *Coordinator) quarantineBackoffLocked(h *workerHealth) time.Duration {
	d := c.cfg.QuarantineBackoff << uint(h.trips-1)
	if d <= 0 || d > c.cfg.QuarantineBackoffMax {
		d = c.cfg.QuarantineBackoffMax
	}
	return d
}

// maybeProbeQuarantined launches one half-open probe per quarantined worker
// whose backoff has elapsed. Called from the heartbeat monitors and the
// sweep event loop; the probing flag makes concurrent callers cheap no-ops.
func (c *Coordinator) maybeProbeQuarantined(ctx context.Context) {
	if !c.quarantineEnabled() {
		return
	}
	now := time.Now()
	c.mu.Lock()
	var due []string
	for w, h := range c.health {
		if h.quarantined && !h.probing && now.Sub(h.since) >= c.quarantineBackoffLocked(h) {
			h.probing = true
			due = append(due, w)
		}
	}
	c.mu.Unlock()
	for _, w := range due {
		go c.probeQuarantined(ctx, w)
	}
}

// probeQuarantined is the half-open transition: re-execute the known-answer
// probe job on worker and compare bytes. A match closes the circuit
// (re-admission, score reset); anything else re-opens it with doubled
// backoff.
func (c *Coordinator) probeQuarantined(ctx context.Context, worker string) {
	c.met.quarantineProbes.Inc()
	ok := c.runProbe(ctx, worker)
	c.mu.Lock()
	h := c.healthLocked(worker)
	h.probing = false
	if ok {
		h.quarantined = false
		h.score = 0
		h.trips = 0
		c.met.quarantineReadmissions.Inc()
		c.quarantinedGaugeLocked()
		c.mu.Unlock()
		c.log.Infof("dist: worker %s passed its half-open probe; re-admitted", worker)
		return
	}
	h.since = time.Now()
	h.trips++
	next := c.quarantineBackoffLocked(h)
	c.mu.Unlock()
	c.log.Warnf("dist: worker %s failed its half-open probe; quarantine extended (next probe in %s)", worker, next)
}

// runProbe executes the known-answer job on worker and byte-compares the
// payload against the locally computed reference.
func (c *Coordinator) runProbe(ctx context.Context, worker string) bool {
	ref, total, err := c.probeReference()
	if err != nil {
		return false
	}
	lease := c.cfg.LeaseTTL
	if lease > 5*time.Second {
		lease = 5 * time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, lease)
	defer cancel()
	payload, _, err := c.exec(pctx, worker, ExecRequest{
		Op:      OpCount,
		Model:   probeModel,
		From:    0,
		To:      total,
		LeaseMs: lease.Milliseconds(),
	})
	return err == nil && bytes.Equal(payload, ref)
}

var probeRefOnce sync.Once
var probeRefPayload []byte
var probeRefTotal int64
var probeRefErr error

// probeReference computes (once, process-wide) the reference bytes of the
// probe job. The probe model and op are fixed, so all coordinators share it.
func (c *Coordinator) probeReference() ([]byte, int64, error) {
	probeRefOnce.Do(func() {
		op, ok := LookupOp(OpCount)
		if !ok {
			probeRefErr = errUnknownOp(OpCount)
			return
		}
		m, err := cli.ParseModel(probeModel)
		if err != nil {
			probeRefErr = err
			return
		}
		probeRefTotal, err = m.EnumerationSize()
		if err != nil {
			probeRefErr = err
			return
		}
		probeRefPayload, probeRefErr = op.Run(context.Background(), m, 0, probeRefTotal)
	})
	return probeRefPayload, probeRefTotal, probeRefErr
}
