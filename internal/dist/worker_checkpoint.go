package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"ksettop/internal/bits"
	"ksettop/internal/memo"
	"ksettop/internal/model"
)

// This file is the worker-side durability layer: a worker with a checkpoint
// runner records per-shard sweep progress (next unprocessed rank + the op's
// partial accumulator) into an in-memory table that the runner persists on
// its cadence and on shutdown. A restarted worker reloads the table, and
// when the coordinator re-leases a shard it was executing — same op, model
// and rank range — the op resumes from the recorded rank instead of rank
// lo. Ops are deterministic functions of their rank range, so a resumed
// shard payload is byte-identical to a cold one; the coordinator cannot
// tell the difference (and its CRC check would catch it if it could).

// kindDistShards is the checkpoint section kind of the shard-progress table.
const kindDistShards = "dist.shards"

const distShardsVersion = 1

// shardFlushMask paces in-run progress updates: state is snapshotted into
// the table every 4096 ranks, bounding a crash's recompute cost per shard.
const shardFlushMask = 4095

// distShardsFP is the section fingerprint. The table is workload-agnostic —
// whatever shards were in flight — so the fingerprint only pins the format.
func distShardsFP() uint64 {
	h := fnv.New64a()
	io.WriteString(h, "dist.shards.v1")
	return h.Sum64()
}

// ShardState is the durable progress of one in-flight shard execution: the
// next unprocessed enumeration rank and the op's partial accumulator in an
// op-specific encoding (OpCount: 8-byte LE count; OpEnum: the payload bytes
// emitted so far). The executing op writes through Set, the checkpoint
// capture reads through Snapshot.
type ShardState struct {
	mu  sync.Mutex
	pos int64
	acc []byte
}

// Set records progress: ranks below pos are folded into acc.
func (s *ShardState) Set(pos int64, acc []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pos = pos
	s.acc = append(s.acc[:0], acc...)
}

// Snapshot returns the recorded position and a copy of the accumulator.
func (s *ShardState) Snapshot() (int64, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pos, append([]byte(nil), s.acc...)
}

// shardKey is the resume identity of one grant. Two leases with the same
// key compute the same payload, so progress is transferable between them.
func shardKey(req ExecRequest) string {
	return fmt.Sprintf("%s|%s|%d|%d", req.Op, req.Model, req.From, req.To)
}

// shardTable is the worker's mutex-guarded in-flight shard progress map.
type shardTable struct {
	mu     sync.Mutex
	states map[string]*ShardState
	active map[string]bool
}

func newShardTable() *shardTable {
	return &shardTable{states: map[string]*ShardState{}, active: map[string]bool{}}
}

// claim returns the state to run a grant against: the restored/previous
// entry when the shard is known, a fresh one otherwise. A key already
// executing returns nil — the duplicate grant runs undurably rather than
// racing the first on one accumulator.
func (t *shardTable) claim(key string, from int64) *ShardState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.active[key] {
		return nil
	}
	st := t.states[key]
	if st == nil {
		st = &ShardState{pos: from}
		t.states[key] = st
	}
	t.active[key] = true
	return st
}

// release ends a grant's execution; done drops the entry (the shard's
// payload was delivered — resuming it again would be wasted work).
func (t *shardTable) release(key string, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.active, key)
	if done {
		delete(t.states, key)
	}
}

// encode serializes the table as a checkpoint section payload: entries
// sorted by key for deterministic bytes.
func (t *shardTable) encode() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.states))
	for k := range t.states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte(distShardsVersion)
	memo.WriteUvarint(&buf, uint64(len(keys)))
	for _, k := range keys {
		pos, acc := t.states[k].Snapshot()
		memo.WriteUvarint(&buf, uint64(len(k)))
		buf.WriteString(k)
		memo.WriteUvarint(&buf, uint64(pos))
		memo.WriteUvarint(&buf, uint64(len(acc)))
		buf.Write(acc)
	}
	return buf.Bytes(), nil
}

// restore merges a decoded checkpoint section into the table (idle entries
// only; a live execution is never overwritten).
func (t *shardTable) restore(payload []byte) error {
	r := bytes.NewReader(payload)
	ver, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("version: %w", err)
	}
	if ver != distShardsVersion {
		return fmt.Errorf("version %d, want %d", ver, distShardsVersion)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("entry count: %w", err)
	}
	if n > 1<<20 {
		return fmt.Errorf("entry count %d out of range", n)
	}
	type entry struct {
		key string
		pos int64
		acc []byte
	}
	entries := make([]entry, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("entry %d key length: %w", i, err)
		}
		if klen == 0 || klen > 4096 {
			return fmt.Errorf("entry %d key length %d out of range", i, klen)
		}
		kb := make([]byte, klen)
		if _, err := io.ReadFull(r, kb); err != nil {
			return fmt.Errorf("entry %d key: %w", i, err)
		}
		pos, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("entry %d pos: %w", i, err)
		}
		alen, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("entry %d acc length: %w", i, err)
		}
		if alen > uint64(r.Len()) {
			return fmt.Errorf("entry %d acc length %d exceeds payload", i, alen)
		}
		acc := make([]byte, alen)
		if _, err := io.ReadFull(r, acc); err != nil {
			return fmt.Errorf("entry %d acc: %w", i, err)
		}
		entries = append(entries, entry{key: string(kb), pos: int64(pos), acc: acc})
	}
	if r.Len() != 0 {
		return fmt.Errorf("%d trailing bytes", r.Len())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range entries {
		if t.active[e.key] {
			continue
		}
		t.states[e.key] = &ShardState{pos: e.pos, acc: e.acc}
	}
	return nil
}

// runCountDurable is runCount resuming from and writing through st (nil st:
// identical to runCount). Accumulator encoding: 8-byte LE running count.
func runCountDurable(ctx context.Context, m *model.ClosedAbove, lo, hi int64, st *ShardState) ([]byte, error) {
	e, err := m.Enumeration()
	if err != nil {
		return nil, err
	}
	start := lo
	var count uint64
	if st != nil {
		if pos, acc := st.Snapshot(); pos > lo && pos <= hi && len(acc) == 8 {
			start = pos
			count = binary.LittleEndian.Uint64(acc)
		}
	}
	seen := int64(0)
	if err := rangeMasksCtx(ctx, e, start, hi, func(mask bits.Words) bool {
		count++
		seen++
		if st != nil && seen&shardFlushMask == 0 {
			var acc [8]byte
			binary.LittleEndian.PutUint64(acc[:], count)
			st.Set(start+seen, acc[:])
		}
		return true
	}); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, count)
	return buf.Bytes(), nil
}

// runEnumDurable is runEnum resuming from and writing through st (nil st:
// identical to runEnum). Accumulator encoding: the payload bytes emitted
// for ranks below pos — OpEnum payloads are per-rank concatenations, so the
// prefix is itself the partial payload.
func runEnumDurable(ctx context.Context, m *model.ClosedAbove, lo, hi int64, st *ShardState) ([]byte, error) {
	e, err := m.Enumeration()
	if err != nil {
		return nil, err
	}
	start := lo
	var buf bytes.Buffer
	if st != nil {
		if pos, acc := st.Snapshot(); pos > lo && pos <= hi {
			start = pos
			buf.Write(acc)
		}
	}
	var positions []int
	seen := int64(0)
	if err := rangeMasksCtx(ctx, e, start, hi, func(mask bits.Words) bool {
		positions = positions[:0]
		mask.ForEachBit(func(bit int) { positions = append(positions, bit) })
		sort.Ints(positions)
		memo.WriteUvarint(&buf, uint64(len(positions)))
		prev := 0
		for _, p := range positions {
			memo.WriteUvarint(&buf, uint64(p-prev))
			prev = p
		}
		seen++
		if st != nil && seen&shardFlushMask == 0 {
			st.Set(start+seen, buf.Bytes())
		}
		return true
	}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
