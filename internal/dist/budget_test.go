package dist

import (
	"context"
	"errors"
	"sync"
	"testing"

	"ksettop/internal/cli"
	"ksettop/internal/model"
)

func TestBudgetNilUnlimited(t *testing.T) {
	b := NewBudget(0)
	if b != nil {
		t.Fatal("limit 0 should return nil (unlimited)")
	}
	if err := b.Charge(1 << 40); err != nil {
		t.Fatalf("nil budget charged: %v", err)
	}
	if b.Tripped() || b.Spent() != 0 {
		t.Fatal("nil budget has no state")
	}
}

func TestBudgetErrorMatchesEnumerationBudget(t *testing.T) {
	b := NewBudget(10)
	if err := b.Charge(10); err != nil {
		t.Fatalf("charge at limit should pass: %v", err)
	}
	err := b.Charge(1)
	if err == nil {
		t.Fatal("charge past limit should trip")
	}
	if !errors.Is(err, model.ErrEnumerationBudget) {
		t.Fatalf("budget error %v must match model.ErrEnumerationBudget (exit-code-2 / HTTP-422 mapping)", err)
	}
	if cli.ExitCode(err) != 2 {
		t.Fatalf("ExitCode(%v) = %d, want 2", err, cli.ExitCode(err))
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != 10 || be.Spent != 11 {
		t.Fatalf("BudgetError accounting: %+v", be)
	}
}

// The overshoot regression: with W concurrent executors charging one SHARED
// counter, total work past the limit is bounded by roughly one shard per
// executor in flight — never workers × budget, which is what per-worker
// budget copies used to allow.
func TestBudgetSharedNoOvershoot(t *testing.T) {
	const (
		limit     = 1000
		shardSize = 100
		workers   = 8
	)
	b := NewBudget(limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalCharged := int64(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if b.Tripped() {
					return
				}
				err := b.Charge(shardSize)
				mu.Lock()
				totalCharged += shardSize
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if !b.Tripped() {
		t.Fatal("budget never tripped")
	}
	// Worst case: every worker has one uncharged shard in flight when the
	// crossing charge lands.
	if max := int64(limit + workers*shardSize); totalCharged > max {
		t.Fatalf("charged %d ranks against limit %d; overshoot exceeds one shard per worker (max %d)", totalCharged, limit, max)
	}
}

// A local sweep with a budget below the rank space must trip with the typed
// error, and the trip must surface without scanning the whole space many
// times over.
func TestRunLocalBudgetTrip(t *testing.T) {
	job := Job{Op: OpCount, Model: "star:n=4", Budget: 256} // rank space 2048
	_, err := RunLocal(context.Background(), job, 16)
	if err == nil {
		t.Fatal("want budget trip")
	}
	if !errors.Is(err, model.ErrEnumerationBudget) {
		t.Fatalf("trip error %v must match model.ErrEnumerationBudget", err)
	}
}

// The budget is charged at completion: a sweep whose budget covers the rank
// space exactly must succeed.
func TestRunLocalBudgetExact(t *testing.T) {
	job := Job{Op: OpCount, Model: "star:n=4", Budget: 2048}
	out, err := RunLocal(context.Background(), job, 8)
	if err != nil {
		t.Fatalf("exact budget should pass: %v", err)
	}
	want, err := RunSequential(context.Background(), Job{Op: OpCount, Model: "star:n=4"})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(want) {
		t.Fatal("budgeted local run diverged from sequential reference")
	}
}
