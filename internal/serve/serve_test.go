package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ksettop/internal/faultinject"
)

// The chaos suite drives the service through injected panics, errors,
// delays, compressed deadlines, corrupt snapshots and overload, asserting
// the hardening contract: clean JSON errors, correct status codes, no
// process crash, no goroutine leaks, and byte-identical answers for
// repeated queries. faultinject state is process-global, so no test here
// calls t.Parallel().

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status plus raw response bytes.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func errKind(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body %q is not the JSON envelope: %v", body, err)
	}
	return env.Error.Kind
}

func TestServeSolveDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"model":"star:n=3","values":3,"k":2}`
	st1, b1 := post(t, ts, "/v1/solve", req)
	st2, b2 := post(t, ts, "/v1/solve", req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses %d, %d, want 200 (bodies %s / %s)", st1, st2, b1, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("repeated query not byte-identical:\n%s\n%s", b1, b2)
	}
	var res SolveResponse
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Views == 0 || res.Nodes == 0 {
		t.Errorf("implausible solve response %+v", res)
	}
}

func TestServeBettiAndBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, body := post(t, ts, "/v1/betti", `{"model":"star:n=3","values":2,"max_dim":2}`)
	if st != http.StatusOK {
		t.Fatalf("betti status %d: %s", st, body)
	}
	var betti BettiResponse
	if err := json.Unmarshal(body, &betti); err != nil {
		t.Fatal(err)
	}
	if len(betti.Betti) != 3 {
		t.Errorf("betti = %v, want 3 entries", betti.Betti)
	}

	st, body = post(t, ts, "/v1/bounds", `{"model":"star:n=4","rounds":2}`)
	if st != http.StatusOK {
		t.Fatalf("bounds status %d: %s", st, body)
	}
	var bounds BoundsResponse
	if err := json.Unmarshal(body, &bounds); err != nil {
		t.Fatal(err)
	}
	if bounds.N != 4 || len(bounds.Best) != 2 || bounds.Report == "" {
		t.Errorf("implausible bounds response N=%d best=%d report=%dB",
			bounds.N, len(bounds.Best), len(bounds.Report))
	}
}

func TestServeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
	for _, tc := range []struct{ path, body string }{
		{"/v1/solve", `{not json`},
		{"/v1/solve", `{"model":"nonsense:spec","values":2,"k":1}`},
		{"/v1/solve", `{"model":"star:n=3","values":0,"k":2}`},
		{"/v1/betti", `{"model":"star:n=3","values":2,"max_dim":-1}`},
		{"/v1/bounds", `{"model":"","rounds":1}`},
	} {
		st, body := post(t, ts, tc.path, tc.body)
		if st != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400 (%s)", tc.path, tc.body, st, body)
		} else if kind := errKind(t, body); kind != "bad_request" {
			t.Errorf("%s: kind %q, want bad_request", tc.path, kind)
		}
	}
}

func TestServeBudgetRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSolverBudget: 10_000})
	// Asking beyond the server cap is rejected at admission.
	st, body := post(t, ts, "/v1/solve", `{"model":"star:n=3","values":3,"k":2,"budget":20000}`)
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("over-cap status %d: %s", st, body)
	}
	if kind := errKind(t, body); kind != "budget" {
		t.Errorf("over-cap kind %q, want budget", kind)
	}
	// A budget the search actually exhausts surfaces the typed solver error
	// with its deterministic nodes-charged accounting.
	st, body = post(t, ts, "/v1/solve", `{"model":"star:n=4","values":4,"k":3,"budget":10}`)
	if st != http.StatusUnprocessableEntity {
		t.Fatalf("exhausted status %d: %s", st, body)
	}
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Kind != "budget" || !strings.Contains(env.Error.Message, "node budget 10 exhausted") {
		t.Errorf("exhausted error = %+v", env.Error)
	}
	if env.Error.Budget != 10 || env.Error.Nodes < 10 {
		t.Errorf("budget accounting = %+v, want Budget=10, Nodes ≥ 10", env.Error)
	}
	if s.Stats().BudgetRejects != 2 {
		t.Errorf("BudgetRejects = %d, want 2", s.Stats().BudgetRejects)
	}
}

func TestServeDeadlineExpires(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTimeout: 5 * time.Second})
	// star:n=4 consensus refutation costs tens of thousands of solver nodes;
	// a 1ms budget cannot finish it.
	st, body := post(t, ts, "/v1/solve", `{"model":"star:n=4","values":4,"k":3,"timeout_ms":1}`)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", st, body)
	}
	if kind := errKind(t, body); kind != "deadline" {
		t.Errorf("kind %q, want deadline", kind)
	}
	if s.Stats().Timeouts == 0 {
		t.Error("Timeouts counter did not move")
	}
}

func TestServeDeadlineCompression(t *testing.T) {
	// An armed deadline rule squeezes every request budget to 0.1% —
	// modeling an LB cutting requests short — so even a generous timeout_ms
	// expires mid-sweep and surfaces as a clean 504.
	faultinject.Enable(1, faultinject.Rule{
		Point:  faultinject.PointServeRequest,
		Action: faultinject.ActionDeadline,
		Every:  1,
		Frac:   0.001,
	})
	defer faultinject.Disable()
	_, ts := newTestServer(t, Config{MaxTimeout: 5 * time.Second})
	st, body := post(t, ts, "/v1/solve", `{"model":"star:n=4","values":4,"k":3,"timeout_ms":2000}`)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", st, body)
	}
	if kind := errKind(t, body); kind != "deadline" {
		t.Errorf("kind %q, want deadline", kind)
	}
}

func TestServeInjectedPanicIsolated(t *testing.T) {
	faultinject.Enable(1, faultinject.Rule{
		Point:  faultinject.PointServeRequest,
		Action: faultinject.ActionPanic,
		Nth:    1,
	})
	defer faultinject.Disable()
	s, ts := newTestServer(t, Config{})
	st, body := post(t, ts, "/v1/solve", `{"model":"star:n=3","values":3,"k":2}`)
	if st != http.StatusInternalServerError {
		t.Fatalf("panicked request status %d: %s", st, body)
	}
	if kind := errKind(t, body); kind != "internal" {
		t.Errorf("kind %q, want internal", kind)
	}
	if !strings.Contains(string(body), "injected panic") {
		t.Errorf("panic message lost: %s", body)
	}
	// The rule fired once; the service must keep answering.
	st, _ = post(t, ts, "/v1/solve", `{"model":"star:n=3","values":3,"k":2}`)
	if st != http.StatusOK {
		t.Errorf("post-panic request status %d, want 200", st)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
}

func TestServeInjectedError(t *testing.T) {
	faultinject.Enable(1, faultinject.Rule{
		Point:  faultinject.PointServeRequest,
		Action: faultinject.ActionError,
		Nth:    1,
	})
	defer faultinject.Disable()
	_, ts := newTestServer(t, Config{})
	st, body := post(t, ts, "/v1/solve", `{"model":"star:n=3","values":3,"k":2}`)
	if st != http.StatusInternalServerError || errKind(t, body) != "internal" {
		t.Fatalf("injected error: status %d body %s", st, body)
	}
	st, _ = post(t, ts, "/v1/solve", `{"model":"star:n=3","values":3,"k":2}`)
	if st != http.StatusOK {
		t.Errorf("post-error request status %d, want 200", st)
	}
}

func TestServeOverloadSheds(t *testing.T) {
	// Every admitted request sleeps 300ms while holding its admission slot;
	// with MaxConcurrent=1 a concurrent burst must shed with 503.
	faultinject.Enable(1, faultinject.Rule{
		Point:  faultinject.PointServeRequest,
		Action: faultinject.ActionDelay,
		Every:  1,
		Delay:  300 * time.Millisecond,
	})
	defer faultinject.Disable()
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	const burst = 6
	statuses := make([]int, burst)
	var wg sync.WaitGroup
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
				strings.NewReader(`{"model":"star:n=3","values":3,"k":2}`))
			if err != nil {
				statuses[i] = -1
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for _, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Errorf("unexpected status %d in burst", st)
		}
	}
	if ok == 0 || shed == 0 {
		t.Errorf("burst statuses %v: want both 200s and 503s", statuses)
	}
	if s.Stats().Overloaded == 0 {
		t.Error("Overloaded counter did not move")
	}
}

func TestServeSingleflightCoalesces(t *testing.T) {
	// Identical concurrent queries coalesce behind one computation: each
	// request sleeps 100ms at the fault hook, so the whole burst reaches the
	// singleflight together while the leader's solve is still running.
	faultinject.Enable(1, faultinject.Rule{
		Point:  faultinject.PointServeRequest,
		Action: faultinject.ActionDelay,
		Every:  1,
		Delay:  100 * time.Millisecond,
	})
	defer faultinject.Disable()
	s, ts := newTestServer(t, Config{MaxConcurrent: 16})
	const burst = 6
	bodies := make([][]byte, burst)
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, body := post(t, ts, "/v1/solve", `{"model":"star:n=4","values":4,"k":3}`)
			if st == http.StatusOK {
				bodies[i] = body
			}
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if b == nil {
			t.Fatalf("request %d failed", i)
		}
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("request %d body differs:\n%s\n%s", i, b, bodies[0])
		}
	}
	t.Logf("shared %d of %d requests", s.Stats().Shared, burst)
}

func TestServeCorruptSnapshotWarmBoot(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	path := filepath.Join(t.TempDir(), "serve.snap")
	if err := os.WriteFile(path, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{SnapshotPath: path, Logf: logf})
	s.WarmBoot() // must neither panic nor fail startup
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "starting cold") {
		t.Errorf("corrupt snapshot boot did not log a cold start: %q", joined)
	}
	// A checkpoint rewrites the file; the next boot is warm.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.WarmBoot()
	mu.Lock()
	joined = strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "warm boot") {
		t.Errorf("rewritten snapshot did not warm-boot: %q", joined)
	}
	if s.Stats().Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", s.Stats().Checkpoints)
	}
}

func TestServeHealthAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !health.OK {
		t.Errorf("healthz = %d ok=%v", resp.StatusCode, health.OK)
	}

	post(t, ts, "/v1/solve", `{"model":"star:n=3","values":3,"k":2}`)
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests == 0 {
		t.Errorf("statz requests = %d, want > 0", stats.Requests)
	}
	if got := s.Stats().Requests; got != stats.Requests {
		t.Errorf("Stats() = %d requests, statz reported %d", got, stats.Requests)
	}
}

func TestServeGracefulDrain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.snap")
	s := New(Config{SnapshotPath: path, CheckpointEvery: time.Hour, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, "127.0.0.1:0", 2*time.Second) }()

	var addr string
	for i := 0; i < 200; i++ {
		if addr = s.Addr(); addr != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server never bound")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain")
	}
	// The final checkpoint must have been written.
	if _, err := os.Stat(path); err != nil {
		t.Errorf("final snapshot missing: %v", err)
	}
}

// TestServeChaosNoLeaks runs a mixed fault workload — panics, errors,
// delays, expired deadlines — and asserts the goroutine count settles back:
// detached computations, flight waiters and checkpointers all terminate.
func TestServeChaosNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		faultinject.Enable(42,
			faultinject.Rule{Point: faultinject.PointServeRequest, Action: faultinject.ActionPanic, Nth: 2, Every: 5},
			faultinject.Rule{Point: faultinject.PointServeRequest, Action: faultinject.ActionError, Nth: 4, Every: 5},
		)
		defer faultinject.Disable()
		s, ts := newTestServer(t, Config{MaxConcurrent: 4, MaxTimeout: 2 * time.Second})
		var wg sync.WaitGroup
		reqs := []struct{ path, body string }{
			{"/v1/solve", `{"model":"star:n=3","values":3,"k":2}`},
			{"/v1/solve", `{"model":"star:n=4","values":4,"k":3,"timeout_ms":1}`},
			{"/v1/betti", `{"model":"star:n=3","values":2,"max_dim":2}`},
			{"/v1/solve", `{"model":"star:n=4","values":4,"k":3,"budget":10}`},
			{"/v1/bounds", `{"model":"star:n=4","rounds":1}`},
		}
		for round := 0; round < 4; round++ {
			for _, rq := range reqs {
				wg.Add(1)
				go func(path, body string) {
					defer wg.Done()
					resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
					if err == nil {
						resp.Body.Close()
						switch resp.StatusCode {
						case http.StatusOK, http.StatusInternalServerError,
							http.StatusServiceUnavailable, http.StatusGatewayTimeout,
							http.StatusUnprocessableEntity:
						default:
							t.Errorf("%s: unexpected status %d", path, resp.StatusCode)
						}
					}
				}(rq.path, rq.body)
			}
			wg.Wait()
		}
		if s.Stats().Panics == 0 {
			t.Error("chaos run injected no panics — schedule mismatch?")
		}
	}()
	// Detached computations from the 504s are bounded by MaxTimeout=2s;
	// give the runtime until ~4s to settle back to the baseline.
	deadline := time.Now().Add(4 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after chaos", before, now)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
