package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ksettop/internal/dist"
	"ksettop/internal/model"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, []byte(body.String())
}

// /readyz is readiness, distinct from /healthz liveness: before warm boot
// the process is alive but not ready.
func TestServeReadyzWarmBootGate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if st, _ := get(t, ts, "/healthz"); st != http.StatusOK {
		t.Fatalf("healthz before boot: %d", st)
	}
	st, body := get(t, ts, "/readyz")
	if st != http.StatusServiceUnavailable {
		t.Fatalf("readyz before warm boot: %d (%s)", st, body)
	}
	s.WarmBoot()
	if st, body := get(t, ts, "/readyz"); st != http.StatusOK {
		t.Fatalf("readyz after warm boot: %d (%s)", st, body)
	}
}

// In coordinator mode /readyz additionally requires a live worker, and
// /statz carries the dist counters.
func TestServeCoordinatorReadyzAndStatz(t *testing.T) {
	w := dist.NewWorker(dist.WorkerConfig{Logf: func(string, ...any) {}})
	wts := httptest.NewServer(w.Handler())
	t.Cleanup(wts.Close)
	addr := strings.TrimPrefix(wts.URL, "http://")

	coord := dist.NewCoordinator(dist.CoordConfig{
		Workers:  []string{addr},
		MinRanks: 1,
		Logf:     func(string, ...any) {},
	})
	s, ts := newTestServer(t, Config{Coordinator: coord})
	s.WarmBoot()

	if st, body := get(t, ts, "/readyz"); st != http.StatusOK {
		t.Fatalf("readyz with live worker: %d (%s)", st, body)
	}

	// Route a count through the fleet and check it lands in /statz.
	model.SetDistributor(coord)
	defer model.SetDistributor(nil)
	st, body := post(t, ts, "/v1/count", `{"model":"stars:n=4,s=2"}`)
	if st != http.StatusOK {
		t.Fatalf("/v1/count: %d (%s)", st, body)
	}
	var cr CountResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Count <= 0 {
		t.Fatalf("count = %d", cr.Count)
	}

	st, body = get(t, ts, "/statz")
	if st != http.StatusOK {
		t.Fatalf("/statz: %d", st)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Dist == nil {
		t.Fatal("/statz missing dist counters in coordinator mode")
	}
	if stats.Dist.Workers != 1 || stats.Dist.Sweeps == 0 || stats.Dist.ShardsCommitted == 0 {
		t.Fatalf("dist counters after a distributed count: %+v", *stats.Dist)
	}

	// Kill the worker: the failure detector must flip /readyz to 503 while
	// /healthz stays 200 — the distinction load balancers route on.
	wts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	coord.Start(ctx)
	waitReadyz(t, ts, http.StatusServiceUnavailable)
	if st, _ := get(t, ts, "/healthz"); st != http.StatusOK {
		t.Fatalf("healthz must stay alive with a dead fleet: %d", st)
	}
}

// A dead fleet must not break /v1/count: the distributor declines and the
// local engine answers.
func TestServeCountFallsBackWithoutFleet(t *testing.T) {
	coord := dist.NewCoordinator(dist.CoordConfig{
		Workers:     []string{"127.0.0.1:1"}, // nobody home
		MinRanks:    1,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    5 * time.Millisecond,
		Logf:        func(string, ...any) {},
	})
	model.SetDistributor(coord)
	defer model.SetDistributor(nil)
	_, ts := newTestServer(t, Config{Coordinator: coord})
	st, body := post(t, ts, "/v1/count", `{"model":"adj:0>1 2 3;1>2;2>3;3>"}`)
	if st != http.StatusOK {
		t.Fatalf("/v1/count without fleet: %d (%s)", st, body)
	}
	var cr CountResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Count <= 0 {
		t.Fatalf("fallback count = %d", cr.Count)
	}
}

func waitReadyz(t *testing.T, ts *httptest.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := get(t, ts, "/readyz"); st == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("readyz never reached %d", want)
}
