// Package serve is the long-running bound-query service: an HTTP+JSON
// front-end over the repository's solver, homology and bound engines,
// hardened for unattended operation.
//
// Every request is (1) admission-controlled by a concurrency semaphore —
// overload sheds with 503 instead of queueing unboundedly, (2) bounded by a
// per-request deadline that cancels the engine sweep cooperatively through
// the PR-6 context backbone, (3) isolated from worker panics (a panic
// becomes a 500 and a counter bump, never a crash), and (4) deduplicated
// against identical in-flight computations by a canonical-key singleflight,
// so a thundering herd of equal queries costs one solve. Responses for
// completed computations are deterministic: the engines' parallelism
// contract makes repeated queries byte-identical.
//
// The service warm-boots from a memo snapshot when configured (tolerating
// corrupt or truncated files — checksummed since PR 6 — by warning and
// starting cold), checkpoints the caches in the background, and drains
// gracefully on shutdown, writing a final snapshot.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"ksettop/internal/cli"
	"ksettop/internal/core"
	"ksettop/internal/dist"
	"ksettop/internal/faultinject"
	"ksettop/internal/memo"
	"ksettop/internal/model"
	"ksettop/internal/obs"
	"ksettop/internal/protocol"
	"ksettop/internal/topology"
)

// Config tunes one Server. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent caps requests computing at once; excess load is shed
	// with 503 at admission. Default 8.
	MaxConcurrent int
	// DefaultTimeout bounds a request that names no deadline. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any request deadline and bounds the detached
	// computation behind the singleflight. Default 2m.
	MaxTimeout time.Duration
	// MaxSolverBudget caps the per-request solver node budget; larger asks
	// are rejected at admission with 422. Default 50M (the stock budget).
	MaxSolverBudget int
	// SnapshotPath, when set, warm-boots the memo caches at startup and
	// receives background checkpoints plus a final save on drain.
	SnapshotPath string
	// CheckpointEvery is the background checkpoint period. Default 1m;
	// checkpointing is off when SnapshotPath is empty.
	CheckpointEvery time.Duration
	// Coordinator, when set, puts the service in coordinator mode: heavy
	// closure counts distribute across its worker fleet, its counters merge
	// into /statz and /metrics, and /readyz additionally requires ≥ 1 live
	// worker.
	Coordinator *dist.Coordinator
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// flag on ksetserved).
	EnablePprof bool
	// Log receives operational log lines. Default obs.DefaultLogger().
	Log *obs.Logger
	// Logf, when set and Log is nil, receives every log line pre-formatted
	// (the pre-obs hook; tests silence logs through it).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxSolverBudget <= 0 {
		c.MaxSolverBudget = 50_000_000
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = time.Minute
	}
	if c.Log == nil {
		if c.Logf != nil {
			c.Log = obs.NewFuncLogger(c.Logf)
		} else {
			c.Log = obs.DefaultLogger()
		}
	}
	return c
}

// Stats is a point-in-time snapshot of the service counters, exposed at
// /statz.
type Stats struct {
	Requests      uint64 `json:"requests"`       // API requests accepted for decoding
	InFlight      int64  `json:"in_flight"`      // currently computing
	Shared        uint64 `json:"shared"`         // served by joining an in-flight computation
	Panics        uint64 `json:"panics"`         // worker/handler panics converted to 500s
	Overloaded    uint64 `json:"overloaded"`     // shed at admission (503)
	BudgetRejects uint64 `json:"budget_rejects"` // solver/enumeration budget rejections (422)
	Timeouts      uint64 `json:"timeouts"`       // request deadlines expired (504)
	Checkpoints   uint64 `json:"checkpoints"`    // background snapshot saves
	UptimeSeconds int64  `json:"uptime_seconds"`
	// Dist carries the coordinator's ring/lease/retry/hedge counters when
	// the service runs in coordinator mode.
	Dist *dist.CoordStats `json:"dist,omitempty"`
}

// Server is one bound-query service instance.
type Server struct {
	cfg   Config
	log   *obs.Logger
	mux   *http.ServeMux
	sem   chan struct{}
	fly   memo.Flight[any]
	start time.Time

	boundAddr atomic.Pointer[string]
	warmed    atomic.Bool

	// Counters live on a per-instance registry (tests spin many servers in
	// one process), so /statz and /metrics read the same storage and a
	// snapshot is one consistent pass under the registry lock.
	reg           *obs.Registry
	requests      *obs.Counter
	inFlight      *obs.Gauge
	shared        *obs.Counter
	panics        *obs.Counter
	overloaded    *obs.Counter
	budgetRejects *obs.Counter
	timeouts      *obs.Counter
	checkpoints   *obs.Counter
	requestSecs   *obs.Histogram
}

// New builds a Server from cfg (zero value: all defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:   cfg,
		log:   cfg.Log,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxConcurrent),
		start: time.Now(),
		reg:   reg,
		requests: reg.Counter("kset_serve_requests_total",
			"API requests accepted for decoding"),
		inFlight: reg.Gauge("kset_serve_in_flight", "requests computing now"),
		shared: reg.Counter("kset_serve_shared_total",
			"requests served by joining an in-flight computation"),
		panics: reg.Counter("kset_serve_panics_total",
			"worker/handler panics converted to 500s"),
		overloaded: reg.Counter("kset_serve_overloaded_total",
			"requests shed at admission (503)"),
		budgetRejects: reg.Counter("kset_serve_budget_rejects_total",
			"solver/enumeration budget rejections (422)"),
		timeouts: reg.Counter("kset_serve_timeouts_total",
			"request deadlines expired (504)"),
		checkpoints: reg.Counter("kset_serve_checkpoints_total",
			"background snapshot saves"),
		requestSecs: reg.Histogram("kset_serve_request_seconds",
			"admitted request wall time", obs.LatencyBuckets()),
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/solve", s.api(s.handleSolve))
	s.mux.HandleFunc("/v1/betti", s.api(s.handleBetti))
	s.mux.HandleFunc("/v1/bounds", s.api(s.handleBounds))
	s.mux.HandleFunc("/v1/count", s.api(s.handleCount))
	if cfg.EnablePprof {
		obs.RegisterPprof(s.mux)
	}
	return s
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// MetricsRegistry exposes the server's per-instance metric registry.
func (s *Server) MetricsRegistry() *obs.Registry { return s.reg }

// Stats returns the current counters, snapshotted through the registry in
// one pass so /statz never tears a set of related counters.
func (s *Server) Stats() Stats {
	var ds *dist.CoordStats
	if s.cfg.Coordinator != nil {
		snap := s.cfg.Coordinator.Stats()
		ds = &snap
	}
	v := s.reg.Values()
	u := func(name string) uint64 { return uint64(v[name]) }
	return Stats{
		Dist:          ds,
		Requests:      u("kset_serve_requests_total"),
		InFlight:      int64(v["kset_serve_in_flight"]),
		Shared:        u("kset_serve_shared_total"),
		Panics:        u("kset_serve_panics_total"),
		Overloaded:    u("kset_serve_overloaded_total"),
		BudgetRejects: u("kset_serve_budget_rejects_total"),
		Timeouts:      u("kset_serve_timeouts_total"),
		Checkpoints:   u("kset_serve_checkpoints_total"),
		UptimeSeconds: int64(time.Since(s.start) / time.Second),
	}
}

// handleMetrics serves the Prometheus text exposition: engine-wide metrics
// (solver, homology, par, memo) plus this server's, plus the coordinator's
// when the service runs in coordinator mode.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	regs := []*obs.Registry{obs.DefaultRegistry(), s.reg}
	if s.cfg.Coordinator != nil {
		regs = append(regs, s.cfg.Coordinator.MetricsRegistry())
	}
	obs.WritePrometheusTo(w, regs...)
}

// apiError is the JSON error envelope. Kind is machine-readable:
// bad_request, overloaded, budget, deadline, internal.
type apiError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Budget  int    `json:"budget,omitempty"` // budget rejections: the configured budget
	Nodes   int    `json:"nodes,omitempty"`  // budget rejections: deterministic nodes charged
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, e apiError) {
	writeJSON(w, status, map[string]apiError{"error": e})
}

// api wraps an endpoint with the hardening chain: panic isolation,
// fault-injection hook, admission control — plus the request span: the
// admitted request becomes a "serve.request" span, adopting an inbound
// X-Kset-Trace parent when a tracing client sent one, so engine-phase spans
// (which read the context through compute's detached WithoutCancel chain)
// parent into it.
func (s *Server) api(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				s.log.Errorf("serve: recovered handler panic: %v\n%s", rec, debug.Stack())
				writeError(w, http.StatusInternalServerError,
					apiError{Kind: "internal", Message: fmt.Sprintf("panic: %v", rec)})
			}
		}()
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, apiError{Kind: "bad_request", Message: "POST only"})
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.overloaded.Inc()
			writeError(w, http.StatusServiceUnavailable, apiError{Kind: "overloaded", Message: "concurrency limit reached"})
			return
		}
		s.requests.Inc()
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		var admitted time.Time
		if obs.Enabled() {
			admitted = time.Now()
			defer func() { s.requestSecs.Observe(time.Since(admitted).Seconds()) }()
		}
		ctx := r.Context()
		if h := r.Header.Get(obs.TraceHeaderName); h != "" {
			ctx, _ = obs.WithRemoteParent(ctx, h, nil)
		}
		ctx, span := obs.StartSpan(ctx, "serve.request")
		span.SetAttr("path", r.URL.Path)
		defer span.End()
		r = r.WithContext(ctx)
		// The fault hook runs while the request holds its admission slot, so
		// an injected delay models a genuinely slow request: concurrent load
		// then sheds with 503 exactly as it would in production.
		if err := faultinject.Hit(faultinject.PointServeRequest); err != nil {
			writeError(w, http.StatusInternalServerError, apiError{Kind: "internal", Message: err.Error()})
			return
		}
		h(w, r)
	}
}

// requestTimeout resolves the effective deadline of a request: the asked-for
// timeout_ms (clamped to MaxTimeout, DefaultTimeout when absent), then the
// deadline-compression fault hook (modeling a client or LB cutting the
// budget short).
func (s *Server) requestTimeout(timeoutMs int) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return faultinject.CompressDeadline(faultinject.PointServeRequest, d)
}

// compute runs fn behind the canonical-key singleflight on a context
// DETACHED from the request: followers share the leader's result, and a
// caller whose deadline expires gets 504 while the computation keeps running
// (bounded by MaxTimeout) for the callers still waiting — a cancelled
// leader must never poison shared work. The per-request deadline still
// cancels the wait, and fn observes cancellation through the detached
// context's own MaxTimeout ceiling.
func (s *Server) compute(w http.ResponseWriter, r *http.Request, timeoutMs int, key string, fn func(ctx context.Context) (any, error)) {
	reqCtx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(timeoutMs))
	defer cancel()

	type outcome struct {
		val    any
		err    error
		shared bool
	}
	ch := make(chan outcome, 1)
	go func() {
		detached, done := context.WithTimeout(context.WithoutCancel(r.Context()), s.cfg.MaxTimeout)
		defer done()
		v, err, shared := s.fly.Do(key, func() (any, error) { return fn(detached) })
		ch <- outcome{v, err, shared}
	}()

	select {
	case <-reqCtx.Done():
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout,
			apiError{Kind: "deadline", Message: context.Cause(reqCtx).Error()})
	case out := <-ch:
		switch {
		case out.err == nil:
			if out.shared {
				s.shared.Inc()
			}
			writeJSON(w, http.StatusOK, out.val)
		case errors.Is(out.err, protocol.ErrBudgetExceeded):
			s.budgetRejects.Inc()
			var be *protocol.BudgetError
			e := apiError{Kind: "budget", Message: out.err.Error()}
			if errors.As(out.err, &be) {
				e.Budget, e.Nodes = be.Budget, be.Nodes
			}
			writeError(w, http.StatusUnprocessableEntity, e)
		case errors.Is(out.err, model.ErrEnumerationBudget):
			s.budgetRejects.Inc()
			writeError(w, http.StatusUnprocessableEntity, apiError{Kind: "budget", Message: out.err.Error()})
		case errors.Is(out.err, context.DeadlineExceeded), errors.Is(out.err, context.Canceled):
			s.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, apiError{Kind: "deadline", Message: out.err.Error()})
		default:
			s.panics.Inc()
			writeError(w, http.StatusInternalServerError, apiError{Kind: "internal", Message: out.err.Error()})
		}
	}
}

// parseModel resolves a request's model spec with the CLI grammar, so the
// service and the command-line tools accept identical specifications.
func parseModel(spec string) (*model.ClosedAbove, error) { return cli.ParseModel(spec) }

// modelKey is the canonical identity of a parsed model: generator-set key,
// not spec string, so "star:n=4" and an adj-list spelling of the same
// generators coalesce in the singleflight.
func modelKey(kind string, m *model.ClosedAbove, params ...int) string {
	gens := m.Generators()
	keys := make([]string, len(gens))
	for i, g := range gens {
		keys[i] = g.Key()
	}
	k := memo.Key(kind, m.N(), keys)
	for _, p := range params {
		k += ":" + strconv.Itoa(p)
	}
	return k
}

// SolveRequest asks whether k-set agreement is solvable in one round over
// the model's generators (impossibility certificates; see protocol package
// soundness notes).
type SolveRequest struct {
	Model     string `json:"model"`                // cli.ParseModel spec
	Values    int    `json:"values"`               // input value count
	K         int    `json:"k"`                    // agreement parameter
	Budget    int    `json:"budget,omitempty"`     // solver node budget (0 = server cap)
	TimeoutMs int    `json:"timeout_ms,omitempty"` // request deadline (0 = server default)
}

// SolveResponse reports the deterministic solver verdict.
type SolveResponse struct {
	Solvable   bool `json:"solvable"`
	Views      int  `json:"views"`
	Executions int  `json:"executions"`
	Nodes      int  `json:"nodes"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	m, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	if req.Values < 1 || req.K < 1 {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: "values and k must be ≥ 1"})
		return
	}
	budget := req.Budget
	if budget <= 0 {
		budget = s.cfg.MaxSolverBudget
	}
	if budget > s.cfg.MaxSolverBudget {
		s.budgetRejects.Inc()
		writeError(w, http.StatusUnprocessableEntity, apiError{
			Kind:    "budget",
			Message: fmt.Sprintf("requested budget %d exceeds server cap %d", budget, s.cfg.MaxSolverBudget),
			Budget:  s.cfg.MaxSolverBudget,
		})
		return
	}
	key := modelKey("serve.solve", m, req.Values, req.K, budget)
	s.compute(w, r, req.TimeoutMs, key, func(ctx context.Context) (any, error) {
		// The adversary picks any graph of the closed-above model, so the
		// sweep runs over the full enumeration, not just the generators —
		// the same contract as core.VerifyLowerBySolver.
		all, err := m.AllGraphsCtx(ctx)
		if err != nil {
			return nil, err
		}
		res, err := protocol.SolveOneRoundCtx(ctx, all, req.Values, req.K, budget)
		if err != nil {
			return nil, err
		}
		return SolveResponse{Solvable: res.Solvable, Views: res.Views, Executions: res.Executions, Nodes: res.Nodes}, nil
	})
}

// BettiRequest asks for the reduced GF(2) Betti numbers of the model's
// one-round protocol complex over Values input values.
type BettiRequest struct {
	Model     string `json:"model"`
	Values    int    `json:"values"`
	MaxDim    int    `json:"max_dim"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// BettiResponse carries β̃_0 … β̃_maxDim.
type BettiResponse struct {
	Betti []int `json:"betti"`
}

func (s *Server) handleBetti(w http.ResponseWriter, r *http.Request) {
	var req BettiRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	m, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	if req.Values < 1 || req.MaxDim < 0 {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: "values must be ≥ 1, max_dim ≥ 0"})
		return
	}
	key := modelKey("serve.betti", m, req.Values, req.MaxDim)
	s.compute(w, r, req.TimeoutMs, key, func(ctx context.Context) (any, error) {
		pc, err := core.ProtocolComplexOneRound(m, req.Values)
		if err != nil {
			return nil, err
		}
		ac, _, err := pc.ToAbstract()
		if err != nil {
			return nil, err
		}
		betti, err := topology.ReducedBettiNumbersCtx(ctx, ac, req.MaxDim)
		if err != nil {
			return nil, err
		}
		return BettiResponse{Betti: betti}, nil
	})
}

// BoundsRequest asks for the paper's bound report over rounds 1..Rounds.
type BoundsRequest struct {
	Model     string `json:"model"`
	Rounds    int    `json:"rounds"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// BoundRow is the best bound pair at one round count.
type BoundRow struct {
	Rounds       int    `json:"rounds"`
	UpperK       int    `json:"upper_k"`
	UpperTheorem string `json:"upper_theorem"`
	LowerK       int    `json:"lower_k"`
	LowerTheorem string `json:"lower_theorem"`
	Tight        bool   `json:"tight"`
}

// BoundsResponse carries the per-round best bounds.
type BoundsResponse struct {
	N      int        `json:"n"`
	Best   []BoundRow `json:"best"`
	Report string     `json:"report"` // the CLI's rendered report
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	var req BoundsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	m, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	if req.Rounds < 1 {
		req.Rounds = 1
	}
	key := modelKey("serve.bounds", m, req.Rounds)
	s.compute(w, r, req.TimeoutMs, key, func(ctx context.Context) (any, error) {
		// Analyze has no ctx-threaded variant (its sweeps are the bounded
		// combinatorial numbers, not the exponential engines), so honor an
		// already-dead context here and let MaxTimeout bound the rest.
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		a, err := core.Analyze(m, req.Rounds)
		if err != nil {
			return nil, err
		}
		resp := BoundsResponse{N: m.N(), Report: a.Render()}
		for _, b := range a.Best {
			resp.Best = append(resp.Best, BoundRow{
				Rounds:       b.Rounds,
				UpperK:       b.Upper.K,
				UpperTheorem: b.Upper.Theorem,
				LowerK:       b.Lower.K,
				LowerTheorem: b.Lower.Theorem,
				Tight:        b.Tight,
			})
		}
		return resp, nil
	})
}

// CountRequest asks for the closure-enumeration size of a model — the sweep
// the distributed tier shards across workers when the service runs in
// coordinator mode (the count transparently falls back to the local engine
// when the fleet is dead or the rank space is tiny).
type CountRequest struct {
	Model     string `json:"model"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
}

// CountResponse carries the closure element count.
type CountResponse struct {
	Count int64 `json:"count"`
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req CountRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	m, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Kind: "bad_request", Message: err.Error()})
		return
	}
	key := modelKey("serve.count", m)
	s.compute(w, r, req.TimeoutMs, key, func(ctx context.Context) (any, error) {
		// GraphCountCtx consults the installed model.Distributor first, so in
		// coordinator mode this is the distributed sweep.
		count, err := m.GraphCountCtx(ctx)
		if err != nil {
			return nil, err
		}
		return CountResponse{Count: int64(count)}, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "uptime_seconds": int64(time.Since(s.start) / time.Second)})
}

// handleReadyz is the readiness probe, distinct from /healthz liveness: the
// process can be alive (healthz 200) but not yet able to serve well —
// warm boot still loading, or coordinator mode with a dead worker fleet.
// Load balancers should gate traffic on /readyz and restarts on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reasons := []string{}
	if !s.warmed.Load() {
		reasons = append(reasons, "warm boot in progress")
	}
	live := -1
	if s.cfg.Coordinator != nil {
		live = s.cfg.Coordinator.LiveWorkers()
		if live == 0 {
			reasons = append(reasons, "coordinator has no live workers")
		}
	}
	body := map[string]any{"ready": len(reasons) == 0}
	if live >= 0 {
		body["live_workers"] = live
	}
	if len(reasons) > 0 {
		body["reasons"] = reasons
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// WarmBoot loads the configured memo snapshot. Corrupt or truncated files
// (detected by the PR-6 checksums) warn and start cold — a torn write from
// a crashed checkpoint must never prevent startup.
func (s *Server) WarmBoot() {
	// Whatever the outcome — warm, cold, or no snapshot configured — the boot
	// phase is over afterwards, which is what /readyz reports.
	defer s.warmed.Store(true)
	if s.cfg.SnapshotPath == "" {
		return
	}
	if _, err := os.Stat(s.cfg.SnapshotPath); os.IsNotExist(err) {
		return
	}
	if err := memo.LoadSnapshot(s.cfg.SnapshotPath); err != nil {
		if errors.Is(err, memo.ErrCorruptSnapshot) {
			s.log.Warnf("serve: %v; starting cold", err)
			return
		}
		s.log.Warnf("serve: snapshot load failed: %v; starting cold", err)
		return
	}
	s.log.Infof("serve: warm boot from %s", s.cfg.SnapshotPath)
}

// Checkpoint saves the memo caches to the configured snapshot path.
func (s *Server) Checkpoint() error {
	if s.cfg.SnapshotPath == "" || !memo.Enabled() {
		return nil
	}
	if err := memo.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.checkpoints.Inc()
	return nil
}

// Addr returns the bound listen address once Run has opened its listener
// (empty before that). Useful with addr ":0".
func (s *Server) Addr() string {
	if v := s.boundAddr.Load(); v != nil {
		return *v
	}
	return ""
}

// Run serves on addr until ctx is cancelled, then drains gracefully:
// in-flight requests get drainGrace to finish, and a final checkpoint is
// written. It returns nil on a clean drain.
func (s *Server) Run(ctx context.Context, addr string, drainGrace time.Duration) error {
	s.WarmBoot()
	if s.cfg.Coordinator != nil {
		s.cfg.Coordinator.Start(ctx)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	s.boundAddr.Store(&bound)
	s.log.Infof("serve: listening on %s", bound)
	srv := &http.Server{Handler: s.Handler()}

	checkpointDone := make(chan struct{})
	go func() {
		defer close(checkpointDone)
		if s.cfg.SnapshotPath == "" {
			return
		}
		t := time.NewTicker(s.cfg.CheckpointEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if err := s.Checkpoint(); err != nil {
					s.log.Warnf("serve: checkpoint failed: %v", err)
				}
			}
		}
	}()

	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.log.Infof("serve: draining (grace %s)", drainGrace)
		sctx, cancel := context.WithTimeout(context.Background(), drainGrace)
		defer cancel()
		shutdownErr <- srv.Shutdown(sctx)
	}()

	err = srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	err = <-shutdownErr
	<-checkpointDone
	if cerr := s.Checkpoint(); cerr != nil {
		s.log.Warnf("serve: final checkpoint failed: %v", cerr)
	}
	return err
}
