package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"ksettop/internal/dist"
	"ksettop/internal/model"
	"ksettop/internal/obs"
)

// startTestWorker launches one in-process sweep worker and returns its
// address.
func startTestWorker(t *testing.T) string {
	t.Helper()
	w := dist.NewWorker(dist.WorkerConfig{Logf: func(string, ...any) {}})
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// promLineRe is the Prometheus text-exposition grammar accepted by the
// /metrics endpoints: HELP/TYPE comments and bare or {le="..."}-labelled
// samples with a float value.
var promLineRe = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? (NaN|[0-9eE+.-]+))$`)

// /metrics serves the Prometheus text exposition: every line must parse,
// and the output must cover the server's own counters, the engine-wide
// registry, and the request-latency histogram series.
func TestServeMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if st, body := post(t, ts, "/v1/bounds", `{"model":"star:n=4","rounds":1}`); st != http.StatusOK {
		t.Fatalf("/v1/bounds: %d (%s)", st, body)
	}
	st, body := get(t, ts, "/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if !promLineRe.MatchString(line) {
			t.Fatalf("/metrics line fails Prometheus text grammar: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE kset_serve_requests_total counter",
		"# TYPE kset_par_sweeps_total counter",
		"kset_serve_requests_total 1",
		`kset_serve_request_seconds_bucket{le="+Inf"}`,
		"kset_serve_request_seconds_count",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// In coordinator mode /metrics additionally merges the coordinator's
// per-instance registry.
func TestServeMetricsIncludesCoordinator(t *testing.T) {
	coord := dist.NewCoordinator(dist.CoordConfig{
		Workers: []string{"127.0.0.1:1"},
		Logf:    func(string, ...any) {},
	})
	_, ts := newTestServer(t, Config{Coordinator: coord})
	st, body := get(t, ts, "/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics: %d", st)
	}
	if !strings.Contains(string(body), "# TYPE kset_dist_coord_sweeps_total counter") {
		t.Fatalf("/metrics missing coordinator registry:\n%s", body)
	}
}

// pprof is opt-in: absent by default, mounted with EnablePprof.
func TestServePprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if st, _ := get(t, off, "/debug/pprof/cmdline"); st == http.StatusOK {
		t.Fatal("pprof reachable without EnablePprof")
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	if st, body := get(t, on, "/debug/pprof/cmdline"); st != http.StatusOK {
		t.Fatalf("pprof with EnablePprof: %d (%s)", st, body)
	}
}

// /statz keeps its pre-registry JSON shape: exactly the documented keys
// (dist only in coordinator mode), now read through one registry snapshot.
func TestServeStatzShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if st, body := post(t, ts, "/v1/bounds", `{"model":"star:n=3","rounds":1}`); st != http.StatusOK {
		t.Fatalf("/v1/bounds: %d (%s)", st, body)
	}
	st, body := get(t, ts, "/statz")
	if st != http.StatusOK {
		t.Fatalf("/statz: %d", st)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	want := []string{"requests", "in_flight", "shared", "panics", "overloaded",
		"budget_rejects", "timeouts", "checkpoints", "uptime_seconds"}
	for _, k := range want {
		if _, ok := raw[k]; !ok {
			t.Fatalf("/statz missing key %q: %s", k, body)
		}
	}
	if len(raw) != len(want) {
		t.Fatalf("/statz has %d keys, want %d (dist must be omitted outside coordinator mode): %s",
			len(raw), len(want), body)
	}
	var stats Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 {
		t.Fatalf("requests = %d after one request", stats.Requests)
	}
}

// The acceptance end-to-end: a distributed count through the service in
// coordinator mode over two in-process workers renders as ONE trace tree —
// serve.request at the root, the coordinator's dist.sweep under it, and the
// workers' dist.exec spans (imported over the X-Kset-Trace hop) inside.
func TestServeDistributedTraceTree(t *testing.T) {
	obs.ResetTrace(0)
	obs.SetTracingEnabled(true)
	t.Cleanup(func() {
		obs.SetTracingEnabled(false)
		obs.ResetTrace(0)
	})

	var addrs []string
	for i := 0; i < 2; i++ {
		addrs = append(addrs, startTestWorker(t))
	}
	coord := dist.NewCoordinator(dist.CoordConfig{
		Workers:        addrs,
		Shards:         8,
		MinRanks:       1,
		DisableHedging: true,
		LeaseTTL:       2 * time.Second,
		Logf:           func(string, ...any) {},
	})
	model.SetDistributor(coord)
	defer model.SetDistributor(nil)
	_, ts := newTestServer(t, Config{Coordinator: coord})

	if st, body := post(t, ts, "/v1/count", `{"model":"star:n=5"}`); st != http.StatusOK {
		t.Fatalf("/v1/count: %d (%s)", st, body)
	}

	spans := obs.TraceSpans()
	var root, sweep *obs.SpanData
	execs := 0
	for i := range spans {
		switch spans[i].Name {
		case "serve.request":
			root = &spans[i]
		case "dist.sweep":
			sweep = &spans[i]
		case "dist.exec":
			execs++
		}
	}
	if root == nil || sweep == nil {
		t.Fatalf("trace missing serve.request/dist.sweep (got %d spans)", len(spans))
	}
	if sweep.Parent != root.SpanID {
		t.Fatalf("dist.sweep parent %016x, want the serve.request span %016x", sweep.Parent, root.SpanID)
	}
	if execs == 0 {
		t.Fatal("no worker dist.exec spans in the tree")
	}
	for _, sd := range spans {
		if sd.TraceID != root.TraceID {
			t.Fatalf("span %s trace %016x, want one tree under %016x", sd.Name, sd.TraceID, root.TraceID)
		}
	}
}
