package homology

import (
	"testing"

	"ksettop/internal/par"
)

// facetComplex is the minimal Complex implementation for tests.
type facetComplex [][]int

func (c facetComplex) Facets() [][]int { return c }

func betti(t *testing.T, facets [][]int, maxDim int) []int {
	t.Helper()
	b, err := ReducedBetti(facetComplex(facets), maxDim)
	if err != nil {
		t.Fatalf("ReducedBetti: %v", err)
	}
	return b
}

func TestReducedBettiClassicSpaces(t *testing.T) {
	tests := []struct {
		name   string
		facets [][]int
		want   []int
	}{
		{"point", [][]int{{0}}, []int{0, 0}},
		{"two points", [][]int{{0}, {1}}, []int{1, 0}},
		{"segment", [][]int{{0, 1}}, []int{0, 0}},
		{"circle", [][]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1}},
		{"disk", [][]int{{0, 1, 2}}, []int{0, 0}},
		{"sphere", [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}, []int{0, 0, 1}},
		{"wedge of two circles", [][]int{
			{0, 1}, {1, 2}, {0, 2},
			{2, 3}, {3, 4}, {2, 4},
		}, []int{0, 2}},
		{"RP² over GF(2)", [][]int{
			{0, 1, 4}, {0, 1, 5}, {0, 2, 3}, {0, 2, 5}, {0, 3, 4},
			{1, 2, 3}, {1, 2, 4}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5},
		}, []int{0, 1, 1}},
		{"3-sphere", [][]int{
			{0, 1, 2, 3}, {0, 1, 2, 4}, {0, 1, 3, 4}, {0, 2, 3, 4}, {1, 2, 3, 4},
		}, []int{0, 0, 0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := betti(t, tt.facets, len(tt.want)-1)
			for q := range tt.want {
				if got[q] != tt.want[q] {
					t.Errorf("β̃_%d = %d, want %d (all %v)", q, got[q], tt.want[q], got)
				}
			}
		})
	}
}

func TestReducedBettiErrors(t *testing.T) {
	if _, err := ReducedBetti(facetComplex(nil), 0); err == nil {
		t.Error("empty complex should be rejected")
	}
	if _, err := ReducedBetti(facetComplex{{0}}, -1); err == nil {
		t.Error("negative dimension should be rejected")
	}
}

func TestChainComplexLevels(t *testing.T) {
	// Full 2-sphere boundary: 4 vertices, 6 edges, 4 triangles.
	cc, err := NewChainComplex(facetComplex{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for dim, want := range []int{4, 6, 4, 0} {
		if got := cc.SimplexCount(dim); got != want {
			t.Errorf("dim %d: %d simplexes, want %d", dim, got, want)
		}
	}
	if got := cc.TotalSimplexes(); got != 14 {
		t.Errorf("TotalSimplexes = %d, want 14", got)
	}
	m := cc.Boundary(2)
	if m.NumRows() != 6 || m.NumCols() != 4 {
		t.Errorf("∂_2 is %dx%d, want 6x4", m.NumRows(), m.NumCols())
	}
	if got := m.Rank(); got != 3 {
		t.Errorf("rank ∂_2 = %d, want 3", got)
	}
	if got := cc.Boundary(1).Rank(); got != 3 {
		t.Errorf("rank ∂_1 = %d, want 3", got)
	}
}

// pseudosphereFacets builds the facets of φ(Π; V_1,…,V_n) with |V_i| =
// views[i]: vertex id for (color c, view v) is offset(c)+v, and the facets
// are every one-view-per-color choice. The complex is the join of n discrete
// point sets, so β̃_{n-1} = Π(views[i]−1) and everything below vanishes.
func pseudosphereFacets(views []int) [][]int {
	offsets := make([]int, len(views)+1)
	for i, v := range views {
		offsets[i+1] = offsets[i] + v
	}
	choice := make([]int, len(views))
	var facets [][]int
	for {
		f := make([]int, len(views))
		for c := range views {
			f[c] = offsets[c] + choice[c]
		}
		facets = append(facets, f)
		i := len(views) - 1
		for i >= 0 {
			choice[i]++
			if choice[i] < views[i] {
				break
			}
			choice[i] = 0
			i--
		}
		if i < 0 {
			return facets
		}
	}
}

func TestPseudosphereConnectivity(t *testing.T) {
	// 5 colors × 3 views: 7-connected is overkill, but β̃_0..β̃_3 = 0 and
	// β̃_4 = 2^5 = 32 pins both the vanishing range and the top class count.
	facets := pseudosphereFacets([]int{3, 3, 3, 3, 3})
	got := betti(t, facets, 4)
	want := []int{0, 0, 0, 0, 32}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("β̃_%d = %d, want %d (all %v)", q, got[q], want[q], got)
		}
	}
}

// TestDeterministicAcrossParallelism pins the sharded reduction's contract
// for both engines: Betti vectors are identical at every worker count,
// including the inline single-shard path, and identical between the hybrid
// and pure-sparse reductions.
func TestDeterministicAcrossParallelism(t *testing.T) {
	defer par.SetParallelism(0)
	// Big enough that par.NumShards fans out (> 4096 columns at dim 4).
	facets := pseudosphereFacets([]int{3, 3, 3, 3, 3, 2, 2})
	var want []int
	for _, workers := range []int{1, 2, 5, 8} {
		par.SetParallelism(workers)
		got := betti(t, facets, 5)
		sparse, err := ReducedBettiSparse(facetComplex(facets), 5)
		if err != nil {
			t.Fatalf("parallelism %d: sparse: %v", workers, err)
		}
		if want == nil {
			want = got
		}
		for q := range want {
			if got[q] != want[q] {
				t.Errorf("parallelism %d: β̃_%d = %d, want %d", workers, q, got[q], want[q])
			}
			if sparse[q] != want[q] {
				t.Errorf("parallelism %d: sparse β̃_%d = %d, want %d", workers, q, sparse[q], want[q])
			}
		}
	}
	// Join of 7 discrete sets: trivial up to dim 5.
	for q, b := range want {
		if b != 0 {
			t.Errorf("β̃_%d = %d, want 0", q, b)
		}
	}
}

// TestPseudospherePastPackedCap is the engine's scale acceptance: a
// pseudosphere whose level table holds more than 64k distinct simplexes and
// whose 9-vertex facets no packing width can represent (the seed fast path
// caps at 8 vertices per simplex). The join structure pins the expected
// homology exactly.
func TestPseudospherePastPackedCap(t *testing.T) {
	views := []int{3, 3, 3, 3, 3, 2, 2, 2, 2}
	facets := pseudosphereFacets(views)
	cc, err := NewChainComplex(facetComplex(facets), 8)
	if err != nil {
		t.Fatal(err)
	}
	if total := cc.TotalSimplexes(); total <= 1<<16 {
		t.Fatalf("instance has %d simplexes, want > 64k", total)
	}
	b, err := cc.ReducedBetti(7)
	if err != nil {
		t.Fatal(err)
	}
	for q, v := range b {
		if v != 0 {
			t.Errorf("β̃_%d = %d, want 0 (pseudosphere is 7-connected)", q, v)
		}
	}
	// β̃_8 = Π(|V_i|−1) = 2^5: check via the rank identity on the top level.
	top := cc.Boundary(8)
	wantTop := 1
	for _, v := range views {
		wantTop *= v - 1
	}
	if got := cc.SimplexCount(8) - top.Rank(); got != wantTop {
		t.Errorf("dim ker ∂_8 = %d, want β̃_8 = %d", got, wantTop)
	}
}

func TestLevelIndex(t *testing.T) {
	cc, err := NewChainComplex(facetComplex{{0, 2, 5}, {1, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	edges := cc.levels[1]
	if got := edges.Count(); got != 4 {
		t.Fatalf("edge count %d, want 4", got)
	}
	if edges.width == 0 {
		t.Fatalf("a 6-vertex complex should build packed levels")
	}
	buf := make([]uint32, 2)
	for i := 0; i < edges.Count(); i++ {
		if got := edges.index(edges.unpack(i, buf)); got != i {
			t.Errorf("index(unpack %d) = %d", i, got)
		}
		if got := edges.indexKey(edges.keys[i]); got != i {
			t.Errorf("indexKey(key %d) = %d", i, got)
		}
	}
	if got := edges.index([]uint32{0, 1}); got != -1 {
		t.Errorf("index of absent edge = %d, want -1", got)
	}
}

// TestLevelIndexArenaForm pins the uint32-arena level form on a vertex
// universe too wide to pack (vertex ids near 2^31 force width 31, and
// 3-vertex simplexes need 93 bits).
func TestLevelIndexArenaForm(t *testing.T) {
	const big = 1 << 30
	cc, err := NewChainComplex(facetComplex{{0, 2, big}, {1, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	edges := cc.levels[1]
	if edges.width != 0 {
		t.Fatalf("wide universe unexpectedly packed (width %d)", edges.width)
	}
	if got := edges.Count(); got != 4 {
		t.Fatalf("edge count %d, want 4", got)
	}
	for i := 0; i < edges.Count(); i++ {
		if got := edges.index(edges.simplex(i)); got != i {
			t.Errorf("index(simplex %d) = %d", i, got)
		}
	}
	if got := edges.index([]uint32{0, 1}); got != -1 {
		t.Errorf("index of absent edge = %d, want -1", got)
	}
	b, err := cc.ReducedBetti(1)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle face {0,2,big} plus the dangling edge {1,2}: contractible.
	for q, v := range b {
		if v != 0 {
			t.Errorf("β̃_%d = %d, want 0", q, v)
		}
	}
}
