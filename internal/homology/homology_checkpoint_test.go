package homology

import (
	"context"
	"fmt"
	"path/filepath"
	"slices"
	"testing"

	"ksettop/internal/checkpoint"
	"ksettop/internal/faultinject"
	"ksettop/internal/par"
)

func reduceWithRunner(r *checkpoint.Runner, c Complex, maxDim int, sparse bool) ([]int, error) {
	ctx := checkpoint.WithRunner(context.Background(), r)
	if sparse {
		return ReducedBettiSparseCtx(ctx, c, maxDim)
	}
	return ReducedBettiCtx(ctx, c, maxDim)
}

// TestHomologyCheckpointKillResumeMatrix: abort a >64k-simplex reduction at
// seeded shard ordinals, resume from the flushed checkpoint across
// parallelism settings and both engines, and require the exact Betti vector
// of an uninterrupted run.
func TestHomologyCheckpointKillResumeMatrix(t *testing.T) {
	facets := facetComplex(pseudosphereFacets([]int{3, 3, 3, 3, 3, 2, 2, 2, 2}))
	const maxDim = 7
	defer par.SetParallelism(0)

	par.SetParallelism(1)
	want, err := ReducedBetti(facets, maxDim)
	if err != nil {
		t.Fatal(err)
	}

	aborted := 0
	for _, sparse := range []bool{false, true} {
		engine := "hybrid"
		if sparse {
			engine = "sparse"
		}
		for _, parallelism := range []int{1, 2, 5, 8} {
			for _, killAt := range []uint64{2, 20} {
				name := fmt.Sprintf("%s-p%d-kill%d", engine, parallelism, killAt)
				par.SetParallelism(parallelism)
				path := filepath.Join(t.TempDir(), "homology.ckpt")

				r1 := checkpoint.NewRunner(path, "job", 0)
				faultinject.Enable(42, faultinject.Rule{
					Point:  faultinject.PointParShard,
					Nth:    killAt,
					Action: faultinject.ActionError,
				})
				_, err := reduceWithRunner(r1, facets, maxDim, sparse)
				faultinject.Disable()
				if err == nil {
					continue // reduction outran the injection ordinal
				}
				aborted++
				if err := r1.SaveNow(); err != nil {
					t.Fatalf("%s: final save: %v", name, err)
				}

				r2 := checkpoint.NewRunner(path, "job", 0)
				if !r2.LoadForResume() {
					t.Fatalf("%s: checkpoint did not load", name)
				}
				got, err := reduceWithRunner(r2, facets, maxDim, sparse)
				if err != nil {
					t.Fatalf("%s: resumed reduction: %v", name, err)
				}
				if !slices.Equal(got, want) {
					t.Fatalf("%s: resumed Betti %v, want %v", name, got, want)
				}
			}
		}
	}
	if aborted == 0 {
		t.Fatal("no trial aborted — the kill matrix exercised nothing")
	}
}

// The 512k-simplex acceptance instance: one seeded kill-and-resume on a
// complex past half a million simplexes.
func TestHomologyCheckpointKillResume512k(t *testing.T) {
	if testing.Short() {
		t.Skip("512k-simplex instance; skipped with -short")
	}
	facets := facetComplex(pseudosphereFacets([]int{3, 3, 3, 3, 3, 3, 3, 3, 2, 2}))
	const maxDim = 8
	cc, err := NewChainComplex(facets, maxDim+1)
	if err != nil {
		t.Fatal(err)
	}
	if total := cc.TotalSimplexes(); total <= 512<<10 {
		t.Fatalf("instance has %d simplexes, want > 512k", total)
	}
	defer par.SetParallelism(0)
	par.SetParallelism(4)
	want, err := ReducedBetti(facets, maxDim)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "homology.ckpt")
	r1 := checkpoint.NewRunner(path, "job", 0)
	faultinject.Enable(1, faultinject.Rule{
		Point:  faultinject.PointParShard,
		Nth:    40, // deep enough that several dimensions have completed
		Action: faultinject.ActionError,
	})
	_, err = reduceWithRunner(r1, facets, maxDim, false)
	faultinject.Disable()
	if err == nil {
		t.Skip("reduction outran the injected kill")
	}
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}
	r2 := checkpoint.NewRunner(path, "job", 0)
	if !r2.LoadForResume() {
		t.Fatal("checkpoint did not load")
	}
	got, err := reduceWithRunner(r2, facets, maxDim, false)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("resumed Betti %v, want %v", got, want)
	}
}

// A checkpoint of a different complex/engine must be ignored (fingerprint
// mismatch), and a rotted section body must be rejected by the decoder —
// both cold-start to the correct Betti vector.
func TestHomologyCheckpointForeignAndCorruptColdStart(t *testing.T) {
	facets := facetComplex(pseudosphereFacets([]int{3, 3, 3, 2, 2}))
	const maxDim = 3
	defer par.SetParallelism(0)
	par.SetParallelism(2)
	want, err := ReducedBetti(facets, maxDim)
	if err != nil {
		t.Fatal(err)
	}

	// Foreign: checkpoint written by the SPARSE engine, resumed by hybrid.
	path := filepath.Join(t.TempDir(), "homology.ckpt")
	r1 := checkpoint.NewRunner(path, "job", 0)
	if _, err := reduceWithRunner(r1, facets, maxDim, true); err != nil {
		t.Fatal(err)
	}
	// The reduction completed, so its retained section is its final state;
	// save it as the stale file a restart would see.
	if err := r1.SaveNow(); err != nil {
		t.Fatal(err)
	}
	r2 := checkpoint.NewRunner(path, "job", 0)
	r2.LoadForResume()
	got, err := reduceWithRunner(r2, facets, maxDim, false)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("hybrid run resumed a sparse checkpoint: %v, want %v", got, want)
	}

	// Corrupt: right fingerprint, rotted body.
	secs, err := checkpoint.Load(path, "job")
	if err != nil {
		t.Fatal(err)
	}
	for i := range secs {
		for j := 8; j < len(secs[i].Payload); j++ {
			secs[i].Payload[j] ^= 0xA5
		}
	}
	if err := checkpoint.Save(path, "job", secs); err != nil {
		t.Fatal(err)
	}
	r3 := checkpoint.NewRunner(path, "job", 0)
	r3.LoadForResume()
	got, err = reduceWithRunner(r3, facets, maxDim, true)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("rotted section skewed the reduction: %v, want %v", got, want)
	}
}
