package homology

import (
	"errors"

	"ksettop/internal/obs"
	"ksettop/internal/par"
)

var (
	obsApparentPairs = obs.DefaultRegistry().Counter("kset_homology_apparent_pairs_total",
		"columns retired by the apparent-pairs preprocessing pass")
	obsColumnsReduced = obs.DefaultRegistry().Counter("kset_homology_columns_reduced_total",
		"columns that survived the apparent pass into block reduction")
	obsPromotions = obs.DefaultRegistry().Counter("kset_homology_promotions_total",
		"sparse columns promoted to dense bit-packed form")
)

// This file is the reduction layer: the implicit CSC boundary matrix, the
// apparent-pairs (discrete-Morse-flavored) preprocessing pass, the
// block-sharded hybrid reduction, and the PR-3 pure-sparse reduction kept
// as the -engine=sparse cross-check.

// Boundary is the GF(2) boundary matrix ∂_q in implicit CSC form: columns
// are the q-simplexes, rows the (q−1)-simplexes, and a column's sorted row
// indices are materialized on demand by binary-searching each face into the
// row level. Nothing is stored per column — the apparent-pairs pass needs
// only one face lookup per column, and for structured complexes most
// columns never materialize at all.
type Boundary struct {
	cols    *Level
	rows    *Level
	numRows int
	numCols int
	stride  int
}

// Boundary builds ∂_q. q must be ≥ 1 and within the table.
func (cc *ChainComplex) Boundary(q int) *Boundary {
	cols, rows := cc.levels[q], cc.levels[q-1]
	return &Boundary{
		cols:    cols,
		rows:    rows,
		numRows: rows.Count(),
		numCols: cols.Count(),
		stride:  cols.size,
	}
}

// NumRows returns the row count ((q−1)-simplexes).
func (m *Boundary) NumRows() int { return m.numRows }

// NumCols returns the column count (q-simplexes).
func (m *Boundary) NumCols() int { return m.numCols }

// Rank computes the GF(2) rank on the hybrid engine.
func (m *Boundary) Rank() int {
	rank, _, err := m.reduceHybrid(&par.Ctl{}, nil)
	repanicReduce(err)
	return rank
}

// repanicReduce mirrors the legacy par entry points for ctx-less reduction
// callers: a recovered worker panic is re-raised on the caller's goroutine;
// any other cause on a private Ctl is impossible outside fault injection and
// is surfaced the same way rather than silently returning a partial rank.
func repanicReduce(err error) {
	if err == nil {
		return
	}
	var pe *par.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
	panic(err)
}

// pollStride is how many sequential columns the apparent scan and the
// reconciliation fold process between cancellation polls.
const pollStride = 4096

// errReduceCancelled marks a reduction stopped without a recorded cause; the
// entry layer replaces it with the binding context's cause.
var errReduceCancelled = errors.New("homology: reduction cancelled")

// reduceCancelled resolves the error of a stopped reduction: the recorded
// cause if any, else the cause-less marker.
func reduceCancelled(ctl *par.Ctl) error {
	if cause := ctl.Cause(); cause != nil {
		return cause
	}
	return errReduceCancelled
}

// columnInto writes the sorted row indices of column j into dst (length
// stride). face is stride-1 scratch (unused on packed levels, whose face
// keys come from bit surgery). The closure property guarantees every face
// is present; a miss would mean the level table is inconsistent.
func (m *Boundary) columnInto(j int, dst, face []uint32) {
	if w := m.cols.width; w > 0 {
		// Face keys strictly decrease as the omitted position grows (the
		// first differing field holds a larger vertex), so filling dst back
		// to front yields ascending row indices with no sort.
		key := m.cols.keys[j]
		for omit := 0; omit < m.stride; omit++ {
			dst[m.stride-1-omit] = uint32(m.rows.indexKey(faceKey(key, w, omit)))
		}
		return
	}
	s := m.cols.simplex(j)
	for omit := 0; omit < m.stride; omit++ {
		copy(face, s[:omit])
		copy(face[omit:], s[omit+1:])
		dst[omit] = uint32(m.rows.index(face))
	}
	sortColumn(dst)
}

// lowRow returns the unreduced pivot row of column j — the index of the
// face omitting the leading vertex. That face is the lexicographically
// largest facet (removing an earlier vertex promotes a larger one into its
// place), so the pivot costs one binary search, not stride of them.
func (m *Boundary) lowRow(j int, face []uint32) uint32 {
	if w := m.cols.width; w > 0 {
		return uint32(m.rows.indexKey(m.cols.keys[j] << uint(w)))
	}
	copy(face, m.cols.simplex(j)[1:])
	return uint32(m.rows.index(face))
}

// sortColumn sorts a short row-index slice ascending (insertion sort: the
// column length is the simplex size, typically < 16).
func sortColumn(a []uint32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// reduceHybrid runs the hybrid-column reduction. cleared[j], when non-nil,
// marks columns known to vanish (the clearing twist); they are skipped. It
// returns the rank and the pivot-row marks of the reduced matrix, which
// feed the next (lower) dimension's clearing.
//
// The pipeline composes three rank-preserving passes:
//
//  1. Apparent pairs: every live column's unreduced low is one face lookup
//     (lowRow), sharded across the pool. A sequential scan in column order
//     then pairs each row with the first column pivoting there. Columns
//     with pairwise-distinct unreduced lows are linearly independent, so
//     the paired columns are installed as pivots with zero reduction work —
//     they never enter the queue, and most never materialize (their faces
//     are recomputed only if a queued column reduces onto them).
//  2. Block phase: the surviving queue is split into contiguous blocks;
//     each block reduces locally (against the frozen apparent table plus a
//     private pivot table) in parallel.
//  3. Reconciliation: block survivors are folded sequentially in block
//     order into a global pivot table seeded with the apparent pairs.
//
// GF(2) rank is unique, so the result is independent of the block count,
// scheduling, and column representation — the same determinism contract as
// the sparse path.
//
// ctl carries the sweep's cancellation state (typically bound to a context
// by the caller): the parallel passes observe it at shard boundaries and
// every pollStride columns, the sequential scans poll it at the same stride,
// and a stopped sweep returns the recorded cause — or errReduceCancelled
// when the stop carried none — with all pooled reducers returned.
func (m *Boundary) reduceHybrid(ctl *par.Ctl, cleared []bool) (int, []bool, error) {
	if m.numCols == 0 || m.numRows == 0 {
		return 0, nil, nil
	}
	promote := promotionThreshold(m.numRows)

	lows := make([]uint32, m.numCols)
	shards := par.NumShards(int64(m.numCols))
	if err := par.ForEachShardNCtx(nil, int64(m.numCols), shards, ctl, func(_ int, from, to int64, c *par.Ctl) {
		face := make([]uint32, m.stride-1)
		for j := from; j < to; j++ {
			if j&(pollStride-1) == 0 && c.Stopped() {
				return
			}
			if cleared != nil && cleared[j] {
				continue
			}
			lows[j] = m.lowRow(int(j), face)
		}
	}); err != nil {
		return 0, nil, err
	}
	if ctl.Stopped() {
		return 0, nil, reduceCancelled(ctl)
	}

	appar := make([]int32, m.numRows)
	for i := range appar {
		appar[i] = -1
	}
	rank := 0
	var queue []int32
	for j := 0; j < m.numCols; j++ {
		if j&(pollStride-1) == 0 && ctl.Stopped() {
			return 0, nil, reduceCancelled(ctl)
		}
		if cleared != nil && cleared[j] {
			continue
		}
		if r := lows[j]; appar[r] < 0 {
			appar[r] = int32(j)
			rank++
		} else {
			queue = append(queue, int32(j))
		}
	}

	obsApparentPairs.Add(uint64(rank))
	obsColumnsReduced.Add(uint64(len(queue)))

	var reducers []*hybridReducer
	if len(queue) > 0 {
		blocks := par.NumShards(int64(len(queue)))
		reducers = make([]*hybridReducer, blocks)
		err := par.ForEachShardNCtx(nil, int64(len(queue)), blocks, ctl, func(shard int, from, to int64, c *par.Ctl) {
			r := getReducer(m, appar, promote)
			reducers[shard] = r
			// One backing arena per block, carved from the reducer's own
			// slab: retired slots get swap-recycled into the spare, which is
			// dropped before any slab rewinds, so the storage is never
			// scribbled over through a stale alias.
			arena := r.u32buf(int(to-from) * m.stride)
			for qi := from; qi < to; qi++ {
				if qi&(pollStride-1) == 0 && c.Stopped() {
					return
				}
				j := int(queue[qi])
				store := arena[:m.stride:m.stride]
				arena = arena[m.stride:]
				m.columnInto(j, store, r.face)
				r.add(column{sparse: store, low: int32(store[m.stride-1])})
			}
		})
		if err == nil && ctl.Stopped() {
			err = reduceCancelled(ctl)
		}
		if err != nil {
			for _, block := range reducers {
				if block != nil {
					putReducer(block)
				}
			}
			return 0, nil, err
		}
	}

	global := getReducer(m, appar, promote)
	polled := 0
	for _, block := range reducers {
		for i := range block.cols {
			if polled++; polled&(pollStride-1) == 0 && ctl.Stopped() {
				break
			}
			global.add(block.cols[i])
		}
	}
	if ctl.Stopped() {
		for _, block := range reducers {
			putReducer(block)
		}
		putReducer(global)
		return 0, nil, reduceCancelled(ctl)
	}
	rank += global.rank

	pivotRows := make([]bool, m.numRows)
	for row, aj := range appar {
		if aj >= 0 {
			pivotRows[row] = true
		}
	}
	for row, p := range global.pivot {
		if p >= 0 {
			pivotRows[row] = true
		}
	}
	for _, block := range reducers {
		putReducer(block)
	}
	putReducer(global)
	return rank, pivotRows, nil
}

// reduceSparse is the PR-3 pure-sparse reduction, kept bit-for-bit in
// spirit as the -engine=sparse cross-check: merge-based column XOR, no
// apparent pass, no dense promotion. Phase 1 reduces contiguous column
// blocks locally in parallel; phase 2 folds the survivors sequentially in
// block order into the global pivot table. Rank over a field is unique, so
// the result matches reduceHybrid on every input.
func (m *Boundary) reduceSparse(ctl *par.Ctl, cleared []bool) (int, []bool, error) {
	if m.numCols == 0 || m.numRows == 0 {
		return 0, nil, nil
	}
	shards := par.NumShards(int64(m.numCols))
	locals := make([][][]uint32, shards)
	if err := par.ForEachShardNCtx(nil, int64(m.numCols), shards, ctl, func(shard int, from, to int64, c *par.Ctl) {
		r := newSparseReducer(m.numRows)
		// One backing arena for the block's unreduced columns; columns that
		// survive untouched keep pointing into it.
		arena := make([]uint32, int(to-from)*m.stride)
		face := make([]uint32, m.stride-1)
		for j := from; j < to; j++ {
			if j&(pollStride-1) == 0 && c.Stopped() {
				return
			}
			if cleared != nil && cleared[j] {
				continue
			}
			col := arena[:m.stride:m.stride]
			arena = arena[m.stride:]
			m.columnInto(int(j), col, face)
			r.add(col)
		}
		locals[shard] = r.cols
	}); err != nil {
		return 0, nil, err
	}
	if ctl.Stopped() {
		return 0, nil, reduceCancelled(ctl)
	}

	global := newSparseReducer(m.numRows)
	polled := 0
	for _, block := range locals {
		for _, col := range block {
			if polled++; polled&(pollStride-1) == 0 && ctl.Stopped() {
				return 0, nil, reduceCancelled(ctl)
			}
			global.add(col)
		}
	}
	pivotRows := make([]bool, m.numRows)
	for row, p := range global.pivot {
		if p >= 0 {
			pivotRows[row] = true
		}
	}
	return global.rank, pivotRows, nil
}

// sparseReducer is one pure-sparse pivot-table column reduction: pivot[r]
// indexes the stored reduced column whose largest row (its "low") is r, or
// -1.
type sparseReducer struct {
	pivot []int32
	cols  [][]uint32
	spare []uint32
	rank  int
}

func newSparseReducer(numRows int) *sparseReducer {
	pivot := make([]int32, numRows)
	for i := range pivot {
		pivot[i] = -1
	}
	return &sparseReducer{pivot: pivot}
}

// add reduces col (taking ownership of its storage) against the pivot table
// and installs it as a new pivot when it does not vanish, reporting whether
// the rank grew.
func (r *sparseReducer) add(col []uint32) bool {
	for len(col) > 0 {
		low := col[len(col)-1]
		p := r.pivot[low]
		if p < 0 {
			r.pivot[low] = int32(len(r.cols))
			r.cols = append(r.cols, col)
			r.rank++
			return true
		}
		col = r.symdiff(col, r.cols[p])
	}
	return false
}

// symdiff returns the GF(2) sum (symmetric difference) of the sorted columns
// a and b, writing into the spare buffer and recycling a's storage as the
// next spare — steady-state reduction allocates only when a column outgrows
// every previous one.
func (r *sparseReducer) symdiff(a, b []uint32) []uint32 {
	out := r.spare[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	r.spare = a[:0]
	return out
}
