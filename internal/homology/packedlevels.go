package homology

import (
	mathbits "math/bits"
	"sort"
	"sync"

	"ksettop/internal/par"
)

// This file is the packed half of the level layer: when every simplex of
// the table fits one uint64 — vertex fields of ceil(log2(maxVert+1)) bits
// each, most significant first, so numeric key order is lexicographic
// vertex order — levels store sorted key arrays instead of uint32 arenas.
// That compresses the subset stream (one word per simplex instead of
// `size` uint32s), turns the level sort into a byte-wise LSD radix over
// machine words, and makes face lookups single-compare binary searches
// whose keys come from bit surgery rather than copied vertex lists. Unlike
// the seed packed path (8/16/32-bit fields, ≤ 8 vertices), the width is
// exact, so e.g. 12-vertex simplexes over 24 vertices still pack (5·12 =
// 60 bits).

// packedWidth returns the per-vertex field width that packs simplexes of
// up to maxSize vertices from a universe with maximum vertex id maxVert
// into one uint64, or 0 when they don't fit.
func packedWidth(maxVert uint32, maxSize int) int {
	w := mathbits.Len32(maxVert) // maxVert fits in w bits
	if w == 0 {
		w = 1
	}
	if maxSize <= 0 || w*maxSize > 64 {
		return 0
	}
	return w
}

// packKey packs the sorted vertex list s into a key with the given width.
func packKey(s []uint32, width int) uint64 {
	var key uint64
	for i, v := range s {
		key |= uint64(v) << uint(64-width*(i+1))
	}
	return key
}

// unpack writes the i-th simplex of a packed level into buf.
func (l *Level) unpack(i int, buf []uint32) []uint32 {
	key := l.keys[i]
	buf = buf[:l.size]
	for p := range buf {
		buf[p] = uint32(key >> uint(64-l.width*(p+1)) & (1<<uint(l.width) - 1))
	}
	return buf
}

// indexKey returns the position of the packed simplex key in the level, or
// -1 when absent.
func (l *Level) indexKey(key uint64) int {
	keys := l.keys
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(keys) || keys[lo] != key {
		return -1
	}
	return lo
}

// faceKey returns the key of the face omitting field `omit`: the fields
// above it are kept and the fields below shift up one slot.
func faceKey(key uint64, width, omit int) uint64 {
	hiShift := uint(64 - width*omit) // ≥ 64 for omit = 0: shifts to zero
	hi := key >> hiShift << hiShift
	lo := key & (1<<uint(64-width*(omit+1)) - 1)
	return hi | lo<<uint(width)
}

// buildPackedLevels is the packed twin of NewChainComplex's facet walk:
// per-shard streaming builders over uint64 keys, folded into sorted level
// unions afterwards.
func buildPackedLevels(facets [][]int, maxDim, width int) []*Level {
	shards := par.NumShards(int64(len(facets)))
	perShard := make([][][]uint64, shards)
	par.ForEachShardN(int64(len(facets)), shards, &par.Ctl{}, func(shard int, from, to int64, _ *par.Ctl) {
		perShard[shard] = buildKeyLevels(facets[from:to], maxDim, width)
	})
	levels := make([]*Level, maxDim+1)
	for d := 0; d <= maxDim; d++ {
		size := d + 1
		sorted := perShard[0][size]
		var scratch []uint64
		for s := 1; s < shards; s++ {
			next := perShard[s][size]
			if len(next) == 0 {
				continue
			}
			if len(sorted) == 0 {
				sorted = next
				continue
			}
			scratch = mergeDedupKeys(sorted, next, scratch[:0])
			sorted, scratch = scratch, sorted
		}
		levels[d] = &Level{size: size, width: width, keys: sorted}
	}
	return levels
}

// keyBuilderPool recycles per-shard builder sets — the pending batches,
// radix scratch and merge buffers are the build phase's entire allocation
// profile, and they are identical in shape from one ReducedBetti call to
// the next.
var keyBuilderPool sync.Pool

type keyBuilderSet struct {
	builders []*keyLevelBuilder // indexed by simplex size
}

func getKeyBuilderSet(maxSize, width int) *keyBuilderSet {
	s, _ := keyBuilderPool.Get().(*keyBuilderSet)
	if s == nil {
		s = &keyBuilderSet{}
	}
	for len(s.builders) < maxSize+1 {
		s.builders = append(s.builders, &keyLevelBuilder{})
	}
	for size := 1; size <= maxSize; size++ {
		b := s.builders[size]
		b.width, b.size = width, size
		b.pending = b.pending[:0]
		b.sorted = nil // the previous accumulator escaped as level keys
	}
	return s
}

// buildKeyLevels streams one facet range into sorted, deduplicated key
// arrays, indexed by simplex size.
func buildKeyLevels(facets [][]int, maxDim, width int) [][]uint64 {
	set := getKeyBuilderSet(maxDim+1, width)
	builders := set.builders
	for _, f := range facets {
		maxSize := len(f)
		if maxSize > maxDim+1 {
			maxSize = maxDim + 1
		}
		for size := 1; size <= maxSize; size++ {
			b := builders[size]
			emitSubsetKeys(f, size, width, 0, 0, 0, &b.pending)
			if len(b.pending) >= keyFlushBudget {
				b.flush()
			}
		}
	}
	out := make([][]uint64, maxDim+2)
	for size := 1; size <= maxDim+1; size++ {
		builders[size].flush()
		out[size] = builders[size].sorted
		builders[size].sorted = nil // escapes into the Level; do not retain
	}
	keyBuilderPool.Put(set)
	return out
}

// emitSubsetKeys appends the packed key of every size-k subset of the
// sorted facet f, accumulating fields most-significant-first as the
// recursion descends.
func emitSubsetKeys(f []int, k int, width, start, depth int, acc uint64, arena *[]uint64) {
	if depth == k {
		*arena = append(*arena, acc)
		return
	}
	for i := start; i <= len(f)-(k-depth); i++ {
		emitSubsetKeys(f, k, width, i+1, depth+1,
			acc|uint64(f[i])<<uint(64-width*(depth+1)), arena)
	}
}

// keyFlushBudget is the pending-key count at which a builder sorts, dedups
// and merges its batch (4 MiB of keys).
const keyFlushBudget = 1 << 19

// keyLevelBuilder accumulates one level's packed keys: pending is the raw
// subset stream of the current batch, sorted the deduplicated union of the
// flushed batches.
type keyLevelBuilder struct {
	width   int
	size    int
	pending []uint64
	sorted  []uint64
	scratch []uint64
	radix   keyRadixState
}

func (b *keyLevelBuilder) flush() {
	if len(b.pending) == 0 {
		return
	}
	batch := sortDedupKeys(b.pending, b.width*b.size, &b.radix)
	if b.sorted == nil {
		b.sorted = append([]uint64(nil), batch...)
	} else {
		b.scratch = mergeDedupKeys(b.sorted, batch, b.scratch[:0])
		b.sorted, b.scratch = b.scratch, b.sorted
	}
	b.pending = b.pending[:0]
}

// mergeDedupKeys merges two sorted, deduplicated key arrays into out,
// dropping keys present in both.
func mergeDedupKeys(a, b, out []uint64) []uint64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// keyRadixState is the reusable buffer of sortDedupKeys.
type keyRadixState struct {
	dst    []uint64
	counts [256]int32
}

// sortDedupKeys sorts the key batch and compacts duplicates in place,
// returning the deduplicated prefix. Keys occupy only their top sigBits
// bits, so the LSD byte-radix skips the all-zero low bytes; tiny batches
// fall back to a comparison sort.
func sortDedupKeys(keys []uint64, sigBits int, rs *keyRadixState) []uint64 {
	if len(keys) <= 1 {
		return keys
	}
	if len(keys) < 256 {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	} else {
		radixSortKeys(keys, sigBits, rs)
	}
	out := keys[:1]
	for _, k := range keys[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

// radixSortKeys is a stable LSD counting sort over the significant byte
// range of the keys.
func radixSortKeys(keys []uint64, sigBits int, rs *keyRadixState) {
	if cap(rs.dst) < len(keys) {
		rs.dst = make([]uint64, len(keys))
	}
	src, dst := keys, rs.dst[:len(keys)]
	byteLo := (64 - sigBits) / 8
	for b := byteLo; b < 8; b++ {
		counts := &rs.counts
		for i := range counts {
			counts[i] = 0
		}
		shift := uint(b * 8)
		for _, k := range src {
			counts[k>>shift&0xff]++
		}
		total := int32(0)
		for v := range counts {
			c := counts[v]
			counts[v] = total
			total += c
		}
		for _, k := range src {
			v := k >> shift & 0xff
			dst[counts[v]] = k
			counts[v]++
		}
		src, dst = dst, src
	}
	if (8-byteLo)%2 == 1 {
		copy(keys, src)
	}
}
