package homology

import (
	"fmt"
	"sort"

	"ksettop/internal/par"
)

// This file is the level layer of the engine: flat simplex arenas per
// dimension, the streaming sharded facet-walk builder, and the radix /
// merge machinery that keeps level construction proportional to the output
// rather than the raw Σ_f 2^|f| subset stream.

// Level holds the distinct simplexes of one dimension, sorted
// lexicographically, in one of two representations chosen per ChainComplex:
// a flat arena of uint32 vertex ids (simplex i occupies
// verts[i*size : (i+1)*size]), or — when width > 0 — packed uint64 keys
// with width-bit vertex fields, most significant first, so numeric key
// order is the same lexicographic order (packedlevels.go).
type Level struct {
	size  int // vertices per simplex (dimension + 1)
	width int // per-vertex field width of the packed form; 0 = arena form
	verts []uint32
	keys  []uint64
}

// Size returns the vertex count per simplex (dimension + 1).
func (l *Level) Size() int { return l.size }

// Count returns the number of simplexes in the level.
func (l *Level) Count() int {
	if l.width > 0 {
		return len(l.keys)
	}
	if l.size == 0 {
		return 0
	}
	return len(l.verts) / l.size
}

// simplex returns the i-th simplex of an arena-form level as a slice into
// the arena (packed levels use unpack).
func (l *Level) simplex(i int) []uint32 {
	return l.verts[i*l.size : (i+1)*l.size]
}

// index returns the position of the sorted vertex list s in the level, or
// -1 when absent, by binary search.
func (l *Level) index(s []uint32) int {
	if l.width > 0 {
		return l.indexKey(packKey(s, l.width))
	}
	n := l.Count()
	i := sort.Search(n, func(i int) bool {
		return !lexLessU32(l.simplex(i), s)
	})
	if i == n || !equalU32(l.simplex(i), s) {
		return -1
	}
	return i
}

func lexLessU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false // equal length by construction
}

func equalU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChainComplex holds the simplex levels of a complex up to a dimension cap,
// built in a single pass over the facets. Boundary matrices are implicit
// (columns materialize on demand from the levels), so the peak footprint is
// the level table plus one reduction's live columns.
type ChainComplex struct {
	levels []*Level // levels[d] = simplexes of dimension d (d+1 vertices)
}

// NewChainComplex enumerates every simplex of c of dimension ≤ maxDim in one
// facet walk and returns the level table. Dimensions above the complex's own
// dimension come back as empty levels.
//
// Facets re-emit shared faces, so the raw subset stream is far larger than
// the distinct level (Σ_f 2^|f| vs the union). The builder therefore streams:
// per-level pending buffers are sorted, deduplicated and merged into a sorted
// accumulator every flushBudget entries, keeping both the peak footprint and
// the sort cost proportional to the output plus a constant-size batch.
func NewChainComplex(c Complex, maxDim int) (*ChainComplex, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("homology: negative dimension cap %d", maxDim)
	}
	facets := c.Facets()
	cc := &ChainComplex{levels: make([]*Level, maxDim+1)}
	if len(facets) == 0 {
		for d := range cc.levels {
			cc.levels[d] = &Level{size: d + 1}
		}
		return cc, nil
	}
	// Pick the level representation once for the whole table: when every
	// tabled simplex packs into a uint64 (exact per-vertex width), the
	// packed builder compresses the subset stream to one word per simplex
	// and sorts by machine-word radix.
	maxVert, maxFacet := uint32(0), 0
	for _, f := range facets {
		if len(f) > 0 && uint32(f[len(f)-1]) > maxVert {
			maxVert = uint32(f[len(f)-1]) // facets are sorted ascending
		}
		if len(f) > maxFacet {
			maxFacet = len(f)
		}
	}
	maxSize := maxDim + 1
	if maxFacet < maxSize {
		maxSize = maxFacet
	}
	if width := packedWidth(maxVert, maxSize); width > 0 {
		cc.levels = buildPackedLevels(facets, maxDim, width)
		return cc, nil
	}
	// The facet walk shards across the worker pool: each shard streams its
	// facet range into private level builders, and the per-shard sorted
	// arenas are folded into the level union afterwards. The union is the
	// same sorted set regardless of shard boundaries, so the table is
	// deterministic across parallelism.
	shards := par.NumShards(int64(len(facets)))
	perShard := make([][][]uint32, shards) // perShard[shard][size] = sorted arena
	par.ForEachShardN(int64(len(facets)), shards, &par.Ctl{}, func(shard int, from, to int64, _ *par.Ctl) {
		perShard[shard] = buildLevels(facets[from:to], maxDim)
	})
	for d := 0; d <= maxDim; d++ {
		size := d + 1
		sorted := perShard[0][size]
		var scratch []uint32
		for s := 1; s < shards; s++ {
			next := perShard[s][size]
			if len(next) == 0 {
				continue
			}
			if len(sorted) == 0 {
				sorted = next
				continue
			}
			scratch = mergeDedup(size, sorted, next, scratch[:0])
			sorted, scratch = scratch, sorted
		}
		cc.levels[d] = &Level{size: size, verts: sorted}
	}
	return cc, nil
}

// NewChainComplexFromLevels builds the level table directly from simplex
// lists the caller already holds — the output shape of
// topology.(*AbstractComplex).SimplexLevels: levels[d] lists the distinct
// d-simplexes as sorted vertex slices, lexicographically ordered. Callers
// that have paid for the facet walk once (reports printing simplex counts,
// experiments cross-checking several engines on one complex) use this to
// avoid re-deriving the levels per engine.
func NewChainComplexFromLevels(levels [][][]int) (*ChainComplex, error) {
	// Choose the representation exactly as NewChainComplex would: packing
	// preserves lexicographic order, so the conversion is a linear pass with
	// no sorting.
	maxVert, maxSize := uint32(0), 0
	for d, simplexes := range levels {
		for i, s := range simplexes {
			if len(s) != d+1 {
				return nil, fmt.Errorf("homology: level %d simplex %d has %d vertices, want %d", d, i, len(s), d+1)
			}
			if s[0] < 0 {
				return nil, fmt.Errorf("homology: negative vertex in level %d", d)
			}
			// Ascending vertices inside each simplex is what packKey and the
			// face binary searches silently rely on — reject rather than
			// compute wrong Betti numbers on malformed input.
			for p := 1; p < len(s); p++ {
				if s[p] <= s[p-1] {
					return nil, fmt.Errorf("homology: level %d simplex %d is not strictly ascending", d, i)
				}
			}
			if v := uint32(s[len(s)-1]); v > maxVert {
				maxVert = v
			}
		}
		if len(simplexes) > 0 {
			maxSize = d + 1
		}
	}
	width := packedWidth(maxVert, maxSize)
	cc := &ChainComplex{levels: make([]*Level, len(levels))}
	for d, simplexes := range levels {
		size := d + 1
		l := &Level{size: size, width: width}
		if width > 0 {
			l.keys = make([]uint64, 0, len(simplexes))
			for i, s := range simplexes {
				var key uint64
				for p, v := range s {
					key |= uint64(v) << uint(64-width*(p+1))
				}
				if i > 0 && key <= l.keys[i-1] {
					return nil, fmt.Errorf("homology: level %d is not sorted and deduplicated at position %d", d, i)
				}
				l.keys = append(l.keys, key)
			}
		} else {
			l.verts = make([]uint32, 0, len(simplexes)*size)
			for _, s := range simplexes {
				for _, v := range s {
					l.verts = append(l.verts, uint32(v))
				}
			}
			for i := 1; i < l.Count(); i++ {
				if !lexLessU32(l.simplex(i-1), l.simplex(i)) {
					return nil, fmt.Errorf("homology: level %d is not sorted and deduplicated at position %d", d, i)
				}
			}
		}
		cc.levels[d] = l
	}
	return cc, nil
}

// buildLevels streams one facet range into sorted, deduplicated level
// arenas, indexed by simplex size.
func buildLevels(facets [][]int, maxDim int) [][]uint32 {
	builders := make([]*levelBuilder, maxDim+2) // indexed by simplex size
	for size := 1; size <= maxDim+1; size++ {
		builders[size] = &levelBuilder{size: size}
	}
	buf := make([]uint32, maxDim+1)
	maxVert := uint32(0)
	for _, f := range facets {
		if len(f) > 0 && uint32(f[len(f)-1]) > maxVert {
			maxVert = uint32(f[len(f)-1]) // facets are sorted ascending
		}
		maxSize := len(f)
		if maxSize > maxDim+1 {
			maxSize = maxDim + 1
		}
		for size := 1; size <= maxSize; size++ {
			b := builders[size]
			emitSubsets(f, size, buf[:size], 0, 0, &b.pending)
			if len(b.pending) >= flushBudget {
				b.flush(maxVert)
			}
		}
	}
	out := make([][]uint32, maxDim+2)
	for size := 1; size <= maxDim+1; size++ {
		builders[size].flush(maxVert)
		out[size] = builders[size].sorted
	}
	return out
}

// flushBudget is the pending-buffer size (in uint32s) at which a level
// builder sorts, dedups and merges its batch into the accumulator.
const flushBudget = 1 << 20

// levelBuilder accumulates one level's simplexes: pending holds the raw
// subset stream of the current batch, sorted the deduplicated union of all
// flushed batches.
type levelBuilder struct {
	size    int
	pending []uint32
	sorted  []uint32
	scratch []uint32   // reused merge destination
	radix   radixState // reused counting-sort buffers
}

// flush sorts and dedups the pending batch and merges it into sorted.
func (b *levelBuilder) flush(maxVert uint32) {
	if len(b.pending) == 0 {
		return
	}
	batch := sortDedup(b.size, b.pending, maxVert, &b.radix)
	if b.sorted == nil {
		b.sorted = append([]uint32(nil), batch...)
	} else {
		b.scratch = mergeDedup(b.size, b.sorted, batch, b.scratch[:0])
		b.sorted, b.scratch = b.scratch, b.sorted
	}
	b.pending = b.pending[:0]
}

// mergeDedup merges two sorted, deduplicated stride arenas into out,
// dropping simplexes present in both.
func mergeDedup(size int, a, b, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		sa, sb := a[i:i+size], b[j:j+size]
		switch c := compareU32(sa, sb); {
		case c < 0:
			out = append(out, sa...)
			i += size
		case c > 0:
			out = append(out, sb...)
			j += size
		default:
			out = append(out, sa...)
			i += size
			j += size
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func compareU32(a, b []uint32) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// emitSubsets appends every size-k subset of the sorted facet f to the
// arena, in lexicographic order per facet (the global order is restored by
// dedupLevel's sort).
func emitSubsets(f []int, k int, buf []uint32, start, depth int, arena *[]uint32) {
	if depth == k {
		*arena = append(*arena, buf...)
		return
	}
	for i := start; i <= len(f)-(k-depth); i++ {
		buf[depth] = uint32(f[i])
		emitSubsets(f, k, buf, i+1, depth+1, arena)
	}
}

// radixCap bounds the counting-sort bucket table; complexes with more
// vertices than this fall back to a comparison sort.
const radixCap = 1 << 20

// radixState is the reusable buffer set of radixSortLevel, kept on each
// level builder so repeated flushes (and repeated ReducedBetti calls on
// pooled builders) stop re-allocating the index vectors.
type radixState struct {
	idx    []int32
	next   []int32
	counts []int32
	dst    []uint32
}

// sortDedup sorts the stride-size arena lexicographically and compacts
// duplicate simplexes in place, returning the deduplicated prefix. Vertex
// ids are small integers, so the sort is an LSD radix: one stable counting
// pass per vertex position, last position first — O(size·n) instead of
// O(size·n·log n), which dominated the build on >64k-simplex complexes.
func sortDedup(size int, arena []uint32, maxVert uint32, rs *radixState) []uint32 {
	n := len(arena) / size
	if n <= 1 {
		return arena
	}
	if maxVert < radixCap {
		radixSortLevel(size, arena, n, int(maxVert)+1, rs)
	} else {
		sort.Sort(&levelSorter{size: size, verts: arena, tmp: make([]uint32, size)})
	}
	// Compact duplicates in place: runs of equal simplexes are adjacent.
	out := arena[:size]
	for i := 1; i < n; i++ {
		s := arena[i*size : (i+1)*size]
		if equalU32(out[len(out)-size:], s) {
			continue
		}
		out = append(out, s...)
	}
	return out
}

// radixSortLevel sorts the arena of n stride-size simplexes lexicographically
// with stable counting passes over vertex values < numVals. The passes
// permute an int32 index vector — moving whole simplexes every pass would be
// O(size²·n) memmove — and the permutation is applied to the arena once.
func radixSortLevel(size int, arena []uint32, n, numVals int, rs *radixState) {
	if cap(rs.idx) < n {
		rs.idx = make([]int32, n)
		rs.next = make([]int32, n)
	}
	idx, next := rs.idx[:n], rs.next[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	if cap(rs.counts) < numVals+1 {
		rs.counts = make([]int32, numVals+1)
	}
	counts := rs.counts[:numVals+1]
	for pos := size - 1; pos >= 0; pos-- {
		for i := range counts {
			counts[i] = 0
		}
		for _, i := range idx {
			counts[arena[int(i)*size+pos]+1]++
		}
		for v := 1; v <= numVals; v++ {
			counts[v] += counts[v-1]
		}
		for _, i := range idx {
			v := arena[int(i)*size+pos]
			next[counts[v]] = i
			counts[v]++
		}
		idx, next = next, idx
	}
	if cap(rs.dst) < len(arena) {
		rs.dst = make([]uint32, len(arena))
	}
	dst := rs.dst[:len(arena)]
	for j, i := range idx {
		copy(dst[j*size:(j+1)*size], arena[int(i)*size:(int(i)+1)*size])
	}
	copy(arena, dst)
}

// levelSorter is the comparison fallback for vertex universes too large for
// counting passes.
type levelSorter struct {
	size  int
	verts []uint32
	tmp   []uint32
}

func (s *levelSorter) Len() int { return len(s.verts) / s.size }
func (s *levelSorter) Less(i, j int) bool {
	return lexLessU32(s.verts[i*s.size:(i+1)*s.size], s.verts[j*s.size:(j+1)*s.size])
}
func (s *levelSorter) Swap(i, j int) {
	a, b := s.verts[i*s.size:(i+1)*s.size], s.verts[j*s.size:(j+1)*s.size]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}

// Dim returns the highest dimension the table carries (the construction
// cap, not necessarily the complex's own dimension).
func (cc *ChainComplex) Dim() int { return len(cc.levels) - 1 }

// SimplexCount returns the number of distinct simplexes of the given
// dimension (0 outside the table).
func (cc *ChainComplex) SimplexCount(dim int) int {
	if dim < 0 || dim > cc.Dim() {
		return 0
	}
	return cc.levels[dim].Count()
}

// TotalSimplexes returns the number of distinct simplexes across every
// tabled dimension.
func (cc *ChainComplex) TotalSimplexes() int {
	total := 0
	for _, l := range cc.levels {
		total += l.Count()
	}
	return total
}

// IsEmpty reports whether the complex has no vertices.
func (cc *ChainComplex) IsEmpty() bool { return cc.levels[0].Count() == 0 }
