// Package homology is the sparse GF(2) chain-complex engine behind the
// repository's connectivity checks.
//
// The paper's impossibility arguments reduce to (k−1)-connectivity of
// protocol complexes (Thms 4.9/4.12), which the repository machine-checks
// through vanishing reduced Betti numbers over GF(2). The seed reduction in
// internal/topology packed simplexes into single machine words, which caps
// it at 2^16 vertices and 4-vertex simplexes (8-vertex below 2^8 vertices)
// before falling back to a dense-column generic path. This package removes
// both caps:
//
//   - Levels store each dimension's simplexes as a flat arena of uint32
//     vertex ids (stride = vertex count), sorted lexicographically and
//     deduplicated — no packing limit, no map keys.
//   - Boundary matrices are CSC with sorted uint32 row indices found by
//     binary search into the face level; every column of ∂_q has exactly
//     q+1 entries, so the column pointer is implicit.
//   - Ranks come from pivot-table column reduction with a low-pivot index
//     (pivot = largest row of the reduced column), with the Chen–Kerber
//     clearing twist: reducing top dimension first lets every pivot row of
//     ∂_{q+1} clear its column in ∂_q, which skips exactly the columns that
//     would reduce to zero anyway.
//   - The reduction shards across internal/par: columns are split into
//     contiguous blocks, each block is reduced locally in parallel, and the
//     block survivors are reconciled sequentially in block order against the
//     global pivot table. GF(2) rank is unique, so Betti numbers are
//     identical across every parallelism setting (the same determinism
//     contract as the PR-2 solver sweep).
package homology

import (
	"fmt"
	"sort"

	"ksettop/internal/par"
)

// Complex is the read surface the engine needs from a simplicial complex:
// the maximal simplexes as sorted vertex lists. *topology.AbstractComplex
// satisfies it.
type Complex interface {
	Facets() [][]int
}

// Level holds the distinct simplexes of one dimension as a flat arena of
// uint32 vertex ids: simplex i occupies verts[i*size : (i+1)*size], sorted
// lexicographically across simplexes and ascending within each.
type Level struct {
	size  int // vertices per simplex (dimension + 1)
	verts []uint32
}

// Size returns the vertex count per simplex (dimension + 1).
func (l *Level) Size() int { return l.size }

// Count returns the number of simplexes in the level.
func (l *Level) Count() int {
	if l.size == 0 {
		return 0
	}
	return len(l.verts) / l.size
}

// simplex returns the i-th simplex as a slice into the arena.
func (l *Level) simplex(i int) []uint32 {
	return l.verts[i*l.size : (i+1)*l.size]
}

// index returns the position of the sorted vertex list s in the level, or
// -1 when absent, by binary search over the arena.
func (l *Level) index(s []uint32) int {
	n := l.Count()
	i := sort.Search(n, func(i int) bool {
		return !lexLessU32(l.simplex(i), s)
	})
	if i == n || !equalU32(l.simplex(i), s) {
		return -1
	}
	return i
}

func lexLessU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false // equal length by construction
}

func equalU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChainComplex holds the simplex levels of a complex up to a dimension cap,
// built in a single pass over the facets. Boundary matrices are constructed
// on demand (and dropped after use by ReducedBetti), so the peak footprint
// is one matrix plus its reduction state.
type ChainComplex struct {
	levels []*Level // levels[d] = simplexes of dimension d (d+1 vertices)
}

// NewChainComplex enumerates every simplex of c of dimension ≤ maxDim in one
// facet walk and returns the level table. Dimensions above the complex's own
// dimension come back as empty levels.
//
// Facets re-emit shared faces, so the raw subset stream is far larger than
// the distinct level (Σ_f 2^|f| vs the union). The builder therefore streams:
// per-level pending buffers are sorted, deduplicated and merged into a sorted
// accumulator every flushBudget entries, keeping both the peak footprint and
// the sort cost proportional to the output plus a constant-size batch.
func NewChainComplex(c Complex, maxDim int) (*ChainComplex, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("homology: negative dimension cap %d", maxDim)
	}
	facets := c.Facets()
	cc := &ChainComplex{levels: make([]*Level, maxDim+1)}
	if len(facets) == 0 {
		for d := range cc.levels {
			cc.levels[d] = &Level{size: d + 1}
		}
		return cc, nil
	}
	// The facet walk shards across the worker pool: each shard streams its
	// facet range into private level builders, and the per-shard sorted
	// arenas are folded into the level union afterwards. The union is the
	// same sorted set regardless of shard boundaries, so the table is
	// deterministic across parallelism.
	shards := par.NumShards(int64(len(facets)))
	perShard := make([][][]uint32, shards) // perShard[shard][size] = sorted arena
	par.ForEachShardN(int64(len(facets)), shards, &par.Ctl{}, func(shard int, from, to int64, _ *par.Ctl) {
		perShard[shard] = buildLevels(facets[from:to], maxDim)
	})
	for d := 0; d <= maxDim; d++ {
		size := d + 1
		sorted := perShard[0][size]
		var scratch []uint32
		for s := 1; s < shards; s++ {
			next := perShard[s][size]
			if len(next) == 0 {
				continue
			}
			if len(sorted) == 0 {
				sorted = next
				continue
			}
			scratch = mergeDedup(size, sorted, next, scratch[:0])
			sorted, scratch = scratch, sorted
		}
		cc.levels[d] = &Level{size: size, verts: sorted}
	}
	return cc, nil
}

// buildLevels streams one facet range into sorted, deduplicated level
// arenas, indexed by simplex size.
func buildLevels(facets [][]int, maxDim int) [][]uint32 {
	builders := make([]*levelBuilder, maxDim+2) // indexed by simplex size
	for size := 1; size <= maxDim+1; size++ {
		builders[size] = &levelBuilder{size: size}
	}
	buf := make([]uint32, maxDim+1)
	maxVert := uint32(0)
	for _, f := range facets {
		if len(f) > 0 && uint32(f[len(f)-1]) > maxVert {
			maxVert = uint32(f[len(f)-1]) // facets are sorted ascending
		}
		maxSize := len(f)
		if maxSize > maxDim+1 {
			maxSize = maxDim + 1
		}
		for size := 1; size <= maxSize; size++ {
			b := builders[size]
			emitSubsets(f, size, buf[:size], 0, 0, &b.pending)
			if len(b.pending) >= flushBudget {
				b.flush(maxVert)
			}
		}
	}
	out := make([][]uint32, maxDim+2)
	for size := 1; size <= maxDim+1; size++ {
		builders[size].flush(maxVert)
		out[size] = builders[size].sorted
	}
	return out
}

// flushBudget is the pending-buffer size (in uint32s) at which a level
// builder sorts, dedups and merges its batch into the accumulator.
const flushBudget = 1 << 20

// levelBuilder accumulates one level's simplexes: pending holds the raw
// subset stream of the current batch, sorted the deduplicated union of all
// flushed batches.
type levelBuilder struct {
	size    int
	pending []uint32
	sorted  []uint32
	scratch []uint32 // reused merge destination
}

// flush sorts and dedups the pending batch and merges it into sorted.
func (b *levelBuilder) flush(maxVert uint32) {
	if len(b.pending) == 0 {
		return
	}
	batch := sortDedup(b.size, b.pending, maxVert)
	if b.sorted == nil {
		b.sorted = append([]uint32(nil), batch...)
	} else {
		b.scratch = mergeDedup(b.size, b.sorted, batch, b.scratch[:0])
		b.sorted, b.scratch = b.scratch, b.sorted
	}
	b.pending = b.pending[:0]
}

// mergeDedup merges two sorted, deduplicated stride arenas into out,
// dropping simplexes present in both.
func mergeDedup(size int, a, b, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		sa, sb := a[i:i+size], b[j:j+size]
		switch c := compareU32(sa, sb); {
		case c < 0:
			out = append(out, sa...)
			i += size
		case c > 0:
			out = append(out, sb...)
			j += size
		default:
			out = append(out, sa...)
			i += size
			j += size
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func compareU32(a, b []uint32) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// emitSubsets appends every size-k subset of the sorted facet f to the
// arena, in lexicographic order per facet (the global order is restored by
// dedupLevel's sort).
func emitSubsets(f []int, k int, buf []uint32, start, depth int, arena *[]uint32) {
	if depth == k {
		*arena = append(*arena, buf...)
		return
	}
	for i := start; i <= len(f)-(k-depth); i++ {
		buf[depth] = uint32(f[i])
		emitSubsets(f, k, buf, i+1, depth+1, arena)
	}
}

// radixCap bounds the counting-sort bucket table; complexes with more
// vertices than this fall back to a comparison sort.
const radixCap = 1 << 20

// sortDedup sorts the stride-size arena lexicographically and compacts
// duplicate simplexes in place, returning the deduplicated prefix. Vertex
// ids are small integers, so the sort is an LSD radix: one stable counting
// pass per vertex position, last position first — O(size·n) instead of
// O(size·n·log n), which dominated the build on >64k-simplex complexes.
func sortDedup(size int, arena []uint32, maxVert uint32) []uint32 {
	n := len(arena) / size
	if n <= 1 {
		return arena
	}
	if maxVert < radixCap {
		radixSortLevel(size, arena, n, int(maxVert)+1)
	} else {
		sort.Sort(&levelSorter{size: size, verts: arena, tmp: make([]uint32, size)})
	}
	// Compact duplicates in place: runs of equal simplexes are adjacent.
	out := arena[:size]
	for i := 1; i < n; i++ {
		s := arena[i*size : (i+1)*size]
		if equalU32(out[len(out)-size:], s) {
			continue
		}
		out = append(out, s...)
	}
	return out
}

// radixSortLevel sorts the arena of n stride-size simplexes lexicographically
// with stable counting passes over vertex values < numVals. The passes
// permute an int32 index vector — moving whole simplexes every pass would be
// O(size²·n) memmove — and the permutation is applied to the arena once.
func radixSortLevel(size int, arena []uint32, n, numVals int) {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	next := make([]int32, n)
	counts := make([]int32, numVals+1)
	for pos := size - 1; pos >= 0; pos-- {
		for i := range counts {
			counts[i] = 0
		}
		for _, i := range idx {
			counts[arena[int(i)*size+pos]+1]++
		}
		for v := 1; v <= numVals; v++ {
			counts[v] += counts[v-1]
		}
		for _, i := range idx {
			v := arena[int(i)*size+pos]
			next[counts[v]] = i
			counts[v]++
		}
		idx, next = next, idx
	}
	dst := make([]uint32, len(arena))
	for j, i := range idx {
		copy(dst[j*size:(j+1)*size], arena[int(i)*size:(int(i)+1)*size])
	}
	copy(arena, dst)
}

// levelSorter is the comparison fallback for vertex universes too large for
// counting passes.
type levelSorter struct {
	size  int
	verts []uint32
	tmp   []uint32
}

func (s *levelSorter) Len() int { return len(s.verts) / s.size }
func (s *levelSorter) Less(i, j int) bool {
	return lexLessU32(s.verts[i*s.size:(i+1)*s.size], s.verts[j*s.size:(j+1)*s.size])
}
func (s *levelSorter) Swap(i, j int) {
	a, b := s.verts[i*s.size:(i+1)*s.size], s.verts[j*s.size:(j+1)*s.size]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}

// Dim returns the highest dimension the table carries (the construction
// cap, not necessarily the complex's own dimension).
func (cc *ChainComplex) Dim() int { return len(cc.levels) - 1 }

// SimplexCount returns the number of distinct simplexes of the given
// dimension (0 outside the table).
func (cc *ChainComplex) SimplexCount(dim int) int {
	if dim < 0 || dim > cc.Dim() {
		return 0
	}
	return cc.levels[dim].Count()
}

// TotalSimplexes returns the number of distinct simplexes across every
// tabled dimension.
func (cc *ChainComplex) TotalSimplexes() int {
	total := 0
	for _, l := range cc.levels {
		total += l.Count()
	}
	return total
}

// IsEmpty reports whether the complex has no vertices.
func (cc *ChainComplex) IsEmpty() bool { return cc.levels[0].Count() == 0 }

// Boundary builds ∂_q in CSC form: columns are the q-simplexes, rows the
// (q−1)-simplexes. q must be ≥ 1 and within the table.
func (cc *ChainComplex) Boundary(q int) *Boundary {
	cols, rows := cc.levels[q], cc.levels[q-1]
	numCols := cols.Count()
	stride := cols.size
	m := &Boundary{
		numRows: rows.Count(),
		numCols: numCols,
		stride:  stride,
		rows:    make([]uint32, numCols*stride),
	}
	face := make([]uint32, stride-1)
	for j := 0; j < numCols; j++ {
		s := cols.simplex(j)
		entries := m.rows[j*stride : (j+1)*stride]
		for omit := 0; omit < stride; omit++ {
			copy(face, s[:omit])
			copy(face[omit:], s[omit+1:])
			// The closure property guarantees every face is present; a miss
			// would mean the level table is internally inconsistent.
			entries[omit] = uint32(rows.index(face))
		}
		sortColumn(entries)
	}
	return m
}

// sortColumn sorts a short row-index slice ascending (insertion sort: the
// column length is the simplex size, typically < 16).
func sortColumn(a []uint32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Boundary is a GF(2) boundary matrix in CSC form. Every column has exactly
// stride entries (each face of a simplex occurs once), so the column pointer
// is implicit: column j is rows[j*stride : (j+1)*stride], sorted ascending.
type Boundary struct {
	numRows int
	numCols int
	stride  int
	rows    []uint32
}

// NumRows returns the row count ((q−1)-simplexes).
func (m *Boundary) NumRows() int { return m.numRows }

// NumCols returns the column count (q-simplexes).
func (m *Boundary) NumCols() int { return m.numCols }

// Rank computes the GF(2) rank by sharded column reduction.
func (m *Boundary) Rank() int {
	rank, _ := m.reduce(nil)
	return rank
}

// reduce runs the sharded reduction. cleared[j], when non-nil, marks columns
// known to vanish (the clearing twist); they are skipped. It returns the
// rank and the pivot-row marks of the reduced matrix, which feed the next
// (lower) dimension's clearing.
//
// Phase 1 reduces each contiguous column block locally in parallel: within a
// block, columns are only ever added leftward, so the surviving columns span
// the same space as the block and come out in ascending column order. Phase
// 2 walks the blocks sequentially in block order and reduces every survivor
// against the global pivot table. Rank over a field is unique, so the result
// does not depend on the block count or on scheduling.
func (m *Boundary) reduce(cleared []bool) (int, []bool) {
	if m.numCols == 0 || m.numRows == 0 {
		return 0, nil
	}
	shards := par.NumShards(int64(m.numCols))
	locals := make([][][]uint32, shards)
	par.ForEachShardN(int64(m.numCols), shards, &par.Ctl{}, func(shard int, from, to int64, _ *par.Ctl) {
		r := newReducer(m.numRows)
		// One backing arena for the block's unreduced columns; columns that
		// survive untouched keep pointing into it.
		arena := make([]uint32, int(to-from)*m.stride)
		for j := from; j < to; j++ {
			if cleared != nil && cleared[j] {
				continue
			}
			col := arena[:m.stride:m.stride]
			arena = arena[m.stride:]
			copy(col, m.rows[int(j)*m.stride:(int(j)+1)*m.stride])
			r.add(col)
		}
		locals[shard] = r.cols
	})

	global := newReducer(m.numRows)
	for _, block := range locals {
		for _, col := range block {
			global.add(col)
		}
	}
	pivotRows := make([]bool, m.numRows)
	for row, p := range global.pivot {
		if p >= 0 {
			pivotRows[row] = true
		}
	}
	return global.rank, pivotRows
}

// reducer is one pivot-table column reduction: pivot[r] indexes the stored
// reduced column whose largest row (its "low") is r, or -1.
type reducer struct {
	pivot []int32
	cols  [][]uint32
	spare []uint32
	rank  int
}

func newReducer(numRows int) *reducer {
	pivot := make([]int32, numRows)
	for i := range pivot {
		pivot[i] = -1
	}
	return &reducer{pivot: pivot}
}

// add reduces col (taking ownership of its storage) against the pivot table
// and installs it as a new pivot when it does not vanish, reporting whether
// the rank grew.
func (r *reducer) add(col []uint32) bool {
	for len(col) > 0 {
		low := col[len(col)-1]
		p := r.pivot[low]
		if p < 0 {
			r.pivot[low] = int32(len(r.cols))
			r.cols = append(r.cols, col)
			r.rank++
			return true
		}
		col = r.symdiff(col, r.cols[p])
	}
	return false
}

// symdiff returns the GF(2) sum (symmetric difference) of the sorted columns
// a and b, writing into the spare buffer and recycling a's storage as the
// next spare — steady-state reduction allocates only when a column outgrows
// every previous one.
func (r *reducer) symdiff(a, b []uint32) []uint32 {
	out := r.spare[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	r.spare = a[:0]
	return out
}

// ReducedBetti computes the reduced GF(2) Betti numbers β̃_0 … β̃_maxDim of
// the complex: β̃_q = dim ker ∂_q − dim im ∂_{q+1} with the augmented chain
// complex, so β̃_0 is (components − 1). The empty complex is rejected, as in
// the seed implementation.
func ReducedBetti(c Complex, maxDim int) ([]int, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("homology: negative homology dimension %d", maxDim)
	}
	cc, err := NewChainComplex(c, maxDim+1)
	if err != nil {
		return nil, err
	}
	return cc.ReducedBetti(maxDim)
}

// ReducedBetti computes β̃_0 … β̃_maxDim from the level table, which must
// extend to dimension maxDim+1. Boundary matrices are built top dimension
// first so each reduction's pivot rows clear columns of the next one, and
// each matrix is dropped before the next is built.
func (cc *ChainComplex) ReducedBetti(maxDim int) ([]int, error) {
	if maxDim < 0 || maxDim+1 > cc.Dim() {
		return nil, fmt.Errorf("homology: dimension %d outside level table (cap %d)", maxDim, cc.Dim()-1)
	}
	if cc.IsEmpty() {
		return nil, fmt.Errorf("homology: reduced homology of the empty complex is undefined here")
	}
	rank := make([]int, maxDim+2)
	rank[0] = 1 // augmentation ∂_0: rank 1 on a nonempty complex
	var cleared []bool
	for q := maxDim + 1; q >= 1; q-- {
		if cc.levels[q].Count() == 0 {
			cleared = nil
			continue
		}
		m := cc.Boundary(q)
		rank[q], cleared = m.reduce(cleared)
	}
	betti := make([]int, maxDim+1)
	for q := 0; q <= maxDim; q++ {
		kernel := cc.levels[q].Count() - rank[q]
		betti[q] = kernel - rank[q+1]
	}
	return betti, nil
}
