// Package homology is the GF(2) chain-complex engine behind the
// repository's connectivity checks.
//
// The paper's impossibility arguments reduce to (k−1)-connectivity of
// protocol complexes (Thms 4.9/4.12), which the repository machine-checks
// through vanishing reduced Betti numbers over GF(2). The seed reduction in
// internal/topology packed simplexes into single machine words, which caps
// it at 2^16 vertices and 4-vertex simplexes; the PR-3 sparse engine
// removed both caps. This package now runs a hybrid-column engine on top of
// the same level tables:
//
//   - Levels store each dimension's simplexes as a flat arena of uint32
//     vertex ids (stride = vertex count), sorted lexicographically and
//     deduplicated — no packing limit, no map keys (levels.go).
//   - Boundary matrices are implicit CSC: a column's sorted row indices are
//     materialized on demand by binary search into the face level, and its
//     unreduced pivot is a single lookup (the face omitting the leading
//     vertex is the lexicographically largest facet), so the apparent-pairs
//     pass never touches full columns (reduce.go).
//   - Apparent pairs (discrete-Morse-flavored): each row is paired with the
//     first column whose unreduced pivot lands on it; paired columns have
//     pairwise-distinct lows, hence are independent, and install as pivots
//     with zero reduction work — they skip the queue entirely, composing
//     with the Chen–Kerber clearing twist (top dimension first, every pivot
//     row of ∂_{q+1} clears its column of ∂_q).
//   - Queued columns are hybrid: sorted sparse uint32 lists that promote to
//     bit-packed uint64 dense blocks once fill crosses the promotion
//     threshold, so XOR of hot columns is word-wide instead of merge-based
//     (columns.go). Column arenas, dense slabs and pivot tables are pooled
//     and recycled across dimensions and across ReducedBetti calls.
//   - The reduction shards across internal/par: contiguous column blocks
//     reduce locally in parallel against the frozen apparent table, and the
//     block survivors are reconciled sequentially in block order. GF(2)
//     rank is unique, so Betti numbers are identical across every
//     parallelism setting, engine, and representation (the same determinism
//     contract as the PR-2 solver sweep).
//
// The PR-3 pure-sparse reduction survives as ReducedBettiSparse (the
// cmds' -engine=sparse) for cross-checking; the two paths share the level
// tables but no reduction code.
package homology

import (
	"context"
	"fmt"

	"ksettop/internal/checkpoint"
	"ksettop/internal/obs"
	"ksettop/internal/par"
	"ksettop/internal/runctx"
)

var obsReductions = obs.DefaultRegistry().Counter("kset_homology_reductions_total",
	"per-dimension boundary-matrix reductions completed")

// Complex is the read surface the engine needs from a simplicial complex:
// the maximal simplexes as sorted vertex lists. *topology.AbstractComplex
// satisfies it.
type Complex interface {
	Facets() [][]int
}

// ReducedBetti computes the reduced GF(2) Betti numbers β̃_0 … β̃_maxDim of
// the complex on the hybrid engine: β̃_q = dim ker ∂_q − dim im ∂_{q+1}
// with the augmented chain complex, so β̃_0 is (components − 1). The empty
// complex is rejected, as in the seed implementation.
func ReducedBetti(c Complex, maxDim int) ([]int, error) {
	return reducedBettiOf(runctx.Base(), c, maxDim, false)
}

// ReducedBettiCtx is ReducedBetti bound to a context: ctx expiry cancels the
// reduction across all workers at shard/poll granularity and returns the
// context's cause wrapped as "homology: reduction aborted". A completed call
// is identical to ReducedBetti at every parallelism setting.
func ReducedBettiCtx(ctx context.Context, c Complex, maxDim int) ([]int, error) {
	return reducedBettiOf(ctx, c, maxDim, false)
}

// ReducedBettiSparse is ReducedBetti on the PR-3 pure-sparse reduction —
// merge-based column XOR, no apparent pass, no dense blocks — kept as an
// independent cross-check of the hybrid engine (and as the -engine=sparse
// CLI backend).
func ReducedBettiSparse(c Complex, maxDim int) ([]int, error) {
	return reducedBettiOf(runctx.Base(), c, maxDim, true)
}

// ReducedBettiSparseCtx is ReducedBettiSparse bound to a context.
func ReducedBettiSparseCtx(ctx context.Context, c Complex, maxDim int) ([]int, error) {
	return reducedBettiOf(ctx, c, maxDim, true)
}

func reducedBettiOf(ctx context.Context, c Complex, maxDim int, sparse bool) ([]int, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("homology: negative homology dimension %d", maxDim)
	}
	cc, err := NewChainComplex(c, maxDim+1)
	if err != nil {
		return nil, err
	}
	return cc.reducedBetti(ctx, maxDim, sparse)
}

// ReducedBetti computes β̃_0 … β̃_maxDim from the level table on the hybrid
// engine. The table must extend to dimension maxDim+1. Boundary matrices
// are built top dimension first so each reduction's pivot rows clear
// columns of the next one, and each matrix is dropped before the next is
// built.
func (cc *ChainComplex) ReducedBetti(maxDim int) ([]int, error) {
	return cc.reducedBetti(runctx.Base(), maxDim, false)
}

// ReducedBettiCtx is ReducedBetti bound to a context (see the package-level
// ReducedBettiCtx).
func (cc *ChainComplex) ReducedBettiCtx(ctx context.Context, maxDim int) ([]int, error) {
	return cc.reducedBetti(ctx, maxDim, false)
}

// ReducedBettiSparse is ReducedBetti on the pure-sparse reduction.
func (cc *ChainComplex) ReducedBettiSparse(maxDim int) ([]int, error) {
	return cc.reducedBetti(runctx.Base(), maxDim, true)
}

// ReducedBettiSparseCtx is ReducedBettiSparse bound to a context.
func (cc *ChainComplex) ReducedBettiSparseCtx(ctx context.Context, maxDim int) ([]int, error) {
	return cc.reducedBetti(ctx, maxDim, true)
}

func (cc *ChainComplex) reducedBetti(ctx context.Context, maxDim int, sparse bool) ([]int, error) {
	if maxDim < 0 || maxDim+1 > cc.Dim() {
		return nil, fmt.Errorf("homology: dimension %d outside level table (cap %d)", maxDim, cc.Dim()-1)
	}
	if cc.IsEmpty() {
		return nil, fmt.Errorf("homology: reduced homology of the empty complex is undefined here")
	}
	// One Ctl spans every dimension's reduction, bound once to ctx; an
	// already-expired context is rejected synchronously (the async Bind
	// watcher could lose the race against a small first reduction).
	ctl := &par.Ctl{}
	if ctx != nil && ctx.Err() != nil {
		return nil, abortErr(ctl, ctx)
	}
	release := ctl.Bind(ctx)
	defer release()
	rank := make([]int, maxDim+2)
	rank[0] = 1 // augmentation ∂_0: rank 1 on a nonempty complex
	var cleared []bool
	engine := "hybrid"
	if sparse {
		engine = "sparse"
	}
	// A checkpoint runner on the context makes the reduction durable at
	// dimension granularity: a staged section with this workload's
	// fingerprint restarts the loop at the saved dimension with the saved
	// rank vector and clearing bitmap (see homology_checkpoint.go).
	runner := checkpoint.FromContext(ctx)
	startQ := maxDim + 1
	var prog *reduceProgress
	if runner != nil {
		fp := cc.checkpointFingerprint(maxDim, sparse)
		// Seed the progress record with the initial rank vector so a capture
		// taken before the first dimension boundary is still a valid
		// (zero-progress) section rather than one the decoder rejects.
		prog = &reduceProgress{maxDim: maxDim, sparse: sparse, nextQ: startQ,
			rank: append([]int(nil), rank...)}
		if payload, ok := runner.Resume(kindHomologyReduction, fp); ok {
			restored, err := decodeReduceProgress(payload, cc, maxDim, sparse)
			if err != nil {
				obs.DefaultLogger().Warnf("checkpoint: homology section unusable (%v); recomputing", err)
			} else {
				prog = restored
				startQ = restored.nextQ
				copy(rank, restored.rank)
				cleared = append([]bool(nil), restored.cleared...)
			}
		}
		unregister := runner.Register(kindHomologyReduction, fp, prog.encode)
		defer unregister()
	}
	for q := startQ; q >= 1; q-- {
		if cc.levels[q].Count() == 0 {
			cleared = nil
			prog.update(q-1, rank, cleared)
			continue
		}
		_, span := obs.StartSpan(ctx, "homology.reduce")
		span.SetInt("dim", int64(q))
		span.SetInt("columns", int64(cc.levels[q].Count()))
		span.SetAttr("engine", engine)
		m := cc.Boundary(q)
		var err error
		if sparse {
			rank[q], cleared, err = m.reduceSparse(ctl, cleared)
		} else {
			rank[q], cleared, err = m.reduceHybrid(ctl, cleared)
		}
		if err != nil {
			span.End()
			return nil, abortErr(ctl, ctx)
		}
		obsReductions.Inc()
		span.SetInt("rank", int64(rank[q]))
		span.End()
		prog.update(q-1, rank, cleared)
	}
	betti := make([]int, maxDim+1)
	for q := 0; q <= maxDim; q++ {
		kernel := cc.levels[q].Count() - rank[q]
		betti[q] = kernel - rank[q+1]
	}
	return betti, nil
}

// abortErr resolves the user-facing error of a cancelled reduction: the
// sweep's recorded cause (context error, recovered worker panic, injected
// fault) if any, else the context's, else plain cancellation.
func abortErr(ctl *par.Ctl, ctx context.Context) error {
	cause := ctl.Cause()
	if cause == nil && ctx != nil {
		cause = context.Cause(ctx)
	}
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("homology: reduction aborted: %w", cause)
}
