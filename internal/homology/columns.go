package homology

import (
	"sync"
	"sync/atomic"

	"ksettop/internal/bits"
)

// This file is the column layer of the hybrid engine: a GF(2) column that
// starts as a sorted sparse uint32 row list and promotes to a bit-packed
// dense block once its fill crosses the promotion threshold, the reducer
// that XORs such columns against a pivot table, and the pooled arenas the
// columns are carved from.

// column is one hybrid GF(2) column. Exactly one of sparse/dense is the
// live representation: sparse holds ascending row ids, dense is a
// bit-packed block over the full row universe. low caches the pivot (the
// largest set row), -1 when the column is zero.
type column struct {
	sparse []uint32
	dense  bits.Words
	low    int32
}

// promoteOverride is the test knob behind SetPromotionThreshold.
var promoteOverride atomic.Int64

// SetPromotionThreshold overrides the sparse→dense promotion fill: a
// reduced column densifies once it holds at least n row entries (n ≤ 0
// restores the stock policy of max(64, numRows/32)). Betti numbers are
// representation-independent, so this only moves work between the merge
// and word-XOR paths; it exists so tests can force columns across the
// threshold on small complexes.
func SetPromotionThreshold(n int) {
	if n < 0 {
		n = 0
	}
	promoteOverride.Store(int64(n))
}

// promotionThreshold returns the fill (row entries) at which a sparse
// column promotes to a dense block. Stock policy: a dense block costs
// numRows/64 words, a sparse column nnz/2 words, and word-wide XOR beats a
// merge once a column carries a couple of entries per word — so promote at
// numRows/32, floored so short columns never pay the block zeroing.
func promotionThreshold(numRows int) int {
	if n := promoteOverride.Load(); n > 0 {
		return int(n)
	}
	t := numRows / 32
	if t < 64 {
		t = 64
	}
	return t
}

// hybridReducer is one pivot-table column reduction over hybrid columns:
// pivot[r] indexes the stored reduced column whose low is r (-1 when
// unclaimed), appar is the shared read-only apparent-pair table (columns
// installed by the preprocessing pass without entering the queue). All
// scratch — the pivot table, the unreduced-column arena, dense slabs, the
// merge spare — lives on the reducer and is recycled through reducerPool
// across blocks, dimensions and ReducedBetti calls.
type hybridReducer struct {
	m       *Boundary
	appar   []int32
	pivot   []int32
	cols    []column
	promote int
	rank    int

	spare []uint32 // merge destination, swap-recycled like the sparse path
	face  []uint32 // stride-1 face scratch for column materialization
	apcol []uint32 // stride scratch for apparent-pivot materialization

	// Dense blocks and sparse column storage are carved from chunked bump
	// slabs: a block must never move (live columns point into it), so slabs
	// are append-only and the bump offsets rewind on reuse. Anything that
	// might still point into a slab (column headers, the spare) is dropped
	// at reset, so a rewound slab can never be scribbled over through a
	// stale alias.
	slabs   [][]uint64
	slabIdx int
	slabOff int

	u32slabs [][]uint32
	u32Idx   int
	u32Off   int
}

var reducerPool sync.Pool

// getReducer returns a pooled reducer reset for matrix m: pivot table
// cleared to -1, column list emptied, dense slabs rewound.
func getReducer(m *Boundary, appar []int32, promote int) *hybridReducer {
	r, _ := reducerPool.Get().(*hybridReducer)
	if r == nil {
		r = &hybridReducer{}
	}
	r.m = m
	r.appar = appar
	r.promote = promote
	r.rank = 0
	if cap(r.pivot) < m.numRows {
		r.pivot = make([]int32, m.numRows)
	}
	r.pivot = r.pivot[:m.numRows]
	for i := range r.pivot {
		r.pivot[i] = -1
	}
	r.cols = r.cols[:0]
	if cap(r.face) < m.stride-1 {
		r.face = make([]uint32, m.stride-1)
		r.apcol = make([]uint32, m.stride)
	}
	r.face = r.face[:m.stride-1]
	r.apcol = r.apcol[:m.stride]
	r.slabIdx, r.slabOff = 0, 0
	r.u32Idx, r.u32Off = 0, 0
	// The spare may alias a slab (this reducer's or — after a
	// reconciliation phase — another pooled reducer's); both rewind, so it
	// must not survive into this reduction.
	r.spare = nil
	return r
}

// putReducer releases the reducer (and every column carved from its
// arenas) back to the pool. The caller must be done with r.cols.
func putReducer(r *hybridReducer) {
	r.m = nil
	r.appar = nil
	// Drop the column headers but keep the backing arrays for reuse.
	for i := range r.cols {
		r.cols[i] = column{}
	}
	r.spare = nil
	reducerPool.Put(r)
}

// slabWords sizes the dense-block slabs (512 KiB); u32SlabLen sizes the
// sparse-storage slabs likewise.
const (
	slabWords  = 1 << 16
	u32SlabLen = 1 << 17
)

// u32buf carves an n-entry uint32 buffer out of the sparse-storage slab
// chain. The buffer is NOT zeroed; callers overwrite it fully (block
// arenas) or append within its capacity (merge spares).
func (r *hybridReducer) u32buf(n int) []uint32 {
	for {
		if r.u32Idx == len(r.u32slabs) {
			size := u32SlabLen
			if size < n {
				size = n
			}
			r.u32slabs = append(r.u32slabs, make([]uint32, size))
		}
		if s := r.u32slabs[r.u32Idx]; r.u32Off+n <= len(s) {
			b := s[r.u32Off : r.u32Off+n : r.u32Off+n]
			r.u32Off += n
			return b
		}
		r.u32Idx++
		r.u32Off = 0
	}
}

// newDense carves a zeroed dense block for the current matrix's row
// universe out of the slab chain.
func (r *hybridReducer) newDense() bits.Words {
	n := (r.m.numRows + 63) / 64
	for {
		if r.slabIdx == len(r.slabs) {
			size := slabWords
			if size < n {
				size = n
			}
			r.slabs = append(r.slabs, make([]uint64, size))
		}
		if s := r.slabs[r.slabIdx]; r.slabOff+n <= len(s) {
			b := s[r.slabOff : r.slabOff+n : r.slabOff+n]
			r.slabOff += n
			for i := range b {
				b[i] = 0
			}
			return bits.Words(b)
		}
		r.slabIdx++
		r.slabOff = 0
	}
}

// add reduces col against the apparent table and the local pivot table and
// installs it as a new pivot when it does not vanish, reporting whether the
// rank grew. Every XOR cancels the current low (both operands share it), so
// col.low strictly decreases and the loop terminates.
func (r *hybridReducer) add(col column) bool {
	for col.low >= 0 {
		if aj := r.appar[col.low]; aj >= 0 {
			r.xorApparent(&col, int(aj))
			continue
		}
		p := r.pivot[col.low]
		if p < 0 {
			r.pivot[col.low] = int32(len(r.cols))
			r.cols = append(r.cols, col)
			r.rank++
			return true
		}
		r.xor(&col, &r.cols[p])
	}
	return false
}

// xor sets col to col ⊕ pivot, dispatching on the two representations. The
// pivot column is never mutated.
func (r *hybridReducer) xor(col, pivot *column) {
	if pivot.dense != nil {
		if col.dense == nil {
			r.densify(col)
		}
		lw := int(col.low >> 6)
		col.dense[:lw+1].XorInto(pivot.dense[:lw+1])
		col.low = int32(col.dense.HighestBitFrom(lw))
		return
	}
	if col.dense != nil {
		r.xorSparseRows(col, pivot.sparse)
		return
	}
	r.symdiff(col, pivot.sparse)
}

// xorApparent materializes the apparent pivot column j (its boundary faces
// are recomputed — apparent columns are never stored) and XORs it into col.
func (r *hybridReducer) xorApparent(col *column, j int) {
	r.m.columnInto(j, r.apcol, r.face)
	if col.dense != nil {
		r.xorSparseRows(col, r.apcol)
		return
	}
	r.symdiff(col, r.apcol)
}

// xorSparseRows flips the given rows in col's dense block and rescans the
// pivot from the old low's word downward (the low always cancels, so the
// new pivot can only be lower).
func (r *hybridReducer) xorSparseRows(col *column, rows []uint32) {
	for _, row := range rows {
		col.dense.FlipBit(int(row))
	}
	col.low = int32(col.dense.HighestBitFrom(int(col.low) >> 6))
}

// symdiff merges the sparse pivot rows into col (GF(2) sum of sorted
// lists), writing into the spare buffer and recycling col's old storage as
// the next spare, then promotes the result to a dense block when it crosses
// the threshold. A spare too small for the worst-case merge is replaced
// from the slab up front, so the appends below never reallocate.
func (r *hybridReducer) symdiff(col *column, b []uint32) {
	a := col.sparse
	if need := len(a) + len(b); cap(r.spare) < need {
		r.spare = r.u32buf(need)
	}
	out := r.spare[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	r.spare = a[:0]
	col.sparse = out
	if len(out) == 0 {
		col.low = -1
		return
	}
	col.low = int32(out[len(out)-1])
	if len(out) >= r.promote {
		r.densify(col)
	}
}

// densify converts a sparse column to a bit-packed dense block, recycling
// the larger of the old storage and the current spare.
func (r *hybridReducer) densify(col *column) {
	obsPromotions.Inc()
	d := r.newDense()
	for _, row := range col.sparse {
		d.SetBit(int(row))
	}
	if cap(col.sparse) > cap(r.spare) {
		r.spare = col.sparse[:0]
	}
	col.sparse = nil
	col.dense = d
}
