package homology

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"ksettop/internal/par"
)

// TestReducedBettiCtxDeterminism is the Betti-side corpus regression for the
// cancellation backbone: cancelling a reduction mid-flight and rerunning it
// to completion must yield Betti numbers identical to a never-cancelled run,
// at every parallelism setting, on both engines.
func TestReducedBettiCtxDeterminism(t *testing.T) {
	facets := facetComplex(pseudosphereFacets([]int{3, 3, 3, 3, 3, 2, 2, 2, 2}))
	const maxDim = 7
	defer par.SetParallelism(0)

	par.SetParallelism(1)
	want, err := ReducedBetti(facets, maxDim)
	if err != nil {
		t.Fatal(err)
	}

	engines := []struct {
		name string
		run  func(ctx context.Context) ([]int, error)
	}{
		{"hybrid", func(ctx context.Context) ([]int, error) { return ReducedBettiCtx(ctx, facets, maxDim) }},
		{"sparse", func(ctx context.Context) ([]int, error) { return ReducedBettiSparseCtx(ctx, facets, maxDim) }},
	}
	for _, eng := range engines {
		for _, workers := range []int{1, 2, 5, 8} {
			par.SetParallelism(workers)
			// Cancel mid-run: a deadline short enough to land inside the
			// reduction on most runs. Either outcome is legal — an abort
			// error carrying DeadlineExceeded, or a clean finish if the run
			// beat the deadline — but never a partial result without error.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			got, err := eng.run(ctx)
			cancel()
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("%s workers=%d: cancelled run returned %v, want a DeadlineExceeded chain", eng.name, workers, err)
				}
			} else if !slices.Equal(got, want) {
				t.Fatalf("%s workers=%d: run that beat the deadline differs: %v vs %v", eng.name, workers, got, want)
			}
			// Rerun to completion: identical to the uncancelled result.
			got, err = eng.run(context.Background())
			if err != nil {
				t.Fatalf("%s workers=%d: rerun: %v", eng.name, workers, err)
			}
			if !slices.Equal(got, want) {
				t.Errorf("%s workers=%d: rerun after cancellation differs: %v vs %v", eng.name, workers, got, want)
			}
		}
	}
}

// TestReducedBettiCtxExpired pins that an already-expired deadline is
// rejected synchronously with a typed context error, before any reduction
// work.
func TestReducedBettiCtxExpired(t *testing.T) {
	facets := facetComplex{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, err := ReducedBettiCtx(ctx, facets, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hybrid: err = %v, want DeadlineExceeded chain", err)
	}
	if _, err := ReducedBettiSparseCtx(ctx, facets, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sparse: err = %v, want DeadlineExceeded chain", err)
	}
}
