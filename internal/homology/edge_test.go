package homology

import "testing"

func TestEdgeCases(t *testing.T) {
	// Single vertex, maxDim far above dimension.
	b, err := ReducedBetti(facetComplex{{5}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for q, v := range b {
		if v != 0 {
			t.Errorf("point: β̃_%d = %d", q, v)
		}
	}
	// Disconnected points with sparse ids.
	b, err = ReducedBetti(facetComplex{{0}, {2000000}}, 1)
	if err != nil || b[0] != 1 || b[1] != 0 {
		t.Errorf("two far points (comparison-sort fallback): %v err %v", b, err)
	}
	// Duplicate facets.
	b, err = ReducedBetti(facetComplex{{0, 1}, {0, 1}}, 1)
	if err != nil || b[0] != 0 || b[1] != 0 {
		t.Errorf("dup segment: %v err %v", b, err)
	}
	// maxDim 0 on a circle: only β̃_0.
	b, err = ReducedBetti(facetComplex{{0, 1}, {1, 2}, {0, 2}}, 0)
	if err != nil || len(b) != 1 || b[0] != 0 {
		t.Errorf("circle maxDim 0: %v err %v", b, err)
	}
}
