package homology

import (
	"reflect"
	"testing"

	"ksettop/internal/obs"
)

// Betti numbers must be identical with the observability layer fully on
// (metrics + tracing) and fully off — instrumentation sits at per-dimension
// span granularity, never inside the reduction.
func TestBettiObsOnOffDeterminism(t *testing.T) {
	complexes := map[string][][]int{
		"sphere": {{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}},
		"RP2": {
			{0, 1, 4}, {0, 1, 5}, {0, 2, 3}, {0, 2, 5}, {0, 3, 4},
			{1, 2, 3}, {1, 2, 4}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5},
		},
		"wedge": {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}},
	}

	obs.ResetTrace(0)
	obs.SetTracingEnabled(true)
	obs.SetEnabled(true)
	t.Cleanup(func() {
		obs.SetTracingEnabled(false)
		obs.SetEnabled(true)
		obs.ResetTrace(0)
	})

	on := map[string][]int{}
	for name, facets := range complexes {
		on[name] = betti(t, facets, 2)
	}
	obs.SetTracingEnabled(false)
	obs.SetEnabled(false)
	for name, facets := range complexes {
		if got := betti(t, facets, 2); !reflect.DeepEqual(got, on[name]) {
			t.Fatalf("%s: betti %v with obs off, %v with obs on", name, got, on[name])
		}
	}
}
