package homology

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"ksettop/internal/memo"
)

// This file is the durability layer of the Betti-number reduction. Progress
// is checkpointed at DIMENSION granularity — the reduction's sequential
// unit: after ∂_q is reduced, the rank vector so far and the clearing
// bitmap handed to ∂_{q-1} fully determine the rest of the computation, and
// GF(2) rank is unique, so a run resumed from any dimension boundary
// reproduces the exact Betti vector of an uninterrupted run. Progress
// inside a dimension (block phase, apparent pairs) is deliberately not
// persisted: it is scheduling-shaped intermediate state, and re-reducing
// one dimension is the bounded recompute cost of a crash.

// kindHomologyReduction is the checkpoint section kind of a reduction.
const kindHomologyReduction = "homology.reduction"

const homologyCkptVersion = 1

// checkpointFingerprint identifies the exact reduction workload: target
// dimension, engine, and the full level-table content (sizes, packing and
// vertex data). Any other complex or flag set recomputes cold.
func (cc *ChainComplex) checkpointFingerprint(maxDim int, sparse bool) uint64 {
	h := fnv.New64a()
	io.WriteString(h, "homology.reduction.v1")
	var b [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wu(uint64(maxDim))
	if sparse {
		wu(1)
	} else {
		wu(0)
	}
	wu(uint64(len(cc.levels)))
	buf := make([]byte, 0, 4096)
	for _, l := range cc.levels {
		wu(uint64(l.size))
		wu(uint64(l.width))
		wu(uint64(l.Count()))
		buf = buf[:0]
		for _, v := range l.verts {
			buf = binary.LittleEndian.AppendUint32(buf, v)
			if len(buf) >= 4096 {
				h.Write(buf)
				buf = buf[:0]
			}
		}
		h.Write(buf)
		buf = buf[:0]
		for _, k := range l.keys {
			buf = binary.LittleEndian.AppendUint64(buf, k)
			if len(buf) >= 4096 {
				h.Write(buf)
				buf = buf[:0]
			}
		}
		h.Write(buf)
	}
	return h.Sum64()
}

// reduceProgress is the mutex-guarded dimension-boundary state shared
// between the reduction loop (writer) and the checkpoint runner's capture
// goroutine (reader).
type reduceProgress struct {
	mu      sync.Mutex
	maxDim  int
	sparse  bool
	nextQ   int    // next dimension the loop will reduce (maxDim+1 .. 0; 0 = done)
	rank    []int  // rank[q] for already-reduced dimensions
	cleared []bool // clearing bitmap for dimension nextQ
}

// update records a completed dimension boundary. Safe on a nil receiver
// (no checkpoint runner armed).
func (p *reduceProgress) update(nextQ int, rank []int, cleared []bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextQ = nextQ
	p.rank = append(p.rank[:0], rank...)
	p.cleared = append(p.cleared[:0], cleared...)
}

// encode serializes the progress state as a checkpoint section payload.
func (p *reduceProgress) encode() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	buf.WriteByte(homologyCkptVersion)
	memo.WriteUvarint(&buf, uint64(p.maxDim))
	if p.sparse {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	memo.WriteUvarint(&buf, uint64(p.nextQ))
	memo.WriteUvarint(&buf, uint64(len(p.rank)))
	for _, r := range p.rank {
		memo.WriteUvarint(&buf, uint64(r))
	}
	memo.WriteUvarint(&buf, uint64(len(p.cleared)))
	packed := make([]byte, (len(p.cleared)+7)/8)
	for i, c := range p.cleared {
		if c {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	buf.Write(packed)
	return buf.Bytes(), nil
}

// decodeReduceProgress parses and validates a checkpoint section against
// the live reduction parameters.
func decodeReduceProgress(payload []byte, cc *ChainComplex, maxDim int, sparse bool) (*reduceProgress, error) {
	r := bytes.NewReader(payload)
	ver, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("version: %w", err)
	}
	if ver != homologyCkptVersion {
		return nil, fmt.Errorf("version %d, want %d", ver, homologyCkptVersion)
	}
	gotMaxDim, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("maxDim: %w", err)
	}
	if int(gotMaxDim) != maxDim {
		return nil, fmt.Errorf("maxDim %d, want %d", gotMaxDim, maxDim)
	}
	sparseByte, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if (sparseByte == 1) != sparse {
		return nil, fmt.Errorf("engine mismatch")
	}
	nextQ, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("nextQ: %w", err)
	}
	if nextQ > uint64(maxDim+1) {
		return nil, fmt.Errorf("nextQ %d out of range", nextQ)
	}
	rankLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("rank length: %w", err)
	}
	if rankLen != uint64(maxDim+2) {
		return nil, fmt.Errorf("rank length %d, want %d", rankLen, maxDim+2)
	}
	p := &reduceProgress{maxDim: maxDim, sparse: sparse, nextQ: int(nextQ)}
	p.rank = make([]int, rankLen)
	for i := range p.rank {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", i, err)
		}
		p.rank[i] = int(v)
	}
	clearedLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("cleared length: %w", err)
	}
	if p.nextQ >= 1 && clearedLen != 0 && clearedLen != uint64(cc.levels[p.nextQ].Count()) {
		return nil, fmt.Errorf("cleared length %d, want 0 or %d", clearedLen, cc.levels[p.nextQ].Count())
	}
	packed := make([]byte, (clearedLen+7)/8)
	if _, err := io.ReadFull(r, packed); err != nil {
		return nil, fmt.Errorf("cleared bits: %w", err)
	}
	if clearedLen > 0 {
		p.cleared = make([]bool, clearedLen)
		for i := range p.cleared {
			p.cleared[i] = packed[i/8]&(1<<(i%8)) != 0
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", r.Len())
	}
	return p, nil
}
