package graph

import "fmt"

// Product returns the graph path product g ⊗ h (Def 6.1): edge u→v iff there
// is w with u→w in g and w→v in h. Because both operands carry self-loops,
// the product does too, and E(g) ∪ E(h) ⊆ E(g ⊗ h).
func Product(g, h Digraph) (Digraph, error) {
	if g.n != h.n {
		return Digraph{}, fmt.Errorf("graph: product of mismatched sizes %d and %d", g.n, h.n)
	}
	p := MustNew(g.n)
	for u := 0; u < g.n; u++ {
		// Out_p(u) = ⋃_{w ∈ Out_g(u)} Out_h(w): boolean row-by-matrix product.
		p.out[u] = h.OutSet(g.out[u])
	}
	return p, nil
}

// Power returns g ⊗ g ⊗ … ⊗ g (r factors). Power(g, 1) is a copy of g.
func Power(g Digraph, r int) (Digraph, error) {
	if r < 1 {
		return Digraph{}, fmt.Errorf("graph: power %d must be ≥ 1", r)
	}
	acc := g.Clone()
	for i := 1; i < r; i++ {
		next, err := Product(acc, g)
		if err != nil {
			return Digraph{}, err
		}
		acc = next
	}
	return acc, nil
}

// ProductSet returns all products g1 ⊗ … ⊗ gr with each gi drawn from gens
// (the set S^r used by the §6 multi-round bounds), deduplicated.
func ProductSet(gens []Digraph, r int) ([]Digraph, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("graph: product set of empty generator list")
	}
	if r < 1 {
		return nil, fmt.Errorf("graph: product length %d must be ≥ 1", r)
	}
	current := dedup(gens)
	for round := 1; round < r; round++ {
		seen := make(map[string]Digraph, len(current)*len(gens))
		for _, g := range current {
			for _, h := range gens {
				p, err := Product(g, h)
				if err != nil {
					return nil, err
				}
				seen[p.Key()] = p
			}
		}
		current = collect(seen)
	}
	return current, nil
}

func dedup(gs []Digraph) []Digraph {
	seen := make(map[string]Digraph, len(gs))
	for _, g := range gs {
		seen[g.Key()] = g
	}
	return collect(seen)
}

func collect(seen map[string]Digraph) []Digraph {
	out := make([]Digraph, 0, len(seen))
	for _, g := range seen {
		out = append(out, g)
	}
	sortByKey(out)
	return out
}
