package graph

import (
	"testing"

	"ksettop/internal/par"
)

// TestPermutationsRangeShardUnion checks that sharded lexicographic
// enumeration visits exactly the permutations Heap's algorithm visits.
func TestPermutationsRangeShardUnion(t *testing.T) {
	for n := 0; n <= 7; n++ {
		want := map[string]bool{}
		Permutations(n, func(perm []int) bool {
			want[permKey(perm)] = true
			return true
		})
		total := Factorial(n)
		for _, shards := range []int64{1, 3, 5} {
			got := map[string]bool{}
			var last []int
			for s := int64(0); s < shards; s++ {
				from := s * total / shards
				to := (s + 1) * total / shards
				if err := PermutationsRange(n, from, to, func(perm []int) bool {
					key := permKey(perm)
					if got[key] {
						t.Fatalf("n=%d shards=%d: permutation %v visited twice", n, shards, perm)
					}
					if last != nil && !lexLessInts(last, perm) {
						t.Fatalf("n=%d shards=%d: %v not after %v", n, shards, perm, last)
					}
					last = append(last[:0], perm...)
					got[key] = true
					return true
				}); err != nil {
					t.Fatal(err)
				}
			}
			if n > 0 && len(got) != len(want) {
				t.Fatalf("n=%d shards=%d: visited %d perms, want %d", n, shards, len(got), len(want))
			}
		}
	}
	if err := PermutationsRange(21, 0, 1, func([]int) bool { return true }); err == nil {
		t.Error("PermutationsRange(21, …) should reject overflowing rank space")
	}
}

func permKey(perm []int) string {
	b := make([]byte, len(perm))
	for i, v := range perm {
		b[i] = byte(v)
	}
	return string(b)
}

func lexLessInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestSymClosureDeterministicAcrossParallelism pins the closure (content and
// order) to the sequential result for several worker counts.
func TestSymClosureDeterministicAcrossParallelism(t *testing.T) {
	// n = 7 puts the 5040-permutation sweep over the sequential threshold, so
	// worker counts > 1 genuinely fan out. Sym(2-stars on 7) has C(7,2) = 21
	// elements.
	g, err := UnionOfStars(7, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	par.SetParallelism(1)
	want, err := SymClosure([]Digraph{g})
	par.SetParallelism(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 21 {
		t.Fatalf("closure has %d graphs, want 21", len(want))
	}
	for _, workers := range []int{2, 4, 8} {
		par.SetParallelism(workers)
		got, err := SymClosure([]Digraph{g})
		par.SetParallelism(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: closure has %d graphs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: closure[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}
