package graph

// CanonicalKey returns a permutation-invariant key: the lexicographically
// smallest Key over all relabelings of g. Two graphs are isomorphic exactly
// when their canonical keys agree. The search is factorial in n; intended
// for the small process counts used throughout (n ≤ 8).
func CanonicalKey(g Digraph) string {
	best := ""
	Permutations(g.N(), func(perm []int) bool {
		p, err := Permute(g, perm)
		if err != nil {
			return false
		}
		if key := p.Key(); best == "" || key < best {
			best = key
		}
		return true
	})
	return best
}

// IsIsomorphic reports whether g and h differ only by a relabeling of
// processes.
func IsIsomorphic(g, h Digraph) bool {
	if g.N() != h.N() {
		return false
	}
	if g.EdgeCount() != h.EdgeCount() {
		return false
	}
	return CanonicalKey(g) == CanonicalKey(h)
}

// OrbitSize returns |Sym({g})|: the number of distinct relabelings of g,
// i.e. n! divided by the order of g's automorphism group.
func OrbitSize(g Digraph) (int, error) {
	closure, err := SymClosure([]Digraph{g})
	if err != nil {
		return 0, err
	}
	return len(closure), nil
}

// AutomorphismCount returns the order of g's automorphism group.
func AutomorphismCount(g Digraph) int {
	count := 0
	Permutations(g.N(), func(perm []int) bool {
		p, err := Permute(g, perm)
		if err != nil {
			return false
		}
		if p.Equal(g) {
			count++
		}
		return true
	})
	return count
}
