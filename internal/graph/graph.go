// Package graph implements the directed communication graphs that define
// round-based models (paper §2.1).
//
// A communication graph has one node per process; an edge u→v means "v
// receives the round-r message of u". Following the paper, every graph
// carries all self-loops (a process always hears itself), and graphs are
// compared by edge containment: H ∈ ↑G iff E(H) ⊇ E(G).
package graph

import (
	"fmt"
	mathbits "math/bits"
	"strings"

	"ksettop/internal/bits"
)

// MaxProcs is the largest supported number of processes. Adjacency rows are
// one machine word each, which keeps the exponential subset enumerations in
// internal/combinat allocation-free.
const MaxProcs = 63

// Digraph is a directed communication graph over processes 0..n-1 with
// mandatory self-loops.
//
// The zero value is not usable; construct with New or a generator.
type Digraph struct {
	n   int
	out []bits.Set // out[u] = set of v with edge u→v; always contains u
}

// New returns the graph on n processes containing only self-loops.
func New(n int) (Digraph, error) {
	if n < 1 || n > MaxProcs {
		return Digraph{}, fmt.Errorf("graph: process count %d outside [1,%d]", n, MaxProcs)
	}
	g := Digraph{n: n, out: make([]bits.Set, n)}
	for u := 0; u < n; u++ {
		g.out[u] = bits.Single(u)
	}
	return g, nil
}

// MustNew is New for statically valid sizes; it panics on invalid n.
// Intended for tests and package-internal generator construction.
func MustNew(n int) Digraph {
	g, err := New(n)
	if err != nil {
		panic(err)
	}
	return g
}

// FromRows builds the graph whose adjacency rows are rows (row u = Out(u)),
// forcing the mandatory self-loops. The rows are copied; members outside
// [0, n) are an error. This is the bulk constructor behind the streaming
// closure enumeration, which assembles whole rows instead of adding edges
// one at a time.
func FromRows(n int, rows []bits.Set) (Digraph, error) {
	if n < 1 || n > MaxProcs {
		return Digraph{}, fmt.Errorf("graph: process count %d outside [1,%d]", n, MaxProcs)
	}
	if len(rows) != n {
		return Digraph{}, fmt.Errorf("graph: %d rows for %d processes", len(rows), n)
	}
	full := bits.Full(n)
	out := make([]bits.Set, n)
	for u, row := range rows {
		if !full.ContainsAll(row) {
			return Digraph{}, fmt.Errorf("graph: row %d = %v outside process range", u, row)
		}
		out[u] = row.With(u)
	}
	return Digraph{n: n, out: out}, nil
}

// N returns the number of processes.
func (g Digraph) N() int { return g.n }

// Procs returns the full process set {0,…,n-1}.
func (g Digraph) Procs() bits.Set { return bits.Full(g.n) }

// Clone returns a deep copy of g.
func (g Digraph) Clone() Digraph {
	out := make([]bits.Set, g.n)
	copy(out, g.out)
	return Digraph{n: g.n, out: out}
}

// AddEdge adds the edge u→v (no-op if present). It returns an error if an
// endpoint is out of range.
func (g *Digraph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) outside graph of size %d", u, v, g.n)
	}
	g.out[u] = g.out[u].With(v)
	return nil
}

// RemoveEdge removes the edge u→v. Self-loops cannot be removed (the paper's
// models always deliver a process's own value to itself); attempting to is an
// error.
func (g *Digraph) RemoveEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) outside graph of size %d", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: cannot remove mandatory self-loop (%d,%d)", u, v)
	}
	g.out[u] = g.out[u].Without(v)
	return nil
}

// HasEdge reports whether the edge u→v is present.
func (g Digraph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	return g.out[u].Has(v)
}

// Out returns Out(u): the set of processes that hear u (including u).
func (g Digraph) Out(u int) bits.Set { return g.out[u] }

// In returns In(v): the set of processes v hears from (including v).
func (g Digraph) In(v int) bits.Set {
	var in bits.Set
	for u := 0; u < g.n; u++ {
		if g.out[u].Has(v) {
			in = in.With(u)
		}
	}
	return in
}

// OutSet returns ⋃_{u∈P} Out(u), the processes that hear at least one member
// of P. This sits in the innermost loop of every subset sweep in
// internal/combinat, so it iterates set bits directly instead of going
// through a callback.
func (g Digraph) OutSet(p bits.Set) bits.Set {
	var out bits.Set
	for t := uint64(p); t != 0; t &= t - 1 {
		out |= g.out[mathbits.TrailingZeros64(t)]
	}
	return out
}

// InSet returns ⋃_{v∈P} In(v).
func (g Digraph) InSet(p bits.Set) bits.Set {
	var in bits.Set
	for t := uint64(p); t != 0; t &= t - 1 {
		in |= g.In(mathbits.TrailingZeros64(t))
	}
	return in
}

// EdgeCount returns the number of edges, self-loops included.
func (g Digraph) EdgeCount() int {
	total := 0
	for u := 0; u < g.n; u++ {
		total += g.out[u].Count()
	}
	return total
}

// Equal reports whether g and h have identical vertex and edge sets.
func (g Digraph) Equal(h Digraph) bool {
	if g.n != h.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if g.out[u] != h.out[u] {
			return false
		}
	}
	return true
}

// IsSubgraphOf reports whether E(g) ⊆ E(h), i.e. h ∈ ↑g (Def 2.3).
func (g Digraph) IsSubgraphOf(h Digraph) bool {
	if g.n != h.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if !h.out[u].ContainsAll(g.out[u]) {
			return false
		}
	}
	return true
}

// Union returns the graph with edge set E(g) ∪ E(h). Both graphs must have
// the same process count.
func (g Digraph) Union(h Digraph) (Digraph, error) {
	if g.n != h.n {
		return Digraph{}, fmt.Errorf("graph: union of mismatched sizes %d and %d", g.n, h.n)
	}
	u := g.Clone()
	for v := 0; v < g.n; v++ {
		u.out[v] = u.out[v].Union(h.out[v])
	}
	return u, nil
}

// Key returns a canonical comparable representation of g, usable as a map
// key for deduplication.
func (g Digraph) Key() string {
	var b strings.Builder
	b.Grow(g.n * 8)
	for u := 0; u < g.n; u++ {
		row := uint64(g.out[u])
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(row >> (8 * i)))
		}
	}
	return b.String()
}

// String renders g as an adjacency list, e.g. "0→{0,1} 1→{1}".
func (g Digraph) String() string {
	var b strings.Builder
	for u := 0; u < g.n; u++ {
		if u > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d→%s", u, g.out[u])
	}
	return b.String()
}

// DOT renders g in Graphviz DOT format (self-loops omitted for legibility).
func (g Digraph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for u := 0; u < g.n; u++ {
		fmt.Fprintf(&b, "  p%d;\n", u)
	}
	for u := 0; u < g.n; u++ {
		g.out[u].ForEach(func(v int) {
			if v != u {
				fmt.Fprintf(&b, "  p%d -> p%d;\n", u, v)
			}
		})
	}
	b.WriteString("}\n")
	return b.String()
}

// IsStronglyConnected reports whether every process can reach every other
// process along directed edges.
func (g Digraph) IsStronglyConnected() bool {
	for s := 0; s < g.n; s++ {
		if g.reachFrom(s) != g.Procs() {
			return false
		}
	}
	return true
}

// reachFrom returns the set of processes reachable from s (including s).
func (g Digraph) reachFrom(s int) bits.Set {
	seen := bits.Single(s)
	frontier := bits.Single(s)
	for !frontier.IsEmpty() {
		next := bits.Set(0)
		frontier.ForEach(func(u int) { next = next.Union(g.out[u]) })
		frontier = next.Diff(seen)
		seen = seen.Union(next)
	}
	return seen
}

// HasKernel reports whether some process broadcasts to everyone (the
// non-empty kernel predicate from §2.1).
func (g Digraph) HasKernel() bool {
	for u := 0; u < g.n; u++ {
		if g.out[u] == g.Procs() {
			return true
		}
	}
	return false
}

// IsNonSplit reports whether every pair of processes hears from a common
// process (the non-split predicate from §2.1).
func (g Digraph) IsNonSplit() bool {
	for v := 0; v < g.n; v++ {
		for w := v + 1; w < g.n; w++ {
			if !g.In(v).Intersects(g.In(w)) {
				return false
			}
		}
	}
	return true
}
