package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ksettop/internal/bits"
	"ksettop/internal/memo"
)

// The symmetric-closure cache is the snapshot layer's marquee customer:
// SymClosure pays an n! permutation sweep per cold key, and the CLI tools
// recompute the same handful of closures on every invocation. The section
// serializes the whole cache as canonical key → digraph slice in a
// length-prefixed binary layout (uvarint framing; one uvarint per adjacency
// row — rows are uint64 bitmasks).

func init() {
	memo.RegisterSnapshot("graph.symclosure", exportSymClosures, restoreSymClosures)
}

func exportSymClosures() ([]byte, error) {
	keys, vals := symCache.SnapshotEntries()
	var buf bytes.Buffer
	memo.WriteUvarint(&buf, uint64(len(keys)))
	for i, key := range keys {
		memo.WriteUvarint(&buf, uint64(len(key)))
		buf.WriteString(key)
		memo.WriteUvarint(&buf, uint64(len(vals[i])))
		for _, g := range vals[i] {
			encodeDigraph(&buf, g)
		}
	}
	return buf.Bytes(), nil
}

func restoreSymClosures(payload []byte) error {
	r := bytes.NewReader(payload)
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("graph: corrupt closure snapshot: %w", err)
	}
	for i := uint64(0); i < count; i++ {
		keyBytes, err := memo.ReadLengthPrefixed(r)
		if err != nil {
			return fmt.Errorf("graph: corrupt closure snapshot: %w", err)
		}
		key := string(keyBytes)
		size, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("graph: corrupt closure snapshot: %w", err)
		}
		// Every digraph costs at least two bytes (n plus one row), so a
		// count beyond half the remaining payload is corruption — reject it
		// before the allocation can panic.
		if size > uint64(r.Len())/2 {
			return fmt.Errorf("graph: corrupt closure snapshot: closure size %d exceeds remaining payload", size)
		}
		closure := make([]Digraph, size)
		for j := range closure {
			if closure[j], err = decodeDigraph(r); err != nil {
				return fmt.Errorf("graph: corrupt closure snapshot: %w", err)
			}
		}
		symCache.Put(key, closure)
	}
	return nil
}

func encodeDigraph(buf *bytes.Buffer, g Digraph) {
	memo.WriteUvarint(buf, uint64(g.n))
	for _, row := range g.out {
		memo.WriteUvarint(buf, uint64(row))
	}
}

func decodeDigraph(r *bytes.Reader) (Digraph, error) {
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return Digraph{}, err
	}
	n := int(n64)
	if n < 1 || n > MaxProcs {
		return Digraph{}, fmt.Errorf("process count %d outside [1,%d]", n, MaxProcs)
	}
	rows := make([]bits.Set, n)
	for u := range rows {
		row, err := binary.ReadUvarint(r)
		if err != nil {
			return Digraph{}, err
		}
		rows[u] = bits.Set(row)
	}
	// FromRows validates the rows against the process range and re-forces
	// self-loops, so a corrupt snapshot cannot smuggle in a malformed graph.
	return FromRows(n, rows)
}
