package graph

import (
	"fmt"
	"math/rand"

	"ksettop/internal/bits"
)

// Complete returns the clique on n processes (every message delivered).
func Complete(n int) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	full := bits.Full(n)
	for u := 0; u < n; u++ {
		g.out[u] = full
	}
	return g, nil
}

// Star returns the star graph centered at center: the center broadcasts to
// everyone, all other processes send only to themselves (Def 6.12 with a
// single center).
func Star(n, center int) (Digraph, error) {
	return UnionOfStars(n, []int{center})
}

// UnionOfStars returns the union of stars with the given centers: every
// center broadcasts, every non-center is silent (Def 6.12).
func UnionOfStars(n int, centers []int) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	full := bits.Full(n)
	for _, c := range centers {
		if c < 0 || c >= n {
			return Digraph{}, fmt.Errorf("graph: star center %d outside [0,%d)", c, n)
		}
		g.out[c] = full
	}
	return g, nil
}

// Cycle returns the directed cycle 0→1→…→(n-1)→0 (plus self-loops), as in
// the §6.1 product example.
func Cycle(n int) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	for u := 0; u < n; u++ {
		g.out[u] = g.out[u].With((u + 1) % n)
	}
	return g, nil
}

// BidirectionalRing returns the ring with edges in both directions.
func BidirectionalRing(n int) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	for u := 0; u < n; u++ {
		g.out[u] = g.out[u].With((u + 1) % n).With((u + n - 1) % n)
	}
	return g, nil
}

// DirectedPath returns the path 0→1→…→(n-1) (plus self-loops).
func DirectedPath(n int) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	for u := 0; u+1 < n; u++ {
		g.out[u] = g.out[u].With(u + 1)
	}
	return g, nil
}

// OutTree returns the complete binary out-tree rooted at 0: node u sends to
// 2u+1 and 2u+2 when they exist.
func OutTree(n int) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	for u := 0; u < n; u++ {
		if l := 2*u + 1; l < n {
			g.out[u] = g.out[u].With(l)
		}
		if r := 2*u + 2; r < n {
			g.out[u] = g.out[u].With(r)
		}
	}
	return g, nil
}

// BipartiteCross returns the graph where every process in [0,m) sends to
// every process in [m,n) and vice versa (plus self-loops).
func BipartiteCross(n, m int) (Digraph, error) {
	if m < 0 || m > n {
		return Digraph{}, fmt.Errorf("graph: bipartite split %d outside [0,%d]", m, n)
	}
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	left, right := bits.Full(m), bits.Full(n).Diff(bits.Full(m))
	for u := 0; u < n; u++ {
		if left.Has(u) {
			g.out[u] = g.out[u].Union(right)
		} else {
			g.out[u] = g.out[u].Union(left)
		}
	}
	return g, nil
}

// Random returns a graph on n processes where every non-loop edge is present
// independently with probability p.
func Random(n int, p float64, rng *rand.Rand) (Digraph, error) {
	g, err := New(n)
	if err != nil {
		return Digraph{}, err
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.out[u] = g.out[u].With(v)
			}
		}
	}
	return g, nil
}

// FromAdjacency builds a graph from explicit out-neighbor lists. Self-loops
// are added automatically.
func FromAdjacency(adj [][]int) (Digraph, error) {
	g, err := New(len(adj))
	if err != nil {
		return Digraph{}, err
	}
	for u, row := range adj {
		for _, v := range row {
			if err := g.AddEdge(u, v); err != nil {
				return Digraph{}, err
			}
		}
	}
	return g, nil
}
