package graph

import (
	"fmt"
	"sort"
)

// Permute returns π(g): the graph with edge π(u)→π(v) for every edge u→v of
// g. perm must be a permutation of 0..n-1.
func Permute(g Digraph, perm []int) (Digraph, error) {
	if len(perm) != g.n {
		return Digraph{}, fmt.Errorf("graph: permutation length %d != %d", len(perm), g.n)
	}
	seen := make([]bool, g.n)
	for _, v := range perm {
		if v < 0 || v >= g.n || seen[v] {
			return Digraph{}, fmt.Errorf("graph: %v is not a permutation of 0..%d", perm, g.n-1)
		}
		seen[v] = true
	}
	p := MustNew(g.n)
	for u := 0; u < g.n; u++ {
		g.out[u].ForEach(func(v int) {
			p.out[perm[u]] = p.out[perm[u]].With(perm[v])
		})
	}
	return p, nil
}

// Permutations calls f on every permutation of 0..n-1 (Heap's algorithm).
// Enumeration stops early if f returns false.
func Permutations(n int, f func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return f(perm)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
		return true
	}
	if n > 0 {
		rec(n)
	}
}

// SymClosure returns Sym(S) = {π(G) | G ∈ S, π a permutation} (Def 2.4),
// deduplicated and in canonical order. This is exponential in n; intended
// for the small process counts the paper's examples use.
func SymClosure(gens []Digraph) ([]Digraph, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("graph: symmetric closure of empty generator list")
	}
	n := gens[0].n
	seen := make(map[string]Digraph)
	for _, g := range gens {
		if g.n != n {
			return nil, fmt.Errorf("graph: mixed sizes %d and %d in generator list", n, g.n)
		}
		var permErr error
		Permutations(n, func(perm []int) bool {
			p, err := Permute(g, perm)
			if err != nil {
				permErr = err
				return false
			}
			seen[p.Key()] = p
			return true
		})
		if permErr != nil {
			return nil, permErr
		}
	}
	return collect(seen), nil
}

// IsSymmetric reports whether the generator set equals its symmetric closure
// (Def 2.4).
func IsSymmetric(gens []Digraph) (bool, error) {
	closure, err := SymClosure(gens)
	if err != nil {
		return false, err
	}
	if len(closure) != len(dedup(gens)) {
		return false, nil
	}
	keys := make(map[string]bool, len(gens))
	for _, g := range gens {
		keys[g.Key()] = true
	}
	for _, g := range closure {
		if !keys[g.Key()] {
			return false, nil
		}
	}
	return true, nil
}

func sortByKey(gs []Digraph) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key() < gs[j].Key() })
}
