package graph

import (
	"fmt"
	mathbits "math/bits"
	"slices"
	"sort"

	"ksettop/internal/bits"
	"ksettop/internal/memo"
	"ksettop/internal/par"
)

// Permute returns π(g): the graph with edge π(u)→π(v) for every edge u→v of
// g. perm must be a permutation of 0..n-1.
func Permute(g Digraph, perm []int) (Digraph, error) {
	if len(perm) != g.n {
		return Digraph{}, fmt.Errorf("graph: permutation length %d != %d", len(perm), g.n)
	}
	seen := make([]bool, g.n)
	for _, v := range perm {
		if v < 0 || v >= g.n || seen[v] {
			return Digraph{}, fmt.Errorf("graph: %v is not a permutation of 0..%d", perm, g.n-1)
		}
		seen[v] = true
	}
	p := MustNew(g.n)
	permuteRows(g, perm, p.out)
	return p, nil
}

// permuteRows writes the adjacency rows of π(g) into rows (len n). The
// caller guarantees perm is a valid permutation.
func permuteRows(g Digraph, perm []int, rows []bits.Set) {
	for u := 0; u < g.n; u++ {
		var row bits.Set
		for t := uint64(g.out[u]); t != 0; t &= t - 1 {
			row = row.With(perm[mathbits.TrailingZeros64(t)])
		}
		rows[perm[u]] = row
	}
}

// Permutations calls f on every permutation of 0..n-1 (Heap's algorithm).
// Enumeration stops early if f returns false.
func Permutations(n int, f func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == 1 {
			return f(perm)
		}
		for i := 0; i < k; i++ {
			if !rec(k - 1) {
				return false
			}
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
		return true
	}
	if n > 0 {
		rec(n)
	}
}

// maxRankedPerms bounds the sizes PermutationsRange supports: factorials
// beyond 20! overflow int64 (and could never be enumerated anyway).
const maxRankedPerms = 20

// Factorial returns n! for 0 ≤ n ≤ 20; larger n returns -1 (overflow).
func Factorial(n int) int64 {
	if n < 0 || n > maxRankedPerms {
		return -1
	}
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// unrankPermutation writes the rank-th permutation of 0..n-1 in lexicographic
// order into perm (factorial number system / Lehmer code).
func unrankPermutation(n int, rank int64, perm []int) {
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	radix := Factorial(n - 1)
	for i := 0; i < n; i++ {
		idx := int64(0)
		if radix > 0 {
			idx = rank / radix
			rank %= radix
		}
		perm[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
		if n-1-i > 0 {
			radix /= int64(n - 1 - i)
		}
	}
}

// nextPermutation steps perm to its lexicographic successor; it reports false
// when perm was the last permutation.
func nextPermutation(perm []int) bool {
	i := len(perm) - 2
	for i >= 0 && perm[i] >= perm[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(perm) - 1
	for perm[j] <= perm[i] {
		j--
	}
	perm[i], perm[j] = perm[j], perm[i]
	for l, r := i+1, len(perm)-1; l < r; l, r = l+1, r-1 {
		perm[l], perm[r] = perm[r], perm[l]
	}
	return true
}

// PermutationsRange calls f on the permutations of 0..n-1 with lexicographic
// ranks in [from, to). Enumeration stops early if f returns false. Splitting
// [0, n!) into contiguous rank ranges shards the full sweep. n must be ≤ 20
// (ranks are int64); larger n is an error.
func PermutationsRange(n int, from, to int64, f func(perm []int) bool) error {
	total := Factorial(n)
	if total < 0 {
		return fmt.Errorf("graph: permutation ranks overflow for n = %d (max %d)", n, maxRankedPerms)
	}
	if from < 0 {
		from = 0
	}
	if to > total {
		to = total
	}
	if from >= to || n == 0 {
		return nil
	}
	perm := make([]int, n)
	unrankPermutation(n, from, perm)
	for i := from; i < to; i++ {
		if !f(perm) {
			return nil
		}
		if !nextPermutation(perm) {
			break
		}
	}
	return nil
}

// digraphSet deduplicates graphs without building per-graph string keys: a
// 64-bit FNV-1a hash over the adjacency rows selects a bucket, and bucket
// members are compared row-by-row.
type digraphSet struct {
	buckets map[uint64][]Digraph
	count   int
}

func newDigraphSet() *digraphSet {
	return &digraphSet{buckets: make(map[uint64][]Digraph)}
}

func hashRows(rows []bits.Set) uint64 {
	h := bits.Hash64Seed()
	for _, row := range rows {
		h = bits.Hash64Mix(h, uint64(row))
	}
	return h
}

// addRows inserts the graph with the given adjacency rows unless an equal
// graph is present; it reports whether an insert happened.
func (s *digraphSet) addRows(n int, rows []bits.Set) bool {
	h := hashRows(rows)
	for _, g := range s.buckets[h] {
		if slices.Equal(g.out, rows) {
			return false
		}
	}
	out := make([]bits.Set, n)
	copy(out, rows)
	s.buckets[h] = append(s.buckets[h], Digraph{n: n, out: out})
	s.count++
	return true
}

// add inserts g (sharing its rows, which must not be mutated afterwards).
func (s *digraphSet) add(g Digraph) bool {
	h := hashRows(g.out)
	for _, have := range s.buckets[h] {
		if slices.Equal(have.out, g.out) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], g)
	s.count++
	return true
}

func (s *digraphSet) graphs() []Digraph {
	out := make([]Digraph, 0, s.count)
	for _, bucket := range s.buckets {
		out = append(out, bucket...)
	}
	sortByKey(out)
	return out
}

// symCache memoizes SymClosure per canonical (sorted-key) generator set:
// every model constructor and symmetry check recomputes the n! orbit sweep
// otherwise. Cached slices are shared read-only — callers must not mutate
// the returned generators (the repository-wide convention for generator
// slices).
var symCache = memo.NewCache[[]Digraph](256)

// symKey is the canonical cache key of a generator set for a given
// computation kind.
func symKey(kind string, n int, gens []Digraph) string {
	keys := make([]string, len(gens))
	for i, g := range gens {
		keys[i] = g.Key()
	}
	return memo.Key(kind, n, keys)
}

// SymClosure returns Sym(S) = {π(G) | G ∈ S, π a permutation} (Def 2.4),
// deduplicated and sorted by canonical key. The n! permutation sweep is
// sharded across the par worker pool; each worker deduplicates locally and
// the shard sets are merged afterwards, so the (sorted) result is
// deterministic regardless of scheduling. Exponential in n; intended for the
// small process counts the paper's examples use. Results are memoized per
// canonical generator-set key.
func SymClosure(gens []Digraph) ([]Digraph, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("graph: symmetric closure of empty generator list")
	}
	n := gens[0].n
	for _, g := range gens {
		if g.n != n {
			return nil, fmt.Errorf("graph: mixed sizes %d and %d in generator list", n, g.n)
		}
	}
	return symCache.Do(symKey("sym", n, gens), func() ([]Digraph, error) {
		return symClosure(n, gens)
	})
}

func symClosure(n int, gens []Digraph) ([]Digraph, error) {
	total := Factorial(n)
	if total < 0 {
		return nil, fmt.Errorf("graph: symmetric closure of %d processes is not enumerable", n)
	}

	global := newDigraphSet()
	// locals is presized, so the shard count is fixed here and passed down —
	// ForEachShard recomputing it could disagree if SetParallelism runs
	// concurrently.
	shards := par.NumShards(total)
	locals := make([]*digraphSet, shards)
	par.ForEachShardN(total, shards, &par.Ctl{}, func(shard int, from, to int64, _ *par.Ctl) {
		local := newDigraphSet()
		rows := make([]bits.Set, n)
		// In-range by the guard above.
		_ = PermutationsRange(n, from, to, func(perm []int) bool {
			// permuteRows writes every entry of rows, so no reset is needed.
			for _, g := range gens {
				permuteRows(g, perm, rows)
				local.addRows(n, rows)
			}
			return true
		})
		locals[shard] = local
	})
	for _, local := range locals {
		if local == nil {
			continue
		}
		for _, bucket := range local.buckets {
			for _, g := range bucket {
				global.add(g)
			}
		}
	}
	return global.graphs(), nil
}

// IsSymmetric reports whether the generator set equals its symmetric closure
// (Def 2.4).
func IsSymmetric(gens []Digraph) (bool, error) {
	closure, err := SymClosure(gens)
	if err != nil {
		return false, err
	}
	if len(closure) != len(dedup(gens)) {
		return false, nil
	}
	keys := make(map[string]bool, len(gens))
	for _, g := range gens {
		keys[g.Key()] = true
	}
	for _, g := range closure {
		if !keys[g.Key()] {
			return false, nil
		}
	}
	return true, nil
}

func sortByKey(gs []Digraph) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Key() < gs[j].Key() })
}
