package graph

import (
	"math/rand"
	"testing"
)

func TestCanonicalKeyInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		g, _ := Random(5, rng.Float64(), rng)
		perm := rng.Perm(5)
		p, err := Permute(g, perm)
		if err != nil {
			t.Fatalf("Permute: %v", err)
		}
		if CanonicalKey(g) != CanonicalKey(p) {
			t.Fatalf("canonical key changed under relabeling of %v", g)
		}
	}
}

func TestIsIsomorphic(t *testing.T) {
	s0, _ := Star(4, 0)
	s2, _ := Star(4, 2)
	if !IsIsomorphic(s0, s2) {
		t.Errorf("stars with different centers are isomorphic")
	}
	cyc, _ := Cycle(4)
	if IsIsomorphic(s0, cyc) {
		t.Errorf("star and cycle are not isomorphic")
	}
	small := MustNew(3)
	if IsIsomorphic(s0, small) {
		t.Errorf("different sizes are not isomorphic")
	}
	// Same edge count, different structure: path 0→1→2 with extra 0→2
	// versus star: both 5 edges on n=3? Build: star(3,0): 5 edges.
	a := MustNew(3)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b, _ := Star(3, 0)
	if a.EdgeCount() == b.EdgeCount() && IsIsomorphic(a, b) {
		t.Errorf("chain and star must differ")
	}
}

func TestOrbitAndAutomorphisms(t *testing.T) {
	// Orbit size × automorphism count = n!.
	star, _ := Star(4, 0)
	orbit, err := OrbitSize(star)
	if err != nil {
		t.Fatalf("OrbitSize: %v", err)
	}
	auts := AutomorphismCount(star)
	if orbit != 4 || auts != 6 {
		t.Errorf("star(4): orbit %d auts %d, want 4 and 3! = 6", orbit, auts)
	}
	if orbit*auts != 24 {
		t.Errorf("orbit·|Aut| = %d, want 4! = 24", orbit*auts)
	}

	clique, _ := Complete(4)
	if got := AutomorphismCount(clique); got != 24 {
		t.Errorf("clique automorphisms = %d, want 24", got)
	}
	cyc, _ := Cycle(5)
	if got := AutomorphismCount(cyc); got != 5 {
		t.Errorf("directed 5-cycle automorphisms = %d, want 5 (rotations)", got)
	}
}
