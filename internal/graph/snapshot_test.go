package graph

import (
	"path/filepath"
	"testing"

	"ksettop/internal/memo"
)

// TestSymClosureSnapshotRoundTrip warms the closure cache, saves a snapshot,
// clears the cache and reloads — the closure must come back identical and as
// a cache hit (no n! sweep).
func TestSymClosureSnapshotRoundTrip(t *testing.T) {
	g, err := UnionOfStars(6, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SymClosure([]Digraph{g})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "memo.snap")
	if err := memo.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	symCache.Clear()
	if err := memo.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}

	before := symCache.Stats()
	got, err := SymClosure([]Digraph{g})
	if err != nil {
		t.Fatal(err)
	}
	after := symCache.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("closure after reload was recomputed (hits %d → %d)", before.Hits, after.Hits)
	}
	if len(got) != len(want) {
		t.Fatalf("closure has %d graphs after reload, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("graph %d differs after round-trip:\n got %v\nwant %v", i, got[i], want[i])
		}
	}
}

func TestDigraphCodecRejectsCorrupt(t *testing.T) {
	if err := restoreSymClosures([]byte{0xff}); err == nil {
		t.Error("truncated payload should be rejected")
	}
	// count=1, key "k", closure size 1, digraph with n=0: invalid.
	bad := []byte{1, 1, 'k', 1, 0}
	if err := restoreSymClosures(bad); err == nil {
		t.Error("digraph with 0 processes should be rejected")
	}
	// count=1, key "k", closure size = huge varint: must error, not panic
	// on the allocation.
	huge := []byte{1, 1, 'k', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if err := restoreSymClosures(huge); err == nil {
		t.Error("oversized closure count should be rejected")
	}
}
