package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ksettop/internal/bits"
)

func TestNewBounds(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Errorf("New(0) should fail")
	}
	if _, err := New(MaxProcs + 1); err == nil {
		t.Errorf("New(%d) should fail", MaxProcs+1)
	}
	g, err := New(4)
	if err != nil {
		t.Fatalf("New(4): %v", err)
	}
	for u := 0; u < 4; u++ {
		if !g.HasEdge(u, u) {
			t.Errorf("missing self-loop at %d", u)
		}
	}
	if got := g.EdgeCount(); got != 4 {
		t.Errorf("EdgeCount = %d, want 4 (self-loops only)", got)
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := MustNew(3)
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Errorf("edge direction wrong after AddEdge")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Errorf("AddEdge out of range should fail")
	}
	if err := g.RemoveEdge(0, 2); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.HasEdge(0, 2) {
		t.Errorf("edge still present after RemoveEdge")
	}
	if err := g.RemoveEdge(1, 1); err == nil {
		t.Errorf("removing a self-loop should fail")
	}
}

func TestInOut(t *testing.T) {
	g := MustNew(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1)
	g.AddEdge(1, 3)

	if got := g.Out(0); got != bits.New(0, 1) {
		t.Errorf("Out(0) = %v", got)
	}
	if got := g.In(1); got != bits.New(0, 1, 2) {
		t.Errorf("In(1) = %v", got)
	}
	if got := g.OutSet(bits.New(0, 1)); got != bits.New(0, 1, 3) {
		t.Errorf("OutSet({0,1}) = %v", got)
	}
	if got := g.InSet(bits.New(1, 3)); got != bits.New(0, 1, 2, 3) {
		t.Errorf("InSet({1,3}) = %v", got)
	}
}

func TestIsSubgraphOfAndUnion(t *testing.T) {
	star, _ := Star(4, 0)
	clique, _ := Complete(4)
	if !star.IsSubgraphOf(clique) {
		t.Errorf("star should be subgraph of clique")
	}
	if clique.IsSubgraphOf(star) {
		t.Errorf("clique is not a subgraph of star")
	}
	if !star.IsSubgraphOf(star) {
		t.Errorf("subgraph relation should be reflexive")
	}

	cyc, _ := Cycle(4)
	u, err := star.Union(cyc)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if !star.IsSubgraphOf(u) || !cyc.IsSubgraphOf(u) {
		t.Errorf("union must contain both operands")
	}
	other := MustNew(5)
	if _, err := star.Union(other); err == nil {
		t.Errorf("union of mismatched sizes should fail")
	}
}

func TestGenerators(t *testing.T) {
	t.Run("complete", func(t *testing.T) {
		g, _ := Complete(5)
		if g.EdgeCount() != 25 {
			t.Errorf("clique edge count = %d, want 25", g.EdgeCount())
		}
	})
	t.Run("star", func(t *testing.T) {
		g, _ := Star(5, 2)
		if g.Out(2) != bits.Full(5) {
			t.Errorf("center must broadcast: %v", g.Out(2))
		}
		for u := 0; u < 5; u++ {
			if u != 2 && g.Out(u) != bits.Single(u) {
				t.Errorf("leaf %d should be silent: %v", u, g.Out(u))
			}
		}
		if _, err := Star(5, 7); err == nil {
			t.Errorf("out-of-range center should fail")
		}
	})
	t.Run("union of stars", func(t *testing.T) {
		g, _ := UnionOfStars(5, []int{1, 3})
		if g.Out(1) != bits.Full(5) || g.Out(3) != bits.Full(5) {
			t.Errorf("both centers must broadcast")
		}
		if g.Out(0) != bits.Single(0) {
			t.Errorf("non-center must be silent")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		g, _ := Cycle(4)
		for u := 0; u < 4; u++ {
			if g.Out(u) != bits.New(u, (u+1)%4) {
				t.Errorf("cycle out(%d) = %v", u, g.Out(u))
			}
		}
		if !g.IsStronglyConnected() {
			t.Errorf("cycle should be strongly connected")
		}
	})
	t.Run("path", func(t *testing.T) {
		g, _ := DirectedPath(4)
		if g.IsStronglyConnected() {
			t.Errorf("path should not be strongly connected")
		}
		if !g.HasEdge(0, 1) || g.HasEdge(3, 0) {
			t.Errorf("path edges wrong")
		}
	})
	t.Run("bidirectional ring", func(t *testing.T) {
		g, _ := BidirectionalRing(5)
		for u := 0; u < 5; u++ {
			if g.Out(u).Count() != 3 {
				t.Errorf("ring out-degree = %d, want 3", g.Out(u).Count())
			}
		}
	})
	t.Run("out tree", func(t *testing.T) {
		g, _ := OutTree(7)
		if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(2, 6) {
			t.Errorf("tree edges wrong")
		}
		if g.HasEdge(1, 0) {
			t.Errorf("tree should be directed away from root")
		}
	})
	t.Run("bipartite", func(t *testing.T) {
		g, _ := BipartiteCross(5, 2)
		if g.Out(0) != bits.New(0, 2, 3, 4) {
			t.Errorf("left node out = %v", g.Out(0))
		}
		if g.Out(3) != bits.New(0, 1, 3) {
			t.Errorf("right node out = %v", g.Out(3))
		}
		if _, err := BipartiteCross(4, 5); err == nil {
			t.Errorf("bad split should fail")
		}
	})
	t.Run("from adjacency", func(t *testing.T) {
		g, err := FromAdjacency([][]int{{1}, {2}, {0}})
		if err != nil {
			t.Fatalf("FromAdjacency: %v", err)
		}
		cyc, _ := Cycle(3)
		if !g.Equal(cyc) {
			t.Errorf("FromAdjacency != Cycle(3)")
		}
		if _, err := FromAdjacency([][]int{{5}}); err == nil {
			t.Errorf("out-of-range adjacency should fail")
		}
	})
}

func TestPredicates(t *testing.T) {
	star, _ := Star(4, 0)
	if !star.HasKernel() {
		t.Errorf("star has a broadcaster")
	}
	cyc, _ := Cycle(4)
	if cyc.HasKernel() {
		t.Errorf("cycle has no broadcaster")
	}
	if !star.IsNonSplit() {
		t.Errorf("star is non-split (everyone hears the center)")
	}
	// Two disjoint halves that never hear a common process.
	g := MustNew(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.IsNonSplit() {
		t.Errorf("split graph reported non-split")
	}
}

func TestProductDefinition(t *testing.T) {
	// Product against a direct O(n^3) reference implementation.
	ref := func(g, h Digraph) Digraph {
		p := MustNew(g.N())
		for u := 0; u < g.N(); u++ {
			for w := 0; w < g.N(); w++ {
				if !g.HasEdge(u, w) {
					continue
				}
				for v := 0; v < g.N(); v++ {
					if h.HasEdge(w, v) {
						p.AddEdge(u, v)
					}
				}
			}
		}
		return p
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g, _ := Random(5, 0.3, rng)
		h, _ := Random(5, 0.3, rng)
		got, err := Product(g, h)
		if err != nil {
			t.Fatalf("Product: %v", err)
		}
		if want := ref(g, h); !got.Equal(want) {
			t.Fatalf("Product mismatch:\n got %v\nwant %v", got, want)
		}
	}
}

func TestProductContainsOperands(t *testing.T) {
	// Self-loops make E(g) ∪ E(h) ⊆ E(g⊗h).
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		g, _ := Random(5, 0.25, rng)
		h, _ := Random(5, 0.25, rng)
		p, _ := Product(g, h)
		if !g.IsSubgraphOf(p) || !h.IsSubgraphOf(p) {
			t.Fatalf("product must contain both operands")
		}
	}
}

func TestPower(t *testing.T) {
	cyc, _ := Cycle(6)
	sq, err := Power(cyc, 2)
	if err != nil {
		t.Fatalf("Power: %v", err)
	}
	// Squared cycle: u reaches u, u+1, u+2.
	for u := 0; u < 6; u++ {
		want := bits.New(u, (u+1)%6, (u+2)%6)
		if sq.Out(u) != want {
			t.Errorf("cycle² out(%d) = %v, want %v", u, sq.Out(u), want)
		}
	}
	// Power(g, n-1) of a cycle is the clique's reachability... Power(cyc,5):
	// u reaches u..u+5 = everyone.
	full, _ := Power(cyc, 5)
	clique, _ := Complete(6)
	if !full.Equal(clique) {
		t.Errorf("cycle^5 on 6 nodes should be complete")
	}
	if _, err := Power(cyc, 0); err == nil {
		t.Errorf("Power(g,0) should fail")
	}
	one, _ := Power(cyc, 1)
	if !one.Equal(cyc) {
		t.Errorf("Power(g,1) should equal g")
	}
}

func TestProductSet(t *testing.T) {
	s1, _ := Star(3, 0)
	s2, _ := Star(3, 1)
	gens := []Digraph{s1, s2}
	prods, err := ProductSet(gens, 2)
	if err != nil {
		t.Fatalf("ProductSet: %v", err)
	}
	// Star products: star_i ⊗ star_j. Out-rows: center i broadcasts in first
	// round; then in second round every holder of i's value... compute via
	// reference: result must contain each pairwise product.
	seen := make(map[string]bool)
	for _, p := range prods {
		seen[p.Key()] = true
	}
	for _, a := range gens {
		for _, b := range gens {
			p, _ := Product(a, b)
			if !seen[p.Key()] {
				t.Errorf("missing product %v", p)
			}
		}
	}
	if _, err := ProductSet(nil, 2); err == nil {
		t.Errorf("empty generator list should fail")
	}
	if _, err := ProductSet(gens, 0); err == nil {
		t.Errorf("r=0 should fail")
	}
}

func TestPermute(t *testing.T) {
	star, _ := Star(4, 0)
	p, err := Permute(star, []int{2, 1, 0, 3})
	if err != nil {
		t.Fatalf("Permute: %v", err)
	}
	want, _ := Star(4, 2)
	if !p.Equal(want) {
		t.Errorf("permuted star center should move: %v", p)
	}
	if _, err := Permute(star, []int{0, 0, 1, 2}); err == nil {
		t.Errorf("non-permutation should fail")
	}
	if _, err := Permute(star, []int{0, 1}); err == nil {
		t.Errorf("wrong-length permutation should fail")
	}
}

func TestPermutationsCount(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 6, 4: 24, 5: 120}
	for n, expected := range want {
		count := 0
		seen := make(map[string]bool)
		Permutations(n, func(perm []int) bool {
			count++
			key := ""
			for _, v := range perm {
				key += string(rune('a' + v))
			}
			seen[key] = true
			return true
		})
		if count != expected || len(seen) != expected {
			t.Errorf("Permutations(%d): %d calls, %d distinct, want %d", n, count, len(seen), expected)
		}
	}
}

func TestSymClosure(t *testing.T) {
	star, _ := Star(4, 0)
	closure, err := SymClosure([]Digraph{star})
	if err != nil {
		t.Fatalf("SymClosure: %v", err)
	}
	if len(closure) != 4 {
		t.Errorf("Sym(star on 4) has %d graphs, want 4 (one per center)", len(closure))
	}
	sym, err := IsSymmetric(closure)
	if err != nil {
		t.Fatalf("IsSymmetric: %v", err)
	}
	if !sym {
		t.Errorf("closure should be symmetric")
	}
	sym, _ = IsSymmetric([]Digraph{star})
	if sym {
		t.Errorf("single star is not symmetric")
	}
	// Clique is alone in its orbit.
	clique, _ := Complete(4)
	closure, _ = SymClosure([]Digraph{clique})
	if len(closure) != 1 {
		t.Errorf("Sym(clique) has %d graphs, want 1", len(closure))
	}
	if _, err := SymClosure(nil); err == nil {
		t.Errorf("empty generator list should fail")
	}
}

func TestSymClosureUnionOfStars(t *testing.T) {
	// Sym(union of s stars on n procs) should have C(n,s) members.
	g, _ := UnionOfStars(5, []int{0, 1})
	closure, err := SymClosure([]Digraph{g})
	if err != nil {
		t.Fatalf("SymClosure: %v", err)
	}
	if len(closure) != 10 {
		t.Errorf("Sym(2 stars on 5) has %d graphs, want C(5,2)=10", len(closure))
	}
}

func TestKeyStringDOT(t *testing.T) {
	g1, _ := Cycle(4)
	g2, _ := Cycle(4)
	g3, _ := Star(4, 0)
	if g1.Key() != g2.Key() {
		t.Errorf("equal graphs must have equal keys")
	}
	if g1.Key() == g3.Key() {
		t.Errorf("distinct graphs must have distinct keys")
	}
	if s := g1.String(); !strings.Contains(s, "0→{0,1}") {
		t.Errorf("String() = %q", s)
	}
	dot := g3.DOT("star")
	if !strings.Contains(dot, "p0 -> p1") || strings.Contains(dot, "p0 -> p0") {
		t.Errorf("DOT output wrong:\n%s", dot)
	}
}

func TestQuickProductAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	assoc := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := Random(4, 0.3, r)
		b, _ := Random(4, 0.3, r)
		c, _ := Random(4, 0.3, r)
		ab, _ := Product(a, b)
		bc, _ := Product(b, c)
		l, _ := Product(ab, c)
		rr, _ := Product(a, bc)
		return l.Equal(rr)
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("product associativity failed: %v", err)
	}
}

func TestQuickPermutePreservesCounts(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := Random(5, 0.4, r)
		perm := r.Perm(5)
		p, err := Permute(g, perm)
		if err != nil {
			return false
		}
		if p.EdgeCount() != g.EdgeCount() {
			return false
		}
		// In/out degree multisets preserved.
		return p.Out(perm[0]).Count() == g.Out(0).Count() &&
			p.In(perm[3]).Count() == g.In(3).Count()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("permutation invariants failed: %v", err)
	}
}

func TestReachAndStrongConnectivity(t *testing.T) {
	g := MustNew(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if got := g.reachFrom(0); got != bits.New(0, 1, 2) {
		t.Errorf("reachFrom(0) = %v", got)
	}
	if g.IsStronglyConnected() {
		t.Errorf("graph is not strongly connected")
	}
	clique, _ := Complete(4)
	if !clique.IsStronglyConnected() {
		t.Errorf("clique is strongly connected")
	}
}
