package combinat

import (
	"fmt"

	"ksettop/internal/graph"
)

// Sequence is a covering-number sequence (Def 6.6 / Def 6.8) together with
// whether it reaches n and at which index (1-based) it first does.
type Sequence struct {
	// Values holds s_1, s_2, … up to the first n or the first fixpoint.
	Values []int
	// ReachesAll reports whether the sequence reaches n.
	ReachesAll bool
	// Round is the 1-based index at which the sequence first equals n
	// (0 when ReachesAll is false). Per Thm 6.7/6.9, i-set agreement is
	// solvable in Round rounds when ReachesAll holds.
	Round int
}

// CoveringSequence returns the i-th covering-number sequence of a single
// graph G (Def 6.6):
//
//	s_1 = cov_i(G)
//	s_{k+1} = n          if s_k ≥ γ_eq(G)
//	          cov_{s_k}(G)  otherwise
//
// Self-loops make the sequence non-decreasing, so it either reaches n or
// stabilizes at a fixpoint below n; iteration stops there.
func CoveringSequence(g graph.Digraph, i int) (Sequence, error) {
	return coveringSequence(i, g.N(), EqualDominationNumber(g), func(j int) (int, error) {
		return CoveringNumber(g, j)
	})
}

// CoveringSequenceSet returns the i-th covering-number sequence of a set of
// graphs (Def 6.8):
//
//	s_1 = min_G cov_i(G)
//	s_{k+1} = n               if s_k ≥ max_G γ_eq(G)
//	          min_G cov_{s_k}(G)  otherwise
func CoveringSequenceSet(gens []graph.Digraph, i int) (Sequence, error) {
	if len(gens) == 0 {
		return Sequence{}, fmt.Errorf("combinat: covering sequence of empty graph set")
	}
	eq, err := EqualDominationNumberSet(gens)
	if err != nil {
		return Sequence{}, err
	}
	return coveringSequence(i, gens[0].N(), eq, func(j int) (int, error) {
		return CoveringNumberSet(gens, j)
	})
}

func coveringSequence(i, n, gammaEq int, cov func(int) (int, error)) (Sequence, error) {
	if i < 1 || i > n {
		return Sequence{}, fmt.Errorf("combinat: sequence index %d outside [1,%d]", i, n)
	}
	var seq Sequence
	prev := i
	for round := 1; round <= n+1; round++ {
		var next int
		if prev >= gammaEq {
			next = n
		} else {
			c, err := cov(prev)
			if err != nil {
				return Sequence{}, err
			}
			next = c
		}
		seq.Values = append(seq.Values, next)
		if next == n {
			seq.ReachesAll = true
			seq.Round = round
			return seq, nil
		}
		if next == prev {
			return seq, nil // fixpoint below n: never reaches everyone
		}
		prev = next
	}
	// Values strictly increase until a fixpoint or n, so n+1 steps always
	// suffice; this is unreachable but kept for safety.
	return seq, nil
}
