package combinat

import (
	"testing"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
	"ksettop/internal/par"
)

// bruteCoveringNumberSet is the Def 3.6 oracle with no short-circuits at
// all: min over graphs of min over P of |Out(P)|.
func bruteCoveringNumberSet(gens []graph.Digraph, i int) int {
	best := -1
	for _, g := range gens {
		n := g.N()
		bits.Combinations(n, i, func(p bits.Set) bool {
			if c := g.OutSet(p).Count(); best < 0 || c < best {
				best = c
			}
			return true
		})
	}
	return best
}

// TestCoveringNumberSetFloorShortCircuit is the regression test for the
// floor short-circuit: on a 2-generator model the min over graphs must match
// the oracle in both generator orders — in particular when the FIRST graph
// already attains the floor (the sweep skips the second graph) and when only
// the SECOND one does (the sweep must not stop early).
func TestCoveringNumberSetFloorShortCircuit(t *testing.T) {
	cyc, err := graph.Cycle(6) // cov_2 = 3 > floor
	if err != nil {
		t.Fatal(err)
	}
	star, err := graph.Star(6, 0) // two leaves cover only themselves: cov_2 = 2 = floor
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		want := bruteCoveringNumberSet([]graph.Digraph{cyc, star}, i)
		for _, gens := range [][]graph.Digraph{{cyc, star}, {star, cyc}} {
			got, err := CoveringNumberSet(gens, i)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("cov_%d(%v) = %d, want %d", i, gens, got, want)
			}
		}
	}
}

// TestParallelSweepsDeterministic pins every sharded sweep to its
// single-worker result, on instances big enough to actually fan out
// (C(16,8) = 12870 ranks).
func TestParallelSweepsDeterministic(t *testing.T) {
	ring, err := graph.BidirectionalRing(16)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := graph.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	stars2, err := graph.UnionOfStars(7, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	starGens, err := graph.SymClosure([]graph.Digraph{stars2})
	if err != nil {
		t.Fatal(err)
	}

	type snapshot struct {
		minDom    bits.Set
		gamma     int
		cov       []int
		gammaDist int
		maxCov    []int
		maxCovOK  []bool
	}
	capture := func() snapshot {
		var s snapshot
		s.minDom, s.gamma = MinDominatingSet(ring)
		for i := 1; i <= 16; i += 3 {
			c, err := CoveringNumber(cyc, i)
			if err != nil {
				t.Fatal(err)
			}
			s.cov = append(s.cov, c)
		}
		gd, err := DistributedDominationNumber(starGens)
		if err != nil {
			t.Fatal(err)
		}
		s.gammaDist = gd
		for i := 1; i <= 4; i++ {
			mc, ok, err := MaxCoveringNumberEffective(starGens, i)
			if err != nil {
				t.Fatal(err)
			}
			s.maxCov = append(s.maxCov, mc)
			s.maxCovOK = append(s.maxCovOK, ok)
		}
		return s
	}

	par.SetParallelism(1)
	want := capture()
	par.SetParallelism(0)
	for _, workers := range []int{2, 4, 8} {
		par.SetParallelism(workers)
		got := capture()
		par.SetParallelism(0)
		if got.minDom != want.minDom || got.gamma != want.gamma {
			t.Errorf("workers=%d: MinDominatingSet = (%v,%d), want (%v,%d)",
				workers, got.minDom, got.gamma, want.minDom, want.gamma)
		}
		for i := range want.cov {
			if got.cov[i] != want.cov[i] {
				t.Errorf("workers=%d: cov[%d] = %d, want %d", workers, i, got.cov[i], want.cov[i])
			}
		}
		if got.gammaDist != want.gammaDist {
			t.Errorf("workers=%d: γ_dist = %d, want %d", workers, got.gammaDist, want.gammaDist)
		}
		for i := range want.maxCov {
			if got.maxCov[i] != want.maxCov[i] || got.maxCovOK[i] != want.maxCovOK[i] {
				t.Errorf("workers=%d: max-cov[%d] = (%d,%v), want (%d,%v)",
					workers, i, got.maxCov[i], got.maxCovOK[i], want.maxCov[i], want.maxCovOK[i])
			}
		}
	}
}
