package combinat

import (
	"testing"

	"ksettop/internal/graph"
)

// TestSymClosedFormVsExpansion cross-checks the Corollary 5.5 closed form
// for max-cov_t(Sym(G)) against the explicit symmetric-closure computation.
// The closed form is a worst-case permutation argument, so it must never be
// smaller than the explicit effective value; on the star family it is exact.
func TestSymClosedFormVsExpansion(t *testing.T) {
	star4, _ := graph.Star(4, 0)
	stars42, _ := graph.UnionOfStars(4, []int{0, 1})
	cases := []struct {
		name  string
		g     graph.Digraph
		exact bool
	}{
		{"star(4)", star4, true},
		{"2-stars(4)", stars42, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sym, err := graph.SymClosure([]graph.Digraph{c.g})
			if err != nil {
				t.Fatalf("SymClosure: %v", err)
			}
			gd, _ := DistributedDominationNumberEffective(sym)
			for tt := 1; tt < gd; tt++ {
				explicit, okE, err := MaxCoveringNumberEffective(sym, tt)
				if err != nil {
					t.Fatalf("MaxCoveringNumberEffective: %v", err)
				}
				closed, okC, err := SymMaxCovering(c.g, tt)
				if err != nil {
					t.Fatalf("SymMaxCovering: %v", err)
				}
				if okE != okC {
					t.Errorf("t=%d: definedness mismatch explicit=%v closed=%v", tt, okE, okC)
					continue
				}
				if !okE {
					continue
				}
				if closed < explicit {
					t.Errorf("t=%d: closed form %d < explicit %d (must over-approximate)",
						tt, closed, explicit)
				}
				if c.exact && closed != explicit {
					t.Errorf("t=%d: closed form %d != explicit %d on star family",
						tt, closed, explicit)
				}
			}
		})
	}
}

// TestEffectiveDominatesLiteral: the effective max-cov can only be larger
// than the literal Def 5.3 value (more witness subsets are allowed).
func TestEffectiveDominatesLiteral(t *testing.T) {
	g1, _ := graph.Star(4, 0)
	g2, _ := graph.Cycle(4)
	set := []graph.Digraph{g1, g2}
	gdLit, _ := DistributedDominationNumber(set)
	for i := 1; i < gdLit; i++ {
		lit, okL, err := MaxCoveringNumber(set, i)
		if err != nil {
			t.Fatalf("MaxCoveringNumber: %v", err)
		}
		eff, okE, err := MaxCoveringNumberEffective(set, i)
		if err != nil {
			t.Fatalf("MaxCoveringNumberEffective: %v", err)
		}
		if okL && (!okE || eff < lit) {
			t.Errorf("i=%d: effective %d(%v) < literal %d(%v)", i, eff, okE, lit, okL)
		}
	}
}

// TestGammaDistProductMonotone reproduces the Appendix G fact used by
// Thm 6.13: γ_dist(S^r) = γ_dist(S) for star-union models (star graphs are
// idempotent under the product).
func TestGammaDistProductMonotone(t *testing.T) {
	g, _ := graph.UnionOfStars(4, []int{0, 1})
	sym, _ := graph.SymClosure([]graph.Digraph{g})
	prods, err := graph.ProductSet(sym, 2)
	if err != nil {
		t.Fatalf("ProductSet: %v", err)
	}
	base, _ := DistributedDominationNumberEffective(sym)
	squared, _ := DistributedDominationNumberEffective(prods)
	if base != squared {
		t.Errorf("γ_dist(S²) = %d, want γ_dist(S) = %d (star idempotence)", squared, base)
	}
}
