package combinat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
)

// bruteEqualDomination is the Def 3.3 oracle: the least i such that every
// i-subset dominates.
func bruteEqualDomination(g graph.Digraph) int {
	n := g.N()
	full := g.Procs()
	for i := 1; i <= n; i++ {
		all := true
		bits.Combinations(n, i, func(p bits.Set) bool {
			if g.OutSet(p) != full {
				all = false
			}
			return all
		})
		if all {
			return i
		}
	}
	return n
}

func TestDominationNumberFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    func() graph.Digraph
		want int
	}{
		{"clique 5", func() graph.Digraph { g, _ := graph.Complete(5); return g }, 1},
		{"star 6", func() graph.Digraph { g, _ := graph.Star(6, 0); return g }, 1},
		{"loops only 4", func() graph.Digraph { return graph.MustNew(4) }, 4},
		{"cycle 4", func() graph.Digraph { g, _ := graph.Cycle(4); return g }, 2},
		{"cycle 5", func() graph.Digraph { g, _ := graph.Cycle(5); return g }, 3},
		{"cycle 6", func() graph.Digraph { g, _ := graph.Cycle(6); return g }, 3},
		{"2 stars on 5", func() graph.Digraph { g, _ := graph.UnionOfStars(5, []int{0, 1}); return g }, 1},
		{"bidi ring 6", func() graph.Digraph { g, _ := graph.BidirectionalRing(6); return g }, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.g()
			if got := DominationNumber(g); got != tt.want {
				t.Errorf("γ = %d, want %d", got, tt.want)
			}
			p, size := MinDominatingSet(g)
			if size != tt.want || p.Count() != size {
				t.Errorf("MinDominatingSet size = %d, want %d", size, tt.want)
			}
			if g.OutSet(p) != g.Procs() {
				t.Errorf("MinDominatingSet %v does not dominate", p)
			}
		})
	}
}

func TestEqualDominationFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    func() graph.Digraph
		want int
	}{
		{"clique 5", func() graph.Digraph { g, _ := graph.Complete(5); return g }, 1},
		{"star 5 (center hears only itself)", func() graph.Digraph { g, _ := graph.Star(5, 0); return g }, 5},
		{"cycle 6", func() graph.Digraph { g, _ := graph.Cycle(6); return g }, 5},
		{"loops only 4", func() graph.Digraph { return graph.MustNew(4) }, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.g()
			if got := EqualDominationNumber(g); got != tt.want {
				t.Errorf("γ_eq = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEqualDominationClosedFormMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 80; trial++ {
		g, _ := graph.Random(5, rng.Float64(), rng)
		want := bruteEqualDomination(g)
		if got := EqualDominationNumber(g); got != want {
			t.Fatalf("closed form γ_eq = %d, brute force = %d, graph %v", got, want, g)
		}
	}
}

func TestEqualDominationSet(t *testing.T) {
	star, _ := graph.Star(4, 0)
	clique, _ := graph.Complete(4)
	got, err := EqualDominationNumberSet([]graph.Digraph{star, clique})
	if err != nil {
		t.Fatalf("EqualDominationNumberSet: %v", err)
	}
	if got != 4 {
		t.Errorf("γ_eq(S) = %d, want max(4,1) = 4", got)
	}
	if _, err := EqualDominationNumberSet(nil); err == nil {
		t.Errorf("empty set should fail")
	}
}

func TestCoveringNumberFamilies(t *testing.T) {
	star, _ := graph.Star(5, 0)
	cyc, _ := graph.Cycle(6)

	// Star: leaves are silent, so i leaves cover exactly themselves.
	for i := 1; i <= 4; i++ {
		got, err := CoveringNumber(star, i)
		if err != nil {
			t.Fatalf("CoveringNumber: %v", err)
		}
		if got != i {
			t.Errorf("cov_%d(star) = %d, want %d", i, got, i)
		}
	}
	// cov_n: every size-n set includes the center, so covers everyone.
	if got, _ := CoveringNumber(star, 5); got != 5 {
		t.Errorf("cov_5(star) = %d, want 5", got)
	}

	// Cycle: i consecutive processes cover i+1 processes (for i < n).
	for i := 1; i <= 5; i++ {
		got, _ := CoveringNumber(cyc, i)
		if got != i+1 {
			t.Errorf("cov_%d(cycle6) = %d, want %d", i, got, i+1)
		}
	}
	if got, _ := CoveringNumber(cyc, 6); got != 6 {
		t.Errorf("cov_6(cycle6) = %d, want 6", got)
	}

	if _, err := CoveringNumber(star, 0); err == nil {
		t.Errorf("cov_0 should fail")
	}
	if _, err := CoveringNumber(star, 6); err == nil {
		t.Errorf("cov_{n+1} should fail")
	}
}

func TestCoveringNumberSet(t *testing.T) {
	star, _ := graph.Star(4, 0)
	clique, _ := graph.Complete(4)
	got, err := CoveringNumberSet([]graph.Digraph{clique, star}, 2)
	if err != nil {
		t.Fatalf("CoveringNumberSet: %v", err)
	}
	if got != 2 {
		t.Errorf("cov_2(S) = %d, want min(4,2) = 2", got)
	}
	if _, err := CoveringNumberSet(nil, 1); err == nil {
		t.Errorf("empty set should fail")
	}
}

func TestFigure1Quantities(t *testing.T) {
	// Figure 1(a): the star on 4 processes (symmetric closure).
	star, _ := graph.Star(4, 0)
	symStar, err := graph.SymClosure([]graph.Digraph{star})
	if err != nil {
		t.Fatalf("SymClosure: %v", err)
	}
	eq, _ := EqualDominationNumberSet(symStar)
	if eq != 4 {
		t.Errorf("γ_eq(Sym(star)) = %d, want 4 (= n)", eq)
	}

	// Figure 1(b) (see DESIGN.md): broadcaster p1 plus 3-cycle p2→p3→p4→p2.
	fig1b, err := graph.FromAdjacency([][]int{{0, 1, 2, 3}, {2}, {3}, {1}})
	if err != nil {
		t.Fatalf("FromAdjacency: %v", err)
	}
	symB, _ := graph.SymClosure([]graph.Digraph{fig1b})
	eqB, _ := EqualDominationNumberSet(symB)
	if eqB != 4 {
		t.Errorf("γ_eq(Sym(fig1b)) = %d, want 4", eqB)
	}
	cov2, _ := CoveringNumberSet(symB, 2)
	if cov2 != 3 {
		t.Errorf("cov_2(Sym(fig1b)) = %d, want 3 (paper §3.2)", cov2)
	}
	// Covering upper bound i + (n − cov_i) = 2 + (4−3) = 3 beats γ_eq = 4.
	if bound := 2 + (4 - cov2); bound != 3 {
		t.Errorf("covering bound = %d, want 3", bound)
	}
}

func TestDistributedDominationSingletonEqualsGammaEq(t *testing.T) {
	// For |S| = 1, Def 5.2 degenerates to Def 3.3.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		g, _ := graph.Random(5, rng.Float64(), rng)
		gd, err := DistributedDominationNumber([]graph.Digraph{g})
		if err != nil {
			t.Fatalf("DistributedDominationNumber: %v", err)
		}
		if eq := EqualDominationNumber(g); gd != eq {
			t.Fatalf("γ_dist({G}) = %d, γ_eq(G) = %d; must be equal", gd, eq)
		}
	}
}

func TestDistributedDominationStarUnions(t *testing.T) {
	// Paper §5 / Appendix G claim γ_dist(S) = n − s + 1 for the symmetric
	// union-of-s-stars model. That value is reproduced by the *effective*
	// semantics (single-graph failure witnesses, = γ_eq(S)); the literal
	// Def 5.2 (joint domination of exact-size graph subsets) yields smaller
	// values, recorded here as regressions. See DESIGN.md.
	cases := []struct {
		n, s    int
		literal int
	}{
		{4, 1, 3}, {4, 2, 2}, {5, 1, 3}, {5, 2, 3}, {5, 3, 2},
	}
	for _, c := range cases {
		centers := make([]int, c.s)
		for i := range centers {
			centers[i] = i
		}
		g, _ := graph.UnionOfStars(c.n, centers)
		sym, err := graph.SymClosure([]graph.Digraph{g})
		if err != nil {
			t.Fatalf("SymClosure: %v", err)
		}
		gd, err := DistributedDominationNumber(sym)
		if err != nil {
			t.Fatalf("DistributedDominationNumber: %v", err)
		}
		if gd != c.literal {
			t.Errorf("literal γ_dist(Sym(%d stars on %d)) = %d, want %d", c.s, c.n, gd, c.literal)
		}
		eff, err := DistributedDominationNumberEffective(sym)
		if err != nil {
			t.Fatalf("DistributedDominationNumberEffective: %v", err)
		}
		if want := c.n - c.s + 1; eff != want {
			t.Errorf("effective γ_dist(Sym(%d stars on %d)) = %d, want %d (paper)", c.s, c.n, eff, want)
		}
		if eff < gd {
			t.Errorf("effective γ_dist %d < literal %d; effective must dominate", eff, gd)
		}
	}
}

func TestMaxCoveringStarUnions(t *testing.T) {
	// Paper §5: for the star-union model, max-cov_t(S) = t and M_t = n−t
	// for every t < γ_dist(S) = n−s+1 (= 4 here). The effective variants
	// reproduce the paper's range; the literal Def 5.3 agrees wherever it is
	// defined (t < literal γ_dist = 3).
	g, _ := graph.UnionOfStars(5, []int{0, 1})
	sym, _ := graph.SymClosure([]graph.Digraph{g})

	gdLit, _ := DistributedDominationNumber(sym)
	if gdLit != 3 {
		t.Fatalf("literal γ_dist = %d, want 3", gdLit)
	}
	for tIdx := 1; tIdx < gdLit; tIdx++ {
		mc, ok, err := MaxCoveringNumber(sym, tIdx)
		if err != nil || !ok {
			t.Fatalf("MaxCoveringNumber(%d): ok=%v err=%v", tIdx, ok, err)
		}
		if mc != tIdx {
			t.Errorf("literal max-cov_%d = %d, want %d", tIdx, mc, tIdx)
		}
		m, ok, _ := MaxCoveringCoefficient(sym, tIdx)
		if !ok || m != 5-tIdx {
			t.Errorf("literal M_%d = %d (ok=%v), want %d", tIdx, m, ok, 5-tIdx)
		}
	}
	if _, ok, _ := MaxCoveringNumber(sym, gdLit); ok {
		t.Errorf("literal max-cov_%d should be undefined at literal γ_dist", gdLit)
	}

	gdEff, _ := DistributedDominationNumberEffective(sym)
	if gdEff != 4 {
		t.Fatalf("effective γ_dist = %d, want 4 (= n−s+1)", gdEff)
	}
	for tIdx := 1; tIdx < gdEff; tIdx++ {
		mc, ok, err := MaxCoveringNumberEffective(sym, tIdx)
		if err != nil || !ok {
			t.Fatalf("MaxCoveringNumberEffective(%d): ok=%v err=%v", tIdx, ok, err)
		}
		if mc != tIdx {
			t.Errorf("effective max-cov_%d = %d, want %d (paper)", tIdx, mc, tIdx)
		}
		m, ok, _ := MaxCoveringCoefficientEffective(sym, tIdx)
		if !ok || m != 5-tIdx {
			t.Errorf("effective M_%d = %d (ok=%v), want %d (paper)", tIdx, m, ok, 5-tIdx)
		}
	}
	if _, ok, _ := MaxCoveringNumberEffective(sym, gdEff); ok {
		t.Errorf("effective max-cov_%d should be undefined at γ_eq", gdEff)
	}
}

func TestMaxCoveringCycle(t *testing.T) {
	cyc, _ := graph.Cycle(6)
	// Single cycle: a non-dominating P of size 2 spread apart covers 4.
	mc, ok, err := MaxCoveringNumber([]graph.Digraph{cyc}, 2)
	if err != nil || !ok {
		t.Fatalf("MaxCoveringNumber: ok=%v err=%v", ok, err)
	}
	if mc != 4 {
		t.Errorf("max-cov_2(cycle6) = %d, want 4", mc)
	}
	if _, _, err := MaxCoveringNumber([]graph.Digraph{cyc}, 0); err == nil {
		t.Errorf("index 0 should fail")
	}
	if _, _, err := MaxCoveringNumber(nil, 1); err == nil {
		t.Errorf("empty set should fail")
	}
}

func TestSymClosedForms(t *testing.T) {
	// Star: max-cov_t({star}) = t, so the symmetric closed form stays t and
	// M_t = n − t.
	star, _ := graph.Star(5, 0)
	for tIdx := 1; tIdx <= 3; tIdx++ {
		mc, ok, err := SymMaxCovering(star, tIdx)
		if err != nil || !ok {
			t.Fatalf("SymMaxCovering: ok=%v err=%v", ok, err)
		}
		if mc != tIdx {
			t.Errorf("sym max-cov_%d(star) = %d, want %d", tIdx, mc, tIdx)
		}
		m, ok, _ := SymMaxCoveringCoefficient(star, tIdx)
		if !ok || m != 5-tIdx {
			t.Errorf("sym M_%d(star) = %d, want %d", tIdx, m, 5-tIdx)
		}
	}

	// Cycle: max-cov_1({cycle6}) = 2 > 1, so formula gives
	// 1 + 1·(2−1) = 2 and M_1 = ⌊(6−1−1)/(1·1)⌋ = 4.
	cyc, _ := graph.Cycle(6)
	mc, ok, _ := SymMaxCovering(cyc, 1)
	if !ok || mc != 2 {
		t.Errorf("sym max-cov_1(cycle6) = %d, want 2", mc)
	}
	m, ok, _ := SymMaxCoveringCoefficient(cyc, 1)
	if !ok || m != 4 {
		t.Errorf("sym M_1(cycle6) = %d, want 4", m)
	}
}

func TestStarUnionClosedForm(t *testing.T) {
	q, err := StarUnionClosedForm(6, 2)
	if err != nil {
		t.Fatalf("StarUnionClosedForm: %v", err)
	}
	if q.GammaDist != 5 || q.LowerBoundK != 4 || q.UpperBoundK != 5 {
		t.Errorf("closed form = %+v", q)
	}
	if _, err := StarUnionClosedForm(4, 0); err == nil {
		t.Errorf("s=0 should fail")
	}
	if _, err := StarUnionClosedForm(4, 5); err == nil {
		t.Errorf("s>n should fail")
	}
}

func TestCoveringSequenceCycle(t *testing.T) {
	cyc, _ := graph.Cycle(6)
	seq, err := CoveringSequence(cyc, 1)
	if err != nil {
		t.Fatalf("CoveringSequence: %v", err)
	}
	want := []int{2, 3, 4, 5, 6}
	if len(seq.Values) != len(want) {
		t.Fatalf("sequence = %v, want %v", seq.Values, want)
	}
	for i := range want {
		if seq.Values[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", seq.Values, want)
		}
	}
	if !seq.ReachesAll || seq.Round != 5 {
		t.Errorf("ReachesAll=%v Round=%d, want true/5", seq.ReachesAll, seq.Round)
	}

	seq2, _ := CoveringSequence(cyc, 3)
	if !seq2.ReachesAll || seq2.Round != 3 {
		t.Errorf("i=3: ReachesAll=%v Round=%d, want true/3 (4,5,6)", seq2.ReachesAll, seq2.Round)
	}
}

func TestCoveringSequenceStarNeverReaches(t *testing.T) {
	star, _ := graph.Star(5, 0)
	seq, err := CoveringSequence(star, 1)
	if err != nil {
		t.Fatalf("CoveringSequence: %v", err)
	}
	if seq.ReachesAll {
		t.Errorf("star 1-sequence should stall at 1: %v", seq.Values)
	}
	if len(seq.Values) == 0 || seq.Values[len(seq.Values)-1] != 1 {
		t.Errorf("star 1-sequence = %v, want fixpoint at 1", seq.Values)
	}
}

func TestCoveringSequenceSet(t *testing.T) {
	cycA, _ := graph.Cycle(6)
	sym, _ := graph.SymClosure([]graph.Digraph{cycA})
	seq, err := CoveringSequenceSet(sym, 1)
	if err != nil {
		t.Fatalf("CoveringSequenceSet: %v", err)
	}
	// Covering numbers are permutation invariant: same as single cycle.
	if !seq.ReachesAll || seq.Round != 5 {
		t.Errorf("Sym(cycle6) 1-sequence: ReachesAll=%v Round=%d, want true/5", seq.ReachesAll, seq.Round)
	}
	if _, err := CoveringSequenceSet(nil, 1); err == nil {
		t.Errorf("empty set should fail")
	}
	if _, err := CoveringSequence(cycA, 0); err == nil {
		t.Errorf("i=0 should fail")
	}
}

func TestQuickInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}

	// cov_i ≥ i and cov monotone in i; γ ≤ γ_eq; γ_dist ≤ γ_eq.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := graph.Random(5, r.Float64(), r)
		h, _ := graph.Random(5, r.Float64(), r)
		set := []graph.Digraph{g, h}

		prev := 0
		for i := 1; i <= 5; i++ {
			c, err := CoveringNumber(g, i)
			if err != nil || c < i || c < prev {
				return false
			}
			prev = c
		}
		if DominationNumber(g) > EqualDominationNumber(g) {
			return false
		}
		gd, err := DistributedDominationNumber(set)
		if err != nil {
			return false
		}
		eq, _ := EqualDominationNumberSet(set)
		if gd > eq {
			return false
		}
		// max-cov defined exactly below γ_dist, inside [i, n−1].
		for i := 1; i <= 5; i++ {
			mc, ok, err := MaxCoveringNumber(set, i)
			if err != nil {
				return false
			}
			if ok != (i < gd) {
				return false
			}
			if ok && (mc < i || mc > 4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("combinatorial invariants failed: %v", err)
	}
}

func TestQuickSequencesMonotone(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(29))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, _ := graph.Random(5, r.Float64(), r)
		for i := 1; i <= 5; i++ {
			seq, err := CoveringSequence(g, i)
			if err != nil {
				return false
			}
			prev := 0
			for _, v := range seq.Values {
				if v < prev || v > 5 {
					return false
				}
				prev = v
			}
			if seq.ReachesAll != (len(seq.Values) > 0 && seq.Values[len(seq.Values)-1] == 5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("sequence monotonicity failed: %v", err)
	}
}
