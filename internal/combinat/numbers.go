// Package combinat computes the graph-combinatorial numbers the paper's
// bounds are stated in: the domination number γ (Def 3.1), the
// equal-domination number γ_eq (Def 3.3), the covering numbers cov_i
// (Def 3.6), the distributed domination number γ_dist (Def 5.2), the
// max-covering numbers and coefficients (Def 5.3), and the covering-number
// sequences (Def 6.6 / Def 6.8).
//
// All computations are exact. They enumerate subsets, so they are
// exponential in the number of processes — as are the quantities themselves
// (domination is NP-hard); the paper's models use small n. The C(n,i) sweeps
// are sharded into contiguous rank ranges (bits.CombinationsRange) and
// drained by the internal/par worker pool; every reducer either selects the
// lowest-ranked witness or is order-insensitive, so results are identical to
// the sequential sweep regardless of scheduling.
package combinat

import (
	"fmt"
	mathbits "math/bits"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
	"ksettop/internal/par"
)

// pollMask throttles cancellation polling in the innermost sweep loops to
// one atomic load every 64 iterations.
const pollMask = 63

// DominationNumber returns γ(G) (Def 3.1): the size of the smallest set P
// with ⋃_{p∈P} Out(p) = Π. Self-loops guarantee γ(G) ≤ n.
func DominationNumber(g graph.Digraph) int {
	p, _ := MinDominatingSet(g)
	return p.Count()
}

// MinDominatingSet returns a minimum dominating set of g (the first in
// lexicographic mask order) and its size.
func MinDominatingSet(g graph.Digraph) (bits.Set, int) {
	n := g.N()
	full := g.Procs()
	for size := 1; size <= n; size++ {
		rank := par.First(bits.Binomial(n, size), func(from, to int64, ctl *par.Ctl) int64 {
			found, r := int64(-1), from
			bits.CombinationsRange(n, size, from, to, func(p bits.Set) bool {
				if r&pollMask == 0 && ctl.SkipAfter(r) {
					return false
				}
				if g.OutSet(p) == full {
					found = r
					return false
				}
				r++
				return true
			})
			return found
		})
		if rank >= 0 {
			return bits.UnrankCombination(n, size, rank), size
		}
	}
	// Unreachable: Π itself always dominates because of self-loops.
	return full, n
}

// EqualDominationNumber returns γ_eq(G) (Def 3.3 applied to one graph): the
// least i such that EVERY set of i processes dominates G.
//
// It uses the closed form 1 + max_q (n − |In(q)|): a set P fails to dominate
// exactly when it avoids In(q) for some q, and the largest such P is
// Π \ In(q) for the q with fewest in-neighbors. The brute-force definition
// is kept in tests as an oracle.
func EqualDominationNumber(g graph.Digraph) int {
	n := g.N()
	worst := 0
	for q := 0; q < n; q++ {
		if miss := n - g.In(q).Count(); miss > worst {
			worst = miss
		}
	}
	return worst + 1
}

// EqualDominationNumberSet returns γ_eq(S) = max_{G∈S} γ_eq(G) (Def 3.3).
func EqualDominationNumberSet(gens []graph.Digraph) (int, error) {
	if len(gens) == 0 {
		return 0, fmt.Errorf("combinat: γ_eq of empty graph set")
	}
	maxEq := 0
	for _, g := range gens {
		if eq := EqualDominationNumber(g); eq > maxEq {
			maxEq = eq
		}
	}
	return maxEq, nil
}

// CoveringNumber returns cov_i(G) (Def 3.6 applied to one graph): the
// minimum, over sets P of i processes, of |⋃_{p∈P} Out(p)|. Self-loops give
// cov_i(G) ≥ i for EVERY graph, which makes i a sound floor for the
// min-reduction: the sweep stops as soon as some P attains it.
func CoveringNumber(g graph.Digraph, i int) (int, error) {
	n := g.N()
	if i < 1 || i > n {
		return 0, fmt.Errorf("combinat: covering index %d outside [1,%d]", i, n)
	}
	best := par.Min(bits.Binomial(n, i), int64(i), func(from, to int64, ctl *par.Ctl) int64 {
		local, r := int64(n), from
		bits.CombinationsRange(n, i, from, to, func(p bits.Set) bool {
			if r&pollMask == 0 && ctl.Stopped() {
				return false
			}
			r++
			if c := int64(g.OutSet(p).Count()); c < local {
				local = c
				if local <= int64(i) {
					return false // at the floor; nothing below is possible
				}
			}
			return true
		})
		return local
	})
	return int(best), nil
}

// CoveringNumberSet returns cov_i(S) = min_{G∈S} cov_i(G) (Def 3.6).
//
// The floor short-circuit lives HERE, at the min-over-graphs level: each
// per-graph sweep is exact, and because cov_i(G) ≥ i holds for every graph
// (self-loops), the remaining graphs are skipped only once some graph has
// already attained the global floor i — skipping them cannot change the
// minimum. An earlier revision stopped each per-graph sweep at the floor but
// kept scanning the remaining graphs for no benefit.
func CoveringNumberSet(gens []graph.Digraph, i int) (int, error) {
	if len(gens) == 0 {
		return 0, fmt.Errorf("combinat: cov_%d of empty graph set", i)
	}
	best := 0
	for idx, g := range gens {
		c, err := CoveringNumber(g, i)
		if err != nil {
			return 0, err
		}
		if idx == 0 || c < best {
			best = c
		}
		if best == i {
			break // global floor attained; no later graph can go lower
		}
	}
	return best, nil
}

// DistributedDominationNumber returns γ_dist(S) (Def 5.2): the least i > 0
// such that every set P of i processes, together with every subset S_i of S
// of size min(i,|S|), satisfies ⋃_{G∈S_i} Out_G(P) = Π.
//
// Because self-loops make Π dominate everything, γ_dist(S) ≤ n. It also
// holds that γ_dist(S) ≤ γ_eq(S).
func DistributedDominationNumber(gens []graph.Digraph) (int, error) {
	if len(gens) == 0 {
		return 0, fmt.Errorf("combinat: γ_dist of empty graph set")
	}
	n := gens[0].N()
	for i := 1; i <= n; i++ {
		if distDominatesAll(gens, i) {
			return i, nil
		}
	}
	return n, nil
}

// distDominatesAll reports whether every (P, S_i) combination of size i
// jointly dominates Π. The P sweep is sharded; each worker keeps its own
// out-set scratch and the inner graph-subset sweep runs sequentially (the
// number of generators is small next to C(n,i)).
func distDominatesAll(gens []graph.Digraph, i int) bool {
	n := gens[0].N()
	full := bits.Full(n)
	si := i
	if si > len(gens) {
		si = len(gens)
	}
	return !par.Exists(bits.Binomial(n, i), func(from, to int64, ctl *par.Ctl) bool {
		outs := make([]bits.Set, len(gens))
		violated, r := false, from
		bits.CombinationsRange(n, i, from, to, func(p bits.Set) bool {
			if r&pollMask == 0 && ctl.Stopped() {
				return false
			}
			r++
			for gi, g := range gens {
				outs[gi] = g.OutSet(p)
			}
			bits.Combinations(len(gens), si, func(gsel bits.Set) bool {
				var union bits.Set
				for t := uint64(gsel); t != 0; t &= t - 1 {
					union |= outs[mathbits.TrailingZeros64(t)]
				}
				if union != full {
					violated = true
				}
				return !violated
			})
			return !violated
		})
		return violated
	})
}

// DistributedDominationNumberEffective returns the value of γ_dist(S) that
// the paper's worked examples and Theorem 6.13 actually use.
//
// Def 5.2 read literally quantifies over subsets S_i of exactly min(i,|S|)
// graphs dominating *jointly* (that is what DistributedDominationNumber
// computes). The paper's star-union computation (§5 and Appendix G) instead
// exhibits a single non-dominated graph as the failure witness — under that
// semantics the failure condition is "some P of size i fails to dominate
// some graph", which makes γ_dist(S) coincide with γ_eq(S). Only this
// reading reproduces γ_dist = n−s+1 for the union-of-s-stars family and
// hence the tight Theorem 6.13 bound; see DESIGN.md ("Substitutions").
func DistributedDominationNumberEffective(gens []graph.Digraph) (int, error) {
	return EqualDominationNumberSet(gens)
}

// maxCoverScan is the shared shard scanner of the max-covering sweeps: the
// maximum of |⋃_{G∈S_i} Out_G(P)| over the shard's P range and the graph
// subsets selected by sizes, restricted to non-dominating combinations, or
// -1 when every combination in the shard dominates. The n−1 ceiling is exact
// (a non-dominating union misses at least one process), so attaining it
// cancels the remaining shards.
func maxCoverScan(gens []graph.Digraph, n, i int, sizes []int, from, to int64, ctl *par.Ctl) int64 {
	full := bits.Full(n)
	outs := make([]bits.Set, len(gens))
	local, r := int64(-1), from
	bits.CombinationsRange(n, i, from, to, func(p bits.Set) bool {
		if r&pollMask == 0 && ctl.Stopped() {
			return false
		}
		r++
		for gi, g := range gens {
			outs[gi] = g.OutSet(p)
		}
		for _, size := range sizes {
			bits.Combinations(len(gens), size, func(gsel bits.Set) bool {
				var union bits.Set
				for t := uint64(gsel); t != 0; t &= t - 1 {
					union |= outs[mathbits.TrailingZeros64(t)]
				}
				if union != full {
					if c := int64(union.Count()); c > local {
						local = c
					}
				}
				return local < int64(n-1)
			})
			if local == int64(n-1) {
				break
			}
		}
		return local < int64(n-1)
	})
	return local
}

// MaxCoveringNumber returns max-cov_i(S) (Def 5.3): the maximum, over sets P
// of i processes and subsets S_i ⊆ S of size min(i,|S|) whose joint
// out-union is NOT all of Π, of |⋃_{G∈S_i} Out_G(P)|.
//
// The second return is false when no such non-dominating combination exists
// (which happens exactly when i ≥ γ_dist(S)).
func MaxCoveringNumber(gens []graph.Digraph, i int) (int, bool, error) {
	if len(gens) == 0 {
		return 0, false, fmt.Errorf("combinat: max-cov of empty graph set")
	}
	n := gens[0].N()
	if i < 1 || i > n {
		return 0, false, fmt.Errorf("combinat: max-cov index %d outside [1,%d]", i, n)
	}
	si := i
	if si > len(gens) {
		si = len(gens)
	}
	best := par.Max(bits.Binomial(n, i), int64(n-1), func(from, to int64, ctl *par.Ctl) int64 {
		return maxCoverScan(gens, n, i, []int{si}, from, to, ctl)
	})
	if best < 0 {
		return 0, false, nil
	}
	return int(best), true, nil
}

// MaxCoveringNumberEffective returns max-cov_i(S) under the same witness
// semantics as DistributedDominationNumberEffective: the subset S_i may have
// any size in [1, min(i,|S|)] rather than exactly min(i,|S|). It is defined
// for i < γ_eq(S) (second return false otherwise). Allowing smaller witness
// sets only adds candidates, so the effective value is ≥ the literal Def 5.3
// value whenever both are defined.
func MaxCoveringNumberEffective(gens []graph.Digraph, i int) (int, bool, error) {
	if len(gens) == 0 {
		return 0, false, fmt.Errorf("combinat: max-cov of empty graph set")
	}
	n := gens[0].N()
	if i < 1 || i > n {
		return 0, false, fmt.Errorf("combinat: max-cov index %d outside [1,%d]", i, n)
	}
	maxSize := i
	if maxSize > len(gens) {
		maxSize = len(gens)
	}
	sizes := make([]int, 0, maxSize)
	for size := 1; size <= maxSize; size++ {
		sizes = append(sizes, size)
	}
	best := par.Max(bits.Binomial(n, i), int64(n-1), func(from, to int64, ctl *par.Ctl) int64 {
		return maxCoverScan(gens, n, i, sizes, from, to, ctl)
	})
	if best < 0 {
		return 0, false, nil
	}
	return int(best), true, nil
}

// MaxCoveringCoefficientEffective returns M_i(S) computed from
// MaxCoveringNumberEffective, with the Def 5.3 formula.
func MaxCoveringCoefficientEffective(gens []graph.Digraph, i int) (int, bool, error) {
	mc, ok, err := MaxCoveringNumberEffective(gens, i)
	if err != nil || !ok {
		return 0, ok, err
	}
	n := gens[0].N()
	if mc == i {
		return n - i, true, nil
	}
	return (n - i - 1) / (mc - i), true, nil
}

// MaxCoveringCoefficient returns M_i(S) (Def 5.3):
//
//	⌊(n-i-1)/(max-cov_i(S)-i)⌋  if max-cov_i(S) > i
//	n - i                        if max-cov_i(S) = i
//
// It is only defined for i < γ_dist(S); the second return is false otherwise.
func MaxCoveringCoefficient(gens []graph.Digraph, i int) (int, bool, error) {
	mc, ok, err := MaxCoveringNumber(gens, i)
	if err != nil || !ok {
		return 0, ok, err
	}
	n := gens[0].N()
	if mc == i {
		return n - i, true, nil
	}
	return (n - i - 1) / (mc - i), true, nil
}
