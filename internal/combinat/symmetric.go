package combinat

import (
	"fmt"

	"ksettop/internal/graph"
)

// SymMaxCovering returns the paper's Corollary 5.5 / Appendix C closed form
// for max-cov_t(Sym(G)) computed from the single-graph quantity
// max-cov_t({G}):
//
//	max-cov_t(Sym(G)) = t                          if max-cov_t({G}) = t
//	                    t + t·(max-cov_t({G}) − t) otherwise
//
// The second return is false when max-cov_t({G}) is undefined (t ≥
// γ_dist({G})). The closed form is a worst-case permutation argument: the
// t processes of P can hit max-cov_t({G})−t fresh processes in each of t
// differently-permuted graphs. It is exact for the star family used in the
// paper and is cross-checked against explicit Sym(S) expansion in tests.
func SymMaxCovering(g graph.Digraph, t int) (int, bool, error) {
	mc, ok, err := MaxCoveringNumber([]graph.Digraph{g}, t)
	if err != nil || !ok {
		return 0, ok, err
	}
	if mc == t {
		return t, true, nil
	}
	return t + t*(mc-t), true, nil
}

// SymMaxCoveringCoefficient returns the Corollary 5.5 closed form for
// M_t(Sym(G)):
//
//	⌊(n−t−1)/(t·(max-cov_t({G})−t))⌋ if max-cov_t({G}) > t
//	n − t                            if max-cov_t({G}) = t
func SymMaxCoveringCoefficient(g graph.Digraph, t int) (int, bool, error) {
	mc, ok, err := MaxCoveringNumber([]graph.Digraph{g}, t)
	if err != nil || !ok {
		return 0, ok, err
	}
	n := g.N()
	if mc == t {
		return n - t, true, nil
	}
	return (n - t - 1) / (t * (mc - t)), true, nil
}

// StarUnionNumbers returns the closed-form quantities the paper derives for
// the symmetric union-of-s-stars model on n processes (§5 discussion and
// Appendix G):
//
//	γ_dist(S)    = n − s + 1
//	max-cov_t(S) = t     for every t < γ_dist(S)
//	M_t(S)       = n − t for every t < γ_dist(S)
//
// These are validated against the explicit expansion in tests and used by
// the E10 experiment.
type StarUnionQuantities struct {
	N, S          int
	GammaDist     int
	LowerBoundK   int // (n−s)-set agreement impossible (Thm 6.13)
	UpperBoundK   int // (n−s+1)-set agreement solvable (γ_eq bound)
	MaxCovIsIdent bool
}

// StarUnionClosedForm computes StarUnionQuantities for given n and s.
func StarUnionClosedForm(n, s int) (StarUnionQuantities, error) {
	if s < 1 || s > n {
		return StarUnionQuantities{}, fmt.Errorf("combinat: star count %d outside [1,%d]", s, n)
	}
	return StarUnionQuantities{
		N:             n,
		S:             s,
		GammaDist:     n - s + 1,
		LowerBoundK:   n - s,
		UpperBoundK:   n - s + 1,
		MaxCovIsIdent: true,
	}, nil
}
