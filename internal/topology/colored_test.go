package topology

import (
	"testing"

	"ksettop/internal/bits"
)

func v(color int, view bits.Set) Vertex[bits.Set] {
	return Vertex[bits.Set]{Color: color, View: view}
}

func mustSimplex(t *testing.T, vs ...Vertex[bits.Set]) Simplex[bits.Set] {
	t.Helper()
	s, err := NewSimplex(vs...)
	if err != nil {
		t.Fatalf("NewSimplex: %v", err)
	}
	return s
}

func TestNewSimplexValidation(t *testing.T) {
	s := mustSimplex(t, v(2, bits.New(2)), v(0, bits.New(0)), v(1, bits.New(1)))
	if s.Dimension() != 2 {
		t.Errorf("dimension = %d, want 2", s.Dimension())
	}
	cols := s.Colors()
	if cols[0] != 0 || cols[1] != 1 || cols[2] != 2 {
		t.Errorf("colors not sorted: %v", cols)
	}
	if _, err := NewSimplex(v(0, bits.New(0)), v(0, bits.New(1))); err == nil {
		t.Errorf("duplicate color should fail")
	}
	view, ok := s.ViewOf(1)
	if !ok || view != bits.New(1) {
		t.Errorf("ViewOf(1) = %v %v", view, ok)
	}
	if _, ok := s.ViewOf(9); ok {
		t.Errorf("ViewOf missing color should report false")
	}
}

func TestSimplexFaceAndIntersect(t *testing.T) {
	big := mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(1)), v(2, bits.New(2)))
	face := mustSimplex(t, v(0, bits.New(0)), v(2, bits.New(2)))
	notFace := mustSimplex(t, v(0, bits.New(0, 1)))

	if !face.IsFaceOf(big) {
		t.Errorf("face should be a face of big")
	}
	if notFace.IsFaceOf(big) {
		t.Errorf("different view should not be a face")
	}
	inter := big.Intersect(notFace)
	if len(inter) != 0 {
		t.Errorf("intersection should be empty, got %v", inter)
	}
	inter = big.Intersect(face)
	if len(inter) != 2 {
		t.Errorf("intersection should have 2 vertices, got %v", inter)
	}
}

func TestComplexAddFacetMaximality(t *testing.T) {
	c := NewComplex[bits.Set]()
	big := mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(1)), v(2, bits.New(2)))
	face := mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(1)))

	c.AddFacet(face)
	c.AddFacet(big) // absorbs face
	if c.FacetCount() != 1 {
		t.Fatalf("facets = %d, want 1 after absorption", c.FacetCount())
	}
	c.AddFacet(face) // face of existing: ignored
	if c.FacetCount() != 1 {
		t.Errorf("adding a face should not change facets")
	}
	other := mustSimplex(t, v(0, bits.New(0, 1)), v(1, bits.New(1)))
	c.AddFacet(other)
	if c.FacetCount() != 2 {
		t.Errorf("distinct facet should be added: %d", c.FacetCount())
	}
	if c.Dimension() != 2 || c.IsPure() {
		t.Errorf("dim=%d pure=%v, want 2/false", c.Dimension(), c.IsPure())
	}
	if !c.ContainsSimplex(face) {
		t.Errorf("face should be contained")
	}
}

func TestComplexUnionIntersection(t *testing.T) {
	a := NewComplex[bits.Set]()
	b := NewComplex[bits.Set]()
	s1 := mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(1)))
	s2 := mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(0, 1)))
	a.AddFacet(s1)
	b.AddFacet(s1)
	b.AddFacet(s2)

	inter := a.Intersection(b)
	if inter.FacetCount() != 1 {
		t.Errorf("intersection facets = %d, want 1", inter.FacetCount())
	}
	if !inter.ContainsSimplex(s1) {
		t.Errorf("intersection should contain the shared facet")
	}

	a.Union(b)
	if a.FacetCount() != 2 {
		t.Errorf("union facets = %d, want 2", a.FacetCount())
	}
}

func TestComplexIntersectionPartialOverlap(t *testing.T) {
	// Facets sharing only the color-0 vertex intersect in that vertex.
	a := NewComplex[bits.Set]()
	b := NewComplex[bits.Set]()
	a.AddFacet(mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(1))))
	b.AddFacet(mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(0, 1))))
	inter := a.Intersection(b)
	if inter.FacetCount() != 1 || inter.Dimension() != 0 {
		t.Errorf("intersection should be the single shared vertex: %d facets dim %d",
			inter.FacetCount(), inter.Dimension())
	}
}

func TestToAbstract(t *testing.T) {
	c := NewComplex[bits.Set]()
	c.AddFacet(mustSimplex(t, v(0, bits.New(0)), v(1, bits.New(1)), v(2, bits.New(2))))
	c.AddFacet(mustSimplex(t, v(0, bits.New(0, 1)), v(1, bits.New(1)), v(2, bits.New(2))))
	ac, verts, err := c.ToAbstract()
	if err != nil {
		t.Fatalf("ToAbstract: %v", err)
	}
	if len(verts) != 4 {
		t.Errorf("vertices = %d, want 4 (two color-0 views + one each for 1,2)", len(verts))
	}
	if ac.FacetCount() != 2 || ac.Dimension() != 2 {
		t.Errorf("abstract complex wrong: %v", ac)
	}
	// Two triangles sharing an edge: contractible.
	betti, err := ReducedBettiNumbers(ac, 1)
	if err != nil {
		t.Fatalf("ReducedBettiNumbers: %v", err)
	}
	if betti[0] != 0 || betti[1] != 0 {
		t.Errorf("glued triangles betti = %v, want zeros", betti)
	}
}

func TestComplexVertices(t *testing.T) {
	c := NewComplex[bits.Set]()
	if !c.IsEmpty() || c.Dimension() != -1 {
		t.Errorf("fresh complex should be empty with dim -1")
	}
	c.AddFacet(mustSimplex(t, v(1, bits.New(1)), v(0, bits.New(0))))
	vs := c.Vertices()
	if len(vs) != 2 || vs[0].Color != 0 {
		t.Errorf("Vertices() = %v", vs)
	}
}
