package topology

import "fmt"

// IsShellingOrder reports whether the given permutation of facet indices is
// a shelling order of the pure complex c (§4.4): for every t ≥ 1, the
// intersection of facet φ_t with the union of the earlier facets must be a
// pure nonempty subcomplex of dimension d−1 of the boundary of φ_t.
func IsShellingOrder(c *AbstractComplex, order []int) (bool, error) {
	if !c.IsPure() {
		return false, fmt.Errorf("topology: shellability is defined for pure complexes")
	}
	facets := c.Facets()
	if len(order) != len(facets) {
		return false, fmt.Errorf("topology: order length %d != facet count %d", len(order), len(facets))
	}
	seen := make([]bool, len(facets))
	for _, idx := range order {
		if idx < 0 || idx >= len(facets) || seen[idx] {
			return false, fmt.Errorf("topology: %v is not a permutation of facet indices", order)
		}
		seen[idx] = true
	}
	for t := 1; t < len(order); t++ {
		if !shellingStepOK(facets, order[:t], order[t]) {
			return false, nil
		}
	}
	return true, nil
}

// shellingStepOK checks the shelling condition for adding facet next after
// the prefix: the maximal intersections with earlier facets must all have
// exactly |next|−1 vertices and there must be at least one.
func shellingStepOK(facets [][]int, prefix []int, next int) bool {
	nf := facets[next]
	inters := make([][]int, 0, len(prefix))
	for _, i := range prefix {
		inters = append(inters, intersectSorted(nf, facets[i]))
	}
	maxima := maximalSimplexes(inters)
	if len(maxima) == 0 {
		return false
	}
	for _, m := range maxima {
		if len(m) != len(nf)-1 {
			return false
		}
	}
	return true
}

func intersectSorted(a, b []int) []int {
	out := make([]int, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// FindShellingOrder searches for a shelling order of the pure complex c by
// backtracking over facet orderings, memoizing failed prefixes by their
// facet set (which is sound because the shelling condition for the next
// facet depends only on the *set* of facets already placed). It returns the
// order and true, or nil and false when the complex is not shellable.
//
// The search is exponential in the number of facets in the worst case;
// intended for the small complexes in the paper's figures. Complexes with
// more than 63 facets are rejected.
func FindShellingOrder(c *AbstractComplex) ([]int, bool, error) {
	if !c.IsPure() {
		return nil, false, fmt.Errorf("topology: shellability is defined for pure complexes")
	}
	m := c.FacetCount()
	if m == 0 {
		return nil, true, nil
	}
	if m > 63 {
		return nil, false, fmt.Errorf("topology: shelling search limited to 63 facets, got %d", m)
	}
	facets := c.Facets()
	failed := make(map[uint64]bool)
	order := make([]int, 0, m)
	var rec func(used uint64) bool
	rec = func(used uint64) bool {
		if len(order) == m {
			return true
		}
		if failed[used] {
			return false
		}
		for next := 0; next < m; next++ {
			if used&(1<<uint(next)) != 0 {
				continue
			}
			if len(order) > 0 && !shellingStepOK(facets, order, next) {
				continue
			}
			order = append(order, next)
			if rec(used | 1<<uint(next)) {
				return true
			}
			order = order[:len(order)-1]
		}
		failed[used] = true
		return false
	}
	if rec(0) {
		return order, true, nil
	}
	return nil, false, nil
}

// IsShellable reports whether the pure complex c admits a shelling order.
func IsShellable(c *AbstractComplex) (bool, error) {
	_, ok, err := FindShellingOrder(c)
	return ok, err
}
