package topology

import (
	"testing"

	"ksettop/internal/bits"
)

func TestPseudosphereBasics(t *testing.T) {
	// Figure 3(b): P1,P2 with views {v1,v2} (encoded 0,1), P3 with view {v}.
	ps := NewPseudosphere([][]int{{0, 1}, {0, 1}, {7}})
	if ps.NumColors() != 3 || ps.NonemptyColors() != 3 {
		t.Errorf("colors wrong: %d/%d", ps.NumColors(), ps.NonemptyColors())
	}
	if ps.FacetCount() != 4 {
		t.Errorf("facets = %d, want 2·2·1 = 4", ps.FacetCount())
	}
	if ps.ConnectivityBound() != 1 {
		t.Errorf("connectivity bound = %d, want n−2 = 1", ps.ConnectivityBound())
	}
	count := 0
	ps.Facets(func(s Simplex[int]) bool {
		if s.Dimension() != 2 {
			t.Errorf("facet dim = %d, want 2", s.Dimension())
		}
		count++
		return true
	})
	if count != 4 {
		t.Errorf("enumerated %d facets, want 4", count)
	}
	// Early stop.
	count = 0
	ps.Facets(func(Simplex[int]) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d facets, want 1", count)
	}
}

func TestPseudosphereDuplicatesAndEmpty(t *testing.T) {
	ps := NewPseudosphere([][]int{{3, 3, 3}, {}, {1, 2}})
	if ps.NonemptyColors() != 2 {
		t.Errorf("nonempty colors = %d, want 2", ps.NonemptyColors())
	}
	if ps.FacetCount() != 2 {
		t.Errorf("facets = %d, want 1·2 = 2 (duplicates dropped)", ps.FacetCount())
	}
	void := NewPseudosphere[int]([][]int{{}, {}})
	if !void.IsVoid() || void.FacetCount() != 0 {
		t.Errorf("void pseudosphere mishandled")
	}
	if void.ConnectivityBound() != -2 {
		t.Errorf("void connectivity bound = %d, want -2", void.ConnectivityBound())
	}
}

func TestPseudosphereIntersectionLemma(t *testing.T) {
	// Lemma 4.6: φ(Π;U) ∩ φ(Π;V) = φ(Π;U∩V). Verify both symbolically and
	// on materialized complexes.
	u := NewPseudosphere([][]int{{0, 1, 2}, {0, 1}, {5}})
	w := NewPseudosphere([][]int{{1, 2, 3}, {1}, {5, 6}})
	inter, err := u.Intersect(w)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	wantViews := [][]int{{1, 2}, {1}, {5}}
	for c, want := range wantViews {
		got := inter.Views(c)
		if len(got) != len(want) {
			t.Fatalf("color %d views = %v, want %v", c, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("color %d views = %v, want %v", c, got, want)
			}
		}
	}

	// Materialized: complex(U) ∩ complex(W) == complex(U∩W).
	cu, cw, ci := u.ToComplex(), w.ToComplex(), inter.ToComplex()
	pairwise := cu.Intersection(cw)
	if pairwise.FacetCount() != ci.FacetCount() {
		t.Errorf("materialized intersection facets = %d, want %d",
			pairwise.FacetCount(), ci.FacetCount())
	}
	for _, f := range ci.Facets() {
		if !pairwise.ContainsSimplex(f) {
			t.Errorf("missing facet %v in materialized intersection", f)
		}
	}

	mismatched := NewPseudosphere([][]int{{0}})
	if _, err := u.Intersect(mismatched); err == nil {
		t.Errorf("mismatched color counts should error")
	}
}

func TestPseudosphereConnectivityViaHomology(t *testing.T) {
	// Lemma 4.7: φ(Π; V_i) is (m−2)-connected with m nonempty colors.
	// With 3 colors and 2 views each, the pseudosphere is the boundary of
	// the octahedron ≅ S²: 1-connected with β̃_2 = 1.
	ps := NewPseudosphere([][]int{{0, 1}, {0, 1}, {0, 1}})
	ac, _, err := ps.ToComplex().ToAbstract()
	if err != nil {
		t.Fatalf("ToAbstract: %v", err)
	}
	if ac.FacetCount() != 8 {
		t.Fatalf("octahedron should have 8 facets, got %d", ac.FacetCount())
	}
	betti, err := ReducedBettiNumbers(ac, 2)
	if err != nil {
		t.Fatalf("ReducedBettiNumbers: %v", err)
	}
	if betti[0] != 0 || betti[1] != 0 || betti[2] != 1 {
		t.Errorf("octahedron betti = %v, want [0 0 1]", betti)
	}
	ok, _, _ := IsHomologicallyKConnected(ac, ps.ConnectivityBound())
	if !ok {
		t.Errorf("pseudosphere should be homologically %d-connected", ps.ConnectivityBound())
	}
}

func TestPseudosphereContainsFacet(t *testing.T) {
	ps := NewPseudosphere([][]bits.Set{
		{bits.New(0), bits.New(0, 1)},
		{bits.New(1)},
	})
	facet, _ := NewSimplex(
		Vertex[bits.Set]{Color: 0, View: bits.New(0)},
		Vertex[bits.Set]{Color: 1, View: bits.New(1)},
	)
	if !ps.ContainsFacet(facet) {
		t.Errorf("facet should be contained")
	}
	bad, _ := NewSimplex(
		Vertex[bits.Set]{Color: 0, View: bits.New(5)},
		Vertex[bits.Set]{Color: 1, View: bits.New(1)},
	)
	if ps.ContainsFacet(bad) {
		t.Errorf("unknown view should not be contained")
	}
	short, _ := NewSimplex(Vertex[bits.Set]{Color: 0, View: bits.New(0)})
	if ps.ContainsFacet(short) {
		t.Errorf("partial-support simplex is not a facet")
	}
}
