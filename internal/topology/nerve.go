package topology

import "fmt"

// Nerve computes the nerve complex of a cover (Def 4.10): one vertex per
// cover element, and a simplex for every subset of the cover whose elements
// share at least one simplex.
//
// Because simplicial complexes are closed under faces, a family of complexes
// has a common simplex iff it has a common vertex, so the nerve's facets are
// the maximal sets {i : v ∈ cover[i]} over vertices v. Cover elements that
// are empty complexes contribute no nerve vertex.
//
// The cover elements must live on the same ambient vertex set.
func Nerve(cover []*AbstractComplex) (*AbstractComplex, error) {
	if len(cover) == 0 {
		return NewAbstract(0, nil)
	}
	if len(cover) > 63 {
		return nil, fmt.Errorf("topology: nerve limited to 63 cover elements, got %d", len(cover))
	}
	ambient := cover[0].NumVertices()
	membership := make(map[int][]int) // vertex → cover indices containing it
	for i, c := range cover {
		if c.NumVertices() != ambient {
			return nil, fmt.Errorf("topology: cover element %d has vertex universe %d, want %d",
				i, c.NumVertices(), ambient)
		}
		for _, v := range c.VertexSet() {
			membership[v] = append(membership[v], i)
		}
	}
	gens := make([][]int, 0, len(membership))
	for _, idxs := range membership {
		gens = append(gens, idxs)
	}
	return NewAbstract(len(cover), gens)
}

// NerveIsSimplex reports whether the nerve is a single simplex on all its
// vertices — the "∞-connected" case used in the Thm 4.12 proof, where every
// subfamily of the cover has nonempty intersection.
func NerveIsSimplex(nerve *AbstractComplex) bool {
	verts := nerve.VertexSet()
	if len(verts) == 0 {
		return false
	}
	return nerve.FacetCount() == 1 && len(nerve.Facets()[0]) == len(verts)
}
