// Package topology implements the combinatorial-topology machinery of the
// paper's §4: colored simplexes and complexes, pseudospheres (Def 4.5) with
// the intersection lemma (Lemma 4.6) and their connectivity (Lemma 4.7),
// uninterpreted complexes of graphs and models (Def 4.3/4.4, Lemma 4.8,
// Thm 4.12), interpretation on input complexes (Def 4.13/4.14), nerve
// complexes (Def 4.10), shellability (§4.4), and machine-checkable
// connectivity via reduced homology over GF(2).
package topology

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// AbstractComplex is an abstract simplicial complex: vertices are integers
// 0..NumVertices-1 and the complex is the downward closure of its facets.
// Unlike the colored complexes used for protocol states, abstract complexes
// carry no color discipline; they are the common currency for homology,
// shellability and nerve computations.
type AbstractComplex struct {
	numVertices int
	facets      [][]int // sorted vertex lists, mutually incomparable
}

// NewAbstract builds a complex from generating simplexes. Vertices must lie
// in [0, numVertices). Generators that are faces of other generators are
// absorbed; duplicates are removed.
func NewAbstract(numVertices int, generators [][]int) (*AbstractComplex, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("topology: negative vertex count %d", numVertices)
	}
	norm := make([][]int, 0, len(generators))
	for _, gen := range generators {
		s, err := normalizeSimplex(gen, numVertices)
		if err != nil {
			return nil, err
		}
		if len(s) == 0 {
			continue
		}
		norm = append(norm, s)
	}
	// maximalSimplexes deduplicates, so generators need no seen-map here.
	return &AbstractComplex{numVertices: numVertices, facets: maximalSimplexes(norm)}, nil
}

func normalizeSimplex(gen []int, numVertices int) ([]int, error) {
	s := make([]int, 0, len(gen))
	seenV := make(map[int]bool, len(gen))
	for _, v := range gen {
		if v < 0 || v >= numVertices {
			return nil, fmt.Errorf("topology: vertex %d outside [0,%d)", v, numVertices)
		}
		if !seenV[v] {
			seenV[v] = true
			s = append(s, v)
		}
	}
	sort.Ints(s)
	return s, nil
}

// maximalSimplexes removes duplicates and every simplex that is a face of
// another. After deduplication a simplex can only be dominated by a strictly
// larger one, so processing in descending size order lets the containment
// scan stop at the first equal-or-smaller accepted simplex. Pure inputs
// (every simplex the same size — pseudospheres, protocol complexes)
// therefore skip the quadratic scan entirely.
func maximalSimplexes(simplexes [][]int) [][]int {
	seen := make(map[string]bool, len(simplexes))
	uniq := simplexes[:0]
	for _, s := range simplexes {
		key := simplexKey(s)
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, s)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return len(uniq[i]) > len(uniq[j]) })
	var out [][]int
	for _, s := range uniq {
		dominated := false
		for _, big := range out {
			if len(big) <= len(s) {
				break // out is in descending size order: no later candidate is larger
			}
			if isSubset(s, big) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return simplexKey(out[i]) < simplexKey(out[j]) })
	return out
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

func simplexKey(s []int) string {
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// NumVertices returns the size of the ambient vertex set.
func (c *AbstractComplex) NumVertices() int { return c.numVertices }

// Facets returns the maximal simplexes, each a sorted vertex list. The
// returned slices are shared; callers must not mutate them.
func (c *AbstractComplex) Facets() [][]int { return c.facets }

// FacetCount returns the number of maximal simplexes.
func (c *AbstractComplex) FacetCount() int { return len(c.facets) }

// IsEmpty reports whether the complex has no simplexes at all.
func (c *AbstractComplex) IsEmpty() bool { return len(c.facets) == 0 }

// Dimension returns the dimension of the complex (max facet size − 1), or
// -1 for the empty complex.
func (c *AbstractComplex) Dimension() int {
	d := -1
	for _, f := range c.facets {
		if len(f)-1 > d {
			d = len(f) - 1
		}
	}
	return d
}

// IsPure reports whether all facets share the complex's dimension (Def 4.2).
// The empty complex is vacuously pure.
func (c *AbstractComplex) IsPure() bool {
	d := c.Dimension()
	for _, f := range c.facets {
		if len(f)-1 != d {
			return false
		}
	}
	return true
}

// VertexSet returns the sorted list of vertices that appear in some simplex.
func (c *AbstractComplex) VertexSet() []int {
	seen := make(map[int]bool)
	for _, f := range c.facets {
		for _, v := range f {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Simplexes returns all simplexes of dimension dim (vertex count dim+1),
// sorted lexicographically. dim = -1 yields the empty simplex when the
// complex is nonempty.
func (c *AbstractComplex) Simplexes(dim int) [][]int {
	if dim < -1 {
		return nil
	}
	if dim == -1 {
		if c.IsEmpty() {
			return nil
		}
		return [][]int{{}}
	}
	size := dim + 1
	buf := make([]int, size)
	// Collect every size-subset of every facet into one flat arena, then
	// sort-and-dedup. Facets sharing faces produce duplicates, but avoiding
	// a keyed set keeps this allocation-light: one arena, one index sort.
	var arena []int
	for _, f := range c.facets {
		if len(f) < size {
			continue
		}
		combinationsOf(f, size, buf, 0, 0, func(s []int) {
			arena = append(arena, s...)
		})
	}
	total := len(arena) / size
	all := make([][]int, total)
	for i := range all {
		all[i] = arena[i*size : (i+1)*size : (i+1)*size]
	}
	sort.Slice(all, func(i, j int) bool { return lexLess(all[i], all[j]) })
	out := all[:0]
	for i, s := range all {
		if i == 0 || !slices.Equal(s, out[len(out)-1]) {
			out = append(out, s)
		}
	}
	return out
}

// SimplexLevels returns the simplexes of every dimension 0..maxDim, each
// sorted lexicographically (levels above the complex's dimension are empty).
// One facet walk feeds all levels — callers that need several dimensions
// (the homology rank loop) previously re-walked the facets once per
// dimension via Simplexes.
func (c *AbstractComplex) SimplexLevels(maxDim int) [][][]int {
	if maxDim < 0 {
		return nil
	}
	arenas := make([][]int, maxDim+2) // indexed by simplex size
	buf := make([]int, maxDim+1)
	for _, f := range c.facets {
		maxSize := len(f)
		if maxSize > maxDim+1 {
			maxSize = maxDim + 1
		}
		for size := 1; size <= maxSize; size++ {
			combinationsOf(f, size, buf[:size], 0, 0, func(s []int) {
				arenas[size] = append(arenas[size], s...)
			})
		}
	}
	levels := make([][][]int, maxDim+1)
	for dim := 0; dim <= maxDim; dim++ {
		size := dim + 1
		arena := arenas[size]
		total := len(arena) / size
		all := make([][]int, total)
		for i := range all {
			all[i] = arena[i*size : (i+1)*size : (i+1)*size]
		}
		sort.Slice(all, func(i, j int) bool { return lexLess(all[i], all[j]) })
		out := all[:0]
		for i, s := range all {
			if i == 0 || !slices.Equal(s, out[len(out)-1]) {
				out = append(out, s)
			}
		}
		levels[dim] = out
	}
	return levels
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// combinationsOf enumerates all size-k subsets of sorted slice f into buf.
func combinationsOf(f []int, k int, buf []int, start, depth int, emit func([]int)) {
	if depth == k {
		emit(buf)
		return
	}
	for i := start; i <= len(f)-(k-depth); i++ {
		buf[depth] = f[i]
		combinationsOf(f, k, buf, i+1, depth+1, emit)
	}
}

// SimplexCount returns the number of simplexes of dimension dim.
func (c *AbstractComplex) SimplexCount(dim int) int { return len(c.Simplexes(dim)) }

// ContainsSimplex reports whether the sorted vertex list s is a simplex of c.
func (c *AbstractComplex) ContainsSimplex(s []int) bool {
	for _, f := range c.facets {
		if isSubset(s, f) {
			return true
		}
	}
	return false
}

// Skeleton returns the d-skeleton: all simplexes of dimension ≤ d.
func (c *AbstractComplex) Skeleton(d int) (*AbstractComplex, error) {
	if d < 0 {
		return NewAbstract(c.numVertices, nil)
	}
	var gens [][]int
	for _, f := range c.facets {
		if len(f) <= d+1 {
			gens = append(gens, f)
			continue
		}
		buf := make([]int, d+1)
		combinationsOf(f, d+1, buf, 0, 0, func(s []int) {
			cp := make([]int, len(s))
			copy(cp, s)
			gens = append(gens, cp)
		})
	}
	return NewAbstract(c.numVertices, gens)
}

// EulerCharacteristic returns Σ (−1)^q · (number of q-simplexes), counting
// every level from one facet walk (SimplexCount per dimension would re-walk
// the facets once per q).
func (c *AbstractComplex) EulerCharacteristic() int {
	chi := 0
	for q, level := range c.SimplexLevels(c.Dimension()) {
		if q%2 == 0 {
			chi += len(level)
		} else {
			chi -= len(level)
		}
	}
	return chi
}

// String summarizes the complex.
func (c *AbstractComplex) String() string {
	return fmt.Sprintf("complex(dim=%d, facets=%d, vertices=%d)",
		c.Dimension(), len(c.facets), len(c.VertexSet()))
}
