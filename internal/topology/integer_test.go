package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func intHomologyOf(t *testing.T, n int, gens [][]int, maxDim int) *IntegerHomology {
	t.Helper()
	c := mustAbstract(t, n, gens)
	h, err := IntegerHomologyGroups(c, maxDim)
	if err != nil {
		t.Fatalf("IntegerHomologyGroups: %v", err)
	}
	return h
}

func TestIntegerHomologyClassicSpaces(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		gens    [][]int
		betti   []int
		torsion [][]int64
	}{
		{"point", 1, [][]int{{0}}, []int{0, 0}, [][]int64{nil, nil}},
		{"two points", 2, [][]int{{0}, {1}}, []int{1, 0}, [][]int64{nil, nil}},
		{"circle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1}, [][]int64{nil, nil}},
		{"disk", 3, [][]int{{0, 1, 2}}, []int{0, 0}, [][]int64{nil, nil}},
		{"sphere", 4, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}},
			[]int{0, 0, 1}, [][]int64{nil, nil, nil}},
		{"wedge of two circles", 5, [][]int{
			{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4},
		}, []int{0, 2}, [][]int64{nil, nil}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := intHomologyOf(t, tt.n, tt.gens, len(tt.betti)-1)
			for q := range tt.betti {
				if h.Betti[q] != tt.betti[q] {
					t.Errorf("β̃_%d = %d, want %d", q, h.Betti[q], tt.betti[q])
				}
				if len(h.Torsion[q]) != len(tt.torsion[q]) {
					t.Errorf("torsion_%d = %v, want %v", q, h.Torsion[q], tt.torsion[q])
				}
			}
		})
	}
}

func TestIntegerHomologyProjectivePlaneTorsion(t *testing.T) {
	// RP²: H̃_1 = ℤ/2 (pure torsion), H̃_2 = 0 over ℤ. This is exactly where
	// integral homology is sharper than GF(2) (which reports β̃_1 = β̃_2 = 1).
	gens := [][]int{
		{0, 1, 4}, {0, 1, 5}, {0, 2, 3}, {0, 2, 5}, {0, 3, 4},
		{1, 2, 3}, {1, 2, 4}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5},
	}
	h := intHomologyOf(t, 6, gens, 2)
	if h.Betti[0] != 0 || h.Betti[1] != 0 || h.Betti[2] != 0 {
		t.Errorf("RP² free ranks = %v, want all zero", h.Betti)
	}
	if len(h.Torsion[1]) != 1 || h.Torsion[1][0] != 2 {
		t.Errorf("H̃_1 torsion = %v, want [2]", h.Torsion[1])
	}
	if len(h.Torsion[2]) != 0 {
		t.Errorf("H̃_2 torsion = %v, want none", h.Torsion[2])
	}
	if s := h.String(); !strings.Contains(s, "ℤ/2") {
		t.Errorf("String() = %q, want ℤ/2 mentioned", s)
	}

	// The connectivity verdicts must agree in sign: RP² is 0-connected but
	// not 1-connected under both theories.
	c := mustAbstract(t, 6, gens)
	okInt, _, err := IsIntegrallyKConnected(c, 1)
	if err != nil {
		t.Fatalf("IsIntegrallyKConnected: %v", err)
	}
	okGF2, _, err := IsHomologicallyKConnected(c, 1)
	if err != nil {
		t.Fatalf("IsHomologicallyKConnected: %v", err)
	}
	if okInt || okGF2 {
		t.Errorf("RP² must fail 1-connectivity in both theories: int=%v gf2=%v", okInt, okGF2)
	}
	okInt, _, _ = IsIntegrallyKConnected(c, 0)
	if !okInt {
		t.Errorf("RP² is 0-connected")
	}
}

func TestIntegerHomologyEdgeCases(t *testing.T) {
	empty := mustAbstract(t, 2, nil)
	if _, err := IntegerHomologyGroups(empty, 0); err == nil {
		t.Errorf("empty complex should be rejected")
	}
	if ok, _, _ := IsIntegrallyKConnected(empty, -1); ok {
		t.Errorf("empty complex is not (-1)-connected")
	}
	if ok, _, _ := IsIntegrallyKConnected(empty, -2); !ok {
		t.Errorf("everything is (-2)-connected")
	}
	pt := mustAbstract(t, 1, [][]int{{0}})
	if _, err := IntegerHomologyGroups(pt, -1); err == nil {
		t.Errorf("negative dimension should be rejected")
	}
	if ok, _, _ := IsIntegrallyKConnected(pt, -1); !ok {
		t.Errorf("nonempty complex is (-1)-connected")
	}
	h := intHomologyOf(t, 1, [][]int{{0}}, 0)
	if h.String() != "H̃_0=0" {
		t.Errorf("String() = %q", h.String())
	}
}

func TestQuickIntegerMatchesGF2RanksModTorsion(t *testing.T) {
	// For complexes without 2-torsion beyond what GF(2) sees:
	// β̃^GF2_q = β̃^ℤ_q + t_q + t_{q-1}, where t_q counts even torsion
	// coefficients of H̃_q (universal coefficients over GF(2)).
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var gens [][]int
		for i := 0; i < 6; i++ {
			size := 1 + r.Intn(4)
			s := make([]int, size)
			for j := range s {
				s[j] = r.Intn(7)
			}
			gens = append(gens, s)
		}
		c, err := NewAbstract(7, gens)
		if err != nil || c.IsEmpty() {
			return true
		}
		d := c.Dimension()
		gf2, err := ReducedBettiNumbers(c, d)
		if err != nil {
			return false
		}
		ih, err := IntegerHomologyGroups(c, d)
		if err != nil {
			return false
		}
		evenTorsion := func(q int) int {
			if q < 0 || q >= len(ih.Torsion) {
				return 0
			}
			n := 0
			for _, t := range ih.Torsion[q] {
				if t%2 == 0 {
					n++
				}
			}
			return n
		}
		for q := 0; q <= d; q++ {
			if gf2[q] != ih.Betti[q]+evenTorsion(q)+evenTorsion(q-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("universal-coefficient consistency failed: %v", err)
	}
}

func TestIntegerHomologyOnProtocolComplexes(t *testing.T) {
	// The star-model uninterpreted complex is integrally (n−2)-connected —
	// the sharper version of the Thm 4.12 check.
	ps := NewPseudosphere([][]int{{0, 1}, {0, 1}, {0, 1}})
	ac, _, err := ps.ToComplex().ToAbstract()
	if err != nil {
		t.Fatalf("ToAbstract: %v", err)
	}
	ok, h, err := IsIntegrallyKConnected(ac, 1)
	if err != nil {
		t.Fatalf("IsIntegrallyKConnected: %v", err)
	}
	if !ok {
		t.Errorf("octahedron must be integrally 1-connected: %v", h)
	}
	full, err := IntegerHomologyGroups(ac, 2)
	if err != nil {
		t.Fatalf("IntegerHomologyGroups: %v", err)
	}
	if full.Betti[2] != 1 || len(full.Torsion[2]) != 0 {
		t.Errorf("octahedron H̃_2 = %v/%v, want ℤ", full.Betti[2], full.Torsion[2])
	}
}
