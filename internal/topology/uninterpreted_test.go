package topology

import (
	"testing"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
)

func TestUninterpretedSimplexFigure2(t *testing.T) {
	// Figure 2: p1's view is {p1,p3}, p2's is {p1,p2}, p3's is {p3}
	// (0-indexed: p0 hears p2, p1 hears p0). Graph edges: 2→0, 0→1.
	g, err := graph.FromAdjacency([][]int{{1}, {}, {0}})
	if err != nil {
		t.Fatalf("FromAdjacency: %v", err)
	}
	s := UninterpretedSimplex(g)
	want := []bits.Set{bits.New(0, 2), bits.New(0, 1), bits.New(2)}
	for p, w := range want {
		view, ok := s.ViewOf(p)
		if !ok || view != w {
			t.Errorf("view of p%d = %v, want %v", p, view, w)
		}
	}
	if s.Dimension() != 2 {
		t.Errorf("uninterpreted simplex dim = %d, want n−1 = 2", s.Dimension())
	}
}

func TestUninterpretedPseudosphereLemma48(t *testing.T) {
	// Lemma 4.8: C_{↑G} = φ(Π; {S | In_G(p) ⊆ S ⊆ Π}).
	star, _ := graph.Star(3, 0)
	ps := UninterpretedPseudosphere(star)
	// In sizes: center {0} → 2² = 4 views; leaves {0,p} → 2 views each.
	if got := len(ps.Views(0)); got != 4 {
		t.Errorf("center views = %d, want 4", got)
	}
	for p := 1; p < 3; p++ {
		if got := len(ps.Views(p)); got != 2 {
			t.Errorf("leaf %d views = %d, want 2", p, got)
		}
	}
	if ps.FacetCount() != 16 {
		t.Errorf("facet count = %d, want 4·2·2 = 16", ps.FacetCount())
	}

	// (⊆) every facet is the uninterpreted simplex of some H ∈ ↑G;
	// (⊇) the simplexes of G itself and of the clique are facets.
	ps.Facets(func(s Simplex[bits.Set]) bool {
		h := graph.MustNew(3)
		for _, vert := range s {
			vert.View.ForEach(func(q int) {
				if err := h.AddEdge(q, vert.Color); err != nil {
					t.Fatalf("AddEdge: %v", err)
				}
			})
		}
		if !star.IsSubgraphOf(h) {
			t.Errorf("facet %v corresponds to graph outside ↑G", s)
		}
		return true
	})
	if !ps.ContainsFacet(UninterpretedSimplex(star)) {
		t.Errorf("σ_G must be a facet of C_{↑G}")
	}
	clique, _ := graph.Complete(3)
	if !ps.ContainsFacet(UninterpretedSimplex(clique)) {
		t.Errorf("σ_clique must be a facet of C_{↑G}")
	}
}

func TestUninterpretedComplexClique(t *testing.T) {
	clique, _ := graph.Complete(3)
	c, err := UninterpretedComplex([]graph.Digraph{clique})
	if err != nil {
		t.Fatalf("UninterpretedComplex: %v", err)
	}
	if c.FacetCount() != 1 {
		t.Errorf("↑clique has a single graph, so 1 facet; got %d", c.FacetCount())
	}
}

func TestCorollary49SimpleModelConnectivity(t *testing.T) {
	// Cor 4.9: the uninterpreted complex of a simple closed-above model is
	// (|Π|−2)-connected. Verify homologically for a few generators on n=3,4.
	gens := []graph.Digraph{}
	star3, _ := graph.Star(3, 0)
	cyc3, _ := graph.Cycle(3)
	star4, _ := graph.Star(4, 1)
	cyc4, _ := graph.Cycle(4)
	gens = append(gens, star3, cyc3, star4, cyc4)
	for _, g := range gens {
		c, err := UninterpretedComplex([]graph.Digraph{g})
		if err != nil {
			t.Fatalf("UninterpretedComplex: %v", err)
		}
		ac, _, err := c.ToAbstract()
		if err != nil {
			t.Fatalf("ToAbstract: %v", err)
		}
		k := g.N() - 2
		ok, betti, err := IsHomologicallyKConnected(ac, k)
		if err != nil {
			t.Fatalf("IsHomologicallyKConnected: %v", err)
		}
		if !ok {
			t.Errorf("C_{↑G} for %v should be %d-connected, betti=%v", g, k, betti)
		}
	}
}

func TestTheorem412GeneralModelConnectivity(t *testing.T) {
	// Thm 4.12: the uninterpreted complex of a *general* closed-above model
	// is (|Π|−2)-connected. Use Sym(star) and {star, cycle} on n = 3, 4.
	star3, _ := graph.Star(3, 0)
	sym3, _ := graph.SymClosure([]graph.Digraph{star3})
	cyc3, _ := graph.Cycle(3)
	mixed3 := append([]graph.Digraph{cyc3}, sym3...)

	star4, _ := graph.Star(4, 0)
	sym4, _ := graph.SymClosure([]graph.Digraph{star4})

	for _, gens := range [][]graph.Digraph{sym3, mixed3, sym4} {
		c, err := UninterpretedComplex(gens)
		if err != nil {
			t.Fatalf("UninterpretedComplex: %v", err)
		}
		ac, _, err := c.ToAbstract()
		if err != nil {
			t.Fatalf("ToAbstract: %v", err)
		}
		k := gens[0].N() - 2
		ok, betti, err := IsHomologicallyKConnected(ac, k)
		if err != nil {
			t.Fatalf("IsHomologicallyKConnected: %v", err)
		}
		if !ok {
			t.Errorf("C_A for %d generators should be %d-connected, betti=%v", len(gens), k, betti)
		}
	}
}

func TestTheorem412NerveIsSimplex(t *testing.T) {
	// In the Thm 4.12 proof, every pseudosphere in the cover contains the
	// clique's uninterpreted simplex, so all intersections are nonempty and
	// the nerve is a simplex.
	star, _ := graph.Star(4, 0)
	sym, _ := graph.SymClosure([]graph.Digraph{star})
	cover, err := UninterpretedCover(sym)
	if err != nil {
		t.Fatalf("UninterpretedCover: %v", err)
	}
	// Intersection of ALL cover elements symbolically (Lemma 4.6).
	inter := cover[0]
	for _, ps := range cover[1:] {
		next, err := inter.Intersect(ps)
		if err != nil {
			t.Fatalf("Intersect: %v", err)
		}
		inter = next
	}
	if inter.IsVoid() {
		t.Fatalf("cover intersection must contain the clique simplex")
	}
	clique, _ := graph.Complete(4)
	if !inter.ContainsFacet(UninterpretedSimplex(clique)) {
		t.Errorf("clique simplex must survive full intersection")
	}

	// Abstract nerve: must be a single simplex on all cover elements.
	abstracts := make([]*AbstractComplex, len(cover))
	// Use a shared vertex index across cover elements.
	union := NewComplex[bits.Set]()
	for _, ps := range cover {
		union.Union(ps.ToComplex())
	}
	_, verts, err := union.ToAbstract()
	if err != nil {
		t.Fatalf("ToAbstract: %v", err)
	}
	index := make(map[string]int, len(verts))
	for i, vt := range verts {
		index[vertKey(vt)] = i
	}
	for i, ps := range cover {
		gens := [][]int{}
		ps.Facets(func(s Simplex[bits.Set]) bool {
			gen := make([]int, len(s))
			for j, vt := range s {
				gen[j] = index[vertKey(vt)]
			}
			gens = append(gens, gen)
			return true
		})
		ac, err := NewAbstract(len(verts), gens)
		if err != nil {
			t.Fatalf("NewAbstract: %v", err)
		}
		abstracts[i] = ac
	}
	nerve, err := Nerve(abstracts)
	if err != nil {
		t.Fatalf("Nerve: %v", err)
	}
	if !NerveIsSimplex(nerve) {
		t.Errorf("nerve of the closed-above cover must be a simplex: %v", nerve)
	}
}

func vertKey(v Vertex[bits.Set]) string {
	return v.View.String() + ":" + string(rune('0'+v.Color))
}

func TestUninterpretedCoverErrors(t *testing.T) {
	if _, err := UninterpretedCover(nil); err == nil {
		t.Errorf("empty generator set should fail")
	}
	a := graph.MustNew(3)
	b := graph.MustNew(4)
	if _, err := UninterpretedCover([]graph.Digraph{a, b}); err == nil {
		t.Errorf("mixed process counts should fail")
	}
}
