package topology

import (
	"fmt"
	"strings"

	"ksettop/internal/bits"
)

// MaxInterpretedProcs bounds the process count for interpreted views: a view
// packs one byte per process into a uint64.
const MaxInterpretedProcs = 8

// IView is an interpreted view: the partial map process → initial value that
// an oblivious algorithm retains (Def 2.5). It packs one byte per process
// (0 = unknown, otherwise value+1), which makes views comparable map keys
// and keeps interpreted complexes allocation-light.
type IView uint64

// MakeIView builds the view that knows the initial value vals[q] for every
// q ∈ known. It requires at most MaxInterpretedProcs processes and values in
// [0, 254].
func MakeIView(known bits.Set, vals []int) (IView, error) {
	if len(vals) > MaxInterpretedProcs {
		return 0, fmt.Errorf("topology: interpreted views support ≤%d processes, got %d",
			MaxInterpretedProcs, len(vals))
	}
	var v IView
	var err error
	known.ForEach(func(q int) {
		if q >= len(vals) {
			err = fmt.Errorf("topology: view member %d outside assignment of length %d", q, len(vals))
			return
		}
		val := vals[q]
		if val < 0 || val > 254 {
			err = fmt.Errorf("topology: value %d outside [0,254]", val)
			return
		}
		v |= IView(uint64(val+1) << uint(8*q))
	})
	if err != nil {
		return 0, err
	}
	return v, nil
}

// Known returns the set of processes whose value the view contains.
func (v IView) Known() bits.Set {
	var s bits.Set
	for q := 0; q < MaxInterpretedProcs; q++ {
		if byte(v>>(8*q)) != 0 {
			s = s.With(q)
		}
	}
	return s
}

// Value returns the initial value of process q recorded in the view, and
// whether it is known.
func (v IView) Value(q int) (int, bool) {
	if q < 0 || q >= MaxInterpretedProcs {
		return 0, false
	}
	b := byte(v >> (8 * q))
	if b == 0 {
		return 0, false
	}
	return int(b) - 1, true
}

// Values returns the set of distinct initial values the view contains.
func (v IView) Values() []int {
	seen := make(map[int]bool)
	var out []int
	for q := 0; q < MaxInterpretedProcs; q++ {
		if val, ok := v.Value(q); ok && !seen[val] {
			seen[val] = true
			out = append(out, val)
		}
	}
	return out
}

// MinValue returns the smallest value in the view, and whether the view is
// nonempty. The min-dissemination upper-bound algorithms decide this value.
func (v IView) MinValue() (int, bool) {
	best, found := 0, false
	for q := 0; q < MaxInterpretedProcs; q++ {
		if val, ok := v.Value(q); ok && (!found || val < best) {
			best, found = val, true
		}
	}
	return best, found
}

// String renders the view as "{0:1 2:0}".
func (v IView) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for q := 0; q < MaxInterpretedProcs; q++ {
		if val, ok := v.Value(q); ok {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(&b, "%d:%d", q, val)
		}
	}
	b.WriteByte('}')
	return b.String()
}
