package topology

import "fmt"

// Pseudosphere is the complex φ(Π; V_1, …, V_n) of Def 4.5: color i may take
// any view in Views[i], and every choice of at most one view per color is a
// simplex. Colors with an empty view set simply do not appear.
//
// Pseudospheres are stored symbolically (one view list per color) because
// their facet count is the product of the view-set sizes; the symbolic form
// supports the intersection lemma and connectivity facts without
// materializing facets.
type Pseudosphere[V comparable] struct {
	views [][]V // per color, deduplicated, in insertion order
}

// NewPseudosphere builds φ(Π; views[0], …, views[n-1]). Duplicate views
// within a color are removed.
func NewPseudosphere[V comparable](views [][]V) *Pseudosphere[V] {
	ps := &Pseudosphere[V]{views: make([][]V, len(views))}
	for i, vs := range views {
		seen := make(map[V]bool, len(vs))
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				ps.views[i] = append(ps.views[i], v)
			}
		}
	}
	return ps
}

// NumColors returns the number of colors (including ones with empty view
// sets).
func (ps *Pseudosphere[V]) NumColors() int { return len(ps.views) }

// Views returns a copy of the view set of the given color.
func (ps *Pseudosphere[V]) Views(color int) []V {
	out := make([]V, len(ps.views[color]))
	copy(out, ps.views[color])
	return out
}

// NonemptyColors returns the number of colors with at least one view.
func (ps *Pseudosphere[V]) NonemptyColors() int {
	n := 0
	for _, vs := range ps.views {
		if len(vs) > 0 {
			n++
		}
	}
	return n
}

// IsVoid reports whether the pseudosphere has no vertices at all.
func (ps *Pseudosphere[V]) IsVoid() bool { return ps.NonemptyColors() == 0 }

// FacetCount returns the number of facets: the product of the nonempty
// view-set sizes.
func (ps *Pseudosphere[V]) FacetCount() int {
	count := 1
	for _, vs := range ps.views {
		if len(vs) > 0 {
			count *= len(vs)
		}
	}
	if ps.IsVoid() {
		return 0
	}
	return count
}

// ConnectivityBound returns the paper's Lemma 4.7 ([HKR13] Cor 13.3.7)
// guarantee: the pseudosphere is (m − 2)-connected, where m is the number
// of colors with nonempty view sets.
func (ps *Pseudosphere[V]) ConnectivityBound() int { return ps.NonemptyColors() - 2 }

// Intersect applies Lemma 4.6 ([HKR13] Fact 13.3.4): the intersection of two
// pseudospheres on the same colors is the pseudosphere of the per-color view
// intersections.
func (ps *Pseudosphere[V]) Intersect(other *Pseudosphere[V]) (*Pseudosphere[V], error) {
	if len(ps.views) != len(other.views) {
		return nil, fmt.Errorf("topology: intersecting pseudospheres on %d vs %d colors",
			len(ps.views), len(other.views))
	}
	views := make([][]V, len(ps.views))
	for i := range ps.views {
		inOther := make(map[V]bool, len(other.views[i]))
		for _, v := range other.views[i] {
			inOther[v] = true
		}
		for _, v := range ps.views[i] {
			if inOther[v] {
				views[i] = append(views[i], v)
			}
		}
	}
	return NewPseudosphere(views), nil
}

// Facets calls f on every facet (one view per nonempty color). Enumeration
// stops early if f returns false.
func (ps *Pseudosphere[V]) Facets(f func(Simplex[V]) bool) {
	colors := make([]int, 0, len(ps.views))
	for c, vs := range ps.views {
		if len(vs) > 0 {
			colors = append(colors, c)
		}
	}
	if len(colors) == 0 {
		return
	}
	choice := make([]int, len(colors))
	for {
		facet := make(Simplex[V], len(colors))
		for i, c := range colors {
			facet[i] = Vertex[V]{Color: c, View: ps.views[c][choice[i]]}
		}
		if !f(facet) {
			return
		}
		// Advance the mixed-radix counter.
		i := len(colors) - 1
		for i >= 0 {
			choice[i]++
			if choice[i] < len(ps.views[colors[i]]) {
				break
			}
			choice[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// PseudosphereComplex materializes φ(Π; V_1,…,V_n) with |V_i| = views[i]
// anonymous views as an abstract complex: vertex (color c, view v) gets id
// offset(c)+v and the facets are every one-view-per-color choice. The result
// is the join of n discrete point sets — (n−2)-connected with
// β̃_{n−1} = Π(views[i]−1) — which makes it the standard scale/correctness
// instance for the homology engines (benchmarks, race tests).
func PseudosphereComplex(views []int) (*AbstractComplex, error) {
	offsets := make([]int, len(views)+1)
	for i, v := range views {
		if v < 1 {
			return nil, fmt.Errorf("topology: pseudosphere color %d has %d views", i, v)
		}
		offsets[i+1] = offsets[i] + v
	}
	if len(views) == 0 {
		return NewAbstract(0, nil)
	}
	choice := make([]int, len(views))
	facets := make([][]int, 0, 64)
	for {
		f := make([]int, len(views))
		for c := range views {
			f[c] = offsets[c] + choice[c]
		}
		facets = append(facets, f)
		i := len(views) - 1
		for i >= 0 {
			choice[i]++
			if choice[i] < views[i] {
				break
			}
			choice[i] = 0
			i--
		}
		if i < 0 {
			break
		}
	}
	return NewAbstract(offsets[len(views)], facets)
}

// ToComplex materializes the pseudosphere as a colored complex.
func (ps *Pseudosphere[V]) ToComplex() *Complex[V] {
	c := NewComplex[V]()
	ps.Facets(func(s Simplex[V]) bool {
		c.AddFacet(s)
		return true
	})
	return c
}

// ContainsFacet reports whether the simplex (restricted to full support over
// the nonempty colors) is a facet of the pseudosphere.
func (ps *Pseudosphere[V]) ContainsFacet(s Simplex[V]) bool {
	if len(s) != ps.NonemptyColors() {
		return false
	}
	for _, v := range s {
		if v.Color < 0 || v.Color >= len(ps.views) {
			return false
		}
		found := false
		for _, view := range ps.views[v.Color] {
			if view == v.View {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
