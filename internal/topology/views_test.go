package topology

import (
	"testing"

	"ksettop/internal/bits"
)

func TestIViewRoundTrip(t *testing.T) {
	vals := []int{3, 0, 7, 1}
	known := bits.New(0, 2)
	iv, err := MakeIView(known, vals)
	if err != nil {
		t.Fatalf("MakeIView: %v", err)
	}
	if iv.Known() != known {
		t.Errorf("Known() = %v, want %v", iv.Known(), known)
	}
	if got, ok := iv.Value(0); !ok || got != 3 {
		t.Errorf("Value(0) = %d %v, want 3", got, ok)
	}
	if got, ok := iv.Value(2); !ok || got != 7 {
		t.Errorf("Value(2) = %d %v, want 7", got, ok)
	}
	if _, ok := iv.Value(1); ok {
		t.Errorf("Value(1) should be unknown")
	}
	if _, ok := iv.Value(-1); ok {
		t.Errorf("Value(-1) should be unknown")
	}
	if got := iv.String(); got != "{0:3 2:7}" {
		t.Errorf("String() = %q", got)
	}
}

func TestIViewValuesAndMin(t *testing.T) {
	iv, err := MakeIView(bits.New(0, 1, 3), []int{5, 2, 9, 2})
	if err != nil {
		t.Fatalf("MakeIView: %v", err)
	}
	vals := iv.Values()
	if len(vals) != 2 {
		t.Errorf("Values() = %v, want distinct {5,2}", vals)
	}
	minV, ok := iv.MinValue()
	if !ok || minV != 2 {
		t.Errorf("MinValue() = %d %v, want 2", minV, ok)
	}
	empty := IView(0)
	if _, ok := empty.MinValue(); ok {
		t.Errorf("empty view has no min")
	}
	if empty.Known() != 0 {
		t.Errorf("empty view should know nothing")
	}
	if empty.String() != "{}" {
		t.Errorf("empty view String = %q", empty.String())
	}
}

func TestIViewErrors(t *testing.T) {
	if _, err := MakeIView(bits.New(0), make([]int, 9)); err == nil {
		t.Errorf("more than 8 processes should fail")
	}
	if _, err := MakeIView(bits.New(5), []int{1, 2}); err == nil {
		t.Errorf("view member outside assignment should fail")
	}
	if _, err := MakeIView(bits.New(0), []int{255}); err == nil {
		t.Errorf("value 255 should fail")
	}
	if _, err := MakeIView(bits.New(0), []int{-1}); err == nil {
		t.Errorf("negative value should fail")
	}
	if iv, err := MakeIView(bits.New(0), []int{254}); err != nil {
		t.Errorf("value 254 should be accepted: %v", err)
	} else if got, ok := iv.Value(0); !ok || got != 254 {
		t.Errorf("Value(0) = %d %v, want 254", got, ok)
	}
}

func TestIViewInjectivity(t *testing.T) {
	// Distinct (known, values) pairs must produce distinct encodings —
	// the interpretation step relies on this.
	vals := []int{1, 0, 1}
	seen := make(map[IView]bits.Set)
	bits.Subsets(bits.Full(3), func(known bits.Set) bool {
		iv, err := MakeIView(known, vals)
		if err != nil {
			t.Fatalf("MakeIView: %v", err)
		}
		if prev, ok := seen[iv]; ok {
			t.Fatalf("views %v and %v collide at %v", prev, known, iv)
		}
		seen[iv] = known
		return true
	})
}
