package topology

import (
	"testing"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
)

func TestInputAssignments(t *testing.T) {
	inputs, err := InputAssignments(3, 2)
	if err != nil {
		t.Fatalf("InputAssignments: %v", err)
	}
	if len(inputs) != 8 {
		t.Errorf("count = %d, want 2³ = 8", len(inputs))
	}
	seen := make(map[string]bool)
	for _, a := range inputs {
		key := ""
		for _, v := range a {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Errorf("duplicate assignment %v", a)
		}
		seen[key] = true
	}
	if _, err := InputAssignments(0, 2); err == nil {
		t.Errorf("n=0 should fail")
	}
	if _, err := InputAssignments(30, 30); err == nil {
		t.Errorf("oversized input complex should fail")
	}
}

func TestInterpretSimplexDef413(t *testing.T) {
	// Def 4.13 by hand: σ with views p0↦{0,2}, p1↦{1}; τ = (5,1,0).
	sigma := mustSimplex(t,
		v(0, bits.New(0, 2)),
		v(1, bits.New(1)),
	)
	tau := Assignment{5, 1, 0}
	got, err := InterpretSimplex(sigma, tau)
	if err != nil {
		t.Fatalf("InterpretSimplex: %v", err)
	}
	v0, _ := got.ViewOf(0)
	if val, ok := v0.Value(0); !ok || val != 5 {
		t.Errorf("p0 should know (p0,5): %v", v0)
	}
	if val, ok := v0.Value(2); !ok || val != 0 {
		t.Errorf("p0 should know (p2,0): %v", v0)
	}
	if _, ok := v0.Value(1); ok {
		t.Errorf("p0 should not know p1's value: %v", v0)
	}
	v1, _ := got.ViewOf(1)
	if v1.Known() != bits.New(1) {
		t.Errorf("p1 should know only itself: %v", v1)
	}
}

func TestInterpretPseudospherePreservesStructure(t *testing.T) {
	star, _ := graph.Star(3, 0)
	ps := UninterpretedPseudosphere(star)
	tau := Assignment{0, 1, 1}
	ips, err := InterpretPseudosphere(ps, tau)
	if err != nil {
		t.Fatalf("InterpretPseudosphere: %v", err)
	}
	if ips.FacetCount() != ps.FacetCount() {
		t.Errorf("interpretation must preserve facet count: %d vs %d",
			ips.FacetCount(), ps.FacetCount())
	}
	if ips.NonemptyColors() != ps.NonemptyColors() {
		t.Errorf("interpretation must preserve colors")
	}
}

func TestInterpretComplexMatchesPerFacetInterpretation(t *testing.T) {
	star, _ := graph.Star(3, 0)
	cyc, _ := graph.Cycle(3)
	gens := []graph.Digraph{star, cyc}
	inputs, _ := InputAssignments(3, 2)

	a, err := UninterpretedComplex(gens)
	if err != nil {
		t.Fatalf("UninterpretedComplex: %v", err)
	}
	viaComplex, err := InterpretComplex(a, inputs)
	if err != nil {
		t.Fatalf("InterpretComplex: %v", err)
	}
	viaPseudospheres, err := ProtocolComplexOneRound(gens, inputs)
	if err != nil {
		t.Fatalf("ProtocolComplexOneRound: %v", err)
	}
	if viaComplex.FacetCount() != viaPseudospheres.FacetCount() {
		t.Errorf("two construction routes disagree: %d vs %d facets",
			viaComplex.FacetCount(), viaPseudospheres.FacetCount())
	}
	for _, f := range viaPseudospheres.Facets() {
		if !viaComplex.ContainsSimplex(f) {
			t.Errorf("facet %v missing from InterpretComplex route", f)
		}
	}
}

func TestProtocolComplexCliqueModel(t *testing.T) {
	// In the clique-only model every process sees everything, so each input
	// facet yields exactly one protocol facet.
	clique, _ := graph.Complete(3)
	inputs, _ := InputAssignments(3, 2)
	pc, err := ProtocolComplexOneRound([]graph.Digraph{clique}, inputs)
	if err != nil {
		t.Fatalf("ProtocolComplexOneRound: %v", err)
	}
	if pc.FacetCount() != 8 {
		t.Errorf("facets = %d, want 8 (one per input)", pc.FacetCount())
	}
	// Full views separate all inputs: the complex is 8 disjoint simplexes,
	// hence not even 0-connected.
	ac, _, err := pc.ToAbstract()
	if err != nil {
		t.Fatalf("ToAbstract: %v", err)
	}
	ok, betti, err := IsHomologicallyKConnected(ac, 0)
	if err != nil {
		t.Fatalf("IsHomologicallyKConnected: %v", err)
	}
	if ok {
		t.Errorf("clique protocol complex should be disconnected (consensus solvable); betti=%v", betti)
	}
	if betti[0] != 7 {
		t.Errorf("β̃_0 = %d, want 7 (8 components)", betti[0])
	}
}

func TestProtocolComplexStarModelConnectivity(t *testing.T) {
	// Sym(star) on n=3: the Thm 5.4 lower bound gives l = 1, i.e. the
	// one-round protocol complex over 3 input values is 1-connected
	// (2-set agreement impossible — matches Thm 6.13 with s=1: n−s = 2).
	star, _ := graph.Star(3, 0)
	sym, _ := graph.SymClosure([]graph.Digraph{star})
	inputs, _ := InputAssignments(3, 3)
	pc, err := ProtocolComplexOneRound(sym, inputs)
	if err != nil {
		t.Fatalf("ProtocolComplexOneRound: %v", err)
	}
	ac, _, err := pc.ToAbstract()
	if err != nil {
		t.Fatalf("ToAbstract: %v", err)
	}
	ok, betti, err := IsHomologicallyKConnected(ac, 1)
	if err != nil {
		t.Fatalf("IsHomologicallyKConnected: %v", err)
	}
	if !ok {
		t.Errorf("star-model protocol complex should be 1-connected; betti=%v", betti)
	}
}

func TestProtocolComplexErrors(t *testing.T) {
	if _, err := ProtocolComplexOneRound(nil, nil); err == nil {
		t.Errorf("empty generator set should fail")
	}
	g := graph.MustNew(3)
	badInputs := []Assignment{{0, 1}} // too short
	if _, err := ProtocolComplexOneRound([]graph.Digraph{g}, badInputs); err == nil {
		t.Errorf("short assignment should fail")
	}
}
