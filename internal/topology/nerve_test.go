package topology

import "testing"

func TestNerveSharedVertex(t *testing.T) {
	// Two triangles sharing vertex 2: nerve = one edge.
	a := mustAbstract(t, 5, [][]int{{0, 1, 2}})
	b := mustAbstract(t, 5, [][]int{{2, 3, 4}})
	nerve, err := Nerve([]*AbstractComplex{a, b})
	if err != nil {
		t.Fatalf("Nerve: %v", err)
	}
	if nerve.FacetCount() != 1 || nerve.Dimension() != 1 {
		t.Errorf("nerve = %v, want single edge", nerve)
	}
	if !NerveIsSimplex(nerve) {
		t.Errorf("nerve on two overlapping elements should be a simplex")
	}
}

func TestNerveDisjoint(t *testing.T) {
	a := mustAbstract(t, 4, [][]int{{0, 1}})
	b := mustAbstract(t, 4, [][]int{{2, 3}})
	nerve, err := Nerve([]*AbstractComplex{a, b})
	if err != nil {
		t.Fatalf("Nerve: %v", err)
	}
	if nerve.Dimension() != 0 || nerve.SimplexCount(0) != 2 {
		t.Errorf("nerve of disjoint cover should be two isolated vertices: %v", nerve)
	}
	if NerveIsSimplex(nerve) {
		t.Errorf("disjoint nerve is not a simplex")
	}
}

func TestNerveCycleCover(t *testing.T) {
	// Three arcs covering a circle pairwise-overlapping but with empty
	// triple intersection: nerve is the boundary of a triangle (a circle).
	// Arcs on vertices 0..5 (hexagon): {0,1,2}, {2,3,4}, {4,5,0}.
	a := mustAbstract(t, 6, [][]int{{0, 1}, {1, 2}})
	b := mustAbstract(t, 6, [][]int{{2, 3}, {3, 4}})
	c := mustAbstract(t, 6, [][]int{{4, 5}, {5, 0}})
	nerve, err := Nerve([]*AbstractComplex{a, b, c})
	if err != nil {
		t.Fatalf("Nerve: %v", err)
	}
	if nerve.FacetCount() != 3 || nerve.Dimension() != 1 {
		t.Errorf("nerve should be the triangle boundary, got %v facets dim %d",
			nerve.FacetCount(), nerve.Dimension())
	}
	// Nerve lemma sanity: both the hexagon and its nerve are circles.
	hexagon := mustAbstract(t, 6, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	bHex, _ := ReducedBettiNumbers(hexagon, 1)
	bNerve, _ := ReducedBettiNumbers(nerve, 1)
	if bHex[0] != bNerve[0] || bHex[1] != bNerve[1] {
		t.Errorf("nerve lemma sanity failed: hexagon %v vs nerve %v", bHex, bNerve)
	}
}

func TestNerveEdgeCases(t *testing.T) {
	nerve, err := Nerve(nil)
	if err != nil || !nerve.IsEmpty() {
		t.Errorf("empty cover should give empty nerve")
	}
	a := mustAbstract(t, 3, [][]int{{0}})
	empty := mustAbstract(t, 3, nil)
	nerve, err = Nerve([]*AbstractComplex{a, empty})
	if err != nil {
		t.Fatalf("Nerve: %v", err)
	}
	if nerve.SimplexCount(0) != 1 {
		t.Errorf("empty cover element should contribute no nerve vertex: %v", nerve)
	}
	b := mustAbstract(t, 4, [][]int{{0}})
	if _, err := Nerve([]*AbstractComplex{a, b}); err == nil {
		t.Errorf("mismatched ambient vertex sets should error")
	}
}
