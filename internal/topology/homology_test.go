package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func bettisOf(t *testing.T, n int, gens [][]int, maxDim int) []int {
	t.Helper()
	c := mustAbstract(t, n, gens)
	b, err := ReducedBettiNumbers(c, maxDim)
	if err != nil {
		t.Fatalf("ReducedBettiNumbers: %v", err)
	}
	return b
}

func TestBettiClassicSpaces(t *testing.T) {
	tests := []struct {
		name string
		n    int
		gens [][]int
		want []int
	}{
		{"point", 1, [][]int{{0}}, []int{0, 0}},
		{"two points", 2, [][]int{{0}, {1}}, []int{1, 0}},
		{"segment", 2, [][]int{{0, 1}}, []int{0, 0}},
		{"circle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1}},
		{"disk", 3, [][]int{{0, 1, 2}}, []int{0, 0}},
		{"two triangles sharing an edge", 4, [][]int{{0, 1, 2}, {1, 2, 3}}, []int{0, 0}},
		{"two triangles sharing a vertex", 5, [][]int{{0, 1, 2}, {2, 3, 4}}, []int{0, 0}},
		{"wedge of two circles", 5, [][]int{
			{0, 1}, {1, 2}, {0, 2},
			{2, 3}, {3, 4}, {2, 4},
		}, []int{0, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := bettisOf(t, tt.n, tt.gens, len(tt.want)-1)
			for q := range tt.want {
				if got[q] != tt.want[q] {
					t.Errorf("β̃_%d = %d, want %d (all: %v)", q, got[q], tt.want[q], got)
				}
			}
		})
	}
}

func TestBettiSphere(t *testing.T) {
	got := bettisOf(t, 4, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}, 2)
	want := []int{0, 0, 1}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("S²: β̃_%d = %d, want %d", q, got[q], want[q])
		}
	}
}

func TestBettiThreeSphere(t *testing.T) {
	// ∂Δ⁴: all 3-faces of the 4-simplex. β̃_3 = 1, lower ones vanish.
	gens := [][]int{
		{0, 1, 2, 3}, {0, 1, 2, 4}, {0, 1, 3, 4}, {0, 2, 3, 4}, {1, 2, 3, 4},
	}
	got := bettisOf(t, 5, gens, 3)
	want := []int{0, 0, 0, 1}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("S³: β̃_%d = %d, want %d", q, got[q], want[q])
		}
	}
}

func TestBettiProjectivePlaneGF2(t *testing.T) {
	// Minimal 6-vertex triangulation of RP². Over GF(2): β̃_1 = β̃_2 = 1,
	// which distinguishes field-of-two homology from rational homology and
	// exercises the torsion-sensitive path.
	gens := [][]int{
		{0, 1, 4}, {0, 1, 5}, {0, 2, 3}, {0, 2, 5}, {0, 3, 4},
		{1, 2, 3}, {1, 2, 4}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5},
	}
	c := mustAbstract(t, 6, gens)
	if chi := c.EulerCharacteristic(); chi != 1 {
		t.Fatalf("RP² should have χ = 1, got %d (bad triangulation?)", chi)
	}
	got := bettisOf(t, 6, gens, 2)
	want := []int{0, 1, 1}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("RP²: β̃_%d = %d, want %d", q, got[q], want[q])
		}
	}
}

func TestIsHomologicallyKConnected(t *testing.T) {
	circle := mustAbstract(t, 3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	ok, _, err := IsHomologicallyKConnected(circle, 0)
	if err != nil || !ok {
		t.Errorf("circle is 0-connected (path connected): ok=%v err=%v", ok, err)
	}
	ok, betti, _ := IsHomologicallyKConnected(circle, 1)
	if ok {
		t.Errorf("circle is not 1-connected; betti=%v", betti)
	}

	empty := mustAbstract(t, 3, nil)
	if ok, _, _ := IsHomologicallyKConnected(empty, -1); ok {
		t.Errorf("empty complex is not (-1)-connected")
	}
	if ok, _, _ := IsHomologicallyKConnected(empty, -2); !ok {
		t.Errorf("every complex is (-2)-connected by convention")
	}
	if ok, _, _ := IsHomologicallyKConnected(empty, 0); ok {
		t.Errorf("empty complex is not 0-connected")
	}
	point := mustAbstract(t, 1, [][]int{{0}})
	if ok, _, _ := IsHomologicallyKConnected(point, -1); !ok {
		t.Errorf("nonempty complex is (-1)-connected")
	}
}

func TestReducedBettiErrors(t *testing.T) {
	empty := mustAbstract(t, 2, nil)
	if _, err := ReducedBettiNumbers(empty, 0); err == nil {
		t.Errorf("empty complex should be rejected")
	}
	pt := mustAbstract(t, 1, [][]int{{0}})
	if _, err := ReducedBettiNumbers(pt, -1); err == nil {
		t.Errorf("negative dimension should be rejected")
	}
}

func TestQuickEulerPoincare(t *testing.T) {
	// Over a field, χ = Σ (-1)^q dim H_q = 1 + Σ (-1)^q β̃_q for nonempty
	// complexes. This ties the rank computations to the simplex counts.
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var gens [][]int
		for i := 0; i < 5; i++ {
			size := 1 + r.Intn(4)
			s := make([]int, size)
			for j := range s {
				s[j] = r.Intn(7)
			}
			gens = append(gens, s)
		}
		c, err := NewAbstract(7, gens)
		if err != nil || c.IsEmpty() {
			return true
		}
		d := c.Dimension()
		betti, err := ReducedBettiNumbers(c, d)
		if err != nil {
			return false
		}
		alt := 1
		for q := 0; q <= d; q++ {
			if q%2 == 0 {
				alt += betti[q]
			} else {
				alt -= betti[q]
			}
		}
		return alt == c.EulerCharacteristic()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("Euler–Poincaré check failed: %v", err)
	}
}

func TestQuickConeIsAcyclic(t *testing.T) {
	// Coning every facet to a fresh apex yields a contractible complex:
	// all reduced Betti numbers must vanish.
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(10))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		apex := 6
		var gens [][]int
		for i := 0; i < 4; i++ {
			size := 1 + r.Intn(3)
			s := map[int]bool{}
			for j := 0; j < size; j++ {
				s[r.Intn(6)] = true
			}
			gen := []int{apex}
			for v := range s {
				gen = append(gen, v)
			}
			gens = append(gens, gen)
		}
		c, err := NewAbstract(7, gens)
		if err != nil || c.IsEmpty() {
			return true
		}
		betti, err := ReducedBettiNumbers(c, c.Dimension())
		if err != nil {
			return false
		}
		for _, b := range betti {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("cone acyclicity failed: %v", err)
	}
}
