package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ksettop/internal/homology"
)

func bettisOf(t *testing.T, n int, gens [][]int, maxDim int) []int {
	t.Helper()
	c := mustAbstract(t, n, gens)
	b, err := ReducedBettiNumbers(c, maxDim)
	if err != nil {
		t.Fatalf("ReducedBettiNumbers: %v", err)
	}
	return b
}

func TestBettiClassicSpaces(t *testing.T) {
	tests := []struct {
		name string
		n    int
		gens [][]int
		want []int
	}{
		{"point", 1, [][]int{{0}}, []int{0, 0}},
		{"two points", 2, [][]int{{0}, {1}}, []int{1, 0}},
		{"segment", 2, [][]int{{0, 1}}, []int{0, 0}},
		{"circle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, []int{0, 1}},
		{"disk", 3, [][]int{{0, 1, 2}}, []int{0, 0}},
		{"two triangles sharing an edge", 4, [][]int{{0, 1, 2}, {1, 2, 3}}, []int{0, 0}},
		{"two triangles sharing a vertex", 5, [][]int{{0, 1, 2}, {2, 3, 4}}, []int{0, 0}},
		{"wedge of two circles", 5, [][]int{
			{0, 1}, {1, 2}, {0, 2},
			{2, 3}, {3, 4}, {2, 4},
		}, []int{0, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := bettisOf(t, tt.n, tt.gens, len(tt.want)-1)
			for q := range tt.want {
				if got[q] != tt.want[q] {
					t.Errorf("β̃_%d = %d, want %d (all: %v)", q, got[q], tt.want[q], got)
				}
			}
		})
	}
}

func TestBettiSphere(t *testing.T) {
	got := bettisOf(t, 4, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}, 2)
	want := []int{0, 0, 1}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("S²: β̃_%d = %d, want %d", q, got[q], want[q])
		}
	}
}

func TestBettiThreeSphere(t *testing.T) {
	// ∂Δ⁴: all 3-faces of the 4-simplex. β̃_3 = 1, lower ones vanish.
	gens := [][]int{
		{0, 1, 2, 3}, {0, 1, 2, 4}, {0, 1, 3, 4}, {0, 2, 3, 4}, {1, 2, 3, 4},
	}
	got := bettisOf(t, 5, gens, 3)
	want := []int{0, 0, 0, 1}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("S³: β̃_%d = %d, want %d", q, got[q], want[q])
		}
	}
}

func TestBettiProjectivePlaneGF2(t *testing.T) {
	// Minimal 6-vertex triangulation of RP². Over GF(2): β̃_1 = β̃_2 = 1,
	// which distinguishes field-of-two homology from rational homology and
	// exercises the torsion-sensitive path.
	gens := [][]int{
		{0, 1, 4}, {0, 1, 5}, {0, 2, 3}, {0, 2, 5}, {0, 3, 4},
		{1, 2, 3}, {1, 2, 4}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5},
	}
	c := mustAbstract(t, 6, gens)
	if chi := c.EulerCharacteristic(); chi != 1 {
		t.Fatalf("RP² should have χ = 1, got %d (bad triangulation?)", chi)
	}
	got := bettisOf(t, 6, gens, 2)
	want := []int{0, 1, 1}
	for q := range want {
		if got[q] != want[q] {
			t.Errorf("RP²: β̃_%d = %d, want %d", q, got[q], want[q])
		}
	}
}

func TestIsHomologicallyKConnected(t *testing.T) {
	circle := mustAbstract(t, 3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	ok, _, err := IsHomologicallyKConnected(circle, 0)
	if err != nil || !ok {
		t.Errorf("circle is 0-connected (path connected): ok=%v err=%v", ok, err)
	}
	ok, betti, _ := IsHomologicallyKConnected(circle, 1)
	if ok {
		t.Errorf("circle is not 1-connected; betti=%v", betti)
	}

	empty := mustAbstract(t, 3, nil)
	if ok, _, _ := IsHomologicallyKConnected(empty, -1); ok {
		t.Errorf("empty complex is not (-1)-connected")
	}
	if ok, _, _ := IsHomologicallyKConnected(empty, -2); !ok {
		t.Errorf("every complex is (-2)-connected by convention")
	}
	if ok, _, _ := IsHomologicallyKConnected(empty, 0); ok {
		t.Errorf("empty complex is not 0-connected")
	}
	point := mustAbstract(t, 1, [][]int{{0}})
	if ok, _, _ := IsHomologicallyKConnected(point, -1); !ok {
		t.Errorf("nonempty complex is (-1)-connected")
	}
}

func TestReducedBettiErrors(t *testing.T) {
	empty := mustAbstract(t, 2, nil)
	if _, err := ReducedBettiNumbers(empty, 0); err == nil {
		t.Errorf("empty complex should be rejected")
	}
	pt := mustAbstract(t, 1, [][]int{{0}})
	if _, err := ReducedBettiNumbers(pt, -1); err == nil {
		t.Errorf("negative dimension should be rejected")
	}
}

func TestQuickEulerPoincare(t *testing.T) {
	// Over a field, χ = Σ (-1)^q dim H_q = 1 + Σ (-1)^q β̃_q for nonempty
	// complexes. This ties the rank computations to the simplex counts.
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(9))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var gens [][]int
		for i := 0; i < 5; i++ {
			size := 1 + r.Intn(4)
			s := make([]int, size)
			for j := range s {
				s[j] = r.Intn(7)
			}
			gens = append(gens, s)
		}
		c, err := NewAbstract(7, gens)
		if err != nil || c.IsEmpty() {
			return true
		}
		d := c.Dimension()
		betti, err := ReducedBettiNumbers(c, d)
		if err != nil {
			return false
		}
		alt := 1
		for q := 0; q <= d; q++ {
			if q%2 == 0 {
				alt += betti[q]
			} else {
				alt -= betti[q]
			}
		}
		return alt == c.EulerCharacteristic()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("Euler–Poincaré check failed: %v", err)
	}
}

func TestQuickConeIsAcyclic(t *testing.T) {
	// Coning every facet to a fresh apex yields a contractible complex:
	// all reduced Betti numbers must vanish.
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(10))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		apex := 6
		var gens [][]int
		for i := 0; i < 4; i++ {
			size := 1 + r.Intn(3)
			s := map[int]bool{}
			for j := 0; j < size; j++ {
				s[r.Intn(6)] = true
			}
			gen := []int{apex}
			for v := range s {
				gen = append(gen, v)
			}
			gens = append(gens, gen)
		}
		c, err := NewAbstract(7, gens)
		if err != nil || c.IsEmpty() {
			return true
		}
		betti, err := ReducedBettiNumbers(c, c.Dimension())
		if err != nil {
			return false
		}
		for _, b := range betti {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("cone acyclicity failed: %v", err)
	}
}

// genericBetti drives the oracle's generic [][]int machinery directly
// (ReducedBettiNumbersOracle would itself pick the packed path on small
// complexes).
func genericBetti(c *AbstractComplex, maxDim int) []int {
	simplexes := c.SimplexLevels(maxDim + 1)
	rank := make([]int, maxDim+2)
	rank[0] = 1
	for q := 1; q <= maxDim+1; q++ {
		rank[q] = boundaryRank(simplexes[q], simplexes[q-1])
	}
	betti := make([]int, maxDim+1)
	for q := 0; q <= maxDim; q++ {
		betti[q] = len(simplexes[q]) - rank[q] - rank[q+1]
	}
	return betti
}

// TestHybridSparsePackedGenericCrossCheck fuzzes deterministically-seeded
// random complexes on ≤ 6 vertices and requires the hybrid engine, the
// pure-sparse engine, the bit-packed fast path and the generic fallback to
// produce identical Betti vectors in every dimension — the implementations
// share no reduction code. The whole corpus runs twice: once at the stock
// sparse→dense promotion threshold (columns this small never promote) and
// once with the threshold forced to 2 entries, so reduced columns straddle
// the promotion boundary and the dense word-XOR, the dense-vs-sparse mixes
// and the sparse merges are all exercised on the same instances.
func TestHybridSparsePackedGenericCrossCheck(t *testing.T) {
	defer homology.SetPromotionThreshold(0)
	for _, promote := range []int{0, 2} {
		homology.SetPromotionThreshold(promote)
		rng := rand.New(rand.NewSource(20200613))
		for trial := 0; trial < 200; trial++ {
			numVerts := 2 + rng.Intn(5) // 2..6
			numGens := 1 + rng.Intn(6)
			var gens [][]int
			for i := 0; i < numGens; i++ {
				size := 1 + rng.Intn(numVerts)
				s := make([]int, size)
				for j := range s {
					s[j] = rng.Intn(numVerts)
				}
				gens = append(gens, s)
			}
			c, err := NewAbstract(numVerts, gens)
			if err != nil || c.IsEmpty() {
				continue
			}
			maxDim := c.Dimension()
			hybrid, err := homology.ReducedBetti(c, maxDim)
			if err != nil {
				t.Fatalf("promote=%d trial %d: hybrid: %v", promote, trial, err)
			}
			sparse, err := homology.ReducedBettiSparse(c, maxDim)
			if err != nil {
				t.Fatalf("promote=%d trial %d: sparse: %v", promote, trial, err)
			}
			packed, ok := reducedBettiPacked(c, maxDim)
			if !ok {
				t.Fatalf("trial %d: packed path rejected a %d-vertex complex", trial, numVerts)
			}
			generic := genericBetti(c, maxDim)
			for q := 0; q <= maxDim; q++ {
				if hybrid[q] != packed[q] || hybrid[q] != generic[q] || hybrid[q] != sparse[q] {
					t.Errorf("promote=%d trial %d (gens %v): dim %d: hybrid %d, sparse %d, packed %d, generic %d",
						promote, trial, gens, q, hybrid[q], sparse[q], packed[q], generic[q])
				}
			}
		}
	}
}

// TestEngineSwitch pins that every engine setting answers through
// ReducedBettiNumbers and agrees.
func TestEngineSwitch(t *testing.T) {
	defer SetHomologyEngine(EngineHybrid)
	circle := mustAbstract(t, 3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	want := []int{0, 1}
	for _, e := range []HomologyEngine{EngineHybrid, EngineSparse, EnginePacked} {
		SetHomologyEngine(e)
		if got := CurrentHomologyEngine(); got != e {
			t.Fatalf("CurrentHomologyEngine = %v, want %v", got, e)
		}
		betti, err := ReducedBettiNumbers(circle, 1)
		if err != nil {
			t.Fatal(err)
		}
		for q := range want {
			if betti[q] != want[q] {
				t.Errorf("engine %v: β̃_%d = %d, want %d", e, q, betti[q], want[q])
			}
		}
	}
}

// TestReducedBettiNumbersFromLevels pins the levels-accepting entry point
// against the facet-based one on every engine: a caller holding
// SimplexLevels output must get identical Betti vectors without the engine
// re-walking the facets.
func TestReducedBettiNumbersFromLevels(t *testing.T) {
	defer SetHomologyEngine(EngineHybrid)
	cases := []struct {
		name   string
		n      int
		gens   [][]int
		maxDim int
	}{
		{"circle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, 1},
		{"RP²", 6, [][]int{
			{0, 1, 4}, {0, 1, 5}, {0, 2, 3}, {0, 2, 5}, {0, 3, 4},
			{1, 2, 3}, {1, 2, 4}, {1, 3, 5}, {2, 4, 5}, {3, 4, 5},
		}, 2},
	}
	for _, tc := range cases {
		c := mustAbstract(t, tc.n, tc.gens)
		levels := c.SimplexLevels(tc.maxDim + 1)
		for _, e := range []HomologyEngine{EngineHybrid, EngineSparse, EnginePacked} {
			SetHomologyEngine(e)
			want, err := ReducedBettiNumbers(c, tc.maxDim)
			if err != nil {
				t.Fatalf("%s engine %v: %v", tc.name, e, err)
			}
			got, err := ReducedBettiNumbersFromLevels(c, levels, tc.maxDim)
			if err != nil {
				t.Fatalf("%s engine %v: FromLevels: %v", tc.name, e, err)
			}
			for q := range want {
				if got[q] != want[q] {
					t.Errorf("%s engine %v: FromLevels β̃_%d = %d, want %d", tc.name, e, q, got[q], want[q])
				}
			}
		}
		SetHomologyEngine(EngineHybrid)
		// A level table that stops short of maxDim+1 must be rejected, not
		// silently treated as a smaller complex.
		if _, err := ReducedBettiNumbersFromLevels(c, c.SimplexLevels(tc.maxDim), tc.maxDim); err == nil {
			t.Errorf("%s: undersized level table should be rejected", tc.name)
		}
	}
}

// TestPackedHomologyCapable pins the cap the sparse engine removes.
func TestPackedHomologyCapable(t *testing.T) {
	small := mustAbstract(t, 4, [][]int{{0, 1, 2, 3}})
	if !PackedHomologyCapable(small, 2) {
		t.Error("4-vertex complex should be packable at maxDim 2")
	}
	var wide []int
	for v := 0; v < 10; v++ {
		wide = append(wide, v)
	}
	c := mustAbstract(t, 10, [][]int{wide})
	if PackedHomologyCapable(c, 8) {
		t.Error("10-vertex simplex at maxDim 8 needs 10-vertex levels; packed path should reject")
	}
}

// TestPackedAndGenericRanksAgree cross-checks the bit-packed fast path
// against the generic [][]int path on complexes both can handle, and pins
// the generic path on a complex too wide to pack (9-sphere boundary needs
// 10-vertex facets).
func TestPackedAndGenericRanksAgree(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		gens   [][]int
		maxDim int
	}{
		{"2-sphere", 4, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}, 2},
		{"two triangles sharing an edge", 4, [][]int{{0, 1, 2}, {1, 2, 3}}, 2},
		{"circle", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustAbstract(t, tc.n, tc.gens)
			packed, ok := reducedBettiPacked(c, tc.maxDim)
			if !ok {
				t.Fatalf("packed path rejected a small complex")
			}
			// Drive the generic machinery directly (ReducedBettiNumbers
			// would itself pick the packed path on complexes this small).
			simplexes := make([][][]int, tc.maxDim+2)
			for q := 0; q <= tc.maxDim+1; q++ {
				simplexes[q] = c.Simplexes(q)
			}
			rank := make([]int, tc.maxDim+2)
			rank[0] = 1
			for q := 1; q <= tc.maxDim+1; q++ {
				rank[q] = boundaryRank(simplexes[q], simplexes[q-1])
			}
			generic := make([]int, tc.maxDim+1)
			for q := 0; q <= tc.maxDim; q++ {
				generic[q] = len(simplexes[q]) - rank[q] - rank[q+1]
			}
			for q := range packed {
				if packed[q] != generic[q] {
					t.Errorf("dim %d: packed %d != generic %d", q, packed[q], generic[q])
				}
			}
		})
	}

	// Boundary of the 9-simplex: packWidth(10, 10) = 0, so this exercises
	// the generic path; β̃_8 = 1 and everything below vanishes.
	var facets [][]int
	for omit := 0; omit < 10; omit++ {
		f := make([]int, 0, 9)
		for v := 0; v < 10; v++ {
			if v != omit {
				f = append(f, v)
			}
		}
		facets = append(facets, f)
	}
	c := mustAbstract(t, 10, facets)
	if w := packWidth(c.NumVertices(), 10); w != 0 {
		t.Fatalf("packWidth(10,10) = %d, want 0 (test must hit the generic path)", w)
	}
	betti, err := ReducedBettiNumbers(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 8; q++ {
		if betti[q] != 0 {
			t.Errorf("9-sphere boundary: β̃_%d = %d, want 0", q, betti[q])
		}
	}
	if betti[8] != 1 {
		t.Errorf("9-sphere boundary: β̃_8 = %d, want 1", betti[8])
	}
}
