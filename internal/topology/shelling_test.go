package topology

import "testing"

func TestFigure4aShellable(t *testing.T) {
	// Figure 4(a): two triangles glued along an edge.
	c := mustAbstract(t, 4, [][]int{{0, 1, 2}, {1, 2, 3}})
	order, ok, err := FindShellingOrder(c)
	if err != nil {
		t.Fatalf("FindShellingOrder: %v", err)
	}
	if !ok {
		t.Fatalf("Figure 4a complex must be shellable")
	}
	valid, err := IsShellingOrder(c, order)
	if err != nil || !valid {
		t.Errorf("returned order %v rejected: valid=%v err=%v", order, valid, err)
	}
}

func TestFigure4bNotShellable(t *testing.T) {
	// Figure 4(b): two triangles sharing only a vertex. The intersection of
	// the second facet with the first is 0-dimensional, never (d−1) = 1.
	c := mustAbstract(t, 5, [][]int{{0, 1, 2}, {2, 3, 4}})
	ok, err := IsShellable(c)
	if err != nil {
		t.Fatalf("IsShellable: %v", err)
	}
	if ok {
		t.Errorf("Figure 4b complex must not be shellable")
	}
}

func TestIsShellingOrderValidation(t *testing.T) {
	c := mustAbstract(t, 4, [][]int{{0, 1, 2}, {1, 2, 3}})
	if _, err := IsShellingOrder(c, []int{0}); err == nil {
		t.Errorf("wrong-length order should error")
	}
	if _, err := IsShellingOrder(c, []int{0, 0}); err == nil {
		t.Errorf("repeated index should error")
	}
	ok, err := IsShellingOrder(c, []int{0, 1})
	if err != nil || !ok {
		t.Errorf("[0,1] should be a shelling order: %v %v", ok, err)
	}
	ok, _ = IsShellingOrder(c, []int{1, 0})
	if !ok {
		t.Errorf("[1,0] should be a shelling order by symmetry")
	}

	nonPure := mustAbstract(t, 4, [][]int{{0, 1, 2}, {3}})
	if _, err := IsShellingOrder(nonPure, []int{0, 1}); err == nil {
		t.Errorf("non-pure complex should error")
	}
	if _, _, err := FindShellingOrder(nonPure); err == nil {
		t.Errorf("non-pure complex should error in search")
	}
}

func TestLemma415BoundarySubcomplexAnyOrderShells(t *testing.T) {
	// Lemma 4.15 ([HKR13] Thm 13.2.2): any pure (d−1)-subcomplex of the
	// boundary of a d-simplex is shellable and EVERY facet order is a
	// shelling order. Check all orders of ∂Δ³ and of a 3-facet subcomplex.
	full := [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	for _, facets := range [][][]int{full, full[:3], full[:2]} {
		c := mustAbstract(t, 4, facets)
		m := c.FacetCount()
		perms := allPerms(m)
		for _, p := range perms {
			ok, err := IsShellingOrder(c, p)
			if err != nil {
				t.Fatalf("IsShellingOrder(%v): %v", p, err)
			}
			if !ok {
				t.Errorf("order %v of a boundary subcomplex must shell (Lemma 4.15)", p)
			}
		}
	}
}

func allPerms(m int) [][]int {
	var out [][]int
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == m {
			cp := make([]int, m)
			copy(cp, perm)
			out = append(out, cp)
			return
		}
		for i := k; i < m; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

func TestShellableImpliesHomologyOfWedgeOfSpheres(t *testing.T) {
	// A shellable d-complex is homotopy equivalent to a wedge of d-spheres:
	// reduced homology vanishes below d. Cross-check the two machineries on
	// the boundary of the tetrahedron (shellable, and a 2-sphere).
	c := mustAbstract(t, 4, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}})
	ok, err := IsShellable(c)
	if err != nil || !ok {
		t.Fatalf("∂Δ³ must be shellable: %v %v", ok, err)
	}
	betti, err := ReducedBettiNumbers(c, 2)
	if err != nil {
		t.Fatalf("ReducedBettiNumbers: %v", err)
	}
	if betti[0] != 0 || betti[1] != 0 || betti[2] != 1 {
		t.Errorf("∂Δ³ betti = %v, want [0 0 1]", betti)
	}
}

func TestEmptyAndSingleFacetShellable(t *testing.T) {
	empty := mustAbstract(t, 3, nil)
	ok, err := IsShellable(empty)
	if err != nil || !ok {
		t.Errorf("empty complex is trivially shellable")
	}
	single := mustAbstract(t, 3, [][]int{{0, 1, 2}})
	ok, err = IsShellable(single)
	if err != nil || !ok {
		t.Errorf("single facet is shellable")
	}
}
