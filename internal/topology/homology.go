package topology

import "fmt"

// ReducedBettiNumbers computes the reduced Betti numbers β̃_0 … β̃_maxDim of
// the complex over the field GF(2).
//
// β̃_q = dim ker ∂_q − dim im ∂_{q+1}, with the augmented chain complex
// (∂_0 maps every vertex to the generator of C_{-1}), so β̃_0 is
// (number of connected components) − 1.
//
// Why homology: k-connectivity (the property the paper's impossibility
// theorem consumes, [HKR13] Thm 10.3.1) is undecidable in general, but a
// k-connected complex necessarily has vanishing reduced homology in
// dimensions ≤ k. Checking β̃_0 = … = β̃_k = 0 therefore machine-validates
// the paper's connectivity claims on concrete instances: a violation would
// refute the claim outright, agreement corroborates it. See DESIGN.md.
func ReducedBettiNumbers(c *AbstractComplex, maxDim int) ([]int, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("topology: negative homology dimension %d", maxDim)
	}
	if c.IsEmpty() {
		return nil, fmt.Errorf("topology: reduced homology of the empty complex is undefined here")
	}

	// simplexes[q] for q = 0..maxDim+1; indexes for boundary lookups.
	counts := make([]int, maxDim+2)
	index := make([]map[string]int, maxDim+2)
	simplexes := make([][][]int, maxDim+2)
	for q := 0; q <= maxDim+1; q++ {
		sx := c.Simplexes(q)
		simplexes[q] = sx
		counts[q] = len(sx)
		index[q] = make(map[string]int, len(sx))
		for i, s := range sx {
			index[q][simplexKey(s)] = i
		}
	}

	// rank[q] = rank of ∂_q over GF(2).
	// ∂_0 is the augmentation map: rank 1 since the complex is nonempty.
	rank := make([]int, maxDim+2)
	rank[0] = 1
	for q := 1; q <= maxDim+1; q++ {
		rank[q] = boundaryRank(simplexes[q], index[q-1], counts[q-1])
	}

	betti := make([]int, maxDim+1)
	for q := 0; q <= maxDim; q++ {
		kernel := counts[q] - rank[q]
		betti[q] = kernel - rank[q+1]
	}
	return betti, nil
}

// boundaryRank computes the GF(2) rank of the boundary matrix whose columns
// are the given q-simplexes and whose rows are (q-1)-simplexes, using
// column-reduction with bit-packed columns.
func boundaryRank(cols [][]int, rowIndex map[string]int, numRows int) int {
	if len(cols) == 0 || numRows == 0 {
		return 0
	}
	words := (numRows + 63) / 64
	// pivots[r] = column (bit vector) whose lowest set bit is row r.
	pivots := make(map[int][]uint64, numRows)
	rank := 0
	face := make([]int, 0, 16)
	col := make([]uint64, words)
	for _, simplex := range cols {
		for i := range col {
			col[i] = 0
		}
		// Column = sum of the (q-1)-faces of the simplex.
		for omit := range simplex {
			face = face[:0]
			for j, v := range simplex {
				if j != omit {
					face = append(face, v)
				}
			}
			r, ok := rowIndex[simplexKey(face)]
			if !ok {
				// Every face of a simplex of the complex is in the complex;
				// missing index would be an internal inconsistency.
				continue
			}
			col[r/64] ^= 1 << uint(r%64)
		}
		// Reduce against existing pivots.
		for {
			low := lowestBit(col)
			if low < 0 {
				break
			}
			p, ok := pivots[low]
			if !ok {
				cp := make([]uint64, words)
				copy(cp, col)
				pivots[low] = cp
				rank++
				break
			}
			for i := range col {
				col[i] ^= p[i]
			}
		}
	}
	return rank
}

func lowestBit(v []uint64) int {
	for i, w := range v {
		if w != 0 {
			b := 0
			for w&1 == 0 {
				w >>= 1
				b++
			}
			return i*64 + b
		}
	}
	return -1
}

// IsHomologicallyKConnected reports whether all reduced Betti numbers up to
// dimension k vanish. k = -1 means "nonempty", which always holds for
// nonempty complexes and fails otherwise.
func IsHomologicallyKConnected(c *AbstractComplex, k int) (bool, []int, error) {
	if k < -1 {
		return true, nil, nil // trivially (-2)-connected, even when empty
	}
	if k == -1 {
		return !c.IsEmpty(), nil, nil
	}
	if c.IsEmpty() {
		return false, nil, nil
	}
	betti, err := ReducedBettiNumbers(c, k)
	if err != nil {
		return false, nil, err
	}
	for _, b := range betti {
		if b != 0 {
			return false, betti, nil
		}
	}
	return true, betti, nil
}
