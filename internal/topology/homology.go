package topology

import (
	"context"
	"fmt"
	mathbits "math/bits"
	"slices"
	"sort"
	"sync/atomic"

	"ksettop/internal/homology"
	"ksettop/internal/runctx"
)

// HomologyEngine selects the GF(2) reduction backend behind
// ReducedBettiNumbers.
type HomologyEngine int32

const (
	// EngineHybrid is the hybrid-column engine in internal/homology:
	// apparent-pairs preprocessing over an implicit boundary matrix, sparse
	// columns that promote to bit-packed dense blocks, pooled arenas, block
	// reduction across the worker pool. The default.
	EngineHybrid HomologyEngine = iota
	// EngineSparse is the PR-3 pure-sparse CSC reduction (merge-based XOR,
	// no apparent pass), kept as an independent cross-check of the hybrid
	// engine and reachable via the cmds' -engine=sparse flag.
	EngineSparse
	// EnginePacked is the seed implementation — single-word bit-packed
	// columns with a dense-column generic fallback — kept as the test
	// oracle and reachable via the cmds' -engine=packed flag.
	EnginePacked
)

var homologyEngine atomic.Int32 // EngineHybrid unless overridden

// CurrentHomologyEngine returns the active reduction backend.
func CurrentHomologyEngine() HomologyEngine { return HomologyEngine(homologyEngine.Load()) }

// SetHomologyEngine switches the reduction backend process-wide. Safe for
// concurrent use; both backends compute the same Betti numbers, so this
// only changes performance characteristics and cap behavior.
func SetHomologyEngine(e HomologyEngine) { homologyEngine.Store(int32(e)) }

// ReducedBettiNumbers computes the reduced Betti numbers β̃_0 … β̃_maxDim of
// the complex over the field GF(2).
//
// β̃_q = dim ker ∂_q − dim im ∂_{q+1}, with the augmented chain complex
// (∂_0 maps every vertex to the generator of C_{-1}), so β̃_0 is
// (number of connected components) − 1.
//
// Why homology: k-connectivity (the property the paper's impossibility
// theorem consumes, [HKR13] Thm 10.3.1) is undecidable in general, but a
// k-connected complex necessarily has vanishing reduced homology in
// dimensions ≤ k. Checking β̃_0 = … = β̃_k = 0 therefore machine-validates
// the paper's connectivity claims on concrete instances: a violation would
// refute the claim outright, agreement corroborates it. See DESIGN.md.
//
// The reduction runs on the hybrid-column engine (internal/homology) by
// default; SetHomologyEngine(EngineSparse) selects the pure-sparse PR-3
// reduction and SetHomologyEngine(EnginePacked) restores the seed oracle.
func ReducedBettiNumbers(c *AbstractComplex, maxDim int) ([]int, error) {
	return ReducedBettiNumbersCtx(runctx.Base(), c, maxDim)
}

// ReducedBettiNumbersCtx is ReducedBettiNumbers bound to a context: ctx
// expiry cancels the hybrid/sparse reduction across all workers and returns
// the context's cause. The packed oracle has no cancellation points beyond
// an upfront expiry check — it is the small-instance seed path, where a
// single reduction finishes in microseconds. A completed call is identical
// to ReducedBettiNumbers at every parallelism setting.
func ReducedBettiNumbersCtx(ctx context.Context, c *AbstractComplex, maxDim int) ([]int, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("topology: negative homology dimension %d", maxDim)
	}
	if c.IsEmpty() {
		return nil, fmt.Errorf("topology: reduced homology of the empty complex is undefined here")
	}
	switch CurrentHomologyEngine() {
	case EnginePacked:
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("topology: reduction aborted: %w", context.Cause(ctx))
		}
		return ReducedBettiNumbersOracle(c, maxDim)
	case EngineSparse:
		return homology.ReducedBettiSparseCtx(ctx, c, maxDim)
	}
	return homology.ReducedBettiCtx(ctx, c, maxDim)
}

// ReducedBettiNumbersFromLevels is ReducedBettiNumbers for callers that
// already hold the complex's SimplexLevels output (which must extend to
// maxDim+1): the level table feeds the engine directly, skipping the
// duplicate facet walk the facet-based entry would re-run. The packed
// oracle has no level-table form, so under EnginePacked this falls back to
// the complex itself.
func ReducedBettiNumbersFromLevels(c *AbstractComplex, levels [][][]int, maxDim int) ([]int, error) {
	return ReducedBettiNumbersFromLevelsCtx(runctx.Base(), c, levels, maxDim)
}

// ReducedBettiNumbersFromLevelsCtx is ReducedBettiNumbersFromLevels bound to
// a context (see ReducedBettiNumbersCtx for the cancellation contract).
func ReducedBettiNumbersFromLevelsCtx(ctx context.Context, c *AbstractComplex, levels [][][]int, maxDim int) ([]int, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("topology: negative homology dimension %d", maxDim)
	}
	if c.IsEmpty() {
		return nil, fmt.Errorf("topology: reduced homology of the empty complex is undefined here")
	}
	if maxDim+1 >= len(levels) {
		return nil, fmt.Errorf("topology: levels reach dimension %d, need %d", len(levels)-1, maxDim+1)
	}
	if CurrentHomologyEngine() == EnginePacked {
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("topology: reduction aborted: %w", context.Cause(ctx))
		}
		return ReducedBettiNumbersOracle(c, maxDim)
	}
	cc, err := homology.NewChainComplexFromLevels(levels)
	if err != nil {
		return nil, err
	}
	if CurrentHomologyEngine() == EngineSparse {
		return cc.ReducedBettiSparseCtx(ctx, maxDim)
	}
	return cc.ReducedBettiCtx(ctx, maxDim)
}

// ReducedBettiNumbersOracle is the seed GF(2) reduction — the bit-packed
// fast path with a dense-column generic fallback. It is retained as an
// independent oracle for cross-checking the sparse engine (and as the
// -engine=packed CLI backend); new callers should use ReducedBettiNumbers.
func ReducedBettiNumbersOracle(c *AbstractComplex, maxDim int) ([]int, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("topology: negative homology dimension %d", maxDim)
	}
	if c.IsEmpty() {
		return nil, fmt.Errorf("topology: reduced homology of the empty complex is undefined here")
	}
	if betti, ok := reducedBettiPacked(c, maxDim); ok {
		return betti, nil
	}

	// Generic fallback for complexes too large to bit-pack. All levels come
	// from one facet walk (SimplexLevels); each is sorted lexicographically,
	// so boundary-face rows are found by binary search, no keyed index.
	simplexes := c.SimplexLevels(maxDim + 1)
	counts := make([]int, maxDim+2)
	for q := 0; q <= maxDim+1; q++ {
		counts[q] = len(simplexes[q])
	}

	// rank[q] = rank of ∂_q over GF(2).
	// ∂_0 is the augmentation map: rank 1 since the complex is nonempty.
	rank := make([]int, maxDim+2)
	rank[0] = 1
	for q := 1; q <= maxDim+1; q++ {
		rank[q] = boundaryRank(simplexes[q], simplexes[q-1])
	}

	betti := make([]int, maxDim+1)
	for q := 0; q <= maxDim; q++ {
		kernel := counts[q] - rank[q]
		betti[q] = kernel - rank[q+1]
	}
	return betti, nil
}

// PackedHomologyCapable reports whether the seed packed fast path can
// represent a betti computation up to maxDim on this complex — the cap the
// sparse engine removes. Exposed so reports can label instances that are
// reachable only through the sparse engine.
func PackedHomologyCapable(c *AbstractComplex, maxDim int) bool {
	return packWidth(c.numVertices, maxDim+2) != 0
}

// packWidth returns the bit width that packs simplexes of up to maxSize
// vertices from a numVertices universe into one uint64 (vertex fields from
// the most significant bits down, so numeric key order is lexicographic
// vertex order), or 0 when they don't fit.
func packWidth(numVertices, maxSize int) int {
	for _, w := range []int{8, 16, 32} {
		if maxSize <= 64/w && numVertices <= 1<<w {
			return w
		}
	}
	return 0
}

// reducedBettiPacked is ReducedBettiNumbers for complexes whose simplexes
// fit in one uint64: levels are sorted []uint64, faces are field surgery,
// and row lookup is a binary search over machine words.
func reducedBettiPacked(c *AbstractComplex, maxDim int) ([]int, bool) {
	width := packWidth(c.numVertices, maxDim+2)
	if width == 0 {
		return nil, false
	}
	levels := packedLevels(c, maxDim+2, width)
	rank := make([]int, maxDim+2)
	rank[0] = 1
	for q := 1; q <= maxDim+1; q++ {
		rank[q] = packedBoundaryRank(levels[q], q+1, levels[q-1], width)
	}
	betti := make([]int, maxDim+1)
	for q := 0; q <= maxDim; q++ {
		kernel := len(levels[q]) - rank[q]
		betti[q] = kernel - rank[q+1]
	}
	return betti, true
}

// packedLevels returns the distinct simplexes of every size 1..maxSize as
// sorted packed keys, indexed by size−1, from a single facet walk.
func packedLevels(c *AbstractComplex, maxSize, width int) [][]uint64 {
	levels := make([][]uint64, maxSize)
	buf := make([]int, maxSize)
	for _, f := range c.facets {
		top := len(f)
		if top > maxSize {
			top = maxSize
		}
		for size := 1; size <= top; size++ {
			combinationsOf(f, size, buf[:size], 0, 0, func(s []int) {
				var key uint64
				for i, v := range s {
					key |= uint64(v) << uint(64-width*(i+1))
				}
				levels[size-1] = append(levels[size-1], key)
			})
		}
	}
	for i := range levels {
		slices.Sort(levels[i])
		levels[i] = slices.Compact(levels[i])
	}
	return levels
}

// packedBoundaryRank is boundaryRank over packed levels: the face omitting
// field i keeps the fields above it and shifts the fields below it up.
func packedBoundaryRank(colKeys []uint64, size int, rowKeys []uint64, width int) int {
	numRows := len(rowKeys)
	if len(colKeys) == 0 || numRows == 0 {
		return 0
	}
	words := (numRows + 63) / 64
	pivots := make([][]uint64, numRows)
	rank := 0
	col := make([]uint64, words)
	for _, key := range colKeys {
		for i := range col {
			col[i] = 0
		}
		for omit := 0; omit < size; omit++ {
			hiShift := uint(64 - width*omit) // ≥ 64 for omit = 0: shifts to zero
			hi := key >> hiShift << hiShift
			lo := key & (1<<uint(64-width*(omit+1)) - 1)
			face := hi | lo<<uint(width)
			if r, ok := slices.BinarySearch(rowKeys, face); ok {
				col[r/64] ^= 1 << uint(r%64)
			}
		}
		if addPivotColumn(pivots, col) {
			rank++
		}
	}
	return rank
}

// addPivotColumn reduces col against the dense pivot table and installs it
// as a new pivot when it does not vanish, reporting whether rank grew. col
// is clobbered.
func addPivotColumn(pivots [][]uint64, col []uint64) bool {
	for {
		low := lowestBit(col)
		if low < 0 {
			return false
		}
		p := pivots[low]
		if p == nil {
			cp := make([]uint64, len(col))
			copy(cp, col)
			pivots[low] = cp
			return true
		}
		for i := range col {
			col[i] ^= p[i]
		}
	}
}

// faceIndex returns the position of face in rows (sorted lexicographically,
// as returned by Simplexes), or -1 if absent.
func faceIndex(rows [][]int, face []int) int {
	i := sort.Search(len(rows), func(i int) bool { return !lexLess(rows[i], face) })
	if i == len(rows) || len(rows[i]) != len(face) {
		return -1
	}
	for j, v := range rows[i] {
		if v != face[j] {
			return -1
		}
	}
	return i
}

// boundaryRank computes the GF(2) rank of the boundary matrix whose columns
// are the given q-simplexes and whose rows are the (q-1)-simplexes, by
// column-reduction with bit-packed columns. The pivot table is a dense slice
// indexed by pivot row — pivots[r] is the reduced column whose lowest set
// bit is row r, nil when no column pivots there.
func boundaryRank(cols, rows [][]int) int {
	numRows := len(rows)
	if len(cols) == 0 || numRows == 0 {
		return 0
	}
	words := (numRows + 63) / 64
	pivots := make([][]uint64, numRows)
	rank := 0
	face := make([]int, 0, 16)
	col := make([]uint64, words)
	for _, simplex := range cols {
		for i := range col {
			col[i] = 0
		}
		// Column = sum of the (q-1)-faces of the simplex.
		for omit := range simplex {
			face = face[:0]
			for j, v := range simplex {
				if j != omit {
					face = append(face, v)
				}
			}
			// Every face of a simplex of the complex is in the complex, so
			// the lookup only misses on internal inconsistency.
			if r := faceIndex(rows, face); r >= 0 {
				col[r/64] ^= 1 << uint(r%64)
			}
		}
		if addPivotColumn(pivots, col) {
			rank++
		}
	}
	return rank
}

func lowestBit(v []uint64) int {
	for i, w := range v {
		if w != 0 {
			return i*64 + mathbits.TrailingZeros64(w)
		}
	}
	return -1
}

// IsHomologicallyKConnected reports whether all reduced Betti numbers up to
// dimension k vanish. k = -1 means "nonempty", which always holds for
// nonempty complexes and fails otherwise.
func IsHomologicallyKConnected(c *AbstractComplex, k int) (bool, []int, error) {
	if k < -1 {
		return true, nil, nil // trivially (-2)-connected, even when empty
	}
	if k == -1 {
		return !c.IsEmpty(), nil, nil
	}
	if c.IsEmpty() {
		return false, nil, nil
	}
	betti, err := ReducedBettiNumbers(c, k)
	if err != nil {
		return false, nil, err
	}
	for _, b := range betti {
		if b != 0 {
			return false, betti, nil
		}
	}
	return true, betti, nil
}
