package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAbstract(t *testing.T, n int, gens [][]int) *AbstractComplex {
	t.Helper()
	c, err := NewAbstract(n, gens)
	if err != nil {
		t.Fatalf("NewAbstract: %v", err)
	}
	return c
}

func TestNewAbstractNormalization(t *testing.T) {
	c := mustAbstract(t, 5, [][]int{
		{2, 0, 1},
		{0, 1},    // face of the triangle: absorbed
		{1, 0, 2}, // duplicate up to order
		{3, 4},
		{4, 4, 3}, // duplicate with repeated vertex
	})
	if c.FacetCount() != 2 {
		t.Fatalf("facets = %d, want 2: %v", c.FacetCount(), c.Facets())
	}
	if c.Dimension() != 2 {
		t.Errorf("dimension = %d, want 2", c.Dimension())
	}
	if c.IsPure() {
		t.Errorf("complex with a triangle and an edge is not pure")
	}
	if _, err := NewAbstract(3, [][]int{{0, 3}}); err == nil {
		t.Errorf("out-of-range vertex should fail")
	}
	if _, err := NewAbstract(-1, nil); err == nil {
		t.Errorf("negative vertex count should fail")
	}
}

func TestSimplexEnumeration(t *testing.T) {
	// Full triangle on {0,1,2}.
	c := mustAbstract(t, 3, [][]int{{0, 1, 2}})
	if got := c.SimplexCount(0); got != 3 {
		t.Errorf("vertices = %d, want 3", got)
	}
	if got := c.SimplexCount(1); got != 3 {
		t.Errorf("edges = %d, want 3", got)
	}
	if got := c.SimplexCount(2); got != 1 {
		t.Errorf("triangles = %d, want 1", got)
	}
	if got := c.SimplexCount(3); got != 0 {
		t.Errorf("3-simplexes = %d, want 0", got)
	}
	if got := c.Simplexes(-1); len(got) != 1 {
		t.Errorf("empty simplex count = %d, want 1", len(got))
	}
	empty := mustAbstract(t, 3, nil)
	if got := empty.Simplexes(-1); got != nil {
		t.Errorf("empty complex has no empty simplex under our convention")
	}
}

func TestContainsSimplexAndVertexSet(t *testing.T) {
	c := mustAbstract(t, 6, [][]int{{0, 1, 2}, {3, 4}})
	if !c.ContainsSimplex([]int{0, 2}) {
		t.Errorf("edge {0,2} should be present")
	}
	if c.ContainsSimplex([]int{0, 3}) {
		t.Errorf("edge {0,3} should be absent")
	}
	vs := c.VertexSet()
	if len(vs) != 5 {
		t.Errorf("vertex set = %v, want 5 vertices (5 is isolated/unused)", vs)
	}
}

func TestSkeleton(t *testing.T) {
	c := mustAbstract(t, 4, [][]int{{0, 1, 2, 3}})
	sk1, err := c.Skeleton(1)
	if err != nil {
		t.Fatalf("Skeleton: %v", err)
	}
	if sk1.Dimension() != 1 || sk1.SimplexCount(1) != 6 {
		t.Errorf("1-skeleton of Δ³: dim=%d edges=%d, want 1/6", sk1.Dimension(), sk1.SimplexCount(1))
	}
	sk0, _ := c.Skeleton(0)
	if sk0.SimplexCount(0) != 4 || sk0.Dimension() != 0 {
		t.Errorf("0-skeleton wrong: %v", sk0)
	}
	skNeg, _ := c.Skeleton(-1)
	if !skNeg.IsEmpty() {
		t.Errorf("(-1)-skeleton should be empty")
	}
}

func TestEulerCharacteristicClassicSpaces(t *testing.T) {
	tests := []struct {
		name string
		n    int
		gens [][]int
		want int
	}{
		{"point", 1, [][]int{{0}}, 1},
		{"two points", 2, [][]int{{0}, {1}}, 2},
		{"circle (∂Δ²)", 3, [][]int{{0, 1}, {1, 2}, {0, 2}}, 0},
		{"disk (Δ²)", 3, [][]int{{0, 1, 2}}, 1},
		{"sphere (∂Δ³)", 4, [][]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := mustAbstract(t, tt.n, tt.gens)
			if got := c.EulerCharacteristic(); got != tt.want {
				t.Errorf("χ = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestQuickMaximalFacetsIncomparable(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var gens [][]int
		for i := 0; i < 8; i++ {
			size := 1 + r.Intn(4)
			s := make([]int, size)
			for j := range s {
				s[j] = r.Intn(6)
			}
			gens = append(gens, s)
		}
		c, err := NewAbstract(6, gens)
		if err != nil {
			return false
		}
		fs := c.Facets()
		for i := range fs {
			for j := range fs {
				if i != j && isSubset(fs[i], fs[j]) {
					return false
				}
			}
		}
		// Every generator must still be contained in the complex.
		for _, g := range gens {
			s, err := normalizeSimplex(g, 6)
			if err != nil || !c.ContainsSimplex(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("facet maximality invariant failed: %v", err)
	}
}
