package topology

import (
	"fmt"
	"sort"
)

// IntegerHomology holds reduced integral homology groups
// H̃_q ≅ ℤ^Betti[q] ⊕ ℤ/Torsion[q][0] ⊕ ℤ/Torsion[q][1] ⊕ …
//
// Integral homology refines the GF(2) computation in homology.go: a
// k-connected complex has H̃_q = 0 over ℤ for q ≤ k, and vanishing integral
// groups imply vanishing GF(2) groups but not conversely (torsion ℤ/2 is
// invisible rationally yet fails connectivity). Both routes are exposed so
// verification can use the sharper one on small instances.
type IntegerHomology struct {
	Betti   []int
	Torsion [][]int64
}

// IsTrivialUpTo reports whether H̃_0 … H̃_k all vanish (free rank zero and no
// torsion).
func (h *IntegerHomology) IsTrivialUpTo(k int) bool {
	for q := 0; q <= k && q < len(h.Betti); q++ {
		if h.Betti[q] != 0 || len(h.Torsion[q]) > 0 {
			return false
		}
	}
	return true
}

// String renders e.g. "H̃_0=0 H̃_1=ℤ/2 H̃_2=ℤ".
func (h *IntegerHomology) String() string {
	out := ""
	for q := range h.Betti {
		if q > 0 {
			out += " "
		}
		out += fmt.Sprintf("H̃_%d=%s", q, groupString(h.Betti[q], h.Torsion[q]))
	}
	return out
}

func groupString(betti int, torsion []int64) string {
	if betti == 0 && len(torsion) == 0 {
		return "0"
	}
	s := ""
	for i := 0; i < betti; i++ {
		if s != "" {
			s += "⊕"
		}
		s += "ℤ"
	}
	for _, d := range torsion {
		if s != "" {
			s += "⊕"
		}
		s += fmt.Sprintf("ℤ/%d", d)
	}
	return s
}

// IntegerHomologyGroups computes the reduced integral homology of the
// complex up to dimension maxDim via Smith normal forms of the oriented
// boundary matrices (with the augmentation map, so H̃_0 counts components
// minus one).
func IntegerHomologyGroups(c *AbstractComplex, maxDim int) (*IntegerHomology, error) {
	if maxDim < 0 {
		return nil, fmt.Errorf("topology: negative homology dimension %d", maxDim)
	}
	if c.IsEmpty() {
		return nil, fmt.Errorf("topology: integral homology of the empty complex is undefined here")
	}
	counts := make([]int, maxDim+2)
	simplexes := make([][][]int, maxDim+2)
	for q := 0; q <= maxDim+1; q++ {
		simplexes[q] = c.Simplexes(q)
		counts[q] = len(simplexes[q])
	}

	// divisors[q] = nonzero Smith divisors of ∂_q; rank = len(divisors).
	divisors := make([][]int64, maxDim+2)
	divisors[0] = nil
	if counts[0] > 0 {
		divisors[0] = []int64{1} // augmentation has rank 1
	}
	for q := 1; q <= maxDim+1; q++ {
		mat := orientedBoundary(simplexes[q], simplexes[q-1])
		d, err := smithDivisors(mat)
		if err != nil {
			return nil, err
		}
		divisors[q] = d
	}

	h := &IntegerHomology{
		Betti:   make([]int, maxDim+1),
		Torsion: make([][]int64, maxDim+1),
	}
	for q := 0; q <= maxDim; q++ {
		kernel := counts[q] - len(divisors[q])
		h.Betti[q] = kernel - len(divisors[q+1])
		for _, d := range divisors[q+1] {
			if d > 1 || d < -1 {
				if d < 0 {
					d = -d
				}
				h.Torsion[q] = append(h.Torsion[q], d)
			}
		}
		sort.Slice(h.Torsion[q], func(a, b int) bool { return h.Torsion[q][a] < h.Torsion[q][b] })
	}
	return h, nil
}

// orientedBoundary builds ∂_q as a dense row-major int64 matrix
// (rows = (q-1)-simplexes sorted lexicographically, columns = q-simplexes)
// with alternating signs.
func orientedBoundary(cols, rows [][]int) [][]int64 {
	mat := make([][]int64, len(rows))
	for i := range mat {
		mat[i] = make([]int64, len(cols))
	}
	face := make([]int, 0, 16)
	for j, simplex := range cols {
		sign := int64(1)
		for omit := range simplex {
			face = face[:0]
			for i, v := range simplex {
				if i != omit {
					face = append(face, v)
				}
			}
			if r := faceIndex(rows, face); r >= 0 {
				mat[r][j] += sign
			}
			sign = -sign
		}
	}
	return mat
}

// smithDivisors returns the nonzero diagonal entries of the Smith normal
// form of mat. It mutates mat. Entries are kept in int64; boundary matrices
// of the complexes used here have tiny divisors, but overflow is still
// detected and reported.
func smithDivisors(mat [][]int64) ([]int64, error) {
	rows := len(mat)
	if rows == 0 {
		return nil, nil
	}
	colsN := len(mat[0])
	var divisors []int64
	t := 0
	for ; t < rows && t < colsN; t++ {
		// Find a pivot: the nonzero entry of smallest magnitude in the
		// remaining submatrix.
		pr, pc, pv := -1, -1, int64(0)
		for i := t; i < rows; i++ {
			for j := t; j < colsN; j++ {
				v := mat[i][j]
				if v != 0 && (pv == 0 || abs64(v) < abs64(pv)) {
					pr, pc, pv = i, j, v
				}
			}
		}
		if pr == -1 {
			break // remaining submatrix is zero
		}
		mat[t], mat[pr] = mat[pr], mat[t]
		for i := range mat {
			mat[i][t], mat[i][pc] = mat[i][pc], mat[i][t]
		}
		// Eliminate row/column t; restart when a remainder becomes the new,
		// smaller pivot (the classical descent argument terminates this).
		for {
			again := false
			for i := t + 1; i < rows; i++ {
				if mat[i][t] == 0 {
					continue
				}
				q := mat[i][t] / mat[t][t]
				for j := t; j < colsN; j++ {
					sub, err := mulSub(mat[i][j], q, mat[t][j])
					if err != nil {
						return nil, err
					}
					mat[i][j] = sub
				}
				if mat[i][t] != 0 {
					mat[t], mat[i] = mat[i], mat[t]
					again = true
				}
			}
			for j := t + 1; j < colsN; j++ {
				if mat[t][j] == 0 {
					continue
				}
				q := mat[t][j] / mat[t][t]
				for i := t; i < rows; i++ {
					sub, err := mulSub(mat[i][j], q, mat[i][t])
					if err != nil {
						return nil, err
					}
					mat[i][j] = sub
				}
				if mat[t][j] != 0 {
					for i := range mat {
						mat[i][t], mat[i][j] = mat[i][j], mat[i][t]
					}
					again = true
				}
			}
			if !again {
				break
			}
		}
		// Enforce the divisibility chain: if some remaining entry is not
		// divisible by the pivot, fold its column in and redo this step.
		redo := false
		for i := t + 1; i < rows && !redo; i++ {
			for j := t + 1; j < colsN; j++ {
				if mat[i][j]%mat[t][t] != 0 {
					for r := t; r < rows; r++ {
						sum, err := add64(mat[r][t], mat[r][j])
						if err != nil {
							return nil, err
						}
						mat[r][t] = sum
					}
					redo = true
					break
				}
			}
		}
		if redo {
			t--
			continue
		}
		d := mat[t][t]
		if d < 0 {
			d = -d
		}
		divisors = append(divisors, d)
	}
	return divisors, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

const overflowLimit = int64(1) << 60

func mulSub(a, q, b int64) (int64, error) {
	p := q * b
	if q != 0 && (abs64(b) > overflowLimit/abs64(q) || abs64(a)+abs64(p) < 0) {
		return 0, fmt.Errorf("topology: integer overflow in Smith normal form")
	}
	return a - p, nil
}

func add64(a, b int64) (int64, error) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s > 0) {
		return 0, fmt.Errorf("topology: integer overflow in Smith normal form")
	}
	return s, nil
}

// IsIntegrallyKConnected reports whether the reduced integral homology
// vanishes up to dimension k — a strictly sharper necessary condition for
// k-connectivity than the GF(2) check.
func IsIntegrallyKConnected(c *AbstractComplex, k int) (bool, *IntegerHomology, error) {
	if k < -1 {
		return true, nil, nil
	}
	if k == -1 {
		return !c.IsEmpty(), nil, nil
	}
	if c.IsEmpty() {
		return false, nil, nil
	}
	h, err := IntegerHomologyGroups(c, k)
	if err != nil {
		return false, nil, err
	}
	return h.IsTrivialUpTo(k), h, nil
}
