package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Vertex is a colored vertex: a process (color) paired with its view
// (Def 4.1). The view type is generic so the same machinery serves
// uninterpreted complexes (views are process sets) and interpreted ones
// (views are process→value maps).
type Vertex[V comparable] struct {
	Color int
	View  V
}

// Simplex is a colored simplex: at most one vertex per color, stored sorted
// by color (Def 4.1).
type Simplex[V comparable] []Vertex[V]

// NewSimplex builds a colored simplex from vertices, validating color
// uniqueness and sorting by color.
func NewSimplex[V comparable](vertices ...Vertex[V]) (Simplex[V], error) {
	s := make(Simplex[V], len(vertices))
	copy(s, vertices)
	sort.Slice(s, func(i, j int) bool { return s[i].Color < s[j].Color })
	for i := 1; i < len(s); i++ {
		if s[i].Color == s[i-1].Color {
			return nil, fmt.Errorf("topology: duplicate color %d in simplex", s[i].Color)
		}
	}
	return s, nil
}

// Dimension returns |σ| − 1.
func (s Simplex[V]) Dimension() int { return len(s) - 1 }

// Colors returns the color set of the simplex (names(σ) in the paper).
func (s Simplex[V]) Colors() []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = v.Color
	}
	return out
}

// ViewOf returns the view of the given color, if present (view_σ(p)).
func (s Simplex[V]) ViewOf(color int) (V, bool) {
	for _, v := range s {
		if v.Color == color {
			return v.View, true
		}
	}
	var zero V
	return zero, false
}

// Key returns a canonical map key for the simplex.
func (s Simplex[V]) Key() string {
	var b strings.Builder
	for _, v := range s {
		fmt.Fprintf(&b, "%d:%v|", v.Color, v.View)
	}
	return b.String()
}

// IsFaceOf reports whether every vertex of s appears in t.
func (s Simplex[V]) IsFaceOf(t Simplex[V]) bool {
	for _, v := range s {
		view, ok := t.ViewOf(v.Color)
		if !ok || view != v.View {
			return false
		}
	}
	return true
}

// Intersect returns the simplex of vertices common to s and t.
func (s Simplex[V]) Intersect(t Simplex[V]) Simplex[V] {
	var out Simplex[V]
	for _, v := range s {
		if view, ok := t.ViewOf(v.Color); ok && view == v.View {
			out = append(out, v)
		}
	}
	return out
}

// Complex is a colored simplicial complex given by generating facets
// (Def 4.2). The zero value is not usable; construct with NewComplex.
type Complex[V comparable] struct {
	facets         map[string]Simplex[V]
	minDim, maxDim int
}

// NewComplex returns an empty colored complex.
func NewComplex[V comparable]() *Complex[V] {
	return &Complex[V]{facets: make(map[string]Simplex[V]), minDim: -1, maxDim: -1}
}

// AddFacet inserts a generating simplex. Faces of existing facets are
// absorbed; existing facets that become faces of the new simplex are
// dropped, so Facets always returns maximal simplexes.
//
// When every facet added so far has the same dimension as s (the common case
// for the pure complexes this repository builds), domination is impossible
// and insertion is a plain map write; otherwise a full scan runs.
func (c *Complex[V]) AddFacet(s Simplex[V]) {
	if len(s) == 0 {
		return
	}
	key := s.Key()
	if _, ok := c.facets[key]; ok {
		return
	}
	d := s.Dimension()
	if len(c.facets) == 0 || (d == c.minDim && d == c.maxDim) {
		c.facets[key] = s
		if len(c.facets) == 1 {
			c.minDim, c.maxDim = d, d
		}
		return
	}
	for k, f := range c.facets {
		if s.IsFaceOf(f) {
			return
		}
		if f.IsFaceOf(s) {
			delete(c.facets, k)
		}
	}
	c.facets[key] = s
	if d < c.minDim {
		c.minDim = d
	}
	if d > c.maxDim {
		c.maxDim = d
	}
}

// Facets returns the maximal simplexes in canonical key order.
func (c *Complex[V]) Facets() []Simplex[V] {
	keys := make([]string, 0, len(c.facets))
	for k := range c.facets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Simplex[V], len(keys))
	for i, k := range keys {
		out[i] = c.facets[k]
	}
	return out
}

// FacetCount returns the number of maximal simplexes.
func (c *Complex[V]) FacetCount() int { return len(c.facets) }

// IsEmpty reports whether the complex has no simplexes.
func (c *Complex[V]) IsEmpty() bool { return len(c.facets) == 0 }

// Dimension returns the maximum facet dimension, or -1 when empty.
func (c *Complex[V]) Dimension() int {
	d := -1
	for _, f := range c.facets {
		if f.Dimension() > d {
			d = f.Dimension()
		}
	}
	return d
}

// IsPure reports whether all facets have the complex's dimension.
func (c *Complex[V]) IsPure() bool {
	d := c.Dimension()
	for _, f := range c.facets {
		if f.Dimension() != d {
			return false
		}
	}
	return true
}

// ContainsSimplex reports whether s is a face of some facet.
func (c *Complex[V]) ContainsSimplex(s Simplex[V]) bool {
	for _, f := range c.facets {
		if s.IsFaceOf(f) {
			return true
		}
	}
	return false
}

// Vertices returns the distinct vertices of the complex, sorted by
// (color, key order).
func (c *Complex[V]) Vertices() []Vertex[V] {
	seen := make(map[string]Vertex[V])
	for _, f := range c.facets {
		for _, v := range f {
			seen[fmt.Sprintf("%d:%v", v.Color, v.View)] = v
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Vertex[V], len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// Union merges the facets of other into c.
func (c *Complex[V]) Union(other *Complex[V]) {
	for _, f := range other.Facets() {
		c.AddFacet(f)
	}
}

// Intersection returns the complex of simplexes lying in both c and other.
// Its generating simplexes are the pairwise facet intersections.
func (c *Complex[V]) Intersection(other *Complex[V]) *Complex[V] {
	out := NewComplex[V]()
	for _, f := range c.facets {
		for _, g := range other.facets {
			if inter := f.Intersect(g); len(inter) > 0 {
				out.AddFacet(inter)
			}
		}
	}
	return out
}

// ToAbstract forgets colors: vertices are indexed in the order returned by
// Vertices, and facets become integer vertex lists. The vertex table is
// returned alongside so callers can map abstract vertices back.
func (c *Complex[V]) ToAbstract() (*AbstractComplex, []Vertex[V], error) {
	verts := c.Vertices()
	index := make(map[string]int, len(verts))
	for i, v := range verts {
		index[fmt.Sprintf("%d:%v", v.Color, v.View)] = i
	}
	gens := make([][]int, 0, len(c.facets))
	for _, f := range c.facets {
		gen := make([]int, len(f))
		for i, v := range f {
			gen[i] = index[fmt.Sprintf("%d:%v", v.Color, v.View)]
		}
		gens = append(gens, gen)
	}
	ac, err := NewAbstract(len(verts), gens)
	if err != nil {
		return nil, nil, err
	}
	return ac, verts, nil
}
