package model

import (
	"context"
	"sync/atomic"
)

// Distributor is the hook the distributed sweep tier (internal/dist)
// installs so that heavy closure sweeps can fan out across worker processes
// instead of the in-process pool. The model package stays transport-free:
// it only defines the contract and consults the installed distributor at
// the sweep entry points.
//
// Implementations report handled=false to decline a sweep (no live workers,
// rank space below the distribution threshold, unsupported op); the caller
// then falls back to the local engine. A distributor MUST preserve the
// engines' determinism contract: a handled sweep returns exactly what the
// local engine would have returned.
type Distributor interface {
	// CountClosure returns the closure size of m (|⋃ ↑G_i|), or
	// handled=false to fall back to the in-process sharded count.
	CountClosure(ctx context.Context, m *ClosedAbove) (count int64, handled bool, err error)
}

var distributor atomic.Pointer[distributorCell]

type distributorCell struct{ d Distributor }

// SetDistributor installs d as the process-wide sweep distributor (nil
// uninstalls). Safe for concurrent use; typically called once at CLI
// startup when -workers is given.
func SetDistributor(d Distributor) {
	if d == nil {
		distributor.Store(nil)
		return
	}
	distributor.Store(&distributorCell{d})
}

// CurrentDistributor returns the installed distributor, or nil.
func CurrentDistributor() Distributor {
	if c := distributor.Load(); c != nil {
		return c.d
	}
	return nil
}
