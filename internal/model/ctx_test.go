package model

import (
	"context"
	"errors"
	"testing"
	"time"

	"ksettop/internal/graph"
	"ksettop/internal/par"
)

// TestEnumerationBudgetTypedError pins the typed budget rejection: errors.Is
// matches ErrEnumerationBudget, errors.As yields the configured budget and
// the overflowing rank-space lower bound.
func TestEnumerationBudgetTypedError(t *testing.T) {
	defer SetEnumerationBudget(0)
	star5, _ := graph.Star(5, 0)
	m, err := Simple(star5) // 16 missing edges: 2^16 ranks
	if err != nil {
		t.Fatal(err)
	}
	SetEnumerationBudget(1000)
	_, err = m.EnumerationSize()
	if !errors.Is(err, ErrEnumerationBudget) {
		t.Fatalf("err %v does not match ErrEnumerationBudget", err)
	}
	var be *EnumerationBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v is not an *EnumerationBudgetError", err)
	}
	if be.Budget != 1000 {
		t.Errorf("Budget = %d, want 1000", be.Budget)
	}
	if be.Required <= be.Budget {
		t.Errorf("Required = %d, want > budget %d", be.Required, be.Budget)
	}
}

// TestEnumerateCtxCancellation pins the ctx-bound enumeration surface: an
// expired deadline aborts with a DeadlineExceeded chain before (or within
// ~1k ranks of) the scan, on every entry point, and the rerun after a
// cancelled sweep is identical to an uncancelled one at every parallelism.
func TestEnumerateCtxCancellation(t *testing.T) {
	m, err := NonEmptyKernelModel(4)
	if err != nil {
		t.Fatal(err)
	}
	defer par.SetParallelism(0)
	par.SetParallelism(1)
	want, err := m.AllGraphs()
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := m.GraphCount()
	if err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-expired.Done()

	size, err := m.EnumerationSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnumerateRangeCtx(expired, 0, size, func(graph.Digraph) bool { return true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnumerateRangeCtx(expired) = %v, want DeadlineExceeded chain", err)
	}

	for _, workers := range []int{1, 2, 8} {
		par.SetParallelism(workers)
		if _, err := m.AllGraphsCtx(expired); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: AllGraphsCtx(expired) = %v, want DeadlineExceeded chain", workers, err)
		}
		got, err := m.AllGraphsCtx(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: rerun: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: rerun yields %d graphs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("workers=%d: rerun graph %d differs", workers, i)
			}
		}
		count, err := m.GraphCountCtx(context.Background())
		if err != nil || count != wantCount {
			t.Fatalf("workers=%d: GraphCountCtx = %d, %v; want %d", workers, count, err, wantCount)
		}
	}
}
