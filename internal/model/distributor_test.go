package model

import (
	"context"
	"errors"
	"testing"

	"ksettop/internal/graph"
)

type fakeDistributor struct {
	count   int64
	handled bool
	err     error
	calls   int
}

func (f *fakeDistributor) CountClosure(ctx context.Context, m *ClosedAbove) (int64, bool, error) {
	f.calls++
	return f.count, f.handled, f.err
}

func distTestModel(t *testing.T) *ClosedAbove {
	t.Helper()
	// A bespoke generator set so the count cache cannot be warm from other
	// tests (the distributor hook sits inside the cache fill).
	g := graph.MustNew(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	m, err := New([]graph.Digraph{g})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A handled sweep supplies the count; a declining distributor falls back to
// the local engine and both agree.
func TestDistributorHook(t *testing.T) {
	m := distTestModel(t)
	e, err := m.Enumeration()
	if err != nil {
		t.Fatal(err)
	}
	want := int(e.Size()) // simple model: closure size = rank-space size

	decliner := &fakeDistributor{handled: false}
	SetDistributor(decliner)
	defer SetDistributor(nil)
	got, err := m.GraphCountCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("declined-distributor count %d, want %d", got, want)
	}
	if decliner.calls != 1 {
		t.Fatalf("distributor consulted %d times, want 1", decliner.calls)
	}

	// The fallback count is cached; a handled distributor on a FRESH model of
	// the same generators must not be consulted again (cache hit), which is
	// the determinism contract: handled or declined, the value is the same.
	handler := &fakeDistributor{count: 12345, handled: true}
	SetDistributor(handler)
	got, err = m.GraphCountCtx(context.Background())
	if err != nil || got != want {
		t.Fatalf("cached count after distributor swap: %d, %v", got, err)
	}
	if handler.calls != 0 {
		t.Fatal("cache hit must not re-consult the distributor")
	}
}

// A handled error — a distributed budget trip — propagates to the caller.
func TestDistributorHandledErrorPropagates(t *testing.T) {
	g := graph.MustNew(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 0)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	m, err := New([]graph.Digraph{g})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("distributed sweep failed")
	SetDistributor(&fakeDistributor{handled: true, err: boom})
	defer SetDistributor(nil)
	if _, err := m.GraphCountCtx(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("want handled error back, got %v", err)
	}
	// The error must not be cached: with the distributor gone, the local
	// engine answers.
	SetDistributor(nil)
	if _, err := m.GraphCountCtx(context.Background()); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
}

func TestSetDistributorNil(t *testing.T) {
	SetDistributor(&fakeDistributor{})
	SetDistributor(nil)
	if CurrentDistributor() != nil {
		t.Fatal("nil uninstall failed")
	}
}
