package model

import (
	"context"
	"fmt"
	mathbits "math/bits"
	"sync/atomic"

	"ksettop/internal/bits"
	"ksettop/internal/graph"
	"ksettop/internal/par"
	"ksettop/internal/runctx"
)

// DefaultEnumerationBudget bounds the closure rank space swept by
// EnumerateGraphs and the exhaustive checkers built on it, unless raised
// with SetEnumerationBudget.
const DefaultEnumerationBudget = 1 << 22

var enumBudget atomic.Int64

func init() { enumBudget.Store(DefaultEnumerationBudget) }

// EnumerationBudget returns the current closure-enumeration budget: the
// largest rank space (Σ_G 2^{missing edges of G} over the generators) a
// model may span before enumeration is rejected.
func EnumerationBudget() int64 { return enumBudget.Load() }

// SetEnumerationBudget changes the enumeration budget process-wide; v ≤ 0
// restores the default. The budget replaces the old hard-coded ≤ 8-process /
// 2^22-graph caps: any model whose rank space fits the budget is enumerable,
// regardless of process count.
func SetEnumerationBudget(v int64) {
	if v <= 0 {
		v = DefaultEnumerationBudget
	}
	enumBudget.Store(v)
}

// Enumeration is a streaming rank/unrank view of a model's closure
// ⋃_i ↑G_i over the edge-subset lattice.
//
// The rank space is the disjoint union of per-generator segments: generator
// i with f_i missing (non-loop, absent) edges owns ranks
// [offsets[i], offsets[i]+2^f_i), and rank r in that segment denotes the
// edge mask base_i ∪ spread(r − offsets[i]) where spread places the k-th bit
// of the local rank on the k-th lowest free edge slot. Each model element is
// YIELDED exactly once — by the lowest-indexed generator contained in it —
// so the union over any partition of [0, Size()) into rank ranges visits
// every closure element exactly once, with no shared seen-set. That makes
// the enumeration shardable: workers scan disjoint rank ranges and never
// coordinate.
//
// Edge masks are bits.Words (bit u·n+v = edge u→v), so the enumeration is
// not limited to the 8 processes a single machine word supports; the only
// limit is the configurable rank-space budget.
type Enumeration struct {
	n       int
	bases   []bits.Words // per generator: non-loop edge mask
	free    [][]int32    // per generator: absent edge-bit positions, ascending
	offsets []int64      // segment starts; offsets[len(bases)] = Size()
}

// Enumeration builds the streaming enumerator for the model's closure. It
// fails when the rank space Σ 2^(missing edges) exceeds the budget — the
// closure itself can never be larger than the rank space.
func (m *ClosedAbove) Enumeration() (*Enumeration, error) {
	budget := EnumerationBudget()
	e := &Enumeration{n: m.n, offsets: make([]int64, 1, len(m.gens)+1)}
	var total int64
	for _, g := range m.gens {
		base := edgeWords(g)
		free := freeEdgePositions(m.n, base)
		if len(free) > 62 {
			return nil, fmt.Errorf("model: generator with %d missing edges: segment ranks exceed int64, unenumerable at any budget", len(free))
		}
		if int64(1)<<uint(len(free)) > budget-total {
			return nil, &EnumerationBudgetError{Budget: budget, Required: total + int64(1)<<uint(len(free))}
		}
		total += int64(1) << uint(len(free))
		e.bases = append(e.bases, base)
		e.free = append(e.free, free)
		e.offsets = append(e.offsets, total)
	}
	return e, nil
}

// Size returns the rank-space size Σ 2^(missing edges): an upper bound on
// the closure size, attained exactly when the model is simple.
func (e *Enumeration) Size() int64 { return e.offsets[len(e.offsets)-1] }

// N returns the number of processes.
func (e *Enumeration) N() int { return e.n }

// RangeMasks calls yield on every closure element whose rank lies in
// [lo, hi), in ascending rank order, as a non-loop edge mask (bit u·n+v).
// The mask buffer is reused between calls; yield must copy it to retain it.
// Enumeration stops early if yield returns false; RangeMasks reports whether
// it ran to completion. This is the fast path: no graph.Digraph (or any
// other allocation) per element.
func (e *Enumeration) RangeMasks(lo, hi int64, yield func(mask bits.Words) bool) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > e.Size() {
		hi = e.Size()
	}
	mask := bits.NewWords(e.n * e.n)
	for i := range e.bases {
		segLo, segHi := e.offsets[i], e.offsets[i+1]
		if hi <= segLo || lo >= segHi {
			continue
		}
		from, to := segLo, segHi
		if lo > from {
			from = lo
		}
		if hi < to {
			to = hi
		}
		free := e.free[i]
		for r := from - segLo; r < to-segLo; r++ {
			mask.CopyFrom(e.bases[i])
			for t := uint64(r); t != 0; t &= t - 1 {
				mask.SetBit(int(free[mathbits.TrailingZeros64(t)]))
			}
			if !e.ownedBySegment(i, mask) {
				continue
			}
			if !yield(mask) {
				return false
			}
		}
	}
	return true
}

// ownedBySegment reports whether segment i is the canonical owner of mask:
// no lower-indexed generator is contained in it. This replaces the seed's
// shared seen-map dedup and is what makes disjoint rank ranges
// independently enumerable.
func (e *Enumeration) ownedBySegment(i int, mask bits.Words) bool {
	for j := 0; j < i; j++ {
		if mask.ContainsAll(e.bases[j]) {
			return false
		}
	}
	return true
}

// RangeGraphs is RangeMasks materialized: yield receives each closure
// element in [lo, hi) as a freshly built graph.Digraph.
func (e *Enumeration) RangeGraphs(lo, hi int64, yield func(graph.Digraph) bool) (bool, error) {
	rows := make([]bits.Set, e.n)
	var buildErr error
	done := e.RangeMasks(lo, hi, func(mask bits.Words) bool {
		e.maskRows(mask, rows)
		g, err := graph.FromRows(e.n, rows)
		if err != nil {
			buildErr = err
			return false
		}
		return yield(g)
	})
	return done, buildErr
}

// maskRows unpacks an edge mask into per-process adjacency rows (self-loops
// excluded; FromRows adds them).
func (e *Enumeration) maskRows(mask bits.Words, rows []bits.Set) {
	n := e.n
	for u := 0; u < n; u++ {
		rows[u] = 0
	}
	mask.ForEachBit(func(bit int) {
		rows[bit/n] = rows[bit/n].With(bit % n)
	})
}

// edgeWords packs the non-loop edges of g into a Words mask (bit u·n+v).
func edgeWords(g graph.Digraph) bits.Words {
	n := g.N()
	mask := bits.NewWords(n * n)
	for u := 0; u < n; u++ {
		g.Out(u).ForEach(func(v int) {
			if v != u {
				mask.SetBit(u*n + v)
			}
		})
	}
	return mask
}

// freeEdgePositions returns the non-loop edge-bit positions absent from
// base, in ascending order.
func freeEdgePositions(n int, base bits.Words) []int32 {
	var free []int32
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && !base.Has(u*n+v) {
				free = append(free, int32(u*n+v))
			}
		}
	}
	return free
}

// EnumerateGraphs calls yield on every graph of the model exactly once (the
// union of the upward closures of the generators), in ascending enumeration
// rank, stopping early if yield returns false. Models whose rank space
// exceeds the enumeration budget are rejected.
func (m *ClosedAbove) EnumerateGraphs(yield func(graph.Digraph) bool) error {
	e, err := m.Enumeration()
	if err != nil {
		return err
	}
	_, err = e.RangeGraphs(0, e.Size(), yield)
	return err
}

// EnumerateRange calls yield on the closure elements with enumeration ranks
// in [lo, hi) — the shard API: the union of EnumerateRange over any
// partition of [0, EnumerationSize()) equals EnumerateGraphs, with each
// graph yielded exactly once by exactly one shard.
func (m *ClosedAbove) EnumerateRange(lo, hi int64, yield func(graph.Digraph) bool) error {
	e, err := m.Enumeration()
	if err != nil {
		return err
	}
	_, err = e.RangeGraphs(lo, hi, yield)
	return err
}

// enumPollMask: ctx-aware enumeration loops poll cancellation every
// enumPollMask+1 ranks — frequent enough that a cancelled sweep stops well
// within one shard, rare enough that the atomic load never shows up in
// profiles.
const enumPollMask = 1023

// EnumerateRangeCtx is EnumerateRange bound to a context: cancellation or
// deadline expiry stops the scan within ~1k ranks and returns the context's
// cause. A completed scan is identical to EnumerateRange.
func (m *ClosedAbove) EnumerateRangeCtx(ctx context.Context, lo, hi int64, yield func(graph.Digraph) bool) error {
	e, err := m.Enumeration()
	if err != nil {
		return err
	}
	if ctx == nil || ctx.Done() == nil {
		_, err = e.RangeGraphs(lo, hi, yield)
		return err
	}
	if ctx.Err() != nil {
		// Already expired: the async Bind watcher could lose the race
		// against a fast scan, so reject synchronously.
		return fmt.Errorf("model: enumeration aborted: %w", context.Cause(ctx))
	}
	ctl := &par.Ctl{}
	release := ctl.Bind(ctx)
	defer release()
	seen := int64(0)
	cancelled := false
	_, err = e.RangeGraphs(lo, hi, func(g graph.Digraph) bool {
		if seen&enumPollMask == 0 && ctl.Stopped() {
			cancelled = true
			return false
		}
		seen++
		return yield(g)
	})
	if err != nil {
		return err
	}
	if cancelled || ctl.Stopped() {
		return fmt.Errorf("model: enumeration aborted: %w", context.Cause(ctx))
	}
	return nil
}

// EnumerationSize returns the model's rank-space size (see Enumeration).
func (m *ClosedAbove) EnumerationSize() (int64, error) {
	e, err := m.Enumeration()
	if err != nil {
		return 0, err
	}
	return e.Size(), nil
}

// AllGraphs materializes the full closure, fanning the enumeration out
// across the par worker pool. Shard results are concatenated in shard order,
// so the slice is in ascending enumeration rank — identical to a sequential
// EnumerateGraphs collect, regardless of parallelism.
func (m *ClosedAbove) AllGraphs() ([]graph.Digraph, error) {
	return m.AllGraphsCtx(runctx.Base())
}

// AllGraphsCtx is AllGraphs bound to a context: cancellation stops every
// shard scanner within ~1k ranks (in-flight shards) or at the next shard
// boundary (queued shards) and returns the cause instead of a partial
// closure. Completed runs are byte-identical to AllGraphs at every
// parallelism.
func (m *ClosedAbove) AllGraphsCtx(ctx context.Context) ([]graph.Digraph, error) {
	e, err := m.Enumeration()
	if err != nil {
		return nil, err
	}
	total := e.Size()
	shards := par.NumShards(total)
	if shards <= 1 {
		var all []graph.Digraph
		if err := m.EnumerateRangeCtx(ctx, 0, total, func(g graph.Digraph) bool {
			all = append(all, g)
			return true
		}); err != nil {
			return nil, err
		}
		return all, nil
	}
	locals := make([][]graph.Digraph, shards)
	errs := make([]error, shards)
	ctl := &par.Ctl{}
	if err := par.ForEachShardNCtx(ctx, total, shards, ctl, func(shard int, from, to int64, c *par.Ctl) {
		var out []graph.Digraph
		seen := int64(0)
		_, errs[shard] = e.RangeGraphs(from, to, func(g graph.Digraph) bool {
			if seen&enumPollMask == 0 && c.Stopped() {
				return false
			}
			seen++
			out = append(out, g)
			return true
		})
		locals[shard] = out
	}); err != nil {
		return nil, fmt.Errorf("model: enumeration aborted: %w", err)
	}
	if ctl.Stopped() {
		return nil, fmt.Errorf("model: enumeration aborted: %w", context.Cause(ctx))
	}
	n := 0
	for shard, local := range locals {
		if errs[shard] != nil {
			return nil, errs[shard]
		}
		n += len(local)
	}
	all := make([]graph.Digraph, 0, n)
	for _, local := range locals {
		all = append(all, local...)
	}
	return all, nil
}

// GraphCount returns the number of graphs in the model (size of the union
// of the closures). The count runs on the mask-level fast path, sharded
// across the worker pool, and is memoized per generator set.
func (m *ClosedAbove) GraphCount() (int, error) {
	return m.GraphCountCtx(runctx.Base())
}

// GraphCountCtx is GraphCount bound to a context; a cancelled count returns
// the cause (and is not cached — a later uncancelled call recomputes).
// When a Distributor is installed (see SetDistributor) the count is offered
// to it first; a declined sweep falls back to the in-process pool, and the
// distributor's determinism contract keeps the cached value identical
// either way.
func (m *ClosedAbove) GraphCountCtx(ctx context.Context) (int, error) {
	v, err := countCache.Do(setKey("count", m.gens), func() (int, error) {
		if d := CurrentDistributor(); d != nil {
			if count, handled, err := d.CountClosure(ctx, m); handled {
				return int(count), err
			}
		}
		e, err := m.Enumeration()
		if err != nil {
			return 0, err
		}
		total := e.Size()
		shards := par.NumShards(total)
		ctl := &par.Ctl{}
		var count atomic.Int64
		if shards < 1 {
			shards = 1
		}
		if err := par.ForEachShardNCtx(ctx, total, shards, ctl, func(_ int, from, to int64, c *par.Ctl) {
			local := 0
			seen := int64(0)
			e.RangeMasks(from, to, func(bits.Words) bool {
				if seen&enumPollMask == 0 && c.Stopped() {
					return false
				}
				seen++
				local++
				return true
			})
			count.Add(int64(local))
		}); err != nil {
			return 0, fmt.Errorf("model: enumeration aborted: %w", err)
		}
		if ctl.Stopped() {
			return 0, fmt.Errorf("model: enumeration aborted: %w", context.Cause(ctx))
		}
		return int(count.Load()), nil
	})
	return v, err
}

// GraphCountClosedForm returns |⋃_i ↑G_i| by inclusion–exclusion over the
// generator bases: Σ_{∅≠T⊆S} (−1)^{|T|+1} 2^{missing(⋃T)}. It needs no
// enumeration at all (and so no budget), which makes it the independent
// cross-check for the streaming engine; it is exponential in the number of
// generators instead, so |S| ≤ 22 and ≤ 40 missing edges per term.
func (m *ClosedAbove) GraphCountClosedForm() (int64, error) {
	k := len(m.gens)
	if k > 22 {
		return 0, fmt.Errorf("model: closed-form count supports ≤22 generators, got %d", k)
	}
	bases := make([]bits.Words, k)
	for i, g := range m.gens {
		bases[i] = edgeWords(g)
	}
	clique := m.n * (m.n - 1)
	union := bits.NewWords(m.n * m.n)
	var count int64
	for t := uint64(1); t < uint64(1)<<uint(k); t++ {
		union.Clear()
		for s := t; s != 0; s &= s - 1 {
			union.OrInto(bases[mathbits.TrailingZeros64(s)])
		}
		missing := clique - union.OnesCount()
		if missing > 40 {
			return 0, fmt.Errorf("model: closed-form term with %d missing edges overflows", missing)
		}
		term := int64(1) << uint(missing)
		if mathbits.OnesCount64(t)%2 == 1 {
			count += term
		} else {
			count -= term
		}
	}
	return count, nil
}
