package model

import (
	"errors"
	"fmt"
)

// ErrEnumerationBudget is the sentinel every enumeration-budget rejection
// matches under errors.Is. The concrete error is an *EnumerationBudgetError
// carrying the budget and the rank space that overflowed it.
var ErrEnumerationBudget = errors.New("model: enumeration budget exceeded")

// EnumerationBudgetError reports a closure whose rank space does not fit the
// configured enumeration budget. Required is the partial rank-space total at
// the generator that overflowed — a lower bound on the full requirement
// (the scan stops at the first overflow to avoid int64 wraparound).
type EnumerationBudgetError struct {
	Budget   int64 // the configured budget (EnumerationBudget())
	Required int64 // rank space accumulated when the budget overflowed
}

func (e *EnumerationBudgetError) Error() string {
	return fmt.Sprintf("model: closure rank space exceeds enumeration budget %d (≥ %d required; raise with SetEnumerationBudget)", e.Budget, e.Required)
}

// Is matches ErrEnumerationBudget.
func (e *EnumerationBudgetError) Is(target error) bool { return target == ErrEnumerationBudget }
