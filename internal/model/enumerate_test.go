package model

import (
	"testing"

	"ksettop/internal/graph"
	"ksettop/internal/par"
)

// corpusModels returns the ≤ 6-process generator families the enumeration
// tests sweep: every closed-above flavor in the repository — simple, dense,
// sparse, symmetric, predicate-derived — whose rank space fits the default
// budget.
func corpusModels(t *testing.T) map[string]*ClosedAbove {
	t.Helper()
	out := map[string]*ClosedAbove{}
	add := func(name string, m *ClosedAbove, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = m
	}
	star3, _ := graph.Star(3, 0)
	star5, _ := graph.Star(5, 0)
	cyc4, _ := graph.Cycle(4)
	ring5, _ := graph.BidirectionalRing(5)
	clique4, _ := graph.Complete(4)

	m, err := Simple(star3)
	add("simple-star3", m, err)
	m, err = Simple(star5)
	add("simple-star5", m, err)
	m, err = Simple(cyc4)
	add("simple-cycle4", m, err)
	m, err = Simple(ring5)
	add("simple-ring5", m, err)
	m, err = Simple(clique4)
	add("simple-clique4", m, err)
	m, err = NonEmptyKernelModel(3)
	add("kernel3", m, err)
	m, err = NonEmptyKernelModel(4)
	add("kernel4", m, err)
	m, err = NonSplitModel(3)
	add("nonsplit3", m, err)
	m, err = NonSplitModel(4)
	add("nonsplit4", m, err)
	m, err = UnionOfStarsModel(4, 2)
	add("stars4-2", m, err)
	m, err = UnionOfStarsModel(5, 2)
	add("stars5-2", m, err)
	m, err = UnionOfStarsModel(6, 4)
	add("stars6-4", m, err)
	m, err = CycleModel(4)
	add("cyclemodel4", m, err)
	return out
}

func collectKeys(t *testing.T, m *ClosedAbove) []string {
	t.Helper()
	var keys []string
	if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
		keys = append(keys, g.Key())
		return true
	}); err != nil {
		t.Fatalf("EnumerateGraphs: %v", err)
	}
	return keys
}

// TestEnumerateRangeShardUnion partitions the rank space of every corpus
// family into deliberately uneven shards and requires the concatenation to
// reproduce the sequential enumeration exactly — order included. This is
// the contract the parallel collectors (AllGraphs, GraphCount) build on.
func TestEnumerateRangeShardUnion(t *testing.T) {
	for name, m := range corpusModels(t) {
		want := collectKeys(t, m)
		size, err := m.EnumerationSize()
		if err != nil {
			t.Fatalf("%s: EnumerationSize: %v", name, err)
		}
		for _, pieces := range []int64{2, 3, 7, 16} {
			var got []string
			var lo int64
			for p := int64(0); p < pieces; p++ {
				hi := lo + size/pieces
				if p == pieces-1 {
					hi = size
				}
				// Uneven on purpose: shard boundaries land mid-segment.
				if p%2 == 1 && hi < size {
					hi++
				}
				if err := m.EnumerateRange(lo, hi, func(g graph.Digraph) bool {
					got = append(got, g.Key())
					return true
				}); err != nil {
					t.Fatalf("%s: EnumerateRange(%d,%d): %v", name, lo, hi, err)
				}
				lo = hi
			}
			if len(got) != len(want) {
				t.Fatalf("%s pieces=%d: shard union has %d graphs, sequential %d",
					name, pieces, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s pieces=%d: shard union diverges at index %d", name, pieces, i)
				}
			}
		}
	}
}

// TestEnumerateNoDuplicatesAndMembership checks the first-owner dedup: every
// corpus closure element is yielded exactly once and belongs to the model.
func TestEnumerateNoDuplicatesAndMembership(t *testing.T) {
	for name, m := range corpusModels(t) {
		seen := map[string]bool{}
		if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
			if !m.Contains(g) {
				t.Fatalf("%s: enumerated graph %v outside model", name, g)
			}
			k := g.Key()
			if seen[k] {
				t.Fatalf("%s: duplicate graph %v", name, g)
			}
			seen[k] = true
			return true
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestGraphCountClosedFormCrossCheck pits the streaming enumeration against
// the inclusion–exclusion closed form on the whole corpus: two independent
// computations of |⋃ ↑G_i| must agree.
func TestGraphCountClosedFormCrossCheck(t *testing.T) {
	for name, m := range corpusModels(t) {
		if len(m.Generators()) > 22 {
			continue // closed form is exponential in |S|
		}
		count, err := m.GraphCount()
		if err != nil {
			t.Fatalf("%s: GraphCount: %v", name, err)
		}
		want, err := m.GraphCountClosedForm()
		if err != nil {
			t.Fatalf("%s: GraphCountClosedForm: %v", name, err)
		}
		if int64(count) != want {
			t.Errorf("%s: enumerated count %d != closed form %d", name, count, want)
		}
	}
}

// TestAllGraphsDeterministicAcrossParallelism pins that the sharded
// collector returns the exact sequential rank order for every worker count.
func TestAllGraphsDeterministicAcrossParallelism(t *testing.T) {
	m, err := NonEmptyKernelModel(4)
	if err != nil {
		t.Fatal(err)
	}
	want := collectKeys(t, m)
	defer par.SetParallelism(0)
	for _, workers := range []int{1, 2, 8} {
		par.SetParallelism(workers)
		all, err := m.AllGraphs()
		par.SetParallelism(0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(all) != len(want) {
			t.Fatalf("workers=%d: %d graphs, want %d", workers, len(all), len(want))
		}
		for i, g := range all {
			if g.Key() != want[i] {
				t.Fatalf("workers=%d: order diverges at %d", workers, i)
			}
		}
	}
}

// TestEnumerationBeyondEightProcesses exercises the multiword mask path the
// seed enumerator could not reach: overlapping near-complete generators on
// 9 processes (n² = 81 edge slots > one machine word).
func TestEnumerateBeyondEightProcesses(t *testing.T) {
	mk := func(drop [][2]int) graph.Digraph {
		g, err := graph.Complete(9)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range drop {
			if err := g.RemoveEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}
	// Two generators, each missing 6 edges, sharing 4 missing slots: the
	// closures overlap, so the first-owner dedup is exercised for real.
	g1 := mk([][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {5, 6}, {7, 8}})
	g2 := mk([][2]int{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {2, 1}, {8, 0}})
	m, err := New([]graph.Digraph{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	count, err := m.GraphCount()
	if err != nil {
		t.Fatalf("GraphCount: %v", err)
	}
	want, err := m.GraphCountClosedForm()
	if err != nil {
		t.Fatalf("GraphCountClosedForm: %v", err)
	}
	if int64(count) != want {
		t.Fatalf("n=9 count %d != closed form %d", count, want)
	}
	// |↑g1 ∪ ↑g2| = 2^6 + 2^6 − 2^4 (the intersection is the upward closure
	// of g1 ∪ g2, which misses the 4 shared slots).
	if count != 64+64-16 {
		t.Errorf("n=9 closure = %d, want 112", count)
	}
	seen := map[string]bool{}
	if err := m.EnumerateGraphs(func(g graph.Digraph) bool {
		if g.N() != 9 || !m.Contains(g) {
			t.Fatalf("bad enumerated graph %v", g)
		}
		k := g.Key()
		if seen[k] {
			t.Fatalf("duplicate graph in n=9 enumeration")
		}
		seen[k] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != count {
		t.Errorf("enumerated %d distinct graphs, count says %d", len(seen), count)
	}
}

// TestEnumerationBudget pins the budget guard and the escape hatch.
func TestEnumerationBudget(t *testing.T) {
	defer SetEnumerationBudget(0)
	star5, _ := graph.Star(5, 0)
	m, err := Simple(star5) // 16 missing edges: 2^16 ranks
	if err != nil {
		t.Fatal(err)
	}
	SetEnumerationBudget(1000)
	if _, err := m.EnumerationSize(); err == nil {
		t.Error("rank space 2^16 should exceed budget 1000")
	}
	SetEnumerationBudget(1 << 17)
	size, err := m.EnumerationSize()
	if err != nil || size != 1<<16 {
		t.Errorf("size = %d, err %v; want 65536", size, err)
	}
	SetEnumerationBudget(0) // restore default
	if EnumerationBudget() != DefaultEnumerationBudget {
		t.Errorf("budget reset failed")
	}
}
