package model

import (
	"testing"

	"ksettop/internal/graph"
)

func TestTournamentModel(t *testing.T) {
	m, err := TournamentModel(3)
	if err != nil {
		t.Fatalf("TournamentModel: %v", err)
	}
	if m.GeneratorCount() != 8 {
		t.Errorf("generators = %d, want 2^3 = 8 orientations", m.GeneratorCount())
	}
	if !m.IsSymmetric() {
		t.Errorf("tournament model must be symmetric")
	}
	for _, g := range m.Generators() {
		if !IsTournament(g) {
			t.Errorf("generator %v is not a tournament", g)
		}
		// Minimality: exactly one direction per pair.
		if g.EdgeCount() != 3+3 {
			t.Errorf("generator %v should have exactly one edge per pair", g)
		}
	}

	// Membership matches the predicate.
	clique, _ := graph.Complete(3)
	if !m.Contains(clique) {
		t.Errorf("clique satisfies the tournament property")
	}
	star, _ := graph.Star(3, 0)
	if m.Contains(star) {
		t.Errorf("star is not a tournament: its two leaves have no edge between them")
	}
	loops := graph.MustNew(3)
	if m.Contains(loops) {
		t.Errorf("loops-only graph is not a tournament")
	}

	if _, err := TournamentModel(1); err == nil {
		t.Errorf("n=1 should fail")
	}
	if _, err := TournamentModel(6); err == nil {
		t.Errorf("n=6 should fail (2^15 generators)")
	}
}

func TestTournamentMatchesMinimalSearch(t *testing.T) {
	// The direct construction must agree with the monotone-predicate search.
	direct, err := TournamentModel(3)
	if err != nil {
		t.Fatalf("TournamentModel: %v", err)
	}
	searched, err := MinimalGraphs(3, IsTournament)
	if err != nil {
		t.Fatalf("MinimalGraphs: %v", err)
	}
	if len(searched) != direct.GeneratorCount() {
		t.Fatalf("search found %d minimal graphs, construction %d",
			len(searched), direct.GeneratorCount())
	}
	keys := make(map[string]bool)
	for _, g := range direct.Generators() {
		keys[g.Key()] = true
	}
	for _, g := range searched {
		if !keys[g.Key()] {
			t.Errorf("searched generator %v missing from construction", g)
		}
	}
}
