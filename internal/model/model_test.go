package model

import (
	"math/rand"
	"testing"

	"ksettop/internal/graph"
)

func TestNewPrunesRedundantGenerators(t *testing.T) {
	star, _ := graph.Star(4, 0)
	super := star.Clone()
	super.AddEdge(1, 2) // strictly contains the star: redundant
	m, err := New([]graph.Digraph{star, super, star})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.GeneratorCount() != 1 {
		t.Errorf("generators = %d, want 1 after pruning", m.GeneratorCount())
	}
	if !m.IsSimple() {
		t.Errorf("model should be simple")
	}
	if _, err := New(nil); err == nil {
		t.Errorf("empty generator list should fail")
	}
	g5 := graph.MustNew(5)
	if _, err := New([]graph.Digraph{star, g5}); err == nil {
		t.Errorf("mixed sizes should fail")
	}
}

func TestNewSymmetric(t *testing.T) {
	star, _ := graph.Star(3, 0)
	m, err := NewSymmetric([]graph.Digraph{star})
	if err != nil {
		t.Fatalf("NewSymmetric: %v", err)
	}
	if m.GeneratorCount() != 3 {
		t.Errorf("Sym(star on 3) should have 3 generators, got %d", m.GeneratorCount())
	}
	if !m.IsSymmetric() || m.IsSimple() {
		t.Errorf("symmetric=%v simple=%v, want true/false", m.IsSymmetric(), m.IsSimple())
	}
	single, _ := Simple(star)
	if single.IsSymmetric() {
		t.Errorf("single star model is not symmetric")
	}
}

func TestContains(t *testing.T) {
	star, _ := graph.Star(3, 0)
	m, _ := Simple(star)
	if !m.Contains(star) {
		t.Errorf("model must contain its generator")
	}
	super := star.Clone()
	super.AddEdge(2, 1)
	if !m.Contains(super) {
		t.Errorf("model must contain supergraphs")
	}
	loops := graph.MustNew(3)
	if m.Contains(loops) {
		t.Errorf("model must not contain graphs missing generator edges")
	}
	if m.Contains(graph.MustNew(4)) {
		t.Errorf("wrong process count must be rejected")
	}
}

func TestSampleGraphStaysInModel(t *testing.T) {
	star, _ := graph.Star(4, 0)
	m, _ := NewSymmetric([]graph.Digraph{star})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		g := m.SampleGraph(rng, 0.3)
		if !m.Contains(g) {
			t.Fatalf("sampled graph %v outside model", g)
		}
	}
}

func TestEnumerateGraphsCounts(t *testing.T) {
	star, _ := graph.Star(3, 0)
	simple, _ := Simple(star)
	count, err := simple.GraphCount()
	if err != nil {
		t.Fatalf("GraphCount: %v", err)
	}
	// Star on 3 has 2 non-loop edges; 4 free slots: 2^4 = 16 supergraphs.
	if count != 16 {
		t.Errorf("|↑star| = %d, want 16", count)
	}

	sym, _ := NewSymmetric([]graph.Digraph{star})
	count, err = sym.GraphCount()
	if err != nil {
		t.Fatalf("GraphCount: %v", err)
	}
	// Inclusion–exclusion: 3·16 − 3·4 + 1 = 37.
	if count != 37 {
		t.Errorf("|Sym(↑star)| = %d, want 37", count)
	}

	// Every enumerated graph is in the model, no duplicates.
	seen := make(map[string]bool)
	err = sym.EnumerateGraphs(func(g graph.Digraph) bool {
		if !sym.Contains(g) {
			t.Fatalf("enumerated graph %v outside model", g)
		}
		if seen[g.Key()] {
			t.Fatalf("duplicate graph %v", g)
		}
		seen[g.Key()] = true
		return true
	})
	if err != nil {
		t.Fatalf("EnumerateGraphs: %v", err)
	}

	// Early stop.
	visits := 0
	sym.EnumerateGraphs(func(graph.Digraph) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Errorf("early stop visited %d, want 5", visits)
	}
}

func TestEnumerateGraphsGuards(t *testing.T) {
	// Loops-only generator on 6 processes has 30 missing edges: 2^30 ranks
	// exceed the default budget.
	loops := graph.MustNew(6)
	m, _ := Simple(loops)
	if err := m.EnumerateGraphs(func(graph.Digraph) bool { return true }); err == nil {
		t.Errorf("30 missing edges should exceed the default budget")
	}
	// Loops-only on 9 processes has 72 missing edges: past the 2^62
	// per-generator rank cap, unenumerable at any budget.
	big := graph.MustNew(9)
	m, _ = Simple(big)
	if err := m.EnumerateGraphs(func(graph.Digraph) bool { return true }); err == nil {
		t.Errorf("72 missing edges should be rejected (segment ranks exceed int64)")
	}
}

func TestProductModelKernelIdempotent(t *testing.T) {
	// star_i ⊗ star_j is a union of stars, which contains a single star, so
	// the product model of the non-empty-kernel model reduces to itself.
	m, err := NonEmptyKernelModel(3)
	if err != nil {
		t.Fatalf("NonEmptyKernelModel: %v", err)
	}
	p, err := m.ProductModel(2)
	if err != nil {
		t.Fatalf("ProductModel: %v", err)
	}
	if p.GeneratorCount() != m.GeneratorCount() {
		t.Errorf("kernel model should be product-idempotent: %d vs %d generators",
			p.GeneratorCount(), m.GeneratorCount())
	}
	for _, g := range m.Generators() {
		if !p.Contains(g) {
			t.Errorf("product model lost generator %v", g)
		}
	}
}

func TestMinimalGraphsKernel(t *testing.T) {
	gens, err := MinimalGraphs(3, graph.Digraph.HasKernel)
	if err != nil {
		t.Fatalf("MinimalGraphs: %v", err)
	}
	if len(gens) != 3 {
		t.Fatalf("minimal kernel graphs on 3 procs = %d, want 3 (the stars)", len(gens))
	}
	for _, g := range gens {
		if !g.HasKernel() {
			t.Errorf("minimal graph %v lacks kernel", g)
		}
		// Minimality: exactly one broadcaster and no other non-loop edges.
		if g.EdgeCount() != 3+2 {
			t.Errorf("minimal kernel graph should be a bare star: %v", g)
		}
	}
	kernelModel, _ := NonEmptyKernelModel(3)
	fromSearch, _ := New(gens)
	if kernelModel.GeneratorCount() != fromSearch.GeneratorCount() {
		t.Errorf("kernel model should equal minimal-graph search result")
	}
	if _, err := MinimalGraphs(7, graph.Digraph.HasKernel); err == nil {
		t.Errorf("n=7 should be rejected")
	}
}

func TestNonSplitModel(t *testing.T) {
	m, err := NonSplitModel(3)
	if err != nil {
		t.Fatalf("NonSplitModel: %v", err)
	}
	// Every generator is non-split and minimally so.
	for _, g := range m.Generators() {
		if !g.IsNonSplit() {
			t.Errorf("generator %v not non-split", g)
		}
	}
	// Model membership matches the predicate on a sample of graphs.
	rng := rand.New(rand.NewSource(4))
	agree := 0
	for i := 0; i < 200; i++ {
		g, _ := graph.Random(3, rng.Float64(), rng)
		if m.Contains(g) != g.IsNonSplit() {
			t.Fatalf("membership mismatch on %v: model=%v predicate=%v",
				g, m.Contains(g), g.IsNonSplit())
		}
		agree++
	}
	if agree == 0 {
		t.Fatalf("no graphs checked")
	}
}

func TestUnionOfStarsModel(t *testing.T) {
	m, err := UnionOfStarsModel(5, 2)
	if err != nil {
		t.Fatalf("UnionOfStarsModel: %v", err)
	}
	if m.GeneratorCount() != 10 {
		t.Errorf("generators = %d, want C(5,2) = 10", m.GeneratorCount())
	}
	if !m.IsSymmetric() {
		t.Errorf("star-union model must be symmetric")
	}
	if _, err := UnionOfStarsModel(4, 0); err == nil {
		t.Errorf("s=0 should fail")
	}
}

func TestCycleModel(t *testing.T) {
	m, err := CycleModel(4)
	if err != nil {
		t.Fatalf("CycleModel: %v", err)
	}
	if m.GeneratorCount() != 6 {
		t.Errorf("generators = %d, want (4−1)! = 6 directed 4-cycles", m.GeneratorCount())
	}
	cyc, _ := graph.Cycle(4)
	if !m.Contains(cyc) {
		t.Errorf("cycle model must contain the cycle")
	}
}

func TestString(t *testing.T) {
	star, _ := graph.Star(3, 0)
	m, _ := Simple(star)
	if s := m.String(); s == "" {
		t.Errorf("String() should be nonempty")
	}
	sym, _ := NewSymmetric([]graph.Digraph{star})
	if s := sym.String(); s == "" {
		t.Errorf("String() should be nonempty")
	}
}
