package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndMembers(t *testing.T) {
	tests := []struct {
		name    string
		members []int
		want    []int
	}{
		{"empty", nil, []int{}},
		{"single", []int{3}, []int{3}},
		{"sorted output", []int{5, 1, 3}, []int{1, 3, 5}},
		{"duplicates collapse", []int{2, 2, 2}, []int{2}},
		{"boundaries", []int{0, 63}, []int{0, 63}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := New(tt.members...).Members()
			if len(got) != len(tt.want) {
				t.Fatalf("Members() = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Members() = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestFull(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {5, 5}, {63, 63}, {64, 64}, {100, 64},
	}
	for _, tt := range tests {
		if got := Full(tt.n).Count(); got != tt.want {
			t.Errorf("Full(%d).Count() = %d, want %d", tt.n, got, tt.want)
		}
	}
	if !Full(5).Has(4) || Full(5).Has(5) {
		t.Errorf("Full(5) has wrong membership: %v", Full(5))
	}
}

func TestSetOps(t *testing.T) {
	s := New(1, 2, 3)
	u := New(3, 4)

	if got := s.Union(u); got != New(1, 2, 3, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := s.Inter(u); got != New(3) {
		t.Errorf("Inter = %v", got)
	}
	if got := s.Diff(u); got != New(1, 2) {
		t.Errorf("Diff = %v", got)
	}
	if !s.ContainsAll(New(1, 3)) {
		t.Errorf("ContainsAll(New(1,3)) = false, want true")
	}
	if s.ContainsAll(New(1, 5)) {
		t.Errorf("ContainsAll(New(1,5)) = true, want false")
	}
	if !s.Intersects(u) || s.Intersects(New(0, 7)) {
		t.Errorf("Intersects wrong")
	}
	if got := s.Without(2); got != New(1, 3) {
		t.Errorf("Without = %v", got)
	}
	if got := s.With(0); got != New(0, 1, 2, 3) {
		t.Errorf("With = %v", got)
	}
}

func TestMin(t *testing.T) {
	if got := Set(0).Min(); got != -1 {
		t.Errorf("empty Min = %d, want -1", got)
	}
	if got := New(5, 9).Min(); got != 5 {
		t.Errorf("Min = %d, want 5", got)
	}
	if got := Single(63).Min(); got != 63 {
		t.Errorf("Min = %d, want 63", got)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		s    Set
		want string
	}{
		{0, "{}"},
		{New(2), "{2}"},
		{New(0, 2, 5), "{0,2,5}"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCombinationsCountsMatchBinomial(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			count := 0
			Combinations(n, k, func(s Set) bool {
				if s.Count() != k {
					t.Fatalf("Combinations(%d,%d) produced set of size %d", n, k, s.Count())
				}
				if !Full(n).ContainsAll(s) {
					t.Fatalf("Combinations(%d,%d) produced out-of-range set %v", n, k, s)
				}
				count++
				return true
			})
			if want := binom(n, k); count != want {
				t.Errorf("Combinations(%d,%d) yielded %d sets, want %d", n, k, count, want)
			}
		}
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	count := 0
	done := Combinations(6, 3, func(Set) bool {
		count++
		return count < 4
	})
	if done {
		t.Errorf("Combinations reported completion despite early stop")
	}
	if count != 4 {
		t.Errorf("Combinations visited %d sets after early stop, want 4", count)
	}
}

func TestCombinationsDegenerate(t *testing.T) {
	ran := 0
	Combinations(5, 0, func(s Set) bool {
		if s != 0 {
			t.Errorf("k=0 produced nonempty set %v", s)
		}
		ran++
		return true
	})
	if ran != 1 {
		t.Errorf("k=0 yielded %d sets, want 1", ran)
	}
	Combinations(3, 5, func(Set) bool {
		t.Errorf("k>n should yield nothing")
		return true
	})
	Combinations(3, -1, func(Set) bool {
		t.Errorf("k<0 should yield nothing")
		return true
	})
}

func TestBinomial(t *testing.T) {
	binom := func(n, k int) int64 {
		if k < 0 || k > n {
			return 0
		}
		r := int64(1)
		for i := 0; i < k; i++ {
			r = r * int64(n-i) / int64(i+1)
		}
		return r
	}
	for n := 0; n <= 30; n++ {
		for k := -1; k <= n+1; k++ {
			if got, want := Binomial(n, k), binom(n, k); got != want {
				t.Errorf("Binomial(%d,%d) = %d, want %d", n, k, got, want)
			}
		}
	}
	if got := Binomial(64, 32); got != 1832624140942590534 {
		t.Errorf("Binomial(64,32) = %d, want 1832624140942590534", got)
	}
	if got := Binomial(-1, 0); got != 0 {
		t.Errorf("Binomial(-1,0) = %d, want 0", got)
	}
	if got := Binomial(65, 1); got != 0 {
		t.Errorf("Binomial(65,1) = %d, want 0", got)
	}
}

// TestUnrankCombinationMatchesEnumeration pins UnrankCombination to the rank
// order Combinations enumerates in.
func TestUnrankCombinationMatchesEnumeration(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			rank := int64(0)
			Combinations(n, k, func(s Set) bool {
				if got := UnrankCombination(n, k, rank); got != s {
					t.Fatalf("UnrankCombination(%d,%d,%d) = %v, want %v", n, k, rank, got, s)
				}
				rank++
				return true
			})
		}
	}
}

// TestCombinationsRangeShardUnion splits [0, C(n,k)) into shards and checks
// the concatenation reproduces Combinations exactly, for every (n ≤ 12, k)
// and several shard counts.
func TestCombinationsRangeShardUnion(t *testing.T) {
	for n := 0; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			var want []Set
			Combinations(n, k, func(s Set) bool {
				want = append(want, s)
				return true
			})
			total := Binomial(n, k)
			if int(total) != len(want) {
				t.Fatalf("Binomial(%d,%d) = %d but Combinations yielded %d", n, k, total, len(want))
			}
			for _, shards := range []int64{1, 2, 3, 7, total, total + 3} {
				if shards <= 0 {
					continue
				}
				var got []Set
				for s := int64(0); s < shards; s++ {
					from := s * total / shards
					to := (s + 1) * total / shards
					CombinationsRange(n, k, from, to, func(set Set) bool {
						got = append(got, set)
						return true
					})
				}
				if len(got) != len(want) {
					t.Fatalf("n=%d k=%d shards=%d: %d sets, want %d", n, k, shards, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d shards=%d rank %d: %v, want %v", n, k, shards, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestCombinationsRangeEarlyStopAndClamping(t *testing.T) {
	count := 0
	done := CombinationsRange(6, 3, 2, 9, func(Set) bool {
		count++
		return count < 3
	})
	if done || count != 3 {
		t.Errorf("early stop: done=%v count=%d, want false, 3", done, count)
	}
	// Out-of-range bounds clamp; inverted ranges yield nothing.
	visited := 0
	CombinationsRange(5, 2, -4, 100, func(Set) bool { visited++; return true })
	if visited != 10 {
		t.Errorf("clamped full range visited %d, want 10", visited)
	}
	CombinationsRange(5, 2, 7, 3, func(Set) bool {
		t.Errorf("inverted range should yield nothing")
		return true
	})
	CombinationsRange(5, 9, 0, 1, func(Set) bool {
		t.Errorf("k>n should yield nothing")
		return true
	})
}

func TestSubsets(t *testing.T) {
	s := New(1, 4, 6)
	seen := map[Set]bool{}
	Subsets(s, func(sub Set) bool {
		if !s.ContainsAll(sub) {
			t.Fatalf("subset %v not contained in %v", sub, s)
		}
		if seen[sub] {
			t.Fatalf("subset %v enumerated twice", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 8 {
		t.Errorf("Subsets yielded %d sets, want 8", len(seen))
	}
	if !seen[0] || !seen[s] {
		t.Errorf("Subsets missed empty or full subset")
	}
}

func TestSupersetsWithin(t *testing.T) {
	lo, hi := New(1), New(1, 2, 3)
	seen := map[Set]bool{}
	SupersetsWithin(lo, hi, func(s Set) bool {
		if !s.ContainsAll(lo) || !hi.ContainsAll(s) {
			t.Fatalf("set %v outside [%v, %v]", s, lo, hi)
		}
		seen[s] = true
		return true
	})
	if len(seen) != 4 {
		t.Errorf("SupersetsWithin yielded %d sets, want 4", len(seen))
	}
	// lo ⊄ hi yields nothing.
	SupersetsWithin(New(5), New(1, 2), func(Set) bool {
		t.Errorf("SupersetsWithin with lo ⊄ hi should yield nothing")
		return true
	})
}

func TestQuickUnionIntersectionLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	deMorgan := func(a, b uint64) bool {
		s, u := Set(a), Set(b)
		lhs := s.Union(u).Count()
		rhs := s.Count() + u.Count() - s.Inter(u).Count()
		return lhs == rhs
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Errorf("inclusion-exclusion law failed: %v", err)
	}
	diffLaw := func(a, b uint64) bool {
		s, u := Set(a), Set(b)
		return s.Diff(u).Union(s.Inter(u)) == s
	}
	if err := quick.Check(diffLaw, cfg); err != nil {
		t.Errorf("diff partition law failed: %v", err)
	}
}

func TestQuickMembersRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	roundTrip := func(a uint64) bool {
		s := Set(a)
		return New(s.Members()...) == s
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Errorf("Members/New round trip failed: %v", err)
	}
}
