// Package bits provides small fixed-width sets of process indices.
//
// Every object in this repository that ranges over processes — communication
// graphs, dominating sets, simplex color sets, views — is ultimately a set of
// process indices in [0, n) with n ≤ MaxElems. Representing those sets as a
// single machine word keeps the exponential-subset enumerations used by the
// combinatorial numbers (domination, covering, …) cheap and allocation-free.
package bits

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxElems is the largest universe size supported by Set.
const MaxElems = 64

// Set is a subset of {0, …, 63} stored as a bit mask.
//
// The zero value is the empty set and ready to use.
type Set uint64

// New returns the set containing exactly the given members.
func New(members ...int) Set {
	var s Set
	for _, m := range members {
		s = s.With(m)
	}
	return s
}

// Full returns the set {0, …, n-1}.
func Full(n int) Set {
	if n <= 0 {
		return 0
	}
	if n >= MaxElems {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Single returns the singleton {i}.
func Single(i int) Set { return Set(1) << uint(i) }

// With returns s ∪ {i}.
func (s Set) With(i int) Set { return s | Set(1)<<uint(i) }

// Without returns s \ {i}.
func (s Set) Without(i int) Set { return s &^ (Set(1) << uint(i)) }

// Has reports whether i ∈ s.
func (s Set) Has(i int) bool { return s&(Set(1)<<uint(i)) != 0 }

// Count returns |s|.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool { return s == 0 }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Inter returns s ∩ t.
func (s Set) Inter(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// ContainsAll reports whether t ⊆ s.
func (s Set) ContainsAll(t Set) bool { return t&^s == 0 }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// Min returns the smallest member of s, or -1 if s is empty.
func (s Set) Min() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Members returns the members of s in increasing order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	for t := s; t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(uint64(t)))
	}
	return out
}

// ForEach calls f on every member of s in increasing order.
func (s Set) ForEach(f func(i int)) {
	for t := s; t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(uint64(t)))
	}
}

// String renders the set as "{0,2,5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}

// Combinations calls f on every k-element subset of {0, …, n-1} in
// lexicographically increasing mask order. Enumeration stops early if f
// returns false. It reports whether enumeration ran to completion.
//
// It uses Gosper's hack to step between same-popcount masks without
// allocation.
func Combinations(n, k int, f func(Set) bool) bool {
	if k < 0 || k > n {
		return true
	}
	if k == 0 {
		return f(0)
	}
	limit := uint64(1) << uint(n)
	v := uint64(1)<<uint(k) - 1
	for v < limit {
		if !f(Set(v)) {
			return false
		}
		// Gosper's hack: next integer with the same popcount.
		c := v & (^v + 1)
		r := v + c
		v = (((v ^ r) >> 2) / c) | r
		if c == 0 { // k == 64 edge: avoid div-by-zero loops
			break
		}
	}
	return true
}

// 64-bit FNV-1a constants, shared by the word-wise interning hashes in
// internal/graph and internal/protocol so the tables stay in sync.
const (
	hashOffset64 = 14695981039346656037
	hashPrime64  = 1099511628211
)

// Hash64Seed returns the initial value for a Hash64Mix chain.
func Hash64Seed() uint64 { return hashOffset64 }

// Hash64Mix folds the word v into the running hash h (FNV-1a, word-wise).
// Collisions are expected and fine: every user compares full contents on
// hash equality.
func Hash64Mix(h, v uint64) uint64 { return (h ^ v) * hashPrime64 }

// binomial[n][k] = C(n,k), saturated at MaxInt64. Pascal's triangle avoids
// the intermediate overflow a multiplicative formula would hit near C(64,32).
var binomial = func() [MaxElems + 1][MaxElems + 1]int64 {
	const maxInt64 = 1<<63 - 1
	var table [MaxElems + 1][MaxElems + 1]int64
	for n := 0; n <= MaxElems; n++ {
		table[n][0] = 1
		for k := 1; k <= n; k++ {
			a, b := table[n-1][k-1], table[n-1][k]
			if a > maxInt64-b {
				table[n][k] = maxInt64
			} else {
				table[n][k] = a + b
			}
		}
	}
	return table
}()

// Binomial returns the binomial coefficient C(n, k) for 0 ≤ n ≤ MaxElems,
// saturated at MaxInt64 (which cannot occur for n ≤ MaxElems) and 0 for
// k outside [0, n].
func Binomial(n, k int) int64 {
	if n < 0 || n > MaxElems || k < 0 || k > n {
		return 0
	}
	return binomial[n][k]
}

// UnrankCombination returns the k-element subset of {0, …, n-1} with the
// given rank in increasing mask order (equivalently: colexicographic order on
// member lists — the order Combinations enumerates). This is the inverse of
// the combinatorial number system: rank = Σ_i C(c_i, i) for members
// c_1 < … < c_k.
func UnrankCombination(n, k int, rank int64) Set {
	var s Set
	c := n - 1
	for i := k; i >= 1; i-- {
		for c >= i-1 && binomial[c][i] > rank {
			c--
		}
		s = s.With(c)
		rank -= binomial[c][i]
		c--
	}
	return s
}

// CombinationsRange calls f on the k-element subsets of {0, …, n-1} with
// ranks in [from, to), in the same increasing mask order as Combinations
// (rank 0 is the lowest mask). Enumeration stops early if f returns false; it
// reports whether enumeration ran to completion.
//
// Splitting [0, C(n,k)) into contiguous rank ranges shards the full sweep:
// the union of the shards visits exactly the sets Combinations visits, once
// each. Unranking costs O(n) per call; stepping inside a shard is Gosper's
// hack, as in Combinations.
func CombinationsRange(n, k int, from, to int64, f func(Set) bool) bool {
	if k < 0 || k > n {
		return true
	}
	total := Binomial(n, k)
	if from < 0 {
		from = 0
	}
	if to > total {
		to = total
	}
	if from >= to {
		return true
	}
	v := uint64(UnrankCombination(n, k, from))
	for i := from; i < to; i++ {
		if !f(Set(v)) {
			return false
		}
		c := v & (^v + 1)
		r := v + c
		if c == 0 { // k == 64 edge: avoid div-by-zero loops
			break
		}
		v = (((v ^ r) >> 2) / c) | r
	}
	return true
}

// Subsets calls f on every subset of s (including the empty set and s
// itself). Enumeration stops early if f returns false. It reports whether
// enumeration ran to completion.
func Subsets(s Set, f func(Set) bool) bool {
	sub := Set(0)
	for {
		if !f(sub) {
			return false
		}
		if sub == s {
			return true
		}
		sub = (sub - s) & s // next subset of s in counting order
	}
}

// SupersetsWithin calls f on every set t with lo ⊆ t ⊆ hi. Enumeration stops
// early if f returns false. It reports whether enumeration ran to completion.
func SupersetsWithin(lo, hi Set, f func(Set) bool) bool {
	if !hi.ContainsAll(lo) {
		return true
	}
	free := hi.Diff(lo)
	return Subsets(free, func(extra Set) bool {
		return f(lo.Union(extra))
	})
}
