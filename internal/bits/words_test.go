package bits

import "testing"

func positions(w Words) []int {
	var out []int
	w.ForEachBit(func(i int) { out = append(out, i) })
	return out
}

func TestWordsBasics(t *testing.T) {
	w := NewWords(130)
	if len(w) != 3 {
		t.Fatalf("NewWords(130) has %d words, want 3", len(w))
	}
	for _, i := range []int{0, 63, 64, 129} {
		if w.Has(i) {
			t.Fatalf("fresh bitset has bit %d", i)
		}
		w.SetBit(i)
		if !w.Has(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := w.OnesCount(); got != 4 {
		t.Fatalf("OnesCount = %d, want 4", got)
	}
	want := []int{0, 63, 64, 129}
	got := positions(w)
	if len(got) != len(want) {
		t.Fatalf("set bits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("set bits = %v, want %v", got, want)
		}
	}
	w.Clear()
	if w.OnesCount() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestWordsXorHighestBit(t *testing.T) {
	a, b := NewWords(200), NewWords(200)
	for _, i := range []int{3, 70, 140, 199} {
		a.SetBit(i)
	}
	for _, i := range []int{3, 71, 199} {
		b.SetBit(i)
	}
	a.XorInto(b) // {70, 71, 140}
	got := positions(a)
	want := []int{70, 71, 140}
	if len(got) != len(want) {
		t.Fatalf("xor bits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("xor bits = %v, want %v", got, want)
		}
	}
	if hb := a.HighestBitFrom(len(a) - 1); hb != 140 {
		t.Fatalf("HighestBitFrom(top) = %d, want 140", hb)
	}
	if hb := a.HighestBitFrom(1); hb != 71 {
		t.Fatalf("HighestBitFrom(1) = %d, want 71", hb)
	}
	if hb := a.HighestBitFrom(99); hb != 140 {
		t.Fatalf("HighestBitFrom past the end should clamp, got %d", hb)
	}
	a.Clear()
	if hb := a.HighestBitFrom(len(a) - 1); hb != -1 {
		t.Fatalf("HighestBitFrom on empty = %d, want -1", hb)
	}
	// Short-x XOR only touches the prefix.
	c := NewWords(200)
	c.SetBit(199)
	c.XorInto(b[:1])
	if !c.Has(3) || !c.Has(199) || c.OnesCount() != 2 {
		t.Fatalf("prefix XorInto wrong: %v", positions(c))
	}
}

func TestWordsSetOps(t *testing.T) {
	a, b := NewWords(100), NewWords(100)
	a.SetBit(1)
	a.SetBit(70)
	b.SetBit(70)
	b.SetBit(99)

	u := NewWords(100)
	u.CopyFrom(a)
	u.OrInto(b)
	if !u.Has(1) || !u.Has(70) || !u.Has(99) || u.OnesCount() != 3 {
		t.Fatalf("union wrong: %v", positions(u))
	}
	if !u.ContainsAll(a) || !u.ContainsAll(b) || a.ContainsAll(b) {
		t.Fatal("ContainsAll wrong")
	}

	c := NewWords(100)
	c.CopyFrom(a)
	if c.OnesCount() != 2 || !c.Has(1) || !c.Has(70) {
		t.Fatal("CopyFrom wrong")
	}
}
