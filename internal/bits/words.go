package bits

import "math/bits"

// Words is a fixed-width bitset over an arbitrary universe, stored as packed
// 64-bit words. It backs the model-closure enumeration for edge universes
// larger than one machine word (n > 8 processes have n² > 64 edge slots),
// where Set no longer fits.
//
// All binary operations require operands of equal length; the enumeration
// code allocates every Words for a model from the same word count.
type Words []uint64

// NewWords returns an empty bitset able to hold nbits bits.
func NewWords(nbits int) Words {
	if nbits <= 0 {
		return Words{}
	}
	return make(Words, (nbits+63)/64)
}

// CopyFrom overwrites w with src (equal length).
func (w Words) CopyFrom(src Words) {
	copy(w, src)
}

// Has reports whether bit i is set.
func (w Words) Has(i int) bool {
	return w[i>>6]&(1<<uint(i&63)) != 0
}

// SetBit sets bit i.
func (w Words) SetBit(i int) {
	w[i>>6] |= 1 << uint(i&63)
}

// FlipBit toggles bit i.
func (w Words) FlipBit(i int) {
	w[i>>6] ^= 1 << uint(i&63)
}

// Clear zeroes every bit.
func (w Words) Clear() {
	for i := range w {
		w[i] = 0
	}
}

// OrInto sets w to w ∪ x.
func (w Words) OrInto(x Words) {
	for i, v := range x {
		w[i] |= v
	}
}

// ContainsAll reports whether x ⊆ w.
func (w Words) ContainsAll(x Words) bool {
	for i, v := range x {
		if v&^w[i] != 0 {
			return false
		}
	}
	return true
}

// XorInto sets w to w ⊕ x (symmetric difference). x may be shorter than w;
// the homology engine XORs dense column blocks only up to the pivot word.
func (w Words) XorInto(x Words) {
	for i, v := range x {
		w[i] ^= v
	}
}

// HighestBitFrom returns the index of the highest set bit whose word index
// is ≤ fromWord, or -1 when that prefix is empty. Callers that track a
// pivot ("low") bit pass its word index as the scan start, so repeated
// pivot queries after XORs cost only the words actually cleared.
func (w Words) HighestBitFrom(fromWord int) int {
	if fromWord >= len(w) {
		fromWord = len(w) - 1
	}
	for i := fromWord; i >= 0; i-- {
		if v := w[i]; v != 0 {
			return i<<6 | (63 - bits.LeadingZeros64(v))
		}
	}
	return -1
}

// OnesCount returns the number of set bits.
func (w Words) OnesCount() int {
	total := 0
	for _, v := range w {
		total += bits.OnesCount64(v)
	}
	return total
}

// ForEachBit calls f on every set bit index in increasing order.
func (w Words) ForEachBit(f func(i int)) {
	for wi, v := range w {
		for t := v; t != 0; t &= t - 1 {
			f(wi<<6 + bits.TrailingZeros64(t))
		}
	}
}
