package core

import (
	"testing"

	"ksettop/internal/graph"
	"ksettop/internal/model"
)

func TestVerifyUpperBySimulation(t *testing.T) {
	// Thm 3.2 on ↑star (γ = 1) and Cor 3.5 on Sym(star) (γ_eq = n).
	star, _ := graph.Star(3, 0)
	simple, _ := model.Simple(star)
	up, err := BestUpperOneRound(simple)
	if err != nil {
		t.Fatalf("BestUpperOneRound: %v", err)
	}
	if err := VerifyUpperBySimulation(simple, up, 2_000_000); err != nil {
		t.Errorf("Thm 3.2 verification failed: %v", err)
	}

	sym := kernelModel(t, 3)
	upSym, _ := BestUpperOneRound(sym)
	if err := VerifyUpperBySimulation(sym, upSym, 2_000_000); err != nil {
		t.Errorf("Cor 3.5 verification failed: %v", err)
	}

	// A deliberately wrong (too strong) claim must be caught.
	tooStrong := upSym
	tooStrong.K = 1
	if err := VerifyUpperBySimulation(sym, tooStrong, 2_000_000); err == nil {
		t.Errorf("overclaimed upper bound should fail verification")
	}
}

func TestVerifyUpperMultiRound(t *testing.T) {
	// ↑cycle on n=4, 3 rounds: consensus via min (covering sequence).
	cyc, _ := graph.Cycle(4)
	m, _ := model.Simple(cyc)
	up, err := BestUpperMultiRound(m, 3)
	if err != nil {
		t.Fatalf("BestUpperMultiRound: %v", err)
	}
	if up.K != 1 {
		t.Fatalf("upper = %d, want 1", up.K)
	}
	if err := VerifyUpperBySimulation(m, up, 8_000_000); err != nil {
		t.Errorf("3-round consensus verification failed: %v", err)
	}
}

func TestVerifyLowerBySolver(t *testing.T) {
	m := kernelModel(t, 3)
	lo, err := BestLowerOneRound(m)
	if err != nil {
		t.Fatalf("BestLowerOneRound: %v", err)
	}
	if lo.K != 2 {
		t.Fatalf("lower = %d, want 2", lo.K)
	}
	if err := VerifyLowerBySolver(m, lo, 10_000_000); err != nil {
		t.Errorf("solver verification failed: %v", err)
	}

	// An overclaimed impossibility (3-set with n=3 is trivially solvable)
	// must be refuted by the solver.
	wrong := lo
	wrong.K = 3
	if err := VerifyLowerBySolver(m, wrong, 10_000_000); err == nil {
		t.Errorf("overclaimed lower bound should fail verification")
	}

	// Vacuous bounds pass trivially.
	vacuous := lo
	vacuous.K = 0
	if err := VerifyLowerBySolver(m, vacuous, 10); err != nil {
		t.Errorf("vacuous bound should verify: %v", err)
	}
}

func TestVerifyLowerByTopology(t *testing.T) {
	m := kernelModel(t, 3)
	lo, _ := BestLowerOneRound(m)
	if err := VerifyLowerByTopology(m, lo); err != nil {
		t.Errorf("topology verification failed: %v", err)
	}

	// The clique model solves consensus, so its protocol complex is
	// disconnected: claiming 1-set impossibility must fail the check.
	clique, _ := graph.Complete(3)
	cm, _ := model.Simple(clique)
	bogus := LowerBound{K: 1, Rounds: 1, Theorem: "bogus"}
	if err := VerifyLowerByTopology(cm, bogus); err == nil {
		t.Errorf("clique model protocol complex is disconnected; claim should fail")
	}
}

func TestVerifyUninterpretedConnectivity(t *testing.T) {
	for _, m := range []*model.ClosedAbove{kernelModel(t, 3), kernelModel(t, 4), fig1bModel(t)} {
		if err := VerifyUninterpretedConnectivity(m); err != nil {
			t.Errorf("Thm 4.12 verification failed on %v: %v", m, err)
		}
	}
}

func TestVerifySimpleCycleLowerAllRoutes(t *testing.T) {
	// ↑cycle n=3: 1-set impossible in one round (Thm 5.1, γ = 2). Check by
	// solver and by topology.
	cyc, _ := graph.Cycle(3)
	m, _ := model.Simple(cyc)
	lo, _ := BestLowerOneRound(m)
	if lo.K != 1 {
		t.Fatalf("lower = %d, want 1", lo.K)
	}
	if err := VerifyLowerBySolver(m, lo, 10_000_000); err != nil {
		t.Errorf("solver route failed: %v", err)
	}
	if err := VerifyLowerByTopology(m, lo); err != nil {
		t.Errorf("topology route failed: %v", err)
	}
}
